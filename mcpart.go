// Package mcpart is a compiler-directed data and computation partitioner
// for multicluster (clustered VLIW) processors — a from-scratch
// reproduction of Chu & Mahlke, "Compiler-directed Data Partitioning for
// Multicluster Processors" (CGO 2006).
//
// The pipeline compiles a program written in mclang (a small C-like
// language), analyzes which data objects every memory operation can touch,
// profiles one execution, and then partitions both the data objects
// (globals and heap allocation sites) and the computation operations across
// the clusters of a parameterized VLIW machine. Cycle counts come from a
// cluster-aware list scheduler that materializes intercluster moves.
//
// Quick start:
//
//	p, err := mcpart.Compile("demo", src)
//	m := mcpart.Paper2Cluster(5) // the paper's machine, 5-cycle moves
//	cmp, err := mcpart.EvaluateAll(p, m)
//	fmt.Println(cmp.GDP.Cycles, cmp.Unified.Cycles)
//
// The four schemes match the paper's Table 1: SchemeGDP (the paper's
// contribution: global data partitioning followed by lock-aware RHOP),
// SchemeProfileMax, SchemeNaive, and SchemeUnified (the shared-memory upper
// bound).
package mcpart

import (
	"context"
	"fmt"
	"sort"

	"mcpart/internal/bench"
	"mcpart/internal/check"
	"mcpart/internal/eval"
	"mcpart/internal/gdp"
	"mcpart/internal/interp"
	"mcpart/internal/ir"
	"mcpart/internal/machine"
	"mcpart/internal/mclang"
	"mcpart/internal/obs"
	"mcpart/internal/parallel"
	"mcpart/internal/rhop"
	"mcpart/internal/sched"
	"mcpart/internal/store"
)

// Machine describes a multicluster VLIW target (clusters, function units,
// intercluster network).
type Machine = machine.Config

// Scheme names one of the paper's partitioning strategies.
type Scheme = eval.Scheme

// The schemes of the paper's Table 1.
const (
	SchemeUnified    = eval.SchemeUnified
	SchemeGDP        = eval.SchemeGDP
	SchemeProfileMax = eval.SchemeProfileMax
	SchemeNaive      = eval.SchemeNaive
)

// Result is one scheme's outcome: dynamic cycles, dynamic intercluster
// moves, the data map, and the computation assignment.
type Result = eval.Result

// Comparison holds all four schemes' results for one program and machine.
type Comparison = eval.BenchResult

// DataMap assigns each data object a home cluster memory.
type DataMap = gdp.DataMap

// Options tunes the partitioning schemes (see eval.Options, gdp.Options and
// rhop.Options for the individual knobs and their paper defaults). Of note
// for robustness: Validate re-checks every result with the independent
// internal/check validator, and Fallback substitutes the next-simpler scheme
// when one fails (recorded in Result.Degraded).
type Options = eval.Options

// Degradation records a scheme substitution performed under
// Options.Fallback: which scheme was requested and why it failed.
type Degradation = eval.Degradation

// CellError attributes a matrix or exhaustive-search failure to its
// (benchmark, scheme[, mask]) cell. errors.As recovers it from RunMatrix,
// EvaluateAll, and ExhaustiveSearch errors.
type CellError = eval.CellError

// ValidationError is the independent result validator's report: the list of
// invariant violations found in a scheme result (Options.Validate). External
// callers recover it with errors.As; Has selects by violation class.
type ValidationError = check.Error

// ViolationClass partitions validator findings; ValidationError.Has
// selects by class.
type ViolationClass = check.Class

// The validator's violation classes (see internal/check for the invariant
// each one guards).
const (
	ViolationHome     = check.ClassHome
	ViolationCapacity = check.ClassCapacity
	ViolationLock     = check.ClassLock
	ViolationAssign   = check.ClassAssign
	ViolationFU       = check.ClassFU
	ViolationBus      = check.ClassBus
	ViolationReady    = check.ClassReady
	ViolationAccount  = check.ClassAccount
)

// InternalError wraps a panic that escaped the partitioning pipeline: a bug
// in mcpart, not bad input. The zero-tolerance contract of this facade is
// that callers see it as an error, never as a crash.
type InternalError struct {
	Err error
}

func (e *InternalError) Error() string { return "mcpart: internal error: " + e.Err.Error() }

// Unwrap exposes the recovered panic (often a *parallel.PanicError carrying
// the stack) to errors.Is/As.
func (e *InternalError) Unwrap() error { return e.Err }

// contain converts a panic escaping a facade entry point into an
// *InternalError. Deeper layers (the worker pool, the matrix runners)
// already contain their own panics; this is the last line of defense for
// serial code paths.
func contain(err *error) {
	if pe := parallel.Recovered("mcpart", -1, recover()); pe != nil {
		*err = &InternalError{Err: pe}
	}
}

// ExhaustiveResult is the Figure 9 dataset: every data mapping's cycles and
// balance, with the GDP and Profile Max choices marked.
type ExhaustiveResult = eval.ExhaustiveResult

// Observer is the pipeline observability handle (see internal/obs and
// DESIGN.md §10): hierarchical spans over every pipeline phase plus a typed
// counter/gauge/histogram registry. Attach one via Options.Observer (scheme
// runs) or ObserveContext (compilation). A nil *Observer is fully inert and
// costs nothing on the hot paths.
type Observer = obs.Observer

// MetricsRegistry is an Observer's typed metric store.
type MetricsRegistry = obs.Registry

// Metrics is a point-in-time, name-sorted snapshot of a metrics registry
// (also found per scheme run in Result.Metrics).
type Metrics = obs.Snapshot

// TraceSink accumulates span events; WriteJSONL renders them as sorted
// JSON lines, byte-identical for every worker count.
type TraceSink = obs.Trace

// Observability constructors and sinks, re-exported from internal/obs.
var (
	// NewTrace returns an empty span-trace sink.
	NewTrace = obs.NewTrace
	// NewMetricsRegistry returns an empty metric registry.
	NewMetricsRegistry = obs.NewRegistry
	// NewObserver assembles an observer from a registry, an optional trace
	// sink, and a clock (nil = the deterministic fixed clock).
	NewObserver = obs.New
	// FixedClock is a clock pinned to one instant: deterministic traces.
	FixedClock = obs.FixedClock
	// WallClock reads real time (traces then vary run to run).
	WallClock = obs.WallClock
	// WriteMetricsSummary renders a snapshot as an aligned human-readable
	// table.
	WriteMetricsSummary = obs.WriteSummary
	// WriteMetricsProm renders a snapshot in Prometheus text exposition
	// format.
	WriteMetricsProm = obs.WritePrometheus
)

// ObserveContext attaches an observer to ctx so context-driven stages
// (benchmark compilation, the parallel worker pool) can record into it; a
// nil observer returns ctx unchanged.
func ObserveContext(ctx context.Context, o *Observer) context.Context {
	return obs.With(ctx, o)
}

// Machine presets.
var (
	// Paper2Cluster is the paper's evaluation machine: 2 homogeneous
	// clusters x {2 integer, 1 float, 1 memory, 1 branch}, one intercluster
	// move per cycle at the given latency (the paper uses 1, 5, and 10).
	Paper2Cluster = machine.Paper2Cluster
	// FourCluster scales the paper machine to four clusters.
	FourCluster = machine.FourCluster
	// Heterogeneous2 doubles cluster 0's integer bandwidth (§2's example).
	Heterogeneous2 = machine.Heterogeneous2
	// WithMemCapacities sets per-cluster scratchpad capacities on a copy
	// of a machine; the data partitioner then balances object bytes to the
	// capacity ratios (the paper's parameterized balance, §3.3.2).
	WithMemCapacities = machine.WithMemCapacities
	// RingFour is a four-cluster machine on a nearest-neighbor ring
	// (tiled-machine interconnect; moves cost MoveLatency per hop).
	RingFour = machine.RingFour
	// EightCluster scales the paper machine to eight bus-connected
	// clusters.
	EightCluster = machine.EightCluster
	// Ring8 is an eight-cluster nearest-neighbor ring.
	Ring8 = machine.Ring8
	// Mesh4 is a 2x2 mesh: moves cost Manhattan-hops x MoveLatency.
	Mesh4 = machine.Mesh4
	// Mesh8 is a 2x4 mesh.
	Mesh8 = machine.Mesh8
	// NUMA4 is a four-cluster near-data machine: two 2-cluster nodes with
	// cheap intra-node moves, 4x-latency inter-node moves, and asymmetric
	// scratchpad capacities (clusters 0-1 hold 3x the bytes of 2-3).
	NUMA4 = machine.NUMA4
	// WithLatencyMatrix replaces a machine's interconnect with an explicit
	// per-pair move-latency matrix (validated: zero diagonal, symmetric,
	// positive off-diagonal).
	WithLatencyMatrix = machine.WithLatencyMatrix
	// AsMatrix re-expresses any machine's interconnect as its explicit
	// latency matrix; results are byte-identical to the structural
	// topology (the cross-topology conformance suite pins this).
	AsMatrix = machine.AsMatrix
	// MachinePreset resolves a preset name (paper2, four, eight, hetero2,
	// ring4, ring8, mesh4, mesh8, numa4) to a machine at the given move
	// latency.
	MachinePreset = machine.Preset
	// MachinePresetNames lists the names MachinePreset accepts.
	MachinePresetNames = machine.PresetNames
)

// Program is a compiled, analyzed, and profiled program — the input every
// partitioning scheme shares.
type Program struct {
	c *eval.Compiled
}

// CompileOptions tunes the front end.
type CompileOptions struct {
	// Unroll is the innermost-loop unrolling factor; 0 means the default
	// (4, matching aggressive VLIW compilation), 1 disables unrolling.
	Unroll int
	// NoOptimize disables the classical optimizer (constant folding, copy
	// propagation, CSE, dead-code elimination) that otherwise runs before
	// analysis, as it would in the paper's Trimaran toolchain.
	NoOptimize bool
	// MaxSteps bounds the profiling run (the usual sentinel: non-positive
	// means the default of 10 million steps).
	MaxSteps int64
	// LegacyInterp profiles with the tree-walking interpreter instead of
	// the bytecode VM (ablation and differential debugging; results are
	// identical, only wall time changes).
	LegacyInterp bool
	// CacheDir names a persistent artifact-store directory (see
	// Options.CacheDir): when the store holds a profile for this exact
	// module, compilation skips the profiling execution entirely. Empty
	// disables the disk cache.
	CacheDir string
	// CacheMaxBytes bounds the artifact log (non-positive: the store's
	// 1 GiB default).
	CacheMaxBytes int64
	// MaxBytes bounds the heap the profiling run may allocate; exceeding it
	// fails compilation with a typed *interp.BudgetError. Non-positive
	// means no byte budget.
	MaxBytes int64
}

// Compile builds a Program from mclang source with default options.
func Compile(name, source string) (*Program, error) {
	return CompileWithOptions(name, source, CompileOptions{})
}

// CompileWithOptions builds a Program with explicit front-end options.
func CompileWithOptions(name, source string, opts CompileOptions) (*Program, error) {
	return CompileCtx(context.Background(), name, source, opts)
}

// CompileCtx is CompileWithOptions under a context: cancellation and
// deadline bound the profiling run, and an observer attached with
// ObserveContext records parse/pointsto/profile spans for the compilation.
func CompileCtx(ctx context.Context, name, source string, opts CompileOptions) (p *Program, err error) {
	defer contain(&err)
	unroll := opts.Unroll
	if unroll == 0 {
		unroll = eval.DefaultUnroll
	}
	c, err := eval.PrepareFullOpts(ctx, name, source, unroll, !opts.NoOptimize,
		eval.Options{MaxSteps: opts.MaxSteps, MaxBytes: opts.MaxBytes,
			LegacyInterp: opts.LegacyInterp,
			CacheDir:     opts.CacheDir, CacheMaxBytes: opts.CacheMaxBytes})
	if err != nil {
		return nil, err
	}
	return &Program{c: c}, nil
}

// Name returns the program's name.
func (p *Program) Name() string { return p.c.Name }

// Checksum returns main's return value from the profiling run.
func (p *Program) Checksum() int64 { return p.c.Ret }

// Module exposes the underlying IR for advanced use (printing, custom
// analyses).
func (p *Program) Module() *ir.Module { return p.c.Mod }

// Profile exposes the dynamic profile gathered during compilation.
func (p *Program) Profile() *interp.Profile { return p.c.Prof }

// ObjectInfo summarizes one data object for reporting.
type ObjectInfo struct {
	ID       int
	Name     string
	Heap     bool
	Bytes    int64 // profiled size (allocated bytes for heap sites)
	Accesses int64 // dynamic load/store count
}

// Objects lists the program's data objects in ID order.
func (p *Program) Objects() []ObjectInfo {
	out := make([]ObjectInfo, 0, len(p.c.Mod.Objects))
	for _, o := range p.c.Mod.Objects {
		bytes := o.Size
		if b, ok := p.c.Prof.ObjBytes[o.ID]; ok && b > 0 {
			bytes = b
		}
		out = append(out, ObjectInfo{
			ID:       o.ID,
			Name:     o.Name,
			Heap:     o.Kind == ir.ObjHeap,
			Bytes:    bytes,
			Accesses: p.c.Prof.ObjAccess[o.ID],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// MemoStats are the counters of the program's partition-result memoization
// cache (internal/memo): how many per-function partition/schedule/lock
// computations were answered from cache versus computed. All-zero when
// memoization is disabled (Options.NoMemo, or a Program built without it).
// The counters describe work saved, never results: cached and uncached
// evaluations are byte-identical.
type MemoStats struct {
	Hits       uint64 // computations answered from the cache
	Misses     uint64 // computations actually run
	Waits      uint64 // hits that waited on an in-flight computation
	Promotions uint64 // hits served by decoding the persistent disk tier
	Evictions  uint64 // entries dropped by the LRU bound
	Entries    int    // entries currently resident
}

// MemoStats reports the program's memoization-cache counters.
func (p *Program) MemoStats() MemoStats {
	s := p.c.MemoStats()
	return MemoStats{
		Hits:       s.Hits,
		Misses:     s.Misses,
		Waits:      s.Waits,
		Promotions: s.Promotions,
		Evictions:  s.Evictions,
		Entries:    s.Entries,
	}
}

// ShrinkMemo evicts least-recently-used memoization entries until at most n
// remain. Results are unaffected — evicted entries recompute (or reload
// from the disk tier) on next use; this is the memory-pressure release
// valve for long-lived Programs (the gdpd daemon calls it when the process
// heap crosses its ceiling).
func (p *Program) ShrinkMemo(n int) { p.c.ShrinkMemo(n) }

// SetMemoCapacity rebounds the program's memoization cache (non-positive
// selects the default capacity), evicting immediately if over the new
// bound.
func (p *Program) SetMemoCapacity(n int) { p.c.SetMemoCapacity(n) }

// StoreStats are the persistent artifact store's counters (internal/store):
// disk-tier hits and misses, records written, corrupt records skipped, and
// log size. All-zero when no cache directory is attached. Like MemoStats
// they describe work saved, never results.
type StoreStats = store.Stats

// StoreStats reports the program's artifact-store counters (zero value
// when CompileOptions.CacheDir / Options.CacheDir was never set).
func (p *Program) StoreStats() StoreStats { return p.c.StoreStats() }

// Evaluate runs one scheme on the program and machine.
func Evaluate(p *Program, m *Machine, s Scheme, opts Options) (*Result, error) {
	return EvaluateCtx(context.Background(), p, m, s, opts)
}

// EvaluateCtx is Evaluate under a context: cancellation stops the
// partitioning pipeline between stages. With Options.Fallback set, a
// failing or invalid scheme degrades along the GDP→ProfileMax→Naive chain
// exactly as in the matrix runners, recording the substitution in
// Result.Degraded.
func EvaluateCtx(ctx context.Context, p *Program, m *Machine, s Scheme, opts Options) (r *Result, err error) {
	defer contain(&err)
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if opts.Fallback {
		return eval.RunSchemeFallbackCtx(ctx, p.c, m, s, opts)
	}
	return eval.RunSchemeCtx(ctx, p.c, m, s, opts)
}

// EvaluateAll runs all four Table 1 schemes.
func EvaluateAll(p *Program, m *Machine) (*Comparison, error) {
	return EvaluateAllWithOptions(p, m, Options{})
}

// EvaluateAllWithOptions runs all four schemes with explicit options.
func EvaluateAllWithOptions(p *Program, m *Machine, opts Options) (*Comparison, error) {
	return EvaluateAllCtx(context.Background(), p, m, opts)
}

// EvaluateAllCtx runs all four schemes under a context.
func EvaluateAllCtx(ctx context.Context, p *Program, m *Machine, opts Options) (c *Comparison, err error) {
	defer contain(&err)
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return eval.RunAllSchemesCtx(ctx, p.c, m, opts)
}

// EvaluateDataMap evaluates an externally chosen object mapping (lock the
// memory operations, run the computation partitioner, schedule).
func EvaluateDataMap(p *Program, m *Machine, dm DataMap, opts Options) (r *Result, err error) {
	defer contain(&err)
	if err := dm.Validate(p.c.Mod, m.NumClusters()); err != nil {
		return nil, err
	}
	return eval.RunWithDataMap(p.c, m, dm, opts)
}

// ExhaustiveSearch enumerates every data-object mapping on the machine's k
// clusters (the paper's Figure 9; k^objects points, encoded as base-k
// positional masks). maxObjects guards against blowup: at most 2^maxObjects
// mapping points (0 means 14, i.e. at most 16384 mappings).
func ExhaustiveSearch(p *Program, m *Machine, opts Options, maxObjects int) (*ExhaustiveResult, error) {
	return ExhaustiveSearchCtx(context.Background(), p, m, opts, maxObjects)
}

// ExhaustiveSearchCtx is ExhaustiveSearch under a context.
func ExhaustiveSearchCtx(ctx context.Context, p *Program, m *Machine, opts Options, maxObjects int) (r *ExhaustiveResult, err error) {
	defer contain(&err)
	return eval.ExhaustiveCtx(ctx, p.c, m, opts, maxObjects)
}

// BestMappingResult is the branch-and-bound search outcome re-exported
// from the eval package.
type BestMappingResult = eval.BestResult

// BestMapping finds the optimal data-object mapping on the machine's k
// clusters by branch and bound over object-assignment prefixes, without
// enumerating all k^n points. It returns the same optimum an exhaustive
// sweep would find, on programs too large to sweep (maxObjects 0 means 24).
func BestMapping(p *Program, m *Machine, opts Options, maxObjects int) (*BestMappingResult, error) {
	return BestMappingCtx(context.Background(), p, m, opts, maxObjects)
}

// BestMappingCtx is BestMapping under a context.
func BestMappingCtx(ctx context.Context, p *Program, m *Machine, opts Options, maxObjects int) (r *BestMappingResult, err error) {
	defer contain(&err)
	return eval.BestMappingCtx(ctx, p.c, m, opts, maxObjects)
}

// RelativePerf returns scheme performance relative to the unified-memory
// bound (1.0 = matches unified; the paper's Figures 7/8 metric).
func RelativePerf(unified, scheme *Result) float64 {
	return eval.RelativePerf(unified, scheme)
}

// PartitionData runs only the first GDP pass and returns the data map (with
// merge-group diagnostics) without partitioning computation.
func PartitionData(p *Program, clusters int, opts gdp.Options) (*gdp.Result, error) {
	return gdp.PartitionData(p.c.Mod, p.c.Prof, clusters, opts)
}

// BenchmarkNames lists the bundled benchmark programs (synthetic stand-ins
// for the paper's Mediabench + DSP suite).
func BenchmarkNames() []string { return bench.Names() }

// LoadBenchmark compiles one bundled benchmark by name.
func LoadBenchmark(name string) (*Program, error) {
	b, err := bench.Get(name)
	if err != nil {
		return nil, err
	}
	return Compile(b.Name, b.Source)
}

// BenchmarkSource returns the mclang source of a bundled benchmark.
func BenchmarkSource(name string) (string, error) {
	b, err := bench.Get(name)
	if err != nil {
		return "", err
	}
	return b.Source, nil
}

// ParseOnly parses and type-checks mclang source without lowering, useful
// for editor-style diagnostics.
func ParseOnly(source string) error {
	prog, err := mclang.Parse(source)
	if err != nil {
		return err
	}
	_, err = mclang.Analyze(prog)
	return err
}

// FormatSchedule renders the VLIW schedule (one row per cycle, one column
// per cluster) of one function under a scheme result.
func FormatSchedule(p *Program, m *Machine, r *Result, funcName string) (string, error) {
	f := p.c.Mod.Func(funcName)
	if f == nil {
		return "", fmt.Errorf("mcpart: no function %q", funcName)
	}
	asg, ok := r.Assign[f]
	if !ok {
		return "", fmt.Errorf("mcpart: result has no assignment for %q", funcName)
	}
	if err := sched.CheckAssignable(f, asg, m); err != nil {
		return "", fmt.Errorf("mcpart: %w", err)
	}
	return sched.FormatFunc(f, asg, m), nil
}

// Assignment re-exports the computation partitioner's lock type for
// advanced clients driving rhop directly.
type Locks = rhop.Locks
