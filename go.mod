module mcpart

go 1.22
