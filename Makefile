# Convenience targets for the mcpart reproduction.

GO ?= go

.PHONY: all build test test-short race check cover fuzz bench bench-quick bench-partition bench-interp bench-store bench-sweep bench-serve serve-smoke eval fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Skips the slow full-suite integration and fuzz tests.
test-short:
	$(GO) test -short ./...

# Runs the full test suite under the race detector; the parallel
# evaluation pipeline (internal/parallel, eval.Exhaustive, eval.RunMatrix)
# must stay race-free at every -j value.
race:
	$(GO) test -race ./...

# The default verification gate: formatting, build, vet, plain tests,
# race tests. fmt-check fails (listing the offending files) if any file
# is not gofmt-clean.
check: fmt-check build vet test race

.PHONY: fmt-check
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Coverage gate and report. The observability layer is pure bookkeeping —
# if a branch there is hard to cover, it is dead weight on a hot path —
# so internal/obs carries its own floor (OBS_COVER_MIN%), checked from a
# dedicated profile. The repo-wide profile (coverage.out + coverage.txt)
# is informational and uploaded as a CI artifact.
OBS_COVER_MIN ?= 85

cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out > coverage.txt
	@tail -1 coverage.txt
	$(GO) test -coverprofile=coverage_obs.out ./internal/obs/
	@pct="$$($(GO) tool cover -func=coverage_obs.out | awk '/^total:/ {gsub(/%/, "", $$3); print $$3}')"; \
	echo "internal/obs coverage: $$pct% (floor $(OBS_COVER_MIN)%)"; \
	awk -v p="$$pct" -v min="$(OBS_COVER_MIN)" 'BEGIN { exit !(p+0 < min+0) }' && \
		{ echo "internal/obs coverage $$pct% is below the $(OBS_COVER_MIN)% floor"; exit 1; } || true

# Native Go fuzzing over the six harnesses: raw bytes through the
# parser, (source, unroll) pairs through the full front end with an IR
# verifier oracle, progen seeds through the whole pipeline with the
# checksum-preservation and independent-validator oracles, mclang
# source through both profiling engines with the tree-walker as the
# differential oracle (FuzzVM), progen seeds through the Gray-code
# delta sweep with the full per-mask engine and the branch-and-bound
# search as differential oracles (FuzzSweep), and progen programs ×
# random valid machine topologies through the validated scheme suite
# and the base-k sweep differentials (FuzzTopology). `go test` accepts
# one -fuzz pattern per invocation, hence six runs. Tune with e.g.
# `make fuzz FUZZTIME=5m`.
FUZZTIME ?= 30s

fuzz:
	$(GO) test ./internal/mclang/ -run XXX -fuzz FuzzParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/mclang/ -run XXX -fuzz FuzzCompile -fuzztime $(FUZZTIME)
	$(GO) test ./internal/eval/ -run XXX -fuzz FuzzPipeline -fuzztime $(FUZZTIME)
	$(GO) test ./internal/bytecode/ -run XXX -fuzz FuzzVM -fuzztime $(FUZZTIME)
	$(GO) test ./internal/eval/ -run XXX -fuzz FuzzSweep -fuzztime $(FUZZTIME)
	$(GO) test ./internal/eval/ -run XXX -fuzz FuzzTopology -fuzztime $(FUZZTIME)

# Regenerates every table and figure of the paper as benchmark metrics.
bench:
	$(GO) test -run XXX -bench . -benchtime 1x . | tee bench_output.txt

# One-iteration smoke pass over the headline benchmarks (Table 1, the
# Figure 9 search, and the memoization A/B) — quick signal that the
# evaluation engine still runs end to end.
bench-quick:
	$(GO) test -run XXX -benchtime 1x \
		-bench 'BenchmarkTable1|BenchmarkFigure9|BenchmarkExhaustiveMemo' .

# Partitioner microbenchmarks: the fast CSR/FM path vs the legacy path
# on 1k/10k/100k synthetic graphs, plus the raw numbers refreshed into
# BENCH_partition.json (see that file for the recorded analysis).
bench-partition:
	$(GO) test ./internal/partition/ -run XXX \
		-bench 'BenchmarkBisect|BenchmarkKWay' -benchtime 5x \
		| tee bench_partition_output.txt

# Profiling-engine A/B: the bytecode VM vs the tree-walking interpreter
# on the same profiling jobs (fresh engine + one full run per iteration,
# bytecode compilation included). The raw numbers are refreshed into
# BENCH_interp.json (see that file for the recorded analysis).
bench-interp:
	$(GO) test ./internal/bytecode/ -run XXX \
		-bench 'BenchmarkProfileTree|BenchmarkProfileVM' -benchtime 5x \
		| tee bench_interp_output.txt

# Persistent artifact-store A/B: the Figure 9 sweep cold (empty cache)
# vs warm after a simulated process restart (open + index rebuild +
# deserialization all inside the timed warm run). The raw numbers are
# refreshed into BENCH_store.json (see that file for the recorded
# analysis and the >=5x acceptance target).
bench-store:
	$(GO) test -run XXX -bench BenchmarkStoreWarmRestart -benchtime 5x . \
		| tee bench_store_output.txt

# Sweep-engine A/B: the Gray-code delta sweep vs the full per-mask
# engine on the Figure 9 benchmarks (cold cache per engine per
# iteration, paired order-alternating runs, median-reduced), plus the
# branch-and-bound best-mapping search on a 22-object instance with a
# time-budgeted enumeration attempt for contrast. The raw numbers are
# refreshed into BENCH_sweep.json (see that file for the recorded
# analysis and the >=3x acceptance target).
bench-sweep:
	$(GO) test -run XXX \
		-bench 'BenchmarkExhaustiveSweep|BenchmarkBestMapping' \
		-benchtime 20x . | tee bench_sweep_output.txt

# gdpd load harness: the daemon self-hosted on a loopback port with fault
# injection enabled, driven with mixed traffic (all four endpoints, all
# schemes, injected faults and hopeless deadlines) at several concurrency
# levels. Every 200 is verified byte-for-byte against a serial oracle —
# a single mismatch or untyped failure fails the target. The report
# (latency percentiles + shed/degrade counts) is refreshed into
# BENCH_serve.json (see that file for the recorded analysis).
# Workers pace at 20 ms think time, so offered load is ~50 req/s per
# concurrency level regardless of machine speed; the admission envelope
# (-maxconcurrent 2 -queue 4, token bucket 250/s burst 20) then admits
# levels 1 and 4 cleanly and sheds part of level 16 — via the token
# bucket everywhere, plus queue pressure on multicore runners. Shed
# requests must be typed 429/503s, never lost or wrong.
bench-serve:
	$(GO) run ./cmd/gdpd -loadtest -levels 1,4,16 -requests 96 \
		-seed 1 -faultpct 25 -pacing 20ms -maxconcurrent 2 -queue 4 \
		-rate 250 -burst 20 \
		-o BENCH_serve.json | tee bench_serve_output.txt

# Boot-and-drain smoke test over a real socket: start gdpd with fault
# injection, wait for /healthz, exercise a clean request, a degraded
# request, and a typed injected failure, then SIGTERM and require a clean
# drain (exit 0). Complements the in-process tests with a real process
# lifecycle.
serve-smoke:
	./scripts/serve_smoke.sh

# Prints the paper's tables and figures as formatted text.
eval:
	$(GO) run ./cmd/gdpbench -all

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
