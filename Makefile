# Convenience targets for the mcpart reproduction.

GO ?= go

.PHONY: all build test test-short race check bench eval fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Skips the slow full-suite integration and fuzz tests.
test-short:
	$(GO) test -short ./...

# Runs the full test suite under the race detector; the parallel
# evaluation pipeline (internal/parallel, eval.Exhaustive, eval.RunMatrix)
# must stay race-free at every -j value.
race:
	$(GO) test -race ./...

# The default verification gate: build, vet, plain tests, race tests.
check: build vet test race

# Regenerates every table and figure of the paper as benchmark metrics.
bench:
	$(GO) test -run XXX -bench . -benchtime 1x . | tee bench_output.txt

# Prints the paper's tables and figures as formatted text.
eval:
	$(GO) run ./cmd/gdpbench -all

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
