package mcpart

// Whole-pipeline integration tests: every bundled benchmark through every
// scheme and machine, with cross-cutting invariants checked at each stage.

import (
	"testing"

	"mcpart/internal/interp"
	"mcpart/internal/ir"
	"mcpart/internal/machine"
	"mcpart/internal/sched"
)

func TestPipelineInvariantsAllBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite integration")
	}
	m := Paper2Cluster(5)
	for _, name := range BenchmarkNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			p, err := LoadBenchmark(name)
			if err != nil {
				t.Fatal(err)
			}
			cmp, err := EvaluateAll(p, m)
			if err != nil {
				t.Fatal(err)
			}
			mod := p.Module()
			for _, r := range []*Result{cmp.Unified, cmp.GDP, cmp.PMax, cmp.Naive} {
				checkResult(t, mod, p.Profile(), m, r)
			}
			// The data-cognizant schemes cannot beat unified by a huge
			// factor nor lose by one; cycles stay within sane bounds.
			for _, r := range []*Result{cmp.GDP, cmp.PMax, cmp.Naive} {
				rel := RelativePerf(cmp.Unified, r)
				if rel < 0.3 || rel > 1.6 {
					t.Errorf("%s relative perf %.2f out of plausible range", r.Scheme, rel)
				}
			}
		})
	}
}

// checkResult validates scheme-independent invariants of one result.
func checkResult(t *testing.T, mod *ir.Module, prof *interp.Profile, m *Machine, r *Result) {
	t.Helper()
	// 1. Every op assigned to a real cluster with units for its kind.
	for _, f := range mod.Funcs {
		asg := r.Assign[f]
		if len(asg) != f.NOps {
			t.Fatalf("%s/%s: assignment len %d != %d ops", r.Scheme, f.Name, len(asg), f.NOps)
		}
		for _, b := range f.Blocks {
			for _, op := range b.Ops {
				c := asg[op.ID]
				if c < 0 || c >= m.NumClusters() {
					t.Fatalf("%s/%s: op %d on cluster %d", r.Scheme, f.Name, op.ID, c)
				}
				if m.Units(c, machine.KindOf(op.Opcode)) == 0 {
					t.Fatalf("%s/%s: op %d needs %s units on cluster %d",
						r.Scheme, f.Name, op.ID, machine.KindOf(op.Opcode), c)
				}
			}
		}
	}
	// 2. Cycles are at least the profile-weighted single-issue lower bound
	// divided by total machine width, and at least the hottest block count.
	var weightedOps, maxFreq int64
	for _, f := range mod.Funcs {
		for _, b := range f.Blocks {
			fq := prof.Freq(b)
			if fq > maxFreq {
				maxFreq = fq
			}
			weightedOps += fq * int64(len(b.Ops))
		}
	}
	width := int64(0)
	for k := machine.FUKind(0); k < machine.NumFUKinds; k++ {
		width += int64(m.TotalUnits(k))
	}
	if r.Cycles < weightedOps/width {
		t.Errorf("%s: %d cycles below resource lower bound %d", r.Scheme, r.Cycles, weightedOps/width)
	}
	if r.Cycles < maxFreq {
		t.Errorf("%s: %d cycles below hottest block frequency %d", r.Scheme, r.Cycles, maxFreq)
	}
	// 3. Rescheduling the stored assignment reproduces the stored cycles
	// (results are deterministic and self-consistent).
	cyc, moves := sched.ProgramCycles(mod, r.Assign, m, prof)
	if cyc != r.Cycles || moves != r.Moves {
		t.Errorf("%s: stored cycles/moves %d/%d, recomputed %d/%d",
			r.Scheme, r.Cycles, r.Moves, cyc, moves)
	}
}

func TestIRRoundTripAllBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite round trip")
	}
	for _, name := range BenchmarkNames() {
		p, err := LoadBenchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		text := ir.Print(p.Module())
		m2, err := ir.ParseModule(text)
		if err != nil {
			t.Fatalf("%s: reparse failed: %v", name, err)
		}
		if text2 := ir.Print(m2); text2 != text {
			t.Errorf("%s: print/parse round trip differs", name)
		}
		// The reparsed module must still execute to the same checksum
		// (objects, initializers, and control flow all survived).
		v, err := interp.New(m2, interp.Options{MaxSteps: 10_000_000}).RunMain()
		if err != nil {
			t.Fatalf("%s: reparsed module does not run: %v", name, err)
		}
		if v.I != p.Checksum() {
			t.Errorf("%s: reparsed checksum %d, want %d", name, v.I, p.Checksum())
		}
	}
}

func TestSchemesDeterministicEndToEnd(t *testing.T) {
	m := Paper2Cluster(5)
	for _, name := range []string{"rawcaudio", "viterbi"} {
		p1, err := LoadBenchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := LoadBenchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		c1, err := EvaluateAll(p1, m)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := EvaluateAll(p2, m)
		if err != nil {
			t.Fatal(err)
		}
		pairs := [][2]*Result{
			{c1.Unified, c2.Unified}, {c1.GDP, c2.GDP},
			{c1.PMax, c2.PMax}, {c1.Naive, c2.Naive},
		}
		for _, pr := range pairs {
			if pr[0].Cycles != pr[1].Cycles || pr[0].Moves != pr[1].Moves {
				t.Errorf("%s/%s: nondeterministic: %d/%d vs %d/%d",
					name, pr[0].Scheme, pr[0].Cycles, pr[0].Moves, pr[1].Cycles, pr[1].Moves)
			}
		}
	}
}

func TestFourClusterEndToEnd(t *testing.T) {
	m := FourCluster(5)
	p, err := LoadBenchmark("cjpeg")
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := EvaluateAll(p, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := cmp.GDP.DataMap.Validate(p.Module(), 4); err != nil {
		t.Error(err)
	}
	checkResult(t, p.Module(), p.Profile(), m, cmp.GDP)
}

func TestHeterogeneousEndToEnd(t *testing.T) {
	m := Heterogeneous2(5)
	p, err := LoadBenchmark("sobel")
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := EvaluateAll(p, m)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, p.Module(), p.Profile(), m, cmp.GDP)
	// The bigger cluster 0 should receive at least as many hot ops as
	// cluster 1 under the unified scheme.
	var onBig, onSmall int64
	for _, f := range p.Module().Funcs {
		asg := cmp.Unified.Assign[f]
		for _, b := range f.Blocks {
			fq := p.Profile().Freq(b)
			for _, op := range b.Ops {
				if asg[op.ID] == 0 {
					onBig += fq
				} else {
					onSmall += fq
				}
			}
		}
	}
	if onBig < onSmall {
		t.Errorf("heterogeneous machine: big cluster got %d weighted ops, small %d", onBig, onSmall)
	}
}

// TestSchedulerSelfCheckAllBenchmarks validates every produced schedule
// against resources, bus bandwidth, and dependence latencies.
func TestSchedulerSelfCheckAllBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite self check")
	}
	m := Paper2Cluster(5)
	for _, name := range BenchmarkNames() {
		p, err := LoadBenchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		cmp, err := EvaluateAll(p, m)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range []*Result{cmp.Unified, cmp.GDP, cmp.PMax, cmp.Naive} {
			for _, f := range p.Module().Funcs {
				if err := sched.CheckFunc(f, r.Assign[f], m); err != nil {
					t.Errorf("%s/%s: %v", name, r.Scheme, err)
				}
			}
		}
	}
}
