package mcpart

// BenchmarkStoreWarmRestart measures the persistent artifact store
// (internal/store, DESIGN.md §12) on the workload it exists for: the
// Figure 9 exhaustive sweep, run cold (empty cache directory) and then
// warm in a simulated fresh process. The warm timing is honest — it
// includes reopening the log, rebuilding the in-memory index from disk,
// and deserializing every served artifact, because the shared store
// handle is dropped between the two runs. Results of all three runs
// (no-cache reference, cold, warm) are checked deeply equal every
// iteration; the numbers are recorded in BENCH_store.json.
//
//	make bench-store

import (
	"reflect"
	"testing"
	"time"

	"mcpart/internal/bench"
	"mcpart/internal/eval"
	"mcpart/internal/machine"
	"mcpart/internal/store"
)

func BenchmarkStoreWarmRestart(b *testing.B) {
	for _, name := range []string{"rawcaudio", "rawdaudio"} {
		b.Run(name, func(b *testing.B) {
			bm, err := bench.Get(name)
			if err != nil {
				b.Fatal(err)
			}
			cfg := machine.Paper2Cluster(5)
			cref, err := eval.Prepare(bm.Name, bm.Source)
			if err != nil {
				b.Fatal(err)
			}
			ref, err := eval.Exhaustive(cref, cfg, eval.Options{Workers: 1}, 14)
			if err != nil {
				b.Fatal(err)
			}
			sweep := func(dir string) (*eval.ExhaustiveResult, error) {
				opts := eval.Options{Workers: 1, CacheDir: dir}
				c, err := eval.PrepareOpts(nil, bm.Name, bm.Source, opts)
				if err != nil {
					return nil, err
				}
				return eval.Exhaustive(c, cfg, opts, 14)
			}
			var cold, warm time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dir := b.TempDir()
				t0 := time.Now()
				exCold, err := sweep(dir)
				if err != nil {
					b.Fatal(err)
				}
				if err := store.FlushShared(dir); err != nil {
					b.Fatal(err)
				}
				cold += time.Since(t0)
				// Simulated restart: close and forget the shared handle so
				// the warm sweep pays the real open + index rebuild.
				if err := store.DropShared(dir); err != nil {
					b.Fatal(err)
				}
				t1 := time.Now()
				exWarm, err := sweep(dir)
				if err != nil {
					b.Fatal(err)
				}
				warm += time.Since(t1)
				if !reflect.DeepEqual(ref, exCold) || !reflect.DeepEqual(ref, exWarm) {
					b.Fatal("cached exhaustive sweep differs from the no-cache reference")
				}
				if err := store.DropShared(dir); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(cold.Seconds()/float64(b.N), "cold-s/op")
			b.ReportMetric(warm.Seconds()/float64(b.N), "warm-s/op")
			b.ReportMetric(cold.Seconds()/warm.Seconds(), "speedup-x")
		})
	}
}
