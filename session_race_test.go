package mcpart

// session_race_test.go is the concurrency torture test for the shared
// Session and the shared artifact store (run it under -race; `make race`
// does). Many goroutines hammer one Session with mixed work — evaluations
// across benchmarks and schemes, racing compiles, random cancellations —
// while another goroutine repeatedly drops and reopens the shared store
// handle (store.DropShared / store.OpenShared), simulating cache restarts
// under load. The assertion is the repository's determinism contract under
// fire: every request either fails with a cancellation it asked for or
// returns exactly the serial oracle's numbers. Shared caches are a
// wall-time optimization, never a source of cross-request contamination.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mcpart/internal/bench"
	"mcpart/internal/store"
)

// raceCase is one request shape the hammer cycles through.
type raceCase struct {
	bench  string
	scheme Scheme
}

// TestSessionStoreRaceHammer is the satellite race test. It is modest in
// the default run (seconds) but every access is exercised under the race
// detector in `make race`.
func TestSessionStoreRaceHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("hammer test skipped in -short")
	}
	dir := t.TempDir()
	t.Cleanup(func() { store.DropShared(dir) })
	s := NewSession(SessionOptions{CacheDir: dir, MaxPrograms: 3})
	defer s.Close()
	m := Paper2Cluster(5)

	cases := []raceCase{
		{"fir", SchemeGDP},
		{"fir", SchemeProfileMax},
		{"fsed", SchemeGDP},
		{"fsed", SchemeNaive},
		{"viterbi", SchemeUnified},
		{"viterbi", SchemeGDP},
	}
	type oracle struct {
		cycles, moves int64
		dm            string
	}
	want := make(map[raceCase]oracle, len(cases))
	sources := map[string]string{}
	for _, c := range cases {
		b, err := bench.Get(c.bench)
		if err != nil {
			t.Fatal(err)
		}
		sources[c.bench] = b.Source
		if _, ok := want[c]; ok {
			continue
		}
		p, err := Compile(c.bench, b.Source)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Evaluate(p, m, c.scheme, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want[c] = oracle{r.Cycles, r.Moves, fmt.Sprint(r.DataMap)}
	}

	const (
		workers  = 8
		requests = 12 // per worker
	)
	stop := make(chan struct{})
	chaosDone := make(chan struct{})

	// The store chaos goroutine: drop and reopen the shared handle under
	// live traffic. A dropped handle degrades reads to recomputes and sheds
	// writes — it must never change results.
	go func() {
		defer close(chaosDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				store.DropShared(dir)
			} else {
				store.OpenShared(dir, store.Options{})
			}
			time.Sleep(time.Millisecond)
		}
	}()

	var failures sync.Map
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < requests; i++ {
				c := cases[(w+i)%len(cases)]
				ctx, cancel := context.WithCancel(context.Background())
				// A third of the requests cancel themselves mid-flight.
				if (w+i)%3 == 0 {
					go func() {
						time.Sleep(time.Duration((w*7+i)%5) * 100 * time.Microsecond)
						cancel()
					}()
				}
				r, err := s.Evaluate(ctx, c.bench, sources[c.bench], m, c.scheme, Request{})
				cancel()
				if err != nil {
					if isCancellation(err) || errors.Is(err, context.Canceled) {
						continue // the cancellation this request asked for
					}
					failures.Store(fmt.Sprintf("w%d/%d %s/%s", w, i, c.bench, c.scheme), err)
					continue
				}
				o := want[c]
				if r.Cycles != o.cycles || r.Moves != o.moves || fmt.Sprint(r.DataMap) != o.dm {
					failures.Store(fmt.Sprintf("w%d/%d %s/%s", w, i, c.bench, c.scheme),
						fmt.Errorf("got (%d, %d, %v), want (%d, %d, %s)",
							r.Cycles, r.Moves, r.DataMap, o.cycles, o.moves, o.dm))
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("hammer deadlocked")
	}
	close(stop)
	<-chaosDone
	failures.Range(func(k, v any) bool {
		t.Errorf("%s: %v", k, v)
		return true
	})

	// After the dust settles the session still serves a clean request with
	// oracle-exact results.
	store.OpenShared(dir, store.Options{})
	c := cases[0]
	r, err := s.Evaluate(context.Background(), c.bench, sources[c.bench], m, c.scheme, Request{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if o := want[c]; r.Cycles != o.cycles || r.Moves != o.moves {
		t.Fatalf("post-hammer request diverged: (%d, %d) want (%d, %d)", r.Cycles, r.Moves, o.cycles, o.moves)
	}
}
