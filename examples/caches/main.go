// Cache extension study (the paper's §5 future work): what happens to a
// data partition when the per-cluster memories are finite caches instead of
// perfect scratchpads? This example traces a benchmark's memory accesses,
// replays them through per-cluster LRU caches under three placements (GDP,
// colocated, round-robin), and compares against one unified cache of the
// combined capacity.
package main

import (
	"fmt"
	"log"

	"mcpart"
	"mcpart/internal/cache"
	"mcpart/internal/gdp"
)

func main() {
	prog, err := mcpart.LoadBenchmark("djpeg")
	if err != nil {
		log.Fatal(err)
	}
	tr, err := cache.Collect(prog.Module(), 20_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("djpeg: traced %d memory accesses over %d objects\n\n",
		len(tr), len(prog.Objects()))

	m := mcpart.Paper2Cluster(5)
	g, err := mcpart.Evaluate(prog, m, mcpart.SchemeGDP, mcpart.Options{})
	if err != nil {
		log.Fatal(err)
	}

	ccfg := cache.Config{SizeBytes: 2048, LineBytes: 32, Assoc: 2, MissPenalty: 20}
	fmt.Printf("per-cluster caches: %d B, %d-way, %d-byte lines, %d-cycle miss\n\n",
		ccfg.SizeBytes, ccfg.Assoc, ccfg.LineBytes, ccfg.MissPenalty)

	show := func(label string, dm gdp.DataMap) {
		r, err := cache.ReplayPartitioned(tr, dm, 2, ccfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s miss rate %5.2f%%  misses/cluster %v  +%d cycles\n",
			label, 100*r.MissRate(), r.Misses, r.ExtraCyc)
	}
	show("GDP", g.DataMap)
	colocated := make(gdp.DataMap, len(g.DataMap))
	show("colocated", colocated)
	rr := make(gdp.DataMap, len(g.DataMap))
	for i := range rr {
		rr[i] = i % 2
	}
	show("round-robin", rr)

	uni, err := cache.ReplayUnified(tr, 2, ccfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-12s miss rate %5.2f%%  (single %d B cache)\n",
		"unified", 100*uni.MissRate(), 2*ccfg.SizeBytes)

	fmt.Println("\nGDP's byte-balanced placement also balances cache pressure — and can")
	fmt.Println("even beat one unified cache of the combined size, because isolating")
	fmt.Println("objects in separate caches removes their conflict misses, while")
	fmt.Println("colocating everything thrashes a single cluster's cache. This is")
	fmt.Println("the behaviour the paper's §5 conjectures data partitioning brings")
	fmt.Println("to cache-based memory systems.")
}
