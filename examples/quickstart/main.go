// Quickstart: compile a small program, partition it for the paper's
// 2-cluster VLIW machine with each scheme, and print the outcome.
package main

import (
	"fmt"
	"log"

	"mcpart"
)

const src = `
// A toy image pipeline: brighten into a temp buffer, then threshold.
global int pixels[256];
global int bright[256];
global int mask[256];

func brighten(int n) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        int v = pixels[i] + 32;
        if (v > 255) { v = 255; }
        bright[i] = v;
    }
}

func threshold(int n, int cut) int {
    int i;
    int count = 0;
    for (i = 0; i < n; i = i + 1) {
        if (bright[i] > cut) { mask[i] = 1; count = count + 1; } else { mask[i] = 0; }
    }
    return count;
}

func main() int {
    int i;
    for (i = 0; i < 256; i = i + 1) { pixels[i] = (i * 37 + 11) % 256; }
    brighten(256);
    return threshold(256, 128);
}`

func main() {
	prog, err := mcpart.Compile("quickstart", src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %s; main() returned %d during profiling\n\n",
		prog.Name(), prog.Checksum())

	fmt.Println("data objects discovered by the compiler:")
	for _, o := range prog.Objects() {
		fmt.Printf("  %-10s %5d bytes, %6d dynamic accesses\n", o.Name, o.Bytes, o.Accesses)
	}

	machine := mcpart.Paper2Cluster(5) // 5-cycle intercluster moves
	cmp, err := mcpart.EvaluateAll(prog, machine)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nscheme results on %s:\n", machine.Name)
	show := func(r *mcpart.Result) {
		rel := 100 * mcpart.RelativePerf(cmp.Unified, r)
		fmt.Printf("  %-11s %8d cycles  %6d moves  %6.1f%% of unified",
			r.Scheme, r.Cycles, r.Moves, rel)
		if r.DataMap != nil {
			fmt.Printf("  homes=%v", r.DataMap)
		}
		fmt.Println()
	}
	show(cmp.Unified)
	show(cmp.GDP)
	show(cmp.PMax)
	show(cmp.Naive)

	fmt.Println("\nGDP's object placement:")
	for _, o := range prog.Objects() {
		fmt.Printf("  %-10s -> cluster %d\n", o.Name, cmp.GDP.DataMap[o.ID])
	}
}
