// The paper's motivating workload: the ADPCM audio coder (rawcaudio).
// This example walks the full pipeline the way §3 describes it —
// points-to-annotated objects, access-pattern merge groups, the first-pass
// data partition, and the second-pass computation partition — and sweeps
// the intercluster move latency like Figures 7 and 8.
package main

import (
	"fmt"
	"log"

	"mcpart"
	"mcpart/internal/gdp"
)

func main() {
	prog, err := mcpart.LoadBenchmark("rawcaudio")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rawcaudio: IMA ADPCM encoder over 1200 PCM samples")
	fmt.Printf("profiling checksum: %d\n\n", prog.Checksum())

	// First pass in isolation: global data partitioning (§3.3).
	dp, err := mcpart.PartitionData(prog, 2, gdp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	objs := prog.Objects()
	fmt.Println("access-pattern merge groups (§3.3.1):")
	for gi, group := range dp.Groups {
		fmt.Printf("  group %d (%d bytes):", gi, dp.GroupBytes[gi])
		for _, id := range group {
			fmt.Printf(" %s", objs[id].Name)
		}
		fmt.Println()
	}
	fmt.Println("\nfirst-pass data partition (§3.3.2):")
	for _, o := range objs {
		fmt.Printf("  %-16s -> cluster %d memory\n", o.Name, dp.DataMap[o.ID])
	}

	// Full pipeline across move latencies (Figures 7, 8a, 8b).
	fmt.Println("\nlatency sweep (performance relative to unified memory):")
	fmt.Printf("%8s %12s %12s %12s\n", "latency", "GDP", "ProfileMax", "Naive")
	for _, lat := range []int{1, 5, 10} {
		m := mcpart.Paper2Cluster(lat)
		cmp, err := mcpart.EvaluateAll(prog, m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %11.1f%% %11.1f%% %11.1f%%\n", lat,
			100*mcpart.RelativePerf(cmp.Unified, cmp.GDP),
			100*mcpart.RelativePerf(cmp.Unified, cmp.PMax),
			100*mcpart.RelativePerf(cmp.Unified, cmp.Naive))
	}

	// How close is GDP to the best achievable mapping? (Figure 9.)
	m := mcpart.Paper2Cluster(5)
	ex, err := mcpart.ExhaustiveSearch(prog, m, mcpart.Options{}, 14)
	if err != nil {
		log.Fatal(err)
	}
	gdpPt := ex.Find(ex.GDPMask)
	fmt.Printf("\nexhaustive search over %d mappings: best %d, worst %d cycles\n",
		len(ex.Points), ex.Best, ex.Worst)
	fmt.Printf("GDP's mapping achieves %.3fx of the worst (best possible: %.3fx)\n",
		gdpPt.PerfVsWorst, float64(ex.Worst)/float64(ex.Best))
}
