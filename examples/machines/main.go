// Machine-configuration study: how the same program partitions onto
// different multicluster targets — the paper's 2-cluster machine at three
// move latencies, a 4-cluster scaling, and the heterogeneous 2-cluster
// machine from the paper's §2 (cluster 0 with twice the integer units,
// where "balanced" means 2:1 op counts).
package main

import (
	"fmt"
	"log"

	"mcpart"
)

func main() {
	prog, err := mcpart.LoadBenchmark("sobel")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sobel 3x3 edge detector on every machine preset")

	machines := []*mcpart.Machine{
		mcpart.Paper2Cluster(1),
		mcpart.Paper2Cluster(5),
		mcpart.Paper2Cluster(10),
		mcpart.FourCluster(5),
		mcpart.Heterogeneous2(5),
	}
	fmt.Printf("%-16s %10s %10s %10s %8s\n", "machine", "unified", "GDP", "rel", "moves")
	for _, m := range machines {
		cmp, err := mcpart.EvaluateAll(prog, m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %10d %10d %9.1f%% %8d\n", m.Name,
			cmp.Unified.Cycles, cmp.GDP.Cycles,
			100*mcpart.RelativePerf(cmp.Unified, cmp.GDP), cmp.GDP.Moves)
	}

	// Asymmetric scratchpads: cluster 0 has 3x the memory of cluster 1;
	// the data partitioner honors the capacity ratio (paper §3.3.2).
	asym, err := mcpart.WithMemCapacities(mcpart.Paper2Cluster(5), 3*8192, 8192)
	if err != nil {
		log.Fatal(err)
	}
	asym.Name = "asym-mem-3:1"
	cmpA, err := mcpart.EvaluateAll(prog, asym)
	if err != nil {
		log.Fatal(err)
	}
	var b0, b1 int64
	for _, o := range prog.Objects() {
		if cmpA.GDP.DataMap[o.ID] == 0 {
			b0 += o.Bytes
		} else {
			b1 += o.Bytes
		}
	}
	fmt.Printf("\nasymmetric memories (3:1): GDP placed %d B on cluster 0, %d B on cluster 1\n", b0, b1)

	// On the 4-cluster machine, show where the data landed.
	m4 := mcpart.FourCluster(5)
	cmp, err := mcpart.EvaluateAll(prog, m4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n4-cluster GDP data placement:")
	byCluster := map[int][]string{}
	for _, o := range prog.Objects() {
		c := cmp.GDP.DataMap[o.ID]
		byCluster[c] = append(byCluster[c], fmt.Sprintf("%s(%dB)", o.Name, o.Bytes))
	}
	for c := 0; c < 4; c++ {
		fmt.Printf("  cluster %d: %v\n", c, byCluster[c])
	}
}
