// Exhaustive data-mapping exploration of a user-written kernel (the
// methodology behind the paper's Figure 9), showing how strongly placement
// decisions matter for a pointer-heavy workload: a hash-join-style kernel
// where one probe loop touches two tables through a conditionally assigned
// pointer — the shape of the paper's Figure 4.
package main

import (
	"fmt"
	"log"
	"sort"

	"mcpart"
)

const src = `
global int hot[128];
global int cold[128];
global int hist[16];

func probe(int n) int {
    int i;
    int hits = 0;
    for (i = 0; i < n; i = i + 1) {
        int *t;
        int key = (i * 2654435761) % 128;
        if (key < 0) { key = -key; }
        if (key % 4 != 0) { t = hot; } else { t = cold; }
        int v = t[key];
        hist[v % 16] = hist[v % 16] + 1;
        if (v > 64) { hits = hits + 1; }
    }
    return hits;
}

func main() int {
    int i;
    for (i = 0; i < 128; i = i + 1) { hot[i] = i; cold[i] = 128 - i; }
    return probe(512);
}`

func main() {
	prog, err := mcpart.Compile("hashprobe", src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("kernel objects (note: `hot` and `cold` merge — one load reaches both):")
	for _, o := range prog.Objects() {
		fmt.Printf("  %-6s %5d bytes %6d accesses\n", o.Name, o.Bytes, o.Accesses)
	}

	m := mcpart.Paper2Cluster(10) // high latency makes placement critical
	ex, err := mcpart.ExhaustiveSearch(prog, m, mcpart.Options{}, 14)
	if err != nil {
		log.Fatal(err)
	}

	sorted := ex.Points
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Cycles < sorted[j].Cycles })

	fmt.Printf("\n%d mappings evaluated; best %d cycles, worst %d cycles\n",
		len(sorted), ex.Best, ex.Worst)
	fmt.Println("top five mappings (mask bit i = cluster of object i):")
	for _, p := range sorted[:5] {
		marks := ""
		if p.Mask == ex.GDPMask {
			marks = "  <- GDP's choice"
		}
		fmt.Printf("  mask %04b  %7d cycles  imbalance %.2f%s\n",
			p.Mask, p.Cycles, p.Imbalance, marks)
	}
	gp := ex.Find(ex.GDPMask)
	pp := ex.Find(ex.PMaxMask)
	fmt.Printf("\nGDP  picked mask %04b: %.3fx of worst, imbalance %.2f\n",
		gp.Mask, gp.PerfVsWorst, gp.Imbalance)
	fmt.Printf("PMax picked mask %04b: %.3fx of worst, imbalance %.2f\n",
		pp.Mask, pp.PerfVsWorst, pp.Imbalance)
	fmt.Println("\nGDP must keep the merged {hot, cold} group together and balance bytes;")
	fmt.Println("faster but fully-imbalanced mappings exist — the Figure 9 trade-off the")
	fmt.Println("paper discusses (they are achievable by loosening gdp.Options.MemTol).")
}
