package mcpart

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"mcpart/internal/bytecode"
	"mcpart/internal/interp"
	"mcpart/internal/mclang"
	"mcpart/internal/opt"
	"mcpart/internal/pointsto"
	"mcpart/internal/progen"
)

// TestVMProfileTimeBudget is the profiling half of the timing regression
// guard: the bytecode VM must stay within 2% of the per-run time recorded
// in BENCH_interp.json for its anchor workload. Like the memoization
// check, a wall-clock comparison against a recorded baseline only means
// something on the runner that recorded it, so the check is opt-in via
// MCPART_TIMING_BUDGET=1 (plain `go test` runs skip it and rely on the
// machine-independent differential and zero-alloc guards in
// internal/bytecode).
func TestVMProfileTimeBudget(t *testing.T) {
	if os.Getenv("MCPART_TIMING_BUDGET") == "" {
		t.Skip("set MCPART_TIMING_BUDGET=1 on the BENCH_interp.json reference runner to enable")
	}
	data, err := os.ReadFile("BENCH_interp.json")
	if err != nil {
		t.Fatal(err)
	}
	var rec struct {
		Results struct {
			VMSPerOp float64 `json:"vm_profile_s_per_op"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Results.VMSPerOp <= 0 {
		t.Fatal("BENCH_interp.json has no vm_profile_s_per_op")
	}

	// The recorded anchor workload: progen seed 137 under the enlarged
	// generator options of BenchmarkProfileVM (~18.4M steps), prepared
	// through the same front-end pipeline.
	src := progen.Generate(137, progen.Options{
		MaxGlobals: 12, MaxFuncs: 8, MaxStmtDepth: 5, MaxLoopTrip: 24,
	})
	mod, err := mclang.CompileUnrolled(src, "progen-large", 4)
	if err != nil {
		t.Fatal(err)
	}
	opt.Optimize(mod)
	pointsto.Analyze(mod)

	// Same shape as one BenchmarkProfileVM iteration: compile, run, and
	// reconstruct the Profile, all timed. Best-of-3 filters scheduler
	// noise in the direction that matters for a ceiling check.
	best := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		t0 := time.Now()
		prog, err := bytecode.Compile(mod)
		if err != nil {
			t.Fatal(err)
		}
		vm := bytecode.NewVM(prog, interp.Options{})
		if _, err := vm.RunMain(); err != nil {
			t.Fatal(err)
		}
		_ = vm.Profile()
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	budget := time.Duration(rec.Results.VMSPerOp * 1.02 * float64(time.Second))
	t.Logf("vm profiling: best %.4fs, budget %.4fs (recorded %.4fs + 2%%)",
		best.Seconds(), budget.Seconds(), rec.Results.VMSPerOp)
	if best > budget {
		t.Errorf("vm profiling took %.4fs, budget %.4fs", best.Seconds(), budget.Seconds())
	}
}
