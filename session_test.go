package mcpart

// session_test.go pins the Session facade's sharing and isolation
// contracts: singleflight compilation, LRU eviction, the memory-pressure
// release valve, error non-caching (one request's cancellation never
// poisons another's result), and that a Session evaluation is
// result-identical to the one-shot facade.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mcpart/internal/bench"
)

func sessionBench(t testing.TB, name string) (string, string) {
	t.Helper()
	b, err := bench.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return b.Name, b.Source
}

// TestSessionSingleflight pins that N racing requests for the same program
// compile it exactly once and share the same Program value.
func TestSessionSingleflight(t *testing.T) {
	s := NewSession(SessionOptions{})
	defer s.Close()
	name, src := sessionBench(t, "fir")

	const n = 8
	progs := make([]*Program, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := s.Compile(context.Background(), name, src, Request{})
			if err != nil {
				t.Errorf("Compile: %v", err)
				return
			}
			progs[i] = p
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if progs[i] != progs[0] {
			t.Fatalf("request %d got a different Program instance", i)
		}
	}
	st := s.Stats()
	if st.Misses != 1 || st.Hits != n-1 || st.Programs != 1 {
		t.Fatalf("stats after %d racing compiles: %+v", n, st)
	}

	// A different front-end variant is a different program.
	p2, err := s.Compile(context.Background(), name, src, Request{Unroll: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p2 == progs[0] {
		t.Fatal("unroll variant shared the cached Program")
	}
	if st := s.Stats(); st.Misses != 2 || st.Programs != 2 {
		t.Fatalf("stats after variant compile: %+v", st)
	}
}

// TestSessionErrorsNotCached pins that failed compilations are retried:
// a request canceled before compiling, or failing a budget, must not leave
// a poisoned cache entry behind.
func TestSessionErrorsNotCached(t *testing.T) {
	s := NewSession(SessionOptions{})
	defer s.Close()
	name, src := sessionBench(t, "fir")

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Compile(canceled, name, src, Request{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled compile err = %v", err)
	}
	// Same knobs, live context: must succeed, not replay the cancellation.
	if _, err := s.Compile(context.Background(), name, src, Request{}); err != nil {
		t.Fatalf("compile after canceled attempt: %v", err)
	}

	// A deterministic failure (step budget) is returned every time but
	// never cached either.
	bad := Request{MaxSteps: 10}
	for i := 0; i < 2; i++ {
		if _, err := s.Compile(context.Background(), name, src, bad); err == nil {
			t.Fatal("tight-budget compile succeeded")
		}
	}
	if st := s.Stats(); st.Programs != 1 {
		t.Fatalf("failed compiles left entries resident: %+v", st)
	}
}

// TestSessionLRUEviction pins the program-cache bound: the least recently
// used program goes first, and a re-request recompiles it.
func TestSessionLRUEviction(t *testing.T) {
	s := NewSession(SessionOptions{MaxPrograms: 2})
	defer s.Close()
	name, src := sessionBench(t, "fir")

	var first *Program
	for i, unroll := range []int{1, 2, 3} {
		p, err := s.Compile(context.Background(), name, src, Request{Unroll: unroll})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = p
		}
	}
	st := s.Stats()
	if st.Programs != 2 || st.Evictions != 1 || st.Misses != 3 {
		t.Fatalf("stats after 3 compiles at cap 2: %+v", st)
	}
	// unroll=1 was evicted: requesting it again is a miss with a fresh
	// Program value.
	p, err := s.Compile(context.Background(), name, src, Request{Unroll: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p == first {
		t.Fatal("evicted program came back as the same instance")
	}
	if st := s.Stats(); st.Misses != 4 || st.Evictions != 2 {
		t.Fatalf("stats after re-request: %+v", st)
	}
}

// TestSessionReleaseMemory pins the memory-pressure valve: programs beyond
// the keep bound are evicted and survivors' memoization caches shrink.
func TestSessionReleaseMemory(t *testing.T) {
	s := NewSession(SessionOptions{})
	defer s.Close()
	name, src := sessionBench(t, "fir")
	m := Paper2Cluster(5)

	for _, unroll := range []int{1, 2} {
		if _, err := s.Evaluate(context.Background(), name, src, m, SchemeGDP, Request{Unroll: unroll}); err != nil {
			t.Fatal(err)
		}
	}
	p, err := s.Compile(context.Background(), name, src, Request{Unroll: 2})
	if err != nil {
		t.Fatal(err)
	}
	if p.MemoStats().Entries == 0 {
		t.Fatal("evaluation left no memo entries to shrink")
	}
	if evicted := s.ReleaseMemory(1, 0); evicted != 1 {
		t.Fatalf("ReleaseMemory evicted %d, want 1", evicted)
	}
	if st := s.Stats(); st.Programs != 1 {
		t.Fatalf("programs after ReleaseMemory: %+v", st)
	}
	if n := p.MemoStats().Entries; n != 0 {
		t.Fatalf("survivor memo entries after shrink to 0: %d", n)
	}
	// Everything still works afterwards, just cold.
	if _, err := s.Evaluate(context.Background(), name, src, m, SchemeGDP, Request{Unroll: 2}); err != nil {
		t.Fatal(err)
	}
}

// TestSessionMatchesOneShotFacade pins that a Session evaluation returns
// the same deterministic result fields as the one-shot facade for every
// scheme — sharing caches across requests must never change answers.
func TestSessionMatchesOneShotFacade(t *testing.T) {
	s := NewSession(SessionOptions{})
	defer s.Close()
	name, src := sessionBench(t, "fir")
	m := Paper2Cluster(5)

	p, err := Compile(name, src)
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []Scheme{SchemeUnified, SchemeGDP, SchemeProfileMax, SchemeNaive} {
		want, err := Evaluate(p, m, scheme, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Evaluate(context.Background(), name, src, m, scheme, Request{Validate: true})
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if got.Cycles != want.Cycles || got.Moves != want.Moves ||
			fmt.Sprint(got.DataMap) != fmt.Sprint(want.DataMap) {
			t.Fatalf("%s: session (%d cycles, %d moves, %v) != one-shot (%d, %d, %v)",
				scheme, got.Cycles, got.Moves, got.DataMap, want.Cycles, want.Moves, want.DataMap)
		}
	}
}

// TestSessionRequestTimeout pins that a per-request Timeout becomes a
// deadline error and leaves the session serving later requests normally.
func TestSessionRequestTimeout(t *testing.T) {
	s := NewSession(SessionOptions{})
	defer s.Close()
	name, src := sessionBench(t, "fir")
	m := Paper2Cluster(5)

	_, err := s.Evaluate(context.Background(), name, src, m, SchemeGDP, Request{Timeout: time.Nanosecond})
	if !isCancellation(err) {
		t.Fatalf("nanosecond-timeout evaluate err = %v, want deadline", err)
	}
	if _, err := s.Evaluate(context.Background(), name, src, m, SchemeGDP, Request{}); err != nil {
		t.Fatalf("evaluate after timed-out request: %v", err)
	}
}

// TestSessionClose pins shutdown semantics: methods fail closed, Close is
// idempotent.
func TestSessionClose(t *testing.T) {
	s := NewSession(SessionOptions{})
	name, src := sessionBench(t, "fir")
	if _, err := s.Compile(context.Background(), name, src, Request{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Compile(context.Background(), name, src, Request{}); !errors.Is(err, errSessionClosed) {
		t.Fatalf("compile after Close: %v", err)
	}
	if _, err := s.Evaluate(context.Background(), name, src, Paper2Cluster(5), SchemeGDP, Request{}); !errors.Is(err, errSessionClosed) {
		t.Fatalf("evaluate after Close: %v", err)
	}
}
