#!/bin/sh
# serve_smoke.sh boots gdpd as a real process with fault injection
# enabled, proves the daemon's lifecycle over a live socket, and requires
# a clean SIGTERM drain:
#
#   1. /healthz goes green and /readyz reports ready.
#   2. A clean /v1/partition request returns ok:true.
#   3. An injected GDP fault with fallback returns ok:true plus an honest
#      "degraded" marker (graceful degradation over the wire).
#   4. An injected serve-stage fault returns the typed "injected" error.
#   5. SIGTERM drains: the process exits 0 on its own.
#
# The in-process tests (internal/serve, internal/serve/loadtest, cmd/gdpd)
# cover the same contracts at higher intensity; this script is the one
# place the real binary, a real port, and a real signal meet.
set -eu

ADDR="${GDPD_ADDR:-127.0.0.1:18137}"
URL="http://$ADDR"
LOG="$(mktemp)"
BIN="$(mktemp -d)/gdpd"

fail() {
	echo "serve-smoke: $1" >&2
	echo "--- gdpd log ---" >&2
	cat "$LOG" >&2
	kill "$PID" 2>/dev/null || true
	exit 1
}

go build -o "$BIN" ./cmd/gdpd
"$BIN" -addr "$ADDR" -inject >"$LOG" 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# 1. Liveness + readiness.
i=0
until curl -fsS "$URL/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -ge 50 ] || sleep 0.2
	[ "$i" -lt 50 ] || fail "healthz never went green"
done
curl -fsS "$URL/readyz" >/dev/null || fail "readyz not ready"

# 2. Clean request.
OUT="$(curl -fsS -X POST "$URL/v1/partition" -d '{"bench":"fir","scheme":"gdp"}')"
echo "$OUT" | grep -q '"ok":true' || fail "clean request failed: $OUT"

# 3. Graceful degradation: injected GDP fault + fallback -> ok with marker.
OUT="$(curl -fsS -X POST "$URL/v1/partition" \
	-d '{"bench":"fir","scheme":"gdp","fallback":true,"inject":{"stage":"partition","scheme":"gdp"}}')"
echo "$OUT" | grep -q '"ok":true' || fail "degraded request failed: $OUT"
echo "$OUT" | grep -q '"degraded"' || fail "degradation marker missing: $OUT"

# 4. Typed failure: serve-stage fault -> code "injected" (HTTP 500, so no -f).
OUT="$(curl -sS -X POST "$URL/v1/compile" \
	-d '{"bench":"fir","inject":{"stage":"compile"}}')"
echo "$OUT" | grep -q '"code":"injected"' || fail "typed injected error missing: $OUT"

# 5. Metrics render.
curl -fsS "$URL/metrics" | grep -q '^serve_requests' || fail "metrics missing serve_requests"

# 6. SIGTERM drain: the process must exit 0 by itself.
kill -TERM "$PID"
trap - EXIT
STATUS=0
wait "$PID" || STATUS=$?
[ "$STATUS" -eq 0 ] || fail "drain exited $STATUS"
grep -q "drained" "$LOG" || fail "drain log line missing"
echo "serve-smoke: ok"
