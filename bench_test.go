package mcpart

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (§4) as Go benchmarks, reporting the headline numbers as
// custom metrics so `go test -bench` output records the reproduction:
//
//	BenchmarkTable1       — all four schemes over the suite (cycle totals)
//	BenchmarkFigure2      — naive-placement cycle increase at 1/5/10-cycle moves
//	BenchmarkFigure7      — GDP & ProfileMax vs unified, 1-cycle moves
//	BenchmarkFigure8a/8b  — same at 5- and 10-cycle moves
//	BenchmarkFigure9      — exhaustive mapping search spread (rawcaudio/rawdaudio)
//	BenchmarkFigure10     — dynamic intercluster move increase
//	BenchmarkCompileTime  — §4.5 detailed-partitioner run counts and times
//
// plus ablations of the design choices DESIGN.md calls out (merging,
// slack weights, sink weighting, balance constraints, unroll factors).

import (
	"context"
	"flag"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"mcpart/internal/bench"
	"mcpart/internal/cache"
	"mcpart/internal/eval"
	"mcpart/internal/gdp"
	"mcpart/internal/machine"
	"mcpart/internal/progen"
	"mcpart/internal/rhop"
)

// -j bounds the evaluation worker pool the suite benchmarks fan across;
// 0 (the default) means runtime.GOMAXPROCS(0). Every reported metric is
// identical for every -j value — only wall time changes.
var benchJobs = flag.Int("j", 0, "evaluation worker count for suite benchmarks (0 = GOMAXPROCS)")

var (
	suiteOnce sync.Once
	suite     []*eval.Compiled
	suiteErr  error
)

func suitePrograms(b *testing.B) []*eval.Compiled {
	b.Helper()
	suiteOnce.Do(func() {
		var specs []eval.BenchSpec
		for _, bm := range bench.All() {
			specs = append(specs, eval.BenchSpec{Name: bm.Name, Src: bm.Source})
		}
		suite, suiteErr = eval.PrepareAll(specs, *benchJobs)
		if suiteErr != nil {
			return
		}
		for i, bm := range bench.All() {
			if bm.Want != 0 && suite[i].Ret != bm.Want {
				b.Fatalf("%s: checksum %d, want %d", bm.Name, suite[i].Ret, bm.Want)
			}
		}
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suite
}

func runSuite(b *testing.B, lat int, opts eval.Options) []*eval.BenchResult {
	b.Helper()
	cfg := machine.Paper2Cluster(lat)
	if opts.Workers == 0 {
		opts.Workers = *benchJobs
	}
	out, err := eval.RunMatrix(suitePrograms(b), cfg, opts)
	if err != nil {
		b.Fatal(err)
	}
	return out
}

func means(rs []*eval.BenchResult) (g, p, n float64) {
	var gs, ps, ns []float64
	for _, r := range rs {
		gs = append(gs, eval.RelativePerf(r.Unified, r.GDP))
		ps = append(ps, eval.RelativePerf(r.Unified, r.PMax))
		ns = append(ns, eval.RelativePerf(r.Unified, r.Naive))
	}
	return eval.GeoMean(gs), eval.GeoMean(ps), eval.GeoMean(ns)
}

// BenchmarkTable1 evaluates all four Table 1 schemes across the suite at
// the default 5-cycle latency and reports total dynamic cycles per scheme.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs := runSuite(b, 5, eval.Options{})
		var u, g, p, n int64
		for _, r := range rs {
			u += r.Unified.Cycles
			g += r.GDP.Cycles
			p += r.PMax.Cycles
			n += r.Naive.Cycles
		}
		b.ReportMetric(float64(u), "unified-cycles")
		b.ReportMetric(float64(g), "gdp-cycles")
		b.ReportMetric(float64(p), "pmax-cycles")
		b.ReportMetric(float64(n), "naive-cycles")
	}
}

// BenchmarkFigure2 reports the average percent cycle increase of the naive
// data placement over unified memory at each move latency.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, lat := range []int{1, 5, 10} {
			rs := runSuite(b, lat, eval.Options{})
			var sum float64
			for _, r := range rs {
				sum += eval.CycleIncreasePct(r.Unified, r.Naive)
			}
			switch lat {
			case 1:
				b.ReportMetric(sum/float64(len(rs)), "naive-incr-lat1-%")
			case 5:
				b.ReportMetric(sum/float64(len(rs)), "naive-incr-lat5-%")
			case 10:
				b.ReportMetric(sum/float64(len(rs)), "naive-incr-lat10-%")
			}
		}
	}
}

func perfFigure(b *testing.B, lat int) {
	for i := 0; i < b.N; i++ {
		g, p, n := means(runSuite(b, lat, eval.Options{}))
		b.ReportMetric(100*g, "gdp-rel-%")
		b.ReportMetric(100*p, "pmax-rel-%")
		b.ReportMetric(100*n, "naive-rel-%")
	}
}

// BenchmarkFigure7 is the 1-cycle-latency performance figure.
func BenchmarkFigure7(b *testing.B) { perfFigure(b, 1) }

// BenchmarkFigure8a is the 5-cycle-latency performance figure
// (paper: GDP 95.6%, ProfileMax 90.0%).
func BenchmarkFigure8a(b *testing.B) { perfFigure(b, 5) }

// BenchmarkFigure8b is the 10-cycle-latency performance figure
// (paper: GDP 96.3%, ProfileMax 88.1%).
func BenchmarkFigure8b(b *testing.B) { perfFigure(b, 10) }

// BenchmarkFigure9 runs the exhaustive mapping search on the two ADPCM
// benchmarks and reports the best-over-worst spread and the fraction of it
// GDP captures.
func BenchmarkFigure9(b *testing.B) {
	cfg := machine.Paper2Cluster(5)
	for i := 0; i < b.N; i++ {
		for _, name := range []string{"rawcaudio", "rawdaudio"} {
			var c *eval.Compiled
			for _, s := range suitePrograms(b) {
				if s.Name == name {
					c = s
				}
			}
			ex, err := eval.Exhaustive(c, cfg, eval.Options{}, 14)
			if err != nil {
				b.Fatal(err)
			}
			spread := float64(ex.Worst)/float64(ex.Best) - 1
			gp := ex.Find(ex.GDPMask)
			b.ReportMetric(100*spread, name+"-spread-%")
			b.ReportMetric(gp.PerfVsWorst, name+"-gdp-x")
		}
	}
}

// BenchmarkExhaustiveParallel measures the parallel exhaustive mapping
// search against the serial reference on rawcaudio and reports the speedup
// (recorded in BENCH_parallel.json). The parallel run uses -j workers
// (default GOMAXPROCS); the results are checked deeply equal every
// iteration, so the speedup is never bought with divergence.
func BenchmarkExhaustiveParallel(b *testing.B) {
	cfg := machine.Paper2Cluster(5)
	var c *eval.Compiled
	for _, s := range suitePrograms(b) {
		if s.Name == "rawcaudio" {
			c = s
		}
	}
	workers := *benchJobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var serial, par time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		exS, err := eval.Exhaustive(c, cfg, eval.Options{Workers: 1}, 14)
		if err != nil {
			b.Fatal(err)
		}
		serial += time.Since(t0)
		t1 := time.Now()
		exP, err := eval.Exhaustive(c, cfg, eval.Options{Workers: workers}, 14)
		if err != nil {
			b.Fatal(err)
		}
		par += time.Since(t1)
		if !reflect.DeepEqual(exS, exP) {
			b.Fatal("parallel exhaustive search differs from serial")
		}
	}
	b.ReportMetric(serial.Seconds()/float64(b.N), "serial-s/op")
	b.ReportMetric(par.Seconds()/float64(b.N), "parallel-s/op")
	b.ReportMetric(serial.Seconds()/par.Seconds(), "speedup-x")
	b.ReportMetric(float64(workers), "workers")
}

// BenchmarkExhaustiveMemo measures the memoized exhaustive mapping search
// (lock-signature caching + complement-symmetry pruning, this PR's engine)
// against the uncached full enumeration on rawcaudio, serially, and reports
// the speedup (recorded in BENCH_memo.json). Each iteration compiles a
// fresh program so the memo run starts from a cold cache — the speedup is
// what a single Figure 9 regeneration sees, not a warm-cache artifact —
// and the two results are checked deeply equal every iteration.
func BenchmarkExhaustiveMemo(b *testing.B) {
	cfg := machine.Paper2Cluster(5)
	bm, err := bench.Get("rawcaudio")
	if err != nil {
		b.Fatal(err)
	}
	var uncached, memoized time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := eval.Prepare(bm.Name, bm.Source) // fresh: cold memo cache
		if err != nil {
			b.Fatal(err)
		}
		// NoMemo leaves c's cache untouched, so running it first keeps the
		// memoized run cold.
		t0 := time.Now()
		exU, err := eval.Exhaustive(c, cfg, eval.Options{Workers: 1, NoMemo: true, NoSymPrune: true}, 14)
		if err != nil {
			b.Fatal(err)
		}
		uncached += time.Since(t0)
		t1 := time.Now()
		exM, err := eval.Exhaustive(c, cfg, eval.Options{Workers: 1}, 14)
		if err != nil {
			b.Fatal(err)
		}
		memoized += time.Since(t1)
		if !reflect.DeepEqual(exU, exM) {
			b.Fatal("memoized exhaustive search differs from uncached")
		}
	}
	b.ReportMetric(uncached.Seconds()/float64(b.N), "uncached-s/op")
	b.ReportMetric(memoized.Seconds()/float64(b.N), "memo-s/op")
	b.ReportMetric(uncached.Seconds()/memoized.Seconds(), "speedup-x")
}

// BenchmarkExhaustiveSweep measures the Gray-code delta sweep against the
// full per-mask engine (Options.NoDelta) on the two Figure 9 benchmarks,
// serially, and reports the speedup (recorded in BENCH_sweep.json). Honest
// cold-cache accounting: each iteration compiles one fresh program per
// engine, so neither run is served from the other's memo entries and the
// speedup is what a single cold Figure 9 regeneration sees. Per-iteration
// times are reduced by median, which shrugs off scheduler noise on shared
// runners better than the mean; the two results are checked deeply equal
// every iteration.
func BenchmarkExhaustiveSweep(b *testing.B) {
	cfg := machine.Paper2Cluster(5)
	for _, name := range []string{"rawcaudio", "rawdaudio"} {
		b.Run(name, func(b *testing.B) {
			bm, err := bench.Get(name)
			if err != nil {
				b.Fatal(err)
			}
			deltaT := make([]time.Duration, 0, b.N)
			fullT := make([]time.Duration, 0, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cd, err := eval.Prepare(bm.Name, bm.Source) // fresh: cold caches
				if err != nil {
					b.Fatal(err)
				}
				cf, err := eval.Prepare(bm.Name, bm.Source)
				if err != nil {
					b.Fatal(err)
				}
				// Collect the Prepare garbage now so neither timed run pays
				// the other setup's GC debt.
				runtime.GC()
				// Alternate which engine runs first so drift in machine load
				// cancels out across the pair instead of biasing one side.
				runDelta := func() *eval.ExhaustiveResult {
					t0 := time.Now()
					ex, err := eval.Exhaustive(cd, cfg, eval.Options{Workers: 1}, 14)
					if err != nil {
						b.Fatal(err)
					}
					deltaT = append(deltaT, time.Since(t0))
					return ex
				}
				runFull := func() *eval.ExhaustiveResult {
					t0 := time.Now()
					ex, err := eval.Exhaustive(cf, cfg, eval.Options{Workers: 1, NoDelta: true}, 14)
					if err != nil {
						b.Fatal(err)
					}
					fullT = append(fullT, time.Since(t0))
					return ex
				}
				var exD, exF *eval.ExhaustiveResult
				if i%2 == 0 {
					exD, exF = runDelta(), runFull()
				} else {
					exF, exD = runFull(), runDelta()
				}
				if !reflect.DeepEqual(exD, exF) {
					b.Fatal("delta sweep differs from full engine")
				}
			}
			d, f := medianDuration(deltaT), medianDuration(fullT)
			b.ReportMetric(d.Seconds(), "delta-s/op")
			b.ReportMetric(f.Seconds(), "full-s/op")
			b.ReportMetric(f.Seconds()/d.Seconds(), "speedup-x")
		})
	}
}

func medianDuration(ds []time.Duration) time.Duration {
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// BenchmarkBestMapping measures the branch-and-bound best-mapping search on
// a generated 22-object program — 2^21 canonical mappings, past what the
// sweep will enumerate under its default cap — and, once per run, attempts
// the full per-mask enumeration of the same program under a 20-second
// budget to record that it does not finish (recorded in BENCH_sweep.json).
// The search result is verified against the sweep's optimum on all suite
// benchmarks by TestBestMappingOptimal; here the instance is too large to
// cross-check, which is the point.
func BenchmarkBestMapping(b *testing.B) {
	cfg := machine.Paper2Cluster(5)
	src := progen.Generate(4, progen.Options{MaxGlobals: 30})
	probe, err := eval.Prepare("progen22", src)
	if err != nil {
		b.Fatal(err)
	}
	if n := len(probe.Mod.Objects); n != 22 {
		b.Fatalf("generated instance has %d objects, want 22", n)
	}
	enumOnce.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		t0 := time.Now()
		_, err := eval.ExhaustiveCtx(ctx, probe, cfg, eval.Options{Workers: 1, NoDelta: true}, 22)
		enumSecs, enumDone = time.Since(t0).Seconds(), err == nil
	})
	times := make([]time.Duration, 0, b.N)
	var visited, pruned int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := eval.Prepare("progen22", src) // fresh: cold caches
		if err != nil {
			b.Fatal(err)
		}
		t0 := time.Now()
		br, err := eval.BestMapping(c, cfg, eval.Options{}, 0)
		if err != nil {
			b.Fatal(err)
		}
		times = append(times, time.Since(t0))
		visited, pruned = br.NodesVisited, br.NodesPruned
	}
	b.ReportMetric(medianDuration(times).Seconds(), "bb-s/op")
	b.ReportMetric(float64(visited), "bb-nodes-visited")
	b.ReportMetric(float64(pruned), "bb-nodes-pruned")
	b.ReportMetric(22, "objects")
	if enumDone {
		b.ReportMetric(1, "enum-completed")
	} else {
		b.ReportMetric(0, "enum-completed")
	}
	b.ReportMetric(enumSecs, "enum-budget-s")
}

// enumOnce bounds the expensive enumeration attempt in BenchmarkBestMapping
// to one 20-second budget per process, however many times the harness
// re-invokes the benchmark function.
var (
	enumOnce sync.Once
	enumSecs float64
	enumDone bool
)

// BenchmarkFigure10 reports the average percent increase in dynamic
// intercluster moves over the unified machine at 5-cycle latency.
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs := runSuite(b, 5, eval.Options{})
		// Aggregate totals rather than mean-of-ratios: several benchmarks
		// have near-zero unified move counts, which would dominate a mean.
		var ug, gg, pg int64
		for _, r := range rs {
			ug += r.Unified.Moves
			gg += r.GDP.Moves
			pg += r.PMax.Moves
		}
		b.ReportMetric(100*(float64(gg)-float64(ug))/float64(ug), "gdp-move-incr-%")
		b.ReportMetric(100*(float64(pg)-float64(ug))/float64(ug), "pmax-move-incr-%")
	}
}

// BenchmarkCompileTime reproduces §4.5: ProfileMax needs two detailed
// computation-partitioner runs where GDP and Naïve need one, so its
// partitioning time is roughly double.
func BenchmarkCompileTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs := runSuite(b, 5, eval.Options{})
		var gdpMs, pmaxMs, naiveMs float64
		for _, r := range rs {
			gdpMs += float64(r.GDP.PartitionTime.Microseconds()) / 1000
			pmaxMs += float64(r.PMax.PartitionTime.Microseconds()) / 1000
			naiveMs += float64(r.Naive.PartitionTime.Microseconds()) / 1000
		}
		b.ReportMetric(gdpMs, "gdp-partition-ms")
		b.ReportMetric(pmaxMs, "pmax-partition-ms")
		b.ReportMetric(naiveMs, "naive-partition-ms")
		b.ReportMetric(pmaxMs/gdpMs, "pmax/gdp-ratio")
	}
}

// --- Ablations of DESIGN.md's design choices ---

func ablationGDP(b *testing.B, opts eval.Options) {
	cfg := machine.Paper2Cluster(5)
	for i := 0; i < b.N; i++ {
		var gs []float64
		for _, c := range suitePrograms(b) {
			u, err := eval.RunUnified(c, cfg, opts)
			if err != nil {
				b.Fatal(err)
			}
			g, err := eval.RunGDP(c, cfg, opts)
			if err != nil {
				b.Fatal(err)
			}
			gs = append(gs, eval.RelativePerf(u, g))
		}
		b.ReportMetric(100*eval.GeoMean(gs), "gdp-rel-%")
	}
}

// BenchmarkAblationNoMerge disables access-pattern merging (§3.3.1).
func BenchmarkAblationNoMerge(b *testing.B) {
	ablationGDP(b, eval.Options{GDP: gdp.Options{NoMerge: true}})
}

// BenchmarkAblationSlackMerge additionally merges low-slack dependence
// chains, the variant the paper evaluated and rejected (§3.3.1).
func BenchmarkAblationSlackMerge(b *testing.B) {
	ablationGDP(b, eval.Options{GDP: gdp.Options{SlackMerge: true}})
}

// BenchmarkAblationNoSinkWeighting removes the latency-criticality edge
// weighting from the program-level graph.
func BenchmarkAblationNoSinkWeighting(b *testing.B) {
	ablationGDP(b, eval.Options{GDP: gdp.Options{NoSinkWeighting: true}})
}

// BenchmarkAblationBalanceOps adds the computation-balance constraint to
// the data partition (the paper balances only data bytes).
func BenchmarkAblationBalanceOps(b *testing.B) {
	ablationGDP(b, eval.Options{GDP: gdp.Options{BalanceOps: true}})
}

// BenchmarkAblationUniformEdges removes slack weighting from RHOP's
// coarsening graph.
func BenchmarkAblationUniformEdges(b *testing.B) {
	ablationGDP(b, eval.Options{RHOP: rhop.Options{UniformEdges: true}})
}

// BenchmarkAblationPairRefine adds RHOP's pair-group refinement phase
// (coarser-level moves in the uncoarsening hierarchy).
func BenchmarkAblationPairRefine(b *testing.B) {
	ablationGDP(b, eval.Options{RHOP: rhop.Options{PairRefine: true}})
}

// BenchmarkFourCluster evaluates the suite on the 4-cluster scaling of the
// paper machine (the paper's architecture motivates scaling by
// instantiating clusters; this measures how the schemes hold up).
func BenchmarkFourCluster(b *testing.B) {
	cfg := machine.FourCluster(5)
	for i := 0; i < b.N; i++ {
		var gs, ps []float64
		for _, c := range suitePrograms(b) {
			br, err := eval.RunAllSchemes(c, cfg, eval.Options{})
			if err != nil {
				b.Fatal(err)
			}
			gs = append(gs, eval.RelativePerf(br.Unified, br.GDP))
			ps = append(ps, eval.RelativePerf(br.Unified, br.PMax))
		}
		b.ReportMetric(100*eval.GeoMean(gs), "gdp-rel-%")
		b.ReportMetric(100*eval.GeoMean(ps), "pmax-rel-%")
	}
}

// BenchmarkAblationMemTol sweeps the data-balance tolerance (§4.3 notes
// that more imbalance can buy performance).
func BenchmarkAblationMemTol(b *testing.B) {
	for _, tol := range []float64{0.05, 0.10, 0.30, 1.00} {
		tol := tol
		name := map[float64]string{0.05: "tol05", 0.10: "tol10", 0.30: "tol30", 1.00: "tol100"}[tol]
		b.Run(name, func(b *testing.B) {
			ablationGDP(b, eval.Options{GDP: gdp.Options{MemTol: tol}})
		})
	}
}

// BenchmarkExtraBaselines compares GDP against the round-robin and
// affinity object placements studied by Terechko et al. (CASES'03), the
// prior work the paper positions itself against.
func BenchmarkExtraBaselines(b *testing.B) {
	cfg := machine.Paper2Cluster(5)
	for i := 0; i < b.N; i++ {
		var gs, rr, af []float64
		for _, c := range suitePrograms(b) {
			u, err := eval.RunUnified(c, cfg, eval.Options{})
			if err != nil {
				b.Fatal(err)
			}
			g, err := eval.RunGDP(c, cfg, eval.Options{})
			if err != nil {
				b.Fatal(err)
			}
			r, err := eval.RunRoundRobin(c, cfg, eval.Options{})
			if err != nil {
				b.Fatal(err)
			}
			a, err := eval.RunAffinity(c, cfg, eval.Options{})
			if err != nil {
				b.Fatal(err)
			}
			gs = append(gs, eval.RelativePerf(u, g))
			rr = append(rr, eval.RelativePerf(u, r))
			af = append(af, eval.RelativePerf(u, a))
		}
		b.ReportMetric(100*eval.GeoMean(gs), "gdp-rel-%")
		b.ReportMetric(100*eval.GeoMean(rr), "roundrobin-rel-%")
		b.ReportMetric(100*eval.GeoMean(af), "affinity-rel-%")
	}
}

// BenchmarkExtensionCaches evaluates the paper's §5 future work: replace
// the perfect scratchpads with per-cluster caches (trace-driven LRU
// simulation) and compare GDP's placement against a unified cache of the
// combined size. Reported: miss rates and the cycle overhead GDP's
// placement adds on top of its schedule.
func BenchmarkExtensionCaches(b *testing.B) {
	mcfg := machine.Paper2Cluster(5)
	ccfg := cache.Config{SizeBytes: 4096, LineBytes: 32, Assoc: 2, MissPenalty: 20}
	for i := 0; i < b.N; i++ {
		var gdpMiss, uniMiss, extraPct float64
		n := 0
		for _, c := range suitePrograms(b) {
			tr, err := cache.Collect(c.Mod, 20_000_000)
			if err != nil {
				b.Fatal(err)
			}
			g, err := eval.RunGDP(c, mcfg, eval.Options{})
			if err != nil {
				b.Fatal(err)
			}
			part, err := cache.ReplayPartitioned(tr, g.DataMap, 2, ccfg)
			if err != nil {
				b.Fatal(err)
			}
			uni, err := cache.ReplayUnified(tr, 2, ccfg)
			if err != nil {
				b.Fatal(err)
			}
			gdpMiss += part.MissRate()
			uniMiss += uni.MissRate()
			extraPct += 100 * float64(part.ExtraCyc) / float64(g.Cycles)
			n++
		}
		b.ReportMetric(100*gdpMiss/float64(n), "gdp-missrate-%")
		b.ReportMetric(100*uniMiss/float64(n), "unified-missrate-%")
		b.ReportMetric(extraPct/float64(n), "gdp-miss-overhead-%")
	}
}

// BenchmarkTopologyRing compares the 4-cluster bus against a
// nearest-neighbor ring (the tiled-machine interconnect of §2): on the
// ring, GDP's co-location of data and computation matters more because
// distant clusters pay multiple hops.
func BenchmarkTopologyRing(b *testing.B) {
	bus := machine.FourCluster(5)
	ring := machine.RingFour(5)
	for i := 0; i < b.N; i++ {
		var busRel, ringRel []float64
		for _, c := range suitePrograms(b) {
			for _, cfg := range []*machine.Config{bus, ring} {
				u, err := eval.RunUnified(c, cfg, eval.Options{})
				if err != nil {
					b.Fatal(err)
				}
				g, err := eval.RunGDP(c, cfg, eval.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if cfg == bus {
					busRel = append(busRel, eval.RelativePerf(u, g))
				} else {
					ringRel = append(ringRel, eval.RelativePerf(u, g))
				}
			}
		}
		b.ReportMetric(100*eval.GeoMean(busRel), "bus-gdp-rel-%")
		b.ReportMetric(100*eval.GeoMean(ringRel), "ring-gdp-rel-%")
	}
}

// BenchmarkAblationUnroll sweeps the front-end unroll factor; factor 1
// leaves no cross-iteration ILP for the clusters to share.
func BenchmarkAblationUnroll(b *testing.B) {
	cfg := machine.Paper2Cluster(5)
	for _, u := range []int{1, 2, 4} {
		u := u
		name := map[int]string{1: "u1", 2: "u2", 4: "u4"}[u]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var gs []float64
				for _, bm := range bench.All() {
					c, err := eval.PrepareUnrolled(bm.Name, bm.Source, u)
					if err != nil {
						b.Fatal(err)
					}
					uni, err := eval.RunUnified(c, cfg, eval.Options{})
					if err != nil {
						b.Fatal(err)
					}
					g, err := eval.RunGDP(c, cfg, eval.Options{})
					if err != nil {
						b.Fatal(err)
					}
					gs = append(gs, eval.RelativePerf(uni, g))
				}
				b.ReportMetric(100*eval.GeoMean(gs), "gdp-rel-%")
			}
		})
	}
}
