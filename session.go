// session.go is the long-lived, multi-request facade behind the gdpd
// daemon (internal/serve). A Session owns the state that should be shared
// across requests — the compiled-program cache (each Program carrying its
// memoization cache), the persistent artifact store, and the metrics
// observer — while a Request carries everything that must stay per-request:
// the wall-clock budget, the profiling step/byte budgets, and the
// scheme-evaluation knobs. The separation is the daemon's isolation
// contract: one request's cancellation, budget exhaustion, or injected
// fault must never poison the shared caches for the next request.
package mcpart

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"mcpart/internal/defaults"
	"mcpart/internal/store"
)

// DefaultSessionPrograms is the default LRU bound on compiled programs a
// Session keeps resident.
const DefaultSessionPrograms = 32

// SessionOptions configures the shared state of a Session.
type SessionOptions struct {
	// CacheDir names the persistent artifact store every compilation and
	// evaluation in this session shares (empty disables the disk tier).
	CacheDir string
	// CacheMaxBytes bounds the artifact log (non-positive: the store's
	// default).
	CacheMaxBytes int64
	// MaxPrograms bounds the compiled-program LRU (non-positive:
	// DefaultSessionPrograms). Evicting a program drops its memoization
	// cache; results are unaffected — a later request recompiles (or
	// reloads the profile from the disk tier).
	MaxPrograms int
	// Observer receives every compilation's and evaluation's metrics and
	// spans; nil disables observability.
	Observer *Observer
}

// Request bundles the per-request knobs of a Session call. The zero value
// means no deadline, default budgets, and plain (non-validated,
// non-degrading) evaluation.
type Request struct {
	// Timeout bounds the request's wall clock, compilation included; 0
	// means no per-request deadline (the caller's context still applies).
	Timeout time.Duration
	// MaxSteps / MaxBytes bound the profiling run (see CompileOptions).
	MaxSteps int64
	MaxBytes int64
	// Unroll / NoOptimize / LegacyInterp select the front-end variant; they
	// are part of the program-cache key, so variants never collide.
	Unroll       int
	NoOptimize   bool
	LegacyInterp bool
	// Validate re-checks every scheme result with the independent
	// validator; Fallback enables the GDP→ProfileMax→Naive degradation
	// chain (recorded in Result.Degraded). Workers bounds the evaluation
	// worker pool.
	Validate bool
	Fallback bool
	Workers  int
	// Inject is the per-request fault-injection hook forwarded to
	// Options.Inject (testing and the daemon's -inject mode).
	Inject func(scheme Scheme, stage string) error
}

// SessionStats are a Session's compiled-program cache counters. Like
// MemoStats they describe work saved, never results.
type SessionStats struct {
	Programs  int    // programs currently resident
	Hits      uint64 // requests served an already-compiled program
	Misses    uint64 // requests that compiled
	Waits     uint64 // hits that waited on an in-flight compilation
	Evictions uint64 // programs dropped by the LRU bound or ReleaseMemory
}

// Session is a long-lived facade instance serving many concurrent
// requests. All methods are safe for concurrent use.
type Session struct {
	opts SessionOptions

	mu       sync.Mutex
	programs map[string]*sessionEntry
	ll       *list.List // front = most recently used
	stats    SessionStats
	closed   bool
}

// sessionEntry is one program-cache slot. ready is closed when the owning
// compilation finishes; prog/err are immutable afterwards. Failed
// compilations are never cached: the owner removes the entry before
// closing ready, so the next request retries.
type sessionEntry struct {
	key   string
	elem  *list.Element
	ready chan struct{}
	prog  *Program
	err   error
}

// NewSession creates a Session.
func NewSession(opts SessionOptions) *Session {
	return &Session{
		opts:     opts,
		programs: make(map[string]*sessionEntry),
		ll:       list.New(),
	}
}

// errSessionClosed is returned by every method after Close.
var errSessionClosed = errors.New("mcpart: session closed")

// compileKey hashes every input that can influence compilation, so two
// requests share a cached Program only when byte-identical compilation
// would result. Budgets are included: a program that fails under a tight
// budget must keep failing for requests that ask for that budget.
func compileKey(name, source string, req Request) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00u%d o%v l%v s%d b%d",
		name, source, req.Unroll, req.NoOptimize, req.LegacyInterp,
		req.MaxSteps, req.MaxBytes)
	return hex.EncodeToString(h.Sum(nil))
}

// deadline applies the request's Timeout to ctx.
func (r Request) deadline(ctx context.Context) (context.Context, context.CancelFunc) {
	if r.Timeout > 0 {
		return context.WithTimeout(ctx, r.Timeout)
	}
	return context.WithCancel(ctx)
}

// compileOptions projects the request onto the front-end knobs.
func (r Request) compileOptions(s *Session) CompileOptions {
	return CompileOptions{
		Unroll:        r.Unroll,
		NoOptimize:    r.NoOptimize,
		MaxSteps:      r.MaxSteps,
		MaxBytes:      r.MaxBytes,
		LegacyInterp:  r.LegacyInterp,
		CacheDir:      s.opts.CacheDir,
		CacheMaxBytes: s.opts.CacheMaxBytes,
	}
}

// evalOptions projects the request onto the scheme-evaluation knobs.
func (r Request) evalOptions(s *Session) Options {
	return Options{
		MaxSteps:      r.MaxSteps,
		MaxBytes:      r.MaxBytes,
		Workers:       r.Workers,
		Validate:      r.Validate,
		Fallback:      r.Fallback,
		Inject:        r.Inject,
		CacheDir:      s.opts.CacheDir,
		CacheMaxBytes: s.opts.CacheMaxBytes,
		Observer:      s.opts.Observer,
	}
}

// isCancellation reports whether err is a context cancellation or deadline
// (directly or wrapped).
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Compile returns the session's compiled Program for (name, source) under
// the request's front-end knobs, compiling at most once per distinct input
// no matter how many requests race (singleflight). A compilation that
// fails is not cached; in particular, when the owning request is canceled
// mid-compilation, waiting requests whose own contexts are still live
// retry instead of inheriting the owner's cancellation — one caller's
// deadline never poisons another's result.
func (s *Session) Compile(ctx context.Context, name, source string, req Request) (*Program, error) {
	ctx, cancel := req.deadline(ctx)
	defer cancel()
	key := compileKey(name, source, req)
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return nil, errSessionClosed
		}
		if e, ok := s.programs[key]; ok {
			owner := false
			select {
			case <-e.ready:
			default:
				owner = true // still compiling
			}
			s.stats.Hits++
			if owner {
				s.stats.Waits++
			}
			s.ll.MoveToFront(e.elem)
			s.mu.Unlock()
			select {
			case <-e.ready:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if e.err == nil {
				return e.prog, nil
			}
			// The owner failed and already removed the entry. If it failed
			// because *it* was canceled while we are still live, retry with
			// ourselves as owner; otherwise the failure is the input's fault
			// and applies to us too.
			if isCancellation(e.err) && ctx.Err() == nil {
				continue
			}
			return nil, e.err
		}
		e := &sessionEntry{key: key, ready: make(chan struct{})}
		e.elem = s.ll.PushFront(e)
		s.programs[key] = e
		s.stats.Misses++
		s.evictLocked(s.maxPrograms())
		s.mu.Unlock()

		prog, err := CompileCtx(ctx, name, source, req.compileOptions(s))
		if err != nil {
			s.mu.Lock()
			s.removeLocked(e)
			s.mu.Unlock()
			e.err = err
			close(e.ready)
			return nil, err
		}
		e.prog = prog
		close(e.ready)
		return prog, nil
	}
}

func (s *Session) maxPrograms() int { return defaults.Int(s.opts.MaxPrograms, DefaultSessionPrograms) }

// removeLocked forgets an entry if it is still resident (eviction may have
// raced ahead; removal is idempotent).
func (s *Session) removeLocked(e *sessionEntry) {
	if cur, ok := s.programs[e.key]; ok && cur == e {
		delete(s.programs, e.key)
		s.ll.Remove(e.elem)
	}
}

// evictLocked drops least-recently-used *completed* programs until at most
// limit entries remain. In-flight compilations are never evicted — their
// owners hold the entry's identity — so the cache can transiently exceed
// the bound while many distinct compilations race.
func (s *Session) evictLocked(limit int) {
	for el := s.ll.Back(); el != nil && s.ll.Len() > limit; {
		prev := el.Prev()
		e := el.Value.(*sessionEntry)
		select {
		case <-e.ready:
			if e.err == nil {
				delete(s.programs, e.key)
				s.ll.Remove(el)
				s.stats.Evictions++
			}
		default:
		}
		el = prev
	}
}

// Evaluate compiles (or fetches) the program and runs one scheme on it.
func (s *Session) Evaluate(ctx context.Context, name, source string, m *Machine, scheme Scheme, req Request) (*Result, error) {
	ctx, cancel := req.deadline(ctx)
	defer cancel()
	p, err := s.Compile(ctx, name, source, req)
	if err != nil {
		return nil, err
	}
	return EvaluateCtx(ctx, p, m, scheme, req.evalOptions(s))
}

// EvaluateAll compiles (or fetches) the program and runs all four Table 1
// schemes.
func (s *Session) EvaluateAll(ctx context.Context, name, source string, m *Machine, req Request) (*Comparison, error) {
	ctx, cancel := req.deadline(ctx)
	defer cancel()
	p, err := s.Compile(ctx, name, source, req)
	if err != nil {
		return nil, err
	}
	return EvaluateAllCtx(ctx, p, m, req.evalOptions(s))
}

// Sweep compiles (or fetches) the program and enumerates every data
// mapping (the Figure 9 sweep; maxObjects 0 means the sweep default).
func (s *Session) Sweep(ctx context.Context, name, source string, m *Machine, maxObjects int, req Request) (*ExhaustiveResult, error) {
	ctx, cancel := req.deadline(ctx)
	defer cancel()
	p, err := s.Compile(ctx, name, source, req)
	if err != nil {
		return nil, err
	}
	return ExhaustiveSearchCtx(ctx, p, m, req.evalOptions(s), maxObjects)
}

// Best compiles (or fetches) the program and runs the branch-and-bound
// best-mapping search (maxObjects 0 means the search default).
func (s *Session) Best(ctx context.Context, name, source string, m *Machine, maxObjects int, req Request) (*BestMappingResult, error) {
	ctx, cancel := req.deadline(ctx)
	defer cancel()
	p, err := s.Compile(ctx, name, source, req)
	if err != nil {
		return nil, err
	}
	return BestMappingCtx(ctx, p, m, req.evalOptions(s), maxObjects)
}

// ReleaseMemory is the memory-pressure release valve: it evicts programs
// down to at most keepPrograms (non-positive: evict all completed ones)
// and shrinks each survivor's memoization cache to at most memoEntries
// entries. Results are unaffected — dropped state recomputes or reloads
// from the disk tier on demand. It reports how many programs were evicted.
func (s *Session) ReleaseMemory(keepPrograms, memoEntries int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if keepPrograms < 0 {
		keepPrograms = 0
	}
	before := s.stats.Evictions
	s.evictLocked(keepPrograms)
	for el := s.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*sessionEntry)
		select {
		case <-e.ready:
			if e.err == nil {
				e.prog.ShrinkMemo(memoEntries)
			}
		default:
		}
	}
	return int(s.stats.Evictions - before)
}

// Stats snapshots the session's program-cache counters.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Programs = s.ll.Len()
	return st
}

// StoreStats snapshots the shared artifact store's counters (zero when no
// cache directory is configured or the store was never opened).
func (s *Session) StoreStats() StoreStats {
	if s.opts.CacheDir == "" {
		return StoreStats{}
	}
	st, _ := store.SharedStats(s.opts.CacheDir)
	return st
}

// Flush persists the artifact store's write-behind buffer (a no-op without
// a cache directory). The daemon calls it on drain so accepted work is
// durable before exit.
func (s *Session) Flush() error {
	if s.opts.CacheDir == "" {
		return nil
	}
	return store.FlushShared(s.opts.CacheDir)
}

// Close flushes the artifact store and drops every cached program. Further
// method calls fail with a session-closed error. In-flight compilations
// finish (their callers keep their Program pointers); their results are
// simply not retained.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.programs = make(map[string]*sessionEntry)
	s.ll.Init()
	s.mu.Unlock()
	return s.Flush()
}
