package mcpart

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"mcpart/internal/bench"
	"mcpart/internal/eval"
	"mcpart/internal/machine"
)

// TestExhaustiveMemoTimeBudget is the timing half of the observability
// zero-overhead guard: with a nil observer (the default — no Options.
// Observer here), the memoized exhaustive search must stay within 2% of
// the per-op time recorded in BENCH_memo.json. Wall-clock comparisons
// against a recorded baseline only mean something on the runner that
// recorded it, so the check is opt-in: set MCPART_TIMING_BUDGET=1 on the
// reference machine (plain `go test` runs skip it and rely on the
// allocation guards in internal/sched and internal/rhop, which are
// machine-independent).
//
// Before blaming instrumentation for an enabled-mode failure, rerun the
// benchmark on the pre-instrumentation tree: when this guard landed, the
// untouched baseline tree measured 0.263s/op on the same container that
// had recorded 0.2477s/op — runners drift, and a failure that reproduces
// without the observer plumbing is the runner's, not the code's.
func TestExhaustiveMemoTimeBudget(t *testing.T) {
	if os.Getenv("MCPART_TIMING_BUDGET") == "" {
		t.Skip("set MCPART_TIMING_BUDGET=1 on the BENCH_memo.json reference runner to enable")
	}
	data, err := os.ReadFile("BENCH_memo.json")
	if err != nil {
		t.Fatal(err)
	}
	var rec struct {
		Results struct {
			MemoSPerOp float64 `json:"memo_s_per_op"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Results.MemoSPerOp <= 0 {
		t.Fatal("BENCH_memo.json has no memo_s_per_op")
	}

	cfg := machine.Paper2Cluster(5)
	bm, err := bench.Get("rawcaudio")
	if err != nil {
		t.Fatal(err)
	}
	// Same shape as BenchmarkExhaustiveMemo's memoized leg: fresh program
	// per iteration (cold cache), serial sweep. Best-of-3 filters scheduler
	// noise in the direction that matters for a ceiling check.
	best := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		c, err := eval.Prepare(bm.Name, bm.Source)
		if err != nil {
			t.Fatal(err)
		}
		t0 := time.Now()
		if _, err := eval.Exhaustive(c, cfg, eval.Options{Workers: 1}, 14); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	budget := time.Duration(rec.Results.MemoSPerOp * 1.02 * float64(time.Second))
	t.Logf("memoized exhaustive: best %.4fs, budget %.4fs (recorded %.4fs + 2%%)",
		best.Seconds(), budget.Seconds(), rec.Results.MemoSPerOp)
	if best > budget {
		t.Errorf("memoized exhaustive search took %.4fs, budget %.4fs", best.Seconds(), budget.Seconds())
	}
}
