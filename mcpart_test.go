package mcpart

import (
	"strings"
	"testing"

	"mcpart/internal/gdp"
)

const demoSrc = `
global int table[16] = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3};
global int out[64];

func kernel(int n) int {
    int i;
    int s = 0;
    for (i = 0; i < n; i = i + 1) {
        out[i % 64] = table[i % 16] * i;
        s = s + out[i % 64];
    }
    return s;
}
func main() int { return kernel(256); }`

func TestCompileAndEvaluate(t *testing.T) {
	p, err := Compile("demo", demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "demo" {
		t.Errorf("name = %q", p.Name())
	}
	if p.Checksum() == 0 {
		t.Error("checksum unexpectedly zero")
	}
	m := Paper2Cluster(5)
	cmp, err := EvaluateAll(p, m)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*Result{cmp.Unified, cmp.GDP, cmp.PMax, cmp.Naive} {
		if r.Cycles <= 0 {
			t.Errorf("%s cycles = %d", r.Scheme, r.Cycles)
		}
	}
	if rp := RelativePerf(cmp.Unified, cmp.GDP); rp < 0.5 || rp > 1.5 {
		t.Errorf("GDP relative perf %v implausible", rp)
	}
}

func TestCompileReportsErrors(t *testing.T) {
	if _, err := Compile("bad", "func main() int { return x; }"); err == nil {
		t.Error("accepted undefined identifier")
	}
	if !strings.Contains(errOf(Compile("bad", "garbage")), "expected") {
		t.Error("parse error not surfaced")
	}
}

func errOf(_ *Program, err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

func TestObjects(t *testing.T) {
	p, err := Compile("demo", demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	objs := p.Objects()
	if len(objs) != 2 {
		t.Fatalf("got %d objects, want 2", len(objs))
	}
	byName := map[string]ObjectInfo{}
	for _, o := range objs {
		byName[o.Name] = o
	}
	if byName["table"].Bytes != 16*8 || byName["out"].Bytes != 64*8 {
		t.Errorf("object sizes wrong: %+v", objs)
	}
	if byName["table"].Accesses == 0 || byName["out"].Accesses == 0 {
		t.Errorf("object access counts missing: %+v", objs)
	}
}

func TestEvaluateSingleScheme(t *testing.T) {
	p, err := Compile("demo", demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	m := Paper2Cluster(5)
	for _, s := range []Scheme{SchemeUnified, SchemeGDP, SchemeProfileMax, SchemeNaive} {
		r, err := Evaluate(p, m, s, Options{})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if r.Scheme != s {
			t.Errorf("scheme mismatch: %s vs %s", r.Scheme, s)
		}
	}
	if _, err := Evaluate(p, m, "nope", Options{}); err == nil {
		t.Error("accepted unknown scheme")
	}
}

func TestEvaluateDataMap(t *testing.T) {
	p, err := Compile("demo", demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	m := Paper2Cluster(5)
	r, err := EvaluateDataMap(p, m, DataMap{0, 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles <= 0 {
		t.Error("no cycles")
	}
	if _, err := EvaluateDataMap(p, m, DataMap{0}, Options{}); err == nil {
		t.Error("accepted short data map")
	}
	if _, err := EvaluateDataMap(p, m, DataMap{0, 7}, Options{}); err == nil {
		t.Error("accepted out-of-range cluster")
	}
}

func TestPartitionDataFacade(t *testing.T) {
	p, err := Compile("demo", demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := PartitionData(p, 2, gdp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.DataMap.Validate(p.Module(), 2); err != nil {
		t.Error(err)
	}
	if len(res.Groups) == 0 {
		t.Error("no merge groups reported")
	}
}

func TestBenchmarkRegistry(t *testing.T) {
	names := BenchmarkNames()
	if len(names) < 17 {
		t.Fatalf("only %d benchmarks", len(names))
	}
	p, err := LoadBenchmark("rawcaudio")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Objects()) < 4 {
		t.Error("rawcaudio should have several data objects")
	}
	if _, err := LoadBenchmark("nope"); err == nil {
		t.Error("accepted unknown benchmark")
	}
	src, err := BenchmarkSource("fir")
	if err != nil || !strings.Contains(src, "func main") {
		t.Errorf("BenchmarkSource: %v", err)
	}
}

func TestParseOnly(t *testing.T) {
	if err := ParseOnly(demoSrc); err != nil {
		t.Errorf("ParseOnly rejected valid program: %v", err)
	}
	if err := ParseOnly("func main() int { return 1.5; }"); err == nil {
		t.Error("ParseOnly accepted type error")
	}
}

func TestUnrollOptionPreservesSemantics(t *testing.T) {
	var sums []int64
	for _, u := range []int{1, 2, 4, 8} {
		p, err := CompileWithOptions("demo", demoSrc, CompileOptions{Unroll: u})
		if err != nil {
			t.Fatalf("unroll %d: %v", u, err)
		}
		sums = append(sums, p.Checksum())
	}
	for i := 1; i < len(sums); i++ {
		if sums[i] != sums[0] {
			t.Fatalf("unroll changed semantics: %v", sums)
		}
	}
}

func TestFormatSchedule(t *testing.T) {
	p, err := Compile("demo", demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	m := Paper2Cluster(5)
	r, err := Evaluate(p, m, SchemeGDP, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := FormatSchedule(p, m, r, "kernel")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "schedule of kernel") || !strings.Contains(out, "block b") {
		t.Errorf("schedule output wrong:\n%s", out)
	}
	if _, err := FormatSchedule(p, m, r, "nope"); err == nil {
		t.Error("accepted unknown function")
	}
}
