package mcpart

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"mcpart/internal/check"
)

func demoProgram(t *testing.T) *Program {
	t.Helper()
	p, err := Compile("demo", demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestInternalErrorContainsPanic: a panic inside the pipeline must come out
// of the facade as a typed *InternalError, never crash the caller.
func TestInternalErrorContainsPanic(t *testing.T) {
	p := demoProgram(t)
	opts := Options{}
	opts.Inject = func(s Scheme, stage string) error {
		if stage == "partition" {
			panic("synthetic facade panic")
		}
		return nil
	}
	_, err := Evaluate(p, Paper2Cluster(5), SchemeGDP, opts)
	if err == nil {
		t.Fatal("want error from panicking pipeline")
	}
	if !strings.Contains(err.Error(), "synthetic facade panic") {
		t.Errorf("error %q does not carry the panic value", err)
	}
	// Single-scheme evaluation has no matrix pool below it, so the facade's
	// own containment is what fires: the typed *InternalError.
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("error = %v, want *InternalError", err)
	}
	if !strings.HasPrefix(ie.Error(), "mcpart: internal error:") {
		t.Errorf("InternalError message = %q", ie.Error())
	}
}

// TestMatrixPanicAttributed: under EvaluateAll the pool contains the panic
// first, so the error carries the (benchmark, scheme) cell.
func TestMatrixPanicAttributed(t *testing.T) {
	p := demoProgram(t)
	opts := Options{}
	opts.Inject = func(s Scheme, stage string) error {
		if s == SchemeGDP && stage == "partition" {
			panic("synthetic matrix panic")
		}
		return nil
	}
	_, err := EvaluateAllWithOptions(p, Paper2Cluster(5), opts)
	if err == nil {
		t.Fatal("want error")
	}
	var ce *CellError
	if !errors.As(err, &ce) || ce.Scheme != SchemeGDP {
		t.Errorf("error = %v, want GDP cell attribution", err)
	}
}

func TestEvaluateValidateOption(t *testing.T) {
	p := demoProgram(t)
	for _, s := range []Scheme{SchemeUnified, SchemeGDP, SchemeProfileMax, SchemeNaive} {
		if _, err := Evaluate(p, Paper2Cluster(5), s, Options{Validate: true}); err != nil {
			t.Errorf("%s failed validation: %v", s, err)
		}
	}
}

func TestEvaluateCtxCancellation(t *testing.T) {
	p := demoProgram(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EvaluateCtx(ctx, p, Paper2Cluster(5), SchemeGDP, Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("EvaluateCtx error = %v, want context.Canceled", err)
	}
	if _, err := EvaluateAllCtx(ctx, p, Paper2Cluster(5), Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("EvaluateAllCtx error = %v, want context.Canceled", err)
	}
	if _, err := ExhaustiveSearchCtx(ctx, p, Paper2Cluster(5), Options{}, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("ExhaustiveSearchCtx error = %v, want context.Canceled", err)
	}
}

func TestEvaluateCtxDeadlinePreempts(t *testing.T) {
	p := demoProgram(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	if _, err := EvaluateAllCtx(ctx, p, Paper2Cluster(5), Options{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error = %v, want context.DeadlineExceeded", err)
	}
}

// TestDegradedFallback drives the facade's Fallback knob end to end.
func TestDegradedFallback(t *testing.T) {
	p := demoProgram(t)
	opts := Options{Fallback: true}
	opts.Inject = func(s Scheme, stage string) error {
		if s == SchemeGDP && stage == "data" {
			return errors.New("injected data-partition failure")
		}
		return nil
	}
	cmp, err := EvaluateAllWithOptions(p, Paper2Cluster(5), opts)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.GDP.Degraded == nil {
		t.Fatal("GDP result not marked degraded")
	}
	var deg *Degradation = cmp.GDP.Degraded
	if deg.From != SchemeGDP || !strings.Contains(deg.Err.Error(), "injected") {
		t.Errorf("Degradation = %+v", deg)
	}
	if cmp.GDP.Scheme != SchemeProfileMax {
		t.Errorf("substitute scheme = %s", cmp.GDP.Scheme)
	}
}

// TestValidationErrorType: the exported alias and class constants let
// external callers classify validator rejections with errors.As + Has.
func TestValidationErrorType(t *testing.T) {
	ve := &ValidationError{Scheme: "GDP", Violations: []check.Violation{
		{Class: ViolationHome, Detail: "object 3 homed on cluster 9 of 2"},
	}}
	wrapped := fmt.Errorf("cell: %w", ve)
	var got *ValidationError
	if !errors.As(wrapped, &got) {
		t.Fatal("errors.As failed through the alias")
	}
	if !got.Has(ViolationHome) || got.Has(ViolationBus) {
		t.Errorf("Has misclassified: %v", got)
	}
	if !strings.Contains(got.Error(), "violates 1 invariant") {
		t.Errorf("message = %q", got.Error())
	}
}

func TestFormatScheduleRejectsCorruptAssignment(t *testing.T) {
	p := demoProgram(t)
	m := Paper2Cluster(5)
	r, err := Evaluate(p, m, SchemeGDP, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := p.Module().Func("kernel")
	if f == nil {
		t.Fatal("no kernel function")
	}
	asg := r.Assign[f]
	saved := asg[0]
	asg[0] = 99 // cluster far out of range
	defer func() { asg[0] = saved }()
	if _, err := FormatSchedule(p, m, r, "kernel"); err == nil {
		t.Error("FormatSchedule accepted an out-of-range assignment")
	} else if !strings.Contains(err.Error(), "cluster") {
		t.Errorf("error = %v, want a cluster-range diagnostic", err)
	}
}
