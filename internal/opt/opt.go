// Package opt implements the classical scalar optimizations a VLIW
// toolchain (like the paper's Trimaran) applies before partitioning:
// block-local copy propagation, constant folding, common-subexpression
// elimination, and global dead-code elimination. The passes run to a
// fixpoint and renumber operation IDs densely afterwards, so downstream
// analyses (points-to, profiling, partitioning) see a clean module.
//
// All passes preserve the interpreter semantics exactly; the test suite
// checks every bundled benchmark's checksum with and without optimization.
package opt

import (
	"fmt"

	"mcpart/internal/cfg"
	"mcpart/internal/ir"
)

// Stats reports what the optimizer did.
type Stats struct {
	Folded     int // ops replaced by constants
	Propagated int // copy uses rewritten
	CSEd       int // redundant ops removed by value numbering
	Eliminated int // dead ops removed
	Rounds     int
}

func (s Stats) String() string {
	return fmt.Sprintf("folded=%d propagated=%d cse=%d dce=%d rounds=%d",
		s.Folded, s.Propagated, s.CSEd, s.Eliminated, s.Rounds)
}

// Optimize runs the pass pipeline over every function of m until nothing
// changes (bounded at 8 rounds) and returns aggregate statistics.
func Optimize(m *ir.Module) Stats {
	var total Stats
	for _, f := range m.Funcs {
		s := optimizeFunc(f)
		total.Folded += s.Folded
		total.Propagated += s.Propagated
		total.CSEd += s.CSEd
		total.Eliminated += s.Eliminated
		if s.Rounds > total.Rounds {
			total.Rounds = s.Rounds
		}
	}
	return total
}

func optimizeFunc(f *ir.Func) Stats {
	var total Stats
	for round := 0; round < 8; round++ {
		var s Stats
		for _, b := range f.Blocks {
			s.Propagated += copyPropBlock(f, b)
			s.Folded += foldBlock(b)
			s.CSEd += cseBlock(f, b)
		}
		s.Eliminated = dce(f)
		total.Folded += s.Folded
		total.Propagated += s.Propagated
		total.CSEd += s.CSEd
		total.Eliminated += s.Eliminated
		total.Rounds = round + 1
		if s.Folded+s.Propagated+s.CSEd+s.Eliminated == 0 {
			break
		}
	}
	renumber(f)
	return total
}

// copyPropBlock rewrites uses of registers defined by `mov` (and of
// registers holding constants) within a block. The mapping for a register
// dies when either side is redefined.
func copyPropBlock(f *ir.Func, b *ir.Block) int {
	changed := 0
	// value[r] = operand r currently equals, if any.
	value := map[ir.VReg]ir.Operand{}
	// holders[r] = registers whose value mapping mentions r.
	holders := map[ir.VReg][]ir.VReg{}
	kill := func(r ir.VReg) {
		delete(value, r)
		for _, h := range holders[r] {
			if v, ok := value[h]; ok && v.Kind == ir.OperReg && v.Reg == r {
				delete(value, h)
			}
		}
		delete(holders, r)
	}
	for _, op := range b.Ops {
		for i, a := range op.Args {
			if a.Kind != ir.OperReg {
				continue
			}
			if v, ok := value[a.Reg]; ok {
				op.Args[i] = v
				changed++
			}
		}
		if op.Dst == ir.NoReg {
			continue
		}
		kill(op.Dst)
		if op.Opcode == ir.OpMov {
			src := op.Args[0]
			if src.Kind != ir.OperReg || src.Reg != op.Dst {
				value[op.Dst] = src
				if src.Kind == ir.OperReg {
					holders[src.Reg] = append(holders[src.Reg], op.Dst)
				}
			}
		}
	}
	return changed
}

// foldBlock replaces all-constant pure operations with movs of their
// results. Folding never introduces behavior the interpreter would trap on
// (division by zero is left alone).
func foldBlock(b *ir.Block) int {
	changed := 0
	for _, op := range b.Ops {
		if op.Dst == ir.NoReg || op.Opcode.IsMem() || op.Opcode.IsBranch() ||
			op.Opcode == ir.OpMov || op.Opcode == ir.OpAddr {
			continue
		}
		v, ok := fold(op)
		if !ok {
			continue
		}
		op.Opcode = ir.OpMov
		op.Args = []ir.Operand{v}
		changed++
	}
	return changed
}

// fold evaluates a pure op over constant operands.
func fold(op *ir.Op) (ir.Operand, bool) {
	args := op.Args
	allInt := true
	allFloat := true
	for _, a := range args {
		if a.Kind != ir.OperInt {
			allInt = false
		}
		if a.Kind != ir.OperFloat {
			allFloat = false
		}
	}
	ci := func(v int64) (ir.Operand, bool) { return ir.ConstInt(v), true }
	cf := func(v float64) (ir.Operand, bool) { return ir.ConstFloat(v), true }
	cb := func(v bool) (ir.Operand, bool) {
		if v {
			return ir.ConstInt(1), true
		}
		return ir.ConstInt(0), true
	}
	if allInt {
		switch len(args) {
		case 1:
			x := args[0].Int
			switch op.Opcode {
			case ir.OpNeg:
				return ci(-x)
			case ir.OpNot:
				return ci(^x)
			case ir.OpIToF:
				return cf(float64(x))
			}
		case 2:
			x, y := args[0].Int, args[1].Int
			switch op.Opcode {
			case ir.OpAdd:
				return ci(x + y)
			case ir.OpSub:
				return ci(x - y)
			case ir.OpMul:
				return ci(x * y)
			case ir.OpDiv:
				if y != 0 {
					return ci(x / y)
				}
			case ir.OpRem:
				if y != 0 {
					return ci(x % y)
				}
			case ir.OpAnd:
				return ci(x & y)
			case ir.OpOr:
				return ci(x | y)
			case ir.OpXor:
				return ci(x ^ y)
			case ir.OpShl:
				return ci(x << (uint64(y) & 63))
			case ir.OpShr:
				return ci(x >> (uint64(y) & 63))
			case ir.OpCmpEQ:
				return cb(x == y)
			case ir.OpCmpNE:
				return cb(x != y)
			case ir.OpCmpLT:
				return cb(x < y)
			case ir.OpCmpLE:
				return cb(x <= y)
			case ir.OpCmpGT:
				return cb(x > y)
			case ir.OpCmpGE:
				return cb(x >= y)
			}
		}
		return ir.Operand{}, false
	}
	if allFloat {
		switch len(args) {
		case 1:
			x := args[0].Float
			switch op.Opcode {
			case ir.OpFNeg:
				return cf(-x)
			case ir.OpFToI:
				return ci(int64(x))
			}
		case 2:
			x, y := args[0].Float, args[1].Float
			switch op.Opcode {
			case ir.OpFAdd:
				return cf(x + y)
			case ir.OpFSub:
				return cf(x - y)
			case ir.OpFMul:
				return cf(x * y)
			case ir.OpFDiv:
				return cf(x / y)
			case ir.OpFCmpEQ:
				return cb(x == y)
			case ir.OpFCmpNE:
				return cb(x != y)
			case ir.OpFCmpLT:
				return cb(x < y)
			case ir.OpFCmpLE:
				return cb(x <= y)
			case ir.OpFCmpGT:
				return cb(x > y)
			case ir.OpFCmpGE:
				return cb(x >= y)
			}
		}
	}
	return ir.Operand{}, false
}

// cseBlock performs block-local value numbering: a pure op identical to an
// earlier one (same opcode, operands, and — for loads — no intervening
// possibly-aliasing store) becomes a mov from the earlier result.
func cseBlock(f *ir.Func, b *ir.Block) int {
	changed := 0
	type key struct {
		opcode ir.Opcode
		nargs  int // a zero Operand equals Reg(0); arity disambiguates
		a0, a1 ir.Operand
		obj    *ir.Object
		epoch  int
	}
	avail := map[key]ir.VReg{}
	epoch := 0
	keyOf := func(op *ir.Op) (key, bool) {
		k := key{opcode: op.Opcode, obj: op.Obj, nargs: len(op.Args)}
		switch len(op.Args) {
		case 2:
			k.a1 = op.Args[1]
			fallthrough
		case 1:
			k.a0 = op.Args[0]
		}
		switch op.Opcode {
		case ir.OpLoad:
			k.epoch = epoch
			return k, true
		case ir.OpAddr, ir.OpMov,
			ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem,
			ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr,
			ir.OpNeg, ir.OpNot,
			ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE,
			ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv, ir.OpFNeg,
			ir.OpFCmpEQ, ir.OpFCmpNE, ir.OpFCmpLT, ir.OpFCmpLE, ir.OpFCmpGT, ir.OpFCmpGE,
			ir.OpIToF, ir.OpFToI:
			return k, true
		}
		return k, false
	}
	// A redefinition of a register invalidates every availability entry
	// mentioning it (operand or result).
	invalidate := func(r ir.VReg) {
		for k, res := range avail {
			if res == r ||
				(k.nargs >= 1 && k.a0.Kind == ir.OperReg && k.a0.Reg == r) ||
				(k.nargs >= 2 && k.a1.Kind == ir.OperReg && k.a1.Reg == r) {
				delete(avail, k)
			}
		}
	}
	for _, op := range b.Ops {
		if op.Opcode == ir.OpStore || op.Opcode == ir.OpCall || op.Opcode == ir.OpMalloc {
			epoch++
		}
		if op.Dst == ir.NoReg {
			continue
		}
		if k, ok := keyOf(op); ok && op.Opcode != ir.OpMov {
			if prev, hit := avail[k]; hit && prev != op.Dst {
				op.Opcode = ir.OpMov
				op.Args = []ir.Operand{ir.Reg(prev)}
				op.Obj = nil
				invalidate(op.Dst)
				changed++
				continue
			}
			invalidate(op.Dst)
			avail[k] = op.Dst
			continue
		}
		invalidate(op.Dst)
	}
	return changed
}

// dce removes pure operations whose results are never used, iterating
// because removals expose more dead code. Returns the number removed.
func dce(f *ir.Func) int {
	removed := 0
	for {
		du := cfg.ComputeDefUse(f)
		ops := f.OpsByID()
		dead := map[int]bool{}
		for _, op := range ops {
			if op == nil || op.Dst == ir.NoReg {
				continue
			}
			switch op.Opcode {
			case ir.OpStore, ir.OpBr, ir.OpBrCond, ir.OpRet, ir.OpCall, ir.OpMalloc:
				continue // side effects (calls/mallocs kept even if unused)
			}
			if len(du.UsesOf[op.ID]) == 0 {
				dead[op.ID] = true
			}
		}
		if len(dead) == 0 {
			return removed
		}
		for _, b := range f.Blocks {
			kept := b.Ops[:0]
			for _, op := range b.Ops {
				if dead[op.ID] {
					removed++
					continue
				}
				kept = append(kept, op)
			}
			b.Ops = kept
		}
		renumber(f)
	}
}

// renumber reassigns dense op IDs after mutation.
func renumber(f *ir.Func) {
	id := 0
	for _, b := range f.Blocks {
		for _, op := range b.Ops {
			op.ID = id
			id++
		}
	}
	f.NOps = id
}
