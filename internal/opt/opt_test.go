package opt

import (
	"testing"

	"mcpart/internal/bench"
	"mcpart/internal/interp"
	"mcpart/internal/ir"
	"mcpart/internal/mclang"
)

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := mclang.Compile(src, "t")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func run(t *testing.T, m *ir.Module) int64 {
	t.Helper()
	v, err := interp.New(m, interp.Options{}).RunMain()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return v.I
}

func countOps(m *ir.Module) int {
	n := 0
	for _, f := range m.Funcs {
		n += f.NOps
	}
	return n
}

func TestConstantFolding(t *testing.T) {
	m := compile(t, `func main() int { return (3 + 4) * 2 - 6 / 3; }`)
	before := run(t, m)
	s := Optimize(m)
	if s.Folded == 0 {
		t.Error("nothing folded")
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	if after := run(t, m); after != before {
		t.Fatalf("semantics changed: %d -> %d", before, after)
	}
	// The whole expression is constant; main should be tiny.
	if n := m.Func("main").NOps; n > 2 {
		t.Errorf("main still has %d ops after folding", n)
	}
}

func TestDivByZeroNotFolded(t *testing.T) {
	m := compile(t, `
func main() int {
    int guard = 0;
    if (guard == 1) { return 1 / 0; }
    return 7;
}`)
	Optimize(m)
	if got := run(t, m); got != 7 {
		t.Fatalf("got %d", got)
	}
	// The division must survive (unfolded) or be removed as dead — either
	// way the program must not trap.
}

func TestCopyPropagationAndDCE(t *testing.T) {
	m := ir.NewModule("t")
	bd := ir.NewBuilder(m, "main", 0)
	a := bd.Emit(ir.OpMov, ir.ConstInt(5))
	bb := bd.Emit(ir.OpMov, ir.Reg(a))
	c := bd.Emit(ir.OpAdd, ir.Reg(bb), ir.ConstInt(1))
	bd.Emit(ir.OpMul, ir.Reg(a), ir.ConstInt(100)) // dead
	bd.Ret(ir.Reg(c))
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	before := run(t, m)
	s := Optimize(m)
	if s.Propagated == 0 || s.Eliminated == 0 {
		t.Errorf("stats = %+v; expected propagation and DCE", s)
	}
	if after := run(t, m); after != before || after != 6 {
		t.Fatalf("got %d, want 6", after)
	}
	if m.Func("main").NOps > 2 {
		t.Errorf("main still has %d ops", m.Func("main").NOps)
	}
}

func TestCSERemovesRedundantLoads(t *testing.T) {
	m := compile(t, `
global int g[4];
func main() int {
    int a = g[1];
    int b = g[1];
    return a + b;
}`)
	countLoads := func() int {
		n := 0
		for _, f := range m.Funcs {
			for _, b := range f.Blocks {
				for _, op := range b.Ops {
					if op.Opcode == ir.OpLoad {
						n++
					}
				}
			}
		}
		return n
	}
	before := countLoads()
	res := run(t, m)
	s := Optimize(m)
	if s.CSEd == 0 {
		t.Error("no CSE performed (redundant load should merge)")
	}
	if countLoads() >= before {
		t.Errorf("load count did not shrink: %d -> %d", before, countLoads())
	}
	if got := run(t, m); got != res {
		t.Fatalf("semantics changed")
	}
}

func TestCSERespectsStores(t *testing.T) {
	m := compile(t, `
global int g;
func main() int {
    int a = g;
    g = a + 5;
    int b = g;
    return b;
}`)
	Optimize(m)
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	if got := run(t, m); got != 5 {
		t.Fatalf("load CSE crossed a store: got %d, want 5", got)
	}
}

func TestCSERespectsRedefinition(t *testing.T) {
	// a+b computed, then a redefined, then a+b again: must not merge.
	m := ir.NewModule("t")
	bd := ir.NewBuilder(m, "main", 0)
	a := bd.NewReg()
	bd.EmitTo(a, ir.OpMov, ir.ConstInt(1))
	b1 := bd.Emit(ir.OpAdd, ir.Reg(a), ir.ConstInt(10))
	bd.EmitTo(a, ir.OpMov, ir.ConstInt(2))
	b2 := bd.Emit(ir.OpAdd, ir.Reg(a), ir.ConstInt(10))
	r := bd.Emit(ir.OpMul, ir.Reg(b1), ir.Reg(b2)) // 11 * 12
	bd.Ret(ir.Reg(r))
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	Optimize(m)
	if got := run(t, m); got != 132 {
		t.Fatalf("got %d, want 132", got)
	}
}

func TestCallsAndStoresSurviveDCE(t *testing.T) {
	m := compile(t, `
global int g;
func bump() int { g = g + 1; return g; }
func main() int {
    bump();
    bump();
    return g;
}`)
	Optimize(m)
	if got := run(t, m); got != 2 {
		t.Fatalf("calls were eliminated: got %d, want 2", got)
	}
}

func TestOpIDsDenseAfterOptimize(t *testing.T) {
	m := compile(t, `
global int t[8];
func main() int {
    int i;
    int s = 0;
    for (i = 0; i < 8; i = i + 1) { s = s + t[i] + 0 * 5; }
    return s;
}`)
	Optimize(m)
	for _, f := range m.Funcs {
		ops := f.OpsByID()
		for i, op := range ops {
			if op == nil {
				t.Fatalf("%s: op id %d missing after renumber", f.Name, i)
			}
		}
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
}

// The strongest guarantee: every bundled benchmark computes the same
// checksum with and without optimization, and the optimizer shrinks them.
func TestBenchmarksPreservedAndShrunk(t *testing.T) {
	shrunk := 0
	for _, b := range bench.All() {
		m1, err := mclang.Compile(b.Source, b.Name)
		if err != nil {
			t.Fatal(err)
		}
		m2, err := mclang.Compile(b.Source, b.Name)
		if err != nil {
			t.Fatal(err)
		}
		Optimize(m2)
		if err := ir.Verify(m2); err != nil {
			t.Fatalf("%s: invalid IR after opt: %v", b.Name, err)
		}
		v1 := run(t, m1)
		v2 := run(t, m2)
		if v1 != v2 {
			t.Errorf("%s: checksum changed %d -> %d", b.Name, v1, v2)
		}
		if countOps(m2) < countOps(m1) {
			shrunk++
		}
	}
	if shrunk < len(bench.All())/2 {
		t.Errorf("optimizer shrank only %d of %d benchmarks", shrunk, len(bench.All()))
	}
}
