// Package profutil wraps runtime/pprof for the command-line tools: one
// Start/Stop pair drives an optional CPU profile and an optional heap
// snapshot, so every command exposes -cpuprofile/-memprofile with four
// lines of glue instead of repeating the file handling.
package profutil

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiler owns the profile outputs opened by Start. The zero value (and
// nil) is inert: Stop on it is a no-op, so callers can defer Stop
// unconditionally.
type Profiler struct {
	cpuFile *os.File
	memPath string
}

// Start begins CPU profiling into cpuPath and schedules a heap snapshot
// into memPath at Stop time. Either path may be empty to skip that
// profile; Start(cpuPath="", memPath="") returns an inert Profiler.
func Start(cpuPath, memPath string) (*Profiler, error) {
	p := &Profiler{memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profutil: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("profutil: start cpu profile: %w", err)
		}
		p.cpuFile = f
	}
	return p, nil
}

// Stop ends the CPU profile (if one is running) and writes the heap
// snapshot (if requested), running a GC first so the snapshot reflects
// live memory. Safe on a nil or inert Profiler.
func (p *Profiler) Stop() error {
	if p == nil {
		return nil
	}
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		err := p.cpuFile.Close()
		p.cpuFile = nil
		if err != nil {
			return fmt.Errorf("profutil: close cpu profile: %w", err)
		}
	}
	if p.memPath != "" {
		f, err := os.Create(p.memPath)
		if err != nil {
			return fmt.Errorf("profutil: %w", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("profutil: write heap profile: %w", err)
		}
		p.memPath = ""
	}
	return nil
}
