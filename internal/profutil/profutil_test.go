package profutil

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartStopWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	p, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile missing: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
	// Second Stop is a no-op.
	if err := p.Stop(); err != nil {
		t.Errorf("repeated Stop: %v", err)
	}
}

func TestInertProfiler(t *testing.T) {
	p, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Errorf("inert Stop: %v", err)
	}
	var nilP *Profiler
	if err := nilP.Stop(); err != nil {
		t.Errorf("nil Stop: %v", err)
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu"), ""); err == nil {
		t.Fatal("want error for uncreatable cpu profile path")
	}
}
