package machine

import (
	"errors"
	"strings"
	"testing"
)

// presetsUnderTest materializes every named preset at one latency.
func presetsUnderTest(t *testing.T, lat int) []*Config {
	t.Helper()
	out := make([]*Config, 0, len(PresetNames()))
	for _, name := range PresetNames() {
		cfg, err := Preset(name, lat)
		if err != nil {
			t.Fatalf("Preset(%q, %d): %v", name, lat, err)
		}
		out = append(out, cfg)
	}
	return out
}

func TestTopologyPresetsValidate(t *testing.T) {
	wantClusters := map[string]int{
		"paper2": 2, "four": 4, "eight": 8, "hetero2": 2,
		"ring4": 4, "ring8": 8, "mesh4": 4, "mesh8": 8, "numa4": 4,
	}
	for _, lat := range []int{1, 5, 10} {
		for i, cfg := range presetsUnderTest(t, lat) {
			name := PresetNames()[i]
			if err := cfg.Validate(); err != nil {
				t.Errorf("%s lat %d: %v", name, lat, err)
			}
			if cfg.NumClusters() != wantClusters[name] {
				t.Errorf("%s: %d clusters, want %d", name, cfg.NumClusters(), wantClusters[name])
			}
			// The matrix spelling of the same machine must validate too.
			if err := AsMatrix(cfg).Validate(); err != nil {
				t.Errorf("AsMatrix(%s): %v", name, err)
			}
		}
	}
	if _, err := Preset("torus5", 5); err == nil {
		t.Error("accepted unknown preset name")
	}
	if cfg, err := Preset("", 5); err != nil || cfg.NumClusters() != 2 {
		t.Errorf("empty preset should default to paper2: %v", err)
	}
}

func TestMeshMoveLat(t *testing.T) {
	// Mesh4 is the 2x2 grid  0 1   Mesh8 the 2x4 grid  0 1 2 3
	//                        2 3                       4 5 6 7
	m4 := Mesh4(5)
	for _, c := range []struct{ a, b, want int }{
		{0, 0, 0}, {0, 1, 5}, {0, 2, 5}, {0, 3, 10}, {1, 2, 10}, {1, 3, 5}, {2, 3, 5},
	} {
		if got := m4.MoveLat(c.a, c.b); got != c.want {
			t.Errorf("Mesh4.MoveLat(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	m8 := Mesh8(1)
	for _, c := range []struct{ a, b, want int }{
		{0, 3, 3}, {0, 7, 4}, {0, 4, 1}, {3, 4, 4}, {1, 6, 2}, {5, 6, 1},
	} {
		if got := m8.MoveLat(c.a, c.b); got != c.want {
			t.Errorf("Mesh8.MoveLat(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if m8.MaxMoveLat() != 4 {
		t.Errorf("Mesh8 diameter = %d, want 4", m8.MaxMoveLat())
	}
	if m8.MinMoveLat() != 1 {
		t.Errorf("Mesh8 min hop = %d, want 1", m8.MinMoveLat())
	}
}

func TestNUMA4Preset(t *testing.T) {
	cfg := NUMA4(5)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// Intra-node cheap, inter-node 4x.
	for _, c := range []struct{ a, b, want int }{
		{0, 1, 5}, {2, 3, 5}, {0, 2, 20}, {0, 3, 20}, {1, 2, 20}, {1, 3, 20},
	} {
		if got := cfg.MoveLat(c.a, c.b); got != c.want {
			t.Errorf("NUMA4.MoveLat(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	fr := cfg.MemFractions()
	if fr == nil {
		t.Fatal("NUMA4 should declare memory capacities")
	}
	if fr[0] != 0.375 || fr[1] != 0.375 || fr[2] != 0.125 || fr[3] != 0.125 {
		t.Errorf("NUMA4 memory fractions = %v, want [0.375 0.375 0.125 0.125]", fr)
	}
	if cfg.SymmetricClusters() {
		t.Error("NUMA4 must not report symmetric clusters")
	}
}

// TestMoveLatMetricAxioms pins that every built-in topology induces a
// metric: zero diagonal, symmetry, and the triangle inequality (the rhop
// cost model and the gdp remapper both assume routing through an
// intermediate cluster never beats the direct pair cost).
func TestMoveLatMetricAxioms(t *testing.T) {
	for _, lat := range []int{1, 5, 10} {
		for i, cfg := range presetsUnderTest(t, lat) {
			name := PresetNames()[i]
			for _, m := range []*Config{cfg, AsMatrix(cfg)} {
				n := m.NumClusters()
				for a := 0; a < n; a++ {
					if m.MoveLat(a, a) != 0 {
						t.Errorf("%s: MoveLat(%d,%d) = %d, want 0", m.Name, a, a, m.MoveLat(a, a))
					}
					for b := 0; b < n; b++ {
						if m.MoveLat(a, b) != m.MoveLat(b, a) {
							t.Errorf("%s: MoveLat(%d,%d)=%d != MoveLat(%d,%d)=%d",
								m.Name, a, b, m.MoveLat(a, b), b, a, m.MoveLat(b, a))
						}
						if a != b && m.MoveLat(a, b) < 1 {
							t.Errorf("%s: MoveLat(%d,%d) = %d < 1", m.Name, a, b, m.MoveLat(a, b))
						}
						for v := 0; v < n; v++ {
							if m.MoveLat(a, b) > m.MoveLat(a, v)+m.MoveLat(v, b) {
								t.Errorf("%s: triangle violated: d(%d,%d)=%d > d(%d,%d)+d(%d,%d)=%d",
									m.Name, a, b, m.MoveLat(a, b), a, v, v, b,
									m.MoveLat(a, v)+m.MoveLat(v, b))
							}
						}
					}
				}
				// The dense table must agree with the switch entry point.
				tab := m.LatencyTable()
				for a := 0; a < n; a++ {
					for b := 0; b < n; b++ {
						if tab[a][b] != m.MoveLat(a, b) {
							t.Errorf("%s: LatencyTable[%d][%d]=%d != MoveLat=%d",
								m.Name, a, b, tab[a][b], m.MoveLat(a, b))
						}
					}
				}
				if min := m.MinMoveLat(); n > 1 && min != lat {
					t.Errorf("%s: MinMoveLat = %d, want base latency %d (name %q)", m.Name, min, lat, name)
				}
			}
		}
	}
}

// TestAsMatrixSameCosts pins the conformance-suite vehicle: re-expressing
// any topology as its explicit matrix preserves every pairwise cost and
// survives validation — only the spelling (and hence the code path inside
// MoveLat) differs.
func TestAsMatrixSameCosts(t *testing.T) {
	for _, cfg := range presetsUnderTest(t, 5) {
		m := AsMatrix(cfg)
		if m.Topology != TopologyMatrix {
			t.Errorf("AsMatrix(%s) topology = %s", cfg.Name, m.Topology)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("AsMatrix(%s): %v", cfg.Name, err)
		}
		n := cfg.NumClusters()
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if cfg.MoveLat(a, b) != m.MoveLat(a, b) {
					t.Errorf("%s vs matrix: MoveLat(%d,%d) %d != %d",
						cfg.Name, a, b, cfg.MoveLat(a, b), m.MoveLat(a, b))
				}
			}
		}
		if cfg.SymmetricClusters() != m.SymmetricClusters() {
			t.Errorf("%s: SymmetricClusters differs between spellings", cfg.Name)
		}
	}
}

// TestCacheKeyMatrixInjectivity pins that distinct interconnects never
// share a memoization key — including machines that differ only in one
// latency-matrix entry — and that the pre-topology bus/ring encodings are
// unchanged so persistent stores written before meshes existed stay warm.
func TestCacheKeyMatrixInjectivity(t *testing.T) {
	base := Paper2Cluster(5)
	uniform, err := WithLatencyMatrix(base, [][]int{{0, 5}, {5, 0}})
	if err != nil {
		t.Fatal(err)
	}
	tweaked, err := WithLatencyMatrix(base, [][]int{{0, 6}, {6, 0}})
	if err != nil {
		t.Fatal(err)
	}
	distinct := []*Config{base, uniform, tweaked, AsMatrix(RingFour(5))}
	for _, cfg := range presetsUnderTest(t, 5) {
		distinct = append(distinct, cfg)
	}
	// Drop duplicates by name (paper2 appears twice on purpose above only
	// via base, which Preset also returns — identical configs are allowed
	// and required to collide, so exclude the repeat).
	seen := map[string]string{}
	for _, cfg := range distinct[1:] {
		k := cfg.CacheKey()
		if prev, dup := seen[k]; dup {
			t.Errorf("%s and %s collide on cache key %q", cfg.Name, prev, k)
		}
		seen[k] = cfg.Name
	}
	// Identical machines must collide regardless of display name.
	renamed := *uniform
	renamed.Name = "other"
	if renamed.CacheKey() != uniform.CacheKey() {
		t.Error("Name must not affect the cache key")
	}
	// Back-compat: bus and ring keys carry no topology-era suffixes.
	for _, cfg := range []*Config{Paper2Cluster(5), RingFour(5)} {
		k := cfg.CacheKey()
		if strings.Contains(k, ";g") || strings.Contains(k, ";M") {
			t.Errorf("%s cache key %q grew a mesh/matrix suffix; warm stores would go cold", cfg.Name, k)
		}
	}
	// The mesh shape must be part of the key: same clusters, different
	// grids, different distances.
	wide := Mesh8(5)
	tall := Mesh8(5)
	tall.MeshCols = 2
	if wide.CacheKey() == tall.CacheKey() {
		t.Error("2x4 and 4x2 meshes collide on cache key")
	}
}

// TestSymmetricClustersMatrix pins the predicate on explicit matrices:
// only all-pairs-uniform matrices license the complement-symmetry pruning.
// A ring expressed as a matrix is permutation-symmetric (every cluster
// sees the same distance multiset) but NOT transposition-symmetric, so it
// must report false.
func TestSymmetricClustersMatrix(t *testing.T) {
	if !AsMatrix(Paper2Cluster(5)).SymmetricClusters() {
		t.Error("uniform 2-cluster matrix should be symmetric")
	}
	if !AsMatrix(FourCluster(5)).SymmetricClusters() {
		t.Error("uniform 4-cluster matrix should be symmetric")
	}
	if AsMatrix(RingFour(5)).SymmetricClusters() {
		t.Error("ring-as-matrix is not swap-invariant and must not be symmetric")
	}
	if AsMatrix(NUMA4(5)).SymmetricClusters() {
		t.Error("NUMA4-as-matrix must not be symmetric")
	}
}

// TestValidateRejectsTopologyConfigs is the table-driven rejection suite
// for the typed validation errors.
func TestValidateRejectsTopologyConfigs(t *testing.T) {
	one := func() Cluster { return paperCluster() }
	cases := []struct {
		name string
		cfg  *Config
		want error
	}{
		{
			name: "ring with one cluster",
			cfg: &Config{Name: "r1", Clusters: []Cluster{one()},
				MoveLatency: 5, MoveBandwidth: 1, Topology: TopologyRing},
			want: ErrRingSize,
		},
		{
			name: "mesh with zero columns",
			cfg: &Config{Name: "m0", Clusters: []Cluster{one(), one()},
				MoveLatency: 5, MoveBandwidth: 1, Topology: TopologyMesh},
			want: ErrMeshShape,
		},
		{
			name: "mesh with more columns than clusters",
			cfg: &Config{Name: "m9", Clusters: []Cluster{one(), one()},
				MoveLatency: 5, MoveBandwidth: 1, Topology: TopologyMesh, MeshCols: 3},
			want: ErrMeshShape,
		},
		{
			name: "bandwidth beyond issuable moves",
			cfg: &Config{Name: "bw", Clusters: []Cluster{one(), one()},
				MoveLatency: 5, MoveBandwidth: 5},
			want: ErrBandwidth,
		},
		{
			name: "matrix topology without a matrix",
			cfg: &Config{Name: "nil", Clusters: []Cluster{one(), one()},
				MoveLatency: 5, MoveBandwidth: 1, Topology: TopologyMatrix},
			want: ErrTopologyMatrix,
		},
		{
			name: "matrix on bus topology",
			cfg: &Config{Name: "bus+m", Clusters: []Cluster{one(), one()},
				MoveLatency: 5, MoveBandwidth: 1,
				LatencyMatrix: [][]int{{0, 5}, {5, 0}}},
			want: ErrTopologyMatrix,
		},
		{
			name: "ragged matrix",
			cfg: &Config{Name: "rag", Clusters: []Cluster{one(), one()},
				MoveLatency: 5, MoveBandwidth: 1, Topology: TopologyMatrix,
				LatencyMatrix: [][]int{{0, 5}, {5}}},
			want: ErrLatencyMatrix,
		},
		{
			name: "wrong row count",
			cfg: &Config{Name: "rows", Clusters: []Cluster{one(), one()},
				MoveLatency: 5, MoveBandwidth: 1, Topology: TopologyMatrix,
				LatencyMatrix: [][]int{{0, 5}}},
			want: ErrLatencyMatrix,
		},
		{
			name: "nonzero diagonal",
			cfg: &Config{Name: "diag", Clusters: []Cluster{one(), one()},
				MoveLatency: 5, MoveBandwidth: 1, Topology: TopologyMatrix,
				LatencyMatrix: [][]int{{1, 5}, {5, 0}}},
			want: ErrLatencyMatrix,
		},
		{
			name: "asymmetric matrix",
			cfg: &Config{Name: "asym", Clusters: []Cluster{one(), one()},
				MoveLatency: 5, MoveBandwidth: 1, Topology: TopologyMatrix,
				LatencyMatrix: [][]int{{0, 5}, {7, 0}}},
			want: ErrLatencyMatrix,
		},
		{
			name: "zero off-diagonal",
			cfg: &Config{Name: "free", Clusters: []Cluster{one(), one()},
				MoveLatency: 5, MoveBandwidth: 1, Topology: TopologyMatrix,
				LatencyMatrix: [][]int{{0, 0}, {0, 0}}},
			want: ErrLatencyMatrix,
		},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: error %v is not %v", tc.name, err, tc.want)
		}
	}
	// The bandwidth cap only binds when intercluster moves exist at all.
	fat := &Config{Name: "solo", Clusters: []Cluster{one()}, MoveLatency: 1, MoveBandwidth: 64}
	if err := fat.Validate(); err != nil {
		t.Errorf("single-cluster machine with wide bandwidth: %v", err)
	}
	// Ragged rows must be rejected before the symmetry probe indexes them
	// (a panic here would mean the transposed lookup ran first).
	func() {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("ragged matrix validation panicked: %v", r)
			}
		}()
		long := &Config{Name: "long", Clusters: []Cluster{one(), one()},
			MoveLatency: 5, MoveBandwidth: 1, Topology: TopologyMatrix,
			LatencyMatrix: [][]int{{0, 5, 9, 9}, {5, 0}}}
		if long.Validate() == nil {
			t.Error("accepted ragged matrix")
		}
	}()
}

func TestWithLatencyMatrixRejectsBad(t *testing.T) {
	base := Paper2Cluster(5)
	if _, err := WithLatencyMatrix(base, [][]int{{0, 5}, {7, 0}}); !errors.Is(err, ErrLatencyMatrix) {
		t.Errorf("asymmetric matrix: %v", err)
	}
	if _, err := WithLatencyMatrix(base, nil); !errors.Is(err, ErrTopologyMatrix) {
		t.Errorf("nil matrix: %v", err)
	}
	m, err := WithLatencyMatrix(base, [][]int{{0, 9}, {9, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if m.MoveLat(0, 1) != 9 {
		t.Errorf("MoveLat = %d, want 9", m.MoveLat(0, 1))
	}
	if base.Topology != TopologyBus || base.LatencyMatrix != nil {
		t.Error("WithLatencyMatrix mutated its input")
	}
}

// TestPresetNamesResolve keeps the documented vocabulary and the resolver
// in lockstep.
func TestPresetNamesResolve(t *testing.T) {
	for _, name := range PresetNames() {
		cfg, err := Preset(name, 5)
		if err != nil {
			t.Errorf("Preset(%q): %v", name, err)
			continue
		}
		if !strings.Contains(cfg.Name, "lat5") {
			t.Errorf("Preset(%q) name %q does not carry the latency", name, cfg.Name)
		}
	}
	// Latency must flow into the matrix presets too, not just the scalar.
	lo, hi := NUMA4(1), NUMA4(10)
	if lo.MoveLat(0, 2) != 4 || hi.MoveLat(0, 2) != 40 {
		t.Errorf("NUMA4 inter-node latency does not scale: %d / %d",
			lo.MoveLat(0, 2), hi.MoveLat(0, 2))
	}
}
