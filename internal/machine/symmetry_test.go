package machine

import "testing"

// TestSymmetricClusters pins the predicate guarding the complement-
// symmetry pruning in eval.Exhaustive: the homogeneous presets are
// symmetric; any unit, memory, or network asymmetry disqualifies.
func TestSymmetricClusters(t *testing.T) {
	for _, cfg := range []*Config{
		Paper2Cluster(1), Paper2Cluster(5), Paper2Cluster(10),
		FourCluster(5), Unified1Cluster(2),
	} {
		if !cfg.SymmetricClusters() {
			t.Errorf("%s should be symmetric", cfg.Name)
		}
	}
	if Heterogeneous2(5).SymmetricClusters() {
		t.Error("Heterogeneous2 must not be symmetric (unequal integer units)")
	}
	// Unequal scratchpad capacities break symmetry even with equal units.
	asym, err := WithMemCapacities(Paper2Cluster(5), 4*16384, 16384)
	if err != nil {
		t.Fatal(err)
	}
	if asym.SymmetricClusters() {
		t.Error("unequal memory capacities must not be symmetric")
	}
	// Equal capacities keep it.
	eq, err := WithMemCapacities(Paper2Cluster(5), 16384, 16384)
	if err != nil {
		t.Fatal(err)
	}
	if !eq.SymmetricClusters() {
		t.Error("equal memory capacities should stay symmetric")
	}
	// A 4-cluster ring is homogeneous but not all-pairs-equidistant:
	// swapping two arbitrary clusters is not network-preserving, so the
	// predicate must reject it.
	if RingFour(5).SymmetricClusters() {
		t.Error("ring topology must not count as symmetric")
	}
	// A 2-cluster ring degenerates to a bus (one pairwise distance).
	two := Paper2Cluster(5)
	two.Topology = TopologyRing
	if !two.SymmetricClusters() {
		t.Error("2-cluster ring is equivalent to a bus and should be symmetric")
	}
}

// TestCacheKey pins that the memoization key covers every outcome-
// affecting machine parameter and excludes the display name.
func TestCacheKey(t *testing.T) {
	base := Paper2Cluster(5)
	renamed := *base
	renamed.Clusters = append([]Cluster(nil), base.Clusters...)
	renamed.Name = "something-else"
	if base.CacheKey() != renamed.CacheKey() {
		t.Error("Name must not affect the cache key")
	}
	distinct := []*Config{
		base,
		Paper2Cluster(1),
		Paper2Cluster(10),
		FourCluster(5),
		Heterogeneous2(5),
		RingFour(5),
		Unified1Cluster(2),
	}
	if withMem, err := WithMemCapacities(base, 16384, 16384); err == nil {
		distinct = append(distinct, withMem)
	} else {
		t.Fatal(err)
	}
	wideBus := *base
	wideBus.Clusters = append([]Cluster(nil), base.Clusters...)
	wideBus.MoveBandwidth = 2
	distinct = append(distinct, &wideBus)
	seen := map[string]string{}
	for _, cfg := range distinct {
		k := cfg.CacheKey()
		if prev, dup := seen[k]; dup {
			t.Errorf("%s and %s collide on cache key %q", cfg.Name, prev, k)
		}
		seen[k] = cfg.Name
	}
}
