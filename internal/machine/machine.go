// Package machine describes the multicluster VLIW targets the partitioners
// compile for: per-cluster function units and register files, operation
// latencies, and the intercluster communication network (fixed bandwidth,
// configurable move latency), matching the machine model of the paper's
// §4.1 (2-cluster VLIW, 2 integer / 1 float / 1 memory / 1 branch unit per
// cluster, Itanium-like latencies, 1 intercluster move per cycle with a
// latency of 1, 5, or 10 cycles).
package machine

import (
	"errors"
	"fmt"

	"mcpart/internal/ir"
)

// FUKind is a function-unit class.
type FUKind int

// Function-unit classes.
const (
	FUInt FUKind = iota
	FUFloat
	FUMem
	FUBranch
	NumFUKinds
)

func (k FUKind) String() string {
	switch k {
	case FUInt:
		return "I"
	case FUFloat:
		return "F"
	case FUMem:
		return "M"
	case FUBranch:
		return "B"
	}
	return "?"
}

// KindOf maps an opcode to the function-unit class that executes it.
// Intercluster moves (ir.OpMove) issue on the integer unit of the sending
// cluster and additionally occupy the intercluster bus.
func KindOf(op ir.Opcode) FUKind {
	switch {
	case op.IsFloat():
		return FUFloat
	case op.IsMem():
		return FUMem
	case op.IsBranch():
		return FUBranch
	default:
		return FUInt
	}
}

// Latency returns the cycles from issue of an op until its result is
// available. The values mirror Itanium-class latencies, as in the paper.
func Latency(op ir.Opcode) int {
	switch op {
	case ir.OpMul:
		return 3
	case ir.OpDiv, ir.OpRem:
		return 8
	case ir.OpLoad, ir.OpMalloc:
		return 2
	case ir.OpStore:
		return 1
	case ir.OpFAdd, ir.OpFSub, ir.OpFMul,
		ir.OpFCmpEQ, ir.OpFCmpNE, ir.OpFCmpLT, ir.OpFCmpLE, ir.OpFCmpGT, ir.OpFCmpGE,
		ir.OpIToF, ir.OpFToI, ir.OpFNeg:
		return 4
	case ir.OpFDiv:
		return 12
	default:
		return 1
	}
}

// Cluster describes one cluster's function units and local data memory.
type Cluster struct {
	Units [NumFUKinds]int
	// MemBytes is the cluster's scratchpad capacity in bytes; 0 means
	// "unspecified" (the data partitioner then targets equal shares).
	MemBytes int64
}

// Topology selects the intercluster network shape.
type Topology int

// Network topologies. The paper assumes a shared bus with uniform latency
// ("this assumption is not necessary", §2); TopologyRing models the
// nearest-neighbor interconnects of tiled machines like RAW, where a move
// between clusters costs MoveLatency per hop of ring distance.
// TopologyMesh is a 2-D grid (row-major, MeshCols columns) charging
// MoveLatency per Manhattan hop; TopologyMatrix reads the per-pair cost
// directly from an explicit LatencyMatrix, which can express any symmetric
// network — including NUMA-style machines no regular shape captures.
const (
	TopologyBus Topology = iota
	TopologyRing
	TopologyMesh
	TopologyMatrix
)

func (t Topology) String() string {
	switch t {
	case TopologyRing:
		return "ring"
	case TopologyMesh:
		return "mesh"
	case TopologyMatrix:
		return "matrix"
	}
	return "bus"
}

// Config is a complete machine description.
type Config struct {
	Name     string
	Clusters []Cluster
	// MoveLatency is the cycle count of one intercluster move (per hop
	// for TopologyRing).
	MoveLatency int
	// MoveBandwidth is the number of intercluster moves that may be in
	// flight per cycle across the shared network (a global cap even for
	// the ring, a documented simplification).
	MoveBandwidth int
	// Topology is the network shape; the zero value is the paper's bus.
	Topology Topology
	// MeshCols is the column count of the TopologyMesh grid (row-major
	// cluster layout; the last row may be partial). Ignored by the other
	// topologies.
	MeshCols int
	// LatencyMatrix is the explicit per-pair move cost for TopologyMatrix:
	// a square NumClusters x NumClusters table with zero diagonal, symmetric,
	// positive off-diagonal entries. Ignored by the other topologies (and
	// rejected by Validate if set on them, to catch misconfiguration).
	LatencyMatrix [][]int
}

// MoveLat returns the move latency from cluster a to cluster b: the
// uniform bus latency, hops x latency on a ring or mesh, or the explicit
// LatencyMatrix entry.
func (c *Config) MoveLat(a, b int) int {
	if a == b {
		return 0
	}
	switch c.Topology {
	case TopologyRing:
		n := len(c.Clusters)
		d := a - b
		if d < 0 {
			d = -d
		}
		if n-d < d {
			d = n - d
		}
		return c.MoveLatency * d
	case TopologyMesh:
		return c.MoveLatency * c.meshHops(a, b)
	case TopologyMatrix:
		return c.LatencyMatrix[a][b]
	}
	return c.MoveLatency
}

// meshHops returns the Manhattan distance between clusters a and b on the
// row-major MeshCols-wide grid.
func (c *Config) meshHops(a, b int) int {
	ra, ca := a/c.MeshCols, a%c.MeshCols
	rb, cb := b/c.MeshCols, b%c.MeshCols
	dr, dc := ra-rb, ca-cb
	if dr < 0 {
		dr = -dr
	}
	if dc < 0 {
		dc = -dc
	}
	return dr + dc
}

// MinMoveLat returns the smallest nonzero intercluster move latency on the
// machine — the cost of the cheapest possible hop. On a single-cluster
// machine (no intercluster moves exist) it returns MoveLatency so callers
// using it as a per-move lower bound stay conservative.
func (c *Config) MinMoveLat() int {
	n := len(c.Clusters)
	if n < 2 {
		return c.MoveLatency
	}
	min := c.MoveLat(0, 1)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if l := c.MoveLat(a, b); l < min {
				min = l
			}
		}
	}
	return min
}

// MaxMoveLat returns the largest intercluster move latency on the machine
// (the network diameter in cycles); 0 on a single-cluster machine.
func (c *Config) MaxMoveLat() int {
	n := len(c.Clusters)
	max := 0
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if l := c.MoveLat(a, b); l > max {
				max = l
			}
		}
	}
	return max
}

// LatencyTable materializes the all-pairs move-latency table. Consumers on
// hot paths that cannot afford the per-call topology switch in MoveLat can
// index this dense table instead; the Config itself holds no cached state
// (it is copied by value in WithMemCapacities and friends).
func (c *Config) LatencyTable() [][]int {
	n := len(c.Clusters)
	out := make([][]int, n)
	for a := 0; a < n; a++ {
		out[a] = make([]int, n)
		for b := 0; b < n; b++ {
			out[a][b] = c.MoveLat(a, b)
		}
	}
	return out
}

// NumClusters returns the cluster count.
func (c *Config) NumClusters() int { return len(c.Clusters) }

// Units returns the number of units of the given kind on cluster ci.
func (c *Config) Units(ci int, k FUKind) int { return c.Clusters[ci].Units[k] }

// TotalUnits returns the machine-wide unit count of kind k.
func (c *Config) TotalUnits(k FUKind) int {
	n := 0
	for _, cl := range c.Clusters {
		n += cl.Units[k]
	}
	return n
}

// Typed validation failures. Validate wraps these with the offending
// machine's details, so callers can classify rejections with errors.Is.
var (
	// ErrRingSize: a ring needs at least two clusters to have any links.
	ErrRingSize = errors.New("ring topology needs at least 2 clusters")
	// ErrMeshShape: a mesh needs a column count between 1 and the cluster
	// count for the row-major grid layout to be well defined.
	ErrMeshShape = errors.New("mesh topology needs MeshCols in [1, clusters]")
	// ErrBandwidth: moves issue on the sending cluster's integer units, so
	// no schedule can ever have more concurrent moves than the machine has
	// integer units; a larger MoveBandwidth is physically meaningless.
	ErrBandwidth = errors.New("move bandwidth exceeds physically issuable moves")
	// ErrLatencyMatrix: the latency matrix must be square (NumClusters x
	// NumClusters), zero on the diagonal, symmetric, and positive off it.
	ErrLatencyMatrix = errors.New("invalid latency matrix")
	// ErrTopologyMatrix: a LatencyMatrix on a non-matrix topology (or a
	// matrix topology without one) is a misconfiguration, not a fallback.
	ErrTopologyMatrix = errors.New("latency matrix and topology disagree")
)

// Validate checks the configuration is usable.
func (c *Config) Validate() error {
	if len(c.Clusters) < 1 {
		return fmt.Errorf("machine %q: needs at least one cluster", c.Name)
	}
	if c.MoveLatency < 1 {
		return fmt.Errorf("machine %q: move latency %d < 1", c.Name, c.MoveLatency)
	}
	if c.MoveBandwidth < 1 {
		return fmt.Errorf("machine %q: move bandwidth %d < 1", c.Name, c.MoveBandwidth)
	}
	for i, cl := range c.Clusters {
		for k := FUKind(0); k < NumFUKinds; k++ {
			if cl.Units[k] < 0 {
				return fmt.Errorf("machine %q: cluster %d has %d units of %s",
					c.Name, i, cl.Units[k], k)
			}
		}
		if cl.Units[FUMem] == 0 {
			return fmt.Errorf("machine %q: cluster %d has no memory unit", c.Name, i)
		}
	}
	if len(c.Clusters) > 1 && c.MoveBandwidth > c.TotalUnits(FUInt) {
		return fmt.Errorf("machine %q: bandwidth %d > %d integer units: %w",
			c.Name, c.MoveBandwidth, c.TotalUnits(FUInt), ErrBandwidth)
	}
	switch c.Topology {
	case TopologyRing:
		if len(c.Clusters) < 2 {
			return fmt.Errorf("machine %q: %d cluster(s): %w", c.Name, len(c.Clusters), ErrRingSize)
		}
	case TopologyMesh:
		if c.MeshCols < 1 || c.MeshCols > len(c.Clusters) {
			return fmt.Errorf("machine %q: MeshCols %d with %d clusters: %w",
				c.Name, c.MeshCols, len(c.Clusters), ErrMeshShape)
		}
	case TopologyMatrix:
		if err := c.validateMatrix(); err != nil {
			return err
		}
	}
	if c.Topology != TopologyMatrix && c.LatencyMatrix != nil {
		return fmt.Errorf("machine %q: LatencyMatrix set on %s topology: %w",
			c.Name, c.Topology, ErrTopologyMatrix)
	}
	return nil
}

// validateMatrix enforces the LatencyMatrix invariants that make it a
// metric the schedulers and search engines can trust: square, zero
// diagonal, symmetric, positive off-diagonal.
func (c *Config) validateMatrix() error {
	n := len(c.Clusters)
	if c.LatencyMatrix == nil {
		return fmt.Errorf("machine %q: matrix topology without a LatencyMatrix: %w",
			c.Name, ErrTopologyMatrix)
	}
	if len(c.LatencyMatrix) != n {
		return fmt.Errorf("machine %q: latency matrix has %d rows for %d clusters: %w",
			c.Name, len(c.LatencyMatrix), n, ErrLatencyMatrix)
	}
	for a, row := range c.LatencyMatrix {
		if len(row) != n {
			return fmt.Errorf("machine %q: latency matrix row %d has %d entries for %d clusters: %w",
				c.Name, a, len(row), n, ErrLatencyMatrix)
		}
	}
	for a, row := range c.LatencyMatrix {
		for b, l := range row {
			switch {
			case a == b && l != 0:
				return fmt.Errorf("machine %q: latency matrix diagonal [%d][%d] = %d, want 0: %w",
					c.Name, a, b, l, ErrLatencyMatrix)
			case a != b && l < 1:
				return fmt.Errorf("machine %q: latency matrix [%d][%d] = %d, want >= 1: %w",
					c.Name, a, b, l, ErrLatencyMatrix)
			case c.LatencyMatrix[b][a] != l:
				return fmt.Errorf("machine %q: latency matrix asymmetric: [%d][%d]=%d but [%d][%d]=%d: %w",
					c.Name, a, b, l, b, a, c.LatencyMatrix[b][a], ErrLatencyMatrix)
			}
		}
	}
	return nil
}

// SymmetricClusters reports whether every cluster is interchangeable:
// identical function-unit mixes and memory capacities, and an intercluster
// network that looks the same from every cluster (all ordered pairs of
// distinct clusters have equal move latency). On such machines relabeling
// the clusters by any permutation that preserves the network — in
// particular swapping the two clusters of a 2-cluster machine — yields an
// equivalent machine, which is what licenses the complement-symmetry
// canonicalization in eval.Exhaustive. Asymmetric presets (Heterogeneous2,
// WithMemCapacities with unequal shares) report false and keep full
// sweeps.
func (c *Config) SymmetricClusters() bool {
	if len(c.Clusters) < 2 {
		return true
	}
	for _, cl := range c.Clusters[1:] {
		if cl != c.Clusters[0] {
			return false
		}
	}
	lat := c.MoveLat(0, 1)
	for a := range c.Clusters {
		for b := range c.Clusters {
			if a != b && c.MoveLat(a, b) != lat {
				return false
			}
		}
	}
	return true
}

// CacheKey returns a canonical encoding of everything that affects
// partitioning and scheduling outcomes: topology (including the mesh shape
// and every latency-matrix entry), move latency and bandwidth, and each
// cluster's unit mix and memory capacity. Name is deliberately excluded —
// two differently-named but identical configs share memoized results (see
// internal/memo). Bus and ring configs keep their pre-topology encoding,
// so persistent store caches written before meshes existed stay warm.
func (c *Config) CacheKey() string {
	b := make([]byte, 0, 64)
	b = fmt.Appendf(b, "t%d;l%d;w%d", c.Topology, c.MoveLatency, c.MoveBandwidth)
	if c.Topology == TopologyMesh {
		b = fmt.Appendf(b, ";g%d", c.MeshCols)
	}
	if c.Topology == TopologyMatrix {
		for _, row := range c.LatencyMatrix {
			b = fmt.Appendf(b, ";M%v", row)
		}
	}
	for _, cl := range c.Clusters {
		b = fmt.Appendf(b, ";u%v,m%d", cl.Units, cl.MemBytes)
	}
	return string(b)
}

// paperCluster is the per-cluster resource mix from the paper's §4.1.
func paperCluster() Cluster {
	var cl Cluster
	cl.Units[FUInt] = 2
	cl.Units[FUFloat] = 1
	cl.Units[FUMem] = 1
	cl.Units[FUBranch] = 1
	return cl
}

// Paper2Cluster returns the paper's evaluation machine: two homogeneous
// clusters, each with 2 integer, 1 float, 1 memory and 1 branch unit, and
// an intercluster bus of 1 move/cycle with the given latency.
func Paper2Cluster(moveLatency int) *Config {
	return &Config{
		Name:          fmt.Sprintf("paper-2c-lat%d", moveLatency),
		Clusters:      []Cluster{paperCluster(), paperCluster()},
		MoveLatency:   moveLatency,
		MoveBandwidth: 1,
	}
}

// FourCluster returns a four-cluster scaling of the paper machine.
func FourCluster(moveLatency int) *Config {
	return &Config{
		Name:          fmt.Sprintf("4c-lat%d", moveLatency),
		Clusters:      []Cluster{paperCluster(), paperCluster(), paperCluster(), paperCluster()},
		MoveLatency:   moveLatency,
		MoveBandwidth: 1,
	}
}

// Heterogeneous2 returns a two-cluster machine where cluster 0 has twice
// the integer bandwidth of cluster 1 (the imbalance example from §2).
func Heterogeneous2(moveLatency int) *Config {
	big := paperCluster()
	big.Units[FUInt] = 4
	small := paperCluster()
	small.Units[FUInt] = 2
	return &Config{
		Name:          fmt.Sprintf("hetero-2c-lat%d", moveLatency),
		Clusters:      []Cluster{big, small},
		MoveLatency:   moveLatency,
		MoveBandwidth: 1,
	}
}

// RingFour returns a four-cluster machine whose clusters sit on a
// nearest-neighbor ring: adjacent clusters exchange values in moveLatency
// cycles, opposite clusters in twice that.
func RingFour(moveLatency int) *Config {
	cfg := FourCluster(moveLatency)
	cfg.Name = fmt.Sprintf("ring-4c-lat%d", moveLatency)
	cfg.Topology = TopologyRing
	return cfg
}

// EightCluster returns an eight-cluster scaling of the paper machine on
// the uniform bus.
func EightCluster(moveLatency int) *Config {
	cls := make([]Cluster, 8)
	for i := range cls {
		cls[i] = paperCluster()
	}
	return &Config{
		Name:          fmt.Sprintf("8c-lat%d", moveLatency),
		Clusters:      cls,
		MoveLatency:   moveLatency,
		MoveBandwidth: 1,
	}
}

// Ring8 returns an eight-cluster nearest-neighbor ring (diameter 4 hops).
func Ring8(moveLatency int) *Config {
	cfg := EightCluster(moveLatency)
	cfg.Name = fmt.Sprintf("ring-8c-lat%d", moveLatency)
	cfg.Topology = TopologyRing
	return cfg
}

// Mesh4 returns four paper clusters on a 2x2 mesh: adjacent clusters one
// hop apart, diagonal clusters two.
func Mesh4(moveLatency int) *Config {
	cfg := FourCluster(moveLatency)
	cfg.Name = fmt.Sprintf("mesh-2x2-lat%d", moveLatency)
	cfg.Topology = TopologyMesh
	cfg.MeshCols = 2
	return cfg
}

// Mesh8 returns eight paper clusters on a 2x4 mesh (diameter 4 hops —
// same as Ring8, but with a richer distance distribution).
func Mesh8(moveLatency int) *Config {
	cfg := EightCluster(moveLatency)
	cfg.Name = fmt.Sprintf("mesh-2x4-lat%d", moveLatency)
	cfg.Topology = TopologyMesh
	cfg.MeshCols = 4
	return cfg
}

// NUMA4 returns a near-data four-cluster machine: two NUMA nodes of two
// clusters each, moves inside a node cost moveLatency and across nodes
// 4x that, and node 0's clusters carry three times the scratchpad of
// node 1's — so the data partitioner is pulled toward the big memories
// while the latency matrix penalizes leaving them (the CODA-style regime
// where compute follows data).
func NUMA4(moveLatency int) *Config {
	cfg := FourCluster(moveLatency)
	cfg.Name = fmt.Sprintf("numa-4c-lat%d", moveLatency)
	cfg.Topology = TopologyMatrix
	far := 4 * moveLatency
	cfg.LatencyMatrix = [][]int{
		{0, moveLatency, far, far},
		{moveLatency, 0, far, far},
		{far, far, 0, moveLatency},
		{far, far, moveLatency, 0},
	}
	const unit = 64 << 10
	for i := range cfg.Clusters {
		if i < 2 {
			cfg.Clusters[i].MemBytes = 3 * unit
		} else {
			cfg.Clusters[i].MemBytes = unit
		}
	}
	return cfg
}

// WithLatencyMatrix returns a copy of cfg rewired as an explicit-matrix
// machine with the given per-pair latencies. The matrix must satisfy the
// Validate invariants (square, zero diagonal, symmetric, positive off the
// diagonal).
func WithLatencyMatrix(cfg *Config, matrix [][]int) (*Config, error) {
	out := *cfg
	out.Clusters = append([]Cluster(nil), cfg.Clusters...)
	out.Topology = TopologyMatrix
	out.MeshCols = 0
	out.LatencyMatrix = matrix
	if err := out.validateMatrix(); err != nil {
		return nil, err
	}
	return &out, nil
}

// AsMatrix returns a copy of cfg with its topology re-expressed as an
// explicit LatencyMatrix (the all-pairs table MoveLat already induces).
// The result is a semantically identical machine on a different code path
// — the conformance suite pins that every consumer produces byte-identical
// output for the two spellings.
func AsMatrix(cfg *Config) *Config {
	out := *cfg
	out.Clusters = append([]Cluster(nil), cfg.Clusters...)
	out.Name = cfg.Name + "-asmatrix"
	out.Topology = TopologyMatrix
	out.MeshCols = 0
	out.LatencyMatrix = cfg.LatencyTable()
	return &out
}

// Preset resolves a machine-preset name at the given move latency: the
// shared vocabulary of the gdpd API and the command-line tools.
//
//	paper2   2 clusters, uniform bus (the paper's machine)
//	four     4 clusters, uniform bus
//	eight    8 clusters, uniform bus
//	hetero2  2 clusters, cluster 0 with twice the integer units
//	ring4    4 clusters, nearest-neighbor ring
//	ring8    8 clusters, nearest-neighbor ring
//	mesh4    4 clusters, 2x2 mesh
//	mesh8    8 clusters, 2x4 mesh
//	numa4    4 clusters, two NUMA nodes, asymmetric memory + latencies
func Preset(name string, moveLatency int) (*Config, error) {
	switch name {
	case "", "paper2":
		return Paper2Cluster(moveLatency), nil
	case "four":
		return FourCluster(moveLatency), nil
	case "eight":
		return EightCluster(moveLatency), nil
	case "hetero2":
		return Heterogeneous2(moveLatency), nil
	case "ring4":
		return RingFour(moveLatency), nil
	case "ring8":
		return Ring8(moveLatency), nil
	case "mesh4":
		return Mesh4(moveLatency), nil
	case "mesh8":
		return Mesh8(moveLatency), nil
	case "numa4":
		return NUMA4(moveLatency), nil
	}
	return nil, fmt.Errorf("unknown machine preset %q (want paper2|four|eight|hetero2|ring4|ring8|mesh4|mesh8|numa4)", name)
}

// PresetNames lists the Preset vocabulary in documentation order.
func PresetNames() []string {
	return []string{"paper2", "four", "eight", "hetero2", "ring4", "ring8", "mesh4", "mesh8", "numa4"}
}

// MemFractions returns each cluster's share of the machine's total data
// memory, or nil when no capacities are specified. The data partitioner
// balances object bytes to these targets (the paper's §3.3.2 notes the
// balance "is parameterized in the case where the memory within one
// cluster is significantly larger than the other").
func (c *Config) MemFractions() []float64 {
	var total int64
	for _, cl := range c.Clusters {
		if cl.MemBytes <= 0 {
			return nil
		}
		total += cl.MemBytes
	}
	out := make([]float64, len(c.Clusters))
	for i, cl := range c.Clusters {
		out[i] = float64(cl.MemBytes) / float64(total)
	}
	return out
}

// WithMemCapacities returns a copy of cfg with per-cluster scratchpad
// capacities set (one value per cluster).
func WithMemCapacities(cfg *Config, bytes ...int64) (*Config, error) {
	if len(bytes) != len(cfg.Clusters) {
		return nil, fmt.Errorf("machine %q: %d capacities for %d clusters",
			cfg.Name, len(bytes), len(cfg.Clusters))
	}
	out := *cfg
	out.Clusters = append([]Cluster(nil), cfg.Clusters...)
	for i, b := range bytes {
		if b <= 0 {
			return nil, fmt.Errorf("machine %q: capacity %d for cluster %d", cfg.Name, b, i)
		}
		out.Clusters[i].MemBytes = b
	}
	return &out, nil
}

// Unified1Cluster returns a single-cluster machine with the combined
// resources of n paper clusters. Note this is NOT the paper's "unified
// memory" baseline (that is the clustered machine with a shared memory,
// modeled by the eval package); it is a fully-centralized ablation point
// with no intercluster communication at all.
func Unified1Cluster(n int) *Config {
	cl := paperCluster()
	for k := FUKind(0); k < NumFUKinds; k++ {
		cl.Units[k] *= n
	}
	return &Config{
		Name:          fmt.Sprintf("unified-%dw", n),
		Clusters:      []Cluster{cl},
		MoveLatency:   1,
		MoveBandwidth: 1,
	}
}
