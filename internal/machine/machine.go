// Package machine describes the multicluster VLIW targets the partitioners
// compile for: per-cluster function units and register files, operation
// latencies, and the intercluster communication network (fixed bandwidth,
// configurable move latency), matching the machine model of the paper's
// §4.1 (2-cluster VLIW, 2 integer / 1 float / 1 memory / 1 branch unit per
// cluster, Itanium-like latencies, 1 intercluster move per cycle with a
// latency of 1, 5, or 10 cycles).
package machine

import (
	"fmt"

	"mcpart/internal/ir"
)

// FUKind is a function-unit class.
type FUKind int

// Function-unit classes.
const (
	FUInt FUKind = iota
	FUFloat
	FUMem
	FUBranch
	NumFUKinds
)

func (k FUKind) String() string {
	switch k {
	case FUInt:
		return "I"
	case FUFloat:
		return "F"
	case FUMem:
		return "M"
	case FUBranch:
		return "B"
	}
	return "?"
}

// KindOf maps an opcode to the function-unit class that executes it.
// Intercluster moves (ir.OpMove) issue on the integer unit of the sending
// cluster and additionally occupy the intercluster bus.
func KindOf(op ir.Opcode) FUKind {
	switch {
	case op.IsFloat():
		return FUFloat
	case op.IsMem():
		return FUMem
	case op.IsBranch():
		return FUBranch
	default:
		return FUInt
	}
}

// Latency returns the cycles from issue of an op until its result is
// available. The values mirror Itanium-class latencies, as in the paper.
func Latency(op ir.Opcode) int {
	switch op {
	case ir.OpMul:
		return 3
	case ir.OpDiv, ir.OpRem:
		return 8
	case ir.OpLoad, ir.OpMalloc:
		return 2
	case ir.OpStore:
		return 1
	case ir.OpFAdd, ir.OpFSub, ir.OpFMul,
		ir.OpFCmpEQ, ir.OpFCmpNE, ir.OpFCmpLT, ir.OpFCmpLE, ir.OpFCmpGT, ir.OpFCmpGE,
		ir.OpIToF, ir.OpFToI, ir.OpFNeg:
		return 4
	case ir.OpFDiv:
		return 12
	default:
		return 1
	}
}

// Cluster describes one cluster's function units and local data memory.
type Cluster struct {
	Units [NumFUKinds]int
	// MemBytes is the cluster's scratchpad capacity in bytes; 0 means
	// "unspecified" (the data partitioner then targets equal shares).
	MemBytes int64
}

// Topology selects the intercluster network shape.
type Topology int

// Network topologies. The paper assumes a shared bus with uniform latency
// ("this assumption is not necessary", §2); TopologyRing models the
// nearest-neighbor interconnects of tiled machines like RAW, where a move
// between clusters costs MoveLatency per hop of ring distance.
const (
	TopologyBus Topology = iota
	TopologyRing
)

func (t Topology) String() string {
	if t == TopologyRing {
		return "ring"
	}
	return "bus"
}

// Config is a complete machine description.
type Config struct {
	Name     string
	Clusters []Cluster
	// MoveLatency is the cycle count of one intercluster move (per hop
	// for TopologyRing).
	MoveLatency int
	// MoveBandwidth is the number of intercluster moves that may be in
	// flight per cycle across the shared network (a global cap even for
	// the ring, a documented simplification).
	MoveBandwidth int
	// Topology is the network shape; the zero value is the paper's bus.
	Topology Topology
}

// MoveLat returns the move latency from cluster a to cluster b: the
// uniform bus latency, or hops x latency on a ring.
func (c *Config) MoveLat(a, b int) int {
	if a == b {
		return 0
	}
	if c.Topology == TopologyRing {
		n := len(c.Clusters)
		d := a - b
		if d < 0 {
			d = -d
		}
		if n-d < d {
			d = n - d
		}
		return c.MoveLatency * d
	}
	return c.MoveLatency
}

// NumClusters returns the cluster count.
func (c *Config) NumClusters() int { return len(c.Clusters) }

// Units returns the number of units of the given kind on cluster ci.
func (c *Config) Units(ci int, k FUKind) int { return c.Clusters[ci].Units[k] }

// TotalUnits returns the machine-wide unit count of kind k.
func (c *Config) TotalUnits(k FUKind) int {
	n := 0
	for _, cl := range c.Clusters {
		n += cl.Units[k]
	}
	return n
}

// Validate checks the configuration is usable.
func (c *Config) Validate() error {
	if len(c.Clusters) < 1 {
		return fmt.Errorf("machine %q: needs at least one cluster", c.Name)
	}
	if c.MoveLatency < 1 {
		return fmt.Errorf("machine %q: move latency %d < 1", c.Name, c.MoveLatency)
	}
	if c.MoveBandwidth < 1 {
		return fmt.Errorf("machine %q: move bandwidth %d < 1", c.Name, c.MoveBandwidth)
	}
	for i, cl := range c.Clusters {
		for k := FUKind(0); k < NumFUKinds; k++ {
			if cl.Units[k] < 0 {
				return fmt.Errorf("machine %q: cluster %d has %d units of %s",
					c.Name, i, cl.Units[k], k)
			}
		}
		if cl.Units[FUMem] == 0 {
			return fmt.Errorf("machine %q: cluster %d has no memory unit", c.Name, i)
		}
	}
	return nil
}

// SymmetricClusters reports whether every cluster is interchangeable:
// identical function-unit mixes and memory capacities, and an intercluster
// network that looks the same from every cluster (all ordered pairs of
// distinct clusters have equal move latency). On such machines relabeling
// the clusters by any permutation that preserves the network — in
// particular swapping the two clusters of a 2-cluster machine — yields an
// equivalent machine, which is what licenses the complement-symmetry
// canonicalization in eval.Exhaustive. Asymmetric presets (Heterogeneous2,
// WithMemCapacities with unequal shares) report false and keep full
// sweeps.
func (c *Config) SymmetricClusters() bool {
	if len(c.Clusters) < 2 {
		return true
	}
	for _, cl := range c.Clusters[1:] {
		if cl != c.Clusters[0] {
			return false
		}
	}
	lat := c.MoveLat(0, 1)
	for a := range c.Clusters {
		for b := range c.Clusters {
			if a != b && c.MoveLat(a, b) != lat {
				return false
			}
		}
	}
	return true
}

// CacheKey returns a canonical encoding of everything that affects
// partitioning and scheduling outcomes: topology, move latency and
// bandwidth, and each cluster's unit mix and memory capacity. Name is
// deliberately excluded — two differently-named but identical configs
// share memoized results (see internal/memo).
func (c *Config) CacheKey() string {
	b := make([]byte, 0, 64)
	b = fmt.Appendf(b, "t%d;l%d;w%d", c.Topology, c.MoveLatency, c.MoveBandwidth)
	for _, cl := range c.Clusters {
		b = fmt.Appendf(b, ";u%v,m%d", cl.Units, cl.MemBytes)
	}
	return string(b)
}

// paperCluster is the per-cluster resource mix from the paper's §4.1.
func paperCluster() Cluster {
	var cl Cluster
	cl.Units[FUInt] = 2
	cl.Units[FUFloat] = 1
	cl.Units[FUMem] = 1
	cl.Units[FUBranch] = 1
	return cl
}

// Paper2Cluster returns the paper's evaluation machine: two homogeneous
// clusters, each with 2 integer, 1 float, 1 memory and 1 branch unit, and
// an intercluster bus of 1 move/cycle with the given latency.
func Paper2Cluster(moveLatency int) *Config {
	return &Config{
		Name:          fmt.Sprintf("paper-2c-lat%d", moveLatency),
		Clusters:      []Cluster{paperCluster(), paperCluster()},
		MoveLatency:   moveLatency,
		MoveBandwidth: 1,
	}
}

// FourCluster returns a four-cluster scaling of the paper machine.
func FourCluster(moveLatency int) *Config {
	return &Config{
		Name:          fmt.Sprintf("4c-lat%d", moveLatency),
		Clusters:      []Cluster{paperCluster(), paperCluster(), paperCluster(), paperCluster()},
		MoveLatency:   moveLatency,
		MoveBandwidth: 1,
	}
}

// Heterogeneous2 returns a two-cluster machine where cluster 0 has twice
// the integer bandwidth of cluster 1 (the imbalance example from §2).
func Heterogeneous2(moveLatency int) *Config {
	big := paperCluster()
	big.Units[FUInt] = 4
	small := paperCluster()
	small.Units[FUInt] = 2
	return &Config{
		Name:          fmt.Sprintf("hetero-2c-lat%d", moveLatency),
		Clusters:      []Cluster{big, small},
		MoveLatency:   moveLatency,
		MoveBandwidth: 1,
	}
}

// RingFour returns a four-cluster machine whose clusters sit on a
// nearest-neighbor ring: adjacent clusters exchange values in moveLatency
// cycles, opposite clusters in twice that.
func RingFour(moveLatency int) *Config {
	cfg := FourCluster(moveLatency)
	cfg.Name = fmt.Sprintf("ring-4c-lat%d", moveLatency)
	cfg.Topology = TopologyRing
	return cfg
}

// MemFractions returns each cluster's share of the machine's total data
// memory, or nil when no capacities are specified. The data partitioner
// balances object bytes to these targets (the paper's §3.3.2 notes the
// balance "is parameterized in the case where the memory within one
// cluster is significantly larger than the other").
func (c *Config) MemFractions() []float64 {
	var total int64
	for _, cl := range c.Clusters {
		if cl.MemBytes <= 0 {
			return nil
		}
		total += cl.MemBytes
	}
	out := make([]float64, len(c.Clusters))
	for i, cl := range c.Clusters {
		out[i] = float64(cl.MemBytes) / float64(total)
	}
	return out
}

// WithMemCapacities returns a copy of cfg with per-cluster scratchpad
// capacities set (one value per cluster).
func WithMemCapacities(cfg *Config, bytes ...int64) (*Config, error) {
	if len(bytes) != len(cfg.Clusters) {
		return nil, fmt.Errorf("machine %q: %d capacities for %d clusters",
			cfg.Name, len(bytes), len(cfg.Clusters))
	}
	out := *cfg
	out.Clusters = append([]Cluster(nil), cfg.Clusters...)
	for i, b := range bytes {
		if b <= 0 {
			return nil, fmt.Errorf("machine %q: capacity %d for cluster %d", cfg.Name, b, i)
		}
		out.Clusters[i].MemBytes = b
	}
	return &out, nil
}

// Unified1Cluster returns a single-cluster machine with the combined
// resources of n paper clusters. Note this is NOT the paper's "unified
// memory" baseline (that is the clustered machine with a shared memory,
// modeled by the eval package); it is a fully-centralized ablation point
// with no intercluster communication at all.
func Unified1Cluster(n int) *Config {
	cl := paperCluster()
	for k := FUKind(0); k < NumFUKinds; k++ {
		cl.Units[k] *= n
	}
	return &Config{
		Name:          fmt.Sprintf("unified-%dw", n),
		Clusters:      []Cluster{cl},
		MoveLatency:   1,
		MoveBandwidth: 1,
	}
}
