package machine

import (
	"testing"

	"mcpart/internal/ir"
)

func TestPaper2Cluster(t *testing.T) {
	cfg := Paper2Cluster(5)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.NumClusters() != 2 {
		t.Fatalf("clusters = %d", cfg.NumClusters())
	}
	for c := 0; c < 2; c++ {
		if cfg.Units(c, FUInt) != 2 || cfg.Units(c, FUFloat) != 1 ||
			cfg.Units(c, FUMem) != 1 || cfg.Units(c, FUBranch) != 1 {
			t.Errorf("cluster %d units wrong: %+v", c, cfg.Clusters[c])
		}
	}
	if cfg.MoveLatency != 5 || cfg.MoveBandwidth != 1 {
		t.Errorf("network wrong: lat=%d bw=%d", cfg.MoveLatency, cfg.MoveBandwidth)
	}
	if cfg.TotalUnits(FUInt) != 4 {
		t.Errorf("TotalUnits(Int) = %d", cfg.TotalUnits(FUInt))
	}
}

func TestPresetsValidate(t *testing.T) {
	for _, cfg := range []*Config{
		Paper2Cluster(1), Paper2Cluster(10), FourCluster(5),
		Heterogeneous2(5), Unified1Cluster(2),
	} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
	if FourCluster(5).NumClusters() != 4 {
		t.Error("FourCluster has wrong cluster count")
	}
	h := Heterogeneous2(5)
	if h.Units(0, FUInt) != 2*h.Units(1, FUInt) {
		t.Error("Heterogeneous2 cluster 0 should have 2x integer units")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := Paper2Cluster(5)
	bad.MoveLatency = 0
	if bad.Validate() == nil {
		t.Error("accepted zero move latency")
	}
	bad = Paper2Cluster(5)
	bad.MoveBandwidth = 0
	if bad.Validate() == nil {
		t.Error("accepted zero bandwidth")
	}
	bad = Paper2Cluster(5)
	bad.Clusters[1].Units[FUMem] = 0
	if bad.Validate() == nil {
		t.Error("accepted cluster without memory unit")
	}
	if (&Config{Name: "x", MoveLatency: 1, MoveBandwidth: 1}).Validate() == nil {
		t.Error("accepted zero clusters")
	}
}

func TestKindOfCoversAllOpcodes(t *testing.T) {
	cases := map[ir.Opcode]FUKind{
		ir.OpAdd: FUInt, ir.OpMul: FUInt, ir.OpMov: FUInt, ir.OpAddr: FUInt,
		ir.OpFAdd: FUFloat, ir.OpIToF: FUFloat,
		ir.OpLoad: FUMem, ir.OpStore: FUMem, ir.OpMalloc: FUMem,
		ir.OpBr: FUBranch, ir.OpCall: FUBranch, ir.OpRet: FUBranch,
		ir.OpMove: FUInt,
	}
	for op, want := range cases {
		if got := KindOf(op); got != want {
			t.Errorf("KindOf(%s) = %s, want %s", op, got, want)
		}
	}
}

func TestLatenciesItaniumLike(t *testing.T) {
	if Latency(ir.OpAdd) != 1 {
		t.Error("int add should be 1 cycle")
	}
	if Latency(ir.OpLoad) != 2 {
		t.Error("load should be 2 cycles (the paper's unified access latency)")
	}
	if Latency(ir.OpMul) <= Latency(ir.OpAdd) {
		t.Error("mul should be slower than add")
	}
	if Latency(ir.OpFDiv) <= Latency(ir.OpFMul) {
		t.Error("fdiv should be slower than fmul")
	}
	for op := ir.OpAdd; op <= ir.OpMove; op++ {
		if Latency(op) < 1 {
			t.Errorf("latency(%s) = %d < 1", op, Latency(op))
		}
	}
}

func TestMemCapacitiesLocal(t *testing.T) {
	cfg := Paper2Cluster(5)
	if cfg.MemFractions() != nil {
		t.Error("nil expected without capacities")
	}
	asym, err := WithMemCapacities(cfg, 1024, 3072)
	if err != nil {
		t.Fatal(err)
	}
	fr := asym.MemFractions()
	if fr[0] != 0.25 || fr[1] != 0.75 {
		t.Errorf("fractions = %v", fr)
	}
	// The original config is untouched.
	if cfg.Clusters[0].MemBytes != 0 {
		t.Error("WithMemCapacities mutated its input")
	}
	if _, err := WithMemCapacities(cfg, 1); err == nil {
		t.Error("accepted wrong count")
	}
	if _, err := WithMemCapacities(cfg, -1, 5); err == nil {
		t.Error("accepted negative capacity")
	}
	// Partial capacities also yield nil fractions.
	half := *cfg
	half.Clusters = append([]Cluster(nil), cfg.Clusters...)
	half.Clusters[0].MemBytes = 100
	if half.MemFractions() != nil {
		t.Error("partial capacities should give nil fractions")
	}
}

func TestFUKindStrings(t *testing.T) {
	want := map[FUKind]string{FUInt: "I", FUFloat: "F", FUMem: "M", FUBranch: "B"}
	for k, w := range want {
		if k.String() != w {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), w)
		}
	}
	if NumFUKinds.String() != "?" {
		t.Error("out-of-range kind should render '?'")
	}
}

func TestRingTopology(t *testing.T) {
	cfg := RingFour(5)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Topology != TopologyRing || cfg.Topology.String() != "ring" {
		t.Error("topology not ring")
	}
	cases := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 1, 5}, {1, 0, 5}, {0, 2, 10}, {0, 3, 5}, {1, 3, 10}, {2, 3, 5},
	}
	for _, c := range cases {
		if got := cfg.MoveLat(c.a, c.b); got != c.want {
			t.Errorf("MoveLat(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	bus := Paper2Cluster(5)
	if bus.MoveLat(0, 1) != 5 || bus.MoveLat(1, 1) != 0 {
		t.Error("bus MoveLat wrong")
	}
	if bus.Topology.String() != "bus" {
		t.Error("default topology should be bus")
	}
}
