package rhop

import (
	"fmt"
	"sort"

	"mcpart/internal/cfg"
	"mcpart/internal/interp"
	"mcpart/internal/ir"
	"mcpart/internal/machine"
	"mcpart/internal/sched"
)

// FuncPartitioner partitions one function repeatedly under varying lock
// maps, as a data-mapping sweep does: the function-shaped work (def-use
// chains, regions, dependence slack, loop context, scratch tables) is built
// once, and per-region results are cached across calls.
//
// The cache is exact, not heuristic. PartitionFunc processes regions in a
// fixed heat order, and each region's outcome is a pure function of (a) the
// locks on that region's ops and (b) the assignment of previously-placed
// ops (which anchor live-in/live-out values) — everything else is function
// structure fixed at construction. The cache key encodes exactly (a) and
// (b), so a hit replays a byte-identical region result and Partition
// returns exactly what PartitionFunc would for the same locks (pinned by
// TestFuncPartitionerMatchesPartitionFunc).
//
// A FuncPartitioner is not safe for concurrent use; sweeps create one per
// worker (or per function, processed by one worker at a time).
type FuncPartitioner struct {
	f    *ir.Func
	prof *interp.Profile
	mcfg *machine.Config
	opts Options

	du  *cfg.DefUse
	ops []*ir.Op
	lc  *sched.LoopCtx
	pre []*regionPre // heat order, same as PartitionFunc

	sc     *scratch
	caches []map[string][]int // per region: key -> regionOps' clusters
	keyBuf []byte

	hits, misses int64
	// last-flushed observability tallies, so each Partition call flushes
	// only its own delta like one-shot PartitionFunc does.
	obsRegions, obsMoves, obsEvals int64
	obsKWay, obsRefine             int64
}

// NewFuncPartitioner prepares f for repeated partitioning. The preparation
// mirrors PartitionFunc's preamble exactly (including the heat-ordered
// region sort) so cached and uncached calls traverse regions identically.
func NewFuncPartitioner(f *ir.Func, prof *interp.Profile, mcfg *machine.Config, opts Options) *FuncPartitioner {
	fp := &FuncPartitioner{
		f: f, prof: prof, mcfg: mcfg, opts: opts,
		du: cfg.ComputeDefUse(f),
		lc: sched.NewLoopCtx(f),
		sc: &scratch{sched: sched.NewScratch(), dirtyEval: true},
	}
	fp.ops = f.OpsByID()
	regions := cfg.FormRegions(f)
	order := make([]*cfg.Region, len(regions))
	copy(order, regions)
	sort.SliceStable(order, func(i, j int) bool {
		return regionHeat(prof, order[i]) > regionHeat(prof, order[j])
	})
	fp.pre = make([]*regionPre, len(order))
	fp.caches = make([]map[string][]int, len(order))
	for i, region := range order {
		fp.pre[i] = newRegionPre(f, region, fp.du, fp.ops, mcfg)
		fp.caches[i] = map[string][]int{}
	}
	return fp
}

// Partition assigns every op of the prepared function to a cluster under
// the given locks, byte-identical to PartitionFunc(f, prof, mcfg, locks,
// opts). The returned slice is freshly allocated and owned by the caller.
func (fp *FuncPartitioner) Partition(locks Locks) ([]int, error) {
	f := fp.f
	k := fp.mcfg.NumClusters()
	asg := make([]int, f.NOps)
	for i := range asg {
		asg[i] = -1
	}
	for id, c := range locks {
		if c < 0 || c >= k {
			return nil, fmt.Errorf("rhop: %s op %d locked to cluster %d of %d", f.Name, id, c, k)
		}
	}
	for ri, pre := range fp.pre {
		if len(pre.regionOps) == 0 {
			continue
		}
		pre.ensureExtRefs(fp.du)
		pre.ensureHomeRefs(f, fp.du, fp.ops, fp.prof)
		buf := fp.regionKey(pre, locks, asg)
		if snap, ok := fp.caches[ri][string(buf)]; ok {
			for i, op := range pre.regionOps {
				asg[op.ID] = snap[i]
			}
			fp.hits++
			continue
		}
		key := string(buf)
		if err := partitionRegion(fp.sc, pre, f, fp.du, fp.ops, fp.lc, fp.prof, fp.mcfg, locks, fp.opts, asg); err != nil {
			return nil, err
		}
		snap := make([]int, len(pre.regionOps))
		for i, op := range pre.regionOps {
			snap[i] = asg[op.ID]
		}
		fp.caches[ri][key] = snap
		fp.misses++
	}
	for id, c := range asg {
		if c < 0 {
			return nil, fmt.Errorf("rhop: %s op %d left unassigned", f.Name, id)
		}
	}
	if o := fp.opts.Obs; o != nil {
		o.Counter("rhop_functions").Add(1)
		o.Counter("rhop_regions").Add(fp.sc.tRegions - fp.obsRegions)
		o.Counter("rhop_moves_accepted").Add(fp.sc.tMoves - fp.obsMoves)
		o.Counter("rhop_cost_evals").Add(fp.sc.tEvals - fp.obsEvals)
		o.Counter("rhop_kway_runs").Add(fp.sc.tKWay - fp.obsKWay)
		o.Counter("rhop_refine_runs").Add(fp.sc.tRefine - fp.obsRefine)
		fp.obsRegions, fp.obsMoves, fp.obsEvals = fp.sc.tRegions, fp.sc.tMoves, fp.sc.tEvals
		fp.obsKWay, fp.obsRefine = fp.sc.tKWay, fp.sc.tRefine
	}
	return asg, nil
}

// regionKey encodes the complete input closure of one region's
// partitioning: the lock state of each region op (in region order) and the
// prior assignments partitionRegion can observe — the external def/use
// sites its graph anchors consult (extRefs) and the out-of-region definers
// of the blocks' live-in registers (extHomeRefs), which are the only
// out-of-region assignments the cost scorer's and refiners' home
// computations depend on. -1 and clusters 0..k-1 fit one byte each; k is
// bounded well below 254 by machine configs. The returned buffer is owned
// by fp and valid until the next call; callers look up with a zero-copy
// string conversion and materialize the key only to store.
func (fp *FuncPartitioner) regionKey(pre *regionPre, locks Locks, asg []int) []byte {
	buf := fp.keyBuf[:0]
	for _, op := range pre.regionOps {
		if c, ok := locks[op.ID]; ok {
			buf = append(buf, byte(c))
		} else {
			buf = append(buf, 0xFF)
		}
	}
	for _, id := range pre.extRefs {
		buf = append(buf, byte(asg[id]+1))
	}
	for _, id := range pre.extHomeRefs {
		buf = append(buf, byte(asg[id]+1))
	}
	fp.keyBuf = buf
	return buf
}

// Hits and Misses report the region-cache effectiveness across all
// Partition calls so far.
func (fp *FuncPartitioner) Hits() int64   { return fp.hits }
func (fp *FuncPartitioner) Misses() int64 { return fp.misses }

// TouchedObjects returns the sorted set of data-object IDs f's memory
// operations may access — the objects whose mapping can change f's locks,
// and therefore its partition and cycle count. A sweep only needs to
// re-evaluate f when one of these objects moves.
func TouchedObjects(f *ir.Func) []int {
	seen := map[int]bool{}
	for _, b := range f.Blocks {
		for _, op := range b.Ops {
			if !op.Opcode.IsMem() {
				continue
			}
			for _, o := range op.MayAccess {
				seen[o] = true
			}
		}
	}
	out := make([]int, 0, len(seen))
	for o := range seen {
		out = append(out, o)
	}
	sort.Ints(out)
	return out
}
