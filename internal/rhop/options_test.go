package rhop

import "testing"

// TestOptionDefaults pins the documented defaults behind the repository's
// option convention (see internal/defaults): a zero or negative knob
// selects the default, any positive value wins.
func TestOptionDefaults(t *testing.T) {
	var zero Options
	if got := zero.passes(); got != 4 {
		t.Errorf("zero RefinePasses -> %d, want 4", got)
	}
	if got := zero.tol(); got != 0.4 {
		t.Errorf("zero BalanceTol -> %v, want 0.4", got)
	}
	neg := Options{RefinePasses: -2, BalanceTol: -0.5}
	if neg.passes() != 4 || neg.tol() != 0.4 {
		t.Error("negative knobs must select the defaults")
	}
	set := Options{RefinePasses: 2, BalanceTol: 0.2}
	if set.passes() != 2 || set.tol() != 0.2 {
		t.Error("positive knobs must win over the defaults")
	}
}
