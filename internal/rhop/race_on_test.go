//go:build race

package rhop

// raceEnabled reports that this test binary was built with -race, where
// testing.AllocsPerRun is unreliable (race bookkeeping allocates).
const raceEnabled = true
