package rhop

import (
	"testing"

	"mcpart/internal/cfg"
	"mcpart/internal/interp"
	"mcpart/internal/ir"
	"mcpart/internal/machine"
	"mcpart/internal/mclang"
	"mcpart/internal/pointsto"
	"mcpart/internal/sched"
)

func compileAndProfile(t *testing.T, src string) (*ir.Module, *interp.Profile) {
	t.Helper()
	mod, err := mclang.Compile(src, "t")
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	pointsto.Analyze(mod)
	in := interp.New(mod, interp.Options{})
	if _, err := in.RunMain(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return mod, in.Profile()
}

const wideSrc = `
global int a[64];
global int b[64];
func main() int {
    int i;
    int s = 0;
    int u = 0;
    for (i = 0; i < 64; i = i + 1) {
        s = s + a[i] * 3;
        u = u + b[i] * 5;
    }
    return s + u;
}`

func TestPartitionAssignsEveryOp(t *testing.T) {
	mod, prof := compileAndProfile(t, wideSrc)
	mcfg := machine.Paper2Cluster(5)
	asg, err := PartitionModule(mod, prof, mcfg, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range mod.Funcs {
		a := asg[f]
		if len(a) != f.NOps {
			t.Fatalf("%s: assignment has %d entries, want %d", f.Name, len(a), f.NOps)
		}
		for id, c := range a {
			if c < 0 || c >= 2 {
				t.Fatalf("%s op %d assigned to %d", f.Name, id, c)
			}
		}
	}
}

func TestLocksAreRespected(t *testing.T) {
	mod, prof := compileAndProfile(t, wideSrc)
	mcfg := machine.Paper2Cluster(5)
	f := mod.Func("main")
	// Lock every memory op to cluster 1.
	locks := Locks{}
	for _, b := range f.Blocks {
		for _, op := range b.Ops {
			if op.Opcode.IsMem() {
				locks[op.ID] = 1
			}
		}
	}
	asg, err := PartitionFunc(f, prof, mcfg, locks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for id, c := range locks {
		if asg[id] != c {
			t.Fatalf("op %d assigned to %d despite lock to %d", id, asg[id], c)
		}
	}
}

func TestLockRangeChecked(t *testing.T) {
	mod, prof := compileAndProfile(t, wideSrc)
	f := mod.Func("main")
	_, err := PartitionFunc(f, prof, machine.Paper2Cluster(5), Locks{0: 7}, Options{})
	if err == nil {
		t.Fatal("accepted lock to nonexistent cluster")
	}
}

func TestTwoIndependentStrandsSplit(t *testing.T) {
	// Two independent hot accumulation strands should end up on different
	// clusters so they run in parallel.
	mod, prof := compileAndProfile(t, wideSrc)
	mcfg := machine.Paper2Cluster(5)
	f := mod.Func("main")
	asg, err := PartitionFunc(f, prof, mcfg, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	used := map[int]bool{}
	for _, c := range asg {
		used[c] = true
	}
	if len(used) != 2 {
		t.Errorf("partitioner used %d clusters, want 2", len(used))
	}
	// The split must actually beat everything-on-one-cluster.
	all0 := make([]int, f.NOps)
	c0, _ := sched.ProgramCycles(mod, map[*ir.Func][]int{f: all0}, mcfg, prof)
	cp, _ := sched.ProgramCycles(mod, map[*ir.Func][]int{f: asg}, mcfg, prof)
	if cp > c0 {
		t.Errorf("partitioned cycles %d worse than single-cluster %d", cp, c0)
	}
}

func TestDependentChainStaysTogether(t *testing.T) {
	// A single serial dependence chain should not be split: moves would
	// only stretch the critical path.
	mod, prof := compileAndProfile(t, `
func main() int {
    int s = 1;
    int i;
    for (i = 0; i < 100; i = i + 1) {
        s = s * 3;
        s = s + 1;
        s = s * 5;
        s = s + 2;
        s = s % 1000003;
    }
    return s;
}`)
	mcfg := machine.Paper2Cluster(10)
	f := mod.Func("main")
	asg, err := PartitionFunc(f, prof, mcfg, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Find the hot loop body block and check its arithmetic ops share one
	// cluster.
	var hot *ir.Block
	for _, b := range f.Blocks {
		if hot == nil || prof.Freq(b) > prof.Freq(hot) {
			hot = b
		}
	}
	clusters := map[int]int{}
	for _, op := range hot.Ops {
		if !op.Opcode.IsBranch() {
			clusters[asg[op.ID]]++
		}
	}
	if len(clusters) != 1 {
		t.Errorf("serial chain split across clusters: %v", clusters)
	}
}

func TestFourClusterPartition(t *testing.T) {
	mod, prof := compileAndProfile(t, wideSrc)
	mcfg := machine.FourCluster(5)
	asg, err := PartitionModule(mod, prof, mcfg, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range mod.Funcs {
		for _, c := range asg[f] {
			if c < 0 || c >= 4 {
				t.Fatalf("cluster %d out of range", c)
			}
		}
	}
}

func TestEstimateTracksScheduler(t *testing.T) {
	// The estimate need not equal the list scheduler, but must correlate:
	// for the all-on-0 vs balanced assignments of the wide loop, both
	// metrics must prefer the same choice.
	mod, prof := compileAndProfile(t, wideSrc)
	mcfg := machine.Paper2Cluster(5)
	f := mod.Func("main")
	asg, err := PartitionFunc(f, prof, mcfg, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	all0 := make([]int, f.NOps)
	regions := cfg.FormRegions(f)
	var estPart, estAll0 int64
	for _, r := range regions {
		estPart += EstimateRegionCost(f, r, prof, mcfg, asg)
		estAll0 += EstimateRegionCost(f, r, prof, mcfg, all0)
	}
	schedPart, _ := sched.ProgramCycles(mod, map[*ir.Func][]int{f: asg}, mcfg, prof)
	schedAll0, _ := sched.ProgramCycles(mod, map[*ir.Func][]int{f: all0}, mcfg, prof)
	// Near-ties in either metric may flip in the other; only demand
	// agreement when both see a significant (>5%) difference. Candidate
	// selection inside RHOP uses the real scheduler precisely because the
	// estimate is coarse near ties.
	bigDiff := func(a, b int64) bool { return a*20 < b*19 || b*20 < a*19 }
	if bigDiff(schedPart, schedAll0) && bigDiff(estPart, estAll0) {
		if (estPart < estAll0) != (schedPart < schedAll0) {
			t.Errorf("estimate and scheduler disagree: est %d vs %d, sched %d vs %d",
				estPart, estAll0, schedPart, schedAll0)
		}
	}
}

func TestDeterministic(t *testing.T) {
	mod, prof := compileAndProfile(t, wideSrc)
	mcfg := machine.Paper2Cluster(5)
	f := mod.Func("main")
	a1, err := PartitionFunc(f, prof, mcfg, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		a2, err := PartitionFunc(f, prof, mcfg, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for j := range a1 {
			if a1[j] != a2[j] {
				t.Fatalf("nondeterministic at op %d", j)
			}
		}
	}
}

func TestUniformEdgesAblationRuns(t *testing.T) {
	mod, prof := compileAndProfile(t, wideSrc)
	mcfg := machine.Paper2Cluster(5)
	if _, err := PartitionModule(mod, prof, mcfg, nil, Options{UniformEdges: true}); err != nil {
		t.Fatal(err)
	}
}

func TestPairRefineRespectsLocks(t *testing.T) {
	mod, prof := compileAndProfile(t, wideSrc)
	mcfg := machine.Paper2Cluster(5)
	f := mod.Func("main")
	locks := Locks{}
	for _, b := range f.Blocks {
		for _, op := range b.Ops {
			if op.Opcode.IsMem() {
				locks[op.ID] = 1
			}
		}
	}
	asg, err := PartitionFunc(f, prof, mcfg, locks, Options{PairRefine: true})
	if err != nil {
		t.Fatal(err)
	}
	for id, c := range locks {
		if asg[id] != c {
			t.Fatalf("pair refinement moved locked op %d to %d", id, asg[id])
		}
	}
}

func TestPairRefineNoWorseOnSuiteSample(t *testing.T) {
	mod, prof := compileAndProfile(t, wideSrc)
	mcfg := machine.Paper2Cluster(5)
	base, err := PartitionModule(mod, prof, mcfg, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := PartitionModule(mod, prof, mcfg, nil, Options{PairRefine: true})
	if err != nil {
		t.Fatal(err)
	}
	cb, _ := sched.ProgramCycles(mod, base, mcfg, prof)
	cp, _ := sched.ProgramCycles(mod, pr, mcfg, prof)
	// Pair refinement is judged by the same real-cost candidate selection,
	// so it should not regress by more than estimate noise (5%).
	if float64(cp) > 1.05*float64(cb) {
		t.Errorf("pair refinement regressed: %d -> %d cycles", cb, cp)
	}
}
