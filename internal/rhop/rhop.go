// Package rhop implements the Region-based Hierarchical Operation
// Partitioning computation partitioner (Chu, Fan & Mahlke, PLDI'03), in the
// enhanced form this paper's §3.4 uses: memory operations may be locked to
// the home cluster of the data object they access, and the partitioner then
// distributes all remaining operations around those locked anchors using
// schedule-length estimates.
//
// Structure per region (an innermost loop body or a singleton block):
//
//  1. build an operation graph whose edge weights derive from dependence
//     slack (low slack = critical = heavy edge) scaled by profile
//     frequency, with locked operations and live-in values as fixed
//     anchors;
//  2. obtain an initial assignment from the multilevel min-cut partitioner
//     (internal/partition), which performs the coarsen/uncoarsen phases;
//  3. refine with estimate-driven local moves: an operation migrates to
//     another cluster when the region's estimated profile-weighted
//     schedule length strictly improves. The estimate combines the
//     resource bound, the intercluster-bus bound, and the critical path
//     with move latencies — the same ingredients as RHOP's schedule
//     estimator.
package rhop

import (
	"fmt"
	"sort"

	"mcpart/internal/cfg"
	"mcpart/internal/defaults"
	"mcpart/internal/interp"
	"mcpart/internal/ir"
	"mcpart/internal/machine"
	"mcpart/internal/memo"
	"mcpart/internal/obs"
	"mcpart/internal/partition"
	"mcpart/internal/sched"
)

// Locks maps op IDs (within one function) to the cluster the op must run
// on. Memory operations get locked to their object's home cluster by the
// data-partitioning schemes; an empty map reproduces unified-memory RHOP.
type Locks map[int]int

// Options tunes the partitioner.
type Options struct {
	// RefinePasses bounds estimate-driven refinement sweeps per region
	// (default 4).
	RefinePasses int
	// BalanceTol is the initial partition's op-count imbalance tolerance
	// (default 0.4; refinement rebalances by estimate afterwards).
	BalanceTol float64
	// UniformEdges disables slack weighting (ablation: every dependence
	// edge gets the same base weight).
	UniformEdges bool
	// PairRefine adds a group-refinement phase that moves heavy-edge op
	// pairs together, as RHOP's multilevel uncoarsening does at its
	// coarser levels; single-op moves sometimes cannot escape the local
	// minima pair moves can.
	PairRefine bool
	// NoIncremental disables the incremental per-block estimate cache in
	// the refinement loops and recomputes every region estimate from
	// scratch (ablation / debugging aid). Results are identical either
	// way — the cache is exact — so this knob only affects speed and is
	// excluded from CacheKey.
	NoIncremental bool
	// LegacyPartition routes the underlying graph bisection through the
	// legacy partitioner path instead of the CSR + gain-bucket FM fast
	// path (ablation). The two paths can pick different equal-quality
	// partitions, so this is part of CacheKey.
	LegacyPartition bool
	// Workers bounds the fast partitioner's multi-start fan-out; 0 means
	// runtime.GOMAXPROCS(0). Value-neutral (results are identical for
	// every worker count), so — like NoIncremental — it is excluded from
	// CacheKey.
	Workers int
	// Obs, when non-nil, receives the refinement metrics (rhop_regions,
	// rhop_moves_accepted, rhop_cost_evals) and is threaded into the
	// graph partitioner. Value-neutral and excluded from CacheKey; the
	// refinement loops tally into scratch ints and flush once per
	// PartitionFunc call, so nil costs nothing on the hot path.
	Obs *obs.Observer
}

func (o Options) passes() int  { return defaults.Int(o.RefinePasses, 4) }
func (o Options) tol() float64 { return defaults.Float(o.BalanceTol, 0.4) }

// CacheKey returns a canonical encoding of every option that can change a
// partitioning outcome, with defaults resolved (so the zero Options and an
// explicit {RefinePasses: 4, BalanceTol: 0.4} share memoized results).
// NoIncremental and Workers are excluded: both are value-neutral by
// construction.
func (o Options) CacheKey() string {
	return memo.NewKey("rhopopts").
		Int(int64(o.passes())).
		Float(o.tol()).
		Bool(o.UniformEdges).
		Bool(o.PairRefine).
		Bool(o.LegacyPartition).
		String()
}

// scratch bundles the reusable working memory one PartitionFunc call (and
// therefore one worker goroutine) owns: the list scheduler's node tables,
// the value-home buffer, and the schedule estimator's dense tables. It is
// created per call — never shared, never global — so concurrent
// PartitionFunc calls stay race-free. A FuncPartitioner owns one scratch
// for its whole lifetime instead.
type scratch struct {
	sched *sched.Scratch
	home  sched.HomeScratch
	// observability tallies, accumulated by the refinement loops and
	// flushed once per PartitionFunc call when Options.Obs is set.
	tRegions, tMoves, tEvals int64
	tKWay, tRefine           int64
	// homeInc is the refinement loops' incrementally-maintained home
	// table. It is separate from home because realRegionCost and the
	// from-scratch estimator clobber home, while a regionEval needs its
	// table to stay coherent across an entire refinement loop.
	homeInc sched.HomeScratch
	est     estScratch
	// dirtyEval switches the refinement loops' regionEval to dirty-block
	// invalidation (see regionEval): exact like the signature cache, but
	// without the per-candidate O(region ops) signature build. Only
	// FuncPartitioner sets it; one-shot PartitionFunc keeps the signature
	// path so the pre-existing engine's wall-clock profile is untouched.
	dirtyEval bool
	// curPre is the regionPre of the region currently being partitioned
	// (set by partitionRegion); the dirty-mode regionEval reads its
	// precomputed live-in and reg→block tables.
	curPre *regionPre
	// blockCost caches real-scheduler block lengths across candidates and
	// lock signatures (sweep mode only). ScheduleBlockCtx's length depends
	// only on the block, the assignments of its ops, and the homes of its
	// live-in registers, so the key covers every input exactly.
	blockCost map[string]int
	keyBuf    []byte
	// graph-build buffers, reused across partitionRegion calls.
	edges     []regionEdge
	anchors   []regionAnchor
	anchorIdx map[int]int
	deg       []int
	// targeted home-computation buffers (sweep mode): homeT is a full
	// NRegs-wide table with only the current region's live-in entries
	// valid; cnt is the per-register cluster tally.
	homeT []int
	cnt   []int64
}

// regionEdge and regionAnchor are partitionRegion's graph-build records,
// hoisted to package scope so scratch can reuse their backing arrays.
type regionEdge struct {
	u, v int
	w    int64
}

type regionAnchor struct {
	home int
}

// PartitionFunc assigns every op of f to a cluster. prof supplies block
// frequencies (nil-safe: missing blocks count as frequency 1 so cold code
// still partitions sensibly).
func PartitionFunc(f *ir.Func, prof *interp.Profile, mcfg *machine.Config, locks Locks, opts Options) ([]int, error) {
	k := mcfg.NumClusters()
	asg := make([]int, f.NOps)
	for i := range asg {
		asg[i] = -1
	}
	for id, c := range locks {
		if c < 0 || c >= k {
			return nil, fmt.Errorf("rhop: %s op %d locked to cluster %d of %d", f.Name, id, c, k)
		}
	}
	du := cfg.ComputeDefUse(f)
	ops := f.OpsByID()
	lc := sched.NewLoopCtx(f)
	regions := cfg.FormRegions(f)
	sc := &scratch{sched: sched.NewScratch()}
	// Partition the hottest regions first: inner loops choose their layout
	// freely and colder surrounding code anchors to those decisions, not
	// the other way around.
	order := make([]*cfg.Region, len(regions))
	copy(order, regions)
	sort.SliceStable(order, func(i, j int) bool {
		return regionHeat(prof, order[i]) > regionHeat(prof, order[j])
	})
	for _, region := range order {
		if err := partitionRegion(sc, newRegionPre(f, region, du, ops, mcfg), f, du, ops, lc, prof, mcfg, locks, opts, asg); err != nil {
			return nil, err
		}
	}
	for id, c := range asg {
		if c < 0 {
			return nil, fmt.Errorf("rhop: %s op %d left unassigned", f.Name, id)
		}
	}
	if opts.Obs != nil {
		opts.Obs.Counter("rhop_functions").Add(1)
		opts.Obs.Counter("rhop_regions").Add(sc.tRegions)
		opts.Obs.Counter("rhop_moves_accepted").Add(sc.tMoves)
		opts.Obs.Counter("rhop_cost_evals").Add(sc.tEvals)
		opts.Obs.Counter("rhop_kway_runs").Add(sc.tKWay)
		opts.Obs.Counter("rhop_refine_runs").Add(sc.tRefine)
	}
	return asg, nil
}

// PartitionModule partitions every function of m. locks may be nil or miss
// functions (treated as unlocked).
func PartitionModule(m *ir.Module, prof *interp.Profile, mcfg *machine.Config, locks map[*ir.Func]Locks, opts Options) (map[*ir.Func][]int, error) {
	out := make(map[*ir.Func][]int, len(m.Funcs))
	for _, f := range m.Funcs {
		var l Locks
		if locks != nil {
			l = locks[f]
		}
		asg, err := PartitionFunc(f, prof, mcfg, l, opts)
		if err != nil {
			return nil, err
		}
		out[f] = asg
	}
	return out, nil
}

// regionHeat is the hottest block frequency within a region.
func regionHeat(prof *interp.Profile, r *cfg.Region) int64 {
	var h int64
	for _, b := range r.Blocks {
		if fq := blockFreq(prof, b); fq > h {
			h = fq
		}
	}
	return h
}

// blockFreq returns the profile frequency of b, treating unexecuted blocks
// as frequency 1 so static code still partitions deterministically.
func blockFreq(prof *interp.Profile, b *ir.Block) int64 {
	if prof == nil {
		return 1
	}
	if fq := prof.Freq(b); fq > 0 {
		return fq
	}
	return 1
}

// regionPre holds the per-region inputs of partitionRegion that depend only
// on the function's structure — the op list, node index, and dependence
// slack — not on locks or the evolving assignment. One-shot PartitionFunc
// builds one per region and discards it (the same computation the code did
// inline before the split); a FuncPartitioner builds them once and reuses
// them across every lock signature of a sweep.
type regionPre struct {
	region    *cfg.Region
	regionOps []*ir.Op
	inRegion  map[int]bool
	idx       map[int]int // op ID -> node
	slack     map[edgeKey]int64
	maxSlack  int64

	// Lazy tables for the dirty-block regionEval (sweep mode only).
	evalReady bool
	liveIn    [][]ir.VReg         // per region block: read-before-def regs
	regBlocks map[ir.VReg][]int32 // reg -> region blocks with reg in liveIn
	opBlock   []int32             // by op ID: region block index, -1 outside

	// Lazy min-cut memo (sweep mode only). The dependence graph handed to
	// partition.KWay is fully determined by the region structure (fixed),
	// the locks on the region's ops, and the assignments at the external
	// def/use sites the edge builder consults — extRefs lists those sites
	// in traversal order, and kway maps the (locks, external assignments)
	// key to the resulting per-op partition. Distinct full-prefix states
	// that agree on these inputs share one KWay run.
	extReady bool
	extRefs  []int
	kway     map[string][]int

	// Lazy real-cost memo (sweep mode only). realRegionCost's result is a
	// function of the assignments of the region's ops and the home
	// clusters of the blocks' live-in registers; a home cluster in turn
	// depends only on the assignments of the register's defining ops.
	// extHomeRefs lists the out-of-region definers of those live-ins, so
	// (asg over region ops, asg over extHomeRefs) keys the result exactly.
	homeReady   bool
	extHomeRefs []int
	// homeRegs/homeDefs drive the targeted home computation on regionCost
	// misses: the sorted union of the blocks' live-in registers, and per
	// register its defining ops with HomeClustersFreq's max(1, freq) block
	// weights. Scoring a candidate only needs homes for these registers, so
	// the scorer skips the full-function home pass.
	homeRegs   []ir.VReg
	homeDefs   [][]homeDef
	regionCost map[string]int64
	// refined memoizes refineRegion outcomes (the region layout it
	// converges to) under the same key space as regionCost, plus a leading
	// byte separating the pair-refined candidate from the plain one: the
	// refinement loop's decisions read exactly the inputs regionCost's key
	// covers.
	refined map[string][]int
}

// homeDef is one defining op of a live-in register, with the frequency
// weight HomeClustersFreq would give it.
type homeDef struct {
	id int32
	w  int64
}

func newRegionPre(f *ir.Func, region *cfg.Region, du *cfg.DefUse, ops []*ir.Op, mcfg *machine.Config) *regionPre {
	pre := &regionPre{region: region, inRegion: map[int]bool{}}
	for _, b := range region.Blocks {
		for _, op := range b.Ops {
			pre.inRegion[op.ID] = true
			pre.regionOps = append(pre.regionOps, op)
		}
	}
	if len(pre.regionOps) == 0 {
		return pre
	}
	pre.idx = make(map[int]int, len(pre.regionOps))
	for i, op := range pre.regionOps {
		pre.idx[op.ID] = i
	}
	pre.slack = computeSlack(region, du, ops, mcfg)
	pre.maxSlack = 1
	for _, s := range pre.slack {
		if s > pre.maxSlack {
			pre.maxSlack = s
		}
	}
	return pre
}

// ensureEvalTables builds the dirty-block regionEval's lookup tables on
// first use: per-block live-in registers, the reverse reg→blocks index, and
// the op→block map.
func (pre *regionPre) ensureEvalTables(f *ir.Func) {
	if pre.evalReady {
		return
	}
	pre.evalReady = true
	n := len(pre.region.Blocks)
	pre.liveIn = make([][]ir.VReg, n)
	pre.regBlocks = map[ir.VReg][]int32{}
	pre.opBlock = make([]int32, f.NOps)
	for i := range pre.opBlock {
		pre.opBlock[i] = -1
	}
	for i, b := range pre.region.Blocks {
		pre.liveIn[i] = blockLiveIn(b)
		for _, r := range pre.liveIn[i] {
			pre.regBlocks[r] = append(pre.regBlocks[r], int32(i))
		}
		for _, op := range b.Ops {
			pre.opBlock[op.ID] = int32(i)
		}
	}
}

// ensureExtRefs records, in the same order the edge builder visits them,
// the IDs of ops outside the region whose assignments shape the dependence
// graph: external defs feeding region args and external consumers of region
// defs. Together with the locks on the region's own ops these are the only
// per-call inputs to the min-cut — everything else in the graph is fixed
// region structure.
func (pre *regionPre) ensureExtRefs(du *cfg.DefUse) {
	if pre.extReady {
		return
	}
	pre.extReady = true
	pre.kway = map[string][]int{}
	for _, op := range pre.regionOps {
		for argI := range op.Args {
			for _, defID := range du.DefsOf[op.ID][argI] {
				if !pre.inRegion[defID] {
					pre.extRefs = append(pre.extRefs, defID)
				}
			}
		}
		if op.Dst != ir.NoReg {
			for _, useID := range du.UsesOf[op.ID] {
				if !pre.inRegion[useID] {
					pre.extRefs = append(pre.extRefs, useID)
				}
			}
		}
	}
}

// ensureHomeRefs collects, in sorted order, the IDs of ops outside the
// region that define any live-in register of the region's blocks — the only
// out-of-region assignments the real-cost scorer's home computation can
// observe.
func (pre *regionPre) ensureHomeRefs(f *ir.Func, du *cfg.DefUse, ops []*ir.Op, prof *interp.Profile) {
	if pre.homeReady {
		return
	}
	pre.homeReady = true
	pre.ensureEvalTables(f)
	pre.regionCost = map[string]int64{}
	pre.refined = map[string][]int{}
	seen := map[int]bool{}
	seenReg := map[ir.VReg]bool{}
	for _, regs := range pre.liveIn {
		for _, r := range regs {
			if seenReg[r] {
				continue
			}
			seenReg[r] = true
			pre.homeRegs = append(pre.homeRegs, r)
			for _, id := range du.DefsOfReg[r] {
				if !pre.inRegion[id] && !seen[id] {
					seen[id] = true
					pre.extHomeRefs = append(pre.extHomeRefs, id)
				}
			}
		}
	}
	sort.Ints(pre.extHomeRefs)
	sort.Slice(pre.homeRegs, func(i, j int) bool { return pre.homeRegs[i] < pre.homeRegs[j] })
	pre.homeDefs = make([][]homeDef, len(pre.homeRegs))
	for i, r := range pre.homeRegs {
		for _, id := range du.DefsOfReg[r] {
			w := int64(1)
			if fq := blockFreq(prof, ops[id].Block); fq > 1 {
				w = fq
			}
			pre.homeDefs[i] = append(pre.homeDefs[i], homeDef{id: int32(id), w: w})
		}
	}
}

// kwayKey builds the min-cut memo key: one byte per region op for its lock
// (0 when unlocked) and one byte per external reference for its current
// assignment (0 when unassigned, so the corresponding anchor is absent).
func kwayKey(sc *scratch, pre *regionPre, locks Locks, asg []int) string {
	buf := sc.keyBuf[:0]
	for _, op := range pre.regionOps {
		b := byte(0)
		if c, ok := locks[op.ID]; ok {
			b = byte(c + 1)
		}
		buf = append(buf, b)
	}
	for _, id := range pre.extRefs {
		buf = append(buf, byte(asg[id]+1))
	}
	sc.keyBuf = buf
	return string(buf)
}

func partitionRegion(sc *scratch, pre *regionPre, f *ir.Func, du *cfg.DefUse, ops []*ir.Op,
	lc *sched.LoopCtx, prof *interp.Profile, mcfg *machine.Config, locks Locks, opts Options, asg []int) error {

	k := mcfg.NumClusters()
	region := pre.region
	regionOps := pre.regionOps
	inRegion := pre.inRegion
	if len(regionOps) == 0 {
		return nil
	}
	sc.tRegions++
	sc.curPre = pre

	// Sweep mode memoizes the min-cut by its true inputs; a hit skips the
	// graph build and the KWay run entirely.
	var part []int
	var kwKey string
	if sc.dirtyEval {
		pre.ensureExtRefs(du)
		pre.ensureHomeRefs(f, du, ops, prof)
		kwKey = kwayKey(sc, pre, locks, asg)
		part = pre.kway[kwKey]
	}
	if part == nil {
		// Graph nodes: region ops, then one anchor per live-in value with
		// a known home cluster.
		idx := pre.idx
		if sc.anchorIdx == nil {
			sc.anchorIdx = map[int]int{} // defining op ID outside region -> node
		} else {
			for k := range sc.anchorIdx {
				delete(sc.anchorIdx, k)
			}
		}
		anchorIdx := sc.anchorIdx
		anchors := sc.anchors[:0]

		slack := pre.slack
		maxSlack := pre.maxSlack

		edges := sc.edges[:0]
		addAnchor := func(key, home, node int, w int64) {
			ai, ok := anchorIdx[key]
			if !ok {
				ai = len(regionOps) + len(anchors)
				anchorIdx[key] = ai
				anchors = append(anchors, regionAnchor{home: home})
			}
			edges = append(edges, regionEdge{u: ai, v: node, w: w})
		}
		for _, op := range regionOps {
			u := idx[op.ID]
			freq := blockFreq(prof, op.Block)
			for argI := range op.Args {
				for _, defID := range du.DefsOf[op.ID][argI] {
					w := int64(1)
					if !opts.UniformEdges {
						w = maxSlack + 1 - slack[edgeKey{defID, op.ID}]
						if w < 1 {
							w = 1
						}
					}
					w *= scaleFreq(freq)
					if inRegion[defID] {
						edges = append(edges, regionEdge{u: idx[defID], v: u, w: w})
						continue
					}
					// Live-in from an already-partitioned def: anchor it.
					if home := asg[defID]; home >= 0 {
						addAnchor(defID, home, u, w)
					}
				}
			}
			// Live-out consumers already placed in other regions anchor
			// this op's definition from the use side.
			if op.Dst != ir.NoReg {
				for _, useID := range du.UsesOf[op.ID] {
					if inRegion[useID] {
						continue
					}
					if home := asg[useID]; home >= 0 {
						w := scaleFreq(blockFreq(prof, ops[useID].Block))
						addAnchor(^useID, home, u, w)
					}
				}
			}
		}

		sc.edges, sc.anchors = edges, anchors

		g := partition.NewGraph(len(regionOps)+len(anchors), 1)
		for i, op := range regionOps {
			g.W[i][0] = scaleFreq(blockFreq(prof, op.Block))
			if c, ok := locks[op.ID]; ok {
				g.Fixed[i] = c
			}
		}
		for i, a := range anchors {
			g.Fixed[len(regionOps)+i] = a.home
		}
		deg := sc.deg[:0]
		for range g.Fixed {
			deg = append(deg, 0)
		}
		for _, e := range edges {
			deg[e.u]++
			deg[e.v]++
		}
		sc.deg = deg
		g.Reserve(deg)
		for _, e := range edges {
			g.Connect(e.u, e.v, e.w)
		}

		sc.tKWay++
		p, err := partition.KWay(g, k, partition.Options{
			Tol:     []float64{opts.tol()},
			Legacy:  opts.LegacyPartition,
			Workers: opts.Workers,
			Obs:     opts.Obs,
		})
		if err != nil {
			return err
		}
		part = p
		if sc.dirtyEval {
			pre.kway[kwKey] = append([]int(nil), part[:len(regionOps)]...)
		}
	}

	// Candidate 1: the min-cut partition, refined by schedule estimates.
	apply := func(choice func(i int, op *ir.Op) int) {
		for i, op := range regionOps {
			if c, ok := locks[op.ID]; ok {
				asg[op.ID] = c
			} else {
				asg[op.ID] = choice(i, op)
			}
		}
	}
	var best map[int]int
	bestCost := int64(-1)
	consider := func() {
		if cost := realRegionCost(sc, f, region, lc, prof, mcfg, asg); bestCost < 0 || cost < bestCost {
			best = snapshotRegion(regionOps, asg)
			bestCost = cost
		}
	}
	runRefine := func(withPair bool) {
		sc.tRefine++
		refineRegion(sc, f, region, lc, prof, mcfg, locks, opts, asg)
		if withPair && opts.PairRefine {
			pairRefineRegion(sc, f, region, du, ops, lc, prof, mcfg, locks, opts, asg)
		}
	}
	// Sweep mode memoizes the refined layout a starting candidate
	// converges to: the refinement loop's move decisions depend only on
	// the region layout it starts from, the locks, and the home clusters
	// of the blocks' live-in registers (see regionPre.extHomeRefs).
	refine := func(withPair bool) {
		if !sc.dirtyEval || !pre.homeReady {
			runRefine(withPair)
			return
		}
		buf := sc.keyBuf[:0]
		if withPair {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		for _, op := range regionOps {
			buf = append(buf, byte(asg[op.ID]+1))
		}
		for _, id := range pre.extHomeRefs {
			buf = append(buf, byte(asg[id]+1))
		}
		sc.keyBuf = buf
		if lay, ok := pre.refined[string(buf)]; ok {
			for i, op := range regionOps {
				asg[op.ID] = lay[i]
			}
			return
		}
		key := string(buf)
		runRefine(withPair)
		lay := make([]int, len(regionOps))
		for i, op := range regionOps {
			lay[i] = asg[op.ID]
		}
		pre.refined[key] = lay
	}
	apply(func(i int, op *ir.Op) int { return part[i] })
	consider()
	refine(true)
	consider()

	// Candidates 2..k+1: everything (unlocked) on a single cluster, then
	// refined. This lets the partitioner collapse regions whose dependence
	// structure makes splitting a net loss at high move latencies — the
	// situation the paper's Figure 2 highlights — which purely local moves
	// cannot reach from a split starting point.
	for c := 0; c < k; c++ {
		feasible := true
		for _, op := range regionOps {
			if mcfg.Units(c, machine.KindOf(op.Opcode)) == 0 {
				feasible = false
				break
			}
		}
		if !feasible {
			continue
		}
		apply(func(int, *ir.Op) int { return c })
		consider() // the pure single-cluster layout, before refinement
		refine(false)
		consider()
	}
	for _, op := range regionOps {
		asg[op.ID] = best[op.ID]
	}
	return nil
}

// realRegionCost scores a candidate with the actual list scheduler (the
// estimate guides the inner refinement loop; the final choice between
// refined candidates uses real schedule lengths so estimate error cannot
// pick a partition the machine executes badly).
func realRegionCost(sc *scratch, f *ir.Func, region *cfg.Region, lc *sched.LoopCtx, prof *interp.Profile,
	mcfg *machine.Config, asg []int) int64 {

	// Sweep mode memoizes the whole score by its exact inputs (see
	// regionPre.extHomeRefs), and below that caches individual block
	// lengths, so candidates and lock signatures that agree on either
	// level share scheduler runs.
	pre := sc.curPre
	cached := sc.dirtyEval && pre != nil && pre.region == region && pre.homeReady
	var costKey string
	if cached {
		buf := sc.keyBuf[:0]
		for _, op := range pre.regionOps {
			buf = append(buf, byte(asg[op.ID]+1))
		}
		for _, id := range pre.extHomeRefs {
			buf = append(buf, byte(asg[id]+1))
		}
		sc.keyBuf = buf
		if v, ok := pre.regionCost[string(buf)]; ok {
			return v
		}
		costKey = string(buf)
		if sc.blockCost == nil {
			sc.blockCost = map[string]int{}
		}
	}
	var home []int
	if cached {
		// Only the blocks' live-in registers' homes are read below; fill
		// exactly those from the precomputed def lists (identical weights
		// and tie-breaks to HomeClustersFreq) and leave the rest stale.
		k := mcfg.NumClusters()
		if cap(sc.homeT) < f.NRegs {
			sc.homeT = make([]int, f.NRegs)
		}
		if cap(sc.cnt) < k {
			sc.cnt = make([]int64, k)
		}
		home = sc.homeT[:f.NRegs]
		cnt := sc.cnt[:k]
		for ui, r := range pre.homeRegs {
			for c := range cnt {
				cnt[c] = 0
			}
			for _, d := range pre.homeDefs[ui] {
				if c := asg[d.id]; c >= 0 {
					cnt[c] += d.w
				}
			}
			h := sched.EverywhereHome
			var best int64
			for c, v := range cnt {
				if v > best {
					best = v
					h = c
				}
			}
			home[r] = h
		}
	} else {
		home = sc.home.HomeClustersFreq(f, asg, mcfg.NumClusters(), func(b *ir.Block) int64 {
			return blockFreq(prof, b)
		})
	}
	var total int64
	for bi, b := range region.Blocks {
		var length int
		if cached {
			buf := append(sc.keyBuf[:0], byte(b.ID>>8), byte(b.ID))
			for _, op := range b.Ops {
				buf = append(buf, byte(asg[op.ID]+1))
			}
			for _, r := range pre.liveIn[bi] {
				buf = append(buf, byte(home[r]+2))
			}
			sc.keyBuf = buf
			if l, ok := sc.blockCost[string(buf)]; ok {
				length = l
			} else {
				res, _ := sc.sched.ScheduleBlockCtx(b, asg, home, lc, mcfg)
				length = res.Length
				sc.blockCost[string(buf)] = length
			}
		} else {
			res, _ := sc.sched.ScheduleBlockCtx(b, asg, home, lc, mcfg)
			length = res.Length
		}
		total += blockFreq(prof, b) * int64(length)
	}
	if cached {
		pre.regionCost[costKey] = total
	}
	return total
}

func snapshotRegion(regionOps []*ir.Op, asg []int) map[int]int {
	snap := make(map[int]int, len(regionOps))
	for _, op := range regionOps {
		snap[op.ID] = asg[op.ID]
	}
	return snap
}

// scaleFreq compresses profile frequencies so hot blocks dominate without
// overflowing edge weights.
func scaleFreq(freq int64) int64 {
	w := int64(1)
	for freq > 1 {
		freq >>= 1
		w++
	}
	return w
}

type edgeKey struct{ def, use int }

// computeSlack returns per dependence edge (def, use) within the region the
// scheduling slack of that edge: how much the use could be delayed without
// stretching its block's critical path. Cross-block edges get the maximum
// observed slack (they are fed through registers and rarely critical).
func computeSlack(region *cfg.Region, du *cfg.DefUse, ops []*ir.Op, mcfg *machine.Config) map[edgeKey]int64 {
	slack := map[edgeKey]int64{}
	var crossEdges []edgeKey
	var maxSlack int64
	for _, b := range region.Blocks {
		// ASAP within block.
		asap := map[int]int64{}
		var blockLen int64
		for _, op := range b.Ops {
			var start int64
			for argI := range op.Args {
				for _, defID := range du.DefsOf[op.ID][argI] {
					if ops[defID].Block == b {
						if t := asap[defID] + int64(machine.Latency(ops[defID].Opcode)); t > start {
							start = t
						}
					}
				}
			}
			asap[op.ID] = start
			if end := start + int64(machine.Latency(op.Opcode)); end > blockLen {
				blockLen = end
			}
		}
		// ALAP within block (walk ops backwards).
		alap := map[int]int64{}
		for i := len(b.Ops) - 1; i >= 0; i-- {
			op := b.Ops[i]
			latest := blockLen - int64(machine.Latency(op.Opcode))
			for _, useID := range du.UsesOf[op.ID] {
				if ops[useID].Block == b {
					if t := alap[useID] - int64(machine.Latency(op.Opcode)); t < latest {
						latest = t
					}
				}
			}
			alap[op.ID] = latest
		}
		for _, op := range b.Ops {
			for argI := range op.Args {
				for _, defID := range du.DefsOf[op.ID][argI] {
					key := edgeKey{defID, op.ID}
					if ops[defID].Block == b {
						s := alap[op.ID] - (asap[defID] + int64(machine.Latency(ops[defID].Opcode)))
						if s < 0 {
							s = 0
						}
						slack[key] = s
						if s > maxSlack {
							maxSlack = s
						}
					} else {
						crossEdges = append(crossEdges, key)
					}
				}
			}
		}
	}
	for _, key := range crossEdges {
		slack[key] = maxSlack
	}
	return slack
}

// regionEval evaluates candidate assignments during one refinement loop.
// In incremental mode (the default) it caches per-block schedule-length
// estimates keyed by a signature of exactly the inputs blockLen reads —
// the cluster assignment of the block's own ops and the home cluster of
// its read-before-def live-in registers — so a tentative move only
// re-estimates the blocks it actually touches, and it maintains the
// value-home table with O(numClusters) MoveDef deltas instead of a full
// O(ops) recomputation per candidate. The cache is exact: a signature
// covers every input of the estimate, and MoveDef reproduces the dominant-
// cluster rule bit for bit, so incremental and from-scratch evaluation
// return identical costs (pinned by TestIncrementalRefinementEquivalence).
//
// In full mode (Options.NoIncremental) move is a plain assignment write
// and cost recomputes the whole region estimate, reproducing the
// pre-cache behavior verbatim.
//
// In dirty mode (scratch.dirtyEval, sweep-only) the signature build is
// replaced by explicit invalidation: move marks the moved op's own block
// dirty, and — when the move changes a value's home cluster — every block
// that reads the value live-in (via regionPre's reg→blocks index). A dirty
// block is re-estimated on the next cost call; clean blocks keep their
// cached length. The dirtied set is a superset of the blocks whose
// signature would have changed, so dirty and signature mode return
// identical costs; dirty mode just skips building the signature for the
// (many) clean blocks of every candidate evaluation.
type regionEval struct {
	full   bool
	sc     *scratch
	f      *ir.Func
	region *cfg.Region
	lc     *sched.LoopCtx
	prof   *interp.Profile
	mcfg   *machine.Config
	asg    []int
	k      int

	home   []int       // sc.homeInc's table, updated in place by MoveDef
	blocks []*ir.Block // region blocks
	freqs  []int64     // profile weight per block
	liveIn [][]ir.VReg // per block: registers read before any local def
	sig    [][]int32   // per block: signature of the cached estimate
	valid  []bool      // per block: sig/val populated
	val    []int64     // per block: cached blockLen
	buf    []int32     // signature build buffer

	// dirty-mode state: dirtyList holds the indices set in dirty, and
	// total carries the region cost forward so cost() only touches the
	// blocks invalidated since the last call instead of rescanning all of
	// them.
	dirtyMode bool
	dirty     []bool
	dirtyList []int32
	total     int64
	pre       *regionPre
}

func newRegionEval(sc *scratch, f *ir.Func, region *cfg.Region, lc *sched.LoopCtx,
	prof *interp.Profile, mcfg *machine.Config, opts Options, asg []int) *regionEval {

	re := &regionEval{
		full: opts.NoIncremental,
		sc:   sc, f: f, region: region, lc: lc, prof: prof, mcfg: mcfg,
		asg: asg, k: mcfg.NumClusters(),
	}
	if re.full {
		return re
	}
	re.home = sc.homeInc.HomeClustersFreq(f, asg, re.k, func(b *ir.Block) int64 {
		return blockFreq(prof, b)
	})
	n := len(region.Blocks)
	re.blocks = region.Blocks
	re.freqs = make([]int64, n)
	re.val = make([]int64, n)
	if sc.dirtyEval && sc.curPre != nil && sc.curPre.region == region {
		re.dirtyMode = true
		re.pre = sc.curPre
		re.pre.ensureEvalTables(f)
		re.liveIn = re.pre.liveIn
		re.dirty = make([]bool, n)
		re.dirtyList = make([]int32, n)
		for i, b := range region.Blocks {
			re.freqs[i] = blockFreq(prof, b)
			re.dirty[i] = true
			re.dirtyList[i] = int32(i)
		}
		return re
	}
	re.liveIn = make([][]ir.VReg, n)
	re.sig = make([][]int32, n)
	re.valid = make([]bool, n)
	for i, b := range region.Blocks {
		re.freqs[i] = blockFreq(prof, b)
		re.liveIn[i] = blockLiveIn(b)
	}
	return re
}

// blockLiveIn returns the registers b reads before (re)defining them
// locally — exactly the registers whose home cluster blockLen consults —
// in deterministic first-read order.
func blockLiveIn(b *ir.Block) []ir.VReg {
	defined := map[ir.VReg]bool{}
	seen := map[ir.VReg]bool{}
	var out []ir.VReg
	for _, op := range b.Ops {
		for _, a := range op.Args {
			if a.IsReg() && !defined[a.Reg] && !seen[a.Reg] {
				seen[a.Reg] = true
				out = append(out, a.Reg)
			}
		}
		if op.Dst != ir.NoReg {
			defined[op.Dst] = true
		}
	}
	return out
}

// move reassigns op to cluster `to`, keeping the home table coherent.
func (re *regionEval) move(op *ir.Op, to int) {
	from := re.asg[op.ID]
	if from == to {
		return
	}
	re.asg[op.ID] = to
	if re.full {
		return
	}
	if re.dirtyMode {
		if bi := re.pre.opBlock[op.ID]; bi >= 0 {
			re.markDirty(bi)
		}
		if op.Dst != ir.NoReg {
			old := re.home[op.Dst]
			re.sc.homeInc.MoveDef(op.Dst, re.k, from, to, blockFreq(re.prof, op.Block))
			if re.home[op.Dst] != old {
				for _, bi := range re.pre.regBlocks[op.Dst] {
					re.markDirty(bi)
				}
			}
		}
		return
	}
	if op.Dst != ir.NoReg {
		re.sc.homeInc.MoveDef(op.Dst, re.k, from, to, blockFreq(re.prof, op.Block))
	}
}

// cost returns the region's estimated profile-weighted cycle count under
// the current assignment.
func (re *regionEval) cost() int64 {
	if re.full {
		return estimateRegionCostScratch(re.sc, re.f, re.region, re.lc, re.prof, re.mcfg, re.asg)
	}
	if re.dirtyMode {
		for _, i := range re.dirtyList {
			v := re.sc.est.blockLen(re.blocks[i], re.asg, re.home, re.lc, re.mcfg)
			re.total += re.freqs[i] * (v - re.val[i])
			re.val[i] = v
			re.dirty[i] = false
		}
		re.dirtyList = re.dirtyList[:0]
		return re.total
	}
	var total int64
	for i, b := range re.blocks {
		sig := re.buf[:0]
		for _, op := range b.Ops {
			sig = append(sig, int32(re.asg[op.ID]))
		}
		for _, r := range re.liveIn[i] {
			sig = append(sig, int32(re.home[r]))
		}
		re.buf = sig
		if !re.valid[i] || !sigEqual(re.sig[i], sig) {
			re.val[i] = re.sc.est.blockLen(b, re.asg, re.home, re.lc, re.mcfg)
			re.sig[i] = append(re.sig[i][:0], sig...)
			re.valid[i] = true
		}
		total += re.freqs[i] * re.val[i]
	}
	return total
}

func (re *regionEval) markDirty(bi int32) {
	if !re.dirty[bi] {
		re.dirty[bi] = true
		re.dirtyList = append(re.dirtyList, bi)
	}
}

func sigEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// refineRegion performs estimate-driven local moves: each pass visits the
// region's unlocked ops in deterministic order and migrates an op to the
// cluster minimizing the region's estimated cost, keeping strict
// improvements only. Candidate evaluation goes through a regionEval so
// only the blocks a tentative move touches are re-estimated.
func refineRegion(sc *scratch, f *ir.Func, region *cfg.Region, lc *sched.LoopCtx, prof *interp.Profile,
	mcfg *machine.Config, locks Locks, opts Options, asg []int) {

	k := mcfg.NumClusters()
	var regionOps []*ir.Op
	for _, b := range region.Blocks {
		for _, op := range b.Ops {
			if _, locked := locks[op.ID]; !locked {
				regionOps = append(regionOps, op)
			}
		}
	}
	sort.Slice(regionOps, func(i, j int) bool { return regionOps[i].ID < regionOps[j].ID })

	re := newRegionEval(sc, f, region, lc, prof, mcfg, opts, asg)
	cur := re.cost()
	for pass := 0; pass < opts.passes(); pass++ {
		improved := false
		for _, op := range regionOps {
			orig := asg[op.ID]
			bestC, bestCost := orig, cur
			for c := 0; c < k; c++ {
				if c == orig {
					continue
				}
				if mcfg.Units(c, machine.KindOf(op.Opcode)) == 0 {
					continue
				}
				re.move(op, c)
				sc.tEvals++
				if nc := re.cost(); nc < bestCost {
					bestC, bestCost = c, nc
				}
			}
			re.move(op, bestC)
			if bestC != orig {
				cur = bestCost
				improved = true
				sc.tMoves++
			}
		}
		if !improved {
			break
		}
	}
}

// pairRefineRegion moves pairs of ops joined by their heaviest dependence
// edge between clusters together, accepting strict estimate improvements.
// This emulates a coarser level of RHOP's uncoarsening hierarchy.
func pairRefineRegion(sc *scratch, f *ir.Func, region *cfg.Region, du *cfg.DefUse, ops []*ir.Op,
	lc *sched.LoopCtx, prof *interp.Profile, mcfg *machine.Config, locks Locks, opts Options, asg []int) {

	k := mcfg.NumClusters()
	inRegion := map[int]bool{}
	for _, b := range region.Blocks {
		for _, op := range b.Ops {
			inRegion[op.ID] = true
		}
	}
	// Heaviest-neighbor matching over unlocked region ops.
	type pair struct{ a, b *ir.Op }
	var pairs []pair
	matched := map[int]bool{}
	for _, b := range region.Blocks {
		for _, op := range b.Ops {
			if matched[op.ID] {
				continue
			}
			if _, locked := locks[op.ID]; locked {
				continue
			}
			for argI := range op.Args {
				for _, defID := range du.DefsOf[op.ID][argI] {
					if !inRegion[defID] || matched[defID] {
						continue
					}
					if _, locked := locks[defID]; locked {
						continue
					}
					pairs = append(pairs, pair{ops[defID], op})
					matched[defID], matched[op.ID] = true, true
					break
				}
				if matched[op.ID] {
					break
				}
			}
		}
	}
	re := newRegionEval(sc, f, region, lc, prof, mcfg, opts, asg)
	cur := re.cost()
	for pass := 0; pass < 2; pass++ {
		improved := false
		for _, pr := range pairs {
			origA, origB := asg[pr.a.ID], asg[pr.b.ID]
			bestA, bestB, bestCost := origA, origB, cur
			for c := 0; c < k; c++ {
				if c == origA && c == origB {
					continue
				}
				re.move(pr.a, c)
				re.move(pr.b, c)
				sc.tEvals++
				if nc := re.cost(); nc < bestCost {
					bestA, bestB, bestCost = c, c, nc
				}
			}
			re.move(pr.a, bestA)
			re.move(pr.b, bestB)
			if bestA != origA || bestB != origB {
				cur = bestCost
				improved = true
				sc.tMoves++
			}
		}
		if !improved {
			break
		}
	}
}

// EstimateRegionCost estimates the profile-weighted cycle contribution of a
// region under assignment asg without running the full list scheduler: per
// block, the maximum of the per-cluster resource bound, the intercluster
// bus bound, and the dependence-critical path including move latencies.
func EstimateRegionCost(f *ir.Func, region *cfg.Region, prof *interp.Profile,
	mcfg *machine.Config, asg []int) int64 {
	return estimateRegionCostScratch(&scratch{}, f, region, sched.NewLoopCtx(f), prof, mcfg, asg)
}

func estimateRegionCostScratch(sc *scratch, f *ir.Func, region *cfg.Region, lc *sched.LoopCtx,
	prof *interp.Profile, mcfg *machine.Config, asg []int) int64 {

	home := sc.home.HomeClustersFreq(f, asg, mcfg.NumClusters(), func(b *ir.Block) int64 {
		return blockFreq(prof, b)
	})
	var total int64
	for _, b := range region.Blocks {
		total += blockFreq(prof, b) * sc.est.blockLen(b, asg, home, lc, mcfg)
	}
	return total
}

// estScratch is the schedule estimator's reusable working memory: dense
// tables indexed by op ID, register, and (source entity, cluster) move key,
// generation-stamped so a new call starts fresh in O(1). The estimator runs
// once per candidate move of the refinement loops — the single hottest path
// of the whole pipeline — so it allocates nothing after warm-up.
type estScratch struct {
	gen   int64
	ready []int64 // by op ID: completion time estimate (valid when the
	// register's defGen stamp is current — a def is always estimated
	// before any of its uses)
	lastDef []int // by register: op ID of latest def
	defGen  []int64
	counts  []int   // [cluster][kind] flattened; zeroed per call
	moveSrc []int   // by move key: source cluster
	moveGen []int64 // by move key
	touched []int   // move keys recorded this call, in first-touch order

	// minLat is mcfg.MinMoveLat() memoized per config pointer: the drain
	// bound below charges the cheapest possible hop for the last move in
	// flight, which on non-uniform topologies is the admissible choice
	// (and equals MoveLatency exactly on bus/ring/mesh/uniform matrices).
	minLatCfg *machine.Config
	minLat    int
}

// prepare sizes the tables for f on a k-cluster machine and starts a new
// generation.
func (es *estScratch) prepare(f *ir.Func, k int) {
	if len(es.ready) < f.NOps {
		es.ready = make([]int64, f.NOps)
	}
	if len(es.lastDef) < f.NRegs {
		es.lastDef = make([]int, f.NRegs)
		es.defGen = make([]int64, f.NRegs)
	}
	if n := k * int(machine.NumFUKinds); len(es.counts) < n {
		es.counts = make([]int, n)
	} else {
		clear(es.counts[:n])
	}
	// Move keys: (def op ID, cluster) or (NOps + reg, cluster).
	if n := (f.NOps + f.NRegs) * k; len(es.moveSrc) < n {
		es.moveSrc = make([]int, n)
		es.moveGen = make([]int64, n)
	}
	es.touched = es.touched[:0]
	es.gen++
}

// EstimateBlockLen is the schedule-length estimate for one block. It tracks
// the list scheduler's three limiting factors but ignores second-order
// interactions, which keeps refinement fast.
func EstimateBlockLen(b *ir.Block, asg []int, home []int, lc *sched.LoopCtx, mcfg *machine.Config) int64 {
	var es estScratch
	return es.blockLen(b, asg, home, lc, mcfg)
}

func (es *estScratch) blockLen(b *ir.Block, asg []int, home []int, lc *sched.LoopCtx, mcfg *machine.Config) int64 {
	k := mcfg.NumClusters()
	f := b.Func
	es.prepare(f, k)
	if es.minLatCfg != mcfg {
		es.minLatCfg = mcfg
		es.minLat = mcfg.MinMoveLat()
	}
	addMove := func(entity, to, src int) {
		key := entity*k + to
		if es.moveGen[key] != es.gen {
			es.moveGen[key] = es.gen
			es.touched = append(es.touched, key)
		}
		es.moveSrc[key] = src
	}
	var length int64 = 1
	for _, op := range b.Ops {
		c := asg[op.ID]
		es.counts[c*int(machine.NumFUKinds)+int(machine.KindOf(op.Opcode))]++
		var start int64
		for _, a := range op.Args {
			if !a.IsReg() {
				continue
			}
			if d := int(a.Reg); es.defGen[d] == es.gen {
				def := es.lastDef[d]
				t := es.ready[def]
				if asg[def] != c {
					addMove(def, c, asg[def])
					t += int64(mcfg.MoveLat(asg[def], c))
				}
				if t > start {
					start = t
				}
			} else if int(a.Reg) < len(home) {
				if hc := home[a.Reg]; hc != sched.EverywhereHome && hc != c &&
					!(lc != nil && lc.FreeLiveIn(b, a.Reg)) {
					addMove(f.NOps+int(a.Reg), c, hc)
					if t := int64(mcfg.MoveLat(hc, c)); t > start {
						start = t
					}
				}
			}
		}
		done := start + int64(machine.Latency(op.Opcode))
		es.ready[op.ID] = done
		if done > length {
			length = done
		}
		if op.Dst != ir.NoReg {
			es.defGen[op.Dst] = es.gen
			es.lastDef[op.Dst] = op.ID
		}
	}
	// Moves occupy an integer-unit issue slot on their sending cluster.
	for _, key := range es.touched {
		es.counts[es.moveSrc[key]*int(machine.NumFUKinds)+int(machine.FUInt)]++
	}
	for c := 0; c < k; c++ {
		for kind := machine.FUKind(0); kind < machine.NumFUKinds; kind++ {
			cnt := es.counts[c*int(machine.NumFUKinds)+int(kind)]
			if cnt == 0 {
				continue
			}
			units := mcfg.Units(c, kind)
			if units == 0 {
				units = 1
			}
			if rb := int64((cnt + units - 1) / units); rb > length {
				length = rb
			}
		}
	}
	if n := len(es.touched); n > 0 {
		if bb := int64((n+mcfg.MoveBandwidth-1)/mcfg.MoveBandwidth) + int64(es.minLat); bb > length {
			length = bb
		}
	}
	return length
}
