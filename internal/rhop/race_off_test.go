//go:build !race

package rhop

const raceEnabled = false
