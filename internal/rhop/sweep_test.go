package rhop

import (
	"reflect"
	"testing"

	"mcpart/internal/machine"
)

// TestFuncPartitionerMatchesPartitionFunc pins the sweep partitioner's
// exactness contract: for every lock signature a data-mapping sweep can
// produce, Partition must return exactly what one-shot PartitionFunc
// returns — the region-result cache and the dirty-block evaluator change
// speed, never outcomes. Lock signatures are swept exhaustively over the
// functions' memory ops mapped by a 2-cluster object mask, interleaved so
// cache hits and misses both occur.
func TestFuncPartitionerMatchesPartitionFunc(t *testing.T) {
	for _, src := range []string{wideSrc, multiFuncSrc} {
		mod, prof := compileAndProfile(t, src)
		for _, mcfg := range []*machine.Config{
			machine.Paper2Cluster(5), machine.FourCluster(5),
		} {
			for _, opts := range []Options{
				{},
				{PairRefine: true},
			} {
				for _, f := range mod.Funcs {
					objs := TouchedObjects(f)
					if len(objs) > 6 {
						t.Fatalf("%s touches %d objects; test sweep too large", f.Name, len(objs))
					}
					// Home cluster per touched object, driven by the mask.
					lockSets := make([]Locks, 0, 1<<len(objs))
					for m := 0; m < 1<<len(objs); m++ {
						home := map[int]int{}
						for i, o := range objs {
							home[o] = m >> i & 1
						}
						locks := Locks{}
						for _, b := range f.Blocks {
							for _, op := range b.Ops {
								if op.Opcode.IsMem() && len(op.MayAccess) > 0 {
									locks[op.ID] = home[op.MayAccess[0]]
								}
							}
						}
						lockSets = append(lockSets, locks)
					}
					fp := NewFuncPartitioner(f, prof, mcfg, opts)
					// Two passes: the second is served largely from cache
					// and must still match.
					for pass := 0; pass < 2; pass++ {
						for m, locks := range lockSets {
							got, err := fp.Partition(locks)
							if err != nil {
								t.Fatal(err)
							}
							want, err := PartitionFunc(f, prof, mcfg, locks, opts)
							if err != nil {
								t.Fatal(err)
							}
							if !reflect.DeepEqual(got, want) {
								t.Fatalf("%s %s mask %b pass %d: sweep partition differs:\nsweep   %v\noneshot %v",
									mcfg.Name, f.Name, m, pass, got, want)
							}
						}
					}
					if fp.Hits() == 0 && len(lockSets) > 1 {
						t.Errorf("%s %s: expected region-cache hits on repeat pass", mcfg.Name, f.Name)
					}
				}
			}
		}
	}
}
