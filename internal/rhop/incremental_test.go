package rhop

import (
	"reflect"
	"testing"

	"mcpart/internal/machine"
)

// multiFuncSrc exercises multiple functions, call boundaries and a mix of
// hot and cold regions so the refinement loops take nontrivial move
// sequences.
const multiFuncSrc = `
global int a[64];
global int b[64];
global int c[64];
func scale(int x) int {
    return x * 3 + 1;
}
func main() int {
    int i;
    int s = 0;
    int u = 0;
    for (i = 0; i < 64; i = i + 1) {
        a[i] = i * 2;
        b[i] = i + 7;
        c[i] = scale(i);
    }
    for (i = 0; i < 64; i = i + 1) {
        s = s + a[i] * b[i];
        u = u + c[i] * 5;
    }
    if (s > u) {
        s = s - u;
    }
    return s + u;
}`

// TestIncrementalRefinementEquivalence pins the exactness contract of the
// regionEval estimate cache: the incremental path (default) and the
// from-scratch path (NoIncremental) must produce identical assignments for
// every function, machine, lock set, and refinement mode — the cache only
// changes speed, never outcomes.
func TestIncrementalRefinementEquivalence(t *testing.T) {
	for _, src := range []string{wideSrc, multiFuncSrc} {
		mod, prof := compileAndProfile(t, src)
		for _, mcfg := range []*machine.Config{
			machine.Paper2Cluster(1), machine.Paper2Cluster(5), machine.Paper2Cluster(10),
			machine.FourCluster(5), machine.Heterogeneous2(5), machine.RingFour(5),
		} {
			for _, opts := range []Options{
				{},
				{PairRefine: true},
				{UniformEdges: true},
				{RefinePasses: 2, BalanceTol: 0.2},
			} {
				full := opts
				full.NoIncremental = true
				inc, err := PartitionModule(mod, prof, mcfg, nil, opts)
				if err != nil {
					t.Fatalf("%s incremental: %v", mcfg.Name, err)
				}
				ref, err := PartitionModule(mod, prof, mcfg, nil, full)
				if err != nil {
					t.Fatalf("%s full: %v", mcfg.Name, err)
				}
				for _, f := range mod.Funcs {
					if !reflect.DeepEqual(inc[f], ref[f]) {
						t.Errorf("%s %+v: %s assignments differ:\ninc  %v\nfull %v",
							mcfg.Name, opts, f.Name, inc[f], ref[f])
					}
				}
			}
		}
	}
}

// TestIncrementalEquivalenceWithLocks repeats the equivalence check with
// memory ops locked (the GDP schemes' configuration), where refinement
// moves around fixed anchors.
func TestIncrementalEquivalenceWithLocks(t *testing.T) {
	mod, prof := compileAndProfile(t, multiFuncSrc)
	mcfg := machine.Paper2Cluster(5)
	for _, f := range mod.Funcs {
		locks := Locks{}
		n := 0
		for _, b := range f.Blocks {
			for _, op := range b.Ops {
				if op.Opcode.IsMem() {
					locks[op.ID] = n % 2
					n++
				}
			}
		}
		inc, err := PartitionFunc(f, prof, mcfg, locks, Options{PairRefine: true})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := PartitionFunc(f, prof, mcfg, locks, Options{PairRefine: true, NoIncremental: true})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(inc, ref) {
			t.Errorf("%s: locked assignments differ:\ninc  %v\nfull %v", f.Name, inc, ref)
		}
	}
}

// TestOptionsCacheKey pins that the key resolves defaults (zero and
// explicit-default Options share results) and separates every
// outcome-affecting knob, while ignoring the value-neutral NoIncremental.
func TestOptionsCacheKey(t *testing.T) {
	zero := Options{}.CacheKey()
	if explicit := (Options{RefinePasses: 4, BalanceTol: 0.4}).CacheKey(); explicit != zero {
		t.Errorf("explicit defaults key %q != zero key %q", explicit, zero)
	}
	if (Options{NoIncremental: true}).CacheKey() != zero {
		t.Error("NoIncremental must not change the cache key")
	}
	distinct := []Options{
		{},
		{RefinePasses: 2},
		{BalanceTol: 0.2},
		{UniformEdges: true},
		{PairRefine: true},
	}
	seen := map[string]int{}
	for i, o := range distinct {
		k := o.CacheKey()
		if j, dup := seen[k]; dup {
			t.Errorf("options %d and %d collide on key %q", i, j, k)
		}
		seen[k] = i
	}
}
