package rhop

import (
	"testing"

	"mcpart/internal/machine"
	"mcpart/internal/obs"
)

// TestObserverZeroAllocOverheadPartitionFunc is the partitioner half of
// the observability zero-overhead guard: a nil Options.Obs must add zero
// allocations per PartitionFunc call to the hot loop — the region/move/
// cost-eval tallies are plain scratch integers, and the single flush
// block is skipped entirely. With an observer attached the only extra
// work is four counter adds per function, which allocate nothing once
// the counters exist, so all configurations must allocate identically.
func TestObserverZeroAllocOverheadPartitionFunc(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under the race detector")
	}
	mod, prof := compileAndProfile(t, wideSrc)
	mcfg := machine.Paper2Cluster(5)
	f := mod.Func("main")

	run := func(opts Options) func() {
		return func() {
			if _, err := PartitionFunc(f, prof, mcfg, nil, opts); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Workers=1 keeps the multi-start fan-out deterministic so the
	// allocation counts are stable run to run.
	nilObs := run(Options{Workers: 1})
	nilObs() // warm the partitioner pools
	base := testing.AllocsPerRun(20, nilObs)

	o := obs.New(obs.NewRegistry(), nil, nil)
	withObs := run(Options{Workers: 1, Obs: o})
	withObs() // create the counters
	attached := testing.AllocsPerRun(20, withObs)
	if attached != base {
		t.Errorf("observer changed PartitionFunc allocs: %.1f/op vs %.1f/op baseline", attached, base)
	}

	again := testing.AllocsPerRun(20, nilObs)
	if again != base {
		t.Errorf("nil-observer allocs unstable: %.1f/op vs %.1f/op baseline", again, base)
	}
}

// TestObservedPartitionCountersMatch pins the rhop counter semantics:
// one rhop_functions increment per PartitionFunc call, and region/eval
// tallies that are positive for a function with real work.
func TestObservedPartitionCountersMatch(t *testing.T) {
	mod, prof := compileAndProfile(t, wideSrc)
	mcfg := machine.Paper2Cluster(5)
	f := mod.Func("main")
	o := obs.New(obs.NewRegistry(), nil, nil)
	const calls = 3
	for i := 0; i < calls; i++ {
		if _, err := PartitionFunc(f, prof, mcfg, nil, Options{Workers: 1, Obs: o}); err != nil {
			t.Fatal(err)
		}
	}
	snap := o.Registry().Snapshot()
	if got := snap.Value("rhop_functions"); got != calls {
		t.Errorf("rhop_functions = %d, want %d", got, calls)
	}
	if got := snap.Value("rhop_regions"); got < calls {
		t.Errorf("rhop_regions = %d, want >= %d", got, calls)
	}
	if got := snap.Value("rhop_cost_evals"); got <= 0 {
		t.Errorf("rhop_cost_evals = %d, want > 0", got)
	}
}
