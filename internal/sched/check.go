package sched

import (
	"fmt"

	"mcpart/internal/ir"
	"mcpart/internal/machine"
)

// CheckBlock re-runs the list scheduler on block b and independently
// verifies the produced schedule against every constraint the machine
// imposes:
//
//   - per-cycle, per-cluster function-unit usage within the unit counts;
//   - per-cycle intercluster bus usage within the move bandwidth;
//   - every dependence edge's latency respected (consumer issues no
//     earlier than producer start + edge latency).
//
// It returns nil for a valid schedule; the test suite runs it over every
// benchmark block under every scheme as a scheduler self-check.
func CheckBlock(b *ir.Block, asg []int, home []int, lc *LoopCtx, cfg *machine.Config) error {
	sc := NewScratch()
	sc.buildNodes(b, asg, home, lc, cfg)
	nodes := sc.nodes
	if len(nodes) == 0 {
		return nil
	}
	length := sc.listSchedule(cfg)

	// Resource and bus usage.
	type slotKey struct {
		cycle, cluster int
		kind           machine.FUKind
	}
	usage := map[slotKey]int{}
	bus := map[int]int{}
	for i, n := range nodes {
		if n.start < 0 || n.start+n.lat > length {
			return fmt.Errorf("sched: b%d node %d at cycle %d (lat %d) outside length %d",
				b.ID, i, n.start, n.lat, length)
		}
		k := slotKey{n.start, n.cluster, n.kind}
		usage[k]++
		if usage[k] > cfg.Units(n.cluster, n.kind) {
			return fmt.Errorf("sched: b%d cycle %d cluster %d oversubscribes %s units (%d > %d)",
				b.ID, n.start, n.cluster, n.kind, usage[k], cfg.Units(n.cluster, n.kind))
		}
		if n.isMove {
			bus[n.start]++
			if bus[n.start] > cfg.MoveBandwidth {
				return fmt.Errorf("sched: b%d cycle %d oversubscribes the bus (%d > %d)",
					b.ID, n.start, bus[n.start], cfg.MoveBandwidth)
			}
		}
	}

	// Dependence latencies.
	for i, n := range nodes {
		for _, p := range n.preds {
			if n.start < nodes[p.from].start+p.lat {
				return fmt.Errorf("sched: b%d node %d at %d violates dep from node %d at %d (+%d)",
					b.ID, i, n.start, p.from, nodes[p.from].start, p.lat)
			}
		}
	}
	return nil
}

// CheckFunc runs CheckBlock over every block of f under asg.
func CheckFunc(f *ir.Func, asg []int, cfg *machine.Config) error {
	home := HomeClusters(f, asg, cfg.NumClusters())
	lc := NewLoopCtx(f)
	for _, b := range f.Blocks {
		if err := CheckBlock(b, asg, home, lc, cfg); err != nil {
			return fmt.Errorf("func %s: %w", f.Name, err)
		}
	}
	return nil
}
