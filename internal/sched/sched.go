// Package sched provides the cluster-aware VLIW list scheduler that turns a
// computation partition into cycle counts. Given an assignment of every
// operation to a cluster, it materializes the intercluster move operations a
// clustered machine requires (one move per value per destination cluster,
// i.e. moves are reused by multiple consumers), applies the machine's
// function-unit and bus bandwidth limits, and list-schedules each basic
// block. Whole-program cycles are the profile-weighted sum of block
// schedule lengths, mirroring the paper's 100%-hit-rate scratchpad model.
package sched

import (
	"sort"

	"mcpart/internal/interp"
	"mcpart/internal/ir"
	"mcpart/internal/machine"
)

// EverywhereHome marks a value as available on every cluster at block entry
// (used for function parameters, whose transfer the model does not charge).
const EverywhereHome = -1

// HomeClusters computes, per virtual register of f, the cluster a value
// lives on at block boundaries: the dominant cluster among the register's
// defining operations, weighted by execution frequency when freq is
// non-nil (a hot in-loop definition outweighs a one-time initialization;
// ties go to the lower cluster index). Registers with no defs (parameters)
// are available everywhere.
func HomeClusters(f *ir.Func, asg []int, numClusters int) []int {
	return HomeClustersFreq(f, asg, numClusters, nil)
}

// HomeClustersFreq is HomeClusters with frequency-weighted defs.
func HomeClustersFreq(f *ir.Func, asg []int, numClusters int, freq func(*ir.Block) int64) []int {
	counts := make([][]int64, f.NRegs)
	for _, b := range f.Blocks {
		w := int64(1)
		if freq != nil {
			if fq := freq(b); fq > 1 {
				w = fq
			}
		}
		for _, op := range b.Ops {
			if op.Dst == ir.NoReg || asg[op.ID] < 0 {
				// Unassigned defs (regions not yet partitioned) contribute
				// no home; such values count as available everywhere.
				continue
			}
			if counts[op.Dst] == nil {
				counts[op.Dst] = make([]int64, numClusters)
			}
			counts[op.Dst][asg[op.ID]] += w
		}
	}
	home := make([]int, f.NRegs)
	for r := range home {
		home[r] = EverywhereHome
		var best int64
		for c, n := range counts[r] {
			if n > best {
				best = n
				home[r] = c
			}
		}
	}
	return home
}

// BlockResult is the outcome of scheduling one basic block.
type BlockResult struct {
	Length int // schedule length in cycles
	Moves  int // intercluster move operations inserted
}

// node is a schedulable item: a real op or a synthesized intercluster move.
type node struct {
	op      *ir.Op // nil for moves
	cluster int
	kind    machine.FUKind
	lat     int
	isMove  bool
	preds   []dep
	prio    int64
	nsuccs  int
	start   int
}

type dep struct {
	from int // node index
	lat  int
}

// ScheduleBlock schedules block b under assignment asg (op ID -> cluster
// for b's function), with home giving the block-entry cluster of live-in
// registers (EverywhereHome when free). It returns the schedule length and
// the number of moves inserted.
func ScheduleBlock(b *ir.Block, asg []int, home []int, cfg *machine.Config) BlockResult {
	res, _ := ScheduleBlockCtx(b, asg, home, nil, cfg)
	return res
}

// ScheduleBlockCtx is ScheduleBlock with loop-invariant hoisting: live-in
// values that are invariant in b's innermost loop are assumed delivered at
// loop entry (the returned HoistedMoves) instead of re-sent every
// iteration. A nil LoopCtx disables hoisting.
func ScheduleBlockCtx(b *ir.Block, asg []int, home []int, lc *LoopCtx, cfg *machine.Config) (BlockResult, []HoistedMove) {
	for _, op := range b.Ops {
		c := asg[op.ID]
		if k := machine.KindOf(op.Opcode); cfg.Units(c, k) == 0 {
			panic("sched: op assigned to cluster " +
				k.String() + " with zero units of its kind")
		}
	}
	nodes, hoisted := buildNodes(b, asg, home, lc, cfg)
	if len(nodes) == 0 {
		return BlockResult{Length: 1}, hoisted
	}
	length := listSchedule(nodes, cfg)
	moves := 0
	for _, n := range nodes {
		if n.isMove {
			moves++
		}
	}
	return BlockResult{Length: length, Moves: moves}, hoisted
}

func buildNodes(b *ir.Block, asg []int, home []int, lc *LoopCtx, cfg *machine.Config) ([]*node, []HoistedMove) {
	var hoisted []HoistedMove
	hoistSeen := map[[2]int]bool{}
	var nodes []*node
	idxOf := make(map[*ir.Op]int, len(b.Ops))
	for _, op := range b.Ops {
		idxOf[op] = len(nodes)
		nodes = append(nodes, &node{
			op:      op,
			cluster: asg[op.ID],
			kind:    machine.KindOf(op.Opcode),
			lat:     machine.Latency(op.Opcode),
		})
	}
	addDep := func(to, from, lat int) {
		nodes[to].preds = append(nodes[to].preds, dep{from: from, lat: lat})
	}

	// Value flow with move insertion. moveIdx caches one move per source
	// (local def node, or live-in register) and destination cluster.
	type moveKey struct {
		srcNode int // -1 when the source is a live-in register
		reg     ir.VReg
		to      int
	}
	moveIdx := map[moveKey]int{}
	getMove := func(k moveKey, srcCluster, srcLat int) int {
		if mi, ok := moveIdx[k]; ok {
			return mi
		}
		mi := len(nodes)
		nodes = append(nodes, &node{
			cluster: srcCluster, // moves issue on the sending cluster
			kind:    machine.FUInt,
			lat:     cfg.MoveLat(srcCluster, k.to),
			isMove:  true,
		})
		if k.srcNode >= 0 {
			addDep(mi, k.srcNode, srcLat)
		}
		moveIdx[k] = mi
		return mi
	}

	lastDef := map[ir.VReg]int{}    // reg -> node of latest local def
	lastUses := map[ir.VReg][]int{} // reg -> nodes using it since last def
	var memNodes []int              // loads/stores/mallocs/calls in order

	for _, op := range b.Ops {
		ni := idxOf[op]
		uc := nodes[ni].cluster
		for _, a := range op.Args {
			if !a.IsReg() {
				continue
			}
			if d, ok := lastDef[a.Reg]; ok {
				// Local flow dependence.
				dc := nodes[d].cluster
				if dc == uc {
					addDep(ni, d, nodes[d].lat)
				} else {
					mi := getMove(moveKey{srcNode: d, to: uc}, dc, nodes[d].lat)
					addDep(ni, mi, cfg.MoveLat(dc, uc))
				}
			} else {
				// Live-in value.
				hc := EverywhereHome
				if int(a.Reg) < len(home) {
					hc = home[a.Reg]
				}
				if hc != EverywhereHome && hc != uc {
					if lc != nil && lc.FreeLiveIn(b, a.Reg) {
						// Delivered once per loop entry, not per
						// iteration.
						key := [2]int{int(a.Reg), uc}
						if !hoistSeen[key] {
							hoistSeen[key] = true
							hoisted = append(hoisted, HoistedMove{
								Loop: lc.InnermostLoop(b), Reg: a.Reg, To: uc,
							})
						}
					} else {
						mi := getMove(moveKey{srcNode: -1, reg: a.Reg, to: uc}, hc, 0)
						addDep(ni, mi, cfg.MoveLat(hc, uc))
					}
				}
			}
			lastUses[a.Reg] = append(lastUses[a.Reg], ni)
		}
		if op.Dst != ir.NoReg {
			// Anti dependences: a redefinition must not issue before prior
			// uses; output dependence on a prior def of the same register.
			for _, u := range lastUses[op.Dst] {
				if u != ni {
					addDep(ni, u, 0)
				}
			}
			if d, ok := lastDef[op.Dst]; ok && d != ni {
				addDep(ni, d, 1)
			}
			lastDef[op.Dst] = ni
			lastUses[op.Dst] = nil
		}
		// Memory and call ordering.
		if op.Opcode.IsMem() || op.Opcode == ir.OpCall {
			for _, pj := range memNodes {
				if memConflict(nodes[pj].op, op) {
					addDep(ni, pj, 1)
				}
			}
			memNodes = append(memNodes, ni)
		}
	}
	return nodes, hoisted
}

// memConflict reports whether two memory/call operations must stay ordered:
// calls conflict with everything; load-load pairs never conflict; other
// pairs conflict when their may-access sets intersect (unknown sets are
// conservative).
func memConflict(a, b *ir.Op) bool {
	if a.Opcode == ir.OpCall || b.Opcode == ir.OpCall {
		return true
	}
	if a.Opcode == ir.OpLoad && b.Opcode == ir.OpLoad {
		return false
	}
	if a.Opcode == ir.OpMalloc && b.Opcode == ir.OpMalloc {
		return false
	}
	if len(a.MayAccess) == 0 || len(b.MayAccess) == 0 {
		return true
	}
	i, j := 0, 0
	for i < len(a.MayAccess) && j < len(b.MayAccess) {
		switch {
		case a.MayAccess[i] == b.MayAccess[j]:
			return true
		case a.MayAccess[i] < b.MayAccess[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// listSchedule performs resource-constrained list scheduling over nodes and
// returns the schedule length.
func listSchedule(nodes []*node, cfg *machine.Config) int {
	n := len(nodes)
	succs := make([][]dep, n)
	npreds := make([]int, n)
	for i, nd := range nodes {
		npreds[i] = len(nd.preds)
		for _, p := range nd.preds {
			succs[p.from] = append(succs[p.from], dep{from: i, lat: p.lat})
		}
	}
	// Priority: longest path (sum of latencies) from the node to any sink.
	order := topoOrder(nodes, succs)
	for i := n - 1; i >= 0; i-- {
		nd := nodes[order[i]]
		nd.prio = int64(nd.lat)
		for _, s := range succs[order[i]] {
			if p := int64(s.lat) + nodes[s.from].prio; p > nd.prio {
				nd.prio = p
			}
		}
	}

	earliest := make([]int, n)
	unscheduled := n
	scheduled := make([]bool, n)
	// Resource tables grow on demand: usage[t][cluster][kind], bus[t].
	var usage [][][]int
	var bus []int
	ensure := func(t int) {
		for len(usage) <= t {
			u := make([][]int, cfg.NumClusters())
			for c := range u {
				u[c] = make([]int, machine.NumFUKinds)
			}
			usage = append(usage, u)
			bus = append(bus, 0)
		}
	}

	length := 1
	for t := 0; unscheduled > 0; t++ {
		ensure(t)
		// Gather ready nodes.
		var ready []int
		for i := range nodes {
			if !scheduled[i] && npreds[i] == 0 && earliest[i] <= t {
				ready = append(ready, i)
			}
		}
		sort.Slice(ready, func(a, b int) bool {
			x, y := nodes[ready[a]], nodes[ready[b]]
			if x.prio != y.prio {
				return x.prio > y.prio
			}
			return ready[a] < ready[b]
		})
		for _, i := range ready {
			nd := nodes[i]
			if usage[t][nd.cluster][nd.kind] >= cfg.Units(nd.cluster, nd.kind) {
				continue
			}
			if nd.isMove && bus[t] >= cfg.MoveBandwidth {
				continue
			}
			usage[t][nd.cluster][nd.kind]++
			if nd.isMove {
				bus[t]++
			}
			nd.start = t
			scheduled[i] = true
			unscheduled--
			if end := t + nd.lat; end > length {
				length = end
			}
			for _, s := range succs[i] {
				npreds[s.from]--
				if e := t + s.lat; e > earliest[s.from] {
					earliest[s.from] = e
				}
			}
		}
	}
	return length
}

func topoOrder(nodes []*node, succs [][]dep) []int {
	n := len(nodes)
	indeg := make([]int, n)
	for i := range nodes {
		indeg[i] = len(nodes[i].preds)
	}
	var order []int
	var queue []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, s := range succs[u] {
			indeg[s.from]--
			if indeg[s.from] == 0 {
				queue = append(queue, s.from)
			}
		}
	}
	return order
}

// FuncResult aggregates block scheduling outcomes for a function.
type FuncResult struct {
	Blocks []BlockResult // indexed by block ID
	// Hoisted lists the distinct loop-entry intercluster copies of
	// loop-invariant live-in values (deduplicated per loop).
	Hoisted []HoistedMove
	// LC is the loop context the hoisting decisions came from.
	LC *LoopCtx
}

// ScheduleFunc schedules every block of f under assignment asg, hoisting
// loop-invariant intercluster copies to loop entries.
func ScheduleFunc(f *ir.Func, asg []int, cfg *machine.Config) FuncResult {
	return ScheduleFuncCtx(f, asg, NewLoopCtx(f), cfg)
}

// ScheduleFuncCtx is ScheduleFunc with a caller-supplied (cacheable) loop
// context.
func ScheduleFuncCtx(f *ir.Func, asg []int, lc *LoopCtx, cfg *machine.Config) FuncResult {
	return ScheduleFuncFreq(f, asg, lc, cfg, nil)
}

// ScheduleFuncFreq additionally weights block-boundary value homes by
// profile frequency, so hot in-loop definitions dominate cold ones.
func ScheduleFuncFreq(f *ir.Func, asg []int, lc *LoopCtx, cfg *machine.Config, freq func(*ir.Block) int64) FuncResult {
	home := HomeClustersFreq(f, asg, cfg.NumClusters(), freq)
	res := FuncResult{Blocks: make([]BlockResult, len(f.Blocks)), LC: lc}
	seen := map[HoistedMove]bool{}
	for _, b := range f.Blocks {
		br, hoisted := ScheduleBlockCtx(b, asg, home, lc, cfg)
		res.Blocks[b.ID] = br
		for _, h := range hoisted {
			if !seen[h] {
				seen[h] = true
				res.Hoisted = append(res.Hoisted, h)
			}
		}
	}
	SortHoisted(res.Hoisted)
	return res
}

// ProgramCycles computes the profile-weighted dynamic cycle count and move
// count of a whole module under per-function assignments. Hoisted
// loop-invariant copies cost one move (and one cycle) per loop entry.
func ProgramCycles(m *ir.Module, asg map[*ir.Func][]int, cfg *machine.Config, prof *interp.Profile) (cycles, moves int64) {
	for _, f := range m.Funcs {
		res := ScheduleFuncFreq(f, asg[f], NewLoopCtx(f), cfg, prof.Freq)
		for _, b := range f.Blocks {
			freq := prof.Freq(b)
			if freq == 0 {
				continue
			}
			cycles += freq * int64(res.Blocks[b.ID].Length)
			moves += freq * int64(res.Blocks[b.ID].Moves)
		}
		for _, h := range res.Hoisted {
			entries := res.LC.EntryFreq(h.Loop, prof.Freq)
			moves += entries
			cycles += entries
		}
	}
	return cycles, moves
}
