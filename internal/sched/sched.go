// Package sched provides the cluster-aware VLIW list scheduler that turns a
// computation partition into cycle counts. Given an assignment of every
// operation to a cluster, it materializes the intercluster move operations a
// clustered machine requires (one move per value per destination cluster,
// i.e. moves are reused by multiple consumers), applies the machine's
// function-unit and bus bandwidth limits, and list-schedules each basic
// block. Whole-program cycles are the profile-weighted sum of block
// schedule lengths, mirroring the paper's 100%-hit-rate scratchpad model.
package sched

import (
	"fmt"
	"sort"

	"mcpart/internal/interp"
	"mcpart/internal/ir"
	"mcpart/internal/machine"
	"mcpart/internal/obs"
)

// EverywhereHome marks a value as available on every cluster at block entry
// (used for function parameters, whose transfer the model does not charge).
const EverywhereHome = -1

// HomeScratch is the reusable working memory of HomeClustersFreq. The
// partition refiners recompute value homes after every candidate move, so
// the per-call allocations add up; a HomeScratch amortizes them. Not safe
// for concurrent use — each worker goroutine owns its own.
type HomeScratch struct {
	counts []int64 // reg-major [reg*numClusters + cluster] def weights
	home   []int
}

// HomeClusters computes, per virtual register of f, the cluster a value
// lives on at block boundaries: the dominant cluster among the register's
// defining operations, weighted by execution frequency when freq is
// non-nil (a hot in-loop definition outweighs a one-time initialization;
// ties go to the lower cluster index). Registers with no defs (parameters)
// are available everywhere.
func HomeClusters(f *ir.Func, asg []int, numClusters int) []int {
	return HomeClustersFreq(f, asg, numClusters, nil)
}

// HomeClustersFreq is HomeClusters with frequency-weighted defs.
func HomeClustersFreq(f *ir.Func, asg []int, numClusters int, freq func(*ir.Block) int64) []int {
	var hs HomeScratch
	return hs.HomeClustersFreq(f, asg, numClusters, freq)
}

// HomeClustersFreq computes into the scratch's buffers; the returned slice
// is owned by the scratch and valid only until the next call.
func (hs *HomeScratch) HomeClustersFreq(f *ir.Func, asg []int, numClusters int, freq func(*ir.Block) int64) []int {
	n := f.NRegs * numClusters
	if cap(hs.counts) < n {
		hs.counts = make([]int64, n)
	} else {
		hs.counts = hs.counts[:n]
		clear(hs.counts)
	}
	counts := hs.counts
	for _, b := range f.Blocks {
		w := int64(1)
		if freq != nil {
			if fq := freq(b); fq > 1 {
				w = fq
			}
		}
		for _, op := range b.Ops {
			if op.Dst == ir.NoReg || asg[op.ID] < 0 {
				// Unassigned defs (regions not yet partitioned) contribute
				// no home; such values count as available everywhere.
				continue
			}
			counts[int(op.Dst)*numClusters+asg[op.ID]] += w
		}
	}
	if cap(hs.home) < f.NRegs {
		hs.home = make([]int, f.NRegs)
	} else {
		hs.home = hs.home[:f.NRegs]
	}
	home := hs.home
	for r := range home {
		home[r] = EverywhereHome
		var best int64
		for c, cnt := range counts[r*numClusters : (r+1)*numClusters] {
			if cnt > best {
				best = cnt
				home[r] = c
			}
		}
	}
	return home
}

// Home returns the scratch's current home table (as filled by the last
// HomeClustersFreq call, possibly since adjusted by MoveDef). The slice is
// owned by the scratch.
func (hs *HomeScratch) Home() []int { return hs.home }

// MoveDef incrementally updates the def-weight tables after reassigning a
// single defining operation of register r from cluster `from` to cluster
// `to`, with weight w (the same max(1, freq) weight HomeClustersFreq used
// for that op's block), and recomputes r's home under the identical
// dominant-cluster rule. It must follow a HomeClustersFreq call on the same
// function, assignment base, and cluster count; the net effect equals a
// full recomputation with the op reassigned, at O(numClusters) cost instead
// of O(ops). Pass from or to < 0 to represent an unassigned side (which
// contributes no def weight, matching HomeClustersFreq).
func (hs *HomeScratch) MoveDef(r ir.VReg, numClusters, from, to int, w int64) {
	row := hs.counts[int(r)*numClusters : (int(r)+1)*numClusters]
	if from >= 0 {
		row[from] -= w
	}
	if to >= 0 {
		row[to] += w
	}
	home := EverywhereHome
	var best int64
	for c, cnt := range row {
		if cnt > best {
			best = cnt
			home = c
		}
	}
	hs.home[r] = home
}

// BlockResult is the outcome of scheduling one basic block.
type BlockResult struct {
	Length  int // schedule length in cycles
	Moves   int // intercluster move operations inserted
	BusBusy int // cycles in which at least one intercluster move issued
}

// node is a schedulable item: a real op or a synthesized intercluster move.
type node struct {
	op      *ir.Op // nil for moves
	cluster int
	to      int // destination cluster of a move; == cluster for ops
	kind    machine.FUKind
	lat     int
	isMove  bool
	preds   []dep
	prio    int64
	start   int
}

type dep struct {
	from int // node index
	lat  int
}

// moveKey identifies one cached intercluster move: per source (local def
// node, or live-in register) and destination cluster.
type moveKey struct {
	srcNode int // -1 when the source is a live-in register
	reg     ir.VReg
	to      int
}

// Scratch holds the list scheduler's reusable working memory. The
// evaluation pipeline schedules the same handful of blocks thousands of
// times while refining partitions, and allocating the node and resource
// tables fresh on every call dominated the profile; a Scratch amortizes
// them across calls. There is deliberately no package-level pool: a
// Scratch is not safe for concurrent use, so each worker goroutine of the
// parallel evaluation layers owns its own, keeping the hot paths
// race-free by construction.
type Scratch struct {
	nodes []node // arena; preds capacity survives reuse

	// buildNodes tables, dense by virtual register and generation-stamped
	// so resetting costs O(1) instead of O(NRegs) per block.
	gen       int64
	defGen    []int64
	lastDef   []int
	useGen    []int64
	lastUses  [][]int
	memNodes  []int
	moveIdx   map[moveKey]int
	hoistSeen map[[2]int]bool

	// listSchedule tables.
	succs    [][]dep
	npreds   []int
	earliest []int
	done     []bool
	indeg    []int
	order    []int
	ready    []int
	usage    []int // [cycle][cluster][kind] flattened
	bus      []int // moves issued per cycle

	// lastBusBusy is the bus-occupied cycle count of the most recent
	// listSchedule call, tracked incrementally at move-issue time so the
	// nil-observer path pays no extra scan.
	lastBusBusy int

	// Observer counters flushed by FuncCycles (nil when detached). Only
	// the evaluation layer's final-cycle scratch carries them; the
	// refinement searches in rhop use plain scratches, so the metrics
	// reflect reported schedules, not search traffic.
	oCycles, oMoves, oBusBusy, oHoisted *obs.Counter

	home HomeScratch
}

// SetObserver attaches o's registry to the scratch: every later
// FuncCycles call adds its profile-weighted totals to the sched_cycles,
// sched_moves, sched_bus_busy_cycles and sched_hoisted_moves counters.
// A nil observer detaches.
func (sc *Scratch) SetObserver(o *obs.Observer) {
	if o == nil {
		sc.oCycles, sc.oMoves, sc.oBusBusy, sc.oHoisted = nil, nil, nil, nil
		return
	}
	sc.oCycles = o.Counter("sched_cycles")
	sc.oMoves = o.Counter("sched_moves")
	sc.oBusBusy = o.Counter("sched_bus_busy_cycles")
	sc.oHoisted = o.Counter("sched_hoisted_moves")
}

// NewScratch returns an empty scratch; buffers grow on demand and are
// reused by subsequent calls.
func NewScratch() *Scratch {
	return &Scratch{
		moveIdx:   map[moveKey]int{},
		hoistSeen: map[[2]int]bool{},
	}
}

// newNode appends a zeroed node to the arena, preserving the pred-slice
// capacity left over from earlier blocks.
func (sc *Scratch) newNode() int {
	if len(sc.nodes) < cap(sc.nodes) {
		sc.nodes = sc.nodes[:len(sc.nodes)+1]
		nd := &sc.nodes[len(sc.nodes)-1]
		preds := nd.preds[:0]
		*nd = node{preds: preds}
	} else {
		sc.nodes = append(sc.nodes, node{})
	}
	return len(sc.nodes) - 1
}

// regTables sizes the per-register tables for f and starts a fresh
// generation.
func (sc *Scratch) regTables(f *ir.Func) {
	if len(sc.defGen) < f.NRegs {
		sc.defGen = make([]int64, f.NRegs)
		sc.lastDef = make([]int, f.NRegs)
		sc.useGen = make([]int64, f.NRegs)
		sc.lastUses = make([][]int, f.NRegs)
	}
	sc.gen++
}

// ScheduleBlock schedules block b under assignment asg (op ID -> cluster
// for b's function), with home giving the block-entry cluster of live-in
// registers (EverywhereHome when free). It returns the schedule length and
// the number of moves inserted.
func ScheduleBlock(b *ir.Block, asg []int, home []int, cfg *machine.Config) BlockResult {
	res, _ := ScheduleBlockCtx(b, asg, home, nil, cfg)
	return res
}

// ScheduleBlockCtx is ScheduleBlock with loop-invariant hoisting: live-in
// values that are invariant in b's innermost loop are assumed delivered at
// loop entry (the returned HoistedMoves) instead of re-sent every
// iteration. A nil LoopCtx disables hoisting.
func ScheduleBlockCtx(b *ir.Block, asg []int, home []int, lc *LoopCtx, cfg *machine.Config) (BlockResult, []HoistedMove) {
	return NewScratch().ScheduleBlockCtx(b, asg, home, lc, cfg)
}

// AssignError reports an operation assigned to a cluster that has no
// function unit able to execute it — such an op could never issue and the
// list scheduler would stall forever.
type AssignError struct {
	Func    string
	Block   int
	Op      *ir.Op
	Cluster int
	Kind    machine.FUKind
}

func (e *AssignError) Error() string {
	return fmt.Sprintf("sched: %s b%d: op %s assigned to cluster %d, which has no %s units",
		e.Func, e.Block, e.Op, e.Cluster, e.Kind)
}

// CheckAssignable verifies that every op of f lands on a cluster with at
// least one unit of its kind under asg, and that the assignment covers the
// function. It is the recoverable front door for externally supplied
// assignments (mcpart.FormatSchedule, the validator): callers that might
// hold an invalid assignment check here and get an error, so the
// scheduler's internal stall panic stays a pure invariant.
func CheckAssignable(f *ir.Func, asg []int, cfg *machine.Config) error {
	if len(asg) < f.NOps {
		return fmt.Errorf("sched: %s: assignment covers %d of %d ops", f.Name, len(asg), f.NOps)
	}
	for _, b := range f.Blocks {
		for _, op := range b.Ops {
			c := asg[op.ID]
			if c < 0 || c >= cfg.NumClusters() {
				return fmt.Errorf("sched: %s b%d: op %s assigned to cluster %d of %d",
					f.Name, b.ID, op, c, cfg.NumClusters())
			}
			if k := machine.KindOf(op.Opcode); cfg.Units(c, k) == 0 {
				return &AssignError{Func: f.Name, Block: b.ID, Op: op, Cluster: c, Kind: k}
			}
		}
	}
	return nil
}

// ScheduleBlockCtx is the scratch-reusing form of the package function; it
// produces bit-identical results.
func (sc *Scratch) ScheduleBlockCtx(b *ir.Block, asg []int, home []int, lc *LoopCtx, cfg *machine.Config) (BlockResult, []HoistedMove) {
	for _, op := range b.Ops {
		c := asg[op.ID]
		if k := machine.KindOf(op.Opcode); cfg.Units(c, k) == 0 {
			// Invariant: the computation partitioner only assigns ops to
			// clusters with units of their kind, and external assignments
			// are pre-validated via CheckAssignable — an unexecutable op
			// here means a partitioner bug, not bad input.
			panic(&AssignError{Func: b.Func.Name, Block: b.ID, Op: op, Cluster: c, Kind: k})
		}
	}
	hoisted := sc.buildNodes(b, asg, home, lc, cfg)
	if len(sc.nodes) == 0 {
		return BlockResult{Length: 1}, hoisted
	}
	length := sc.listSchedule(cfg)
	moves := 0
	for i := range sc.nodes {
		if sc.nodes[i].isMove {
			moves++
		}
	}
	return BlockResult{Length: length, Moves: moves, BusBusy: sc.lastBusBusy}, hoisted
}

// buildNodes fills sc.nodes with b's ops plus the intercluster moves the
// assignment requires, and returns the hoisted loop-invariant copies.
func (sc *Scratch) buildNodes(b *ir.Block, asg []int, home []int, lc *LoopCtx, cfg *machine.Config) []HoistedMove {
	sc.nodes = sc.nodes[:0]
	sc.memNodes = sc.memNodes[:0]
	if sc.moveIdx == nil {
		sc.moveIdx = map[moveKey]int{}
		sc.hoistSeen = map[[2]int]bool{}
	}
	clear(sc.moveIdx)
	clear(sc.hoistSeen)
	sc.regTables(b.Func)

	var hoisted []HoistedMove
	// Node i of the first len(b.Ops) entries is b.Ops[i]; moves follow.
	for _, op := range b.Ops {
		i := sc.newNode()
		nd := &sc.nodes[i]
		nd.op = op
		nd.cluster = asg[op.ID]
		nd.to = nd.cluster
		nd.kind = machine.KindOf(op.Opcode)
		nd.lat = machine.Latency(op.Opcode)
	}
	addDep := func(to, from, lat int) {
		sc.nodes[to].preds = append(sc.nodes[to].preds, dep{from: from, lat: lat})
	}
	// Value flow with move insertion. moveIdx caches one move per source
	// (local def node, or live-in register) and destination cluster.
	getMove := func(k moveKey, srcCluster, srcLat int) int {
		if mi, ok := sc.moveIdx[k]; ok {
			return mi
		}
		mi := sc.newNode()
		nd := &sc.nodes[mi]
		nd.cluster = srcCluster // moves issue on the sending cluster
		nd.to = k.to
		nd.kind = machine.FUInt
		nd.lat = cfg.MoveLat(srcCluster, k.to)
		nd.isMove = true
		if k.srcNode >= 0 {
			addDep(mi, k.srcNode, srcLat)
		}
		sc.moveIdx[k] = mi
		return mi
	}

	// lastDef/lastUses are generation-stamped: a stale stamp means "no
	// entry", replacing the per-block map allocations.
	defOf := func(r ir.VReg) (int, bool) {
		if sc.defGen[r] == sc.gen {
			return sc.lastDef[r], true
		}
		return 0, false
	}
	usesOf := func(r ir.VReg) []int {
		if sc.useGen[r] == sc.gen {
			return sc.lastUses[r]
		}
		return nil
	}

	for ni, op := range b.Ops {
		uc := sc.nodes[ni].cluster
		for _, a := range op.Args {
			if !a.IsReg() {
				continue
			}
			if d, ok := defOf(a.Reg); ok {
				// Local flow dependence.
				dc := sc.nodes[d].cluster
				if dc == uc {
					addDep(ni, d, sc.nodes[d].lat)
				} else {
					mi := getMove(moveKey{srcNode: d, to: uc}, dc, sc.nodes[d].lat)
					addDep(ni, mi, cfg.MoveLat(dc, uc))
				}
			} else {
				// Live-in value.
				hc := EverywhereHome
				if int(a.Reg) < len(home) {
					hc = home[a.Reg]
				}
				if hc != EverywhereHome && hc != uc {
					if lc != nil && lc.FreeLiveIn(b, a.Reg) {
						// Delivered once per loop entry, not per
						// iteration.
						key := [2]int{int(a.Reg), uc}
						if !sc.hoistSeen[key] {
							sc.hoistSeen[key] = true
							hoisted = append(hoisted, HoistedMove{
								Loop: lc.InnermostLoop(b), Reg: a.Reg, To: uc,
							})
						}
					} else {
						mi := getMove(moveKey{srcNode: -1, reg: a.Reg, to: uc}, hc, 0)
						addDep(ni, mi, cfg.MoveLat(hc, uc))
					}
				}
			}
			if sc.useGen[a.Reg] != sc.gen {
				sc.useGen[a.Reg] = sc.gen
				sc.lastUses[a.Reg] = sc.lastUses[a.Reg][:0]
			}
			sc.lastUses[a.Reg] = append(sc.lastUses[a.Reg], ni)
		}
		if op.Dst != ir.NoReg {
			// Anti dependences: a redefinition must not issue before prior
			// uses; output dependence on a prior def of the same register.
			for _, u := range usesOf(op.Dst) {
				if u != ni {
					addDep(ni, u, 0)
				}
			}
			if d, ok := defOf(op.Dst); ok && d != ni {
				addDep(ni, d, 1)
			}
			sc.defGen[op.Dst] = sc.gen
			sc.lastDef[op.Dst] = ni
			sc.useGen[op.Dst] = sc.gen
			sc.lastUses[op.Dst] = sc.lastUses[op.Dst][:0]
		}
		// Memory and call ordering.
		if op.Opcode.IsMem() || op.Opcode == ir.OpCall {
			for _, pj := range sc.memNodes {
				if memConflict(sc.nodes[pj].op, op) {
					addDep(ni, pj, 1)
				}
			}
			sc.memNodes = append(sc.memNodes, ni)
		}
	}
	return hoisted
}

// memConflict reports whether two memory/call operations must stay ordered:
// calls conflict with everything; load-load pairs never conflict; other
// pairs conflict when their may-access sets intersect (unknown sets are
// conservative).
func memConflict(a, b *ir.Op) bool {
	if a.Opcode == ir.OpCall || b.Opcode == ir.OpCall {
		return true
	}
	if a.Opcode == ir.OpLoad && b.Opcode == ir.OpLoad {
		return false
	}
	if a.Opcode == ir.OpMalloc && b.Opcode == ir.OpMalloc {
		return false
	}
	if len(a.MayAccess) == 0 || len(b.MayAccess) == 0 {
		return true
	}
	i, j := 0, 0
	for i < len(a.MayAccess) && j < len(b.MayAccess) {
		switch {
		case a.MayAccess[i] == b.MayAccess[j]:
			return true
		case a.MayAccess[i] < b.MayAccess[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// perNode re-slices an int-like per-node table to n entries.
func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// listSchedule performs resource-constrained list scheduling over sc.nodes
// and returns the schedule length.
func (sc *Scratch) listSchedule(cfg *machine.Config) int {
	n := len(sc.nodes)
	if cap(sc.succs) < n {
		sc.succs = make([][]dep, n)
	}
	sc.succs = sc.succs[:n]
	for i := range sc.succs {
		sc.succs[i] = sc.succs[i][:0]
	}
	sc.npreds = resizeInts(sc.npreds, n)
	for i := range sc.nodes {
		nd := &sc.nodes[i]
		sc.npreds[i] = len(nd.preds)
		for _, p := range nd.preds {
			sc.succs[p.from] = append(sc.succs[p.from], dep{from: i, lat: p.lat})
		}
	}
	// Priority: longest path (sum of latencies) from the node to any sink.
	order := sc.topoOrder()
	for i := n - 1; i >= 0; i-- {
		nd := &sc.nodes[order[i]]
		nd.prio = int64(nd.lat)
		for _, s := range sc.succs[order[i]] {
			if p := int64(s.lat) + sc.nodes[s.from].prio; p > nd.prio {
				nd.prio = p
			}
		}
	}

	sc.earliest = resizeInts(sc.earliest, n)
	if cap(sc.done) < n {
		sc.done = make([]bool, n)
	}
	sc.done = sc.done[:n]
	for i := range sc.done {
		sc.done[i] = false
	}
	unscheduled := n

	// Resource tables grow on demand: usage[t][cluster][kind], bus[t],
	// flattened and reused across calls (rows are zeroed when re-acquired).
	stride := cfg.NumClusters() * int(machine.NumFUKinds)
	sc.usage = sc.usage[:0]
	sc.bus = sc.bus[:0]
	cycles := 0
	ensure := func(t int) {
		for cycles <= t {
			if end := (cycles + 1) * stride; end <= cap(sc.usage) {
				sc.usage = sc.usage[:end]
				clear(sc.usage[cycles*stride : end])
			} else {
				for i := 0; i < stride; i++ {
					sc.usage = append(sc.usage, 0)
				}
			}
			if cycles < cap(sc.bus) {
				sc.bus = sc.bus[:cycles+1]
				sc.bus[cycles] = 0
			} else {
				sc.bus = append(sc.bus, 0)
			}
			cycles++
		}
	}
	slot := func(t, cluster int, kind machine.FUKind) *int {
		return &sc.usage[t*stride+cluster*int(machine.NumFUKinds)+int(kind)]
	}

	length := 1
	busBusy := 0
	for t := 0; unscheduled > 0; t++ {
		ensure(t)
		// Gather ready nodes.
		ready := sc.ready[:0]
		for i := range sc.nodes {
			if !sc.done[i] && sc.npreds[i] == 0 && sc.earliest[i] <= t {
				ready = append(ready, i)
			}
		}
		sort.Slice(ready, func(a, b int) bool {
			x, y := &sc.nodes[ready[a]], &sc.nodes[ready[b]]
			if x.prio != y.prio {
				return x.prio > y.prio
			}
			return ready[a] < ready[b]
		})
		sc.ready = ready
		for _, i := range ready {
			nd := &sc.nodes[i]
			if *slot(t, nd.cluster, nd.kind) >= cfg.Units(nd.cluster, nd.kind) {
				continue
			}
			if nd.isMove && sc.bus[t] >= cfg.MoveBandwidth {
				continue
			}
			*slot(t, nd.cluster, nd.kind)++
			if nd.isMove {
				if sc.bus[t] == 0 {
					busBusy++
				}
				sc.bus[t]++
			}
			nd.start = t
			sc.done[i] = true
			unscheduled--
			if end := t + nd.lat; end > length {
				length = end
			}
			for _, s := range sc.succs[i] {
				sc.npreds[s.from]--
				if e := t + s.lat; e > sc.earliest[s.from] {
					sc.earliest[s.from] = e
				}
			}
		}
	}
	sc.lastBusBusy = busBusy
	return length
}

// topoOrder returns sc.nodes in topological order (the order slice doubles
// as the BFS queue, so the visit order matches a FIFO worklist).
func (sc *Scratch) topoOrder() []int {
	n := len(sc.nodes)
	sc.indeg = resizeInts(sc.indeg, n)
	for i := range sc.nodes {
		sc.indeg[i] = len(sc.nodes[i].preds)
	}
	order := sc.order[:0]
	for i := 0; i < n; i++ {
		if sc.indeg[i] == 0 {
			order = append(order, i)
		}
	}
	for head := 0; head < len(order); head++ {
		u := order[head]
		for _, s := range sc.succs[u] {
			sc.indeg[s.from]--
			if sc.indeg[s.from] == 0 {
				order = append(order, s.from)
			}
		}
	}
	sc.order = order
	return order
}

// FuncResult aggregates block scheduling outcomes for a function.
type FuncResult struct {
	Blocks []BlockResult // indexed by block ID
	// Hoisted lists the distinct loop-entry intercluster copies of
	// loop-invariant live-in values (deduplicated per loop).
	Hoisted []HoistedMove
	// LC is the loop context the hoisting decisions came from.
	LC *LoopCtx
}

// ScheduleFunc schedules every block of f under assignment asg, hoisting
// loop-invariant intercluster copies to loop entries.
func ScheduleFunc(f *ir.Func, asg []int, cfg *machine.Config) FuncResult {
	return ScheduleFuncCtx(f, asg, NewLoopCtx(f), cfg)
}

// ScheduleFuncCtx is ScheduleFunc with a caller-supplied (cacheable) loop
// context.
func ScheduleFuncCtx(f *ir.Func, asg []int, lc *LoopCtx, cfg *machine.Config) FuncResult {
	return ScheduleFuncFreq(f, asg, lc, cfg, nil)
}

// ScheduleFuncFreq additionally weights block-boundary value homes by
// profile frequency, so hot in-loop definitions dominate cold ones.
func ScheduleFuncFreq(f *ir.Func, asg []int, lc *LoopCtx, cfg *machine.Config, freq func(*ir.Block) int64) FuncResult {
	return NewScratch().ScheduleFuncFreq(f, asg, lc, cfg, freq)
}

// ScheduleFuncFreq is the scratch-reusing form of the package function.
func (sc *Scratch) ScheduleFuncFreq(f *ir.Func, asg []int, lc *LoopCtx, cfg *machine.Config, freq func(*ir.Block) int64) FuncResult {
	home := sc.home.HomeClustersFreq(f, asg, cfg.NumClusters(), freq)
	res := FuncResult{Blocks: make([]BlockResult, len(f.Blocks)), LC: lc}
	seen := map[HoistedMove]bool{}
	for _, b := range f.Blocks {
		br, hoisted := sc.ScheduleBlockCtx(b, asg, home, lc, cfg)
		res.Blocks[b.ID] = br
		for _, h := range hoisted {
			if !seen[h] {
				seen[h] = true
				res.Hoisted = append(res.Hoisted, h)
			}
		}
	}
	SortHoisted(res.Hoisted)
	return res
}

// ProgramCycles computes the profile-weighted dynamic cycle count and move
// count of a whole module under per-function assignments. Hoisted
// loop-invariant copies cost one move (and one cycle) per loop entry.
func ProgramCycles(m *ir.Module, asg map[*ir.Func][]int, cfg *machine.Config, prof *interp.Profile) (cycles, moves int64) {
	sc := NewScratch()
	for _, f := range m.Funcs {
		fc, fm := sc.FuncCycles(f, asg[f], cfg, prof)
		cycles += fc
		moves += fm
	}
	return cycles, moves
}

// Cost is one function's contribution to the program-level objective: the
// profile-weighted dynamic cycle and move counts FuncCycles returns, as a
// value the mapping sweep can store per (function, lock signature) and
// delta-accumulate.
type Cost struct {
	Cycles int64
	Moves  int64
}

// FuncCost is FuncCycles packaged as a Cost value.
func (sc *Scratch) FuncCost(f *ir.Func, asg []int, cfg *machine.Config, prof *interp.Profile) Cost {
	c, m := sc.FuncCycles(f, asg, cfg, prof)
	return Cost{Cycles: c, Moves: m}
}

// FuncCycles computes one function's contribution to ProgramCycles: the
// profile-weighted dynamic cycle and move counts of f under assignment asg,
// including hoisted loop-entry copies. ProgramCycles is exactly the sum of
// FuncCycles over the module's functions, which is what lets the
// evaluation layer cache schedule costs per (function, assignment) pair
// (see internal/memo).
func (sc *Scratch) FuncCycles(f *ir.Func, asg []int, cfg *machine.Config, prof *interp.Profile) (cycles, moves int64) {
	return sc.FuncCyclesCtx(f, asg, NewLoopCtx(f), cfg, prof)
}

// FuncCyclesCtx is FuncCycles with a caller-supplied loop context. The
// context depends only on the IR, so callers evaluating many assignments of
// the same function (the mapping sweep's per-signature loop) hoist the loop
// analysis out and get identical results.
func (sc *Scratch) FuncCyclesCtx(f *ir.Func, asg []int, lc *LoopCtx, cfg *machine.Config, prof *interp.Profile) (cycles, moves int64) {
	res := sc.ScheduleFuncFreq(f, asg, lc, cfg, prof.Freq)
	var busBusy, hoistedMoves int64
	for _, b := range f.Blocks {
		freq := prof.Freq(b)
		if freq == 0 {
			continue
		}
		cycles += freq * int64(res.Blocks[b.ID].Length)
		moves += freq * int64(res.Blocks[b.ID].Moves)
		busBusy += freq * int64(res.Blocks[b.ID].BusBusy)
	}
	for _, h := range res.Hoisted {
		entries := res.LC.EntryFreq(h.Loop, prof.Freq)
		moves += entries
		cycles += entries
		hoistedMoves += entries
	}
	if sc.oCycles != nil {
		sc.oCycles.Add(cycles)
		sc.oMoves.Add(moves)
		sc.oBusBusy.Add(busBusy)
		sc.oHoisted.Add(hoistedMoves)
	}
	return cycles, moves
}

// BlockCache memoizes ScheduleBlockCtx outcomes for one function across
// assignments. A block's schedule reads only the assignments of its own ops
// and the homes of its read-before-def (live-in) registers — buildNodes
// consults nothing else — so those inputs key the result exactly. Sweeps
// evaluating many lock signatures of one function hit the cache whenever a
// signature change leaves a block's local inputs untouched, which is the
// common case: a flipped data object relocks a few memory ops and leaves
// the rest of the function byte-identical.
//
// A BlockCache is bound to one (function, loop context, machine config)
// triple and is not safe for concurrent use.
type BlockCache struct {
	liveIn [][]ir.VReg // by block ID: read-before-def registers
	m      map[string]blockCacheEnt
	buf    []byte
}

type blockCacheEnt struct {
	br      BlockResult
	hoisted []HoistedMove
}

// NewBlockCache prepares a cache for f's blocks.
func NewBlockCache(f *ir.Func) *BlockCache {
	bc := &BlockCache{
		liveIn: make([][]ir.VReg, len(f.Blocks)),
		m:      map[string]blockCacheEnt{},
	}
	for _, b := range f.Blocks {
		defined := map[ir.VReg]bool{}
		seen := map[ir.VReg]bool{}
		var in []ir.VReg
		for _, op := range b.Ops {
			for _, a := range op.Args {
				if a.IsReg() && !defined[a.Reg] && !seen[a.Reg] {
					seen[a.Reg] = true
					in = append(in, a.Reg)
				}
			}
			if op.Dst != ir.NoReg {
				defined[op.Dst] = true
			}
		}
		bc.liveIn[b.ID] = in
	}
	return bc
}

// FuncCyclesCached is FuncCyclesCtx with per-block memoization through bc.
// Results (and the observer fold) are identical to FuncCyclesCtx; only
// repeated ScheduleBlockCtx work is skipped.
func (sc *Scratch) FuncCyclesCached(f *ir.Func, asg []int, lc *LoopCtx, cfg *machine.Config,
	prof *interp.Profile, bc *BlockCache) (cycles, moves int64) {

	home := sc.home.HomeClustersFreq(f, asg, cfg.NumClusters(), prof.Freq)
	var busBusy, hoistedMoves int64
	seen := map[HoistedMove]bool{}
	var allHoisted []HoistedMove
	for _, b := range f.Blocks {
		buf := append(bc.buf[:0], byte(b.ID>>8), byte(b.ID))
		for _, op := range b.Ops {
			buf = append(buf, byte(asg[op.ID]+1))
		}
		for _, r := range bc.liveIn[b.ID] {
			buf = append(buf, byte(home[r]+2))
		}
		bc.buf = buf
		ent, ok := bc.m[string(buf)]
		if !ok {
			br, hoisted := sc.ScheduleBlockCtx(b, asg, home, lc, cfg)
			ent = blockCacheEnt{br: br, hoisted: append([]HoistedMove(nil), hoisted...)}
			bc.m[string(buf)] = ent
		}
		freq := prof.Freq(b)
		if freq > 0 {
			cycles += freq * int64(ent.br.Length)
			moves += freq * int64(ent.br.Moves)
			busBusy += freq * int64(ent.br.BusBusy)
		}
		for _, h := range ent.hoisted {
			if !seen[h] {
				seen[h] = true
				allHoisted = append(allHoisted, h)
			}
		}
	}
	SortHoisted(allHoisted)
	for _, h := range allHoisted {
		entries := lc.EntryFreq(h.Loop, prof.Freq)
		moves += entries
		cycles += entries
		hoistedMoves += entries
	}
	if sc.oCycles != nil {
		sc.oCycles.Add(cycles)
		sc.oMoves.Add(moves)
		sc.oBusBusy.Add(busBusy)
		sc.oHoisted.Add(hoistedMoves)
	}
	return cycles, moves
}
