package sched

import (
	"testing"

	"mcpart/internal/interp"
	"mcpart/internal/ir"
	"mcpart/internal/machine"
	"mcpart/internal/obs"
)

// allocFixture builds a small two-function module with a profile, the
// shared input of the observer-overhead tests.
func allocFixture(t testing.TB) (*ir.Module, *interp.Profile, map[*ir.Func][]int, *machine.Config) {
	t.Helper()
	m := ir.NewModule("t")
	bd := ir.NewBuilder(m, "helper", 1)
	prev := ir.VReg(0)
	for i := 0; i < 8; i++ {
		prev = bd.Emit(ir.OpAdd, ir.Reg(prev), ir.ConstInt(1))
	}
	bd.Ret(ir.Reg(prev))
	bd = ir.NewBuilder(m, "main", 0)
	a := bd.Emit(ir.OpAdd, ir.ConstInt(1), ir.ConstInt(2))
	b := bd.Emit(ir.OpMul, ir.Reg(a), ir.ConstInt(4))
	bd.Emit(ir.OpAdd, ir.Reg(a), ir.Reg(b))
	bd.Ret()
	in := interp.New(m, interp.Options{})
	if _, err := in.RunMain(); err != nil {
		t.Fatal(err)
	}
	asg := map[*ir.Func][]int{}
	for _, f := range m.Funcs {
		av := make([]int, f.NOps)
		for i := range av {
			av[i] = i % 2
		}
		asg[f] = av
	}
	return m, in.Profile(), asg, machine.Paper2Cluster(5)
}

// funcCyclesWork returns the scheduler hot loop of every scheme
// evaluation: FuncCycles over the module through one reusable scratch.
func funcCyclesWork(m *ir.Module, prof *interp.Profile, asg map[*ir.Func][]int, cfg *machine.Config, sc *Scratch) func() {
	return func() {
		for _, f := range m.Funcs {
			sc.FuncCycles(f, asg[f], cfg, prof)
		}
	}
}

// TestObserverZeroAllocOverheadFuncCycles is the scheduler half of the
// observability zero-overhead guard: the instrumentation must add zero
// allocations per operation to the warm FuncCycles hot loop — with no
// observer (the default), with one attached (counters are resolved once
// at SetObserver, then bumped with allocation-free atomic adds), and
// after detaching again. All three configurations must allocate exactly
// as much as the uninstrumented scheduler: the same amount as each other.
func TestObserverZeroAllocOverheadFuncCycles(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under the race detector")
	}
	m, prof, asg, cfg := allocFixture(t)

	sc := NewScratch()
	work := funcCyclesWork(m, prof, asg, cfg, sc)
	work() // warm the scratch pools
	base := testing.AllocsPerRun(100, work)

	o := obs.New(obs.NewRegistry(), nil, nil)
	sc.SetObserver(o)
	work() // resolve and warm the counters
	attached := testing.AllocsPerRun(100, work)
	if attached != base {
		t.Errorf("attached observer changed hot-loop allocs: %.1f/op vs %.1f/op baseline", attached, base)
	}

	sc.SetObserver(nil)
	detached := testing.AllocsPerRun(100, work)
	if detached != base {
		t.Errorf("detached observer changed hot-loop allocs: %.1f/op vs %.1f/op baseline", detached, base)
	}
}

// TestObservedFuncCyclesCountsMatch pins that the flushed counters agree
// with FuncCycles' own return values — the instrumentation reports the
// computation, it never re-derives it.
func TestObservedFuncCyclesCountsMatch(t *testing.T) {
	m, prof, asg, cfg := allocFixture(t)
	sc := NewScratch()
	o := obs.New(obs.NewRegistry(), nil, nil)
	sc.SetObserver(o)
	var cycles, moves int64
	for _, f := range m.Funcs {
		c, mv := sc.FuncCycles(f, asg[f], cfg, prof)
		cycles += c
		moves += mv
	}
	snap := o.Registry().Snapshot()
	if got := snap.Value("sched_cycles"); got != cycles {
		t.Errorf("sched_cycles = %d, want %d", got, cycles)
	}
	if got := snap.Value("sched_moves"); got != moves {
		t.Errorf("sched_moves = %d, want %d", got, moves)
	}
	if busy := snap.Value("sched_bus_busy_cycles"); busy < 0 || busy > cycles {
		t.Errorf("sched_bus_busy_cycles = %d out of range [0,%d]", busy, cycles)
	}
}
