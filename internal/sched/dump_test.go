package sched

import (
	"strings"
	"testing"

	"mcpart/internal/ir"
	"mcpart/internal/machine"
)

func TestMaterializeMatchesSummary(t *testing.T) {
	f := chain(5)
	cfg := machine.Paper2Cluster(5)
	asg := allOn(f, 0)
	asg[2] = 1
	asg[3] = 1
	home := HomeClusters(f, asg, 2)
	lc := NewLoopCtx(f)
	sum, _ := ScheduleBlockCtx(f.Blocks[0], asg, home, lc, cfg)
	bs := MaterializeBlock(f.Blocks[0], asg, home, lc, cfg)
	if bs.Length != sum.Length {
		t.Fatalf("materialized length %d != summary %d", bs.Length, sum.Length)
	}
	moves := 0
	for _, s := range bs.Slots {
		if s.IsMove {
			moves++
		}
	}
	if moves != sum.Moves {
		t.Fatalf("materialized moves %d != summary %d", moves, sum.Moves)
	}
	// Every real op appears exactly once.
	seen := map[*ir.Op]int{}
	for _, s := range bs.Slots {
		if s.Op != nil {
			seen[s.Op]++
		}
	}
	for _, op := range f.Blocks[0].Ops {
		if seen[op] != 1 {
			t.Errorf("op %s scheduled %d times", op, seen[op])
		}
	}
}

func TestFormatFuncRendersTable(t *testing.T) {
	f := chain(3)
	cfg := machine.Paper2Cluster(5)
	out := FormatFunc(f, allOn(f, 0), cfg)
	for _, want := range []string{"schedule of f", "block b0:", "add", "ret"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
	// Moves render as "move>".
	asg := allOn(f, 0)
	asg[1] = 1
	asg[2] = 1
	asg[3] = 1
	out = FormatFunc(f, asg, cfg)
	if !strings.Contains(out, "move>") {
		t.Errorf("dump missing move marker:\n%s", out)
	}
}

func TestCheckBlockAcceptsSchedules(t *testing.T) {
	f := chain(6)
	cfg := machine.Paper2Cluster(5)
	asg := allOn(f, 0)
	asg[2] = 1
	asg[3] = 1
	if err := CheckFunc(f, asg, cfg); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}
