package sched

import (
	"testing"

	"mcpart/internal/interp"
	"mcpart/internal/ir"
	"mcpart/internal/machine"
	"mcpart/internal/mclang"
	"mcpart/internal/pointsto"
)

// loopMod compiles a two-level loop nest with a loop-invariant base value,
// a replicable induction variable, and a loop-carried accumulator.
func loopMod(t *testing.T) (*ir.Func, *interp.Profile) {
	t.Helper()
	mod, err := mclang.Compile(`
global int data[64];
func main() int {
    int base = 17;
    int acc = 0;
    int i;
    for (i = 0; i < 64; i = i + 1) {
        acc = acc + data[i & 63] * base;
    }
    return acc;
}`, "t")
	if err != nil {
		t.Fatal(err)
	}
	pointsto.Analyze(mod)
	in := interp.New(mod, interp.Options{})
	if _, err := in.RunMain(); err != nil {
		t.Fatal(err)
	}
	return mod.Func("main"), in.Profile()
}

// regOf finds the register a named pattern defines; here we locate the
// loop body block and classify its live-in registers.
func TestLoopCtxClassification(t *testing.T) {
	f, prof := loopMod(t)
	lc := NewLoopCtx(f)
	if len(lc.Loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(lc.Loops))
	}
	// Find the hot body block.
	var body *ir.Block
	for _, b := range f.Blocks {
		if prof.Freq(b) >= 64 && len(b.Ops) > 3 {
			body = b
		}
	}
	if body == nil {
		t.Fatal("no body block")
	}
	if lc.InnermostLoop(body) != 0 {
		t.Fatalf("body not in loop 0")
	}
	// Classify registers: the base (defined before the loop, never inside)
	// must be invariant; the induction variable must be induction; the
	// accumulator must be neither.
	defsOutside := map[ir.VReg]bool{}
	for _, b := range f.Blocks {
		inLoop := lc.InnermostLoop(b) >= 0
		for _, op := range b.Ops {
			if op.Dst != ir.NoReg && !inLoop {
				defsOutside[op.Dst] = true
			}
		}
	}
	var invariant, induction, carried int
	seen := map[ir.VReg]bool{}
	for _, op := range body.Ops {
		for _, a := range op.Args {
			if !a.IsReg() || seen[a.Reg] {
				continue
			}
			seen[a.Reg] = true
			switch {
			case lc.Invariant(body, a.Reg):
				invariant++
			case lc.Induction(body, a.Reg):
				induction++
			default:
				carried++
			}
		}
	}
	if invariant == 0 {
		t.Error("no invariant live-in found (base should be)")
	}
	if induction == 0 {
		t.Error("no induction register found (i should be)")
	}
	if carried == 0 {
		t.Error("no loop-carried register found (acc should be)")
	}
}

func TestEntryFreq(t *testing.T) {
	f, prof := loopMod(t)
	lc := NewLoopCtx(f)
	// The single loop is entered exactly once.
	if got := lc.EntryFreq(0, prof.Freq); got != 1 {
		t.Errorf("EntryFreq = %d, want 1", got)
	}
}

func TestHoistedMovesChargedPerEntry(t *testing.T) {
	f, prof := loopMod(t)
	cfg := machine.Paper2Cluster(5)
	// Split the body ops across clusters so invariant live-ins would be
	// needed remotely: put everything on cluster 1 except the pre-loop code.
	asg := make([]int, f.NOps)
	lc := NewLoopCtx(f)
	for _, b := range f.Blocks {
		if lc.InnermostLoop(b) >= 0 {
			for _, op := range b.Ops {
				asg[op.ID] = 1
			}
		}
	}
	res := ScheduleFuncCtx(f, asg, lc, cfg)
	if len(res.Hoisted) == 0 {
		t.Fatal("expected hoisted loop-entry moves for invariant/induction live-ins")
	}
	// Every hoisted move names the loop and a register with a cross
	// destination.
	for _, h := range res.Hoisted {
		if h.Loop != 0 || h.To != 1 {
			t.Errorf("unexpected hoisted move %+v", h)
		}
	}
	// ProgramCycles counts them once per entry (freq of preheader = 1),
	// not once per iteration: moves must be far below iteration count.
	mod := f.Module
	cyc, moves := ProgramCycles(mod, map[*ir.Func][]int{f: asg}, cfg, prof)
	if cyc <= 0 {
		t.Fatal("no cycles")
	}
	if moves > 32 { // 64 iterations; per-iteration charging would be >= 64
		t.Errorf("hoisted moves appear charged per iteration: %d", moves)
	}
}

func TestSortHoistedDeterministic(t *testing.T) {
	hs := []HoistedMove{{1, 5, 0}, {0, 2, 1}, {0, 2, 0}, {0, 1, 1}}
	SortHoisted(hs)
	want := []HoistedMove{{0, 1, 1}, {0, 2, 0}, {0, 2, 1}, {1, 5, 0}}
	for i := range want {
		if hs[i] != want[i] {
			t.Fatalf("sorted = %v", hs)
		}
	}
}
