package sched

import (
	"math/rand"
	"testing"

	"mcpart/internal/interp"
	"mcpart/internal/ir"
	"mcpart/internal/machine"
)

// TestFuncCyclesSumsToProgramCycles pins the decomposition the memoization
// layer relies on (eval caches schedule costs per function): ProgramCycles
// must equal the sum of FuncCycles over the module's functions.
func TestFuncCyclesSumsToProgramCycles(t *testing.T) {
	m := ir.NewModule("t")
	bd := ir.NewBuilder(m, "helper", 1)
	prev := ir.VReg(0)
	for i := 0; i < 4; i++ {
		prev = bd.Emit(ir.OpAdd, ir.Reg(prev), ir.ConstInt(1))
	}
	bd.Ret(ir.Reg(prev))
	bd = ir.NewBuilder(m, "main", 0)
	bd.Emit(ir.OpAdd, ir.ConstInt(1), ir.ConstInt(2))
	bd.Emit(ir.OpMul, ir.ConstInt(3), ir.ConstInt(4))
	bd.Ret()
	in := interp.New(m, interp.Options{})
	if _, err := in.RunMain(); err != nil {
		t.Fatal(err)
	}
	prof := in.Profile()
	cfg := machine.Paper2Cluster(5)

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		asg := map[*ir.Func][]int{}
		for _, f := range m.Funcs {
			a := make([]int, f.NOps)
			for i := range a {
				a[i] = rng.Intn(2)
			}
			asg[f] = a
		}
		wantC, wantM := ProgramCycles(m, asg, cfg, prof)
		sc := NewScratch()
		var gotC, gotM int64
		for _, f := range m.Funcs {
			fc, fm := sc.FuncCycles(f, asg[f], cfg, prof)
			gotC += fc
			gotM += fm
		}
		if gotC != wantC || gotM != wantM {
			t.Fatalf("trial %d: sum of FuncCycles = (%d,%d), ProgramCycles = (%d,%d)",
				trial, gotC, gotM, wantC, wantM)
		}
	}
}

// TestMoveDefMatchesRecompute pins the exactness of the incremental home
// update: after any sequence of single-def reassignments, MoveDef's table
// must match a from-scratch HomeClustersFreq on the final assignment —
// including tie cases, where both sides must prefer the lower cluster.
func TestMoveDefMatchesRecompute(t *testing.T) {
	m := ir.NewModule("t")
	bd := ir.NewBuilder(m, "f", 0)
	r := bd.NewReg()
	s := bd.NewReg()
	bd.EmitTo(r, ir.OpMov, ir.ConstInt(1))
	bd.EmitTo(r, ir.OpMov, ir.ConstInt(2))
	bd.EmitTo(r, ir.OpMov, ir.ConstInt(3))
	bd.EmitTo(s, ir.OpAdd, ir.Reg(r), ir.ConstInt(1))
	bd.EmitTo(s, ir.OpAdd, ir.Reg(s), ir.ConstInt(2))
	bd.Ret()
	f := m.Func("f")
	const k = 3
	ops := f.OpsByID()

	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		asg := make([]int, f.NOps)
		for i := range asg {
			asg[i] = rng.Intn(k)
		}
		var inc HomeScratch
		inc.HomeClustersFreq(f, asg, k, nil)
		// Random walk of single-op reassignments, mirrored through MoveDef.
		for step := 0; step < 12; step++ {
			id := rng.Intn(f.NOps)
			op := ops[id]
			to := rng.Intn(k)
			from := asg[id]
			asg[id] = to
			if op.Dst != ir.NoReg && from != to {
				inc.MoveDef(op.Dst, k, from, to, 1)
			}
			want := HomeClustersFreq(f, asg, k, nil)
			got := inc.Home()
			for reg := range want {
				if got[reg] != want[reg] {
					t.Fatalf("trial %d step %d: home[%d] = %d, recompute = %d (asg %v)",
						trial, step, reg, got[reg], want[reg], asg)
				}
			}
		}
	}
}

// TestMoveDefUnassignedSides pins that a negative from/to contributes no
// weight, matching HomeClustersFreq's treatment of unassigned ops.
func TestMoveDefUnassignedSides(t *testing.T) {
	m := ir.NewModule("t")
	bd := ir.NewBuilder(m, "f", 0)
	r := bd.NewReg()
	bd.EmitTo(r, ir.OpMov, ir.ConstInt(1))
	bd.Ret()
	f := m.Func("f")
	asg := []int{-1, 0}
	var hs HomeScratch
	hs.HomeClustersFreq(f, asg, 2, nil)
	if hs.Home()[r] != EverywhereHome {
		t.Fatalf("unassigned def should leave home everywhere, got %d", hs.Home()[r])
	}
	// Assigning the def is a move from the unassigned side.
	asg[0] = 1
	hs.MoveDef(r, 2, -1, 1, 1)
	want := HomeClustersFreq(f, asg, 2, nil)
	if hs.Home()[r] != want[r] {
		t.Fatalf("home after assign = %d, recompute = %d", hs.Home()[r], want[r])
	}
	// And un-assigning moves back.
	asg[0] = -1
	hs.MoveDef(r, 2, 1, -1, 1)
	if hs.Home()[r] != EverywhereHome {
		t.Fatalf("home after unassign = %d, want everywhere", hs.Home()[r])
	}
}
