package sched

import (
	"fmt"
	"sort"
	"strings"

	"mcpart/internal/ir"
	"mcpart/internal/machine"
)

// Slot is one issued operation in a concrete schedule: which cycle, which
// cluster, which function unit kind, and what it is.
type Slot struct {
	Cycle   int
	Cluster int
	Kind    machine.FUKind
	Op      *ir.Op // nil for intercluster moves
	IsMove  bool
}

// BlockSchedule is a fully materialized block schedule for inspection.
type BlockSchedule struct {
	Block  *ir.Block
	Length int
	Slots  []Slot
}

// MaterializeBlock runs the list scheduler and returns the full schedule
// (ScheduleBlock returns only the summary).
func MaterializeBlock(b *ir.Block, asg []int, home []int, lc *LoopCtx, cfg *machine.Config) *BlockSchedule {
	sc := NewScratch()
	sc.buildNodes(b, asg, home, lc, cfg)
	bs := &BlockSchedule{Block: b, Length: 1}
	if len(sc.nodes) == 0 {
		return bs
	}
	bs.Length = sc.listSchedule(cfg)
	for _, n := range sc.nodes {
		bs.Slots = append(bs.Slots, Slot{
			Cycle:   n.start,
			Cluster: n.cluster,
			Kind:    n.kind,
			Op:      n.op,
			IsMove:  n.isMove,
		})
	}
	sort.SliceStable(bs.Slots, func(i, j int) bool {
		if bs.Slots[i].Cycle != bs.Slots[j].Cycle {
			return bs.Slots[i].Cycle < bs.Slots[j].Cycle
		}
		return bs.Slots[i].Cluster < bs.Slots[j].Cluster
	})
	return bs
}

// Format renders the schedule as a VLIW-style table, one row per cycle and
// one column per cluster, with each issued op in its slot.
func (bs *BlockSchedule) Format(cfg *machine.Config) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "block b%d: %d cycles, %d issues\n", bs.Block.ID, bs.Length, len(bs.Slots))
	byCycle := map[int][]Slot{}
	for _, s := range bs.Slots {
		byCycle[s.Cycle] = append(byCycle[s.Cycle], s)
	}
	for cyc := 0; cyc < bs.Length; cyc++ {
		slots := byCycle[cyc]
		if len(slots) == 0 {
			continue
		}
		fmt.Fprintf(&sb, "%4d |", cyc)
		for c := 0; c < cfg.NumClusters(); c++ {
			var cell []string
			for _, s := range slots {
				if s.Cluster != c {
					continue
				}
				if s.IsMove {
					cell = append(cell, "move>")
				} else {
					cell = append(cell, s.Op.Opcode.String())
				}
			}
			fmt.Fprintf(&sb, " %-28s |", strings.Join(cell, " "))
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// FormatFunc materializes and renders every block of a function under asg.
func FormatFunc(f *ir.Func, asg []int, cfg *machine.Config) string {
	home := HomeClusters(f, asg, cfg.NumClusters())
	lc := NewLoopCtx(f)
	var sb strings.Builder
	fmt.Fprintf(&sb, "schedule of %s on %s\n", f.Name, cfg.Name)
	for _, b := range f.Blocks {
		sb.WriteString(MaterializeBlock(b, asg, home, lc, cfg).Format(cfg))
	}
	return sb.String()
}
