package sched

import (
	"fmt"
	"strings"

	"mcpart/internal/ir"
	"mcpart/internal/machine"
)

// SlotDep is one dependence edge of a materialized schedule: the consumer
// may not issue before Slots[From].Cycle + Lat.
type SlotDep struct {
	From int // index into BlockSchedule.Slots
	Lat  int
}

// Slot is one issued operation in a concrete schedule: which cycle, which
// cluster, which function unit kind, what it is, and what it waits on.
type Slot struct {
	Cycle   int
	Cluster int
	// To is the receiving cluster of an intercluster move (== Cluster for
	// ordinary ops), so validators can re-derive the per-hop move cost
	// from the machine topology without trusting Lat.
	To     int
	Kind   machine.FUKind
	Op     *ir.Op // nil for intercluster moves
	IsMove bool
	// Lat is the operation's result latency (cycles from issue until the
	// value is available to dependents).
	Lat int
	// Preds are the dependence edges into this slot, as the scheduler
	// honored them. Exposed so external validators (internal/check) can
	// re-verify ready times from first principles.
	Preds []SlotDep
}

// BlockSchedule is a fully materialized block schedule for inspection and
// independent validation. Slots are in node order: the block's ops first
// (in program order), synthesized intercluster moves after, so SlotDep
// indices are stable and deterministic.
type BlockSchedule struct {
	Block  *ir.Block
	Length int
	Slots  []Slot
	// Hoisted are the loop-invariant live-in copies this block delegated
	// to its loop entry (empty without a LoopCtx).
	Hoisted []HoistedMove
}

// MaterializeBlock runs the list scheduler and returns the full schedule
// (ScheduleBlock returns only the summary).
func MaterializeBlock(b *ir.Block, asg []int, home []int, lc *LoopCtx, cfg *machine.Config) *BlockSchedule {
	return NewScratch().MaterializeBlock(b, asg, home, lc, cfg)
}

// MaterializeBlock is the scratch-reusing form of the package function.
func (sc *Scratch) MaterializeBlock(b *ir.Block, asg []int, home []int, lc *LoopCtx, cfg *machine.Config) *BlockSchedule {
	hoisted := sc.buildNodes(b, asg, home, lc, cfg)
	bs := &BlockSchedule{Block: b, Length: 1, Hoisted: hoisted}
	if len(sc.nodes) == 0 {
		return bs
	}
	bs.Length = sc.listSchedule(cfg)
	for _, n := range sc.nodes {
		bs.Slots = append(bs.Slots, Slot{
			Cycle:   n.start,
			Cluster: n.cluster,
			To:      n.to,
			Kind:    n.kind,
			Op:      n.op,
			IsMove:  n.isMove,
			Lat:     n.lat,
			Preds:   depSlots(n.preds),
		})
	}
	return bs
}

func depSlots(ds []dep) []SlotDep {
	out := make([]SlotDep, len(ds))
	for i, d := range ds {
		out[i] = SlotDep{From: d.from, Lat: d.lat}
	}
	return out
}

// MaterializeFunc materializes every block schedule of f under asg with
// profile-weighted value homes — exactly the schedules whose lengths
// FuncCycles sums — plus the deduplicated hoisted loop-entry moves. The
// returned schedules are indexed by block ID.
func MaterializeFunc(f *ir.Func, asg []int, lc *LoopCtx, cfg *machine.Config, freq func(*ir.Block) int64) ([]*BlockSchedule, []HoistedMove) {
	sc := NewScratch()
	home := sc.home.HomeClustersFreq(f, asg, cfg.NumClusters(), freq)
	out := make([]*BlockSchedule, len(f.Blocks))
	var hoisted []HoistedMove
	seen := map[HoistedMove]bool{}
	for _, b := range f.Blocks {
		bs := sc.MaterializeBlock(b, asg, home, lc, cfg)
		out[b.ID] = bs
		for _, h := range bs.Hoisted {
			if !seen[h] {
				seen[h] = true
				hoisted = append(hoisted, h)
			}
		}
	}
	SortHoisted(hoisted)
	return out, hoisted
}

// Format renders the schedule as a VLIW-style table, one row per cycle and
// one column per cluster, with each issued op in its slot.
func (bs *BlockSchedule) Format(cfg *machine.Config) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "block b%d: %d cycles, %d issues\n", bs.Block.ID, bs.Length, len(bs.Slots))
	byCycle := map[int][]Slot{}
	for _, s := range bs.Slots {
		byCycle[s.Cycle] = append(byCycle[s.Cycle], s)
	}
	for cyc := 0; cyc < bs.Length; cyc++ {
		slots := byCycle[cyc]
		if len(slots) == 0 {
			continue
		}
		fmt.Fprintf(&sb, "%4d |", cyc)
		for c := 0; c < cfg.NumClusters(); c++ {
			var cell []string
			for _, s := range slots {
				if s.Cluster != c {
					continue
				}
				if s.IsMove {
					cell = append(cell, "move>")
				} else {
					cell = append(cell, s.Op.Opcode.String())
				}
			}
			fmt.Fprintf(&sb, " %-28s |", strings.Join(cell, " "))
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// FormatFunc materializes and renders every block of a function under asg.
func FormatFunc(f *ir.Func, asg []int, cfg *machine.Config) string {
	home := HomeClusters(f, asg, cfg.NumClusters())
	lc := NewLoopCtx(f)
	var sb strings.Builder
	fmt.Fprintf(&sb, "schedule of %s on %s\n", f.Name, cfg.Name)
	for _, b := range f.Blocks {
		sb.WriteString(MaterializeBlock(b, asg, home, lc, cfg).Format(cfg))
	}
	return sb.String()
}
