package sched

import (
	"testing"
	"testing/quick"

	"mcpart/internal/interp"
	"mcpart/internal/ir"
	"mcpart/internal/machine"
	"mcpart/internal/pointsto"
)

// straightLine builds a function with one block of n independent integer
// adds (plus the terminator).
func straightLine(n int) *ir.Func {
	m := ir.NewModule("t")
	bd := ir.NewBuilder(m, "f", 1)
	for i := 0; i < n; i++ {
		bd.Emit(ir.OpAdd, ir.Reg(0), ir.ConstInt(int64(i)))
	}
	bd.Ret()
	return m.Func("f")
}

func allOn(f *ir.Func, cluster int) []int {
	asg := make([]int, f.NOps)
	for i := range asg {
		asg[i] = cluster
	}
	return asg
}

func TestIndependentOpsPackToWidth(t *testing.T) {
	cfg := machine.Paper2Cluster(5)
	f := straightLine(8)
	// All on cluster 0: 2 int units -> 4 cycles of adds; terminator in
	// parallel on the branch unit. Length = 4 (last add issues cycle 3).
	res := ScheduleFunc(f, allOn(f, 0), cfg)
	if got := res.Blocks[0].Length; got != 4 {
		t.Errorf("length on 1 cluster = %d, want 4", got)
	}
	// Split evenly: 4 adds per cluster -> 2 cycles.
	asg := allOn(f, 0)
	for i := 0; i < 8; i += 2 {
		asg[i] = 1
	}
	res = ScheduleFunc(f, asg, cfg)
	if got := res.Blocks[0].Length; got != 2 {
		t.Errorf("length on 2 clusters = %d, want 2", got)
	}
	if res.Blocks[0].Moves != 0 {
		t.Errorf("independent ops required %d moves", res.Blocks[0].Moves)
	}
}

// chain builds v1=a+1; v2=v1+1; ... (dependent chain of n adds).
func chain(n int) *ir.Func {
	m := ir.NewModule("t")
	bd := ir.NewBuilder(m, "f", 1)
	prev := ir.VReg(0)
	for i := 0; i < n; i++ {
		prev = bd.Emit(ir.OpAdd, ir.Reg(prev), ir.ConstInt(1))
	}
	bd.Ret(ir.Reg(prev))
	return m.Func("f")
}

func TestDependentChainSerializes(t *testing.T) {
	cfg := machine.Paper2Cluster(5)
	f := chain(6)
	res := ScheduleFunc(f, allOn(f, 0), cfg)
	// Adds issue at cycles 0..5; the ret consumes the final value at 6.
	if got := res.Blocks[0].Length; got != 7 {
		t.Errorf("chain length = %d, want 7", got)
	}
}

func TestCrossClusterEdgeInsertsMove(t *testing.T) {
	f := chain(2)
	asg := allOn(f, 0)
	// Second add (and the ret consuming it) on cluster 1: one move.
	asg[1] = 1
	asg[2] = 1
	cfg := machine.Paper2Cluster(5)
	res := ScheduleFunc(f, asg, cfg)
	if res.Blocks[0].Moves != 1 {
		t.Fatalf("moves = %d, want 1", res.Blocks[0].Moves)
	}
	// add@0(1) -> move@1(5) -> add@6(1) -> ret@7(1) = 8.
	if got := res.Blocks[0].Length; got != 8 {
		t.Errorf("length = %d, want 8", got)
	}
	// With 1-cycle moves the penalty shrinks accordingly.
	res = ScheduleFunc(f, asg, machine.Paper2Cluster(1))
	if got := res.Blocks[0].Length; got != 4 {
		t.Errorf("length at lat1 = %d, want 4", got)
	}
}

func TestMoveReuseAcrossConsumers(t *testing.T) {
	// One def on cluster 0, three consumers on cluster 1: one move only.
	m := ir.NewModule("t")
	bd := ir.NewBuilder(m, "f", 1)
	v := bd.Emit(ir.OpAdd, ir.Reg(0), ir.ConstInt(1))
	bd.Emit(ir.OpMul, ir.Reg(v), ir.ConstInt(2))
	bd.Emit(ir.OpMul, ir.Reg(v), ir.ConstInt(3))
	bd.Emit(ir.OpMul, ir.Reg(v), ir.ConstInt(4))
	bd.Ret()
	f := m.Func("f")
	asg := []int{0, 1, 1, 1, 0}
	cfg := machine.Paper2Cluster(5)
	res := ScheduleFunc(f, asg, cfg)
	if res.Blocks[0].Moves != 1 {
		t.Errorf("moves = %d, want 1 (reuse)", res.Blocks[0].Moves)
	}
}

func TestBusBandwidthLimits(t *testing.T) {
	// Two independent defs on cluster 0 each consumed on cluster 1. With
	// bandwidth 1 the two moves serialize.
	m := ir.NewModule("t")
	bd := ir.NewBuilder(m, "f", 2)
	a := bd.Emit(ir.OpAdd, ir.Reg(0), ir.ConstInt(1))
	b := bd.Emit(ir.OpAdd, ir.Reg(1), ir.ConstInt(2))
	bd.Emit(ir.OpMul, ir.Reg(a), ir.ConstInt(2))
	bd.Emit(ir.OpMul, ir.Reg(b), ir.ConstInt(2))
	bd.Ret()
	f := m.Func("f")
	asg := []int{0, 0, 1, 1, 0}
	cfg := machine.Paper2Cluster(5)
	res := ScheduleFunc(f, asg, cfg)
	// adds at 0 (both, 2 int units); moves at 1 and 2 (bus=1); results at
	// 6 and 7; muls (lat 3) issue 6,7 -> length max(6+3, 7+3)=10.
	if got := res.Blocks[0].Length; got != 10 {
		t.Errorf("length = %d, want 10", got)
	}
	wide := machine.Paper2Cluster(5)
	wide.MoveBandwidth = 2
	res = ScheduleFunc(f, asg, wide)
	if got := res.Blocks[0].Length; got != 9 {
		t.Errorf("length with bandwidth 2 = %d, want 9", got)
	}
}

func TestMemOpsSerializeWhenAliased(t *testing.T) {
	m := ir.NewModule("t")
	g := m.AddObject(&ir.Object{Name: "g", Kind: ir.ObjGlobal, Size: 32})
	bd := ir.NewBuilder(m, "f", 0)
	a := bd.Addr(g)
	bd.Store(ir.Reg(a), ir.ConstInt(1))
	v := bd.Load(ir.Reg(a))
	bd.Store(ir.Reg(a), ir.Reg(v))
	bd.Ret()
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	pointsto.Analyze(m)
	f := m.Func("f")
	cfg := machine.Paper2Cluster(1)
	res := ScheduleFunc(f, allOn(f, 0), cfg)
	// addr@0; store@1; load@2 (lat 2); store@4: length >= 5.
	if got := res.Blocks[0].Length; got < 5 {
		t.Errorf("aliased mem ops overlapped: length = %d, want >= 5", got)
	}
}

func TestIndependentLoadsOverlap(t *testing.T) {
	m := ir.NewModule("t")
	g1 := m.AddObject(&ir.Object{Name: "g1", Kind: ir.ObjGlobal, Size: 8})
	g2 := m.AddObject(&ir.Object{Name: "g2", Kind: ir.ObjGlobal, Size: 8})
	bd := ir.NewBuilder(m, "f", 0)
	a1 := bd.Addr(g1)
	a2 := bd.Addr(g2)
	bd.Load(ir.Reg(a1))
	bd.Load(ir.Reg(a2))
	bd.Ret()
	pointsto.Analyze(m)
	f := m.Func("f")
	// Loads on different clusters proceed in parallel.
	asg := []int{0, 1, 0, 1, 0}
	cfg := machine.Paper2Cluster(1)
	res := ScheduleFunc(f, asg, cfg)
	if got := res.Blocks[0].Length; got != 3 {
		t.Errorf("parallel loads length = %d, want 3", got)
	}
}

func TestLiveInMoveCharged(t *testing.T) {
	// Def in block 0 on cluster 0, use in block 1 on cluster 1.
	m := ir.NewModule("t")
	bd := ir.NewBuilder(m, "f", 1)
	v := bd.Emit(ir.OpAdd, ir.Reg(0), ir.ConstInt(1))
	next := bd.NewBlock()
	bd.Br(next)
	bd.SetBlock(next)
	bd.Emit(ir.OpMul, ir.Reg(v), ir.ConstInt(2))
	bd.Ret()
	f := m.Func("f")
	asg := make([]int, f.NOps)
	// op IDs: 0=add, 1=br, 2=mul, 3=ret
	asg[2] = 1
	cfg := machine.Paper2Cluster(5)
	res := ScheduleFunc(f, asg, cfg)
	if res.Blocks[1].Moves != 1 {
		t.Errorf("live-in moves = %d, want 1", res.Blocks[1].Moves)
	}
	// move(5) then mul(3): length 8.
	if got := res.Blocks[1].Length; got != 8 {
		t.Errorf("block 1 length = %d, want 8", got)
	}
	// Same cluster: free.
	asg[2] = 0
	res = ScheduleFunc(f, asg, cfg)
	if res.Blocks[1].Moves != 0 {
		t.Errorf("same-cluster live-in charged a move")
	}
}

func TestParamsAvailableEverywhere(t *testing.T) {
	f := straightLine(2)
	asg := allOn(f, 1) // ops use param reg 0 on cluster 1
	cfg := machine.Paper2Cluster(5)
	res := ScheduleFunc(f, asg, cfg)
	if res.Blocks[0].Moves != 0 {
		t.Errorf("parameter use charged %d moves", res.Blocks[0].Moves)
	}
}

func TestHomeClustersMajority(t *testing.T) {
	m := ir.NewModule("t")
	bd := ir.NewBuilder(m, "f", 0)
	r := bd.NewReg()
	bd.EmitTo(r, ir.OpMov, ir.ConstInt(1))
	bd.EmitTo(r, ir.OpMov, ir.ConstInt(2))
	bd.EmitTo(r, ir.OpMov, ir.ConstInt(3))
	bd.Ret()
	f := m.Func("f")
	asg := []int{1, 1, 0, 0}
	home := HomeClusters(f, asg, 2)
	if home[r] != 1 {
		t.Errorf("home = %d, want 1 (majority)", home[r])
	}
}

func TestProgramCycles(t *testing.T) {
	m := ir.NewModule("t")
	bd := ir.NewBuilder(m, "main", 0)
	bd.Emit(ir.OpAdd, ir.ConstInt(1), ir.ConstInt(2))
	bd.Ret()
	f := m.Func("main")
	in := interp.New(m, interp.Options{})
	if _, err := in.RunMain(); err != nil {
		t.Fatal(err)
	}
	cfg := machine.Paper2Cluster(5)
	cycles, moves := ProgramCycles(m, map[*ir.Func][]int{f: allOn(f, 0)}, cfg, in.Profile())
	if cycles < 1 || moves != 0 {
		t.Errorf("cycles=%d moves=%d", cycles, moves)
	}
}

// Property: schedule length is at least the critical path lower bound and
// at least the resource lower bound, for random assignments of a fixed DAG.
func TestScheduleLowerBoundsQuick(t *testing.T) {
	f := chain(5) // critical path 5 on one cluster
	cfg := machine.Paper2Cluster(5)
	check := func(bits uint8) bool {
		asg := make([]int, f.NOps)
		crossings := 0
		prev := 0
		for i := 0; i < 5; i++ {
			asg[i] = int(bits>>uint(i)) & 1
			if i > 0 && asg[i] != prev {
				crossings++
			}
			prev = asg[i]
		}
		asg[5] = asg[4] // the ret follows the final add's cluster
		res := ScheduleFunc(f, asg, cfg)
		want := 5 + crossings*cfg.MoveLatency + 1 // +1 for the ret
		return res.Blocks[0].Length == want && res.Blocks[0].Moves == crossings
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 64}); err != nil {
		t.Error(err)
	}
}

// Property: adding cross-cluster splits never makes the schedule shorter
// than keeping a dependent chain on one cluster.
func TestChainMonotoneQuick(t *testing.T) {
	f := chain(8)
	cfg := machine.Paper2Cluster(5)
	base := ScheduleFunc(f, allOn(f, 0), cfg).Blocks[0].Length
	check := func(bits uint16) bool {
		asg := make([]int, f.NOps)
		for i := 0; i < 8; i++ {
			asg[i] = int(bits>>uint(i)) & 1
		}
		return ScheduleFunc(f, asg, cfg).Blocks[0].Length >= base
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRingLatencyAffectsSchedule(t *testing.T) {
	// A value produced on cluster 0 and consumed on cluster 2 of a 4-ring
	// pays 2 hops; on the bus a single latency.
	f := chain(2)
	asg := []int{0, 2, 2}
	ring := machine.RingFour(5)
	bus := machine.FourCluster(5)
	r := ScheduleFunc(f, asg, ring).Blocks[0]
	b := ScheduleFunc(f, asg, bus).Blocks[0]
	// add@0(1) -> move(2 hops x5=10) -> add@11 -> ret: 13 on the ring.
	if r.Length != b.Length+5 {
		t.Errorf("ring length %d, bus %d; want ring = bus + one extra hop (5)",
			r.Length, b.Length)
	}
	// Adjacent clusters cost the same as the bus.
	asgAdj := []int{0, 1, 1}
	rAdj := ScheduleFunc(f, asgAdj, ring).Blocks[0]
	bAdj := ScheduleFunc(f, asgAdj, bus).Blocks[0]
	if rAdj.Length != bAdj.Length {
		t.Errorf("adjacent ring length %d != bus %d", rAdj.Length, bAdj.Length)
	}
}
