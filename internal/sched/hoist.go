package sched

import (
	"sort"

	"mcpart/internal/cfg"
	"mcpart/internal/ir"
)

// LoopCtx caches the loop structure a function's scheduler needs to hoist
// intercluster copies of loop-invariant values: a value that is live into a
// loop and defined nowhere inside it is copied to a consuming cluster once
// per loop entry (in the preheader), not once per iteration — mirroring how
// clustered code generators replicate loop invariants and induction bases.
// LoopCtx depends only on the IR, not on any cluster assignment, so one
// instance serves every candidate partition of the function.
type LoopCtx struct {
	Loops     []*cfg.Loop
	loopOf    []int // block ID -> index of innermost containing loop, or -1
	defsIn    []map[ir.VReg]bool
	induction []map[ir.VReg]bool
}

// NewLoopCtx analyzes f's loops.
func NewLoopCtx(f *ir.Func) *LoopCtx {
	lc := &LoopCtx{
		Loops:  cfg.Loops(f),
		loopOf: make([]int, len(f.Blocks)),
	}
	for i := range lc.loopOf {
		lc.loopOf[i] = -1
	}
	for li, l := range lc.Loops {
		for b := range l.Blocks {
			cur := lc.loopOf[b.ID]
			if cur == -1 || lc.Loops[cur].Depth < l.Depth {
				lc.loopOf[b.ID] = li
			}
		}
	}
	lc.defsIn = make([]map[ir.VReg]bool, len(lc.Loops))
	lc.induction = make([]map[ir.VReg]bool, len(lc.Loops))
	for li, l := range lc.Loops {
		defs := map[ir.VReg]bool{}
		simple := map[ir.VReg]bool{}
		for b := range l.Blocks {
			for _, op := range b.Ops {
				if op.Dst == ir.NoReg {
					continue
				}
				r := op.Dst
				isSimple := (op.Opcode == ir.OpAdd || op.Opcode == ir.OpSub) &&
					len(op.Args) == 2 &&
					op.Args[0].Kind == ir.OperReg && op.Args[0].Reg == r &&
					op.Args[1].Kind == ir.OperInt
				if defs[r] {
					simple[r] = simple[r] && isSimple
				} else {
					defs[r] = true
					simple[r] = isSimple
				}
			}
		}
		ind := map[ir.VReg]bool{}
		for r, ok := range simple {
			if ok {
				ind[r] = true
			}
		}
		lc.defsIn[li] = defs
		lc.induction[li] = ind
	}
	return lc
}

// InnermostLoop returns the index (into Loops) of b's innermost containing
// loop, or -1.
func (lc *LoopCtx) InnermostLoop(b *ir.Block) int {
	if lc == nil {
		return -1
	}
	return lc.loopOf[b.ID]
}

// Invariant reports whether register r is loop-invariant with respect to
// block b's innermost loop (false when b is outside all loops).
func (lc *LoopCtx) Invariant(b *ir.Block, r ir.VReg) bool {
	if lc == nil {
		return false
	}
	li := lc.loopOf[b.ID]
	if li < 0 {
		return false
	}
	return !lc.defsIn[li][r]
}

// Induction reports whether r is a replicable induction register of block
// b's innermost loop: every in-loop definition of r is a simple
// constant-step update (r = r ± C). Clustered code generators replicate
// such registers per cluster (one local update each), so consumers on any
// cluster see them without per-iteration intercluster traffic; only the
// loop-entry seed copy crosses the network.
func (lc *LoopCtx) Induction(b *ir.Block, r ir.VReg) bool {
	if lc == nil {
		return false
	}
	li := lc.loopOf[b.ID]
	if li < 0 {
		return false
	}
	return lc.induction[li][r]
}

// FreeLiveIn reports whether a live-in register needs no per-iteration
// intercluster move in block b: it is loop-invariant (hoisted copy) or a
// replicable induction register (per-cluster copy). Both still cost one
// move per loop entry.
func (lc *LoopCtx) FreeLiveIn(b *ir.Block, r ir.VReg) bool {
	return lc.Invariant(b, r) || lc.Induction(b, r)
}

// EntryFreq returns how many times loop li is entered, given per-block
// execution frequencies: the total frequency of header predecessors outside
// the loop (at least 1 once the loop ran at all).
func (lc *LoopCtx) EntryFreq(li int, freq func(*ir.Block) int64) int64 {
	l := lc.Loops[li]
	var n int64
	for _, p := range l.Header.Preds {
		if !l.Blocks[p] {
			n += freq(p)
		}
	}
	if n == 0 && freq(l.Header) > 0 {
		n = 1
	}
	return n
}

// HoistedMove identifies one loop-entry intercluster copy: invariant
// register Reg delivered to cluster To for loop index Loop.
type HoistedMove struct {
	Loop int
	Reg  ir.VReg
	To   int
}

// SortHoisted orders hoisted moves deterministically.
func SortHoisted(hs []HoistedMove) {
	sort.Slice(hs, func(i, j int) bool {
		if hs[i].Loop != hs[j].Loop {
			return hs[i].Loop < hs[j].Loop
		}
		if hs[i].Reg != hs[j].Reg {
			return hs[i].Reg < hs[j].Reg
		}
		return hs[i].To < hs[j].To
	})
}
