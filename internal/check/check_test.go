package check_test

import (
	"errors"
	"testing"

	"mcpart/internal/bench"
	"mcpart/internal/check"
	"mcpart/internal/eval"
	"mcpart/internal/ir"
	"mcpart/internal/machine"
	"mcpart/internal/sched"
)

// compiledCache shares prepared benchmarks across the tests in this file.
var compiledCache = map[string]*eval.Compiled{}

func compiled(t *testing.T, name string) *eval.Compiled {
	t.Helper()
	if c, ok := compiledCache[name]; ok {
		return c
	}
	b, err := bench.Get(name)
	if err != nil {
		t.Fatalf("bench.Get(%s): %v", name, err)
	}
	c, err := eval.Prepare(b.Name, b.Source)
	if err != nil {
		t.Fatalf("prepare %s: %v", name, err)
	}
	compiledCache[name] = c
	return c
}

// toCheck converts an eval result into the validator's input form.
func toCheck(r *eval.Result) check.Result {
	return check.Result{
		Scheme:        string(r.Scheme),
		DataMap:       r.DataMap,
		Assign:        r.Assign,
		Locks:         r.Locks,
		Cycles:        r.Cycles,
		Moves:         r.Moves,
		CheckCapacity: r.Scheme == eval.SchemeGDP,
	}
}

func cloneAssign(in map[*ir.Func][]int) map[*ir.Func][]int {
	out := make(map[*ir.Func][]int, len(in))
	for f, asg := range in {
		out[f] = append([]int(nil), asg...)
	}
	return out
}

// gdpResult evaluates GDP on rawcaudio with the paper machine — the
// mutation tests' shared clean baseline.
func gdpResult(t *testing.T, cfg *machine.Config) (*eval.Compiled, *eval.Result) {
	t.Helper()
	c := compiled(t, "rawcaudio")
	r, err := eval.RunGDP(c, cfg, eval.Options{})
	if err != nil {
		t.Fatalf("RunGDP: %v", err)
	}
	return c, r
}

func TestValidateCleanResults(t *testing.T) {
	cfg := machine.Paper2Cluster(5)
	c := compiled(t, "rawcaudio")
	for _, run := range []struct {
		name string
		fn   func(*eval.Compiled, *machine.Config, eval.Options) (*eval.Result, error)
	}{
		{"unified", eval.RunUnified},
		{"gdp", eval.RunGDP},
		{"pmax", eval.RunProfileMax},
		{"naive", eval.RunNaive},
	} {
		r, err := run.fn(c, cfg, eval.Options{})
		if err != nil {
			t.Fatalf("%s: %v", run.name, err)
		}
		if err := check.Validate(c.Mod, c.Prof, cfg, toCheck(r), check.Options{}); err != nil {
			t.Errorf("%s: clean result flagged: %v", run.name, err)
		}
	}
}

// wantClass validates a deliberately corrupted result and asserts the
// expected invariant class fired.
func wantClass(t *testing.T, c *eval.Compiled, cfg *machine.Config, r check.Result, class check.Class) {
	t.Helper()
	err := check.Validate(c.Mod, c.Prof, cfg, r, check.Options{})
	if err == nil {
		t.Fatalf("corrupted result passed validation (wanted %s violation)", class)
	}
	var ce *check.Error
	if !errors.As(err, &ce) {
		t.Fatalf("got %T (%v), want *check.Error", err, err)
	}
	if !ce.Has(class) {
		t.Errorf("wanted a %s violation, got: %v", class, err)
	}
}

func TestMutationHomeOutOfRange(t *testing.T) {
	cfg := machine.Paper2Cluster(5)
	c, r := gdpResult(t, cfg)
	cr := toCheck(r)
	cr.DataMap = append([]int(nil), cr.DataMap...)
	cr.DataMap[0] = cfg.NumClusters() + 3
	wantClass(t, c, cfg, cr, check.ClassHome)
}

func TestMutationHomeCoverage(t *testing.T) {
	cfg := machine.Paper2Cluster(5)
	c, r := gdpResult(t, cfg)
	cr := toCheck(r)
	cr.DataMap = cr.DataMap[:len(cr.DataMap)-1]
	wantClass(t, c, cfg, cr, check.ClassHome)
}

// TestMutationCorruptHome flips one object's home without recomputing
// locks: memory ops locked to the stale home are then executing off their
// object's home cluster (§3.4).
func TestMutationCorruptHome(t *testing.T) {
	cfg := machine.Paper2Cluster(5)
	c, r := gdpResult(t, cfg)
	base := toCheck(r)
	for obj := range base.DataMap {
		dm := append([]int(nil), base.DataMap...)
		dm[obj] = 1 - dm[obj]
		trial := base
		trial.DataMap = dm
		trial.CheckCapacity = false // isolate the lock class from balance fallout
		if err := check.Validate(c.Mod, c.Prof, cfg, trial, check.Options{}); err != nil {
			var ce *check.Error
			if errors.As(err, &ce) && ce.Has(check.ClassLock) {
				return // caught
			}
		}
	}
	t.Fatal("no home flip produced a lock violation")
}

func TestMutationAssignOffHome(t *testing.T) {
	cfg := machine.Paper2Cluster(5)
	c, r := gdpResult(t, cfg)
	cr := toCheck(r)
	for _, f := range c.Mod.Funcs {
		locks := cr.Locks[f]
		if len(locks) == 0 {
			continue
		}
		assign := cloneAssign(cr.Assign)
		for id, cl := range locks {
			assign[f][id] = 1 - cl
			break
		}
		cr.Assign = assign
		wantClass(t, c, cfg, cr, check.ClassLock)
		return
	}
	t.Fatal("no locked function found")
}

func TestMutationAssignOutOfRange(t *testing.T) {
	cfg := machine.Paper2Cluster(5)
	c, r := gdpResult(t, cfg)
	cr := toCheck(r)
	f := c.Mod.Funcs[0]
	assign := cloneAssign(cr.Assign)
	assign[f][0] = cfg.NumClusters() + 5
	cr.Assign = assign
	wantClass(t, c, cfg, cr, check.ClassAssign)
}

func TestMutationMissingAssignment(t *testing.T) {
	cfg := machine.Paper2Cluster(5)
	c, r := gdpResult(t, cfg)
	cr := toCheck(r)
	assign := cloneAssign(cr.Assign)
	delete(assign, c.Mod.Funcs[0])
	cr.Assign = assign
	wantClass(t, c, cfg, cr, check.ClassAssign)
}

func TestMutationCycleAccounting(t *testing.T) {
	cfg := machine.Paper2Cluster(5)
	c, r := gdpResult(t, cfg)
	cr := toCheck(r)
	cr.Cycles++
	wantClass(t, c, cfg, cr, check.ClassAccount)
}

func TestMutationMoveAccounting(t *testing.T) {
	cfg := machine.Paper2Cluster(5)
	c, r := gdpResult(t, cfg)
	cr := toCheck(r)
	cr.Moves--
	wantClass(t, c, cfg, cr, check.ClassAccount)
}

func TestMutationCapacityOverflow(t *testing.T) {
	base := machine.Paper2Cluster(5)
	// Asymmetric capacities: cluster 0's tolerated share plus the
	// single-unit slack is still far below the whole data set, so homing
	// everything there must trip the capacity invariant.
	cfg, err := machine.WithMemCapacities(base, 1<<10, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	c := compiled(t, "rawcaudio")
	// Cram every object onto cluster 0 through the supported evaluation
	// path so locks and assignment stay self-consistent; only the capacity
	// promise is then broken.
	dm := make([]int, len(c.Mod.Objects))
	r, err := eval.RunWithDataMap(c, cfg, dm, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cr := toCheck(r)
	cr.CheckCapacity = true
	wantClass(t, c, cfg, cr, check.ClassCapacity)
}

// materializedBlock finds a block schedule of rawcaudio's GDP partition
// satisfying pick, for the slot-level mutation tests.
func materializedBlock(t *testing.T, pick func(*sched.BlockSchedule) bool) (*ir.Block, *sched.BlockSchedule, []int, *machine.Config) {
	t.Helper()
	cfg := machine.Paper2Cluster(5)
	c, r := gdpResult(t, cfg)
	for _, f := range c.Mod.Funcs {
		asg := r.Assign[f]
		schedules, _ := sched.MaterializeFunc(f, asg, sched.NewLoopCtx(f), cfg, c.Prof.Freq)
		for _, b := range f.Blocks {
			if bs := schedules[b.ID]; bs != nil && pick(bs) {
				return b, bs, asg, cfg
			}
		}
	}
	t.Skip("no block matching the mutation's precondition")
	return nil, nil, nil, nil
}

func hasMove(bs *sched.BlockSchedule) bool {
	for _, s := range bs.Slots {
		if s.IsMove {
			return true
		}
	}
	return false
}

// TestMutationBusOversubscribed injects a second move into a cycle that
// already carries one on a bandwidth-1 bus.
func TestMutationBusOversubscribed(t *testing.T) {
	b, bs, asg, cfg := materializedBlock(t, hasMove)
	mut := *bs
	mut.Slots = append([]sched.Slot(nil), bs.Slots...)
	var src *sched.Slot
	for i := range mut.Slots {
		if mut.Slots[i].IsMove {
			src = &mut.Slots[i]
			break
		}
	}
	// Same cycle, other cluster: the per-cluster FU budget stays legal, so
	// only the shared bus is oversubscribed.
	extra := *src
	extra.Cluster = 1 - extra.Cluster
	extra.Preds = nil
	mut.Slots = append(mut.Slots, extra)
	rec := check.NewRecorder(0)
	check.VerifyBlock(rec, b, &mut, asg, cfg)
	if !rec.Has(check.ClassBus) {
		t.Errorf("oversubscribed bus not caught: %v", rec.Violations())
	}
}

// TestMutationFUOversubscribed stacks more issues onto one (cycle,
// cluster, kind) cell than the machine has units.
func TestMutationFUOversubscribed(t *testing.T) {
	b, bs, asg, cfg := materializedBlock(t, func(bs *sched.BlockSchedule) bool {
		return len(bs.Slots) > 0
	})
	mut := *bs
	mut.Slots = append([]sched.Slot(nil), bs.Slots...)
	seed := mut.Slots[0]
	units := cfg.Units(seed.Cluster, seed.Kind)
	for i := 0; i <= units; i++ {
		extra := seed
		extra.Op = nil
		extra.IsMove = true // slots past the block's ops must be moves
		extra.Preds = nil
		mut.Slots = append(mut.Slots, extra)
	}
	rec := check.NewRecorder(0)
	check.VerifyBlock(rec, b, &mut, asg, cfg)
	if !rec.Has(check.ClassFU) {
		t.Errorf("oversubscribed FU not caught: %v", rec.Violations())
	}
}

// TestMutationRetimedMove issues a dependent slot before its operand is
// ready.
func TestMutationRetimedMove(t *testing.T) {
	b, bs, asg, cfg := materializedBlock(t, func(bs *sched.BlockSchedule) bool {
		for si, s := range bs.Slots {
			for _, p := range s.Preds {
				if bs.Slots[p.From].Cycle+p.Lat > 0 && si < len(bs.Block.Ops) {
					return true
				}
			}
		}
		return false
	})
	mut := *bs
	mut.Slots = append([]sched.Slot(nil), bs.Slots...)
	for si := range mut.Slots {
		for _, p := range mut.Slots[si].Preds {
			if ready := mut.Slots[p.From].Cycle + p.Lat; ready > 0 {
				mut.Slots[si].Cycle = 0
				rec := check.NewRecorder(0)
				check.VerifyBlock(rec, b, &mut, asg, cfg)
				if !rec.Has(check.ClassReady) {
					t.Errorf("early issue not caught: %v", rec.Violations())
				}
				return
			}
		}
	}
}

// TestMutationDroppedMove removes a move the schedule depends on; the
// dangling dependence (or the broken accounting) must surface.
func TestMutationDroppedMove(t *testing.T) {
	b, bs, asg, cfg := materializedBlock(t, func(bs *sched.BlockSchedule) bool {
		if len(bs.Slots) == 0 {
			return false
		}
		last := len(bs.Slots) - 1
		if !bs.Slots[last].IsMove {
			return false
		}
		for _, s := range bs.Slots {
			for _, p := range s.Preds {
				if p.From == last {
					return true
				}
			}
		}
		return false
	})
	mut := *bs
	mut.Slots = append([]sched.Slot(nil), bs.Slots[:len(bs.Slots)-1]...)
	rec := check.NewRecorder(0)
	check.VerifyBlock(rec, b, &mut, asg, cfg)
	if !rec.Has(check.ClassReady) && !rec.Has(check.ClassAccount) {
		t.Errorf("dropped move not caught: %v", rec.Violations())
	}
}

// TestMutationBlockLength tampered with the reported block length.
func TestMutationBlockLength(t *testing.T) {
	b, bs, asg, cfg := materializedBlock(t, func(bs *sched.BlockSchedule) bool {
		return len(bs.Slots) > 0
	})
	mut := *bs
	mut.Length += 5
	rec := check.NewRecorder(0)
	check.VerifyBlock(rec, b, &mut, asg, cfg)
	if !rec.Has(check.ClassAccount) {
		t.Errorf("tampered length not caught: %v", rec.Violations())
	}
}

func TestRecorderCap(t *testing.T) {
	cfg := machine.Paper2Cluster(5)
	c, r := gdpResult(t, cfg)
	cr := toCheck(r)
	assign := cloneAssign(cr.Assign)
	for _, f := range c.Mod.Funcs {
		for i := range assign[f] {
			assign[f][i] = 99 // every op out of range
		}
	}
	cr.Assign = assign
	err := check.Validate(c.Mod, c.Prof, cfg, cr, check.Options{MaxViolations: 5})
	var ce *check.Error
	if !errors.As(err, &ce) {
		t.Fatalf("got %v", err)
	}
	if len(ce.Violations) > 5 {
		t.Errorf("cap of 5 not honored: %d violations", len(ce.Violations))
	}
}
