// Package check is the independent, schedule-level validator of the
// evaluation pipeline. It re-derives the paper's machine-model constraints
// from first principles — object homes, §3.4 locked memory placement,
// per-cluster function-unit occupancy, the 1-move-per-cycle bus, operand
// ready times, and the profile-weighted cycle accounting — and verifies
// that a scheme's reported Result actually satisfies them.
//
// check deliberately sits below internal/eval (eval imports check, never
// the reverse) and shares none of the evaluation engine's bookkeeping: the
// schedules it inspects are re-materialized through the scheduler's
// dependence builder (sched.MaterializeFunc) and every resource count,
// ready time, and cycle sum is recomputed here from the raw slots. A bug
// in the memoization cache, the parallel fan-out, or the partitioners'
// incremental estimates therefore cannot hide from the validator — it
// would surface as a Violation.
package check

import (
	"fmt"
	"strings"

	"mcpart/internal/interp"
	"mcpart/internal/ir"
	"mcpart/internal/machine"
	"mcpart/internal/rhop"
	"mcpart/internal/sched"
)

// Class names one invariant family the validator enforces. Every Violation
// belongs to exactly one class, and the mutation tests in this package
// demonstrate a corrupted result caught per class.
type Class string

// The invariant classes.
const (
	// ClassHome: every data object is homed exactly once, on an existing
	// cluster (the data map covers all objects, each home in range).
	ClassHome Class = "home"
	// ClassCapacity: per-cluster scratchpad bytes stay within the
	// machine's capacity share plus tolerance (enforced only when the
	// result promises balance — GDP — and the machine declares capacities).
	ClassCapacity Class = "capacity"
	// ClassLock: §3.4 — every load/store is locked to its object's home
	// cluster and the computation partition honors the lock.
	ClassLock Class = "lock"
	// ClassAssign: every op is assigned to an existing cluster that has at
	// least one unit of the op's kind, and the materialized schedule
	// issues it there.
	ClassAssign Class = "assign"
	// ClassFU: per-cycle, per-cluster function-unit occupancy within the
	// machine description.
	ClassFU Class = "fu"
	// ClassBus: at most MoveBandwidth intercluster moves issued per cycle.
	ClassBus Class = "bus"
	// ClassReady: no operation issues before its operands are ready under
	// the declared latencies and inserted moves.
	ClassReady Class = "ready"
	// ClassAccount: the reported cycle and move totals equal the
	// independently recomputed Σ(block length × profile weight) plus
	// loop-entry hoisted-move costs.
	ClassAccount Class = "accounting"
)

// Violation is one broken invariant, attributable to a function and block.
type Violation struct {
	Class  Class
	Func   string // empty for module-level violations (homes, capacity)
	Block  int    // -1 when not block-scoped
	Detail string
}

func (v Violation) String() string {
	where := ""
	if v.Func != "" {
		where = " in " + v.Func
		if v.Block >= 0 {
			where += fmt.Sprintf(" b%d", v.Block)
		}
	}
	return fmt.Sprintf("[%s]%s: %s", v.Class, where, v.Detail)
}

// Error aggregates the violations found while validating one result.
type Error struct {
	Scheme     string
	Violations []Violation
}

func (e *Error) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "check: %s result violates %d invariant(s)", e.Scheme, len(e.Violations))
	for i, v := range e.Violations {
		if i == 4 && len(e.Violations) > 5 {
			fmt.Fprintf(&b, "; ... %d more", len(e.Violations)-i)
			break
		}
		b.WriteString("; " + v.String())
	}
	return b.String()
}

// Has reports whether the error contains a violation of the given class.
func (e *Error) Has(c Class) bool {
	for _, v := range e.Violations {
		if v.Class == c {
			return true
		}
	}
	return false
}

// Result is the scheme outcome under validation, decoupled from
// eval.Result so eval can depend on this package.
type Result struct {
	Scheme  string
	DataMap []int              // object ID -> home cluster; nil for Unified
	Assign  map[*ir.Func][]int // op ID -> cluster, per function
	Locks   map[*ir.Func]rhop.Locks
	Cycles  int64
	Moves   int64
	// Groups are the data partitioner's indivisible must-alias object
	// merge groups, when known; they set the capacity bound's unit slack.
	// nil falls back to treating every object as its own unit.
	Groups [][]int
	// CheckCapacity enables the scratchpad-capacity invariant. Only GDP
	// promises balanced homes: Profile Max's threshold rule deliberately
	// forces overflow objects onto loaded clusters and Naïve ignores
	// balance entirely, so capacity is a per-scheme promise, not a
	// universal one.
	CheckCapacity bool
}

// Options tunes the validator.
type Options struct {
	// MemTol is the tolerated relative overshoot of a cluster's scratchpad
	// share; zero selects 0.10, matching the partitioner's default balance
	// tolerance (gdp.Options.MemTol).
	MemTol float64
	// MaxViolations caps how many violations are collected before
	// validation stops; zero selects 32.
	MaxViolations int
}

func (o Options) memTol() float64 {
	if o.MemTol == 0 {
		return 0.10
	}
	return o.MemTol
}

func (o Options) maxViolations() int {
	if o.MaxViolations <= 0 {
		return 32
	}
	return o.MaxViolations
}

// Recorder accumulates violations up to a cap. Validate drives one
// internally; mutation tests construct their own (NewRecorder) to feed
// corrupted schedules straight into VerifyBlock.
type Recorder struct {
	vs  []Violation
	max int
}

// NewRecorder returns an empty violation accumulator; maxViolations <= 0
// selects the default cap.
func NewRecorder(maxViolations int) *Recorder {
	return &Recorder{max: Options{MaxViolations: maxViolations}.maxViolations()}
}

// Violations returns the violations accumulated so far.
func (v *Recorder) Violations() []Violation { return v.vs }

// Has reports whether any accumulated violation has the given class.
func (v *Recorder) Has(c Class) bool {
	for _, violation := range v.vs {
		if violation.Class == c {
			return true
		}
	}
	return false
}

func (v *Recorder) add(class Class, fn string, block int, format string, args ...any) bool {
	if len(v.vs) >= v.max {
		return false
	}
	v.vs = append(v.vs, Violation{Class: class, Func: fn, Block: block, Detail: fmt.Sprintf(format, args...)})
	return true
}

func (v *Recorder) full() bool { return len(v.vs) >= v.max }

// Validate checks r against the machine model from first principles and
// returns a *Error listing every violated invariant (nil if the result is
// clean). mod and prof must be the module and profile the result was
// computed from.
func Validate(mod *ir.Module, prof *interp.Profile, cfg *machine.Config, r Result, opts Options) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	v := NewRecorder(opts.MaxViolations)
	k := cfg.NumClusters()

	checkHomes(v, mod, prof, cfg, r, opts)
	var cycles, moves int64
	complete := true // every function's schedule was re-derived
	for _, f := range mod.Funcs {
		asg, ok := r.Assign[f]
		if !ok {
			v.add(ClassAssign, f.Name, -1, "no cluster assignment for function")
			complete = false
			continue
		}
		if len(asg) < f.NOps {
			v.add(ClassAssign, f.Name, -1, "assignment covers %d of %d ops", len(asg), f.NOps)
			complete = false
			continue
		}
		assignable := checkAssignment(v, f, asg, cfg)
		checkLocks(v, f, asg, r, k)
		if v.full() {
			break
		}
		if !assignable {
			// The scheduler cannot materialize an unexecutable assignment;
			// the assign violations above already condemn the result.
			complete = false
			continue
		}
		fc, fm := checkSchedules(v, f, asg, cfg, prof)
		cycles += fc
		moves += fm
	}
	if complete && !v.full() {
		if cycles != r.Cycles {
			v.add(ClassAccount, "", -1, "reported %d cycles, recomputed %d", r.Cycles, cycles)
		}
		if moves != r.Moves {
			v.add(ClassAccount, "", -1, "reported %d moves, recomputed %d", r.Moves, moves)
		}
	}
	if len(v.vs) == 0 {
		return nil
	}
	return &Error{Scheme: r.Scheme, Violations: v.vs}
}

// checkHomes verifies the data map: full coverage, homes in range, and
// (when the result promises balance) per-cluster bytes within the
// machine's scratchpad shares.
func checkHomes(v *Recorder, mod *ir.Module, prof *interp.Profile, cfg *machine.Config, r Result, opts Options) {
	if r.DataMap == nil {
		return // unified memory: no homes to check
	}
	k := cfg.NumClusters()
	if len(r.DataMap) != len(mod.Objects) {
		v.add(ClassHome, "", -1, "data map covers %d of %d objects", len(r.DataMap), len(mod.Objects))
		return
	}
	loaded := make([]int64, k)
	var total int64
	for _, o := range mod.Objects {
		home := r.DataMap[o.ID]
		if home < 0 || home >= k {
			v.add(ClassHome, "", -1, "object %d (%s) homed on cluster %d of %d", o.ID, o.Name, home, k)
			continue
		}
		b := objBytes(o, prof)
		loaded[home] += b
		total += b
	}
	fractions := cfg.MemFractions()
	if !r.CheckCapacity || fractions == nil || total == 0 {
		return
	}
	// The balance bound is the classic multilevel-partitioning guarantee:
	// a cluster may exceed its tolerated share by at most the heaviest
	// indivisible unit, because that unit has to live somewhere whole. The
	// units are the partitioner's must-alias merge groups when the result
	// carries them, single objects otherwise.
	var maxUnit int64
	if r.Groups != nil {
		for _, grp := range r.Groups {
			var gb int64
			for _, objID := range grp {
				if objID >= 0 && objID < len(mod.Objects) {
					gb += objBytes(mod.Objects[objID], prof)
				}
			}
			if gb > maxUnit {
				maxUnit = gb
			}
		}
	} else {
		for _, o := range mod.Objects {
			if b := objBytes(o, prof); b > maxUnit {
				maxUnit = b
			}
		}
	}
	for cl := 0; cl < k; cl++ {
		limit := int64(float64(total)*fractions[cl]*(1+opts.memTol())) + maxUnit
		if loaded[cl] > limit {
			v.add(ClassCapacity, "", -1,
				"cluster %d holds %d bytes, capacity share %d (+%.0f%% tolerance + %d-byte unit slack)",
				cl, loaded[cl], limit, 100*opts.memTol(), maxUnit)
		}
	}
}

// objBytes is the validator's byte size of one object: the profiled
// allocation total when available (heap sites), the static size otherwise —
// the same accounting the data partitioner balances.
func objBytes(o *ir.Object, prof *interp.Profile) int64 {
	if pb, ok := prof.ObjBytes[o.ID]; ok && pb > 0 {
		return pb
	}
	return o.Size
}

// checkAssignment verifies every op lands on an existing cluster with at
// least one unit of its kind, reporting whether the assignment is fully
// executable. This re-derives sched.CheckAssignable rather than calling
// it, so the validator shares no logic with the scheduler it is auditing.
func checkAssignment(v *Recorder, f *ir.Func, asg []int, cfg *machine.Config) bool {
	k := cfg.NumClusters()
	ok := true
	for _, b := range f.Blocks {
		for _, op := range b.Ops {
			c := asg[op.ID]
			if c < 0 || c >= k {
				ok = false
				if !v.add(ClassAssign, f.Name, b.ID, "op %d (%s) on cluster %d of %d", op.ID, op.Opcode, c, k) {
					return false
				}
				continue
			}
			if kind := machine.KindOf(op.Opcode); cfg.Units(c, kind) == 0 {
				ok = false
				if !v.add(ClassAssign, f.Name, b.ID, "op %d (%s) on cluster %d which has no %s units",
					op.ID, op.Opcode, c, kind) {
					return false
				}
			}
		}
	}
	return ok
}

// checkLocks verifies §3.4: every memory operation with a known access set
// is locked to a home cluster of an object it may access, and the
// computation partition executes it there. Ops whose access set spans a
// single home must sit exactly on that home.
func checkLocks(v *Recorder, f *ir.Func, asg []int, r Result, k int) {
	if r.DataMap == nil || r.Locks == nil || len(r.DataMap) == 0 {
		return
	}
	locks := r.Locks[f]
	for _, b := range f.Blocks {
		for _, op := range b.Ops {
			if !op.Opcode.IsMem() || len(op.MayAccess) == 0 {
				continue
			}
			// The home clusters this op's accessible objects live on.
			homes := map[int]bool{}
			for _, objID := range op.MayAccess {
				if objID >= 0 && objID < len(r.DataMap) {
					homes[r.DataMap[objID]] = true
				}
			}
			lock, locked := locks[op.ID]
			if !locked {
				if !v.add(ClassLock, f.Name, b.ID, "memory op %d (%s) has no lock", op.ID, op.Opcode) {
					return
				}
				continue
			}
			if !homes[lock] {
				if !v.add(ClassLock, f.Name, b.ID, "memory op %d (%s) locked to cluster %d, not a home of its objects %v",
					op.ID, op.Opcode, lock, op.MayAccess) {
					return
				}
				continue
			}
			if asg[op.ID] != lock {
				if !v.add(ClassLock, f.Name, b.ID, "memory op %d (%s) locked to cluster %d but assigned to %d",
					op.ID, op.Opcode, lock, asg[op.ID]) {
					return
				}
			}
		}
	}
}

// checkSchedules re-materializes every block schedule of f and verifies it
// slot by slot, returning the independently recomputed profile-weighted
// cycle and move totals.
func checkSchedules(v *Recorder, f *ir.Func, asg []int, cfg *machine.Config, prof *interp.Profile) (cycles, moves int64) {
	lc := sched.NewLoopCtx(f)
	schedules, hoisted := sched.MaterializeFunc(f, asg, lc, cfg, prof.Freq)
	for _, b := range f.Blocks {
		bs := schedules[b.ID]
		length, blockMoves := VerifyBlock(v, b, bs, asg, cfg)
		if freq := prof.Freq(b); freq > 0 {
			cycles += freq * int64(length)
			moves += freq * int64(blockMoves)
		}
		if v.full() {
			return cycles, moves
		}
	}
	// Hoisted loop-invariant copies cost one move and one cycle per loop
	// entry (the scheduler's accounting; re-derived from the loop context).
	for _, h := range hoisted {
		entries := lc.EntryFreq(h.Loop, prof.Freq)
		cycles += entries
		moves += entries
	}
	return cycles, moves
}

// VerifyBlock checks one materialized block schedule against the machine
// model, recording violations into v, and returns the independently
// recomputed schedule length and move count. Exposed (with Recorder) so
// mutation tests can corrupt a BlockSchedule directly and watch each
// invariant class fire; Validate uses it on schedules it materializes
// itself.
// moveLatency re-derives the per-hop move cost from the machine topology
// from first principles. It deliberately does not call cfg.MoveLat — the
// whole point is to catch a bug in the production distance computation, so
// the ring arithmetic, the mesh Manhattan distance, and the matrix lookup
// are reimplemented here.
func moveLatency(cfg *machine.Config, a, b int) int {
	if a == b {
		return 0
	}
	switch cfg.Topology {
	case machine.TopologyRing:
		n := cfg.NumClusters()
		fwd := ((b-a)%n + n) % n
		if back := n - fwd; back < fwd {
			fwd = back
		}
		return cfg.MoveLatency * fwd
	case machine.TopologyMesh:
		cols := cfg.MeshCols
		rowDist := a/cols - b/cols
		if rowDist < 0 {
			rowDist = -rowDist
		}
		colDist := a%cols - b%cols
		if colDist < 0 {
			colDist = -colDist
		}
		return cfg.MoveLatency * (rowDist + colDist)
	case machine.TopologyMatrix:
		return cfg.LatencyMatrix[a][b]
	default:
		return cfg.MoveLatency
	}
}

func VerifyBlock(v *Recorder, b *ir.Block, bs *sched.BlockSchedule, asg []int, cfg *machine.Config) (length, moveCount int) {
	length = 1
	if bs == nil {
		v.add(ClassAccount, b.Func.Name, b.ID, "no schedule materialized")
		return length, 0
	}
	fn := b.Func.Name
	// Structural coverage: the first len(b.Ops) slots are the block's ops
	// in program order (the documented BlockSchedule layout); moves follow.
	if len(bs.Slots) < len(b.Ops) {
		v.add(ClassAssign, fn, b.ID, "schedule has %d slots for %d ops", len(bs.Slots), len(b.Ops))
		return length, 0
	}
	type cell struct {
		cycle, cluster int
		kind           machine.FUKind
	}
	occupancy := map[cell]int{}
	bus := map[int]int{}
	k := cfg.NumClusters()
	for si, s := range bs.Slots {
		if s.Cycle < 0 {
			v.add(ClassReady, fn, b.ID, "slot %d issues at negative cycle %d", si, s.Cycle)
			continue
		}
		if s.Cluster < 0 || s.Cluster >= k {
			v.add(ClassAssign, fn, b.ID, "slot %d on cluster %d of %d", si, s.Cluster, k)
			continue
		}
		if si < len(b.Ops) {
			op := b.Ops[si]
			if s.Op != op {
				v.add(ClassAssign, fn, b.ID, "slot %d does not carry op %d in program order", si, op.ID)
				continue
			}
			if s.Cluster != asg[op.ID] {
				v.add(ClassAssign, fn, b.ID, "op %d (%s) issued on cluster %d, assigned to %d",
					op.ID, op.Opcode, s.Cluster, asg[op.ID])
			}
			if want := machine.KindOf(op.Opcode); s.Kind != want {
				v.add(ClassAssign, fn, b.ID, "op %d (%s) issued as %s, is %s", op.ID, op.Opcode, s.Kind, want)
			}
			if want := machine.Latency(op.Opcode); s.Lat != want {
				v.add(ClassReady, fn, b.ID, "op %d (%s) scheduled with latency %d, machine says %d",
					op.ID, op.Opcode, s.Lat, want)
			}
		} else if !s.IsMove {
			v.add(ClassAssign, fn, b.ID, "slot %d past the block's %d ops is not a move", si, len(b.Ops))
		}
		if s.IsMove {
			switch {
			case s.To < 0 || s.To >= k:
				v.add(ClassAssign, fn, b.ID, "move slot %d targets cluster %d of %d", si, s.To, k)
			case s.To == s.Cluster:
				v.add(ClassAssign, fn, b.ID, "move slot %d targets its own cluster %d", si, s.To)
			default:
				if want := moveLatency(cfg, s.Cluster, s.To); s.Lat != want {
					v.add(ClassReady, fn, b.ID, "move slot %d (%d->%d) scheduled with latency %d, topology says %d",
						si, s.Cluster, s.To, s.Lat, want)
				}
			}
		}
		occupancy[cell{s.Cycle, s.Cluster, s.Kind}]++
		if s.IsMove {
			bus[s.Cycle]++
			moveCount++
		}
		// Ready times: the consumer may not issue before every predecessor's
		// result is available.
		for _, p := range s.Preds {
			if p.From < 0 || p.From >= len(bs.Slots) {
				v.add(ClassReady, fn, b.ID, "slot %d depends on out-of-range slot %d", si, p.From)
				continue
			}
			if ready := bs.Slots[p.From].Cycle + p.Lat; s.Cycle < ready {
				v.add(ClassReady, fn, b.ID, "slot %d issues at cycle %d before operand ready at %d",
					si, s.Cycle, ready)
			}
		}
		if end := s.Cycle + s.Lat; end > length {
			length = end
		}
		if v.full() {
			return length, moveCount
		}
	}
	for c, n := range occupancy {
		if units := cfg.Units(c.cluster, c.kind); n > units {
			v.add(ClassFU, fn, b.ID, "cycle %d cluster %d issues %d %s ops on %d units",
				c.cycle, c.cluster, n, c.kind, units)
		}
	}
	for cyc, n := range bus {
		if n > cfg.MoveBandwidth {
			v.add(ClassBus, fn, b.ID, "cycle %d issues %d intercluster moves, bandwidth %d",
				cyc, n, cfg.MoveBandwidth)
		}
	}
	if bs.Length != length {
		v.add(ClassAccount, fn, b.ID, "schedule reports length %d, slots imply %d", bs.Length, length)
	}
	return length, moveCount
}
