// Package ir defines the intermediate representation used throughout the
// partitioning pipeline: a non-SSA, virtual-register IR organized as modules
// of functions, functions of basic blocks, and blocks of operations.
//
// The IR is deliberately close to the operation granularity that the paper's
// partitioners work at: every operation occupies one function-unit slot on a
// clustered VLIW machine, memory operations are explicit loads and stores on
// word-addressed data objects, and data objects (global variables and heap
// allocation sites) are first-class so that the points-to analysis and the
// data partitioner can reason about them.
package ir

import (
	"fmt"
	"strings"
)

// VReg names a virtual register within a function. Virtual registers are
// dense small integers starting at 0; registers 0..NParams-1 hold the
// incoming arguments at function entry.
type VReg int

// NoReg marks the absence of a destination register.
const NoReg VReg = -1

// Opcode enumerates every operation kind in the IR.
type Opcode int

// The opcode space. Integer arithmetic operates on 64-bit two's-complement
// values; float arithmetic on IEEE-754 float64.
const (
	OpInvalid Opcode = iota

	// Integer arithmetic and logic.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpNeg
	OpNot

	// Integer comparisons; result is 0 or 1.
	OpCmpEQ
	OpCmpNE
	OpCmpLT
	OpCmpLE
	OpCmpGT
	OpCmpGE

	// Floating-point arithmetic.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFNeg

	// Floating-point comparisons; result is integer 0 or 1.
	OpFCmpEQ
	OpFCmpNE
	OpFCmpLT
	OpFCmpLE
	OpFCmpGT
	OpFCmpGE

	// Conversions.
	OpIToF
	OpFToI

	// Register copy.
	OpMov

	// Memory.
	OpAddr   // dst = address of the global object in Obj
	OpMalloc // dst = pointer to fresh heap storage of Args[0] bytes; site id in MallocSite
	OpLoad   // dst = memory word at address Args[0]
	OpStore  // memory word at address Args[0] = Args[1]

	// Control.
	OpBr     // unconditional branch to Block.Succs[0]
	OpBrCond // if Args[0] != 0 branch to Succs[0] else Succs[1]
	OpCall   // dst (optional) = call Callee(Args...)
	OpRet    // return Args[0] if present

	// OpMove is the explicit intercluster move pseudo-operation. It never
	// appears in front-end IR; the scheduler materializes it when a value
	// crosses clusters.
	OpMove

	numOpcodes
)

var opcodeNames = [...]string{
	OpInvalid: "invalid",
	OpAdd:     "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpNeg: "neg", OpNot: "not",
	OpCmpEQ: "cmpeq", OpCmpNE: "cmpne", OpCmpLT: "cmplt",
	OpCmpLE: "cmple", OpCmpGT: "cmpgt", OpCmpGE: "cmpge",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv", OpFNeg: "fneg",
	OpFCmpEQ: "fcmpeq", OpFCmpNE: "fcmpne", OpFCmpLT: "fcmplt",
	OpFCmpLE: "fcmple", OpFCmpGT: "fcmpgt", OpFCmpGE: "fcmpge",
	OpIToF: "itof", OpFToI: "ftoi",
	OpMov:  "mov",
	OpAddr: "addr", OpMalloc: "malloc", OpLoad: "load", OpStore: "store",
	OpBr: "br", OpBrCond: "brcond", OpCall: "call", OpRet: "ret",
	OpMove: "move",
}

// String returns the assembler mnemonic of the opcode.
func (o Opcode) String() string {
	if o < 0 || int(o) >= len(opcodeNames) {
		return fmt.Sprintf("opcode(%d)", int(o))
	}
	return opcodeNames[o]
}

// IsMem reports whether the opcode accesses data memory.
func (o Opcode) IsMem() bool {
	switch o {
	case OpLoad, OpStore, OpMalloc:
		return true
	}
	return false
}

// IsBranch reports whether the opcode transfers control.
func (o Opcode) IsBranch() bool {
	switch o {
	case OpBr, OpBrCond, OpCall, OpRet:
		return true
	}
	return false
}

// IsTerminator reports whether the opcode must end a basic block.
func (o Opcode) IsTerminator() bool {
	switch o {
	case OpBr, OpBrCond, OpRet:
		return true
	}
	return false
}

// IsFloat reports whether the opcode executes on a floating-point unit.
func (o Opcode) IsFloat() bool {
	switch o {
	case OpFAdd, OpFSub, OpFMul, OpFDiv, OpFNeg,
		OpFCmpEQ, OpFCmpNE, OpFCmpLT, OpFCmpLE, OpFCmpGT, OpFCmpGE,
		OpIToF, OpFToI:
		return true
	}
	return false
}

// HasDst reports whether operations with this opcode define a register.
func (o Opcode) HasDst() bool {
	switch o {
	case OpStore, OpBr, OpBrCond, OpRet, OpInvalid:
		return false
	case OpCall:
		return true // optional; NoReg allowed
	}
	return true
}

// OperandKind discriminates Operand payloads.
type OperandKind int

// Operand kinds.
const (
	OperReg OperandKind = iota
	OperInt
	OperFloat
)

// Operand is a use of either a virtual register or an immediate constant.
type Operand struct {
	Kind  OperandKind
	Reg   VReg
	Int   int64
	Float float64
}

// Reg returns a register operand.
func Reg(r VReg) Operand { return Operand{Kind: OperReg, Reg: r} }

// ConstInt returns an integer immediate operand.
func ConstInt(v int64) Operand { return Operand{Kind: OperInt, Int: v} }

// ConstFloat returns a floating-point immediate operand.
func ConstFloat(v float64) Operand { return Operand{Kind: OperFloat, Float: v} }

// String renders the operand in IR syntax. Float immediates always carry
// a '.', exponent, or textual marker so the parser can distinguish them
// from integers.
func (o Operand) String() string {
	switch o.Kind {
	case OperReg:
		return fmt.Sprintf("v%d", o.Reg)
	case OperInt:
		return fmt.Sprintf("%d", o.Int)
	case OperFloat:
		s := fmt.Sprintf("%g", o.Float)
		if !strings.ContainsAny(s, ".eEnI") { // NaN/Inf carry letters already
			s += ".0"
		}
		return s
	}
	return "?"
}

// IsReg reports whether the operand reads a virtual register.
func (o Operand) IsReg() bool { return o.Kind == OperReg }

// ObjKind discriminates data object categories.
type ObjKind int

// Object categories. Global objects are statically sized and may carry
// initializers; heap objects stand for the storage allocated by one static
// malloc call site, whose total size is discovered by profiling.
const (
	ObjGlobal ObjKind = iota
	ObjHeap
)

func (k ObjKind) String() string {
	if k == ObjGlobal {
		return "global"
	}
	return "heap"
}

// Object is a data object: a named global variable or a heap allocation
// site. Objects are the unit of data partitioning — each object is assigned
// exactly one home cluster memory by the data partitioner.
type Object struct {
	ID   int     // dense index within the module
	Name string  // source name, or "malloc@f:N" for heap sites
	Kind ObjKind // global or heap
	Size int64   // bytes; for heap sites, filled from the profile
	// Init holds initial word values for globals (8 bytes per word);
	// missing words are zero. Floats are stored via FloatInit.
	Init      []int64
	FloatInit []float64 // parallel to Init when IsFloat
	IsFloat   bool      // element interpretation for initializers
}

// Words returns the object's size in 8-byte words, rounding up.
func (o *Object) Words() int64 { return (o.Size + 7) / 8 }

func (o *Object) String() string {
	return fmt.Sprintf("%s %s[%d bytes]", o.Kind, o.Name, o.Size)
}

// Op is one IR operation. Ops are identified within their function by a
// dense ID assigned by the builder and kept stable by analyses.
type Op struct {
	ID     int
	Opcode Opcode
	Dst    VReg // NoReg when the op defines nothing
	Args   []Operand

	// Obj is the referenced global for OpAddr.
	Obj *Object
	// MallocSite is the heap object for OpMalloc.
	MallocSite *Object
	// Callee names the target function for OpCall.
	Callee string

	// Block is the containing basic block (maintained by the builder).
	Block *Block

	// MayAccess lists the IDs of data objects this load/store/malloc may
	// touch; populated by the points-to analysis and consumed by the
	// partitioners. Sorted ascending.
	MayAccess []int
}

// UsedRegs appends the virtual registers read by the op to dst and returns
// the result.
func (op *Op) UsedRegs(dst []VReg) []VReg {
	for _, a := range op.Args {
		if a.Kind == OperReg {
			dst = append(dst, a.Reg)
		}
	}
	return dst
}

// HasDst reports whether this op defines a register.
func (op *Op) HasDst() bool { return op.Dst != NoReg }

func (op *Op) String() string {
	s := ""
	if op.Dst != NoReg {
		s = fmt.Sprintf("v%d = ", op.Dst)
	}
	s += op.Opcode.String()
	switch op.Opcode {
	case OpAddr:
		s += fmt.Sprintf(" @%d", op.Obj.ID) // object table gives the name
	case OpMalloc:
		s += fmt.Sprintf(" @%d,", op.MallocSite.ID)
	case OpCall:
		s += " " + op.Callee
		if len(op.Args) > 0 {
			s += ","
		}
	}
	if op.Opcode != OpAddr {
		for i, a := range op.Args {
			if i == 0 {
				s += " "
			} else {
				s += ", "
			}
			s += a.String()
		}
	}
	if op.Opcode == OpBr && op.Block != nil && len(op.Block.Succs) > 0 {
		s += fmt.Sprintf(" b%d", op.Block.Succs[0].ID)
	}
	if op.Opcode == OpBrCond && op.Block != nil && len(op.Block.Succs) > 1 {
		s += fmt.Sprintf(", b%d, b%d", op.Block.Succs[0].ID, op.Block.Succs[1].ID)
	}
	return s
}

// Block is a basic block: a maximal straight-line op sequence ended by a
// terminator. Succs holds the control-flow successors in branch order
// (taken, fallthrough for BrCond).
type Block struct {
	ID    int
	Ops   []*Op
	Succs []*Block
	Preds []*Block
	Func  *Func
}

// Terminator returns the block's final op, or nil for an empty block.
func (b *Block) Terminator() *Op {
	if len(b.Ops) == 0 {
		return nil
	}
	return b.Ops[len(b.Ops)-1]
}

func (b *Block) String() string { return fmt.Sprintf("b%d", b.ID) }

// Func is one function: a CFG of basic blocks over a private virtual
// register file. Registers 0..NParams-1 receive the arguments.
type Func struct {
	Name    string
	NParams int
	NRegs   int // number of virtual registers used
	Blocks  []*Block
	Module  *Module
	NOps    int // number of op IDs allocated (dense 0..NOps-1)
}

// Entry returns the function's entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// OpsByID returns a dense slice mapping op ID to op.
func (f *Func) OpsByID() []*Op {
	ops := make([]*Op, f.NOps)
	for _, b := range f.Blocks {
		for _, op := range b.Ops {
			ops[op.ID] = op
		}
	}
	return ops
}

// Module is a whole program: functions plus the data objects (globals and
// heap allocation sites) they manipulate.
type Module struct {
	Name    string
	Funcs   []*Func
	Objects []*Object // dense by Object.ID; globals first, then heap sites
	funcIdx map[string]*Func
}

// NewModule creates an empty module.
func NewModule(name string) *Module {
	return &Module{Name: name, funcIdx: make(map[string]*Func)}
}

// Func looks up a function by name, returning nil when absent.
func (m *Module) Func(name string) *Func { return m.funcIdx[name] }

// AddFunc appends a function to the module and indexes it by name.
func (m *Module) AddFunc(f *Func) {
	f.Module = m
	m.Funcs = append(m.Funcs, f)
	if m.funcIdx == nil {
		m.funcIdx = make(map[string]*Func)
	}
	m.funcIdx[f.Name] = f
}

// AddObject appends a data object, assigning its dense ID.
func (m *Module) AddObject(o *Object) *Object {
	o.ID = len(m.Objects)
	m.Objects = append(m.Objects, o)
	return o
}

// Globals returns the module's global objects.
func (m *Module) Globals() []*Object {
	var gs []*Object
	for _, o := range m.Objects {
		if o.Kind == ObjGlobal {
			gs = append(gs, o)
		}
	}
	return gs
}
