package ir

import (
	"fmt"
	"sort"
	"strings"
)

// Print renders the whole module in a stable textual form suitable for
// golden tests and debugging.
func Print(m *Module) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s\n", m.Name)
	for _, o := range m.Objects {
		fmt.Fprintf(&sb, "object #%d %s %s %d", o.ID, o.Kind, o.Name, o.Size)
		if o.IsFloat {
			sb.WriteString(" float")
		}
		if len(o.Init) > 0 || len(o.FloatInit) > 0 {
			sb.WriteString(" = {")
			if o.IsFloat {
				for i, v := range o.FloatInit {
					if i > 0 {
						sb.WriteString(", ")
					}
					fmt.Fprintf(&sb, "%g", v)
				}
			} else {
				for i, v := range o.Init {
					if i > 0 {
						sb.WriteString(", ")
					}
					fmt.Fprintf(&sb, "%d", v)
				}
			}
			sb.WriteString("}")
		}
		sb.WriteString("\n")
	}
	for _, f := range m.Funcs {
		sb.WriteString(PrintFunc(f))
	}
	return sb.String()
}

// PrintFunc renders one function.
func PrintFunc(f *Func) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s(%d params, %d regs)\n", f.Name, f.NParams, f.NRegs)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "b%d:", b.ID)
		if len(b.Preds) > 0 {
			ids := make([]int, len(b.Preds))
			for i, p := range b.Preds {
				ids[i] = p.ID
			}
			sort.Ints(ids)
			sb.WriteString("  ; preds")
			for _, id := range ids {
				fmt.Fprintf(&sb, " b%d", id)
			}
		}
		sb.WriteString("\n")
		for _, op := range b.Ops {
			fmt.Fprintf(&sb, "  %s\n", op)
		}
	}
	return sb.String()
}
