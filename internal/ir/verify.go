package ir

import "fmt"

// Verify checks module-level structural invariants:
//
//   - every function has an entry block and every block ends in exactly one
//     terminator with the successor count its opcode requires;
//   - operand registers are within the function's register file;
//   - pred/succ edges are mutually consistent;
//   - calls name functions that exist in the module;
//   - OpAddr references a registered object and OpMalloc carries a heap site.
//
// It returns the first violation found, or nil.
func Verify(m *Module) error {
	for _, f := range m.Funcs {
		if err := verifyFunc(m, f); err != nil {
			return fmt.Errorf("func %s: %w", f.Name, err)
		}
	}
	return nil
}

func verifyFunc(m *Module, f *Func) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("no blocks")
	}
	seenID := make(map[int]bool)
	for _, b := range f.Blocks {
		if b.Func != f {
			return fmt.Errorf("b%d: bad Func back-pointer", b.ID)
		}
		t := b.Terminator()
		if t == nil || !t.Opcode.IsTerminator() {
			return fmt.Errorf("b%d: missing terminator", b.ID)
		}
		for i, op := range b.Ops {
			if op.Block != b {
				return fmt.Errorf("b%d op %d: bad Block back-pointer", b.ID, i)
			}
			if seenID[op.ID] {
				return fmt.Errorf("b%d: duplicate op id %d", b.ID, op.ID)
			}
			seenID[op.ID] = true
			if op.ID < 0 || op.ID >= f.NOps {
				return fmt.Errorf("b%d: op id %d out of range [0,%d)", b.ID, op.ID, f.NOps)
			}
			if i != len(b.Ops)-1 && op.Opcode.IsTerminator() {
				return fmt.Errorf("b%d: terminator %s not last", b.ID, op.Opcode)
			}
			if op.Dst != NoReg && (op.Dst < 0 || int(op.Dst) >= f.NRegs) {
				return fmt.Errorf("b%d: dst v%d out of range", b.ID, op.Dst)
			}
			if op.Dst != NoReg && !op.Opcode.HasDst() {
				return fmt.Errorf("b%d: %s cannot define v%d", b.ID, op.Opcode, op.Dst)
			}
			for _, a := range op.Args {
				if a.Kind == OperReg && (a.Reg < 0 || int(a.Reg) >= f.NRegs) {
					return fmt.Errorf("b%d: use of v%d out of range", b.ID, a.Reg)
				}
			}
			if err := verifyOpShape(m, op); err != nil {
				return fmt.Errorf("b%d: %s: %w", b.ID, op, err)
			}
		}
		switch t.Opcode {
		case OpBr:
			if len(b.Succs) != 1 {
				return fmt.Errorf("b%d: br needs 1 successor, has %d", b.ID, len(b.Succs))
			}
		case OpBrCond:
			if len(b.Succs) != 2 {
				return fmt.Errorf("b%d: brcond needs 2 successors, has %d", b.ID, len(b.Succs))
			}
		case OpRet:
			if len(b.Succs) != 0 {
				return fmt.Errorf("b%d: ret must have no successors", b.ID)
			}
		}
		for _, s := range b.Succs {
			if !contains(s.Preds, b) {
				return fmt.Errorf("b%d -> b%d: successor missing pred back-edge", b.ID, s.ID)
			}
		}
		for _, p := range b.Preds {
			if !contains(p.Succs, b) {
				return fmt.Errorf("b%d: pred b%d missing succ edge", b.ID, p.ID)
			}
		}
	}
	return nil
}

func verifyOpShape(m *Module, op *Op) error {
	switch op.Opcode {
	case OpAddr:
		if op.Obj == nil {
			return fmt.Errorf("addr without object")
		}
		if op.Obj.ID < 0 || op.Obj.ID >= len(m.Objects) || m.Objects[op.Obj.ID] != op.Obj {
			return fmt.Errorf("addr of unregistered object %q", op.Obj.Name)
		}
	case OpMalloc:
		if op.MallocSite == nil {
			return fmt.Errorf("malloc without site object")
		}
		if op.MallocSite.Kind != ObjHeap {
			return fmt.Errorf("malloc site %q is not a heap object", op.MallocSite.Name)
		}
		if len(op.Args) != 1 {
			return fmt.Errorf("malloc needs 1 arg")
		}
	case OpLoad:
		if len(op.Args) != 1 {
			return fmt.Errorf("load needs 1 arg")
		}
	case OpStore:
		if len(op.Args) != 2 {
			return fmt.Errorf("store needs 2 args")
		}
	case OpCall:
		if m.Func(op.Callee) == nil {
			return fmt.Errorf("call of unknown function %q", op.Callee)
		}
		if got, want := len(op.Args), m.Func(op.Callee).NParams; got != want {
			return fmt.Errorf("call %s: %d args, want %d", op.Callee, got, want)
		}
	case OpBrCond:
		if len(op.Args) != 1 {
			return fmt.Errorf("brcond needs 1 arg")
		}
	case OpRet:
		if len(op.Args) > 1 {
			return fmt.Errorf("ret takes at most 1 arg")
		}
	case OpNeg, OpNot, OpFNeg, OpIToF, OpFToI, OpMov:
		if len(op.Args) != 1 {
			return fmt.Errorf("%s needs 1 arg", op.Opcode)
		}
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpCmpEQ, OpCmpNE, OpCmpLT, OpCmpLE, OpCmpGT, OpCmpGE,
		OpFAdd, OpFSub, OpFMul, OpFDiv,
		OpFCmpEQ, OpFCmpNE, OpFCmpLT, OpFCmpLE, OpFCmpGT, OpFCmpGE:
		if len(op.Args) != 2 {
			return fmt.Errorf("%s needs 2 args", op.Opcode)
		}
	}
	return nil
}

func contains(bs []*Block, b *Block) bool {
	for _, x := range bs {
		if x == b {
			return true
		}
	}
	return false
}
