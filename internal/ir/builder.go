package ir

import "fmt"

// Builder incrementally constructs a Func. It tracks the current insertion
// block, allocates virtual registers and op IDs, and wires CFG edges.
type Builder struct {
	F   *Func
	cur *Block
}

// NewBuilder creates a function with the given name and parameter count
// inside module m and returns a builder positioned at its entry block.
func NewBuilder(m *Module, name string, nparams int) *Builder {
	f := &Func{Name: name, NParams: nparams, NRegs: nparams}
	m.AddFunc(f)
	b := &Builder{F: f}
	b.cur = b.NewBlock()
	return b
}

// NewBlock appends a fresh, unlinked basic block to the function.
func (bd *Builder) NewBlock() *Block {
	b := &Block{ID: len(bd.F.Blocks), Func: bd.F}
	bd.F.Blocks = append(bd.F.Blocks, b)
	return b
}

// SetBlock moves the insertion point to block b.
func (bd *Builder) SetBlock(b *Block) { bd.cur = b }

// Block returns the current insertion block.
func (bd *Builder) Block() *Block { return bd.cur }

// NewReg allocates a fresh virtual register.
func (bd *Builder) NewReg() VReg {
	r := VReg(bd.F.NRegs)
	bd.F.NRegs++
	return r
}

func (bd *Builder) emit(op *Op) *Op {
	// Invariant: builder misuse (emitting with no block, or past a
	// terminator) is a bug in the lowerer, never an input property, so it
	// panics; the mcpart facade contains any escape into *InternalError.
	if bd.cur == nil {
		panic("ir: emit with no current block")
	}
	if t := bd.cur.Terminator(); t != nil && t.Opcode.IsTerminator() {
		panic(fmt.Sprintf("ir: emit %s after terminator in b%d of %s",
			op.Opcode, bd.cur.ID, bd.F.Name))
	}
	op.ID = bd.F.NOps
	bd.F.NOps++
	op.Block = bd.cur
	bd.cur.Ops = append(bd.cur.Ops, op)
	return op
}

// Emit appends an op with a fresh destination register and returns that
// register. It panics for opcodes that define nothing.
func (bd *Builder) Emit(opc Opcode, args ...Operand) VReg {
	// Invariant: the opcode table is closed; a dst-less opcode here is a
	// caller bug, not reachable from source programs.
	if !opc.HasDst() {
		panic(fmt.Sprintf("ir: Emit of %s which has no destination", opc))
	}
	dst := bd.NewReg()
	bd.emit(&Op{Opcode: opc, Dst: dst, Args: args})
	return dst
}

// EmitTo appends an op writing its result into the caller-chosen register
// dst (used for non-SSA locals, whose register is fixed across assignments).
func (bd *Builder) EmitTo(dst VReg, opc Opcode, args ...Operand) VReg {
	// Invariant: same closed-opcode-table argument as Emit.
	if !opc.HasDst() {
		panic(fmt.Sprintf("ir: EmitTo of %s which has no destination", opc))
	}
	bd.emit(&Op{Opcode: opc, Dst: dst, Args: args})
	return dst
}

// CallTo emits a call whose result is written to dst (NoReg to discard).
func (bd *Builder) CallTo(dst VReg, callee string, args ...Operand) {
	bd.emit(&Op{Opcode: OpCall, Dst: dst, Args: args, Callee: callee})
}

// EmitVoid appends an op that defines no register (store, branches).
func (bd *Builder) EmitVoid(opc Opcode, args ...Operand) *Op {
	return bd.emit(&Op{Opcode: opc, Dst: NoReg, Args: args})
}

// Addr emits an address-of operation for global obj.
func (bd *Builder) Addr(obj *Object) VReg {
	dst := bd.NewReg()
	bd.emit(&Op{Opcode: OpAddr, Dst: dst, Obj: obj})
	return dst
}

// Malloc emits a heap allocation of size bytes attributed to site.
func (bd *Builder) Malloc(site *Object, size Operand) VReg {
	dst := bd.NewReg()
	bd.emit(&Op{Opcode: OpMalloc, Dst: dst, Args: []Operand{size}, MallocSite: site})
	return dst
}

// Load emits a word load from addr.
func (bd *Builder) Load(addr Operand) VReg { return bd.Emit(OpLoad, addr) }

// Store emits a word store of val to addr.
func (bd *Builder) Store(addr, val Operand) { bd.EmitVoid(OpStore, addr, val) }

// Call emits a call; dst is NoReg when the result is unused.
func (bd *Builder) Call(callee string, wantResult bool, args ...Operand) VReg {
	dst := NoReg
	if wantResult {
		dst = bd.NewReg()
	}
	bd.emit(&Op{Opcode: OpCall, Dst: dst, Args: args, Callee: callee})
	return dst
}

// Br terminates the current block with an unconditional branch to target.
func (bd *Builder) Br(target *Block) {
	bd.EmitVoid(OpBr)
	link(bd.cur, target)
}

// BrCond terminates the current block with a conditional branch: to ifTrue
// when cond is nonzero, else to ifFalse.
func (bd *Builder) BrCond(cond Operand, ifTrue, ifFalse *Block) {
	bd.EmitVoid(OpBrCond, cond)
	link(bd.cur, ifTrue)
	link(bd.cur, ifFalse)
}

// Ret terminates the current block with a return of the given values
// (zero or one operand).
func (bd *Builder) Ret(vals ...Operand) {
	// Invariant: multi-value returns do not exist in the IR; the lowerer
	// can never produce one from a type-checked program.
	if len(vals) > 1 {
		panic("ir: Ret accepts at most one value")
	}
	bd.EmitVoid(OpRet, vals...)
}

func link(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}
