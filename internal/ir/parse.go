package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseModule parses the textual form produced by Print back into a
// Module, enabling golden tests and offline inspection of compiled IR.
// Print and ParseModule round-trip: ParseModule(Print(m)) prints
// identically to m.
func ParseModule(text string) (*Module, error) {
	p := &irParser{}
	lines := strings.Split(text, "\n")
	i := 0
	skipBlank := func() {
		for i < len(lines) && strings.TrimSpace(lines[i]) == "" {
			i++
		}
	}
	skipBlank()
	if i >= len(lines) || !strings.HasPrefix(lines[i], "module ") {
		return nil, fmt.Errorf("ir: expected 'module NAME' header")
	}
	p.mod = NewModule(strings.TrimSpace(strings.TrimPrefix(lines[i], "module ")))
	i++
	// Objects.
	for {
		skipBlank()
		if i >= len(lines) || !strings.HasPrefix(lines[i], "object ") {
			break
		}
		if err := p.parseObject(lines[i]); err != nil {
			return nil, err
		}
		i++
	}
	// Functions: gather each function's lines, then parse in two passes so
	// calls can be verified after all signatures exist.
	type rawFunc struct {
		header string
		body   []string
	}
	var raws []rawFunc
	for {
		skipBlank()
		if i >= len(lines) {
			break
		}
		if !strings.HasPrefix(lines[i], "func ") {
			return nil, fmt.Errorf("ir: unexpected line %q", lines[i])
		}
		rf := rawFunc{header: lines[i]}
		i++
		for i < len(lines) && !strings.HasPrefix(lines[i], "func ") {
			if strings.TrimSpace(lines[i]) != "" {
				rf.body = append(rf.body, lines[i])
			}
			i++
		}
		raws = append(raws, rf)
	}
	for _, rf := range raws {
		if err := p.parseFunc(rf.header, rf.body); err != nil {
			return nil, err
		}
	}
	if err := Verify(p.mod); err != nil {
		return nil, fmt.Errorf("ir: parsed module invalid: %w", err)
	}
	return p.mod, nil
}

type irParser struct {
	mod *Module
}

// parseObject handles: object #N kind name size [float] [= {a, b, ...}]
func (p *irParser) parseObject(line string) error {
	rest := strings.TrimPrefix(line, "object ")
	init := ""
	if idx := strings.Index(rest, " = {"); idx >= 0 {
		init = rest[idx+4:]
		init = strings.TrimSuffix(strings.TrimSpace(init), "}")
		rest = rest[:idx]
	}
	fields := strings.Fields(rest)
	if len(fields) < 4 {
		return fmt.Errorf("ir: bad object line %q", line)
	}
	id, err := strconv.Atoi(strings.TrimPrefix(fields[0], "#"))
	if err != nil || id != len(p.mod.Objects) {
		return fmt.Errorf("ir: object ids must be dense, got %q", fields[0])
	}
	o := &Object{Name: fields[2]}
	switch fields[1] {
	case "global":
		o.Kind = ObjGlobal
	case "heap":
		o.Kind = ObjHeap
	default:
		return fmt.Errorf("ir: unknown object kind %q", fields[1])
	}
	if o.Size, err = strconv.ParseInt(fields[3], 10, 64); err != nil {
		return fmt.Errorf("ir: bad object size in %q", line)
	}
	if len(fields) > 4 {
		if fields[4] != "float" {
			return fmt.Errorf("ir: unexpected object suffix %q", fields[4])
		}
		o.IsFloat = true
	}
	if init != "" {
		for _, tok := range strings.Split(init, ",") {
			tok = strings.TrimSpace(tok)
			if o.IsFloat {
				f, err := strconv.ParseFloat(tok, 64)
				if err != nil {
					return fmt.Errorf("ir: bad float init %q", tok)
				}
				o.FloatInit = append(o.FloatInit, f)
				o.Init = append(o.Init, 0)
			} else {
				v, err := strconv.ParseInt(tok, 10, 64)
				if err != nil {
					return fmt.Errorf("ir: bad int init %q", tok)
				}
				o.Init = append(o.Init, v)
			}
		}
	}
	p.mod.AddObject(o)
	return nil
}

// parseFunc handles: func name(N params, M regs) followed by blocks.
func (p *irParser) parseFunc(header string, body []string) error {
	var name string
	var nparams, nregs int
	if _, err := fmt.Sscanf(header, "func %s", &name); err != nil {
		return fmt.Errorf("ir: bad func header %q", header)
	}
	open := strings.Index(name, "(")
	if open < 0 {
		return fmt.Errorf("ir: bad func header %q", header)
	}
	sig := header[strings.Index(header, "(")+1:]
	if _, err := fmt.Sscanf(sig, "%d params, %d regs", &nparams, &nregs); err != nil {
		return fmt.Errorf("ir: bad func signature %q", header)
	}
	name = name[:open]

	f := &Func{Name: name, NParams: nparams, NRegs: nregs}
	p.mod.AddFunc(f)

	// First pass: create blocks in order of their labels.
	for _, line := range body {
		t := strings.TrimSpace(line)
		if strings.HasPrefix(line, "b") && strings.Contains(t, ":") && !strings.HasPrefix(line, " ") {
			f.Blocks = append(f.Blocks, &Block{ID: len(f.Blocks), Func: f})
		}
	}
	if len(f.Blocks) == 0 {
		return fmt.Errorf("ir: func %s has no blocks", name)
	}
	// Second pass: ops.
	cur := -1
	for _, line := range body {
		if !strings.HasPrefix(line, " ") {
			// Block label line, e.g. "b3:  ; preds b1 b2".
			label := strings.SplitN(strings.TrimSpace(line), ":", 2)[0]
			id, err := strconv.Atoi(strings.TrimPrefix(label, "b"))
			if err != nil || id != cur+1 {
				return fmt.Errorf("ir: unexpected block label %q", line)
			}
			cur = id
			continue
		}
		if cur < 0 {
			return fmt.Errorf("ir: op before first block in %s", name)
		}
		op, err := p.parseOp(f, strings.TrimSpace(line))
		if err != nil {
			return fmt.Errorf("ir: func %s b%d: %w", name, cur, err)
		}
		b := f.Blocks[cur]
		op.ID = f.NOps
		f.NOps++
		op.Block = b
		b.Ops = append(b.Ops, op)
	}
	return nil
}

func (p *irParser) parseOp(f *Func, line string) (*Op, error) {
	op := &Op{Dst: NoReg}
	// Optional "vN = " destination.
	if strings.HasPrefix(line, "v") {
		if eq := strings.Index(line, " = "); eq > 0 {
			d, err := strconv.Atoi(line[1:eq])
			if err == nil {
				op.Dst = VReg(d)
				line = line[eq+3:]
			}
		}
	}
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil, fmt.Errorf("empty op")
	}
	opc, ok := opcodeByName(fields[0])
	if !ok {
		return nil, fmt.Errorf("unknown opcode %q", fields[0])
	}
	op.Opcode = opc
	rest := strings.TrimSpace(strings.TrimPrefix(line, fields[0]))

	switch opc {
	case OpAddr:
		id, err := strconv.Atoi(strings.TrimPrefix(rest, "@"))
		if err != nil || id < 0 || id >= len(p.mod.Objects) {
			return nil, fmt.Errorf("bad addr target %q", rest)
		}
		op.Obj = p.mod.Objects[id]
		return op, nil
	case OpMalloc:
		parts := strings.SplitN(rest, ",", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("malloc needs '@site, size'")
		}
		id, err := strconv.Atoi(strings.TrimPrefix(strings.TrimSpace(parts[0]), "@"))
		if err != nil || id < 0 || id >= len(p.mod.Objects) {
			return nil, fmt.Errorf("bad malloc site %q", parts[0])
		}
		op.MallocSite = p.mod.Objects[id]
		rest = strings.TrimSpace(parts[1])
	case OpCall:
		parts := strings.SplitN(rest, ",", 2)
		nameEnd := strings.Fields(parts[0])
		if len(nameEnd) == 0 {
			return nil, fmt.Errorf("call without callee")
		}
		op.Callee = nameEnd[0]
		if len(parts) == 2 {
			rest = strings.TrimSpace(parts[1])
		} else {
			rest = strings.TrimSpace(strings.TrimPrefix(parts[0], op.Callee))
		}
	case OpBr:
		// "br b3": successor linked from the label.
		return op, p.linkSuccs(f, op, rest, 1)
	case OpBrCond:
		// "brcond v1, b2, b3".
		parts := strings.SplitN(rest, ",", 2)
		a, err := parseOperand(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, err
		}
		op.Args = []Operand{a}
		if len(parts) != 2 {
			return nil, fmt.Errorf("brcond needs targets")
		}
		return op, p.linkSuccs(f, op, strings.TrimSpace(parts[1]), 2)
	}
	if rest != "" {
		for _, tok := range strings.Split(rest, ",") {
			a, err := parseOperand(strings.TrimSpace(tok))
			if err != nil {
				return nil, err
			}
			op.Args = append(op.Args, a)
		}
	}
	return op, nil
}

// linkSuccs parses "bN[, bM]" branch targets and wires CFG edges. The op
// must already be destined for the block currently being filled, which is
// the last block with a smaller count... successors are linked via the
// containing block when the op is appended; here we record them directly.
func (p *irParser) linkSuccs(f *Func, op *Op, rest string, want int) error {
	targets := strings.Split(rest, ",")
	if len(targets) != want {
		return fmt.Errorf("branch wants %d targets, got %q", want, rest)
	}
	// The op has not been appended yet; the caller appends it to the
	// current block, which is the last block that has received ops or the
	// next empty one. We defer edge wiring by stashing the target ids in
	// Args-free storage: use a small closure via the block pointer instead.
	// Simplest correct approach: wire edges now using the block the caller
	// will append to — identified as the first block whose terminator is
	// still missing.
	var cur *Block
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t == nil || !t.Opcode.IsTerminator() {
			cur = b
			break
		}
	}
	if cur == nil {
		return fmt.Errorf("no open block for branch")
	}
	for _, t := range targets {
		t = strings.TrimSpace(t)
		id, err := strconv.Atoi(strings.TrimPrefix(t, "b"))
		if err != nil || id < 0 || id >= len(f.Blocks) {
			return fmt.Errorf("bad branch target %q", t)
		}
		to := f.Blocks[id]
		cur.Succs = append(cur.Succs, to)
		to.Preds = append(to.Preds, cur)
	}
	return nil
}

func parseOperand(tok string) (Operand, error) {
	if tok == "" {
		return Operand{}, fmt.Errorf("empty operand")
	}
	if strings.HasPrefix(tok, "v") {
		if r, err := strconv.Atoi(tok[1:]); err == nil {
			return Reg(VReg(r)), nil
		}
	}
	if strings.ContainsAny(tok, ".eE") && !strings.HasPrefix(tok, "0x") {
		if f, err := strconv.ParseFloat(tok, 64); err == nil {
			return ConstFloat(f), nil
		}
	}
	if v, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return ConstInt(v), nil
	}
	if f, err := strconv.ParseFloat(tok, 64); err == nil { // NaN, Inf
		return ConstFloat(f), nil
	}
	return Operand{}, fmt.Errorf("bad operand %q", tok)
}

func opcodeByName(name string) (Opcode, bool) {
	for o := Opcode(1); o < numOpcodes; o++ {
		if opcodeNames[o] == name {
			return o, true
		}
	}
	return OpInvalid, false
}
