package ir

import (
	"strings"
	"testing"
)

func buildRich(t *testing.T) *Module {
	t.Helper()
	m := NewModule("rich")
	tbl := m.AddObject(&Object{Name: "tbl", Kind: ObjGlobal, Size: 24, Init: []int64{1, -2, 3}})
	coef := m.AddObject(&Object{
		Name: "coef", Kind: ObjGlobal, Size: 16, IsFloat: true,
		Init: []int64{0, 0}, FloatInit: []float64{1.5, 2},
	})
	site := m.AddObject(&Object{Name: "malloc@main:0", Kind: ObjHeap})

	g := NewBuilder(m, "helper", 2)
	sum := g.Emit(OpAdd, Reg(0), Reg(1))
	g.Ret(Reg(sum))

	bd := NewBuilder(m, "main", 0)
	loop := bd.NewBlock()
	body := bd.NewBlock()
	exit := bd.NewBlock()
	a := bd.Addr(tbl)
	buf := bd.Malloc(site, ConstInt(64))
	i := bd.NewReg()
	bd.EmitTo(i, OpMov, ConstInt(0))
	bd.Br(loop)
	bd.SetBlock(loop)
	c := bd.Emit(OpCmpLT, Reg(i), ConstInt(3))
	bd.BrCond(Reg(c), body, exit)
	bd.SetBlock(body)
	off := bd.Emit(OpShl, Reg(i), ConstInt(3))
	addr := bd.Emit(OpAdd, Reg(a), Reg(off))
	v := bd.Load(Reg(addr))
	fv := bd.Emit(OpIToF, Reg(v))
	fr := bd.Emit(OpFMul, Reg(fv), ConstFloat(2.5))
	iv := bd.Emit(OpFToI, Reg(fr))
	sum2 := bd.Call("helper", true, Reg(iv), ConstInt(7))
	bd.Store(Reg(buf), Reg(sum2))
	bd.EmitTo(i, OpAdd, Reg(i), ConstInt(1))
	bd.Br(loop)
	bd.SetBlock(exit)
	ca := bd.Addr(coef)
	cv := bd.Load(Reg(ca))
	bd.EmitVoid(OpStore, Reg(buf), Reg(cv))
	bd.Ret(Reg(i))
	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParseRoundTrip(t *testing.T) {
	m := buildRich(t)
	text := Print(m)
	m2, err := ParseModule(text)
	if err != nil {
		t.Fatalf("ParseModule: %v\n%s", err, text)
	}
	text2 := Print(m2)
	if text != text2 {
		t.Fatalf("round trip differs:\n--- original ---\n%s\n--- reparsed ---\n%s", text, text2)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	bad := []string{
		"",
		"object #0 global x 8",               // no module header
		"module m\nobject #1 global x 8",     // non-dense object id
		"module m\nobject #0 weird x 8",      // bad kind
		"module m\nfunc f(0 params, 0 regs)", // no blocks
		"module m\nfunc f(0 params, 0 regs)\nb0:\n  frobnicate", // bad opcode
		"module m\nfunc f(0 params, 0 regs)\nb0:\n  br b7",      // bad target
	}
	for _, src := range bad {
		if _, err := ParseModule(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestParseValidatesSemantics(t *testing.T) {
	// A structurally parseable module that fails Verify (missing ret).
	src := "module m\nfunc f(0 params, 1 regs)\nb0:\n  v0 = add 1, 2"
	if _, err := ParseModule(src); err == nil {
		t.Error("accepted function without terminator")
	}
}

func TestParseFloatMarkers(t *testing.T) {
	src := strings.Join([]string{
		"module m",
		"object #0 global f 8 float = {2}",
		"func main(0 params, 1 regs)",
		"b0:",
		"  v0 = fadd 1.0, 2.0",
		"  ret v0",
	}, "\n")
	m, err := ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Objects[0].IsFloat || m.Objects[0].FloatInit[0] != 2 {
		t.Errorf("float object parsed wrong: %+v", m.Objects[0])
	}
	op := m.Func("main").Blocks[0].Ops[0]
	if op.Args[0].Kind != OperFloat || op.Args[1].Kind != OperFloat {
		t.Errorf("float operands parsed as %v", op.Args)
	}
}
