package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

// buildSimple constructs: func f(a) { if a < 10 goto then else els;
// then: r = a+1; ret r; els: ret a }
func buildSimple(t *testing.T) (*Module, *Func) {
	t.Helper()
	m := NewModule("simple")
	bd := NewBuilder(m, "f", 1)
	then := bd.NewBlock()
	els := bd.NewBlock()
	cond := bd.Emit(OpCmpLT, Reg(0), ConstInt(10))
	bd.BrCond(Reg(cond), then, els)
	bd.SetBlock(then)
	r := bd.Emit(OpAdd, Reg(0), ConstInt(1))
	bd.Ret(Reg(r))
	bd.SetBlock(els)
	bd.Ret(Reg(0))
	if err := Verify(m); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return m, m.Func("f")
}

func TestBuilderBasic(t *testing.T) {
	_, f := buildSimple(t)
	if len(f.Blocks) != 3 {
		t.Fatalf("got %d blocks, want 3", len(f.Blocks))
	}
	if f.NParams != 1 || f.NRegs != 3 {
		t.Fatalf("NParams=%d NRegs=%d, want 1,3", f.NParams, f.NRegs)
	}
	entry := f.Entry()
	if len(entry.Succs) != 2 {
		t.Fatalf("entry succs = %d, want 2", len(entry.Succs))
	}
	if entry.Succs[0].ID != 1 || entry.Succs[1].ID != 2 {
		t.Fatalf("succ order wrong: %v %v", entry.Succs[0], entry.Succs[1])
	}
	for _, s := range entry.Succs {
		if len(s.Preds) != 1 || s.Preds[0] != entry {
			t.Fatalf("pred back-edge missing on b%d", s.ID)
		}
	}
}

func TestOpIDsDense(t *testing.T) {
	_, f := buildSimple(t)
	ops := f.OpsByID()
	if len(ops) != f.NOps {
		t.Fatalf("OpsByID length %d != NOps %d", len(ops), f.NOps)
	}
	for i, op := range ops {
		if op == nil {
			t.Fatalf("op id %d missing", i)
		}
		if op.ID != i {
			t.Fatalf("op id mismatch: slot %d holds id %d", i, op.ID)
		}
	}
}

func TestVerifyCatchesMissingTerminator(t *testing.T) {
	m := NewModule("bad")
	bd := NewBuilder(m, "f", 0)
	bd.Emit(OpAdd, ConstInt(1), ConstInt(2))
	if err := Verify(m); err == nil {
		t.Fatal("Verify accepted block without terminator")
	}
}

func TestVerifyCatchesBadReg(t *testing.T) {
	m := NewModule("bad")
	bd := NewBuilder(m, "f", 0)
	bd.Ret()
	// Corrupt: use a register beyond NRegs.
	f := m.Func("f")
	f.Blocks[0].Ops = append([]*Op{{
		ID: f.NOps, Opcode: OpMov, Dst: NoReg + 1,
		Args: []Operand{Reg(99)}, Block: f.Blocks[0],
	}}, f.Blocks[0].Ops...)
	f.NOps++
	f.NRegs = 1
	if err := Verify(m); err == nil {
		t.Fatal("Verify accepted out-of-range register use")
	}
}

func TestVerifyCatchesUnknownCall(t *testing.T) {
	m := NewModule("bad")
	bd := NewBuilder(m, "f", 0)
	bd.Call("nosuch", false)
	bd.Ret()
	if err := Verify(m); err == nil {
		t.Fatal("Verify accepted call to unknown function")
	}
}

func TestVerifyCatchesArityMismatch(t *testing.T) {
	m := NewModule("bad")
	g := NewBuilder(m, "g", 2)
	g.Ret(ConstInt(0))
	bd := NewBuilder(m, "f", 0)
	bd.Call("g", false, ConstInt(1)) // g wants 2 args
	bd.Ret()
	if err := Verify(m); err == nil {
		t.Fatal("Verify accepted call arity mismatch")
	}
}

func TestEmitAfterTerminatorPanics(t *testing.T) {
	m := NewModule("p")
	bd := NewBuilder(m, "f", 0)
	bd.Ret()
	defer func() {
		if recover() == nil {
			t.Fatal("emit after terminator did not panic")
		}
	}()
	bd.Emit(OpAdd, ConstInt(1), ConstInt(2))
}

func TestObjectRegistration(t *testing.T) {
	m := NewModule("obj")
	a := m.AddObject(&Object{Name: "a", Kind: ObjGlobal, Size: 16})
	b := m.AddObject(&Object{Name: "b", Kind: ObjHeap})
	if a.ID != 0 || b.ID != 1 {
		t.Fatalf("object IDs = %d,%d, want 0,1", a.ID, b.ID)
	}
	gs := m.Globals()
	if len(gs) != 1 || gs[0] != a {
		t.Fatalf("Globals() = %v", gs)
	}
	if a.Words() != 2 {
		t.Fatalf("Words = %d, want 2", a.Words())
	}
	o := &Object{Size: 9}
	if o.Words() != 2 {
		t.Fatalf("Words(9 bytes) = %d, want 2", o.Words())
	}
}

func TestOpcodeClasses(t *testing.T) {
	cases := []struct {
		op                       Opcode
		mem, branch, term, float bool
	}{
		{OpAdd, false, false, false, false},
		{OpLoad, true, false, false, false},
		{OpStore, true, false, false, false},
		{OpMalloc, true, false, false, false},
		{OpBr, false, true, true, false},
		{OpBrCond, false, true, true, false},
		{OpCall, false, true, false, false},
		{OpRet, false, true, true, false},
		{OpFAdd, false, false, false, true},
		{OpIToF, false, false, false, true},
		{OpFCmpLT, false, false, false, true},
	}
	for _, c := range cases {
		if c.op.IsMem() != c.mem {
			t.Errorf("%s IsMem = %v", c.op, c.op.IsMem())
		}
		if c.op.IsBranch() != c.branch {
			t.Errorf("%s IsBranch = %v", c.op, c.op.IsBranch())
		}
		if c.op.IsTerminator() != c.term {
			t.Errorf("%s IsTerminator = %v", c.op, c.op.IsTerminator())
		}
		if c.op.IsFloat() != c.float {
			t.Errorf("%s IsFloat = %v", c.op, c.op.IsFloat())
		}
	}
}

func TestOpcodeStringsUniqueAndNamed(t *testing.T) {
	seen := make(map[string]Opcode)
	for o := OpAdd; o < numOpcodes; o++ {
		s := o.String()
		if s == "" || strings.HasPrefix(s, "opcode(") {
			t.Fatalf("opcode %d has no name", int(o))
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("opcodes %d and %d share name %q", prev, o, s)
		}
		seen[s] = o
	}
}

func TestOperandString(t *testing.T) {
	if got := Reg(3).String(); got != "v3" {
		t.Errorf("Reg(3) = %q", got)
	}
	if got := ConstInt(-7).String(); got != "-7" {
		t.Errorf("ConstInt(-7) = %q", got)
	}
	if got := ConstFloat(2.5).String(); got != "2.5" {
		t.Errorf("ConstFloat(2.5) = %q", got)
	}
}

func TestPrintContainsStructure(t *testing.T) {
	m, _ := buildSimple(t)
	m.AddObject(&Object{Name: "tbl", Kind: ObjGlobal, Size: 24, Init: []int64{1, 2, 3}})
	out := Print(m)
	for _, want := range []string{"module simple", "func f", "b0:", "brcond", "ret", "object #0 global tbl 24"} {
		if !strings.Contains(out, want) {
			t.Errorf("Print output missing %q:\n%s", want, out)
		}
	}
}

// Property: operand constructors round-trip their payloads.
func TestOperandRoundTripQuick(t *testing.T) {
	if err := quick.Check(func(i int64, f float64, r uint8) bool {
		oi := ConstInt(i)
		of := ConstFloat(f)
		or := Reg(VReg(r))
		return oi.Int == i && !oi.IsReg() &&
			of.Float == f || f != f && // NaN compares unequal; accept
			or.Reg == VReg(r) && or.IsReg()
	}, nil); err != nil {
		t.Error(err)
	}
}

// Property: UsedRegs returns exactly the register operands in order.
func TestUsedRegsQuick(t *testing.T) {
	if err := quick.Check(func(regs []uint8, ints []int16) bool {
		var args []Operand
		var want []VReg
		for i := 0; i < len(regs) || i < len(ints); i++ {
			if i < len(regs) {
				args = append(args, Reg(VReg(regs[i])))
				want = append(want, VReg(regs[i]))
			}
			if i < len(ints) {
				args = append(args, ConstInt(int64(ints[i])))
			}
		}
		op := &Op{Opcode: OpCall, Args: args, Dst: NoReg}
		got := op.UsedRegs(nil)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}
