package mclang

import (
	"strings"
	"testing"
)

// TestDiagnostics pins the position and wording quality of front-end error
// messages: every rejection must carry an exact line:column anchor and name
// the offending construct, because the cmd tools print these verbatim as
// their one-line failure diagnostics.
func TestDiagnostics(t *testing.T) {
	cases := []struct {
		name string
		src  string
		pos  string // exact "line:col" prefix
		subs []string
	}{
		{
			name: "undefined identifier",
			src:  "func main() int { return x; }",
			pos:  "1:26",
			subs: []string{"undefined identifier", `"x"`},
		},
		{
			name: "missing semicolon",
			src:  "func main() int { int i return i; }",
			pos:  "1:25",
			subs: []string{"expected ;", `"return"`},
		},
		{
			name: "dangling operator",
			src:  "func main() int { return 1 +; }",
			pos:  "1:29",
			subs: []string{"expected expression", `";"`},
		},
		{
			name: "value returned from void function",
			src:  "func main() { return 1; }",
			pos:  "1:15",
			subs: []string{"void function", `"main"`, "returns a value"},
		},
		{
			name: "function redeclared",
			src:  "func f() int { return 0; } func f() int { return 1; } func main() int { return f(); }",
			pos:  "1:28",
			subs: []string{`"f"`, "redeclared"},
		},
		{
			name: "assignment type mismatch",
			src:  "func main() int { float x; x = 1; return 0; }",
			pos:  "1:28",
			subs: []string{"cannot assign int to float"},
		},
		{
			name: "call of undefined function",
			src:  "func main() int { return f(1); }",
			pos:  "1:26",
			subs: []string{"undefined function", `"f"`},
		},
		{
			name: "mixed int float arithmetic",
			src:  "func main() int { int *p; return *p + 1.5; }",
			pos:  "1:37",
			subs: []string{"invalid operands of +", "int and float", "cast explicitly"},
		},
		{
			name: "break outside loop",
			src:  "func main() int { break; }",
			pos:  "1:19",
			subs: []string{"break outside loop"},
		},
		{
			name: "junk after last declaration",
			src:  "func main() int { int i; i = 1; return i; } garbage",
			pos:  "1:45",
			subs: []string{"expected global or func declaration", `"garbage"`},
		},
		{
			name: "missing main",
			src:  "func nomain() int { return 0; }",
			pos:  "1:1",
			subs: []string{"no main function"},
		},
		{
			name: "undefined identifier on later line",
			src:  "global int g;\nfunc main() int {\n    return g + h;\n}",
			pos:  "3:16",
			subs: []string{"undefined identifier", `"h"`},
		},
		{
			name: "arity mismatch names callee and counts",
			src:  "func g(int a) int { return a; }\nfunc main() int { return g(); }",
			pos:  "2:26",
			subs: []string{`"g"`, "takes 1 arguments, got 0"},
		},
		{
			name: "statement error anchored inside loop body",
			src:  "func main() int {\n    int i;\n    for (i = 0; i < 4; i = i + 1) {\n        continue\n    }\n    return i;\n}",
			pos:  "5:5",
			subs: []string{"expected ;"},
		},
		{
			name: "dereference of non-pointer",
			src:  "func main() int { return *3; }",
			pos:  "1:26",
			subs: []string{"cannot dereference int"},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			prog, err := Parse(c.src)
			if err == nil {
				_, err = Analyze(prog)
			}
			if err == nil {
				t.Fatalf("Parse+Analyze accepted %q", c.src)
			}
			msg := err.Error()
			if !strings.HasPrefix(msg, c.pos+":") {
				t.Errorf("diagnostic %q not anchored at %s", msg, c.pos)
			}
			for _, sub := range c.subs {
				if !strings.Contains(msg, sub) {
					t.Errorf("diagnostic %q missing %q", msg, sub)
				}
			}
		})
	}
}
