package mclang

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mcpart/internal/ir"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenIR pins the exact IR lowering of representative programs.
// Regenerate with `go test ./internal/mclang -run TestGoldenIR -update`
// after an intentional lowering change, and review the diff.
func TestGoldenIR(t *testing.T) {
	srcs, err := filepath.Glob("testdata/*.mc")
	if err != nil || len(srcs) == 0 {
		t.Fatalf("no testdata programs: %v", err)
	}
	for _, src := range srcs {
		src := src
		t.Run(filepath.Base(src), func(t *testing.T) {
			data, err := os.ReadFile(src)
			if err != nil {
				t.Fatal(err)
			}
			mod, err := Compile(string(data), strings.TrimSuffix(filepath.Base(src), ".mc"))
			if err != nil {
				t.Fatal(err)
			}
			got := ir.Print(mod)
			golden := strings.TrimSuffix(src, ".mc") + ".golden"
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("lowering changed for %s; diff against %s and run -update if intended\ngot:\n%s",
					src, golden, got)
			}
		})
	}
}
