package mclang

import (
	"testing"
	"testing/quick"

	"mcpart/internal/interp"
	"mcpart/internal/ir"
)

func interpRun(t *testing.T, mod *ir.Module) int64 {
	t.Helper()
	v, err := interp.New(mod, interp.Options{}).RunMain()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return v.I
}

func countForLoops(s Stmt) int {
	n := 0
	switch x := s.(type) {
	case *BlockStmt:
		for _, st := range x.Stmts {
			n += countForLoops(st)
		}
	case *IfStmt:
		n += countForLoops(x.Then)
		if x.Else != nil {
			n += countForLoops(x.Else)
		}
	case *WhileStmt:
		n += countForLoops(x.Body)
	case *ForStmt:
		n = 1 + countForLoops(x.Body)
	}
	return n
}

func TestUnrollRewritesCountedLoop(t *testing.T) {
	prog := mustParse(t, `
func main() int {
    int i;
    int s = 0;
    for (i = 0; i < 10; i = i + 1) { s = s + i; }
    return s;
}`)
	before := countForLoops(prog.Funcs[0].Body)
	Unroll(prog, 4)
	after := countForLoops(prog.Funcs[0].Body)
	if before != 1 || after != 2 {
		t.Fatalf("loops before/after = %d/%d, want 1/2 (main + epilogue)", before, after)
	}
	if _, err := Analyze(prog); err != nil {
		t.Fatalf("unrolled program fails sema: %v", err)
	}
}

func TestUnrollSkipsIneligible(t *testing.T) {
	srcs := []string{
		// break in body
		`func main() int { int i; for (i = 0; i < 9; i = i + 1) { break; } return i; }`,
		// induction variable reassigned
		`func main() int { int i; for (i = 0; i < 9; i = i + 1) { i = i + 2; } return i; }`,
		// non-constant step
		`func main() int { int i; int s = 1; for (i = 0; i < 9; i = i + s) { s = s; } return i; }`,
		// condition mentions i on the right
		`func main() int { int i; for (i = 0; i < i + 3; i = i + 1) { return 0; } return i; }`,
		// while loop, not canonical
		`func main() int { int i = 0; while (i < 9) { i = i + 1; } return i; }`,
		// global induction variable
		`global int g; func bump() { g = g + 5; } func main() int { for (g = 0; g < 9; g = g + 1) { bump(); } return g; }`,
	}
	for _, src := range srcs {
		prog := mustParse(t, src)
		before := countForLoops(prog.Funcs[len(prog.Funcs)-1].Body)
		Unroll(prog, 4)
		after := countForLoops(prog.Funcs[len(prog.Funcs)-1].Body)
		if before != after {
			t.Errorf("ineligible loop was rewritten (%d -> %d) in %q", before, after, src)
		}
	}
}

func TestUnrollOnlyInnermost(t *testing.T) {
	prog := mustParse(t, `
global int m[64];
func main() int {
    int r;
    int c;
    int s = 0;
    for (r = 0; r < 8; r = r + 1) {
        for (c = 0; c < 8; c = c + 1) { s = s + m[r * 8 + c]; }
    }
    return s;
}`)
	Unroll(prog, 4)
	// Outer loop intact; inner replaced by main+epilogue: 3 for loops.
	if got := countForLoops(prog.Funcs[0].Body); got != 3 {
		t.Fatalf("for-loop count after unroll = %d, want 3", got)
	}
}

// Property: unrolling preserves semantics for trip counts 0..40 and
// factors 2..6, on a kernel with loads, stores, and conditionals.
func TestUnrollSemanticsQuick(t *testing.T) {
	const tmpl = `
global int buf[64];
func main() int {
    int i;
    int s = 0;
    for (i = 0; i < %TRIP%; i = i + 1) {
        buf[i % 64] = i * 3;
        if (i % 2 == 0) { s = s + buf[i % 64]; } else { s = s - i; }
    }
    return s + buf[7];
}`
	run := func(factor, trip int) int64 {
		src := replaceAll(tmpl, "%TRIP%", itoa(trip))
		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		Unroll(prog, factor)
		info, err := Analyze(prog)
		if err != nil {
			t.Fatalf("sema: %v", err)
		}
		mod, err := Lower(info, "u")
		if err != nil {
			t.Fatalf("lower: %v", err)
		}
		return interpRun(t, mod)
	}
	if err := quick.Check(func(f8, t8 uint8) bool {
		factor := 2 + int(f8)%5
		trip := int(t8) % 41
		return run(1, trip) == run(factor, trip)
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func replaceAll(s, old, new string) string {
	out := ""
	for {
		idx := index(s, old)
		if idx < 0 {
			return out + s
		}
		out += s[:idx] + new
		s = s[idx+len(old):]
	}
}

func index(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	s := ""
	for n > 0 {
		s = string(rune('0'+n%10)) + s
		n /= 10
	}
	return s
}
