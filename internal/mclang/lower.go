package mclang

import (
	"fmt"

	"mcpart/internal/ir"
)

// WordSize is the size in bytes of every mclang value in memory.
const WordSize = 8

// Lower translates an analyzed program into an IR module named name.
// Globals become ir global objects (one word per element); each malloc call
// site becomes an ir heap object whose size the profiler later fills in.
func Lower(info *Info, name string) (*ir.Module, error) {
	lo := &lowerer{
		info:     info,
		mod:      ir.NewModule(name),
		objOf:    map[*GlobalDecl]*ir.Object{},
		localReg: map[*VarDeclStmt]ir.VReg{},
	}
	for _, g := range info.Prog.Globals {
		obj := &ir.Object{
			Name:    g.Name,
			Kind:    ir.ObjGlobal,
			Size:    g.Count * WordSize,
			IsFloat: g.Elem.Kind == TypeFloat,
		}
		if g.Elem.Kind == TypeFloat {
			obj.FloatInit = g.InitFlts
			obj.Init = make([]int64, len(g.InitFlts))
		} else {
			obj.Init = g.InitInts
		}
		lo.mod.AddObject(obj)
		lo.objOf[g] = obj
	}
	for _, sn := range info.MallocSiteNames {
		lo.sites = append(lo.sites, lo.mod.AddObject(&ir.Object{
			Name: sn,
			Kind: ir.ObjHeap,
		}))
	}
	for _, f := range info.Prog.Funcs {
		if err := lo.lowerFunc(f); err != nil {
			return nil, err
		}
	}
	if err := ir.Verify(lo.mod); err != nil {
		return nil, fmt.Errorf("mclang: lowering produced invalid IR: %w", err)
	}
	return lo.mod, nil
}

// Compile is the convenience entry point: parse, analyze and lower src.
func Compile(src, name string) (*ir.Module, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	info, err := Analyze(prog)
	if err != nil {
		return nil, err
	}
	return Lower(info, name)
}

type lowerer struct {
	info     *Info
	mod      *ir.Module
	objOf    map[*GlobalDecl]*ir.Object
	sites    []*ir.Object
	bd       *ir.Builder
	fn       *FuncDecl
	localReg map[*VarDeclStmt]ir.VReg
	breaks   []*ir.Block
	conts    []*ir.Block
}

func (lo *lowerer) lowerFunc(f *FuncDecl) error {
	lo.fn = f
	lo.bd = ir.NewBuilder(lo.mod, f.Name, len(f.Params))
	lo.breaks, lo.conts = nil, nil
	if err := lo.stmt(f.Body); err != nil {
		return err
	}
	if !lo.terminated() {
		switch f.Ret.Kind {
		case TypeVoid:
			lo.bd.Ret()
		case TypeFloat:
			lo.bd.Ret(ir.ConstFloat(0))
		default:
			lo.bd.Ret(ir.ConstInt(0))
		}
	}
	return nil
}

func (lo *lowerer) terminated() bool {
	t := lo.bd.Block().Terminator()
	return t != nil && t.Opcode.IsTerminator()
}

func (lo *lowerer) stmt(s Stmt) error {
	if lo.terminated() {
		// Unreachable code after return/break/continue: lower it into a
		// fresh detached block so the IR stays structurally well-formed.
		lo.bd.SetBlock(lo.bd.NewBlock())
	}
	switch x := s.(type) {
	case *BlockStmt:
		for _, st := range x.Stmts {
			if err := lo.stmt(st); err != nil {
				return err
			}
		}
	case *VarDeclStmt:
		r := lo.bd.NewReg()
		lo.localReg[x] = r
		if x.Init != nil {
			return lo.exprInto(x.Init, r)
		}
		if x.Type.Kind == TypeFloat {
			lo.bd.EmitTo(r, ir.OpMov, ir.ConstFloat(0))
		} else {
			lo.bd.EmitTo(r, ir.OpMov, ir.ConstInt(0))
		}
	case *AssignStmt:
		return lo.assign(x)
	case *ExprStmt:
		_, err := lo.exprForEffect(x.X)
		return err
	case *IfStmt:
		return lo.ifStmt(x)
	case *WhileStmt:
		return lo.whileStmt(x)
	case *ForStmt:
		return lo.forStmt(x)
	case *ReturnStmt:
		if x.X == nil {
			lo.bd.Ret()
			return nil
		}
		v, err := lo.expr(x.X)
		if err != nil {
			return err
		}
		lo.bd.Ret(v)
	case *BreakStmt:
		lo.bd.Br(lo.breaks[len(lo.breaks)-1])
	case *ContinueStmt:
		lo.bd.Br(lo.conts[len(lo.conts)-1])
	default:
		return fmt.Errorf("lower: unknown statement %T", s)
	}
	return nil
}

func (lo *lowerer) assign(x *AssignStmt) error {
	switch lhs := x.LHS.(type) {
	case *IdentExpr:
		switch lo.info.Kind[lhs] {
		case SymLocal:
			return lo.exprInto(x.RHS, lo.localReg[lo.info.LocalOf[lhs]])
		case SymParam:
			return lo.exprInto(x.RHS, ir.VReg(lo.info.ParamOf[lhs]))
		case SymGlobalScalar:
			addr := lo.bd.Addr(lo.objOf[lo.info.GlobalOf[lhs]])
			v, err := lo.expr(x.RHS)
			if err != nil {
				return err
			}
			lo.bd.Store(ir.Reg(addr), v)
			return nil
		}
		return errf(lhs.Pos, "cannot assign to %q", lhs.Name)
	case *IndexExpr:
		addr, err := lo.address(lhs)
		if err != nil {
			return err
		}
		v, err := lo.expr(x.RHS)
		if err != nil {
			return err
		}
		lo.bd.Store(addr, v)
		return nil
	case *DerefExpr:
		addr, err := lo.expr(lhs.X)
		if err != nil {
			return err
		}
		v, err := lo.expr(x.RHS)
		if err != nil {
			return err
		}
		lo.bd.Store(addr, v)
		return nil
	}
	return errf(x.Pos, "expression is not assignable")
}

func (lo *lowerer) ifStmt(x *IfStmt) error {
	cond, err := lo.expr(x.Cond)
	if err != nil {
		return err
	}
	thenB := lo.bd.NewBlock()
	joinB := lo.bd.NewBlock()
	elseB := joinB
	if x.Else != nil {
		elseB = lo.bd.NewBlock()
	}
	lo.bd.BrCond(cond, thenB, elseB)
	lo.bd.SetBlock(thenB)
	if err := lo.stmt(x.Then); err != nil {
		return err
	}
	if !lo.terminated() {
		lo.bd.Br(joinB)
	}
	if x.Else != nil {
		lo.bd.SetBlock(elseB)
		if err := lo.stmt(x.Else); err != nil {
			return err
		}
		if !lo.terminated() {
			lo.bd.Br(joinB)
		}
	}
	lo.bd.SetBlock(joinB)
	return nil
}

func (lo *lowerer) whileStmt(x *WhileStmt) error {
	condB := lo.bd.NewBlock()
	bodyB := lo.bd.NewBlock()
	exitB := lo.bd.NewBlock()
	lo.bd.Br(condB)
	lo.bd.SetBlock(condB)
	cond, err := lo.expr(x.Cond)
	if err != nil {
		return err
	}
	lo.bd.BrCond(cond, bodyB, exitB)
	lo.bd.SetBlock(bodyB)
	lo.breaks = append(lo.breaks, exitB)
	lo.conts = append(lo.conts, condB)
	err = lo.stmt(x.Body)
	lo.breaks = lo.breaks[:len(lo.breaks)-1]
	lo.conts = lo.conts[:len(lo.conts)-1]
	if err != nil {
		return err
	}
	if !lo.terminated() {
		lo.bd.Br(condB)
	}
	lo.bd.SetBlock(exitB)
	return nil
}

func (lo *lowerer) forStmt(x *ForStmt) error {
	if x.Init != nil {
		if err := lo.stmt(x.Init); err != nil {
			return err
		}
	}
	condB := lo.bd.NewBlock()
	bodyB := lo.bd.NewBlock()
	postB := lo.bd.NewBlock()
	exitB := lo.bd.NewBlock()
	lo.bd.Br(condB)
	lo.bd.SetBlock(condB)
	if x.Cond != nil {
		cond, err := lo.expr(x.Cond)
		if err != nil {
			return err
		}
		lo.bd.BrCond(cond, bodyB, exitB)
	} else {
		lo.bd.Br(bodyB)
	}
	lo.bd.SetBlock(bodyB)
	lo.breaks = append(lo.breaks, exitB)
	lo.conts = append(lo.conts, postB)
	err := lo.stmt(x.Body)
	lo.breaks = lo.breaks[:len(lo.breaks)-1]
	lo.conts = lo.conts[:len(lo.conts)-1]
	if err != nil {
		return err
	}
	if !lo.terminated() {
		lo.bd.Br(postB)
	}
	lo.bd.SetBlock(postB)
	if x.Post != nil {
		if err := lo.stmt(x.Post); err != nil {
			return err
		}
	}
	lo.bd.Br(condB)
	lo.bd.SetBlock(exitB)
	return nil
}

// address lowers an IndexExpr to the address operand of the indexed word.
func (lo *lowerer) address(x *IndexExpr) (ir.Operand, error) {
	base, err := lo.expr(x.Base)
	if err != nil {
		return ir.Operand{}, err
	}
	idx, err := lo.expr(x.Index)
	if err != nil {
		return ir.Operand{}, err
	}
	if idx.Kind == ir.OperInt {
		if idx.Int == 0 {
			return base, nil
		}
		return ir.Reg(lo.bd.Emit(ir.OpAdd, base, ir.ConstInt(idx.Int*WordSize))), nil
	}
	off := lo.bd.Emit(ir.OpShl, idx, ir.ConstInt(3))
	return ir.Reg(lo.bd.Emit(ir.OpAdd, base, ir.Reg(off))), nil
}

// exprInto lowers e directly into register dst when the final producing
// operation allows it (binary/unary arithmetic, loads, calls, casts),
// avoiding a trailing mov. This keeps induction updates in the canonical
// `r = add r, C` form the scheduler's replication analysis recognizes.
func (lo *lowerer) exprInto(e Expr, dst ir.VReg) error {
	switch x := e.(type) {
	case *BinaryExpr:
		if x.Op != TokAndAnd && x.Op != TokOrOr {
			lt, rt := x.L.TypeOf(), x.R.TypeOf()
			if !lt.IsPtr() && !rt.IsPtr() {
				l, err := lo.expr(x.L)
				if err != nil {
					return err
				}
				r, err := lo.expr(x.R)
				if err != nil {
					return err
				}
				opc := intBinOp[x.Op]
				if lt.Kind == TypeFloat {
					var ok bool
					if opc, ok = floatBinOp[x.Op]; !ok {
						return errf(x.Pos, "operator %s not defined on float", x.Op)
					}
				}
				lo.bd.EmitTo(dst, opc, l, r)
				return nil
			}
		}
	case *UnaryExpr:
		v, err := lo.expr(x.X)
		if err != nil {
			return err
		}
		switch x.Op {
		case TokMinus:
			if x.TypeOf().Kind == TypeFloat {
				lo.bd.EmitTo(dst, ir.OpFNeg, v)
			} else {
				lo.bd.EmitTo(dst, ir.OpNeg, v)
			}
			return nil
		case TokNot:
			lo.bd.EmitTo(dst, ir.OpCmpEQ, v, ir.ConstInt(0))
			return nil
		}
	case *IndexExpr:
		addr, err := lo.address(x)
		if err != nil {
			return err
		}
		lo.bd.EmitTo(dst, ir.OpLoad, addr)
		return nil
	case *DerefExpr:
		addr, err := lo.expr(x.X)
		if err != nil {
			return err
		}
		lo.bd.EmitTo(dst, ir.OpLoad, addr)
		return nil
	case *CallExpr:
		if x.TypeOf().Kind != TypeVoid {
			args, err := lo.exprList(x.Args)
			if err != nil {
				return err
			}
			lo.bd.CallTo(dst, x.Name, args...)
			return nil
		}
	}
	v, err := lo.expr(e)
	if err != nil {
		return err
	}
	lo.bd.EmitTo(dst, ir.OpMov, v)
	return nil
}

// exprForEffect lowers an expression statement; call results are discarded.
func (lo *lowerer) exprForEffect(e Expr) (ir.Operand, error) {
	if call, ok := e.(*CallExpr); ok {
		args, err := lo.exprList(call.Args)
		if err != nil {
			return ir.Operand{}, err
		}
		lo.bd.Call(call.Name, false, args...)
		return ir.Operand{}, nil
	}
	return lo.expr(e)
}

func (lo *lowerer) exprList(es []Expr) ([]ir.Operand, error) {
	out := make([]ir.Operand, len(es))
	for i, e := range es {
		v, err := lo.expr(e)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func (lo *lowerer) expr(e Expr) (ir.Operand, error) {
	switch x := e.(type) {
	case *IntLit:
		return ir.ConstInt(x.Val), nil
	case *FloatLit:
		return ir.ConstFloat(x.Val), nil
	case *IdentExpr:
		switch lo.info.Kind[x] {
		case SymLocal:
			return ir.Reg(lo.localReg[lo.info.LocalOf[x]]), nil
		case SymParam:
			return ir.Reg(ir.VReg(lo.info.ParamOf[x])), nil
		case SymGlobalScalar:
			addr := lo.bd.Addr(lo.objOf[lo.info.GlobalOf[x]])
			return ir.Reg(lo.bd.Load(ir.Reg(addr))), nil
		case SymGlobalArray:
			return ir.Reg(lo.bd.Addr(lo.objOf[lo.info.GlobalOf[x]])), nil
		}
		return ir.Operand{}, errf(x.Pos, "unresolved identifier %q", x.Name)
	case *IndexExpr:
		addr, err := lo.address(x)
		if err != nil {
			return ir.Operand{}, err
		}
		return ir.Reg(lo.bd.Load(addr)), nil
	case *DerefExpr:
		addr, err := lo.expr(x.X)
		if err != nil {
			return ir.Operand{}, err
		}
		return ir.Reg(lo.bd.Load(addr)), nil
	case *AddrExpr:
		if g := lo.info.AddrGlobal[x]; g != nil {
			return ir.Reg(lo.bd.Addr(lo.objOf[g])), nil
		}
		if idx, ok := x.X.(*IndexExpr); ok {
			return lo.address(idx)
		}
		return ir.Operand{}, errf(x.Pos, "cannot take this address")
	case *UnaryExpr:
		v, err := lo.expr(x.X)
		if err != nil {
			return ir.Operand{}, err
		}
		switch x.Op {
		case TokMinus:
			if x.TypeOf().Kind == TypeFloat {
				return ir.Reg(lo.bd.Emit(ir.OpFNeg, v)), nil
			}
			return ir.Reg(lo.bd.Emit(ir.OpNeg, v)), nil
		case TokNot:
			return ir.Reg(lo.bd.Emit(ir.OpCmpEQ, v, ir.ConstInt(0))), nil
		}
		return ir.Operand{}, errf(x.Pos, "bad unary operator")
	case *BinaryExpr:
		return lo.binary(x)
	case *CallExpr:
		args, err := lo.exprList(x.Args)
		if err != nil {
			return ir.Operand{}, err
		}
		if x.TypeOf().Kind == TypeVoid {
			lo.bd.Call(x.Name, false, args...)
			return ir.ConstInt(0), nil
		}
		return ir.Reg(lo.bd.Call(x.Name, true, args...)), nil
	case *MallocExpr:
		size, err := lo.expr(x.Size)
		if err != nil {
			return ir.Operand{}, err
		}
		return ir.Reg(lo.bd.Malloc(lo.sites[x.Site], size)), nil
	case *CastExpr:
		v, err := lo.expr(x.X)
		if err != nil {
			return ir.Operand{}, err
		}
		from := x.X.TypeOf()
		switch {
		case from.Kind == TypeInt && x.To.Kind == TypeFloat:
			return ir.Reg(lo.bd.Emit(ir.OpIToF, v)), nil
		case from.Kind == TypeFloat && x.To.Kind == TypeInt:
			return ir.Reg(lo.bd.Emit(ir.OpFToI, v)), nil
		default: // pointer retype or identity
			return v, nil
		}
	}
	return ir.Operand{}, fmt.Errorf("lower: unknown expression %T", e)
}

var intBinOp = map[TokKind]ir.Opcode{
	TokPlus: ir.OpAdd, TokMinus: ir.OpSub, TokStar: ir.OpMul,
	TokSlash: ir.OpDiv, TokPercent: ir.OpRem, TokAmp: ir.OpAnd,
	TokPipe: ir.OpOr, TokCaret: ir.OpXor, TokShl: ir.OpShl, TokShr: ir.OpShr,
	TokEq: ir.OpCmpEQ, TokNe: ir.OpCmpNE, TokLt: ir.OpCmpLT,
	TokLe: ir.OpCmpLE, TokGt: ir.OpCmpGT, TokGe: ir.OpCmpGE,
}

var floatBinOp = map[TokKind]ir.Opcode{
	TokPlus: ir.OpFAdd, TokMinus: ir.OpFSub, TokStar: ir.OpFMul,
	TokSlash: ir.OpFDiv,
	TokEq:    ir.OpFCmpEQ, TokNe: ir.OpFCmpNE, TokLt: ir.OpFCmpLT,
	TokLe: ir.OpFCmpLE, TokGt: ir.OpFCmpGT, TokGe: ir.OpFCmpGE,
}

func (lo *lowerer) binary(x *BinaryExpr) (ir.Operand, error) {
	switch x.Op {
	case TokAndAnd, TokOrOr:
		return lo.shortCircuit(x)
	}
	l, err := lo.expr(x.L)
	if err != nil {
		return ir.Operand{}, err
	}
	// Pointer arithmetic scales the integer side by the word size.
	lt, rt := x.L.TypeOf(), x.R.TypeOf()
	if lt.IsPtr() || rt.IsPtr() {
		if lt.IsPtr() && rt.IsPtr() {
			// Pointer comparison.
			r, err := lo.expr(x.R)
			if err != nil {
				return ir.Operand{}, err
			}
			return ir.Reg(lo.bd.Emit(intBinOp[x.Op], l, r)), nil
		}
		r, err := lo.expr(x.R)
		if err != nil {
			return ir.Operand{}, err
		}
		if rt.IsPtr() { // int + ptr
			return ir.Reg(lo.bd.Emit(ir.OpAdd, r, lo.scaleByWord(l))), nil
		}
		opc := ir.OpAdd // ptr ± int
		if x.Op == TokMinus {
			opc = ir.OpSub
		}
		return ir.Reg(lo.bd.Emit(opc, l, lo.scaleByWord(r))), nil
	}
	r, err := lo.expr(x.R)
	if err != nil {
		return ir.Operand{}, err
	}
	if lt.Kind == TypeFloat {
		opc, ok := floatBinOp[x.Op]
		if !ok {
			return ir.Operand{}, errf(x.Pos, "operator %s not defined on float", x.Op)
		}
		return ir.Reg(lo.bd.Emit(opc, l, r)), nil
	}
	return ir.Reg(lo.bd.Emit(intBinOp[x.Op], l, r)), nil
}

func (lo *lowerer) scaleByWord(v ir.Operand) ir.Operand {
	if v.Kind == ir.OperInt {
		return ir.ConstInt(v.Int * WordSize)
	}
	return ir.Reg(lo.bd.Emit(ir.OpShl, v, ir.ConstInt(3)))
}

// shortCircuit lowers && and || with control flow into a result register.
func (lo *lowerer) shortCircuit(x *BinaryExpr) (ir.Operand, error) {
	res := lo.bd.NewReg()
	l, err := lo.expr(x.L)
	if err != nil {
		return ir.Operand{}, err
	}
	evalR := lo.bd.NewBlock()
	short := lo.bd.NewBlock()
	join := lo.bd.NewBlock()
	if x.Op == TokAndAnd {
		lo.bd.BrCond(l, evalR, short) // l false -> result 0
	} else {
		lo.bd.BrCond(l, short, evalR) // l true -> result 1
	}
	lo.bd.SetBlock(short)
	if x.Op == TokAndAnd {
		lo.bd.EmitTo(res, ir.OpMov, ir.ConstInt(0))
	} else {
		lo.bd.EmitTo(res, ir.OpMov, ir.ConstInt(1))
	}
	lo.bd.Br(join)
	lo.bd.SetBlock(evalR)
	r, err := lo.expr(x.R)
	if err != nil {
		return ir.Operand{}, err
	}
	lo.bd.EmitTo(res, ir.OpCmpNE, r, ir.ConstInt(0))
	lo.bd.Br(join)
	lo.bd.SetBlock(join)
	return ir.Reg(res), nil
}
