package mclang

import "fmt"

// Accumulator expansion, the classic companion of loop unrolling: a
// reduction
//
//	for (...) { s = s + e; }
//
// serializes its unrolled copies through s. When s is an integer local that
// appears in the loop body only in that one statement, the unroller gives
// each copy k>0 a private partial sum (initialized to zero before the loop)
// and folds the partials back into s after the loop. Integer addition and
// subtraction are associative modulo 2^64, so the transform is exact;
// floats are never expanded.

// accumulator describes one expandable reduction in a loop body.
type accumulator struct {
	name  string
	minus bool // s = s - e (partials still sum the e's; fold subtracts)
}

// findAccumulators returns the expandable reductions of body: integer
// locals assigned exactly once in body, by `s = s ± e`, whose only other
// mention in body is the `s` on the right-hand side, with e free of s.
func (u *unroller) findAccumulators(body Stmt) []accumulator {
	counts := map[string]int{}
	countIdents(body, counts)
	var accs []accumulator
	seen := map[string]bool{}
	walkStmts(body, func(s Stmt) {
		asg, ok := s.(*AssignStmt)
		if !ok {
			return
		}
		lhs, ok := asg.LHS.(*IdentExpr)
		if !ok || seen[lhs.Name] || u.globals[lhs.Name] {
			return
		}
		bin, ok := asg.RHS.(*BinaryExpr)
		if !ok || (bin.Op != TokPlus && bin.Op != TokMinus) {
			return
		}
		l, ok := bin.L.(*IdentExpr)
		if !ok || l.Name != lhs.Name {
			return
		}
		if mentions(bin.R, lhs.Name) {
			return
		}
		// Exactly the two mentions in this statement, nowhere else.
		if counts[lhs.Name] != 2 {
			return
		}
		// Must be a declared integer local (or int parameter).
		if t, ok := u.declType[lhs.Name]; !ok || t.Kind != TypeInt {
			return
		}
		seen[lhs.Name] = true
		accs = append(accs, accumulator{name: lhs.Name, minus: bin.Op == TokMinus})
	})
	return accs
}

// renameAccumulator rewrites the (unique) accumulation statement of acc in
// the cloned body to target the partial sum named partial, reporting
// whether a rewrite happened.
func renameAccumulator(body Stmt, acc accumulator, partial string) bool {
	done := false
	walkStmts(body, func(s Stmt) {
		if done {
			return
		}
		asg, ok := s.(*AssignStmt)
		if !ok {
			return
		}
		lhs, ok := asg.LHS.(*IdentExpr)
		if !ok || lhs.Name != acc.name {
			return
		}
		bin, ok := asg.RHS.(*BinaryExpr)
		if !ok {
			return
		}
		l, ok := bin.L.(*IdentExpr)
		if !ok || l.Name != acc.name {
			return
		}
		lhs.Name = partial
		l.Name = partial
		if acc.minus {
			bin.Op = TokPlus // partials collect the subtrahends
		}
		done = true
	})
	return done
}

// countIdents tallies identifier mentions (in expressions) by name.
func countIdents(s Stmt, counts map[string]int) {
	walkStmts(s, func(st Stmt) {
		for _, e := range stmtExprs(st) {
			walkExpr(e, func(x Expr) {
				if id, ok := x.(*IdentExpr); ok {
					counts[id.Name]++
				}
			})
		}
	})
}

// walkStmts visits every statement in the tree rooted at s, including s.
func walkStmts(s Stmt, fn func(Stmt)) {
	if s == nil {
		return
	}
	fn(s)
	switch x := s.(type) {
	case *BlockStmt:
		for _, st := range x.Stmts {
			walkStmts(st, fn)
		}
	case *IfStmt:
		walkStmts(x.Then, fn)
		walkStmts(x.Else, fn)
	case *WhileStmt:
		walkStmts(x.Body, fn)
	case *ForStmt:
		walkStmts(x.Init, fn)
		walkStmts(x.Post, fn)
		walkStmts(x.Body, fn)
	}
}

// stmtExprs returns the expressions directly held by one statement node.
func stmtExprs(s Stmt) []Expr {
	switch x := s.(type) {
	case *VarDeclStmt:
		if x.Init != nil {
			return []Expr{x.Init}
		}
	case *AssignStmt:
		return []Expr{x.LHS, x.RHS}
	case *ExprStmt:
		return []Expr{x.X}
	case *IfStmt:
		return []Expr{x.Cond}
	case *WhileStmt:
		return []Expr{x.Cond}
	case *ForStmt:
		if x.Cond != nil {
			return []Expr{x.Cond}
		}
	case *ReturnStmt:
		if x.X != nil {
			return []Expr{x.X}
		}
	}
	return nil
}

// expandAccumulators applies accumulator expansion to the already-built
// unrolled structure: partial declarations before the main loop, per-copy
// renames inside mainBody (copies are mainBody.Stmts entries produced by
// tryUnroll), and folds after the main loop. copies[k] is the k-th cloned
// body inside mainBody.
func (u *unroller) expandAccumulators(pos Pos, accs []accumulator, copies []Stmt) (decls, folds []Stmt) {
	for _, acc := range accs {
		for k := 1; k < len(copies); k++ {
			partial := fmt.Sprintf("__acc%d_%s_%d", u.nextAcc, acc.name, k)
			if !renameAccumulator(copies[k], acc, partial) {
				continue // conditional structure hid the statement; skip copy
			}
			decls = append(decls, &VarDeclStmt{
				Pos: pos, Name: partial, Type: IntType,
				Init: &IntLit{exprBase: exprBase{Pos: pos}, Val: 0},
			})
			op := TokPlus
			if acc.minus {
				op = TokMinus
			}
			folds = append(folds, &AssignStmt{
				Pos: pos,
				LHS: &IdentExpr{exprBase: exprBase{Pos: pos}, Name: acc.name},
				RHS: &BinaryExpr{exprBase: exprBase{Pos: pos}, Op: op,
					L: &IdentExpr{exprBase: exprBase{Pos: pos}, Name: acc.name},
					R: &IdentExpr{exprBase: exprBase{Pos: pos}, Name: partial}},
			})
		}
		u.nextAcc++
	}
	return decls, folds
}
