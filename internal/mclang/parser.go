package mclang

import "fmt"

// Parser builds an AST from a token stream.
type Parser struct {
	toks []Token
	pos  int
}

// Parse lexes and parses src into a Program.
func Parse(src string) (*Program, error) {
	toks, err := LexAll(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.parseProgram()
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) peekKind(k TokKind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k TokKind) bool {
	if p.cur().Kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k TokKind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, errf(t.Pos, "expected %s, found %s", k, describe(t))
	}
	p.pos++
	return t, nil
}

func describe(t Token) string {
	switch t.Kind {
	case TokIdent:
		return fmt.Sprintf("identifier %q", t.Text)
	case TokInt:
		return fmt.Sprintf("integer %d", t.Int)
	case TokFloat:
		return fmt.Sprintf("float %g", t.Float)
	default:
		return fmt.Sprintf("%q", t.Kind.String())
	}
}

func (p *Parser) parseProgram() (*Program, error) {
	prog := &Program{}
	for !p.peekKind(TokEOF) {
		switch p.cur().Kind {
		case TokKwGlobal:
			g, err := p.parseGlobal()
			if err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, g)
		case TokKwFunc:
			f, err := p.parseFunc()
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, f)
		default:
			return nil, errf(p.cur().Pos, "expected global or func declaration, found %s", describe(p.cur()))
		}
	}
	return prog, nil
}

// isTypeStart reports whether the token can begin a type.
func isTypeStart(k TokKind) bool { return k == TokKwInt || k == TokKwFloat }

func (p *Parser) parseType() (*Type, error) {
	var t *Type
	switch p.cur().Kind {
	case TokKwInt:
		t = IntType
	case TokKwFloat:
		t = FloatType
	default:
		return nil, errf(p.cur().Pos, "expected type, found %s", describe(p.cur()))
	}
	p.pos++
	for p.accept(TokStar) {
		t = PtrTo(t)
	}
	return t, nil
}

func (p *Parser) parseGlobal() (*GlobalDecl, error) {
	start, _ := p.expect(TokKwGlobal)
	elem, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if elem.IsPtr() {
		return nil, errf(start.Pos, "global pointers are not supported; use int or float")
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	g := &GlobalDecl{Pos: start.Pos, Name: name.Text, Elem: elem, Count: 1}
	if p.accept(TokLBracket) {
		n, err := p.expect(TokInt)
		if err != nil {
			return nil, err
		}
		if n.Int <= 0 {
			return nil, errf(n.Pos, "array length must be positive, got %d", n.Int)
		}
		g.Count = n.Int
		g.IsArray = true
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
	}
	if p.accept(TokAssign) {
		g.HasInit = true
		if p.accept(TokLBrace) {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				g.InitExprs = append(g.InitExprs, e)
				if !p.accept(TokComma) {
					break
				}
			}
			if _, err := p.expect(TokRBrace); err != nil {
				return nil, err
			}
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			g.InitExprs = append(g.InitExprs, e)
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return g, nil
}

func (p *Parser) parseFunc() (*FuncDecl, error) {
	start, _ := p.expect(TokKwFunc)
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	f := &FuncDecl{Pos: start.Pos, Name: name.Text, Ret: VoidType}
	if !p.peekKind(TokRParen) {
		for {
			t, err := p.parseType()
			if err != nil {
				return nil, err
			}
			id, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			f.Params = append(f.Params, &Param{Name: id.Text, Type: t, Pos: id.Pos})
			if !p.accept(TokComma) {
				break
			}
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if isTypeStart(p.cur().Kind) {
		rt, err := p.parseType()
		if err != nil {
			return nil, err
		}
		f.Ret = rt
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

func (p *Parser) parseBlock() (*BlockStmt, error) {
	lb, err := p.expect(TokLBrace)
	if err != nil {
		return nil, err
	}
	blk := &BlockStmt{Pos: lb.Pos}
	for !p.peekKind(TokRBrace) {
		if p.peekKind(TokEOF) {
			return nil, errf(lb.Pos, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			blk.Stmts = append(blk.Stmts, s)
		}
	}
	p.pos++ // consume '}'
	return blk, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch t.Kind {
	case TokSemi:
		p.pos++
		return nil, nil
	case TokLBrace:
		return p.parseBlock()
	case TokKwInt, TokKwFloat:
		return p.parseVarDecl()
	case TokKwIf:
		return p.parseIf()
	case TokKwWhile:
		return p.parseWhile()
	case TokKwFor:
		return p.parseFor()
	case TokKwReturn:
		p.pos++
		r := &ReturnStmt{Pos: t.Pos}
		if !p.peekKind(TokSemi) {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			r.X = e
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return r, nil
	case TokKwBreak:
		p.pos++
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: t.Pos}, nil
	case TokKwContinue:
		p.pos++
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: t.Pos}, nil
	}
	s, err := p.parseSimpleStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return s, nil
}

// parseSimpleStmt parses an assignment or expression statement (no
// trailing semicolon), as used in for-loop clauses.
func (p *Parser) parseSimpleStmt() (Stmt, error) {
	start := p.cur().Pos
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.accept(TokAssign) {
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Pos: start, LHS: e, RHS: rhs}, nil
	}
	return &ExprStmt{Pos: start, X: e}, nil
}

func (p *Parser) parseVarDecl() (Stmt, error) {
	start := p.cur().Pos
	t, err := p.parseType()
	if err != nil {
		return nil, err
	}
	id, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if p.peekKind(TokLBracket) {
		return nil, errf(id.Pos, "local arrays are not supported; use a global or malloc")
	}
	d := &VarDeclStmt{Pos: start, Name: id.Text, Type: t}
	if p.accept(TokAssign) {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = e
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	start, _ := p.expect(TokKwIf)
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Pos: start.Pos, Cond: cond, Then: then}
	if p.accept(TokKwElse) {
		els, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		s.Else = els
	}
	return s, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	start, _ := p.expect(TokKwWhile)
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Pos: start.Pos, Cond: cond, Body: body}, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	start, _ := p.expect(TokKwFor)
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	s := &ForStmt{Pos: start.Pos}
	if !p.peekKind(TokSemi) {
		init, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		s.Init = init
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if !p.peekKind(TokSemi) {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Cond = cond
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if !p.peekKind(TokRParen) {
		post, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		s.Post = post
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	s.Body = body
	return s, nil
}

// Expression parsing by precedence climbing.

var binPrec = map[TokKind]int{
	TokOrOr:   1,
	TokAndAnd: 2,
	TokPipe:   3,
	TokCaret:  4,
	TokAmp:    5,
	TokEq:     6, TokNe: 6,
	TokLt: 7, TokLe: 7, TokGt: 7, TokGe: 7,
	TokShl: 8, TokShr: 8,
	TokPlus: 9, TokMinus: 9,
	TokStar: 10, TokSlash: 10, TokPercent: 10,
}

func (p *Parser) parseExpr() (Expr, error) { return p.parseBinary(1) }

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur()
		prec, ok := binPrec[op.Kind]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{exprBase: exprBase{Pos: op.Pos}, Op: op.Kind, L: lhs, R: rhs}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokMinus, TokNot:
		p.pos++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{exprBase: exprBase{Pos: t.Pos}, Op: t.Kind, X: x}, nil
	case TokStar:
		p.pos++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &DerefExpr{exprBase: exprBase{Pos: t.Pos}, X: x}, nil
	case TokAmp:
		p.pos++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &AddrExpr{exprBase: exprBase{Pos: t.Pos}, X: x}, nil
	case TokLParen:
		// Cast: '(' type ')' unary.
		if isTypeStart(p.toks[p.pos+1].Kind) {
			p.pos++
			to, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &CastExpr{exprBase: exprBase{Pos: t.Pos}, To: to, X: x}, nil
		}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case TokLBracket:
			pos := p.next().Pos
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			e = &IndexExpr{exprBase: exprBase{Pos: pos}, Base: e, Index: idx}
		default:
			return e, nil
		}
	}
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.next()
	switch t.Kind {
	case TokInt:
		return &IntLit{exprBase: exprBase{Pos: t.Pos}, Val: t.Int}, nil
	case TokFloat:
		return &FloatLit{exprBase: exprBase{Pos: t.Pos}, Val: t.Float}, nil
	case TokKwMalloc:
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		size, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return &MallocExpr{exprBase: exprBase{Pos: t.Pos}, Size: size, Site: -1}, nil
	case TokIdent:
		if p.peekKind(TokLParen) {
			p.pos++
			call := &CallExpr{exprBase: exprBase{Pos: t.Pos}, Name: t.Text}
			if !p.peekKind(TokRParen) {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(TokComma) {
						break
					}
				}
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			return call, nil
		}
		return &IdentExpr{exprBase: exprBase{Pos: t.Pos}, Name: t.Text}, nil
	case TokLParen:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, errf(t.Pos, "expected expression, found %s", describe(t))
}
