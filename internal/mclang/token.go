// Package mclang implements a small C-like language used to express the
// benchmark programs the partitioning pipeline is evaluated on. It provides
// a lexer, a recursive-descent parser, a type checker, and a lowering pass
// that emits mcpart IR.
//
// The language has 64-bit ints, float64 floats, pointers, global scalars and
// arrays (with initializers), heap allocation via malloc, functions, and
// structured control flow:
//
//	global int table[89] = {16, 17, 19, ...};
//	global float coef[8];
//
//	func encode(int *src, int n) int {
//	    int i; int acc = 0;
//	    for (i = 0; i < n; i = i + 1) {
//	        acc = acc + src[i] * table[i % 89];
//	    }
//	    return acc;
//	}
//
// Locals are virtual registers (no address-of on locals, no local arrays);
// all addressable data lives in globals or on the heap, which is exactly the
// object universe the data partitioner reasons about.
package mclang

import (
	"fmt"
	"unicode"
)

// TokKind enumerates lexical token kinds.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokFloat

	// Keywords.
	TokKwGlobal
	TokKwFunc
	TokKwInt
	TokKwFloat
	TokKwIf
	TokKwElse
	TokKwWhile
	TokKwFor
	TokKwReturn
	TokKwMalloc
	TokKwBreak
	TokKwContinue

	// Punctuation and operators.
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokComma
	TokSemi
	TokAssign
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPercent
	TokAmp
	TokPipe
	TokCaret
	TokShl
	TokShr
	TokAndAnd
	TokOrOr
	TokNot
	TokEq
	TokNe
	TokLt
	TokLe
	TokGt
	TokGe
)

var tokNames = map[TokKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokInt: "int literal",
	TokFloat: "float literal", TokKwGlobal: "global", TokKwFunc: "func",
	TokKwInt: "int", TokKwFloat: "float", TokKwIf: "if", TokKwElse: "else",
	TokKwWhile: "while", TokKwFor: "for", TokKwReturn: "return",
	TokKwMalloc: "malloc", TokKwBreak: "break", TokKwContinue: "continue",
	TokLParen: "(", TokRParen: ")", TokLBrace: "{", TokRBrace: "}",
	TokLBracket: "[", TokRBracket: "]", TokComma: ",", TokSemi: ";",
	TokAssign: "=", TokPlus: "+", TokMinus: "-", TokStar: "*",
	TokSlash: "/", TokPercent: "%", TokAmp: "&", TokPipe: "|",
	TokCaret: "^", TokShl: "<<", TokShr: ">>", TokAndAnd: "&&",
	TokOrOr: "||", TokNot: "!", TokEq: "==", TokNe: "!=",
	TokLt: "<", TokLe: "<=", TokGt: ">", TokGe: ">=",
}

func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

var keywords = map[string]TokKind{
	"global": TokKwGlobal, "func": TokKwFunc, "int": TokKwInt,
	"float": TokKwFloat, "if": TokKwIf, "else": TokKwElse,
	"while": TokKwWhile, "for": TokKwFor, "return": TokKwReturn,
	"malloc": TokKwMalloc, "break": TokKwBreak, "continue": TokKwContinue,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind  TokKind
	Pos   Pos
	Text  string  // for identifiers
	Int   int64   // for TokInt
	Float float64 // for TokFloat
}

// Error is a front-end diagnostic carrying a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Lexer tokenizes mclang source.
type Lexer struct {
	src  []rune
	off  int
	line int
	col  int
}

// NewLexer creates a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: []rune(src), line: 1, col: 1}
}

func (l *Lexer) peek() rune {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() rune {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() rune {
	r := l.src[l.off]
	l.off++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *Lexer) pos() Pos { return Pos{l.line, l.col} }

func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		r := l.peek()
		switch {
		case unicode.IsSpace(r):
			l.advance()
		case r == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case r == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			for {
				if l.off >= len(l.src) {
					return errf(start, "unterminated block comment")
				}
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	r := l.peek()
	switch {
	case unicode.IsLetter(r) || r == '_':
		start := l.off
		for l.off < len(l.src) && (unicode.IsLetter(l.peek()) || unicode.IsDigit(l.peek()) || l.peek() == '_') {
			l.advance()
		}
		text := string(l.src[start:l.off])
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Pos: pos, Text: text}, nil
		}
		return Token{Kind: TokIdent, Pos: pos, Text: text}, nil
	case unicode.IsDigit(r):
		return l.lexNumber(pos)
	}
	l.advance()
	two := func(next rune, with, without TokKind) Token {
		if l.peek() == next {
			l.advance()
			return Token{Kind: with, Pos: pos}
		}
		return Token{Kind: without, Pos: pos}
	}
	switch r {
	case '(':
		return Token{Kind: TokLParen, Pos: pos}, nil
	case ')':
		return Token{Kind: TokRParen, Pos: pos}, nil
	case '{':
		return Token{Kind: TokLBrace, Pos: pos}, nil
	case '}':
		return Token{Kind: TokRBrace, Pos: pos}, nil
	case '[':
		return Token{Kind: TokLBracket, Pos: pos}, nil
	case ']':
		return Token{Kind: TokRBracket, Pos: pos}, nil
	case ',':
		return Token{Kind: TokComma, Pos: pos}, nil
	case ';':
		return Token{Kind: TokSemi, Pos: pos}, nil
	case '+':
		return Token{Kind: TokPlus, Pos: pos}, nil
	case '-':
		return Token{Kind: TokMinus, Pos: pos}, nil
	case '*':
		return Token{Kind: TokStar, Pos: pos}, nil
	case '/':
		return Token{Kind: TokSlash, Pos: pos}, nil
	case '%':
		return Token{Kind: TokPercent, Pos: pos}, nil
	case '^':
		return Token{Kind: TokCaret, Pos: pos}, nil
	case '=':
		return two('=', TokEq, TokAssign), nil
	case '!':
		return two('=', TokNe, TokNot), nil
	case '<':
		if l.peek() == '<' {
			l.advance()
			return Token{Kind: TokShl, Pos: pos}, nil
		}
		return two('=', TokLe, TokLt), nil
	case '>':
		if l.peek() == '>' {
			l.advance()
			return Token{Kind: TokShr, Pos: pos}, nil
		}
		return two('=', TokGe, TokGt), nil
	case '&':
		return two('&', TokAndAnd, TokAmp), nil
	case '|':
		return two('|', TokOrOr, TokPipe), nil
	}
	return Token{}, errf(pos, "unexpected character %q", r)
}

func (l *Lexer) lexNumber(pos Pos) (Token, error) {
	start := l.off
	isFloat := false
	for l.off < len(l.src) && unicode.IsDigit(l.peek()) {
		l.advance()
	}
	if l.peek() == '.' && unicode.IsDigit(l.peek2()) {
		isFloat = true
		l.advance()
		for l.off < len(l.src) && unicode.IsDigit(l.peek()) {
			l.advance()
		}
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		save := l.off
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		if unicode.IsDigit(l.peek()) {
			isFloat = true
			for l.off < len(l.src) && unicode.IsDigit(l.peek()) {
				l.advance()
			}
		} else {
			l.off = save
		}
	}
	text := string(l.src[start:l.off])
	if isFloat {
		var f float64
		if _, err := fmt.Sscanf(text, "%g", &f); err != nil {
			return Token{}, errf(pos, "bad float literal %q", text)
		}
		return Token{Kind: TokFloat, Pos: pos, Float: f, Text: text}, nil
	}
	var v int64
	if _, err := fmt.Sscanf(text, "%d", &v); err != nil {
		return Token{}, errf(pos, "bad int literal %q", text)
	}
	return Token{Kind: TokInt, Pos: pos, Int: v, Text: text}, nil
}

// LexAll tokenizes the whole input (including the trailing EOF token).
func LexAll(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}
