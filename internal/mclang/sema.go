package mclang

import "fmt"

// SymKind says what an identifier resolved to.
type SymKind int

// Identifier resolution kinds.
const (
	SymLocal SymKind = iota
	SymParam
	SymGlobalScalar
	SymGlobalArray
)

// Info is the result of semantic analysis: the type-annotated program plus
// resolution maps consumed by the lowering pass.
type Info struct {
	Prog *Program

	Globals map[string]*GlobalDecl
	Funcs   map[string]*FuncDecl

	// Identifier resolution, keyed by AST node.
	Kind     map[*IdentExpr]SymKind
	LocalOf  map[*IdentExpr]*VarDeclStmt
	ParamOf  map[*IdentExpr]int
	GlobalOf map[*IdentExpr]*GlobalDecl

	// AddrGlobal resolves &g / &g[i] to the referenced global.
	AddrGlobal map[*AddrExpr]*GlobalDecl

	// Malloc site numbering, dense per module, with diagnostic names.
	MallocSiteNames []string
}

type checker struct {
	info    *Info
	fn      *FuncDecl
	scopes  []map[string]*VarDeclStmt
	params  map[string]int
	loopLvl int
}

// Analyze type-checks the program, resolves identifiers, folds global
// initializers, and numbers malloc sites.
func Analyze(prog *Program) (*Info, error) {
	info := &Info{
		Prog:       prog,
		Globals:    map[string]*GlobalDecl{},
		Funcs:      map[string]*FuncDecl{},
		Kind:       map[*IdentExpr]SymKind{},
		LocalOf:    map[*IdentExpr]*VarDeclStmt{},
		ParamOf:    map[*IdentExpr]int{},
		GlobalOf:   map[*IdentExpr]*GlobalDecl{},
		AddrGlobal: map[*AddrExpr]*GlobalDecl{},
	}
	for _, g := range prog.Globals {
		if info.Globals[g.Name] != nil {
			return nil, errf(g.Pos, "global %q redeclared", g.Name)
		}
		info.Globals[g.Name] = g
		if err := foldGlobalInit(g); err != nil {
			return nil, err
		}
	}
	for _, f := range prog.Funcs {
		if info.Funcs[f.Name] != nil {
			return nil, errf(f.Pos, "function %q redeclared", f.Name)
		}
		if info.Globals[f.Name] != nil {
			return nil, errf(f.Pos, "function %q collides with a global", f.Name)
		}
		info.Funcs[f.Name] = f
	}
	if info.Funcs["main"] == nil {
		return nil, errf(Pos{1, 1}, "program has no main function")
	}
	for _, f := range prog.Funcs {
		c := &checker{info: info, fn: f, params: map[string]int{}}
		seen := map[string]bool{}
		for i, p := range f.Params {
			if seen[p.Name] {
				return nil, errf(p.Pos, "parameter %q redeclared", p.Name)
			}
			seen[p.Name] = true
			c.params[p.Name] = i
		}
		c.push()
		if err := c.stmt(f.Body); err != nil {
			return nil, err
		}
		c.pop()
	}
	return info, nil
}

func foldGlobalInit(g *GlobalDecl) error {
	if !g.HasInit {
		return nil
	}
	if int64(len(g.InitExprs)) > g.Count {
		return errf(g.Pos, "global %q: %d initializers for %d elements",
			g.Name, len(g.InitExprs), g.Count)
	}
	for _, e := range g.InitExprs {
		iv, fv, isF, err := constEval(e)
		if err != nil {
			return err
		}
		if g.Elem.Kind == TypeFloat {
			if !isF {
				fv = float64(iv)
			}
			g.InitFlts = append(g.InitFlts, fv)
		} else {
			if isF {
				return errf(e.Position(), "global %q: float initializer for int element", g.Name)
			}
			g.InitInts = append(g.InitInts, iv)
		}
	}
	return nil
}

// constEval evaluates a constant expression (literals, unary minus, and the
// four arithmetic operators over constants).
func constEval(e Expr) (int64, float64, bool, error) {
	switch x := e.(type) {
	case *IntLit:
		return x.Val, 0, false, nil
	case *FloatLit:
		return 0, x.Val, true, nil
	case *UnaryExpr:
		if x.Op != TokMinus {
			return 0, 0, false, errf(x.Pos, "initializer must be constant")
		}
		iv, fv, isF, err := constEval(x.X)
		return -iv, -fv, isF, err
	case *BinaryExpr:
		li, lf, lF, err := constEval(x.L)
		if err != nil {
			return 0, 0, false, err
		}
		ri, rf, rF, err := constEval(x.R)
		if err != nil {
			return 0, 0, false, err
		}
		if lF != rF {
			return 0, 0, false, errf(x.Pos, "mixed int/float constant expression")
		}
		if lF {
			switch x.Op {
			case TokPlus:
				return 0, lf + rf, true, nil
			case TokMinus:
				return 0, lf - rf, true, nil
			case TokStar:
				return 0, lf * rf, true, nil
			case TokSlash:
				return 0, lf / rf, true, nil
			}
		} else {
			switch x.Op {
			case TokPlus:
				return li + ri, 0, false, nil
			case TokMinus:
				return li - ri, 0, false, nil
			case TokStar:
				return li * ri, 0, false, nil
			case TokSlash:
				if ri == 0 {
					return 0, 0, false, errf(x.Pos, "constant division by zero")
				}
				return li / ri, 0, false, nil
			}
		}
		return 0, 0, false, errf(x.Pos, "operator %s not allowed in constant expression", x.Op)
	}
	return 0, 0, false, errf(e.Position(), "initializer must be constant")
}

func (c *checker) push() { c.scopes = append(c.scopes, map[string]*VarDeclStmt{}) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) lookupLocal(name string) *VarDeclStmt {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if d := c.scopes[i][name]; d != nil {
			return d
		}
	}
	return nil
}

func (c *checker) stmt(s Stmt) error {
	switch x := s.(type) {
	case *BlockStmt:
		c.push()
		defer c.pop()
		for _, st := range x.Stmts {
			if err := c.stmt(st); err != nil {
				return err
			}
		}
	case *VarDeclStmt:
		if x.Type.Kind == TypeVoid {
			return errf(x.Pos, "variable %q cannot be void", x.Name)
		}
		if c.scopes[len(c.scopes)-1][x.Name] != nil {
			return errf(x.Pos, "variable %q redeclared in this scope", x.Name)
		}
		if x.Init != nil {
			t, err := c.expr(x.Init)
			if err != nil {
				return err
			}
			if !t.Equal(x.Type) {
				return errf(x.Pos, "cannot initialize %s %q with %s", x.Type, x.Name, t)
			}
		}
		c.scopes[len(c.scopes)-1][x.Name] = x
	case *AssignStmt:
		lt, err := c.lvalue(x.LHS)
		if err != nil {
			return err
		}
		rt, err := c.expr(x.RHS)
		if err != nil {
			return err
		}
		if !lt.Equal(rt) {
			return errf(x.Pos, "cannot assign %s to %s", rt, lt)
		}
	case *ExprStmt:
		if _, err := c.expr(x.X); err != nil {
			return err
		}
	case *IfStmt:
		if err := c.cond(x.Cond); err != nil {
			return err
		}
		if err := c.stmt(x.Then); err != nil {
			return err
		}
		if x.Else != nil {
			return c.stmt(x.Else)
		}
	case *WhileStmt:
		if err := c.cond(x.Cond); err != nil {
			return err
		}
		c.loopLvl++
		defer func() { c.loopLvl-- }()
		return c.stmt(x.Body)
	case *ForStmt:
		c.push()
		defer c.pop()
		if x.Init != nil {
			if err := c.stmt(x.Init); err != nil {
				return err
			}
		}
		if x.Cond != nil {
			if err := c.cond(x.Cond); err != nil {
				return err
			}
		}
		if x.Post != nil {
			if err := c.stmt(x.Post); err != nil {
				return err
			}
		}
		c.loopLvl++
		defer func() { c.loopLvl-- }()
		return c.stmt(x.Body)
	case *ReturnStmt:
		if x.X == nil {
			if c.fn.Ret.Kind != TypeVoid {
				return errf(x.Pos, "function %q must return %s", c.fn.Name, c.fn.Ret)
			}
			return nil
		}
		if c.fn.Ret.Kind == TypeVoid {
			return errf(x.Pos, "void function %q returns a value", c.fn.Name)
		}
		t, err := c.expr(x.X)
		if err != nil {
			return err
		}
		if !t.Equal(c.fn.Ret) {
			return errf(x.Pos, "return %s from function returning %s", t, c.fn.Ret)
		}
	case *BreakStmt:
		if c.loopLvl == 0 {
			return errf(x.Pos, "break outside loop")
		}
	case *ContinueStmt:
		if c.loopLvl == 0 {
			return errf(x.Pos, "continue outside loop")
		}
	default:
		return fmt.Errorf("sema: unknown statement %T", s)
	}
	return nil
}

func (c *checker) cond(e Expr) error {
	t, err := c.expr(e)
	if err != nil {
		return err
	}
	if t.Kind != TypeInt {
		return errf(e.Position(), "condition must be int, got %s", t)
	}
	return nil
}

// lvalue checks an assignable expression: a scalar variable, *p, g[i], p[i].
func (c *checker) lvalue(e Expr) (*Type, error) {
	switch x := e.(type) {
	case *IdentExpr:
		t, err := c.expr(x)
		if err != nil {
			return nil, err
		}
		if c.info.Kind[x] == SymGlobalArray {
			return nil, errf(x.Pos, "cannot assign to array %q", x.Name)
		}
		return t, nil
	case *IndexExpr, *DerefExpr:
		return c.expr(e)
	}
	return nil, errf(e.Position(), "expression is not assignable")
}

func (c *checker) expr(e Expr) (*Type, error) {
	t, err := c.exprInner(e)
	if err != nil {
		return nil, err
	}
	e.setType(t)
	return t, nil
}

func (c *checker) exprInner(e Expr) (*Type, error) {
	switch x := e.(type) {
	case *IntLit:
		return IntType, nil
	case *FloatLit:
		return FloatType, nil
	case *IdentExpr:
		if d := c.lookupLocal(x.Name); d != nil {
			c.info.Kind[x] = SymLocal
			c.info.LocalOf[x] = d
			return d.Type, nil
		}
		if i, ok := c.params[x.Name]; ok {
			c.info.Kind[x] = SymParam
			c.info.ParamOf[x] = i
			return c.fn.Params[i].Type, nil
		}
		if g := c.info.Globals[x.Name]; g != nil {
			c.info.GlobalOf[x] = g
			if g.IsArray {
				c.info.Kind[x] = SymGlobalArray
				return PtrTo(g.Elem), nil // array decays to pointer
			}
			c.info.Kind[x] = SymGlobalScalar
			return g.Elem, nil
		}
		return nil, errf(x.Pos, "undefined identifier %q", x.Name)
	case *IndexExpr:
		bt, err := c.expr(x.Base)
		if err != nil {
			return nil, err
		}
		if !bt.IsPtr() {
			return nil, errf(x.Pos, "cannot index %s", bt)
		}
		it, err := c.expr(x.Index)
		if err != nil {
			return nil, err
		}
		if it.Kind != TypeInt {
			return nil, errf(x.Pos, "array index must be int, got %s", it)
		}
		return bt.Elem, nil
	case *DerefExpr:
		t, err := c.expr(x.X)
		if err != nil {
			return nil, err
		}
		if !t.IsPtr() {
			return nil, errf(x.Pos, "cannot dereference %s", t)
		}
		return t.Elem, nil
	case *AddrExpr:
		switch inner := x.X.(type) {
		case *IdentExpr:
			g := c.info.Globals[inner.Name]
			if g == nil {
				return nil, errf(x.Pos, "can only take the address of a global, %q is not one", inner.Name)
			}
			if _, err := c.expr(inner); err != nil {
				return nil, err
			}
			c.info.AddrGlobal[x] = g
			return PtrTo(g.Elem), nil
		case *IndexExpr:
			t, err := c.expr(inner)
			if err != nil {
				return nil, err
			}
			return PtrTo(t), nil
		}
		return nil, errf(x.Pos, "cannot take the address of this expression")
	case *UnaryExpr:
		t, err := c.expr(x.X)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case TokMinus:
			if t.Kind != TypeInt && t.Kind != TypeFloat {
				return nil, errf(x.Pos, "cannot negate %s", t)
			}
			return t, nil
		case TokNot:
			if t.Kind != TypeInt {
				return nil, errf(x.Pos, "operand of ! must be int, got %s", t)
			}
			return IntType, nil
		}
		return nil, errf(x.Pos, "bad unary operator")
	case *BinaryExpr:
		return c.binary(x)
	case *CallExpr:
		f := c.info.Funcs[x.Name]
		if f == nil {
			return nil, errf(x.Pos, "call of undefined function %q", x.Name)
		}
		if len(x.Args) != len(f.Params) {
			return nil, errf(x.Pos, "%q takes %d arguments, got %d",
				x.Name, len(f.Params), len(x.Args))
		}
		for i, a := range x.Args {
			at, err := c.expr(a)
			if err != nil {
				return nil, err
			}
			if !at.Equal(f.Params[i].Type) {
				return nil, errf(a.Position(), "argument %d of %q: have %s, want %s",
					i+1, x.Name, at, f.Params[i].Type)
			}
		}
		return f.Ret, nil
	case *MallocExpr:
		st, err := c.expr(x.Size)
		if err != nil {
			return nil, err
		}
		if st.Kind != TypeInt {
			return nil, errf(x.Pos, "malloc size must be int, got %s", st)
		}
		x.Site = len(c.info.MallocSiteNames)
		c.info.MallocSiteNames = append(c.info.MallocSiteNames,
			fmt.Sprintf("malloc@%s:%d", c.fn.Name, x.Site))
		return PtrTo(IntType), nil
	case *CastExpr:
		t, err := c.expr(x.X)
		if err != nil {
			return nil, err
		}
		switch {
		case x.To.Kind == TypeInt && t.Kind == TypeFloat,
			x.To.Kind == TypeFloat && t.Kind == TypeInt,
			x.To.Kind == TypeInt && t.Kind == TypeInt,
			x.To.Kind == TypeFloat && t.Kind == TypeFloat:
			return x.To, nil
		case x.To.IsPtr() && t.IsPtr():
			return x.To, nil
		}
		return nil, errf(x.Pos, "cannot cast %s to %s", t, x.To)
	}
	return nil, fmt.Errorf("sema: unknown expression %T", e)
}

func (c *checker) binary(x *BinaryExpr) (*Type, error) {
	lt, err := c.expr(x.L)
	if err != nil {
		return nil, err
	}
	rt, err := c.expr(x.R)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case TokAndAnd, TokOrOr:
		if lt.Kind != TypeInt || rt.Kind != TypeInt {
			return nil, errf(x.Pos, "operands of %s must be int", x.Op)
		}
		return IntType, nil
	case TokPercent, TokShl, TokShr, TokAmp, TokPipe, TokCaret:
		if lt.Kind != TypeInt || rt.Kind != TypeInt {
			return nil, errf(x.Pos, "operands of %s must be int, have %s and %s", x.Op, lt, rt)
		}
		return IntType, nil
	case TokEq, TokNe, TokLt, TokLe, TokGt, TokGe:
		if !lt.Equal(rt) {
			return nil, errf(x.Pos, "comparison of %s with %s", lt, rt)
		}
		if lt.IsPtr() && x.Op != TokEq && x.Op != TokNe {
			return nil, errf(x.Pos, "pointers support only == and !=")
		}
		return IntType, nil
	case TokPlus, TokMinus:
		// Pointer arithmetic: ptr ± int (element-scaled).
		if lt.IsPtr() && rt.Kind == TypeInt {
			return lt, nil
		}
		if x.Op == TokPlus && lt.Kind == TypeInt && rt.IsPtr() {
			return rt, nil
		}
		fallthrough
	case TokStar, TokSlash:
		if lt.Kind == TypeInt && rt.Kind == TypeInt {
			return IntType, nil
		}
		if lt.Kind == TypeFloat && rt.Kind == TypeFloat {
			return FloatType, nil
		}
		return nil, errf(x.Pos, "invalid operands of %s: %s and %s (cast explicitly)", x.Op, lt, rt)
	}
	return nil, errf(x.Pos, "bad binary operator %s", x.Op)
}
