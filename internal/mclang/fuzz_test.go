package mclang

import (
	"strings"
	"testing"

	"mcpart/internal/ir"
)

// FuzzParse drives arbitrary bytes through the parser and the semantic
// analyzer. The contract under fuzz is purely "no panic, no hang": bad
// input must come back as a positioned error, never as a crash.
func FuzzParse(f *testing.F) {
	f.Add("func main() int { return 0; }")
	f.Add("int g[8]; func main() int { g[0] = 1; return g[0]; }")
	f.Add("func f(a int) int { return a * 2; } func main() int { return f(21); }")
	f.Add("func main() int { int *p; p = malloc(16); *p = 7; return *p; }")
	f.Add("func main() int { while (1) { } return 0; }")
	f.Add("func main() int { float x; x = 1.5; return (int)x; }")
	f.Add("func main() { }")
	f.Add("\x00\xff\xfe")
	f.Add("func func func ((((")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		_, _ = Analyze(prog) // must not panic on any parseable program
	})
}

// FuzzCompile drives source through the full front end (parse, analyze,
// lower, unroll) and verifies any module it accepts: a malformed module
// slipping out of the front end would crash the partitioners downstream.
func FuzzCompile(f *testing.F) {
	f.Add("func main() int { return 0; }", 1)
	f.Add("int g[8]; func main() int { int i; i = 0; while (i < 8) { g[i & 7] = i; i = i + 1; } return g[3]; }", 4)
	f.Add("func sum(a int, b int) int { return a + b; } func main() int { return sum(1, 2); }", 2)
	f.Add("func main() int { int *p; p = malloc(32); p[1] = 9; return p[1]; }", 3)
	f.Fuzz(func(t *testing.T, src string, unroll int) {
		if unroll < 1 || unroll > 8 {
			unroll = 1 + (unroll&0x7+8)%8
		}
		mod, err := CompileUnrolled(src, "fuzz", unroll)
		if err != nil {
			// The front end rejected it; the only requirement on the
			// message is that it carries a position or a clear reason.
			if err.Error() == "" {
				t.Fatal("empty error message")
			}
			return
		}
		if err := ir.Verify(mod); err != nil {
			t.Fatalf("front end emitted an unverifiable module for %q: %v", trim(src), err)
		}
	})
}

func trim(s string) string {
	s = strings.ReplaceAll(s, "\n", " ")
	if len(s) > 120 {
		return s[:120] + "..."
	}
	return s
}
