package mclang

import (
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := LexAll("func f(int x) int { return x + 42; } // done")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokKind{TokKwFunc, TokIdent, TokLParen, TokKwInt, TokIdent,
		TokRParen, TokKwInt, TokLBrace, TokKwReturn, TokIdent, TokPlus,
		TokInt, TokSemi, TokRBrace, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(kinds))
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d = %s, want %s", i, toks[i].Kind, k)
		}
	}
	if toks[11].Int != 42 {
		t.Errorf("int literal = %d, want 42", toks[11].Int)
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := LexAll("== != <= >= << >> && || = < > & | ! ^")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{TokEq, TokNe, TokLe, TokGe, TokShl, TokShr, TokAndAnd,
		TokOrOr, TokAssign, TokLt, TokGt, TokAmp, TokPipe, TokNot, TokCaret, TokEOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d = %s, want %s", i, toks[i].Kind, k)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := LexAll("7 3.5 1e3 2.5e-2 9")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokInt || toks[0].Int != 7 {
		t.Errorf("tok0 = %+v", toks[0])
	}
	if toks[1].Kind != TokFloat || toks[1].Float != 3.5 {
		t.Errorf("tok1 = %+v", toks[1])
	}
	if toks[2].Kind != TokFloat || toks[2].Float != 1000 {
		t.Errorf("tok2 = %+v", toks[2])
	}
	if toks[3].Kind != TokFloat || toks[3].Float != 0.025 {
		t.Errorf("tok3 = %+v", toks[3])
	}
	if toks[4].Kind != TokInt || toks[4].Int != 9 {
		t.Errorf("tok4 = %+v", toks[4])
	}
}

func TestLexComments(t *testing.T) {
	toks, err := LexAll("a /* multi\nline */ b // end\nc")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 4 { // a b c EOF
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	if toks[2].Pos.Line != 3 {
		t.Errorf("c on line %d, want 3", toks[2].Pos.Line)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := LexAll("a @ b"); err == nil {
		t.Error("accepted bad character")
	}
	if _, err := LexAll("/* unterminated"); err == nil {
		t.Error("accepted unterminated comment")
	}
}

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return p
}

func TestParseGlobal(t *testing.T) {
	p := mustParse(t, "global int tab[4] = {1, 2, 3, 4}; global float x; global int s = 5;")
	if len(p.Globals) != 3 {
		t.Fatalf("got %d globals", len(p.Globals))
	}
	g := p.Globals[0]
	if g.Name != "tab" || !g.IsArray || g.Count != 4 || len(g.InitExprs) != 4 {
		t.Errorf("tab parsed wrong: %+v", g)
	}
	if p.Globals[1].Name != "x" || p.Globals[1].Elem.Kind != TypeFloat || p.Globals[1].IsArray {
		t.Errorf("x parsed wrong: %+v", p.Globals[1])
	}
	if p.Globals[2].Count != 1 || len(p.Globals[2].InitExprs) != 1 {
		t.Errorf("s parsed wrong: %+v", p.Globals[2])
	}
}

func TestParsePrecedence(t *testing.T) {
	p := mustParse(t, "func f() int { return 1 + 2 * 3; }")
	ret := p.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	add, ok := ret.X.(*BinaryExpr)
	if !ok || add.Op != TokPlus {
		t.Fatalf("top of 1+2*3 is %T, want + binary", ret.X)
	}
	mul, ok := add.R.(*BinaryExpr)
	if !ok || mul.Op != TokStar {
		t.Fatalf("right of + is %T, want * binary", add.R)
	}
}

func TestParseControlFlow(t *testing.T) {
	p := mustParse(t, `
func f(int n) int {
    int s = 0;
    int i;
    for (i = 0; i < n; i = i + 1) {
        if (i % 2 == 0) { s = s + i; } else { s = s - 1; }
        while (s > 100) { s = s / 2; break; }
    }
    return s;
}`)
	if len(p.Funcs) != 1 || p.Funcs[0].Name != "f" {
		t.Fatal("func not parsed")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"func f( { }",
		"global int x",              // missing semicolon
		"func f() int { return }",   // missing expr then ;
		"func f() { int a[3]; }",    // local array
		"global int a[0];",          // zero length
		"func f() { x = ; }",        // missing rhs
		"stray",                     // top-level garbage
		"func f() { if x { } }",     // missing parens
		"func f() { for (;;) }",     // missing body
		"global int g[2] = {1,2,};", // trailing comma
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted bad program %q", src)
		}
	}
}

func TestSemaResolvesAndTypes(t *testing.T) {
	p := mustParse(t, `
global int tab[3] = {10, 20, 30};
func get(int i) int { return tab[i]; }
func main() int { return get(1); }`)
	info, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Globals) != 1 || info.Globals["tab"] == nil {
		t.Error("tab not registered")
	}
	if got := info.Globals["tab"].InitInts; len(got) != 3 || got[1] != 20 {
		t.Errorf("folded init = %v", got)
	}
}

func TestSemaConstFold(t *testing.T) {
	p := mustParse(t, "global int x = 2 * 3 + 4; global float y = -1.5; func main() int { return 0; }")
	info, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if info.Globals["x"].InitInts[0] != 10 {
		t.Errorf("x init = %v", info.Globals["x"].InitInts)
	}
	if info.Globals["y"].InitFlts[0] != -1.5 {
		t.Errorf("y init = %v", info.Globals["y"].InitFlts)
	}
}

func TestSemaErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"func f() int { return 0; }", "no main"},
		{"func main() int { return nope; }", "undefined identifier"},
		{"func main() int { return 1.5; }", "return float"},
		{"global int x; global int x; func main() int { return 0; }", "redeclared"},
		{"func main() int { int a = 1.0; return a; }", "cannot initialize"},
		{"func main() int { return 1 + 1.0; }", "invalid operands"},
		{"func main() int { int a; a[0] = 1; return 0; }", "cannot index"},
		{"func main() int { break; return 0; }", "break outside loop"},
		{"func main() int { return f(1); }", "undefined function"},
		{"func g(int a) int { return a; } func main() int { return g(); }", "takes 1 arguments"},
		{"global int t[2]; func main() int { t = 0; return 0; }", "cannot assign to array"},
		{"func main() int { int y; return &y; }", "address of a global"},
		{"global float f; func main() int { if (f) { } return 0; }", "condition must be int"},
		{"func main() float { return 2.0 % 1.0; }", "must be int"},
		{"func main() int { return (int)malloc(8); }", "cannot cast"},
	}
	for _, c := range cases {
		p, err := Parse(c.src)
		if err != nil {
			t.Errorf("%q failed to parse: %v", c.src, err)
			continue
		}
		_, err = Analyze(p)
		if err == nil {
			t.Errorf("Analyze accepted %q", c.src)
			continue
		}
		if !strings.Contains(err.Error(), strings.Split(c.want, " ")[0]) {
			t.Errorf("Analyze(%q) error = %q, want mention of %q", c.src, err, c.want)
		}
	}
}

func TestLowerProducesVerifiedIR(t *testing.T) {
	mod, err := Compile(`
global int tab[4] = {1, 2, 3, 4};
func sum(int n) int {
    int s = 0;
    int i;
    for (i = 0; i < n; i = i + 1) { s = s + tab[i]; }
    return s;
}
func main() int { return sum(4); }`, "t")
	if err != nil {
		t.Fatal(err)
	}
	if mod.Func("sum") == nil || mod.Func("main") == nil {
		t.Fatal("functions missing")
	}
	if len(mod.Objects) != 1 || mod.Objects[0].Size != 32 {
		t.Fatalf("objects = %v", mod.Objects)
	}
}

func TestLowerMallocSites(t *testing.T) {
	mod, err := Compile(`
func main() int {
    int *a;
    int *b;
    a = malloc(64);
    b = malloc(128);
    a[0] = 1;
    b[1] = 2;
    return a[0] + b[1];
}`, "t")
	if err != nil {
		t.Fatal(err)
	}
	heap := 0
	for _, o := range mod.Objects {
		if o.Kind == 1 { // ObjHeap
			heap++
		}
	}
	if heap != 2 {
		t.Fatalf("got %d heap sites, want 2", heap)
	}
}
