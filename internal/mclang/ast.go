package mclang

import "fmt"

// TypeKind discriminates language types.
type TypeKind int

// Type kinds. Pointers are one level deep over int or float (pointer to
// pointer is permitted syntactically via nesting but unused in practice).
const (
	TypeInt TypeKind = iota
	TypeFloat
	TypePtr
	TypeVoid // function return only
)

// Type is an mclang type.
type Type struct {
	Kind TypeKind
	Elem *Type // for TypePtr
}

// Canonical singleton types.
var (
	IntType   = &Type{Kind: TypeInt}
	FloatType = &Type{Kind: TypeFloat}
	VoidType  = &Type{Kind: TypeVoid}
)

// PtrTo returns the pointer type over elem.
func PtrTo(elem *Type) *Type { return &Type{Kind: TypePtr, Elem: elem} }

// Equal reports structural type equality.
func (t *Type) Equal(u *Type) bool {
	if t == nil || u == nil {
		return t == u
	}
	if t.Kind != u.Kind {
		return false
	}
	if t.Kind == TypePtr {
		return t.Elem.Equal(u.Elem)
	}
	return true
}

// IsPtr reports whether t is a pointer type.
func (t *Type) IsPtr() bool { return t != nil && t.Kind == TypePtr }

func (t *Type) String() string {
	switch t.Kind {
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeVoid:
		return "void"
	case TypePtr:
		return t.Elem.String() + "*"
	}
	return "?"
}

// Program is a parsed compilation unit.
type Program struct {
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// GlobalDecl declares a global scalar or array with optional initializers.
type GlobalDecl struct {
	Pos       Pos
	Name      string
	Elem      *Type // element type: int or float
	Count     int64 // 1 for scalars, array length otherwise
	IsArray   bool
	InitInts  []int64   // constant initializers (Elem int)
	InitFlts  []float64 // constant initializers (Elem float)
	HasInit   bool
	InitExprs []Expr // raw initializer expressions (const-folded in sema)
}

// Param is a function parameter.
type Param struct {
	Name string
	Type *Type
	Pos  Pos
}

// FuncDecl declares a function.
type FuncDecl struct {
	Pos    Pos
	Name   string
	Params []*Param
	Ret    *Type // VoidType when omitted
	Body   *BlockStmt
}

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmtNode() }

// Expr is implemented by all expression nodes. Sema annotates each node
// with its type via SetType/TypeOf.
type Expr interface {
	exprNode()
	TypeOf() *Type
	setType(*Type)
	Position() Pos
}

type exprBase struct {
	typ *Type
	Pos Pos
}

func (e *exprBase) exprNode()       {}
func (e *exprBase) TypeOf() *Type   { return e.typ }
func (e *exprBase) setType(t *Type) { e.typ = t }
func (e *exprBase) Position() Pos   { return e.Pos }
func (e *exprBase) String() string  { return fmt.Sprintf("expr@%s", e.Pos) }

// Statements.

// BlockStmt is a brace-delimited statement list with its own scope.
type BlockStmt struct {
	Pos   Pos
	Stmts []Stmt
}

// VarDeclStmt declares a local scalar with optional initializer.
type VarDeclStmt struct {
	Pos  Pos
	Name string
	Type *Type
	Init Expr // nil when absent
}

// AssignStmt assigns to an lvalue (variable, *ptr, g[i], p[i]).
type AssignStmt struct {
	Pos Pos
	LHS Expr // IdentExpr, IndexExpr, or DerefExpr
	RHS Expr
}

// ExprStmt evaluates an expression for effect (calls).
type ExprStmt struct {
	Pos Pos
	X   Expr
}

// IfStmt is if/else.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then Stmt
	Else Stmt // nil when absent
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body Stmt
}

// ForStmt is a C-style for loop; Init and Post are assignments (or nil).
type ForStmt struct {
	Pos  Pos
	Init Stmt // AssignStmt or nil
	Cond Expr // nil means true
	Post Stmt // AssignStmt or nil
	Body Stmt
}

// ReturnStmt returns an optional value.
type ReturnStmt struct {
	Pos Pos
	X   Expr // nil for bare return
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt jumps to the innermost loop's post/condition.
type ContinueStmt struct{ Pos Pos }

func (*BlockStmt) stmtNode()    {}
func (*VarDeclStmt) stmtNode()  {}
func (*AssignStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}

// Expressions.

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Val int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	exprBase
	Val float64
}

// IdentExpr references a local, parameter, or global scalar.
type IdentExpr struct {
	exprBase
	Name string
}

// IndexExpr is base[index] where base is an array global or a pointer.
type IndexExpr struct {
	exprBase
	Base  Expr
	Index Expr
}

// DerefExpr is *ptr.
type DerefExpr struct {
	exprBase
	X Expr
}

// AddrExpr is &g or &g[i] for a global g.
type AddrExpr struct {
	exprBase
	X Expr // IdentExpr or IndexExpr over a global array
}

// UnaryExpr is -x or !x.
type UnaryExpr struct {
	exprBase
	Op TokKind // TokMinus or TokNot
	X  Expr
}

// BinaryExpr is a binary operation, including && and || (short-circuit).
type BinaryExpr struct {
	exprBase
	Op   TokKind
	L, R Expr
}

// CallExpr calls a named function.
type CallExpr struct {
	exprBase
	Name string
	Args []Expr
}

// MallocExpr allocates Size bytes on the heap; its type is set by an
// enclosing cast, defaulting to int*.
type MallocExpr struct {
	exprBase
	Size Expr
	Site int // static call-site index, assigned by sema
}

// CastExpr converts between int and float, or retypes a pointer.
type CastExpr struct {
	exprBase
	To *Type
	X  Expr
}
