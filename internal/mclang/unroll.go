package mclang

// Loop unrolling, applied between parsing and semantic analysis. VLIW
// compilers (including the paper's Trimaran toolchain) unroll hot loops so
// a single scheduling region carries instruction-level parallelism across
// iterations; without it a 2-cluster machine has nothing to spread. The
// pass rewrites canonical counted loops
//
//	for (i = e0; i < N; i = i + S) body
//
// into a main loop stepping U*S that runs U body copies (each in its own
// scope), followed by an epilogue loop handling the remainder:
//
//	for (i = e0; i + (U-1)*S < N; i = i + U*S) { {body} {i+S...} ... }
//	for (; i < N; i = i + S) body
//
// Safety conditions (checked syntactically): the induction variable is a
// plain identifier that is not a global (a callee could mutate a global
// counter) and is assigned nowhere in the body, the step is a positive
// integer constant, the condition is i < e or i <= e with e free of calls
// and of i, and the body contains no break/continue that would escape the
// copied iterations.

import "mcpart/internal/ir"

// Unroll rewrites every eligible for loop in prog with the given factor
// (a no-op when factor < 2). It must run before Analyze, since it creates
// new AST nodes that need resolution.
func Unroll(prog *Program, factor int) {
	if factor < 2 {
		return
	}
	u := &unroller{factor: factor, globals: map[string]bool{}}
	for _, g := range prog.Globals {
		u.globals[g.Name] = true
	}
	for _, f := range prog.Funcs {
		u.declType = map[string]*Type{}
		for _, p := range f.Params {
			u.declType[p.Name] = p.Type
		}
		walkStmts(f.Body, func(s Stmt) {
			if d, ok := s.(*VarDeclStmt); ok {
				u.declType[d.Name] = d.Type
			}
		})
		f.Body = u.stmt(f.Body).(*BlockStmt)
	}
}

type unroller struct {
	factor   int
	globals  map[string]bool
	declType map[string]*Type
	nextAcc  int
}

func (u *unroller) stmt(s Stmt) Stmt {
	switch x := s.(type) {
	case *BlockStmt:
		out := &BlockStmt{Pos: x.Pos}
		for _, st := range x.Stmts {
			out.Stmts = append(out.Stmts, u.stmt(st))
		}
		return out
	case *IfStmt:
		n := &IfStmt{Pos: x.Pos, Cond: x.Cond, Then: u.stmt(x.Then)}
		if x.Else != nil {
			n.Else = u.stmt(x.Else)
		}
		return n
	case *WhileStmt:
		return &WhileStmt{Pos: x.Pos, Cond: x.Cond, Body: u.stmt(x.Body)}
	case *ForStmt:
		// Unroll innermost first.
		inner := &ForStmt{Pos: x.Pos, Init: x.Init, Cond: x.Cond, Post: x.Post, Body: u.stmt(x.Body)}
		if un := u.tryUnroll(inner); un != nil {
			return un
		}
		return inner
	default:
		return s
	}
}

// tryUnroll returns the unrolled replacement or nil if the loop is not
// eligible.
func (u *unroller) tryUnroll(loop *ForStmt) Stmt {
	iv, step, ok := canonicalPost(loop.Post)
	if !ok || u.globals[iv] {
		return nil
	}
	cond, ok := loop.Cond.(*BinaryExpr)
	if !ok || (cond.Op != TokLt && cond.Op != TokLe) {
		return nil
	}
	lhs, ok := cond.L.(*IdentExpr)
	if !ok || lhs.Name != iv {
		return nil
	}
	if mentions(cond.R, iv) || hasCall(cond.R) {
		return nil
	}
	if loop.Init != nil {
		asg, ok := loop.Init.(*AssignStmt)
		if !ok {
			return nil
		}
		if id, ok := asg.LHS.(*IdentExpr); !ok || id.Name != iv {
			return nil
		}
	}
	if !bodySafe(loop.Body, iv) {
		return nil
	}
	if containsLoop(loop.Body) {
		return nil // only innermost loops unroll, as in most VLIW compilers
	}

	// Main loop: cond becomes  i + (U-1)*S <op> bound ; post steps U*S;
	// body is U copies, copy k executing with an adjusted view of i by
	// prefixing `i = i + S` between copies and restoring via the post.
	// To keep the rewrite simple and obviously correct we step the real
	// induction variable between copies:
	//
	//	{ body; i = i + S; body; i = i + S; ...; body }   // U copies, U-1 steps
	//	post: i = i + S                                    // completes U*S
	//
	// The guard ensures all U iterations are in range.
	pos := loop.Pos
	ident := func() *IdentExpr { return &IdentExpr{exprBase: exprBase{Pos: pos}, Name: iv} }
	intLit := func(v int64) *IntLit { return &IntLit{exprBase: exprBase{Pos: pos}, Val: v} }
	stepBy := func(mult int64) *AssignStmt {
		return &AssignStmt{Pos: pos, LHS: ident(), RHS: &BinaryExpr{
			exprBase: exprBase{Pos: pos}, Op: TokPlus, L: ident(), R: intLit(step * mult)}}
	}

	guard := &BinaryExpr{exprBase: exprBase{Pos: pos}, Op: cond.Op,
		L: &BinaryExpr{exprBase: exprBase{Pos: pos}, Op: TokPlus,
			L: ident(), R: intLit(step * int64(u.factor-1))},
		R: cloneExpr(cond.R),
	}
	mainBody := &BlockStmt{Pos: pos}
	copies := make([]Stmt, 0, u.factor)
	for k := 0; k < u.factor; k++ {
		if k > 0 {
			mainBody.Stmts = append(mainBody.Stmts, stepBy(1))
		}
		c := cloneStmt(loop.Body)
		copies = append(copies, c)
		mainBody.Stmts = append(mainBody.Stmts, c)
	}
	accs := u.findAccumulators(loop.Body)
	decls, folds := u.expandAccumulators(pos, accs, copies)
	main := &ForStmt{Pos: pos, Init: loop.Init, Cond: guard, Post: stepBy(1), Body: mainBody}
	epilogue := &ForStmt{Pos: pos, Cond: cloneExpr(loop.Cond), Post: cloneStmt(loop.Post).(*AssignStmt), Body: cloneStmt(loop.Body)}
	out := &BlockStmt{Pos: pos}
	out.Stmts = append(out.Stmts, decls...)
	out.Stmts = append(out.Stmts, main)
	out.Stmts = append(out.Stmts, folds...)
	out.Stmts = append(out.Stmts, epilogue)
	return out
}

// canonicalPost matches `i = i + C` (C a positive int literal) and returns
// the induction variable name and step.
func canonicalPost(post Stmt) (string, int64, bool) {
	asg, ok := post.(*AssignStmt)
	if !ok {
		return "", 0, false
	}
	lhs, ok := asg.LHS.(*IdentExpr)
	if !ok {
		return "", 0, false
	}
	bin, ok := asg.RHS.(*BinaryExpr)
	if !ok || bin.Op != TokPlus {
		return "", 0, false
	}
	l, ok := bin.L.(*IdentExpr)
	if !ok || l.Name != lhs.Name {
		return "", 0, false
	}
	c, ok := bin.R.(*IntLit)
	if !ok || c.Val <= 0 {
		return "", 0, false
	}
	return lhs.Name, c.Val, true
}

// bodySafe reports whether the loop body can be duplicated: no
// break/continue anywhere inside (even in nested loops, to stay simple),
// and no assignment to the induction variable.
func bodySafe(s Stmt, iv string) bool {
	switch x := s.(type) {
	case nil:
		return true
	case *BlockStmt:
		for _, st := range x.Stmts {
			if !bodySafe(st, iv) {
				return false
			}
		}
		return true
	case *VarDeclStmt:
		return x.Name != iv // shadowing would change copy semantics
	case *AssignStmt:
		if id, ok := x.LHS.(*IdentExpr); ok && id.Name == iv {
			return false
		}
		return true
	case *ExprStmt, *ReturnStmt:
		// Return inside a loop exits the function; duplicating the body
		// cannot execute an extra return because the guard admits all U
		// iterations. Safe.
		return true
	case *IfStmt:
		return bodySafe(x.Then, iv) && bodySafe(x.Else, iv)
	case *WhileStmt:
		return bodySafe(x.Body, iv)
	case *ForStmt:
		return bodySafe(x.Init, iv) && bodySafe(x.Post, iv) && bodySafe(x.Body, iv)
	case *BreakStmt, *ContinueStmt:
		return false
	}
	return false
}

// containsLoop reports whether any loop statement appears inside s.
func containsLoop(s Stmt) bool {
	switch x := s.(type) {
	case *BlockStmt:
		for _, st := range x.Stmts {
			if containsLoop(st) {
				return true
			}
		}
	case *IfStmt:
		return containsLoop(x.Then) || (x.Else != nil && containsLoop(x.Else))
	case *WhileStmt, *ForStmt:
		return true
	}
	return false
}

func mentions(e Expr, name string) bool {
	found := false
	walkExpr(e, func(x Expr) {
		if id, ok := x.(*IdentExpr); ok && id.Name == name {
			found = true
		}
	})
	return found
}

func hasCall(e Expr) bool {
	found := false
	walkExpr(e, func(x Expr) {
		switch x.(type) {
		case *CallExpr, *MallocExpr:
			found = true
		}
	})
	return found
}

func walkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *IndexExpr:
		walkExpr(x.Base, fn)
		walkExpr(x.Index, fn)
	case *DerefExpr:
		walkExpr(x.X, fn)
	case *AddrExpr:
		walkExpr(x.X, fn)
	case *UnaryExpr:
		walkExpr(x.X, fn)
	case *BinaryExpr:
		walkExpr(x.L, fn)
		walkExpr(x.R, fn)
	case *CallExpr:
		for _, a := range x.Args {
			walkExpr(a, fn)
		}
	case *MallocExpr:
		walkExpr(x.Size, fn)
	case *CastExpr:
		walkExpr(x.X, fn)
	}
}

// cloneStmt deep-copies a statement tree (fresh nodes, so sema annotations
// stay per-copy).
func cloneStmt(s Stmt) Stmt {
	switch x := s.(type) {
	case nil:
		return nil
	case *BlockStmt:
		n := &BlockStmt{Pos: x.Pos}
		for _, st := range x.Stmts {
			n.Stmts = append(n.Stmts, cloneStmt(st))
		}
		return n
	case *VarDeclStmt:
		return &VarDeclStmt{Pos: x.Pos, Name: x.Name, Type: x.Type, Init: cloneExpr(x.Init)}
	case *AssignStmt:
		return &AssignStmt{Pos: x.Pos, LHS: cloneExpr(x.LHS), RHS: cloneExpr(x.RHS)}
	case *ExprStmt:
		return &ExprStmt{Pos: x.Pos, X: cloneExpr(x.X)}
	case *IfStmt:
		return &IfStmt{Pos: x.Pos, Cond: cloneExpr(x.Cond), Then: cloneStmt(x.Then), Else: cloneStmt(x.Else)}
	case *WhileStmt:
		return &WhileStmt{Pos: x.Pos, Cond: cloneExpr(x.Cond), Body: cloneStmt(x.Body)}
	case *ForStmt:
		return &ForStmt{Pos: x.Pos, Init: cloneStmt(x.Init), Cond: cloneExpr(x.Cond),
			Post: cloneStmt(x.Post), Body: cloneStmt(x.Body)}
	case *ReturnStmt:
		return &ReturnStmt{Pos: x.Pos, X: cloneExpr(x.X)}
	case *BreakStmt:
		return &BreakStmt{Pos: x.Pos}
	case *ContinueStmt:
		return &ContinueStmt{Pos: x.Pos}
	}
	// Invariant: the statement AST is a closed set produced by this
	// package's parser; an unknown node means cloneStmt fell behind a new
	// AST variant — a maintenance bug, unreachable from any input.
	panic("mclang: cloneStmt: unknown statement")
}

func cloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *IntLit:
		return &IntLit{exprBase: exprBase{Pos: x.Pos}, Val: x.Val}
	case *FloatLit:
		return &FloatLit{exprBase: exprBase{Pos: x.Pos}, Val: x.Val}
	case *IdentExpr:
		return &IdentExpr{exprBase: exprBase{Pos: x.Pos}, Name: x.Name}
	case *IndexExpr:
		return &IndexExpr{exprBase: exprBase{Pos: x.Pos}, Base: cloneExpr(x.Base), Index: cloneExpr(x.Index)}
	case *DerefExpr:
		return &DerefExpr{exprBase: exprBase{Pos: x.Pos}, X: cloneExpr(x.X)}
	case *AddrExpr:
		return &AddrExpr{exprBase: exprBase{Pos: x.Pos}, X: cloneExpr(x.X)}
	case *UnaryExpr:
		return &UnaryExpr{exprBase: exprBase{Pos: x.Pos}, Op: x.Op, X: cloneExpr(x.X)}
	case *BinaryExpr:
		return &BinaryExpr{exprBase: exprBase{Pos: x.Pos}, Op: x.Op, L: cloneExpr(x.L), R: cloneExpr(x.R)}
	case *CallExpr:
		n := &CallExpr{exprBase: exprBase{Pos: x.Pos}, Name: x.Name}
		for _, a := range x.Args {
			n.Args = append(n.Args, cloneExpr(a))
		}
		return n
	case *MallocExpr:
		return &MallocExpr{exprBase: exprBase{Pos: x.Pos}, Size: cloneExpr(x.Size), Site: -1}
	case *CastExpr:
		return &CastExpr{exprBase: exprBase{Pos: x.Pos}, To: x.To, X: cloneExpr(x.X)}
	}
	// Invariant: closed expression AST, same argument as cloneStmt.
	panic("mclang: cloneExpr: unknown expression")
}

// CompileUnrolled parses src, unrolls counted loops by factor, analyzes and
// lowers. factor < 2 matches Compile exactly.
func CompileUnrolled(src, name string, factor int) (*ir.Module, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	Unroll(prog, factor)
	info, err := Analyze(prog)
	if err != nil {
		return nil, err
	}
	return Lower(info, name)
}
