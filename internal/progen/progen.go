// Package progen generates random—but always valid and terminating—mclang
// programs for property-based testing of the whole pipeline: the front end
// must compile them, the interpreter must run them without traps, the
// optimizer and unroller must preserve their checksums, the points-to
// analysis must stay sound on them, and every partitioning scheme must
// produce valid results.
//
// Safety-by-construction rules: all loops are counted with constant bounds;
// array subscripts are masked with `& (len-1)` over power-of-two lengths
// (never negative, never out of bounds); divisors and remainder operands
// are nonzero constants; calls only target previously generated functions
// (no recursion); float/int conversions are explicit.
package progen

import (
	"fmt"
	"math/rand"
	"strings"

	"mcpart/internal/defaults"
)

// Options bounds the generated program.
type Options struct {
	MaxGlobals   int // default 6
	MaxFuncs     int // default 4
	MaxStmtDepth int // default 3
	MaxLoopTrip  int // default 12
}

func (o Options) globals() int { return defaults.Int(o.MaxGlobals, 6) }
func (o Options) funcs() int   { return defaults.Int(o.MaxFuncs, 4) }
func (o Options) depth() int   { return defaults.Int(o.MaxStmtDepth, 3) }
func (o Options) trip() int    { return defaults.Int(o.MaxLoopTrip, 12) }

// Generate returns a deterministic random mclang program for the seed.
func Generate(seed int64, opts Options) string {
	g := &gen{
		rng:       rand.New(rand.NewSource(seed)),
		opts:      opts,
		protected: map[string]bool{},
	}
	return g.program()
}

type global struct {
	name    string
	isFloat bool
	length  int // power of two; 1 = scalar
}

type fn struct {
	name    string
	nparams int
}

type gen struct {
	rng  *rand.Rand
	opts Options
	sb   strings.Builder

	globals []global
	funcs   []fn

	// per-function state
	intVars   []string
	floatVars []string
	ptrVars   []string
	depth     int
	tmp       int
	callSites int
	// protected marks induction variables of currently open loops, which
	// must not be assigned (termination would be lost).
	protected map[string]bool
}

func (g *gen) program() string {
	ng := 2 + g.rng.Intn(g.opts.globals())
	for i := 0; i < ng; i++ {
		gl := global{
			name:    fmt.Sprintf("g%d", i),
			isFloat: g.rng.Intn(4) == 0,
			length:  1 << uint(g.rng.Intn(6)), // 1..32
		}
		g.globals = append(g.globals, gl)
		ty := "int"
		if gl.isFloat {
			ty = "float"
		}
		if gl.length == 1 {
			fmt.Fprintf(&g.sb, "global %s %s;\n", ty, gl.name)
		} else {
			fmt.Fprintf(&g.sb, "global %s %s[%d]", ty, gl.name, gl.length)
			if g.rng.Intn(2) == 0 {
				g.sb.WriteString(" = {")
				n := 1 + g.rng.Intn(gl.length)
				for j := 0; j < n; j++ {
					if j > 0 {
						g.sb.WriteString(", ")
					}
					if gl.isFloat {
						fmt.Fprintf(&g.sb, "%d.%d", g.rng.Intn(50)-25, g.rng.Intn(10))
					} else {
						fmt.Fprintf(&g.sb, "%d", g.rng.Intn(200)-100)
					}
				}
				g.sb.WriteString("}")
			}
			g.sb.WriteString(";\n")
		}
	}
	nf := 1 + g.rng.Intn(g.opts.funcs())
	for i := 0; i < nf; i++ {
		g.emitFunc(fmt.Sprintf("f%d", i))
	}
	g.emitMain()
	return g.sb.String()
}

func (g *gen) emitFunc(name string) {
	nparams := g.rng.Intn(3)
	g.intVars, g.floatVars, g.ptrVars = nil, nil, nil
	g.tmp = 0
	g.callSites = 0
	fmt.Fprintf(&g.sb, "func %s(", name)
	for i := 0; i < nparams; i++ {
		if i > 0 {
			g.sb.WriteString(", ")
		}
		fmt.Fprintf(&g.sb, "int p%d", i)
		g.intVars = append(g.intVars, fmt.Sprintf("p%d", i))
	}
	g.sb.WriteString(") int {\n")
	g.emitBody(2 + g.rng.Intn(4))
	fmt.Fprintf(&g.sb, "    return %s;\n}\n", g.intExpr(2))
	// Register only after the body is emitted so no function can call
	// itself (guaranteed termination).
	g.funcs = append(g.funcs, fn{name: name, nparams: nparams})
}

func (g *gen) emitMain() {
	g.intVars, g.floatVars, g.ptrVars = nil, nil, nil
	g.tmp = 0
	g.callSites = 0
	g.sb.WriteString("func main() int {\n")
	// A heap buffer to exercise malloc and pointers.
	if g.rng.Intn(2) == 0 {
		size := 8 << uint(g.rng.Intn(4)) // 8..64 words
		fmt.Fprintf(&g.sb, "    int *h;\n    h = malloc(%d);\n", size*8)
		fmt.Fprintf(&g.sb, "    h[0] = %d;\n", g.rng.Intn(100))
		g.ptrVars = append(g.ptrVars, "h")
	}
	g.emitBody(3 + g.rng.Intn(4))
	fmt.Fprintf(&g.sb, "    return (%s) %% 1000003;\n}\n", g.intExpr(2))
}

func (g *gen) emitBody(nstmts int) {
	for i := 0; i < nstmts; i++ {
		g.stmt()
	}
}

// scoped runs fn and then forgets any variables it declared, matching
// mclang's block scoping.
func (g *gen) scoped(fn func()) {
	ni, nf, np := len(g.intVars), len(g.floatVars), len(g.ptrVars)
	fn()
	g.intVars = g.intVars[:ni]
	g.floatVars = g.floatVars[:nf]
	g.ptrVars = g.ptrVars[:np]
}

func (g *gen) newIntVar() string {
	v := fmt.Sprintf("t%d", g.tmp)
	g.tmp++
	fmt.Fprintf(&g.sb, "%sint %s = %s;\n", g.indent(), v, g.intExpr(1))
	g.intVars = append(g.intVars, v)
	return v
}

func (g *gen) indent() string { return strings.Repeat("    ", g.depth+1) }

func (g *gen) stmt() {
	switch r := g.rng.Intn(10); {
	case r < 3: // declaration
		if g.rng.Intn(4) == 0 {
			v := fmt.Sprintf("t%d", g.tmp)
			g.tmp++
			fmt.Fprintf(&g.sb, "%sfloat %s = %s;\n", g.indent(), v, g.floatExpr(1))
			g.floatVars = append(g.floatVars, v)
		} else {
			g.newIntVar()
		}
	case r < 6: // assignment
		g.assign()
	case r < 8 && g.depth < g.opts.depth(): // counted loop
		iv := fmt.Sprintf("i%d", g.tmp)
		g.tmp++
		fmt.Fprintf(&g.sb, "%sint %s;\n", g.indent(), iv)
		trip := 2 + g.rng.Intn(g.opts.trip())
		step := 1 + g.rng.Intn(2)
		fmt.Fprintf(&g.sb, "%sfor (%s = 0; %s < %d; %s = %s + %d) {\n",
			g.indent(), iv, iv, trip, iv, iv, step)
		g.intVars = append(g.intVars, iv)
		g.protected[iv] = true
		g.depth++
		g.scoped(func() { g.emitBody(1 + g.rng.Intn(3)) })
		g.depth--
		delete(g.protected, iv)
		// iv stays visible (declared outside the loop).
		fmt.Fprintf(&g.sb, "%s}\n", g.indent())
	case r < 9 && g.depth < g.opts.depth(): // if/else
		fmt.Fprintf(&g.sb, "%sif (%s) {\n", g.indent(), g.condExpr())
		g.depth++
		g.scoped(func() { g.emitBody(1 + g.rng.Intn(2)) })
		g.depth--
		if g.rng.Intn(2) == 0 {
			fmt.Fprintf(&g.sb, "%s} else {\n", g.indent())
			g.depth++
			g.scoped(func() { g.emitBody(1 + g.rng.Intn(2)) })
			g.depth--
		}
		fmt.Fprintf(&g.sb, "%s}\n", g.indent())
	default: // call for effect, when the cost stays bounded
		if f, ok := g.pickCallee(); ok {
			fmt.Fprintf(&g.sb, "%s%s;\n", g.indent(), g.callExpr(f))
		} else {
			g.assign()
		}
	}
}

// pickCallee bounds dynamic cost: at statement depth 0 any earlier
// function may be called; at depth 1 only the first (cheapest-chain)
// function; deeper calls are disallowed, so nested loops cannot multiply
// whole call trees.
func (g *gen) pickCallee() (fn, bool) {
	if len(g.funcs) == 0 || g.callSites >= 2 {
		return fn{}, false
	}
	switch g.depth {
	case 0:
		g.callSites++
		return g.funcs[g.rng.Intn(len(g.funcs))], true
	case 1:
		// Inside one loop level only the first (cheapest) function may be
		// called, keeping total dynamic cost linear in the function count.
		g.callSites++
		return g.funcs[0], true
	}
	return fn{}, false
}

func (g *gen) assign() {
	// Choose a target: global scalar, global array slot, heap slot, or var.
	switch r := g.rng.Intn(4); {
	case r == 0 && len(g.intVars) > 0:
		v := g.intVars[g.rng.Intn(len(g.intVars))]
		if g.protected[v] {
			g.assignGlobal()
			return
		}
		fmt.Fprintf(&g.sb, "%s%s = %s;\n", g.indent(), v, g.intExpr(2))
	case r == 1 && len(g.ptrVars) > 0:
		p := g.ptrVars[g.rng.Intn(len(g.ptrVars))]
		fmt.Fprintf(&g.sb, "%s%s[%s & 7] = %s;\n", g.indent(), p, g.intExpr(1), g.intExpr(2))
	default:
		g.assignGlobal()
	}
}

func (g *gen) assignGlobal() {
	{
		gl := g.globals[g.rng.Intn(len(g.globals))]
		if gl.isFloat {
			if gl.length == 1 {
				fmt.Fprintf(&g.sb, "%s%s = %s;\n", g.indent(), gl.name, g.floatExpr(2))
			} else {
				fmt.Fprintf(&g.sb, "%s%s[%s & %d] = %s;\n",
					g.indent(), gl.name, g.intExpr(1), gl.length-1, g.floatExpr(2))
			}
			return
		}
		if gl.length == 1 {
			fmt.Fprintf(&g.sb, "%s%s = %s;\n", g.indent(), gl.name, g.intExpr(2))
		} else {
			fmt.Fprintf(&g.sb, "%s%s[%s & %d] = %s;\n",
				g.indent(), gl.name, g.intExpr(1), gl.length-1, g.intExpr(2))
		}
	}
}

func (g *gen) condExpr() string {
	ops := []string{"<", "<=", ">", ">=", "==", "!="}
	c := fmt.Sprintf("%s %s %s", g.intExpr(1), ops[g.rng.Intn(len(ops))], g.intExpr(1))
	if g.rng.Intn(4) == 0 {
		c = fmt.Sprintf("%s && %s %s %s", c, g.intExpr(0), ops[g.rng.Intn(len(ops))], g.intExpr(0))
	}
	return c
}

// intExpr generates an int-typed expression of bounded depth.
func (g *gen) intExpr(depth int) string {
	if depth <= 0 {
		return g.intAtom()
	}
	switch g.rng.Intn(8) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.intExpr(depth-1), g.intExpr(depth-1))
	case 1:
		return fmt.Sprintf("(%s - %s)", g.intExpr(depth-1), g.intExpr(depth-1))
	case 2:
		return fmt.Sprintf("(%s * %s)", g.intExpr(depth-1), g.intAtom())
	case 3:
		return fmt.Sprintf("(%s / %d)", g.intExpr(depth-1), 1+g.rng.Intn(9))
	case 4:
		return fmt.Sprintf("(%s %% %d)", g.intExpr(depth-1), 2+g.rng.Intn(30))
	case 5:
		return fmt.Sprintf("(%s & %d)", g.intExpr(depth-1), g.rng.Intn(255))
	case 6:
		return fmt.Sprintf("(%s >> %d)", g.intExpr(depth-1), g.rng.Intn(5))
	default:
		if g.rng.Intn(3) == 0 && len(g.floatVars) > 0 {
			return fmt.Sprintf("(int)(%s)", g.floatExpr(depth-1))
		}
		return fmt.Sprintf("(%s ^ %s)", g.intExpr(depth-1), g.intAtom())
	}
}

func (g *gen) intAtom() string {
	choices := g.rng.Intn(5)
	switch {
	case choices == 0 && len(g.intVars) > 0:
		return g.intVars[g.rng.Intn(len(g.intVars))]
	case choices == 1:
		gl := g.pickGlobal(false)
		if gl != nil {
			if gl.length == 1 {
				return gl.name
			}
			return fmt.Sprintf("%s[%s & %d]", gl.name, g.smallIndex(), gl.length-1)
		}
	case choices == 2 && len(g.ptrVars) > 0:
		return fmt.Sprintf("%s[%s & 7]", g.ptrVars[g.rng.Intn(len(g.ptrVars))], g.smallIndex())
	case choices == 3:
		if f, ok := g.pickCallee(); ok {
			return g.callExpr(f)
		}
	}
	return fmt.Sprintf("%d", g.rng.Intn(200)-100)
}

func (g *gen) smallIndex() string {
	if len(g.intVars) > 0 && g.rng.Intn(2) == 0 {
		return g.intVars[g.rng.Intn(len(g.intVars))]
	}
	return fmt.Sprintf("%d", g.rng.Intn(32))
}

func (g *gen) callExpr(f fn) string {
	args := make([]string, f.nparams)
	for i := range args {
		args[i] = g.intExpr(0)
	}
	return fmt.Sprintf("%s(%s)", f.name, strings.Join(args, ", "))
}

func (g *gen) floatExpr(depth int) string {
	if depth <= 0 {
		return g.floatAtom()
	}
	ops := []string{"+", "-", "*"}
	return fmt.Sprintf("(%s %s %s)", g.floatExpr(depth-1), ops[g.rng.Intn(len(ops))], g.floatAtom())
}

func (g *gen) floatAtom() string {
	switch g.rng.Intn(4) {
	case 0:
		if len(g.floatVars) > 0 {
			return g.floatVars[g.rng.Intn(len(g.floatVars))]
		}
	case 1:
		gl := g.pickGlobal(true)
		if gl != nil {
			if gl.length == 1 {
				return gl.name
			}
			return fmt.Sprintf("%s[%s & %d]", gl.name, g.smallIndex(), gl.length-1)
		}
	case 2:
		return fmt.Sprintf("(float)(%s)", g.intAtom())
	}
	return fmt.Sprintf("%d.%d", g.rng.Intn(20)-10, g.rng.Intn(10))
}

// pickGlobal returns a random global of the requested elem type, or nil.
func (g *gen) pickGlobal(isFloat bool) *global {
	start := g.rng.Intn(len(g.globals))
	for i := 0; i < len(g.globals); i++ {
		gl := &g.globals[(start+i)%len(g.globals)]
		if gl.isFloat == isFloat {
			return gl
		}
	}
	return nil
}
