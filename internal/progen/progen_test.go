package progen

import (
	"testing"

	"mcpart/internal/interp"
	"mcpart/internal/ir"
	"mcpart/internal/machine"
	"mcpart/internal/mclang"
	"mcpart/internal/opt"
	"mcpart/internal/pointsto"
	"mcpart/internal/rhop"
	"mcpart/internal/sched"
)

const fuzzSeeds = 60

// run compiles and executes one generated program, failing the test on any
// front-end or runtime error.
func run(t *testing.T, src string, unroll int, optimize bool) int64 {
	t.Helper()
	mod, err := mclang.CompileUnrolled(src, "gen", unroll)
	if err != nil {
		t.Fatalf("compile: %v\nsource:\n%s", err, src)
	}
	if optimize {
		opt.Optimize(mod)
		if err := ir.Verify(mod); err != nil {
			t.Fatalf("optimizer broke IR: %v\nsource:\n%s", err, src)
		}
	}
	v, err := interp.New(mod, interp.Options{MaxSteps: 30_000_000}).RunMain()
	if err != nil {
		t.Fatalf("run: %v\nsource:\n%s", err, src)
	}
	return v.I
}

func TestGeneratedProgramsCompileAndTerminate(t *testing.T) {
	for seed := int64(0); seed < fuzzSeeds; seed++ {
		src := Generate(seed, Options{})
		run(t, src, 1, false)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		if Generate(seed, Options{}) != Generate(seed, Options{}) {
			t.Fatalf("seed %d: generator not deterministic", seed)
		}
	}
}

func TestOptimizerPreservesGeneratedPrograms(t *testing.T) {
	for seed := int64(0); seed < fuzzSeeds; seed++ {
		src := Generate(seed, Options{})
		plain := run(t, src, 1, false)
		opted := run(t, src, 1, true)
		if plain != opted {
			t.Fatalf("seed %d: optimizer changed result %d -> %d\nsource:\n%s",
				seed, plain, opted, src)
		}
	}
}

func TestUnrollPreservesGeneratedPrograms(t *testing.T) {
	for seed := int64(0); seed < fuzzSeeds; seed++ {
		src := Generate(seed, Options{})
		base := run(t, src, 1, false)
		for _, u := range []int{2, 4} {
			if got := run(t, src, u, true); got != base {
				t.Fatalf("seed %d unroll %d: result %d -> %d\nsource:\n%s",
					seed, u, base, got, src)
			}
		}
	}
}

func TestPointsToSoundOnGeneratedPrograms(t *testing.T) {
	for seed := int64(0); seed < fuzzSeeds/2; seed++ {
		src := Generate(seed, Options{})
		mod, err := mclang.CompileUnrolled(src, "gen", 2)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		opt.Optimize(mod)
		pointsto.Analyze(mod)
		in := interp.New(mod, interp.Options{MaxSteps: 30_000_000})
		if _, err := in.RunMain(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for op, objs := range in.Profile().OpObj {
			if !op.Opcode.IsMem() {
				continue
			}
			may := map[int]bool{}
			for _, id := range op.MayAccess {
				may[id] = true
			}
			for objID := range objs {
				if !may[objID] {
					t.Fatalf("seed %d: op %s touched object %d outside MayAccess %v\nsource:\n%s",
						seed, op, objID, op.MayAccess, src)
				}
			}
		}
	}
}

func TestPipelineOnGeneratedPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("slow fuzz")
	}
	cfg := machine.Paper2Cluster(5)
	for seed := int64(0); seed < fuzzSeeds/3; seed++ {
		src := Generate(seed, Options{})
		mod, err := mclang.CompileUnrolled(src, "gen", 4)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		opt.Optimize(mod)
		pointsto.Analyze(mod)
		in := interp.New(mod, interp.Options{MaxSteps: 30_000_000})
		if _, err := in.RunMain(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		prof := in.Profile()
		asg, err := rhop.PartitionModule(mod, prof, cfg, nil, rhop.Options{})
		if err != nil {
			t.Fatalf("seed %d: rhop: %v\nsource:\n%s", seed, err, src)
		}
		cycles, moves := sched.ProgramCycles(mod, asg, cfg, prof)
		if cycles <= 0 || moves < 0 {
			t.Fatalf("seed %d: cycles=%d moves=%d", seed, cycles, moves)
		}
	}
}

func TestIRRoundTripOnGeneratedPrograms(t *testing.T) {
	for seed := int64(0); seed < fuzzSeeds/2; seed++ {
		src := Generate(seed, Options{})
		mod, err := mclang.Compile(src, "gen")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		text := ir.Print(mod)
		m2, err := ir.ParseModule(text)
		if err != nil {
			t.Fatalf("seed %d: reparse: %v", seed, err)
		}
		if ir.Print(m2) != text {
			t.Fatalf("seed %d: round trip differs", seed)
		}
	}
}
