package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersSentinel(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d, want 7", got)
	}
}

func TestMapOrdering(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		out, err := Map(nil, 50, workers, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 50 {
			t.Fatalf("workers=%d: got %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Errorf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(nil, 0, 4, func(_ context.Context, i int) (int, error) { return 0, nil })
	if err != nil || out != nil {
		t.Errorf("Map(n=0) = %v, %v; want nil, nil", out, err)
	}
}

// TestMapFirstError checks that the lowest-indexed failure wins regardless
// of completion order: a slow early failure must beat a fast late one.
func TestMapFirstError(t *testing.T) {
	errEarly := errors.New("early")
	for _, workers := range []int{1, 4} {
		_, err := Map(nil, 20, workers, func(_ context.Context, i int) (int, error) {
			switch i {
			case 2:
				time.Sleep(20 * time.Millisecond)
				return 0, errEarly
			case 10:
				return 0, fmt.Errorf("late")
			}
			return i, nil
		})
		if !errors.Is(err, errEarly) {
			t.Errorf("workers=%d: err = %v, want %v", workers, err, errEarly)
		}
	}
}

// TestMapCancelStopsDispatch checks that a failure stops new items from
// starting (cancellation), without requiring in-flight ones to abort.
func TestMapCancelStopsDispatch(t *testing.T) {
	var started atomic.Int64
	_, err := Map(nil, 1000, 2, func(_ context.Context, i int) (int, error) {
		started.Add(1)
		if i == 0 {
			return 0, errors.New("boom")
		}
		time.Sleep(time.Millisecond)
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := started.Load(); n >= 1000 {
		t.Errorf("all %d items started despite early failure", n)
	}
}

func TestMapCallerContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Map(ctx, 10, 4, func(_ context.Context, i int) (int, error) { return i, nil })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestMapPanicContained checks that a panicking work item is recovered
// into a *PanicError (carrying stage, index, value, and a stack) instead of
// crashing the process, at every worker count, and that the pool still
// applies first-error-wins ordering to it.
func TestMapPanicContained(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := MapStage(nil, "teststage", 20, workers, func(_ context.Context, i int) (int, error) {
			if i == 3 {
				panic("kaboom")
			}
			return i, nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v (%T), want *PanicError", workers, err, err)
		}
		if pe.Stage != "teststage" || pe.Index != 3 || pe.Value != "kaboom" {
			t.Errorf("workers=%d: PanicError = {%q, %d, %v}", workers, pe.Stage, pe.Index, pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Errorf("workers=%d: PanicError carries no stack", workers)
		}
	}
}

// TestMapPanicFirstErrorWins: a low-index ordinary error beats a
// high-index panic, matching the serial reference.
func TestMapPanicFirstErrorWins(t *testing.T) {
	want := errors.New("ordinary")
	_, err := Map(nil, 20, 4, func(_ context.Context, i int) (int, error) {
		switch i {
		case 1:
			time.Sleep(10 * time.Millisecond)
			return 0, want
		case 15:
			panic("late panic")
		}
		return i, nil
	})
	if !errors.Is(err, want) {
		t.Errorf("err = %v, want the lower-indexed ordinary error", err)
	}
}

// TestPanicErrorUnwrap: an error panic value stays reachable via errors.Is.
func TestPanicErrorUnwrap(t *testing.T) {
	inner := errors.New("inner")
	_, err := Map(nil, 1, 1, func(context.Context, int) (int, error) { panic(inner) })
	if !errors.Is(err, inner) {
		t.Errorf("errors.Is through PanicError failed: %v", err)
	}
	if Recovered("s", 0, nil) != nil {
		t.Error("Recovered(nil) should be nil")
	}
}

func TestDo(t *testing.T) {
	var a, b atomic.Bool
	err := Do(nil, 2,
		func(context.Context) error { a.Store(true); return nil },
		func(context.Context) error { b.Store(true); return nil },
	)
	if err != nil || !a.Load() || !b.Load() {
		t.Errorf("Do: err=%v a=%v b=%v", err, a.Load(), b.Load())
	}
	want := errors.New("task1")
	err = Do(nil, 2,
		func(context.Context) error { time.Sleep(5 * time.Millisecond); return want },
		func(context.Context) error { return errors.New("task2") },
	)
	if !errors.Is(err, want) {
		t.Errorf("Do err = %v, want %v (lowest index wins)", err, want)
	}
}
