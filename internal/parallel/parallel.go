// Package parallel provides the bounded worker pool the evaluation
// pipeline uses to fan independent work units — exhaustive mapping masks,
// (benchmark, scheme) pairs, front-end compilations — across CPUs.
//
// The pool guarantees three properties the deterministic reproduction
// depends on:
//
//   - deterministic result ordering: Map returns results indexed by work
//     item, so output is byte-identical regardless of worker count or
//     completion order;
//   - first-error propagation: the error of the lowest-indexed failing
//     item wins, matching what a serial loop would have returned;
//   - cancellation: once any item fails (or the caller's context is
//     canceled), workers stop picking up new items.
//
// Workers never share mutable state through this package; each writes only
// its own result slot.
package parallel

import (
	"context"
	"runtime"
	"sync"
)

// Workers normalizes a worker-count knob: zero or negative selects
// runtime.GOMAXPROCS(0). This is the single sentinel convention every
// -j flag and Options.Workers field in the repository follows.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Map runs fn(ctx, i) for every i in [0, n) on at most workers goroutines
// and returns the results in index order. A nil ctx means
// context.Background(). If any call fails, Map cancels the shared context,
// lets in-flight calls finish, and returns the error of the lowest-indexed
// failure — exactly the error a serial i := 0..n-1 loop would have
// surfaced. On error the partial results are discarded (nil is returned).
func Map[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers == 1 {
		// Serial fast path: no goroutines, no channels — the -j 1
		// reference the determinism tests compare against.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := fn(ctx, i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		firstErr error
		errIdx   = n // index of the failure currently winning
		next     int
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if next >= n || firstErr != nil && next > errIdx || ctx.Err() != nil {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				v, err := fn(ctx, i)
				if err != nil {
					mu.Lock()
					if firstErr == nil || i < errIdx {
						firstErr, errIdx = err, i
					}
					mu.Unlock()
					cancel()
					continue
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Do runs every task on at most workers goroutines and returns the error
// of the lowest-indexed failing task, canceling the rest. It is Map for
// side-effecting tasks that produce no value.
func Do(ctx context.Context, workers int, tasks ...func(ctx context.Context) error) error {
	_, err := Map(ctx, len(tasks), workers, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, tasks[i](ctx)
	})
	return err
}
