// Package parallel provides the bounded worker pool the evaluation
// pipeline uses to fan independent work units — exhaustive mapping masks,
// (benchmark, scheme) pairs, front-end compilations — across CPUs.
//
// The pool guarantees three properties the deterministic reproduction
// depends on:
//
//   - deterministic result ordering: Map returns results indexed by work
//     item, so output is byte-identical regardless of worker count or
//     completion order;
//   - first-error propagation: the error of the lowest-indexed failing
//     item wins, matching what a serial loop would have returned;
//   - cancellation: once any item fails (or the caller's context is
//     canceled), workers stop picking up new items;
//   - panic containment: a panicking work item never kills the process.
//     The panic is recovered into a *PanicError (stage, item index, value,
//     stack) that propagates like any other item error, so the pool drains
//     cleanly and the caller decides how to degrade.
//
// Workers never share mutable state through this package; each writes only
// its own result slot.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"mcpart/internal/obs"
)

// PanicError is a panic recovered from a work item (or from any pipeline
// stage that uses Capture). It records where the panic happened so a matrix
// failure stays attributable, and carries the goroutine stack captured at
// recovery time for debugging.
type PanicError struct {
	// Stage names the pipeline stage that panicked ("matrix", "exhaustive",
	// a scheme name, ...); empty when the caller did not label the pool.
	Stage string
	// Index is the work-item index within the stage, -1 when the panic was
	// captured outside an indexed pool.
	Index int
	// Value is the value passed to panic().
	Value any
	// Stack is the panicking goroutine's stack, as formatted by
	// runtime/debug.Stack at recovery time.
	Stack []byte
}

// Unwrap exposes an error panic value to errors.Is/As chains.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

func (e *PanicError) Error() string {
	where := e.Stage
	if where == "" {
		where = "worker"
	}
	if e.Index >= 0 {
		return fmt.Sprintf("panic in %s item %d: %v", where, e.Index, e.Value)
	}
	return fmt.Sprintf("panic in %s: %v", where, e.Value)
}

// Recovered returns the error form of a recover() result: nil for nil, the
// value itself when the panic value already is an error (wrapped so the
// PanicError context is kept by errors.As), and a fresh PanicError
// otherwise. Exposed so non-pool pipeline stages contain panics into the
// same taxonomy.
func Recovered(stage string, index int, v any) *PanicError {
	if v == nil {
		return nil
	}
	return &PanicError{Stage: stage, Index: index, Value: v, Stack: debug.Stack()}
}

// Workers normalizes a worker-count knob: zero or negative selects
// runtime.GOMAXPROCS(0). This is the single sentinel convention every
// -j flag and Options.Workers field in the repository follows.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Map runs fn(ctx, i) for every i in [0, n) on at most workers goroutines
// and returns the results in index order. A nil ctx means
// context.Background(). If any call fails, Map cancels the shared context,
// lets in-flight calls finish, and returns the error of the lowest-indexed
// failure — exactly the error a serial i := 0..n-1 loop would have
// surfaced. On error the partial results are discarded (nil is returned).
// A panicking item is recovered into a *PanicError and treated as that
// item's failure. Map is MapStage with an unlabeled stage.
func Map[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	return MapStage(ctx, "", n, workers, fn)
}

// MapStage is Map with a stage label that identifies the pool in recovered
// PanicErrors (and nowhere else — results and ordinary errors are
// unaffected by the label).
func MapStage[T any](ctx context.Context, stage string, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	// Observability: count tasks per stage and contained panics. The
	// counters are resolved once per MapStage call (nil when no observer
	// rides the context), so the per-item cost is one nil-safe Add.
	var tasks, panics *obs.Counter
	if o := obs.From(ctx); o != nil {
		label := stage
		if label == "" {
			label = "unnamed"
		}
		tasks = o.Counter(`parallel_tasks{stage="` + label + `"}`)
		panics = o.Counter("parallel_panics")
	}
	// contained runs one work item with panic recovery: a panic becomes
	// the item's error, identical at every worker count.
	contained := func(ctx context.Context, i int) (v T, err error) {
		defer func() {
			if pe := Recovered(stage, i, recover()); pe != nil {
				panics.Add(1)
				err = pe
			}
		}()
		tasks.Add(1)
		return fn(ctx, i)
	}
	out := make([]T, n)
	if workers == 1 {
		// Serial fast path: no goroutines, no channels — the -j 1
		// reference the determinism tests compare against.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := contained(ctx, i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		firstErr error
		errIdx   = n // index of the failure currently winning
		next     int
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if next >= n || firstErr != nil && next > errIdx || ctx.Err() != nil {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				v, err := contained(ctx, i)
				if err != nil {
					mu.Lock()
					if firstErr == nil || i < errIdx {
						firstErr, errIdx = err, i
					}
					mu.Unlock()
					cancel()
					continue
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Do runs every task on at most workers goroutines and returns the error
// of the lowest-indexed failing task, canceling the rest. It is Map for
// side-effecting tasks that produce no value.
func Do(ctx context.Context, workers int, tasks ...func(ctx context.Context) error) error {
	_, err := Map(ctx, len(tasks), workers, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, tasks[i](ctx)
	})
	return err
}
