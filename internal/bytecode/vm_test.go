package bytecode_test

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"mcpart/internal/bench"
	"mcpart/internal/bytecode"
	"mcpart/internal/interp"
	"mcpart/internal/ir"
	"mcpart/internal/mclang"
	"mcpart/internal/obs"
	"mcpart/internal/opt"
	"mcpart/internal/pointsto"
	"mcpart/internal/progen"
)

// mustModule runs the same front-end pipeline eval.Prepare uses: parse and
// unroll, optionally optimize, then points-to analysis.
func mustModule(t testing.TB, src, name string, unroll int, optimize bool) *ir.Module {
	t.Helper()
	mod, err := mclang.CompileUnrolled(src, name, unroll)
	if err != nil {
		t.Fatalf("%s: compile: %v", name, err)
	}
	if optimize {
		opt.Optimize(mod)
	}
	pointsto.Analyze(mod)
	return mod
}

// diffRun executes mod on both engines under identical options and asserts
// they agree: same success/failure, same budget resource on failure, and on
// success the same checksum and a DeepEqual-identical Profile. It returns
// the tree-walker's result for further pinning by the caller.
func diffRun(t testing.TB, mod *ir.Module, opts interp.Options) (interp.Value, error) {
	t.Helper()
	tree := interp.New(mod, opts)
	tv, terr := tree.RunMain()

	prog, err := bytecode.Compile(mod)
	if err != nil {
		t.Fatalf("bytecode compile: %v", err)
	}
	vm := bytecode.NewVM(prog, opts)
	vv, verr := vm.RunMain()

	if (terr == nil) != (verr == nil) {
		t.Fatalf("engines disagree on failure: tree err=%v, vm err=%v", terr, verr)
	}
	if terr != nil {
		var tb, vb *interp.BudgetError
		if errors.As(terr, &tb) {
			if !errors.As(verr, &vb) {
				t.Fatalf("tree hit %s budget but vm failed with %v", tb.Resource, verr)
			}
			if tb.Resource != vb.Resource {
				t.Fatalf("budget resource mismatch: tree %s, vm %s", tb.Resource, vb.Resource)
			}
		}
		return tv, terr
	}
	if tv.Kind != vv.Kind || tv.I != vv.I || tv.F != vv.F {
		t.Fatalf("checksum mismatch: tree %s, vm %s", tv, vv)
	}
	if !reflect.DeepEqual(tree.Profile(), vm.Profile()) {
		t.Fatalf("profile mismatch:\ntree: %+v\nvm:   %+v", tree.Profile(), vm.Profile())
	}
	return tv, nil
}

// TestSuiteEquivalence pins VM-vs-tree checksum and Profile equality across
// all seed benchmarks, through both front-end configurations the pipeline
// uses (plain, and unrolled+optimized as eval.Prepare runs it).
func TestSuiteEquivalence(t *testing.T) {
	suite := bench.All()
	if len(suite) == 0 {
		t.Fatal("empty benchmark suite")
	}
	for _, bm := range suite {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			t.Parallel()
			for _, cfg := range []struct {
				tag      string
				unroll   int
				optimize bool
			}{{"plain", 1, false}, {"opt", 4, true}} {
				mod := mustModule(t, bm.Source, bm.Name, cfg.unroll, cfg.optimize)
				v, err := diffRun(t, mod, interp.Options{MaxSteps: 10_000_000})
				if err != nil {
					t.Fatalf("%s: %v", cfg.tag, err)
				}
				if v.I != bm.Want {
					t.Fatalf("%s: checksum %d, want %d", cfg.tag, v.I, bm.Want)
				}
			}
		})
	}
}

// TestProgenEquivalence runs the differential check over generated
// programs, including configurations larger than the fuzz defaults.
func TestProgenEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 99, 1337, 4242, 99991} {
		for _, po := range []progen.Options{
			{},
			{MaxGlobals: 10, MaxFuncs: 6, MaxStmtDepth: 4, MaxLoopTrip: 20},
		} {
			src := progen.Generate(seed, po)
			mod := mustModule(t, src, fmt.Sprintf("progen%d", seed), 4, true)
			if _, err := diffRun(t, mod, interp.Options{}); err != nil {
				t.Fatalf("seed %d: %v\n%s", seed, err, src)
			}
		}
	}
}

// TestStepBudgetEquivalence pins that both engines charge steps
// identically: for a range of step caps, either both complete or both
// fail with the same typed step-budget error.
func TestStepBudgetEquivalence(t *testing.T) {
	src := progen.Generate(42, progen.Options{})
	mod := mustModule(t, src, "budget", 4, true)
	for _, cap := range []int64{1, 10, 100, 1000, 10_000, 100_000} {
		diffRun(t, mod, interp.Options{MaxSteps: cap})
	}
}

// mallocFixture builds main() { p = malloc(words*8); p[0]=7; return p[0] }
// with a heap site, for byte-budget and malloc-profile tests.
func mallocFixture(t *testing.T, size int64) *ir.Module {
	t.Helper()
	m := ir.NewModule("t")
	site := m.AddObject(&ir.Object{Name: "malloc@main:0", Kind: ir.ObjHeap})
	bd := ir.NewBuilder(m, "main", 0)
	p := bd.Malloc(site, ir.ConstInt(size))
	if size > 0 {
		bd.Store(ir.Reg(p), ir.ConstInt(7))
		v := bd.Load(ir.Reg(p))
		bd.Ret(ir.Reg(v))
	} else {
		bd.Ret(ir.ConstInt(0))
	}
	pointsto.Analyze(m)
	return m
}

// TestByteBudgetEquivalence pins the MaxBytes semantics: identical typed
// errors when the heap budget trips, identical success when it doesn't.
func TestByteBudgetEquivalence(t *testing.T) {
	mod := mallocFixture(t, 64)
	if _, err := diffRun(t, mod, interp.Options{MaxBytes: 32}); err == nil {
		t.Fatal("64-byte malloc under a 32-byte budget succeeded")
	} else {
		var be *interp.BudgetError
		if !errors.As(err, &be) || be.Resource != "byte" {
			t.Fatalf("want byte BudgetError, got %v", err)
		}
	}
	if _, err := diffRun(t, mod, interp.Options{MaxBytes: 1 << 20}); err != nil {
		t.Fatal(err)
	}
}

// TestMallocZeroProfile pins a reconstruction edge: a heap site whose only
// allocation is zero bytes must still appear in ObjBytes (with 0), exactly
// as the tree-walker records it.
func TestMallocZeroProfile(t *testing.T) {
	diffRun(t, mallocFixture(t, 0), interp.Options{})
}

// TestDiscardedDstEquivalence pins the scratch-register path: an op whose
// result is discarded (Dst == NoReg, as a dead-code pass can leave behind
// for an effectful op) must execute, count, and profile identically.
func TestDiscardedDstEquivalence(t *testing.T) {
	m := ir.NewModule("t")
	g := m.AddObject(&ir.Object{Name: "g", Kind: ir.ObjGlobal, Size: 16, Init: []int64{3, 4}})
	bd := ir.NewBuilder(m, "main", 0)
	a := bd.Addr(g)
	v := bd.Load(ir.Reg(a))
	bd.Load(ir.Reg(a)) // result discarded below
	bd.Ret(ir.Reg(v))
	// Discard the second load's destination the way an analysis that drops
	// uses (but keeps effectful ops) would. (No points-to pass here: it
	// requires intact dsts, and the engines don't consume MayAccess.)
	ops := m.Funcs[0].Blocks[0].Ops
	ops[len(ops)-2].Dst = ir.NoReg
	if v, err := diffRun(t, m, interp.Options{}); err != nil || v.I != 3 {
		t.Fatalf("got %s, %v; want 3", v, err)
	}
}

// TestCallDepthEquivalence pins that unbounded recursion fails cleanly on
// both engines (the depth guard, not a host stack overflow).
func TestCallDepthEquivalence(t *testing.T) {
	m := ir.NewModule("t")
	bd := ir.NewBuilder(m, "f", 1)
	n := bd.Emit(ir.OpAdd, ir.Reg(0), ir.ConstInt(1))
	r := bd.Call("f", true, ir.Reg(n))
	bd.Ret(ir.Reg(r))
	bd = ir.NewBuilder(m, "main", 0)
	r = bd.Call("f", true, ir.ConstInt(0))
	bd.Ret(ir.Reg(r))
	pointsto.Analyze(m)
	if _, err := diffRun(t, m, interp.Options{}); err == nil {
		t.Fatal("unbounded recursion succeeded")
	}
}

// TestTraceMemEquivalence pins that the VM drives TraceMem with the exact
// event stream the tree-walker produces: same order, same object and
// instance IDs, same offsets, same load/store flags.
func TestTraceMemEquivalence(t *testing.T) {
	bm, err := bench.Get("fir")
	if err != nil {
		t.Fatal(err)
	}
	type ev struct {
		obj     int
		inst    int64
		off     int64
		isStore bool
	}
	collect := func(run func(interp.Options) error) []ev {
		var evs []ev
		err := run(interp.Options{TraceMem: func(objID int, inst int64, off int64, isStore bool) {
			evs = append(evs, ev{objID, inst, off, isStore})
		}})
		if err != nil {
			t.Fatal(err)
		}
		return evs
	}
	mod := mustModule(t, bm.Source, bm.Name, 4, true)
	treeEvs := collect(func(o interp.Options) error {
		_, err := interp.New(mod, o).RunMain()
		return err
	})
	prog, err := bytecode.Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	vmEvs := collect(func(o interp.Options) error {
		_, err := bytecode.NewVM(prog, o).RunMain()
		return err
	})
	if len(treeEvs) == 0 {
		t.Fatal("fir produced no memory trace")
	}
	if !reflect.DeepEqual(treeEvs, vmEvs) {
		t.Fatalf("trace mismatch: %d tree events vs %d vm events", len(treeEvs), len(vmEvs))
	}
}

// TestMultiRunAccumulation pins that profile state accumulates across
// multiple Run calls on one VM exactly as it does on one Interp.
func TestMultiRunAccumulation(t *testing.T) {
	bm, err := bench.Get("fir")
	if err != nil {
		t.Fatal(err)
	}
	mod := mustModule(t, bm.Source, bm.Name, 1, false)
	tree := interp.New(mod, interp.Options{})
	prog, err := bytecode.Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	vm := bytecode.NewVM(prog, interp.Options{})
	for i := 0; i < 3; i++ {
		tv, terr := tree.RunMain()
		vv, verr := vm.RunMain()
		if terr != nil || verr != nil {
			t.Fatalf("run %d: tree err=%v, vm err=%v", i, terr, verr)
		}
		if tv.I != vv.I {
			t.Fatalf("run %d: checksum mismatch %d vs %d", i, tv.I, vv.I)
		}
	}
	if !reflect.DeepEqual(tree.Profile(), vm.Profile()) {
		t.Fatal("accumulated profiles diverge after repeated runs")
	}
}

// TestCompileRejects pins that malformed modules are rejected at compile
// time rather than trapped at run time.
func TestCompileRejects(t *testing.T) {
	unknownCallee := ir.NewModule("t")
	bd := ir.NewBuilder(unknownCallee, "main", 0)
	bd.Call("missing", false)
	bd.Ret()

	badArity := ir.NewModule("t")
	bd = ir.NewBuilder(badArity, "f", 2)
	bd.Ret(ir.Reg(0))
	bd = ir.NewBuilder(badArity, "main", 0)
	bd.Call("f", false, ir.ConstInt(1))
	bd.Ret()

	schedOnly := ir.NewModule("t")
	bd = ir.NewBuilder(schedOnly, "main", 0)
	bd.Emit(ir.OpMove, ir.ConstInt(1))
	bd.Ret()

	noTerm := ir.NewModule("t")
	bd = ir.NewBuilder(noTerm, "main", 0)
	bd.Emit(ir.OpAdd, ir.ConstInt(1), ir.ConstInt(2))

	for name, m := range map[string]*ir.Module{
		"unknown callee": unknownCallee,
		"bad arity":      badArity,
		"scheduler op":   schedOnly,
		"no terminator":  noTerm,
	} {
		if _, err := bytecode.Compile(m); err == nil {
			t.Errorf("%s: Compile succeeded, want error", name)
		}
	}
}

// TestObserverZeroAllocOverheadVM is the VM's half of the observability
// zero-overhead guard, matching the sched/rhop ones: attaching an observer
// must not change per-run allocations of the warm dispatch loop (counters
// resolve once in SetObserver and flush once per Run), and a nil observer
// costs nothing.
func TestObserverZeroAllocOverheadVM(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under the race detector")
	}
	src := progen.Generate(7, progen.Options{})
	mod := mustModule(t, src, "alloc", 1, false)
	prog, err := bytecode.Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	vm := bytecode.NewVM(prog, interp.Options{})
	work := func() {
		if _, err := vm.RunMain(); err != nil {
			t.Fatal(err)
		}
	}
	work() // warm the register slab and frame stack
	base := testing.AllocsPerRun(20, work)

	o := obs.New(obs.NewRegistry(), nil, nil)
	vm.SetObserver(o)
	work() // resolve and warm the counters
	attached := testing.AllocsPerRun(20, work)
	if attached != base {
		t.Errorf("attached observer changed per-run allocs: %.1f vs %.1f baseline", attached, base)
	}

	vm.SetObserver(nil)
	detached := testing.AllocsPerRun(20, work)
	if detached != base {
		t.Errorf("detached observer changed per-run allocs: %.1f vs %.1f baseline", detached, base)
	}
}

// TestObservedVMCountsMatch pins that the flushed counters agree with the
// VM's own accounting: interp_steps and interp_dispatches report the steps
// executed, interp_alloc_bytes the bytes held.
func TestObservedVMCountsMatch(t *testing.T) {
	mod := mallocFixture(t, 64)
	prog, err := bytecode.Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	vm := bytecode.NewVM(prog, interp.Options{})
	reg := obs.NewRegistry()
	vm.SetObserver(obs.New(reg, nil, nil))
	if _, err := vm.RunMain(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("interp_steps").Value(); got != vm.Steps() {
		t.Errorf("interp_steps = %d, want %d", got, vm.Steps())
	}
	if got := reg.Counter("interp_dispatches").Value(); got != vm.Steps() {
		t.Errorf("interp_dispatches = %d, want %d", got, vm.Steps())
	}
	if got := reg.Counter("interp_alloc_bytes").Value(); got != vm.AllocBytes() {
		t.Errorf("interp_alloc_bytes = %d, want %d", got, vm.AllocBytes())
	}
}
