//go:build race

package bytecode_test

// raceEnabled reports that this test binary was built with -race, where
// testing.AllocsPerRun is unreliable (race bookkeeping allocates).
const raceEnabled = true
