package bytecode_test

import (
	"testing"

	"mcpart/internal/bench"
	"mcpart/internal/interp"
	"mcpart/internal/mclang"
	"mcpart/internal/opt"
	"mcpart/internal/pointsto"
	"mcpart/internal/progen"
)

// FuzzVM differentially tests the bytecode engine against the tree-walking
// oracle on arbitrary mclang source: whatever the front end accepts, both
// engines must agree on — same success or failure, same budget resource,
// and on success the same checksum and a DeepEqual-identical Profile
// (diffRun asserts all of it). The seed corpus mixes generated programs
// (progen, valid by construction) with checked-in benchmark sources, so
// mutation explores both shapes.
func FuzzVM(f *testing.F) {
	for _, seed := range []int64{1, 7, 42, 1337, 99991} {
		f.Add(progen.Generate(seed, progen.Options{}))
	}
	for _, name := range []string{"fir", "viterbi", "rawcaudio"} {
		if bm, err := bench.Get(name); err == nil {
			f.Add(bm.Source)
		}
	}
	f.Fuzz(func(t *testing.T, src string) {
		for _, cfg := range []struct {
			unroll   int
			optimize bool
		}{{1, false}, {4, true}} {
			mod, err := mclang.CompileUnrolled(src, "fuzz", cfg.unroll)
			if err != nil {
				return // front end rejected the mutation; nothing to compare
			}
			if cfg.optimize {
				opt.Optimize(mod)
			}
			pointsto.Analyze(mod)
			// A tight step cap keeps the slow oracle to a few ms per exec
			// so mutation throughput stays useful; diffRun still requires
			// the engines to trip the budget identically, and the full-run
			// equivalence on every seed benchmark is pinned separately by
			// TestSuiteEquivalence.
			diffRun(t, mod, interp.Options{MaxSteps: 200_000})
		}
	})
}
