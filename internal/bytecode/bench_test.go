package bytecode_test

import (
	"testing"

	"mcpart/internal/bench"
	"mcpart/internal/bytecode"
	"mcpart/internal/interp"
	"mcpart/internal/ir"
	"mcpart/internal/progen"
)

// profileWorkload is one profiling job: a prepared module plus the step
// count one run executes (reported as steps/op so BENCH_interp.json can
// state throughput).
type profileWorkload struct {
	name  string
	mod   *ir.Module
	steps int64
}

// progenLargeSeed is the largest workload a scan of progen seeds 1..400
// produces under the enlarged generator options below: ~18.4M steps,
// three orders of magnitude past the 10k-step bar the throughput target
// is stated against.
const progenLargeSeed = 137

func profileWorkloads(b *testing.B) []profileWorkload {
	b.Helper()
	var ws []profileWorkload
	add := func(name, src string) {
		mod := mustModule(b, src, name, 4, true)
		in := interp.New(mod, interp.Options{})
		if _, err := in.RunMain(); err != nil {
			b.Fatalf("%s: %v", name, err)
		}
		ws = append(ws, profileWorkload{name, mod, in.Profile().Steps})
	}
	for _, name := range []string{"pegwitdec", "fir"} {
		bm, err := bench.Get(name)
		if err != nil {
			b.Fatal(err)
		}
		add(bm.Name, bm.Source)
	}
	add("progen-large", progen.Generate(progenLargeSeed, progen.Options{
		MaxGlobals: 12, MaxFuncs: 8, MaxStmtDepth: 5, MaxLoopTrip: 24,
	}))
	return ws
}

// BenchmarkProfileTree measures the tree-walking interpreter doing exactly
// what eval.Prepare's profile phase does: fresh engine, one full run.
func BenchmarkProfileTree(b *testing.B) {
	for _, w := range profileWorkloads(b) {
		b.Run(w.name, func(b *testing.B) {
			b.ReportMetric(float64(w.steps), "steps/op")
			for i := 0; i < b.N; i++ {
				in := interp.New(w.mod, interp.Options{})
				if _, err := in.RunMain(); err != nil {
					b.Fatal(err)
				}
				_ = in.Profile()
			}
		})
	}
}

// BenchmarkProfileVM measures the bytecode engine on the same jobs,
// charged honestly: bytecode compilation, VM setup, the run, and the
// map-keyed Profile reconstruction all inside the timed loop.
func BenchmarkProfileVM(b *testing.B) {
	for _, w := range profileWorkloads(b) {
		b.Run(w.name, func(b *testing.B) {
			b.ReportMetric(float64(w.steps), "steps/op")
			for i := 0; i < b.N; i++ {
				prog, err := bytecode.Compile(w.mod)
				if err != nil {
					b.Fatal(err)
				}
				vm := bytecode.NewVM(prog, interp.Options{})
				if _, err := vm.RunMain(); err != nil {
					b.Fatal(err)
				}
				_ = vm.Profile()
			}
		})
	}
}
