// Package bytecode compiles IR modules to a compact flat bytecode and
// executes it in a table-driven dispatch-loop VM. It is the fast profiler
// behind eval.Prepare: the VM accumulates exactly the same interp.Profile
// (block frequencies, per-op object access counts, allocation sizes, step
// count) as the tree-walking interpreter, byte for byte, at roughly an
// order of magnitude higher throughput (BENCH_interp.json).
//
// Why it is fast where internal/interp is slow: the tree walker allocates
// an argument slice per executed operation, decodes operand kinds on every
// use, and bumps three pointer-keyed maps per memory access. The VM pays
// all of that once, at compile time:
//
//   - every instruction is one fixed-size struct in a flat []instr, so
//     dispatch is an array index plus one switch on a dense opcode;
//   - constants are interned into a per-function pool that is materialized
//     into the high end of the frame's register window, so every operand —
//     register or immediate — is a plain register index at run time;
//   - jumps are resolved to instruction offsets at compile time (branch
//     instructions also carry the target block index so block frequencies
//     stay a dense-array increment);
//   - memory operations carry interned (memory-op, object) indices, so
//     profiling a load is two int64 increments into flat arrays, with the
//     map-keyed interp.Profile rebuilt once at the end.
//
// The tree-walking interpreter remains the differential-testing oracle:
// the VM must produce the same checksum and a DeepEqual-identical Profile
// on every program (pinned across the benchmark suite and fuzzed by
// FuzzVM; see DESIGN.md §11).
package bytecode

import (
	"fmt"
	"math"

	"mcpart/internal/interp"
	"mcpart/internal/ir"
)

// instr is one bytecode instruction. All operand fields are register
// indices into the frame window (IR virtual registers first, then the
// materialized constant pool), except where the opcode documents
// otherwise (jump offsets, pool offsets, interned indices). The layout is
// uniform so the dispatch loop never decodes variable-length operands.
type instr struct {
	op  uint8 // dense opcode (the bcXxx table below)
	dst int32 // destination register, or -1
	a   int32 // first operand (see opcode)
	b   int32 // second operand (see opcode)
	c   int32 // third operand (see opcode)
	aux int32 // interned index: block, object, callee, or memory op
}

// The dense opcode table. Values are contiguous so the dispatch switch
// compiles to a jump table. Integer and float groups mirror the IR
// opcodes one to one; the control and memory groups re-encode their IR
// counterparts with resolved offsets and interned indices.
const (
	bcInvalid uint8 = iota

	// dst = r[a] op r[b]; runtime kind checks mirror internal/interp
	// (add/sub/cmpeq/cmpne accept the pointer forms).
	bcAdd
	bcSub
	bcMul
	bcDiv
	bcRem
	bcAnd
	bcOr
	bcXor
	bcShl
	bcShr
	bcCmpEQ
	bcCmpNE
	bcCmpLT
	bcCmpLE
	bcCmpGT
	bcCmpGE

	// dst = op r[a].
	bcNeg
	bcNot
	bcIToF
	bcFToI
	bcMov

	// dst = r[a] fop r[b].
	bcFAdd
	bcFSub
	bcFMul
	bcFDiv
	bcFCmpEQ
	bcFCmpNE
	bcFCmpLT
	bcFCmpLE
	bcFCmpGT
	bcFCmpGE

	// dst = -r[a].
	bcFNeg

	// Memory. aux = interned memory-op index (profile row); bcAddr and
	// bcMalloc carry the object ID in c.
	bcAddr   // dst = &globals[c]
	bcMalloc // dst = fresh instance of r[a] bytes at heap site c
	bcLoad   // dst = *r[a]
	bcStore  // *r[a] = r[b]

	// Control. Jump targets are absolute instruction offsets resolved at
	// compile time; the extra fields carry the target block indices so
	// the VM can bump block frequencies without a side table.
	bcBr     // pc = a; blockFreq[aux]++
	bcBrCond // if r[a]!=0 { pc = b; blockFreq[dst]++ } else { pc = c; blockFreq[aux]++ }
	bcCall   // dst = call fns[aux](argPool[a : a+b]...)
	bcRet    // return r[a] (a == -1: return int 0)
)

// fnCode is one function compiled to bytecode.
type fnCode struct {
	name    string
	nParams int
	nRegs   int            // IR virtual registers (window prefix)
	frame   int            // window size: nRegs + len(consts)
	consts  []interp.Value // materialized into regs[nRegs:] at frame setup
	code    []instr
	argPool []int32     // flattened call-argument register lists
	blocks  []*ir.Block // dense block index -> block (profile reconstruction)
}

// Program is a module compiled to bytecode, ready for any number of VM
// runs.
type Program struct {
	mod    *ir.Module
	fns    []*fnCode
	fnIdx  map[string]int32
	memOps []*ir.Op // interned memory ops across the module (profile rows)
}

// Module returns the IR module this program was compiled from.
func (p *Program) Module() *ir.Module { return p.mod }

// Func returns the compiled index of the named function, or -1.
func (p *Program) funcIndex(name string) int32 {
	if i, ok := p.fnIdx[name]; ok {
		return i
	}
	return -1
}

// binaryOps maps the IR's two-operand opcodes onto bytecode opcodes.
var binaryOps = map[ir.Opcode]uint8{
	ir.OpAdd: bcAdd, ir.OpSub: bcSub, ir.OpMul: bcMul, ir.OpDiv: bcDiv,
	ir.OpRem: bcRem, ir.OpAnd: bcAnd, ir.OpOr: bcOr, ir.OpXor: bcXor,
	ir.OpShl: bcShl, ir.OpShr: bcShr,
	ir.OpCmpEQ: bcCmpEQ, ir.OpCmpNE: bcCmpNE, ir.OpCmpLT: bcCmpLT,
	ir.OpCmpLE: bcCmpLE, ir.OpCmpGT: bcCmpGT, ir.OpCmpGE: bcCmpGE,
	ir.OpFAdd: bcFAdd, ir.OpFSub: bcFSub, ir.OpFMul: bcFMul, ir.OpFDiv: bcFDiv,
	ir.OpFCmpEQ: bcFCmpEQ, ir.OpFCmpNE: bcFCmpNE, ir.OpFCmpLT: bcFCmpLT,
	ir.OpFCmpLE: bcFCmpLE, ir.OpFCmpGT: bcFCmpGT, ir.OpFCmpGE: bcFCmpGE,
}

// unaryOps maps the IR's one-operand opcodes onto bytecode opcodes.
var unaryOps = map[ir.Opcode]uint8{
	ir.OpNeg: bcNeg, ir.OpNot: bcNot, ir.OpIToF: bcIToF, ir.OpFToI: bcFToI,
	ir.OpMov: bcMov, ir.OpFNeg: bcFNeg,
}

// Compile lowers a front-end module to bytecode. It rejects malformed
// modules (unknown callees, blocks without terminators, scheduler-only
// pseudo-ops) with an error rather than compiling a trap: the VM trusts
// compiled code to stay within its function's instruction array.
func Compile(m *ir.Module) (*Program, error) {
	p := &Program{
		mod:   m,
		fns:   make([]*fnCode, 0, len(m.Funcs)),
		fnIdx: make(map[string]int32, len(m.Funcs)),
	}
	for i, f := range m.Funcs {
		p.fnIdx[f.Name] = int32(i)
	}
	for _, f := range m.Funcs {
		fc, err := p.compileFunc(f)
		if err != nil {
			return nil, fmt.Errorf("bytecode: %s: %w", f.Name, err)
		}
		p.fns = append(p.fns, fc)
	}
	return p, nil
}

// constKey dedupes constant-pool entries by exact value (float bits, so
// -0.0 and 0.0 stay distinct, matching operand identity in the IR).
type constKey struct {
	isFloat bool
	bits    uint64
}

// funcCompiler holds the per-function lowering state.
type funcCompiler struct {
	p        *Program
	f        *ir.Func
	fc       *fnCode
	constIdx map[constKey]int32
	blockIdx map[*ir.Block]int32
	blockPC  []int32 // dense block index -> first instruction offset
	patches  []patch
}

// patch records a jump operand to resolve once every block's offset is
// known. field selects which instr field holds the pending block index.
type patch struct {
	pc    int32
	field uint8 // 'a', 'b' or 'c'
}

func (p *Program) compileFunc(f *ir.Func) (*fnCode, error) {
	c := &funcCompiler{
		p: p,
		f: f,
		fc: &fnCode{
			name:    f.Name,
			nParams: f.NParams,
			nRegs:   f.NRegs,
			blocks:  f.Blocks,
		},
		constIdx: make(map[constKey]int32),
		blockIdx: make(map[*ir.Block]int32, len(f.Blocks)),
		blockPC:  make([]int32, len(f.Blocks)),
	}
	for i, b := range f.Blocks {
		c.blockIdx[b] = int32(i)
	}
	for i, b := range f.Blocks {
		c.blockPC[i] = int32(len(c.fc.code))
		t := b.Terminator()
		if t == nil || !t.Opcode.IsTerminator() {
			return nil, fmt.Errorf("b%d has no terminator", b.ID)
		}
		for _, op := range b.Ops {
			if err := c.emit(op); err != nil {
				return nil, fmt.Errorf("b%d: %s: %w", b.ID, op, err)
			}
		}
	}
	// Resolve jump targets: the patched field holds a block index; replace
	// it with that block's instruction offset.
	for _, pt := range c.patches {
		in := &c.fc.code[pt.pc]
		switch pt.field {
		case 'a':
			in.a = c.blockPC[in.a]
		case 'b':
			in.b = c.blockPC[in.b]
		case 'c':
			in.c = c.blockPC[in.c]
		}
	}
	c.fc.frame = c.fc.nRegs + len(c.fc.consts)
	// A value-producing op may legally discard its result (Dst == NoReg);
	// the tree walker branches on that per execution, the VM instead points
	// such dsts at a scratch slot past the constant pool so the hot loop
	// stays branch-free.
	scratch := int32(c.fc.frame)
	needScratch := false
	for i := range c.fc.code {
		in := &c.fc.code[i]
		if in.dst == -1 && opWritesDst(in.op) {
			in.dst = scratch
			needScratch = true
		}
	}
	if needScratch {
		c.fc.frame++
	}
	return c.fc, nil
}

// opWritesDst reports whether the opcode unconditionally writes r[dst].
// (bcCall handles its optional destination explicitly; control and store
// opcodes reuse the dst field for other purposes or not at all.)
func opWritesDst(op uint8) bool {
	switch op {
	case bcStore, bcBr, bcBrCond, bcCall, bcRet, bcInvalid:
		return false
	}
	return true
}

// reg lowers an operand to a register index: virtual registers map to the
// window prefix, immediates intern into the constant pool mapped to the
// window suffix.
func (c *funcCompiler) reg(a ir.Operand) int32 {
	switch a.Kind {
	case ir.OperReg:
		return int32(a.Reg)
	case ir.OperFloat:
		return c.intern(constKey{isFloat: true, bits: math.Float64bits(a.Float)}, interp.FloatVal(a.Float))
	default:
		return c.intern(constKey{bits: uint64(a.Int)}, interp.IntVal(a.Int))
	}
}

func (c *funcCompiler) intern(k constKey, v interp.Value) int32 {
	if idx, ok := c.constIdx[k]; ok {
		return idx
	}
	idx := int32(c.fc.nRegs + len(c.fc.consts))
	c.fc.consts = append(c.fc.consts, v)
	c.constIdx[k] = idx
	return idx
}

// memOpIndex interns op into the module-wide memory-op table.
func (c *funcCompiler) memOpIndex(op *ir.Op) int32 {
	idx := int32(len(c.p.memOps))
	c.p.memOps = append(c.p.memOps, op)
	return idx
}

func dstReg(op *ir.Op) int32 {
	if op.Dst == ir.NoReg {
		return -1
	}
	return int32(op.Dst)
}

func (c *funcCompiler) emit(op *ir.Op) error {
	in := instr{dst: dstReg(op), a: -1, b: -1, c: -1, aux: -1}
	switch op.Opcode {
	case ir.OpBr:
		in.op = bcBr
		in.a = c.blockIdx[op.Block.Succs[0]] // patched to an offset below
		in.aux = c.blockIdx[op.Block.Succs[0]]
		c.addPatch('a')
	case ir.OpBrCond:
		in.op = bcBrCond
		in.a = c.reg(op.Args[0])
		in.b = c.blockIdx[op.Block.Succs[0]]
		in.c = c.blockIdx[op.Block.Succs[1]]
		in.dst = c.blockIdx[op.Block.Succs[0]] // taken block index
		in.aux = c.blockIdx[op.Block.Succs[1]] // fallthrough block index
		c.addPatch('b')
		c.addPatch('c')
	case ir.OpRet:
		in.op = bcRet
		if len(op.Args) > 0 {
			in.a = c.reg(op.Args[0])
		}
	case ir.OpCall:
		callee := c.p.funcIndex(op.Callee)
		if callee < 0 {
			return fmt.Errorf("call of unknown function %q", op.Callee)
		}
		if want := c.p.mod.Funcs[callee].NParams; want != len(op.Args) {
			return fmt.Errorf("call of %s with %d args, want %d", op.Callee, len(op.Args), want)
		}
		in.op = bcCall
		in.a = int32(len(c.fc.argPool))
		in.b = int32(len(op.Args))
		in.aux = callee
		for _, a := range op.Args {
			c.fc.argPool = append(c.fc.argPool, c.reg(a))
		}
	case ir.OpAddr:
		in.op = bcAddr
		in.c = int32(op.Obj.ID)
	case ir.OpMalloc:
		in.op = bcMalloc
		in.a = c.reg(op.Args[0])
		in.c = int32(op.MallocSite.ID)
		in.aux = c.memOpIndex(op)
	case ir.OpLoad:
		in.op = bcLoad
		in.a = c.reg(op.Args[0])
		in.aux = c.memOpIndex(op)
	case ir.OpStore:
		in.op = bcStore
		in.a = c.reg(op.Args[0])
		in.b = c.reg(op.Args[1])
		in.aux = c.memOpIndex(op)
	default:
		if bc, ok := binaryOps[op.Opcode]; ok {
			in.op = bc
			in.a = c.reg(op.Args[0])
			in.b = c.reg(op.Args[1])
			break
		}
		if bc, ok := unaryOps[op.Opcode]; ok {
			in.op = bc
			in.a = c.reg(op.Args[0])
			break
		}
		return fmt.Errorf("unsupported opcode %s", op.Opcode)
	}
	c.fc.code = append(c.fc.code, in)
	return nil
}

// addPatch marks a jump field of the just-emitted instruction for offset
// resolution.
func (c *funcCompiler) addPatch(field uint8) {
	c.patches = append(c.patches, patch{pc: int32(len(c.fc.code)), field: field})
}
