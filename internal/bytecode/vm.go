package bytecode

import (
	"fmt"
	"time"

	"mcpart/internal/interp"
	"mcpart/internal/ir"
	"mcpart/internal/obs"
)

// deadlineStride mirrors internal/interp: wall-clock deadline checks run
// every 2^16 steps, frequent enough to stop promptly while keeping
// time.Now off the hot path.
const deadlineStride = 1 << 16

// maxCallDepth mirrors internal/interp's recursion bound so runaway
// programs fail with the same clean error on either engine.
const maxCallDepth = 10000

// frame is one suspended caller: where to resume (pc is already past the
// call instruction) and where the callee's result goes in the caller's
// register window (-1: discarded).
type frame struct {
	fi     int32
	base   int32
	pc     int32
	retDst int32
}

// VM executes a compiled Program while accumulating the same profile the
// tree-walking interpreter would. One VM may run any number of calls;
// profile state is cumulative, exactly like interp.Interp.
type VM struct {
	p       *Program
	globals []*interp.Instance // by object ID; nil for heap sites

	regs   []interp.Value // register slab; frames carve windows
	frames []frame        // suspended callers (depth = len+1 while running)

	// Dense profile accumulators; the map-keyed interp.Profile is
	// materialized from these by Profile().
	blockFreq [][]int64 // [fn index][block index]
	memCounts []int64   // [mem-op index * nObjs + object ID]
	objAccess []int64   // [object ID]
	objBytes  []int64   // [object ID]; globals pre-filled with static size
	heapSeen  []bool    // heap site had at least one malloc

	steps      int64
	maxSteps   int64
	deadline   time.Time
	hasDeadl   bool
	maxBytes   int64
	allocBytes int64
	nextInst   int64
	trace      func(objID int, inst int64, off int64, isStore bool)

	// Observability: counters resolved once by SetObserver, flushed once
	// per Run (never touched in the dispatch loop), so a nil observer
	// costs nothing — pinned by the zero-alloc guard test.
	cSteps, cDispatches, cAlloc    *obs.Counter
	flSteps, flDispatches, flAlloc int64
}

// NewVM prepares a VM for one compiled program, allocating and
// initializing global storage exactly as interp.New does (same instance
// IDs, same initial word values, same initial byte accounting).
func NewVM(p *Program, opts interp.Options) *VM {
	nObjs := len(p.mod.Objects)
	vm := &VM{
		p:         p,
		globals:   make([]*interp.Instance, nObjs),
		blockFreq: make([][]int64, len(p.fns)),
		memCounts: make([]int64, len(p.memOps)*nObjs),
		objAccess: make([]int64, nObjs),
		objBytes:  make([]int64, nObjs),
		heapSeen:  make([]bool, nObjs),
		maxSteps:  opts.MaxSteps,
		deadline:  opts.Deadline,
		hasDeadl:  !opts.Deadline.IsZero(),
		maxBytes:  opts.MaxBytes,
		trace:     opts.TraceMem,
	}
	if vm.maxSteps == 0 {
		vm.maxSteps = 50_000_000
	}
	for i, fc := range p.fns {
		vm.blockFreq[i] = make([]int64, len(fc.blocks))
	}
	for _, o := range p.mod.Objects {
		if o.Kind != ir.ObjGlobal {
			continue
		}
		inst := &interp.Instance{Obj: o, ID: vm.nextInst, Words: make([]interp.Value, o.Words())}
		vm.nextInst++
		if o.IsFloat {
			for i := range inst.Words {
				inst.Words[i] = interp.FloatVal(0)
			}
			for i, f := range o.FloatInit {
				inst.Words[i] = interp.FloatVal(f)
			}
		} else {
			for i, v := range o.Init {
				inst.Words[i] = interp.IntVal(v)
			}
		}
		vm.globals[o.ID] = inst
		vm.objBytes[o.ID] = o.Size
		vm.allocBytes += o.Size
	}
	return vm
}

// SetObserver attaches (or with nil detaches) an observer. The three
// profiling counters — interp_steps, interp_dispatches, interp_alloc_bytes
// — are resolved here, once, and flushed at the end of each Run; the
// dispatch loop itself never sees the observer. interp_dispatches counts
// dispatch-loop iterations; today every iteration executes exactly one IR
// operation so it equals interp_steps, but the two are recorded separately
// so superinstruction fusion can change the ratio without breaking
// dashboards.
func (vm *VM) SetObserver(o *obs.Observer) {
	vm.cSteps = o.Counter("interp_steps")
	vm.cDispatches = o.Counter("interp_dispatches")
	vm.cAlloc = o.Counter("interp_alloc_bytes")
}

// flush publishes the counter deltas accumulated since the previous flush.
func (vm *VM) flush() {
	vm.cSteps.Add(vm.steps - vm.flSteps)
	vm.cDispatches.Add(vm.steps - vm.flDispatches)
	vm.cAlloc.Add(vm.allocBytes - vm.flAlloc)
	vm.flSteps, vm.flDispatches, vm.flAlloc = vm.steps, vm.steps, vm.allocBytes
}

// Steps returns the total operations executed so far.
func (vm *VM) Steps() int64 { return vm.steps }

// AllocBytes returns the total data bytes held: global storage plus every
// malloc, matching the interpreter's byte-budget accounting.
func (vm *VM) AllocBytes() int64 { return vm.allocBytes }

// Profile materializes the accumulated observations as an interp.Profile
// keyed by the same IR pointers the tree-walking interpreter uses, so
// every downstream consumer (gdp, rhop, sched, check) is oblivious to
// which engine profiled the program. The result of a completed run is
// DeepEqual-identical to the tree walker's.
func (vm *VM) Profile() *interp.Profile {
	prof := interp.NewProfile()
	prof.Steps = vm.steps
	for fi, fc := range vm.p.fns {
		for bi, n := range vm.blockFreq[fi] {
			if n != 0 {
				prof.BlockFreq[fc.blocks[bi]] = n
			}
		}
	}
	nObjs := len(vm.p.mod.Objects)
	for mi, op := range vm.p.memOps {
		row := vm.memCounts[mi*nObjs : (mi+1)*nObjs]
		var m map[int]int64
		for objID, n := range row {
			if n == 0 {
				continue
			}
			if m == nil {
				m = make(map[int]int64)
				prof.OpObj[op] = m
			}
			m[objID] = n
		}
	}
	for objID, n := range vm.objAccess {
		if n != 0 {
			prof.ObjAccess[objID] = n
		}
	}
	for _, o := range vm.p.mod.Objects {
		if o.Kind == ir.ObjGlobal {
			prof.ObjBytes[o.ID] = vm.objBytes[o.ID]
		} else if vm.heapSeen[o.ID] {
			prof.ObjBytes[o.ID] = vm.objBytes[o.ID]
		}
	}
	return prof
}

// RunMain executes main().
func (vm *VM) RunMain() (interp.Value, error) { return vm.Run("main") }

// Run executes the named function with the given arguments and returns
// its result (zero int for void functions).
func (vm *VM) Run(fn string, args ...interp.Value) (v interp.Value, err error) {
	fi := vm.p.funcIndex(fn)
	if fi < 0 {
		return interp.Value{}, fmt.Errorf("bytecode: no function %q", fn)
	}
	defer vm.flush()
	return vm.exec(fi, args)
}

// errAt wraps a runtime fault with its location. Budget errors bypass
// this so callers can match the typed *interp.BudgetError directly.
func (vm *VM) errAt(fc *fnCode, pc int32, err error) error {
	return fmt.Errorf("bytecode: in %s pc %d: %w", fc.name, pc, err)
}

// grow ensures the register slab covers [0, need).
func (vm *VM) grow(need int32) {
	if int(need) <= len(vm.regs) {
		return
	}
	n := len(vm.regs)*2 + 64
	if n < int(need) {
		n = int(need)
	}
	fresh := make([]interp.Value, n)
	copy(fresh, vm.regs)
	vm.regs = fresh
}

// setupFrame clears the callee's virtual registers and materializes its
// constant pool into the window suffix. Fresh registers read as integer
// zero, exactly like the tree walker's.
func (vm *VM) setupFrame(fc *fnCode, base int32) {
	vm.grow(base + int32(fc.frame))
	win := vm.regs[base : base+int32(fc.frame)]
	for i := 0; i < fc.nRegs; i++ {
		win[i] = interp.Value{}
	}
	copy(win[fc.nRegs:], fc.consts)
}

// exec is the dispatch loop: one flat loop over the whole call tree, with
// an explicit frame stack instead of host recursion.
func (vm *VM) exec(fi int32, args []interp.Value) (interp.Value, error) {
	fc := vm.p.fns[fi]
	if len(args) != fc.nParams {
		return interp.Value{}, fmt.Errorf("bytecode: %s expects %d args, got %d",
			fc.name, fc.nParams, len(args))
	}
	vm.frames = vm.frames[:0]
	var base int32
	vm.setupFrame(fc, base)
	copy(vm.regs[base:], args)
	vm.blockFreq[fi][0]++
	code := fc.code
	regs := vm.regs[base : base+int32(fc.frame)]
	freq := vm.blockFreq[fi]
	var pc int32

	for {
		in := &code[pc]
		vm.steps++
		if vm.steps > vm.maxSteps {
			return interp.Value{}, &interp.BudgetError{Resource: "step", Limit: vm.maxSteps, Fn: fc.name}
		}
		if vm.hasDeadl && vm.steps%deadlineStride == 0 && time.Now().After(vm.deadline) {
			return interp.Value{}, &interp.BudgetError{Resource: "deadline", Fn: fc.name}
		}
		switch in.op {

		case bcAdd:
			x, y := &regs[in.a], &regs[in.b]
			if x.Kind == interp.ValInt && y.Kind == interp.ValInt {
				regs[in.dst] = interp.IntVal(x.I + y.I)
			} else if x.Kind == interp.ValPtr && y.Kind == interp.ValInt {
				regs[in.dst] = interp.Value{Kind: interp.ValPtr, Inst: x.Inst, Off: x.Off + y.I}
			} else if y.Kind == interp.ValPtr && x.Kind == interp.ValInt {
				regs[in.dst] = interp.Value{Kind: interp.ValPtr, Inst: y.Inst, Off: y.Off + x.I}
			} else {
				return interp.Value{}, vm.errAt(fc, pc, kindErr("add", *x, *y))
			}

		case bcSub:
			x, y := &regs[in.a], &regs[in.b]
			if x.Kind == interp.ValInt && y.Kind == interp.ValInt {
				regs[in.dst] = interp.IntVal(x.I - y.I)
			} else if x.Kind == interp.ValPtr && y.Kind == interp.ValInt {
				regs[in.dst] = interp.Value{Kind: interp.ValPtr, Inst: x.Inst, Off: x.Off - y.I}
			} else if x.Kind == interp.ValPtr && y.Kind == interp.ValPtr {
				if x.Inst != y.Inst {
					return interp.Value{}, vm.errAt(fc, pc,
						fmt.Errorf("subtraction of pointers into different objects"))
				}
				regs[in.dst] = interp.IntVal(x.Off - y.Off)
			} else {
				return interp.Value{}, vm.errAt(fc, pc, kindErr("sub", *x, *y))
			}

		case bcMul, bcDiv, bcRem, bcAnd, bcOr, bcXor, bcShl, bcShr,
			bcCmpLT, bcCmpLE, bcCmpGT, bcCmpGE:
			x, y := &regs[in.a], &regs[in.b]
			if x.Kind != interp.ValInt || y.Kind != interp.ValInt {
				return interp.Value{}, vm.errAt(fc, pc, kindErr(opName(in.op), *x, *y))
			}
			var r int64
			switch in.op {
			case bcMul:
				r = x.I * y.I
			case bcDiv:
				if y.I == 0 {
					return interp.Value{}, vm.errAt(fc, pc, fmt.Errorf("division by zero"))
				}
				r = x.I / y.I
			case bcRem:
				if y.I == 0 {
					return interp.Value{}, vm.errAt(fc, pc, fmt.Errorf("remainder by zero"))
				}
				r = x.I % y.I
			case bcAnd:
				r = x.I & y.I
			case bcOr:
				r = x.I | y.I
			case bcXor:
				r = x.I ^ y.I
			case bcShl:
				r = x.I << (uint64(y.I) & 63)
			case bcShr:
				r = x.I >> (uint64(y.I) & 63)
			case bcCmpLT:
				r = b2i(x.I < y.I)
			case bcCmpLE:
				r = b2i(x.I <= y.I)
			case bcCmpGT:
				r = b2i(x.I > y.I)
			case bcCmpGE:
				r = b2i(x.I >= y.I)
			}
			regs[in.dst] = interp.IntVal(r)

		case bcCmpEQ, bcCmpNE:
			x, y := &regs[in.a], &regs[in.b]
			if x.Kind == interp.ValPtr || y.Kind == interp.ValPtr {
				eq := x.Kind == interp.ValPtr && y.Kind == interp.ValPtr &&
					x.Inst == y.Inst && x.Off == y.Off
				if in.op == bcCmpNE {
					eq = !eq
				}
				regs[in.dst] = interp.IntVal(b2i(eq))
				break
			}
			if x.Kind != interp.ValInt || y.Kind != interp.ValInt {
				return interp.Value{}, vm.errAt(fc, pc, kindErr(opName(in.op), *x, *y))
			}
			if in.op == bcCmpEQ {
				regs[in.dst] = interp.IntVal(b2i(x.I == y.I))
			} else {
				regs[in.dst] = interp.IntVal(b2i(x.I != y.I))
			}

		case bcNeg, bcNot, bcIToF:
			x := &regs[in.a]
			if x.Kind != interp.ValInt {
				return interp.Value{}, vm.errAt(fc, pc, fmt.Errorf("expected int, got %s", x))
			}
			switch in.op {
			case bcNeg:
				regs[in.dst] = interp.IntVal(-x.I)
			case bcNot:
				regs[in.dst] = interp.IntVal(^x.I)
			case bcIToF:
				regs[in.dst] = interp.FloatVal(float64(x.I))
			}

		case bcMov:
			regs[in.dst] = regs[in.a]

		case bcFAdd, bcFSub, bcFMul, bcFDiv,
			bcFCmpEQ, bcFCmpNE, bcFCmpLT, bcFCmpLE, bcFCmpGT, bcFCmpGE:
			x, y := &regs[in.a], &regs[in.b]
			if x.Kind != interp.ValFloat || y.Kind != interp.ValFloat {
				return interp.Value{}, vm.errAt(fc, pc, kindErrF(opName(in.op), *x, *y))
			}
			switch in.op {
			case bcFAdd:
				regs[in.dst] = interp.FloatVal(x.F + y.F)
			case bcFSub:
				regs[in.dst] = interp.FloatVal(x.F - y.F)
			case bcFMul:
				regs[in.dst] = interp.FloatVal(x.F * y.F)
			case bcFDiv:
				regs[in.dst] = interp.FloatVal(x.F / y.F)
			case bcFCmpEQ:
				regs[in.dst] = interp.IntVal(b2i(x.F == y.F))
			case bcFCmpNE:
				regs[in.dst] = interp.IntVal(b2i(x.F != y.F))
			case bcFCmpLT:
				regs[in.dst] = interp.IntVal(b2i(x.F < y.F))
			case bcFCmpLE:
				regs[in.dst] = interp.IntVal(b2i(x.F <= y.F))
			case bcFCmpGT:
				regs[in.dst] = interp.IntVal(b2i(x.F > y.F))
			case bcFCmpGE:
				regs[in.dst] = interp.IntVal(b2i(x.F >= y.F))
			}

		case bcFNeg:
			x := &regs[in.a]
			if x.Kind != interp.ValFloat {
				return interp.Value{}, vm.errAt(fc, pc, fmt.Errorf("expected float, got %s", x))
			}
			regs[in.dst] = interp.FloatVal(-x.F)

		case bcFToI:
			x := &regs[in.a]
			if x.Kind != interp.ValFloat {
				return interp.Value{}, vm.errAt(fc, pc, fmt.Errorf("expected float, got %s", x))
			}
			regs[in.dst] = interp.IntVal(int64(x.F))

		case bcAddr:
			regs[in.dst] = interp.Value{Kind: interp.ValPtr, Inst: vm.globals[in.c]}

		case bcMalloc:
			size := &regs[in.a]
			if size.Kind != interp.ValInt || size.I < 0 {
				return interp.Value{}, vm.errAt(fc, pc, fmt.Errorf("malloc of bad size %s", size))
			}
			vm.allocBytes += size.I
			if vm.maxBytes > 0 && vm.allocBytes > vm.maxBytes {
				return interp.Value{}, &interp.BudgetError{Resource: "byte", Limit: vm.maxBytes, Fn: fc.name}
			}
			words := (size.I + 7) / 8
			inst := &interp.Instance{Obj: vm.p.mod.Objects[in.c], ID: vm.nextInst,
				Words: make([]interp.Value, words)}
			vm.nextInst++
			vm.objBytes[in.c] += size.I
			vm.heapSeen[in.c] = true
			vm.count(in.aux, int(in.c))
			regs[in.dst] = interp.Value{Kind: interp.ValPtr, Inst: inst}

		case bcLoad:
			p := &regs[in.a]
			w, err := deref(p)
			if err != nil {
				return interp.Value{}, vm.errAt(fc, pc, err)
			}
			objID := p.Inst.Obj.ID
			vm.count(in.aux, objID)
			if vm.trace != nil {
				vm.trace(objID, p.Inst.ID, p.Off, false)
			}
			regs[in.dst] = *w

		case bcStore:
			p := &regs[in.a]
			w, err := deref(p)
			if err != nil {
				return interp.Value{}, vm.errAt(fc, pc, err)
			}
			objID := p.Inst.Obj.ID
			vm.count(in.aux, objID)
			if vm.trace != nil {
				vm.trace(objID, p.Inst.ID, p.Off, true)
			}
			*w = regs[in.b]
			pc++
			continue

		case bcBr:
			freq[in.aux]++
			pc = in.a
			continue

		case bcBrCond:
			cond := &regs[in.a]
			if cond.Kind != interp.ValInt {
				return interp.Value{}, vm.errAt(fc, pc, fmt.Errorf("brcond on non-int %s", cond))
			}
			if cond.I != 0 {
				freq[in.dst]++
				pc = in.b
			} else {
				freq[in.aux]++
				pc = in.c
			}
			continue

		case bcCall:
			callee := vm.p.fns[in.aux]
			if len(vm.frames)+2 > maxCallDepth {
				return interp.Value{}, fmt.Errorf(
					"bytecode: call depth exceeds %d in %s", maxCallDepth, callee.name)
			}
			newBase := base + int32(fc.frame)
			vm.setupFrame(callee, newBase) // may grow (and move) the slab
			argRegs := fc.argPool[in.a : in.a+in.b]
			for i, r := range argRegs {
				vm.regs[newBase+int32(i)] = vm.regs[base+r]
			}
			vm.frames = append(vm.frames, frame{fi: fi, base: base, pc: pc + 1, retDst: in.dst})
			fi, fc, base, pc = in.aux, callee, newBase, 0
			code = fc.code
			regs = vm.regs[base : base+int32(fc.frame)]
			freq = vm.blockFreq[fi]
			freq[0]++
			continue

		case bcRet:
			var res interp.Value
			if in.a >= 0 {
				res = regs[in.a]
			} else {
				res = interp.IntVal(0)
			}
			if len(vm.frames) == 0 {
				return res, nil
			}
			top := vm.frames[len(vm.frames)-1]
			vm.frames = vm.frames[:len(vm.frames)-1]
			fi, base, pc = top.fi, top.base, top.pc
			fc = vm.p.fns[fi]
			code = fc.code
			regs = vm.regs[base : base+int32(fc.frame)]
			freq = vm.blockFreq[fi]
			if top.retDst >= 0 {
				regs[top.retDst] = res
			}
			continue

		default:
			return interp.Value{}, vm.errAt(fc, pc, fmt.Errorf("bad opcode %d", in.op))
		}
		pc++
	}
}

// count records one dynamic access of object objID by interned memory op
// mi: two flat-array increments, the VM's whole profiling cost per access.
func (vm *VM) count(mi int32, objID int) {
	vm.memCounts[int(mi)*len(vm.p.mod.Objects)+objID]++
	vm.objAccess[objID]++
}

// deref resolves a pointer value to its storage word with the same
// alignment and bounds checks as the tree walker.
func deref(p *interp.Value) (*interp.Value, error) {
	if p.Kind != interp.ValPtr || p.Inst == nil {
		return nil, fmt.Errorf("dereference of non-pointer %s", p)
	}
	if p.Off%8 != 0 {
		return nil, fmt.Errorf("unaligned access at %s", p)
	}
	idx := p.Off / 8
	if idx < 0 || idx >= int64(len(p.Inst.Words)) {
		return nil, fmt.Errorf("out-of-bounds access at %s (object has %d words)",
			p, len(p.Inst.Words))
	}
	return &p.Inst.Words[idx], nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func kindErr(op string, x, y interp.Value) error {
	if x.Kind != interp.ValInt {
		return fmt.Errorf("%s: expected int, got %s", op, x)
	}
	return fmt.Errorf("%s: expected int, got %s", op, y)
}

func kindErrF(op string, x, y interp.Value) error {
	if x.Kind != interp.ValFloat {
		return fmt.Errorf("%s: expected float, got %s", op, x)
	}
	return fmt.Errorf("%s: expected float, got %s", op, y)
}

// opName names a bytecode opcode for diagnostics.
func opName(op uint8) string {
	names := map[uint8]string{
		bcMul: "mul", bcDiv: "div", bcRem: "rem", bcAnd: "and", bcOr: "or",
		bcXor: "xor", bcShl: "shl", bcShr: "shr", bcCmpEQ: "cmpeq",
		bcCmpNE: "cmpne", bcCmpLT: "cmplt", bcCmpLE: "cmple",
		bcCmpGT: "cmpgt", bcCmpGE: "cmpge", bcFAdd: "fadd", bcFSub: "fsub",
		bcFMul: "fmul", bcFDiv: "fdiv", bcFCmpEQ: "fcmpeq", bcFCmpNE: "fcmpne",
		bcFCmpLT: "fcmplt", bcFCmpLE: "fcmple", bcFCmpGT: "fcmpgt", bcFCmpGE: "fcmpge",
	}
	if n, ok := names[op]; ok {
		return n
	}
	return fmt.Sprintf("op%d", op)
}
