// handlers.go holds the four /v1 endpoint operations. Each runs inside
// api()'s admission/containment wrapper and turns a decoded request into
// the endpoint's deterministic result payload.
package serve

import (
	"context"

	"mcpart"
)

// doCompile serves POST /v1/compile: front end + analysis + profiling,
// cached in the session.
func (s *Server) doCompile(ctx context.Context, req *APIRequest, mreq mcpart.Request) (any, *DegradedInfo, error) {
	name, src, err := req.resolveSource()
	if err != nil {
		return nil, nil, &RequestError{Err: err}
	}
	if err := s.injectServe("compile", req.Inject); err != nil {
		return nil, nil, err
	}
	p, err := s.session.Compile(ctx, name, src, mreq)
	if err != nil {
		return nil, nil, err
	}
	return &CompileResult{
		Name:      p.Name(),
		Checksum:  p.Checksum(),
		Functions: len(p.Module().Funcs),
		Objects:   len(p.Module().Objects),
	}, nil, nil
}

// doPartition serves POST /v1/partition: one Table 1 scheme on one
// machine, with optional validation and graceful degradation.
func (s *Server) doPartition(ctx context.Context, req *APIRequest, mreq mcpart.Request) (any, *DegradedInfo, error) {
	name, src, err := req.resolveSource()
	if err != nil {
		return nil, nil, &RequestError{Err: err}
	}
	m, err := req.machine()
	if err != nil {
		return nil, nil, &RequestError{Err: err}
	}
	scheme, err := req.scheme()
	if err != nil {
		return nil, nil, &RequestError{Err: err}
	}
	if err := s.injectServe("compile", req.Inject); err != nil {
		return nil, nil, err
	}
	r, err := s.session.Evaluate(ctx, name, src, m, scheme, mreq)
	if err != nil {
		return nil, nil, err
	}
	var deg *DegradedInfo
	if r.Degraded != nil {
		deg = &DegradedInfo{From: string(r.Degraded.From), Error: r.Degraded.Err.Error()}
	}
	return &PartitionResult{
		Scheme:    string(r.Scheme),
		Cycles:    r.Cycles,
		Moves:     r.Moves,
		DataMap:   dataMapSlice(r.DataMap),
		Validated: req.Validate,
	}, deg, nil
}

// doSweep serves POST /v1/sweep: the Figure 9 exhaustive data-mapping
// enumeration, summarized (the point cloud is O(2^objects); the response
// carries its deterministic extremes and scheme marks).
func (s *Server) doSweep(ctx context.Context, req *APIRequest, mreq mcpart.Request) (any, *DegradedInfo, error) {
	name, src, err := req.resolveSource()
	if err != nil {
		return nil, nil, &RequestError{Err: err}
	}
	m, err := req.machine()
	if err != nil {
		return nil, nil, &RequestError{Err: err}
	}
	if err := s.injectServe("compile", req.Inject); err != nil {
		return nil, nil, err
	}
	er, err := s.session.Sweep(ctx, name, src, m, req.MaxObjects, mreq)
	if err != nil {
		return nil, nil, err
	}
	return &SweepResult{
		Points:   len(er.Points),
		Best:     er.Best,
		Worst:    er.Worst,
		GDPMask:  er.GDPMask,
		PMaxMask: er.PMaxMask,
	}, nil, nil
}

// doBest serves POST /v1/best: the branch-and-bound optimal data mapping.
func (s *Server) doBest(ctx context.Context, req *APIRequest, mreq mcpart.Request) (any, *DegradedInfo, error) {
	name, src, err := req.resolveSource()
	if err != nil {
		return nil, nil, &RequestError{Err: err}
	}
	m, err := req.machine()
	if err != nil {
		return nil, nil, &RequestError{Err: err}
	}
	if err := s.injectServe("compile", req.Inject); err != nil {
		return nil, nil, err
	}
	br, err := s.session.Best(ctx, name, src, m, req.MaxObjects, mreq)
	if err != nil {
		return nil, nil, err
	}
	return &BestResult{Mask: br.Mask, Cycles: br.Cycles, Moves: br.Moves}, nil, nil
}
