// Package serve is the gdpd daemon: the mcpart partitioning pipeline
// behind a hardened HTTP+JSON surface (DESIGN.md §14). The robustness
// contract it layers over the facade:
//
//   - Admission control. A token bucket sheds sustained over-rate traffic
//     with 429 before any work happens; a bounded queue in front of the
//     worker semaphore sheds burst overflow with 503. Shed requests cost
//     O(1) — the daemon degrades by refusing crisply, never by slowing
//     everyone down.
//   - Per-request budgets. Every request runs under its own deadline
//     (body timeout_ms, clamped to the server maximum) plus the profiling
//     step/byte budgets; a blown budget is that request's typed error and
//     nobody else's problem.
//   - Containment. A panic anywhere in a request surfaces as HTTP 500 on
//     that request; the daemon keeps serving. One request's cancellation
//     never poisons the shared caches (see mcpart.Session).
//   - Graceful degradation. With fallback enabled, a failing scheme
//     degrades GDP→ProfileMax→Naive and the response says so in the
//     `degraded` field — a correct weaker answer beats an error.
//   - Memory ceiling. When the process heap crosses the configured
//     ceiling, the session's caches shrink (programs evicted, memoization
//     bounded); results are unaffected, only cache temperature.
//   - Drain. Shutdown stops accepting (readyz flips 503), lets in-flight
//     requests finish — or cancels them cleanly at the drain deadline, so
//     every accepted request still gets a response — and flushes the
//     artifact store.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"time"

	"mcpart"
	"mcpart/internal/defaults"
	"mcpart/internal/obs"
	"mcpart/internal/parallel"
)

// Config assembles a Server.
type Config struct {
	// Session is the shared compile/evaluate facade (required).
	Session *mcpart.Session
	// MaxConcurrent bounds requests doing pipeline work at once
	// (non-positive: GOMAXPROCS).
	MaxConcurrent int
	// QueueDepth bounds requests waiting for a worker slot beyond the
	// concurrent ones; the queue full, further requests shed with 503
	// (non-positive: 64).
	QueueDepth int
	// RatePerSec is the token-bucket admission rate; 0 disables rate
	// limiting. Burst is the bucket size (non-positive: max(1, rate)).
	RatePerSec float64
	Burst      int
	// DefaultTimeout applies when a request names no timeout_ms;
	// MaxTimeout clamps what a request may ask for (non-positive: 30s and
	// 2m respectively).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MemCeilingBytes triggers cache shrinking when the heap crosses it
	// (0 disables). MemKeepPrograms is how many compiled programs survive
	// a shrink (non-positive: 1). MemProbe overrides the heap reading for
	// tests (nil: runtime.ReadMemStats HeapAlloc).
	MemCeilingBytes int64
	MemKeepPrograms int
	MemProbe        func() int64
	// AllowInject honors per-request fault-injection specs (load tests
	// only); Inject is the server-side hook consulted at every serve stage
	// for every request.
	AllowInject bool
	Inject      func(stage string) error
	// Observer receives the daemon's metrics (and /metrics renders its
	// registry). Nil creates a private one.
	Observer *obs.Observer
	// Now overrides the token bucket's clock for tests (nil: time.Now).
	Now func() time.Time
}

// Server is the daemon. Create with New, expose Handler over HTTP, stop
// with Drain.
type Server struct {
	cfg     Config
	o       *obs.Observer
	session *mcpart.Session
	bucket  *bucket
	sem     chan struct{}

	mu       sync.Mutex // guards draining + inflight admission handshake
	draining bool
	inflight sync.WaitGroup

	queueMu sync.Mutex
	queued  int

	// baseCtx cancels every in-flight request at the drain deadline.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	memMu sync.Mutex
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	if cfg.Session == nil {
		panic("serve: Config.Session is required")
	}
	o := cfg.Observer
	if o == nil {
		o = obs.New(obs.NewRegistry(), nil, nil)
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	s := &Server{
		cfg:     cfg,
		o:       o,
		session: cfg.Session,
		sem:     make(chan struct{}, defaults.Int(cfg.MaxConcurrent, runtime.GOMAXPROCS(0))),
		bucket:  newBucket(cfg.RatePerSec, cfg.Burst, now),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	// Register the headline counters up front so /metrics reports explicit
	// zeros from the first scrape.
	for _, name := range []string{
		"serve_requests", "serve_ok", "serve_errors",
		"serve_shed_rate", "serve_shed_queue", "serve_shed_drain",
		"serve_degraded", "serve_panics", "serve_injected",
		"serve_timeouts", "serve_mem_releases",
	} {
		o.Counter(name)
	}
	return s
}

func (s *Server) queueDepth() int { return defaults.Int(s.cfg.QueueDepth, 64) }
func (s *Server) defaultTimeout() time.Duration {
	return defaults.Duration(s.cfg.DefaultTimeout, 30*time.Second)
}
func (s *Server) maxTimeout() time.Duration {
	return defaults.Duration(s.cfg.MaxTimeout, 2*time.Minute)
}

// Handler returns the daemon's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/compile", s.api("compile", s.doCompile))
	mux.HandleFunc("POST /v1/partition", s.api("partition", s.doPartition))
	mux.HandleFunc("POST /v1/sweep", s.api("sweep", s.doSweep))
	mux.HandleFunc("POST /v1/best", s.api("best", s.doBest))
	mux.HandleFunc("GET /healthz", s.healthz)
	mux.HandleFunc("GET /readyz", s.readyz)
	mux.HandleFunc("GET /metrics", s.metrics)
	return mux
}

func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	// Liveness: 200 while the process serves at all — including during
	// drain, when readiness is already down but killing the process would
	// lose in-flight requests.
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n")
}

func (s *Server) readyz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ready\n")
}

func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	obs.WritePrometheus(w, s.o.Registry().Snapshot())
}

// opFunc is one endpoint's work: turn a decoded request into the
// deterministic result payload (plus optional degradation info).
type opFunc func(ctx context.Context, req *APIRequest, mreq mcpart.Request) (any, *DegradedInfo, error)

// api wraps an endpoint in the full admission/budget/containment pipeline.
// Stage order (each one an injection point): decode → admit → the
// endpoint's own work (compile and the eval stages) → respond.
func (s *Server) api(endpoint string, op opFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.o.Counter("serve_requests").Add(1)
		s.o.Counter(`serve_requests{endpoint="` + endpoint + `"}`).Add(1)

		// Accept-or-drain handshake: past this gate the request is
		// accepted and drain waits for it.
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			s.o.Counter("serve_shed_drain").Add(1)
			s.writeError(w, endpoint, start, 0, http.StatusServiceUnavailable, "draining", "server is draining")
			return
		}
		s.inflight.Add(1)
		s.mu.Unlock()
		defer s.inflight.Done()

		// Panic containment: a request bug is that request's 500.
		defer func() {
			if pe := parallel.Recovered("serve:"+endpoint, -1, recover()); pe != nil {
				s.o.Counter("serve_panics").Add(1)
				s.writeError(w, endpoint, start, 0, http.StatusInternalServerError, "internal", pe.Error())
			}
		}()

		// Stage: decode.
		if err := s.injectServe("decode", nil); err != nil {
			s.o.Counter("serve_injected").Add(1)
			s.writeError(w, endpoint, start, 0, http.StatusInternalServerError, "injected", err.Error())
			return
		}
		var req APIRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 16<<20)).Decode(&req); err != nil {
			s.writeError(w, endpoint, start, 0, http.StatusBadRequest, "bad_request", "body: "+err.Error())
			return
		}
		if req.Inject != nil && !s.cfg.AllowInject {
			s.writeError(w, endpoint, start, 0, http.StatusBadRequest, "bad_request", "fault injection is not enabled on this server")
			return
		}
		if err := s.injectServe("decode", req.Inject); err != nil {
			s.o.Counter("serve_injected").Add(1)
			s.writeError(w, endpoint, start, 0, http.StatusInternalServerError, "injected", err.Error())
			return
		}

		// Stage: admit — token bucket, then the bounded queue.
		if err := s.injectServe("admit", req.Inject); err != nil {
			s.o.Counter("serve_injected").Add(1)
			s.writeError(w, endpoint, start, 0, http.StatusInternalServerError, "injected", err.Error())
			return
		}
		if !s.bucket.allow() {
			s.o.Counter("serve_shed_rate").Add(1)
			s.writeError(w, endpoint, start, 0, http.StatusTooManyRequests, "rate_limited", "request rate over the admission limit")
			return
		}
		s.queueMu.Lock()
		if s.queued >= s.queueDepth() {
			s.queueMu.Unlock()
			s.o.Counter("serve_shed_queue").Add(1)
			s.writeError(w, endpoint, start, 0, http.StatusServiceUnavailable, "overloaded", "admission queue is full")
			return
		}
		s.queued++
		s.queueMu.Unlock()
		queueStart := time.Now()
		select {
		case s.sem <- struct{}{}:
		case <-r.Context().Done():
			s.dequeue()
			s.writeError(w, endpoint, start, time.Since(queueStart), http.StatusGatewayTimeout, "canceled", "canceled while queued")
			return
		case <-s.baseCtx.Done():
			s.dequeue()
			s.o.Counter("serve_shed_drain").Add(1)
			s.writeError(w, endpoint, start, time.Since(queueStart), http.StatusServiceUnavailable, "draining", "drain deadline while queued")
			return
		}
		s.dequeue()
		queueWait := time.Since(queueStart)
		defer func() { <-s.sem }()

		// Per-request context: client disconnect or the drain hard-cancel
		// both end it; the per-request timeout rides in mcpart.Request.
		ctx, cancel := context.WithCancel(r.Context())
		defer cancel()
		stop := context.AfterFunc(s.baseCtx, cancel)
		defer stop()

		mreq, err := s.mcRequest(&req)
		if err != nil {
			s.writeError(w, endpoint, start, queueWait, http.StatusBadRequest, "bad_request", err.Error())
			return
		}

		result, degraded, err := op(ctx, &req, mreq)
		if err != nil {
			status, code := classify(err)
			if code == "deadline" {
				s.o.Counter("serve_timeouts").Add(1)
			}
			if code == "injected" {
				s.o.Counter("serve_injected").Add(1)
			}
			s.writeError(w, endpoint, start, queueWait, status, code, err.Error())
			return
		}

		// Stage: respond.
		if err := s.injectServe("respond", req.Inject); err != nil {
			s.o.Counter("serve_injected").Add(1)
			s.writeError(w, endpoint, start, queueWait, http.StatusInternalServerError, "injected", err.Error())
			return
		}
		raw, err := json.Marshal(result)
		if err != nil {
			s.writeError(w, endpoint, start, queueWait, http.StatusInternalServerError, "internal", "encode: "+err.Error())
			return
		}
		if degraded != nil {
			s.o.Counter("serve_degraded").Add(1)
		}
		s.o.Counter("serve_ok").Add(1)
		s.writeJSON(w, http.StatusOK, &APIResponse{
			OK:        true,
			Result:    raw,
			Degraded:  degraded,
			Telemetry: s.telemetry(start, queueWait),
		})
		s.o.Histogram("serve_latency_ms", 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 5000).
			Observe(time.Since(start).Milliseconds())
		s.checkMemory()
	}
}

func (s *Server) dequeue() {
	s.queueMu.Lock()
	s.queued--
	s.queueMu.Unlock()
}

// mcRequest projects the wire request onto the facade's Request.
func (s *Server) mcRequest(req *APIRequest) (mcpart.Request, error) {
	timeout := s.defaultTimeout()
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if max := s.maxTimeout(); timeout > max {
		timeout = max
	}
	mreq := mcpart.Request{
		Timeout:    timeout,
		MaxSteps:   req.MaxSteps,
		MaxBytes:   req.MaxBytes,
		Unroll:     req.Unroll,
		NoOptimize: req.NoOptimize,
		Validate:   req.Validate,
		Fallback:   req.Fallback,
		Workers:    req.Workers,
	}
	if req.Inject != nil {
		switch req.Inject.Stage {
		case "data", "partition", "sched", "validate":
			spec := *req.Inject
			mreq.Inject = func(scheme mcpart.Scheme, stage string) error {
				if stage != spec.Stage {
					return nil
				}
				if spec.Scheme != "" && !equalScheme(scheme, spec.Scheme) {
					return nil
				}
				return &InjectedError{Stage: stage}
			}
		case "decode", "admit", "compile", "respond":
			// Serve-stage faults are raised by injectServe/injectCompile.
		default:
			return mcpart.Request{}, fmt.Errorf("unknown inject stage %q", req.Inject.Stage)
		}
	}
	return mreq, nil
}

func equalScheme(s mcpart.Scheme, name string) bool {
	switch name {
	case "unified":
		return s == mcpart.SchemeUnified
	case "gdp":
		return s == mcpart.SchemeGDP
	case "profilemax", "pmax":
		return s == mcpart.SchemeProfileMax
	case "naive":
		return s == mcpart.SchemeNaive
	}
	return false
}

// injectServe consults both fault sources — the server-wide hook and the
// per-request spec — for a serve stage.
func (s *Server) injectServe(stage string, spec *InjectSpec) error {
	if s.cfg.Inject != nil {
		if err := s.cfg.Inject(stage); err != nil {
			return err
		}
	}
	if spec != nil && s.cfg.AllowInject && spec.Stage == stage {
		return &InjectedError{Stage: stage}
	}
	return nil
}

// telemetry builds the nondeterministic response sidecar.
func (s *Server) telemetry(start time.Time, queueWait time.Duration) *Telemetry {
	return &Telemetry{
		ElapsedMS:   float64(time.Since(start).Microseconds()) / 1e3,
		QueueWaitMS: float64(queueWait.Microseconds()) / 1e3,
	}
}

func (s *Server) writeError(w http.ResponseWriter, endpoint string, start time.Time, queueWait time.Duration, status int, code, msg string) {
	s.o.Counter("serve_errors").Add(1)
	s.o.Counter(`serve_errors{code="` + code + `"}`).Add(1)
	s.writeJSON(w, status, &APIResponse{
		OK:        false,
		Error:     &APIError{Code: code, Message: msg},
		Telemetry: s.telemetry(start, queueWait),
	})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, resp *APIResponse) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(resp)
}

// checkMemory shrinks the session's caches when the heap is over the
// ceiling. Called after completed requests; cheap when disabled.
func (s *Server) checkMemory() {
	if s.cfg.MemCeilingBytes <= 0 {
		return
	}
	s.memMu.Lock()
	defer s.memMu.Unlock()
	heap := s.heapBytes()
	if heap <= s.cfg.MemCeilingBytes {
		return
	}
	keep := defaults.Int(s.cfg.MemKeepPrograms, 1)
	s.session.ReleaseMemory(keep, 0)
	s.o.Counter("serve_mem_releases").Add(1)
}

func (s *Server) heapBytes() int64 {
	if s.cfg.MemProbe != nil {
		return s.cfg.MemProbe()
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapAlloc)
}

// Drain performs graceful shutdown: stop accepting (readyz 503, new
// requests shed with 503 draining), wait for every accepted request to
// finish — and once ctx expires, cancel what is still running so each
// still gets a (cancellation) response — then flush the artifact store.
// Idempotent; returns the flush error.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if already {
		return nil
	}
	done := make(chan struct{})
	go func() { s.inflight.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		// Drain deadline: hard-cancel in-flight requests. They unwind
		// through their normal error paths (each accepted request still
		// writes a response) and inflight drains promptly.
		s.baseCancel()
		<-done
	}
	s.baseCancel()
	return s.session.Flush()
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}
