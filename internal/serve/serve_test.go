package serve

// serve_test.go pins the daemon's robustness headline behaviors one by
// one: correct results over the wire, the typed error taxonomy, token
// bucket and queue shedding, per-request fault injection with graceful
// degradation, panic containment, the memory ceiling, and lossless drain.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mcpart"
	"mcpart/internal/obs"
)

// newTestServer builds a Server (and its Session) with test-friendly
// defaults; callers override cfg fields via mutate.
func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg := Config{
		Session:  mcpart.NewSession(mcpart.SessionOptions{}),
		Observer: obs.New(reg, nil, nil),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		cfg.Session.Close()
	})
	return s, ts
}

// post sends one API request and decodes the envelope.
func post(t *testing.T, url, endpoint string, req any) (int, *APIResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+endpoint, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env APIResponse
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("%s: decode envelope: %v", endpoint, err)
	}
	return resp.StatusCode, &env
}

func decodeResult[T any](t *testing.T, env *APIResponse) *T {
	t.Helper()
	var out T
	if err := json.Unmarshal(env.Result, &out); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	return &out
}

// TestServeEndpointsMatchFacade pins that every endpoint returns exactly
// the one-shot facade's numbers over the wire.
func TestServeEndpointsMatchFacade(t *testing.T) {
	_, ts := newTestServer(t, nil)
	m := mcpart.Paper2Cluster(5)
	p, err := mcpart.LoadBenchmark("fir")
	if err != nil {
		t.Fatal(err)
	}

	status, env := post(t, ts.URL, "/v1/compile", APIRequest{Bench: "fir"})
	if status != 200 || !env.OK {
		t.Fatalf("compile: %d %+v", status, env.Error)
	}
	cr := decodeResult[CompileResult](t, env)
	if cr.Checksum != p.Checksum() || cr.Name != "fir" {
		t.Fatalf("compile result %+v, want checksum %d", cr, p.Checksum())
	}

	want, err := mcpart.Evaluate(p, m, mcpart.SchemeGDP, mcpart.Options{})
	if err != nil {
		t.Fatal(err)
	}
	status, env = post(t, ts.URL, "/v1/partition", APIRequest{Bench: "fir", Scheme: "gdp", Validate: true})
	if status != 200 || !env.OK {
		t.Fatalf("partition: %d %+v", status, env.Error)
	}
	pr := decodeResult[PartitionResult](t, env)
	if pr.Cycles != want.Cycles || pr.Moves != want.Moves || pr.Scheme != "GDP" || !pr.Validated {
		t.Fatalf("partition result %+v, want %d cycles %d moves", pr, want.Cycles, want.Moves)
	}
	if env.Degraded != nil {
		t.Fatalf("clean request reported degradation: %+v", env.Degraded)
	}

	sweep, err := mcpart.ExhaustiveSearch(p, m, mcpart.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	status, env = post(t, ts.URL, "/v1/sweep", APIRequest{Bench: "fir"})
	if status != 200 || !env.OK {
		t.Fatalf("sweep: %d %+v", status, env.Error)
	}
	sr := decodeResult[SweepResult](t, env)
	if sr.Points != len(sweep.Points) || sr.Best != sweep.Best || sr.Worst != sweep.Worst {
		t.Fatalf("sweep result %+v vs facade %d points best %d worst %d",
			sr, len(sweep.Points), sweep.Best, sweep.Worst)
	}

	best, err := mcpart.BestMapping(p, m, mcpart.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	status, env = post(t, ts.URL, "/v1/best", APIRequest{Bench: "fir"})
	if status != 200 || !env.OK {
		t.Fatalf("best: %d %+v", status, env.Error)
	}
	br := decodeResult[BestResult](t, env)
	if br.Mask != best.Mask || br.Cycles != best.Cycles {
		t.Fatalf("best result %+v, want mask %#x cycles %d", br, best.Mask, best.Cycles)
	}
	if sr.Best != br.Cycles {
		t.Fatalf("sweep best %d != branch-and-bound best %d", sr.Best, br.Cycles)
	}
}

// TestServeTopologyPresets drives the daemon on the topology machine
// presets: every preset resolves over the wire, the validated partition
// matches the one-shot facade on the same machine, and the
// branch-and-bound endpoint agrees with the facade's optimum.
func TestServeTopologyPresets(t *testing.T) {
	_, ts := newTestServer(t, nil)
	p, err := mcpart.LoadBenchmark("fir")
	if err != nil {
		t.Fatal(err)
	}
	for _, preset := range []string{"ring8", "mesh4", "mesh8", "numa4"} {
		m, err := mcpart.MachinePreset(preset, 5)
		if err != nil {
			t.Fatal(err)
		}
		want, err := mcpart.Evaluate(p, m, mcpart.SchemeGDP, mcpart.Options{})
		if err != nil {
			t.Fatal(err)
		}
		status, env := post(t, ts.URL, "/v1/partition", APIRequest{
			Bench: "fir", Scheme: "gdp", Validate: true,
			Machine: MachineSpec{Preset: preset},
		})
		if status != 200 || !env.OK {
			t.Fatalf("%s partition: %d %+v", preset, status, env.Error)
		}
		pr := decodeResult[PartitionResult](t, env)
		if pr.Cycles != want.Cycles || pr.Moves != want.Moves || !pr.Validated {
			t.Fatalf("%s: wire result %+v, facade wants %d cycles %d moves validated",
				preset, pr, want.Cycles, want.Moves)
		}
	}
	best, err := mcpart.BestMapping(p, mustPreset(t, "mesh4"), mcpart.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	status, env := post(t, ts.URL, "/v1/best", APIRequest{
		Bench: "fir", Machine: MachineSpec{Preset: "mesh4"},
	})
	if status != 200 || !env.OK {
		t.Fatalf("mesh4 best: %d %+v", status, env.Error)
	}
	br := decodeResult[BestResult](t, env)
	if br.Mask != best.Mask || br.Cycles != best.Cycles {
		t.Fatalf("mesh4 best over the wire %+v, facade mask %#x cycles %d",
			br, best.Mask, best.Cycles)
	}
}

func mustPreset(t *testing.T, name string) *mcpart.Machine {
	t.Helper()
	m, err := mcpart.MachinePreset(name, 5)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestServeErrorTaxonomy pins the typed 4xx/5xx classes: every bad input
// fails crisply with the right code, never a 200 with wrong numbers and
// never an untyped 500.
func TestServeErrorTaxonomy(t *testing.T) {
	_, ts := newTestServer(t, nil)

	cases := []struct {
		name   string
		body   string
		status int
		code   string
	}{
		{"malformed json", "{not json", 400, "bad_request"},
		{"no source", `{"scheme":"gdp"}`, 400, "bad_request"},
		{"both sources", `{"bench":"fir","source":"fn main() int {return 0;}","scheme":"gdp"}`, 400, "bad_request"},
		{"unknown bench", `{"bench":"nope","scheme":"gdp"}`, 400, "bad_request"},
		{"unknown scheme", `{"bench":"fir","scheme":"quantum"}`, 400, "bad_request"},
		{"unknown preset", `{"bench":"fir","scheme":"gdp","machine":{"preset":"cray"}}`, 400, "bad_request"},
		{"unknown inject stage", `{"bench":"fir","scheme":"gdp","inject":{"stage":"warp"}}`, 400, "bad_request"},
		{"bad program", `{"name":"x","source":"fn main( {","scheme":"gdp"}`, 400, "bad_program"},
		{"step budget", `{"bench":"fir","scheme":"gdp","max_steps":10}`, 422, "budget_exceeded"},
		{"byte budget", `{"bench":"fir","scheme":"gdp","max_bytes":8}`, 422, "budget_exceeded"},
		{"timeout", `{"bench":"fir","scheme":"gdp","timeout_ms":1}`, 504, ""},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/partition", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var env APIResponse
		json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%+v)", tc.name, resp.StatusCode, tc.status, env.Error)
			continue
		}
		if env.OK || env.Error == nil {
			t.Errorf("%s: error envelope missing: %+v", tc.name, env)
			continue
		}
		if tc.code != "" && env.Error.Code != tc.code {
			t.Errorf("%s: code %q, want %q", tc.name, env.Error.Code, tc.code)
		}
	}
	// "inject without AllowInject" is rejected, not silently ignored.
	status, env := post(t, ts.URL, "/v1/partition",
		APIRequest{Bench: "fir", Scheme: "gdp", Inject: &InjectSpec{Stage: "partition"}})
	if status != 400 || env.Error == nil || env.Error.Code != "bad_request" {
		t.Fatalf("inject on non-inject server: %d %+v", status, env.Error)
	}
}

// TestServeRateLimit pins token-bucket shedding under a deterministic
// clock: burst admits, the next request sheds 429, refill re-admits.
func TestServeRateLimit(t *testing.T) {
	clock := time.Unix(1000, 0)
	var clockMu sync.Mutex
	now := func() time.Time { clockMu.Lock(); defer clockMu.Unlock(); return clock }
	srv, ts := newTestServer(t, func(c *Config) {
		c.RatePerSec = 1
		c.Burst = 2
		c.Now = now
	})

	for i := 0; i < 2; i++ {
		if status, env := post(t, ts.URL, "/v1/compile", APIRequest{Bench: "fir"}); status != 200 {
			t.Fatalf("burst request %d: %d %+v", i, status, env.Error)
		}
	}
	status, env := post(t, ts.URL, "/v1/compile", APIRequest{Bench: "fir"})
	if status != 429 || env.Error == nil || env.Error.Code != "rate_limited" {
		t.Fatalf("over-rate request: %d %+v", status, env.Error)
	}
	if got := srv.o.Registry().Snapshot().Value("serve_shed_rate"); got != 1 {
		t.Fatalf("serve_shed_rate = %d, want 1", got)
	}
	clockMu.Lock()
	clock = clock.Add(time.Second)
	clockMu.Unlock()
	if status, env := post(t, ts.URL, "/v1/compile", APIRequest{Bench: "fir"}); status != 200 {
		t.Fatalf("post-refill request: %d %+v", status, env.Error)
	}
}

// TestServeQueueShed pins bounded-queue load shedding: with every worker
// slot busy and the queue full, the next request is refused with 503
// overloaded instead of piling up.
func TestServeQueueShed(t *testing.T) {
	srv, ts := newTestServer(t, func(c *Config) {
		c.MaxConcurrent = 1
		c.QueueDepth = 1
	})
	// Occupy the single worker slot directly.
	srv.sem <- struct{}{}
	defer func() { <-srv.sem }()

	// One request fits in the queue (it parks waiting for the slot)...
	queued := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/compile", "application/json",
			strings.NewReader(`{"bench":"fir"}`))
		if err == nil {
			queued <- resp
		}
	}()
	// Wait until it is actually parked.
	deadline := time.Now().Add(5 * time.Second)
	for {
		srv.queueMu.Lock()
		q := srv.queued
		srv.queueMu.Unlock()
		if q == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queued request never parked")
		}
		time.Sleep(time.Millisecond)
	}
	// ...the next one sheds.
	status, env := post(t, ts.URL, "/v1/compile", APIRequest{Bench: "fir"})
	if status != 503 || env.Error == nil || env.Error.Code != "overloaded" {
		t.Fatalf("overflow request: %d %+v", status, env.Error)
	}
	if got := srv.o.Registry().Snapshot().Value("serve_shed_queue"); got != 1 {
		t.Fatalf("serve_shed_queue = %d, want 1", got)
	}
	// Free the slot; the parked request completes normally.
	<-srv.sem
	defer func() { srv.sem <- struct{}{} }() // rebalance for the deferred drain
	select {
	case resp := <-queued:
		if resp.StatusCode != 200 {
			t.Fatalf("parked request finished %d", resp.StatusCode)
		}
		resp.Body.Close()
	case <-time.After(10 * time.Second):
		t.Fatal("parked request never completed")
	}
}

// TestServeInjectionAndDegradation pins per-request fault injection at
// every stage and the graceful degradation chain: an injected GDP failure
// with fallback enabled returns ProfileMax's exact numbers plus an honest
// degraded marker — never a wrong answer dressed as success.
func TestServeInjectionAndDegradation(t *testing.T) {
	srv, ts := newTestServer(t, func(c *Config) { c.AllowInject = true })

	for _, stage := range []string{"decode", "admit", "compile", "respond"} {
		status, env := post(t, ts.URL, "/v1/partition",
			APIRequest{Bench: "fir", Scheme: "gdp", Inject: &InjectSpec{Stage: stage}})
		if status != 500 || env.Error == nil || env.Error.Code != "injected" {
			t.Fatalf("inject %s: %d %+v", stage, status, env.Error)
		}
	}
	// Eval-stage fault without fallback: typed injected error.
	status, env := post(t, ts.URL, "/v1/partition",
		APIRequest{Bench: "fir", Scheme: "gdp", Inject: &InjectSpec{Stage: "partition", Scheme: "gdp"}})
	if status != 500 || env.Error == nil || env.Error.Code != "injected" {
		t.Fatalf("partition-stage inject: %d %+v", status, env.Error)
	}

	// Same fault under fallback: 200, ProfileMax's exact numbers, honest
	// degradation marker.
	p, err := mcpart.LoadBenchmark("fir")
	if err != nil {
		t.Fatal(err)
	}
	want, err := mcpart.Evaluate(p, mcpart.Paper2Cluster(5), mcpart.SchemeProfileMax, mcpart.Options{})
	if err != nil {
		t.Fatal(err)
	}
	status, env = post(t, ts.URL, "/v1/partition",
		APIRequest{Bench: "fir", Scheme: "gdp", Fallback: true,
			Inject: &InjectSpec{Stage: "partition", Scheme: "gdp"}})
	if status != 200 || !env.OK {
		t.Fatalf("degraded request: %d %+v", status, env.Error)
	}
	if env.Degraded == nil || env.Degraded.From != "GDP" || !strings.Contains(env.Degraded.Error, "injected") {
		t.Fatalf("degraded marker: %+v", env.Degraded)
	}
	pr := decodeResult[PartitionResult](t, env)
	if pr.Scheme != "ProfileMax" || pr.Cycles != want.Cycles || pr.Moves != want.Moves {
		t.Fatalf("degraded result %+v, want ProfileMax %d cycles %d moves", pr, want.Cycles, want.Moves)
	}
	if got := srv.o.Registry().Snapshot().Value("serve_degraded"); got != 1 {
		t.Fatalf("serve_degraded = %d, want 1", got)
	}

	// The injected fault never contaminated the shared caches: the same
	// request without injection returns clean GDP numbers.
	cleanWant, err := mcpart.Evaluate(p, mcpart.Paper2Cluster(5), mcpart.SchemeGDP, mcpart.Options{})
	if err != nil {
		t.Fatal(err)
	}
	status, env = post(t, ts.URL, "/v1/partition", APIRequest{Bench: "fir", Scheme: "gdp"})
	if status != 200 {
		t.Fatalf("clean request after faults: %d %+v", status, env.Error)
	}
	pr = decodeResult[PartitionResult](t, env)
	if pr.Scheme != "GDP" || pr.Cycles != cleanWant.Cycles || env.Degraded != nil {
		t.Fatalf("post-fault clean result %+v degraded %+v, want GDP %d", pr, env.Degraded, cleanWant.Cycles)
	}
}

// TestServePanicContainment pins that a panic inside a request becomes
// that request's 500 and the daemon keeps serving.
func TestServePanicContainment(t *testing.T) {
	var boom bool
	srv, ts := newTestServer(t, func(c *Config) {
		c.Inject = func(stage string) error {
			if boom && stage == "compile" {
				panic("synthetic handler bug")
			}
			return nil
		}
	})
	boom = true
	status, env := post(t, ts.URL, "/v1/compile", APIRequest{Bench: "fir"})
	if status != 500 || env.Error == nil || env.Error.Code != "internal" {
		t.Fatalf("panicking request: %d %+v", status, env.Error)
	}
	if got := srv.o.Registry().Snapshot().Value("serve_panics"); got != 1 {
		t.Fatalf("serve_panics = %d, want 1", got)
	}
	boom = false
	if status, env := post(t, ts.URL, "/v1/compile", APIRequest{Bench: "fir"}); status != 200 {
		t.Fatalf("request after panic: %d %+v", status, env.Error)
	}
}

// TestServeMemoryCeiling pins the memory-pressure path: when the heap
// probe crosses the ceiling, the session's program cache shrinks (counted
// in serve_mem_releases) and the daemon keeps answering correctly.
func TestServeMemoryCeiling(t *testing.T) {
	var heap int64 = 1 << 20
	var heapMu sync.Mutex
	session := mcpart.NewSession(mcpart.SessionOptions{})
	srv, ts := newTestServer(t, func(c *Config) {
		c.Session = session
		c.MemCeilingBytes = 1 << 30
		c.MemKeepPrograms = 1
		c.MemProbe = func() int64 { heapMu.Lock(); defer heapMu.Unlock(); return heap }
	})
	for _, unroll := range []int{1, 2} {
		if status, env := post(t, ts.URL, "/v1/compile", APIRequest{Bench: "fir", Unroll: unroll}); status != 200 {
			t.Fatalf("warmup: %d %+v", status, env.Error)
		}
	}
	if got := session.Stats().Programs; got != 2 {
		t.Fatalf("resident programs before pressure: %d", got)
	}
	heapMu.Lock()
	heap = 2 << 30
	heapMu.Unlock()
	if status, env := post(t, ts.URL, "/v1/compile", APIRequest{Bench: "fir", Unroll: 1}); status != 200 {
		t.Fatalf("pressured request: %d %+v", status, env.Error)
	}
	if got := srv.o.Registry().Snapshot().Value("serve_mem_releases"); got == 0 {
		t.Fatal("serve_mem_releases did not advance under pressure")
	}
	if got := session.Stats().Programs; got > 1 {
		t.Fatalf("resident programs after release: %d, want <= 1", got)
	}
	heapMu.Lock()
	heap = 1 << 20
	heapMu.Unlock()
	if status, env := post(t, ts.URL, "/v1/compile", APIRequest{Bench: "fir", Unroll: 2}); status != 200 {
		t.Fatalf("request after release: %d %+v", status, env.Error)
	}
}

// TestServeDrainGraceful pins the drain contract's happy path: readiness
// flips, new requests shed, in-flight requests finish with 200, Drain
// returns only after they do.
func TestServeDrainGraceful(t *testing.T) {
	gate := make(chan struct{})
	var gateOnce sync.Once
	srv, ts := newTestServer(t, func(c *Config) {
		c.Inject = func(stage string) error {
			if stage == "compile" {
				<-gate
			}
			return nil
		}
	})

	inflight := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/compile", "application/json", strings.NewReader(`{"bench":"fir"}`))
		if err == nil {
			inflight <- resp
		}
	}()
	waitForInflight(t, srv, 1)

	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(context.Background()) }()
	waitForDraining(t, srv)

	// Readiness is down, liveness stays up, new work sheds.
	if code := getStatus(t, ts.URL+"/readyz"); code != 503 {
		t.Fatalf("readyz during drain = %d", code)
	}
	if code := getStatus(t, ts.URL+"/healthz"); code != 200 {
		t.Fatalf("healthz during drain = %d", code)
	}
	status, env := post(t, ts.URL, "/v1/compile", APIRequest{Bench: "fir"})
	if status != 503 || env.Error == nil || env.Error.Code != "draining" {
		t.Fatalf("request during drain: %d %+v", status, env.Error)
	}
	select {
	case <-drained:
		t.Fatal("Drain returned with a request still in flight")
	default:
	}

	// Release the in-flight request: it completes with 200 and Drain
	// returns.
	gateOnce.Do(func() { close(gate) })
	select {
	case resp := <-inflight:
		if resp.StatusCode != 200 {
			t.Fatalf("in-flight request finished %d during drain", resp.StatusCode)
		}
		resp.Body.Close()
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("Drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Drain never returned")
	}
}

// TestServeDrainDeadline pins the drain contract's hard path: at the drain
// deadline, queued requests are cut loose with a typed 503 — every
// accepted request still gets exactly one response.
func TestServeDrainDeadline(t *testing.T) {
	srv, ts := newTestServer(t, func(c *Config) {
		c.MaxConcurrent = 1
		c.QueueDepth = 4
	})
	// Jam the single worker slot so requests park in the queue.
	srv.sem <- struct{}{}
	defer func() { <-srv.sem }()

	const parked = 3
	responses := make(chan int, parked)
	for i := 0; i < parked; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/v1/compile", "application/json", strings.NewReader(`{"bench":"fir"}`))
			if err != nil {
				responses <- -1
				return
			}
			resp.Body.Close()
			responses <- resp.StatusCode
		}()
	}
	waitForQueued(t, srv, parked)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	for i := 0; i < parked; i++ {
		select {
		case code := <-responses:
			if code != 503 {
				t.Fatalf("parked request %d finished %d, want 503", i, code)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("parked request lost in drain")
		}
	}
}

func waitForInflight(t *testing.T, srv *Server, _ int) {
	t.Helper()
	// The in-flight request is parked inside the compile-stage hook; poll
	// the request counter as the accepted marker.
	deadline := time.Now().Add(5 * time.Second)
	for srv.o.Registry().Snapshot().Value("serve_requests") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("request never accepted")
		}
		time.Sleep(time.Millisecond)
	}
	// Give it a beat to pass the accept gate.
	time.Sleep(10 * time.Millisecond)
}

func waitForDraining(t *testing.T, srv *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !srv.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("drain never started")
		}
		time.Sleep(time.Millisecond)
	}
}

func waitForQueued(t *testing.T, srv *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		srv.queueMu.Lock()
		q := srv.queued
		srv.queueMu.Unlock()
		if q >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests parked", q, n)
		}
		time.Sleep(time.Millisecond)
	}
}

func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// TestServeMetricsEndpoint pins that /metrics renders the registry in
// Prometheus format with the headline counters present from the start.
func TestServeMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	for _, name := range []string{"serve_requests", "serve_shed_rate", "serve_shed_queue", "serve_degraded", "serve_panics"} {
		if !strings.Contains(string(body), name) {
			t.Fatalf("metrics output missing %s:\n%s", name, body)
		}
	}
	if status, env := post(t, ts.URL, "/v1/compile", APIRequest{Bench: "fir"}); status != 200 {
		t.Fatalf("compile: %d %+v", status, env.Error)
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `serve_requests{endpoint="compile"} 1`) {
		t.Fatalf("per-endpoint counter missing:\n%s", body)
	}
}

// TestServeConcurrentMixedTraffic is a smoke-scale version of the load
// harness: concurrent mixed requests (several benches and schemes, some
// injected faults, some tight timeouts) against serial oracles; every
// success must match its oracle exactly.
func TestServeConcurrentMixedTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("mixed-traffic test skipped in -short")
	}
	_, ts := newTestServer(t, func(c *Config) { c.AllowInject = true })

	type oracle struct{ cycles, moves int64 }
	m := mcpart.Paper2Cluster(5)
	oracles := map[string]oracle{}
	for _, bench := range []string{"fir", "fsed"} {
		p, err := mcpart.LoadBenchmark(bench)
		if err != nil {
			t.Fatal(err)
		}
		for name, scheme := range map[string]mcpart.Scheme{
			"gdp": mcpart.SchemeGDP, "profilemax": mcpart.SchemeProfileMax, "naive": mcpart.SchemeNaive,
		} {
			r, err := mcpart.Evaluate(p, m, scheme, mcpart.Options{})
			if err != nil {
				t.Fatal(err)
			}
			oracles[bench+"/"+name] = oracle{r.Cycles, r.Moves}
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			benches := []string{"fir", "fsed"}
			schemes := []string{"gdp", "profilemax", "naive"}
			for i := 0; i < 8; i++ {
				req := APIRequest{
					Bench:  benches[(w+i)%2],
					Scheme: schemes[(w+i)%3],
				}
				wantKey := req.Bench + "/" + req.Scheme
				switch (w + i) % 5 {
				case 3:
					req.Inject = &InjectSpec{Stage: "partition", Scheme: req.Scheme}
					req.Fallback = true
				case 4:
					req.TimeoutMS = 1
				}
				status, env := post(t, ts.URL, "/v1/partition", req)
				switch {
				case status == 200 && env.Degraded == nil:
					pr := decodeResult[PartitionResult](t, env)
					want := oracles[wantKey]
					if pr.Cycles != want.cycles || pr.Moves != want.moves {
						errs <- fmt.Errorf("%s: got (%d,%d) want (%d,%d)", wantKey, pr.Cycles, pr.Moves, want.cycles, want.moves)
					}
				case status == 200 && env.Degraded != nil:
					pr := decodeResult[PartitionResult](t, env)
					want, ok := oracles[req.Bench+"/"+strings.ToLower(pr.Scheme)]
					if pr.Scheme == "ProfileMax" {
						want, ok = oracles[req.Bench+"/profilemax"], true
					}
					if ok && (pr.Cycles != want.cycles || pr.Moves != want.moves) {
						errs <- fmt.Errorf("%s degraded to %s: got (%d,%d) want (%d,%d)",
							wantKey, pr.Scheme, pr.Cycles, pr.Moves, want.cycles, want.moves)
					}
				case status == 504, status == 500, status == 422:
					// typed failure: acceptable under injected faults/timeouts
				default:
					errs <- fmt.Errorf("%s: unexpected status %d (%+v)", wantKey, status, env.Error)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
