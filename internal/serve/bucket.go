package serve

import (
	"sync"
	"time"
)

// bucket is a classic token bucket: capacity `burst` tokens, refilled at
// `rate` per second, one token per admitted request. It is the daemon's
// first shed line — over-rate traffic costs one mutex acquisition and a
// 429, nothing more. The clock is injected so tests drive it
// deterministically.
type bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; <= 0 disables limiting
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

func newBucket(rate float64, burst int, now func() time.Time) *bucket {
	if burst <= 0 {
		burst = int(rate)
		if burst < 1 {
			burst = 1
		}
	}
	return &bucket{
		rate:   rate,
		burst:  float64(burst),
		tokens: float64(burst),
		now:    now,
		last:   now(),
	}
}

// allow takes one token, reporting false when the bucket is dry.
func (b *bucket) allow() bool {
	if b.rate <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.now()
	b.tokens += t.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = t
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
