// api.go defines gdpd's wire format. The envelope deliberately separates
// the deterministic `result` object — byte-identical for a given request
// no matter the concurrency, cache temperature, or fault weather around it
// — from the nondeterministic `telemetry` object (wall times, cache
// counters). The load-test oracle compares `result` bytes against a serial
// reference run; anything that may legitimately vary lives in telemetry.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"mcpart"
	"mcpart/internal/bench"
	"mcpart/internal/check"
	"mcpart/internal/interp"
	"mcpart/internal/parallel"
)

// APIRequest is the body of every /v1/* POST. Source and Bench are
// alternatives: inline mclang source, or the name of a bundled benchmark.
type APIRequest struct {
	Name   string `json:"name,omitempty"`
	Source string `json:"source,omitempty"`
	Bench  string `json:"bench,omitempty"`

	// Front-end knobs (see mcpart.CompileOptions).
	Unroll     int   `json:"unroll,omitempty"`
	NoOptimize bool  `json:"no_optimize,omitempty"`
	MaxSteps   int64 `json:"max_steps,omitempty"`
	MaxBytes   int64 `json:"max_bytes,omitempty"`

	// TimeoutMS bounds this request's wall clock; 0 takes the server
	// default, and the server clamps to its maximum either way.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// Machine selects the target (POST /v1/partition, /v1/sweep, /v1/best).
	Machine MachineSpec `json:"machine,omitempty"`

	// Scheme is unified | gdp | profilemax | naive (POST /v1/partition).
	Scheme string `json:"scheme,omitempty"`

	// Evaluation knobs.
	Validate   bool `json:"validate,omitempty"`
	Fallback   bool `json:"fallback,omitempty"`
	Workers    int  `json:"workers,omitempty"`
	MaxObjects int  `json:"max_objects,omitempty"`

	// Inject requests a fault at one stage (honored only when the server
	// runs with fault injection enabled; otherwise rejected).
	Inject *InjectSpec `json:"inject,omitempty"`
}

// MachineSpec names a machine preset.
type MachineSpec struct {
	// Preset is paper2 (default) | four | eight | hetero2 | ring4 | ring8 |
	// mesh4 | mesh8 | numa4.
	Preset string `json:"preset,omitempty"`
	// MoveLatency is the intercluster move latency in cycles (default 5,
	// one of the paper's three points).
	MoveLatency int `json:"move_latency,omitempty"`
}

// InjectSpec asks the server to fail one stage of this request: a serve
// stage (decode | admit | compile | respond) or an eval pipeline stage
// (data | partition | sched | validate). For eval stages, Scheme limits
// the fault to one scheme so the degradation chain has somewhere to go.
type InjectSpec struct {
	Stage  string `json:"stage"`
	Scheme string `json:"scheme,omitempty"`
}

// APIResponse is the envelope of every /v1/* response.
type APIResponse struct {
	OK bool `json:"ok"`
	// Result is the deterministic payload (one of the *Result types
	// below); null on error.
	Result json.RawMessage `json:"result,omitempty"`
	// Degraded is set when graceful degradation substituted a fallback
	// scheme for the requested one.
	Degraded *DegradedInfo `json:"degraded,omitempty"`
	Error    *APIError     `json:"error,omitempty"`
	// Telemetry is the nondeterministic sidecar: wall times and cache
	// counters. Oracles must ignore it.
	Telemetry *Telemetry `json:"telemetry,omitempty"`
}

// APIError is a typed request failure.
type APIError struct {
	// Code is the machine-readable class: bad_request | bad_program |
	// budget_exceeded | rate_limited | overloaded | draining | deadline |
	// canceled | injected | validation_failed | internal.
	Code    string `json:"code"`
	Message string `json:"message"`
}

// DegradedInfo records a scheme substitution in the response body.
type DegradedInfo struct {
	// From is the scheme originally requested.
	From string `json:"from"`
	// Error is why it failed.
	Error string `json:"error"`
}

// Telemetry is the nondeterministic response sidecar.
type Telemetry struct {
	ElapsedMS   float64 `json:"elapsed_ms"`
	QueueWaitMS float64 `json:"queue_wait_ms"`
	MemoHits    uint64  `json:"memo_hits,omitempty"`
	MemoMisses  uint64  `json:"memo_misses,omitempty"`
}

// CompileResult is /v1/compile's deterministic payload.
type CompileResult struct {
	Name      string `json:"name"`
	Checksum  int64  `json:"checksum"`
	Functions int    `json:"functions"`
	Objects   int    `json:"objects"`
}

// PartitionResult is /v1/partition's deterministic payload.
type PartitionResult struct {
	// Scheme is the scheme that actually produced the numbers (the
	// fallback under degradation; the envelope's Degraded field names the
	// one requested).
	Scheme string `json:"scheme"`
	Cycles int64  `json:"cycles"`
	Moves  int64  `json:"moves"`
	// DataMap is the object→cluster assignment in object-ID order (null
	// for unified).
	DataMap []int `json:"data_map,omitempty"`
	// Validated reports that the independent validator re-checked this
	// result (request had validate=true).
	Validated bool `json:"validated,omitempty"`
}

// SweepResult is /v1/sweep's deterministic payload.
type SweepResult struct {
	Points   int    `json:"points"`
	Best     int64  `json:"best"`
	Worst    int64  `json:"worst"`
	GDPMask  uint64 `json:"gdp_mask"`
	PMaxMask uint64 `json:"pmax_mask"`
}

// BestResult is /v1/best's deterministic payload.
type BestResult struct {
	Mask   uint64 `json:"mask"`
	Cycles int64  `json:"cycles"`
	Moves  int64  `json:"moves"`
}

// resolveSource returns the (name, source) pair a request names, loading
// bundled benchmarks by name.
func (r *APIRequest) resolveSource() (string, string, error) {
	switch {
	case r.Bench != "" && r.Source != "":
		return "", "", errors.New("body names both source and bench")
	case r.Bench != "":
		b, err := bench.Get(r.Bench)
		if err != nil {
			return "", "", err
		}
		return b.Name, b.Source, nil
	case r.Source != "":
		name := r.Name
		if name == "" {
			name = "request"
		}
		return name, r.Source, nil
	default:
		return "", "", errors.New("body names neither source nor bench")
	}
}

// machine resolves the request's machine spec.
func (r *APIRequest) machine() (*mcpart.Machine, error) {
	lat := r.Machine.MoveLatency
	if lat <= 0 {
		lat = 5
	}
	return mcpart.MachinePreset(r.Machine.Preset, lat)
}

// scheme resolves the request's scheme name.
func (r *APIRequest) scheme() (mcpart.Scheme, error) {
	switch r.Scheme {
	case "unified":
		return mcpart.SchemeUnified, nil
	case "gdp":
		return mcpart.SchemeGDP, nil
	case "profilemax", "pmax":
		return mcpart.SchemeProfileMax, nil
	case "naive":
		return mcpart.SchemeNaive, nil
	default:
		return "", fmt.Errorf("unknown scheme %q (want unified|gdp|profilemax|naive)", r.Scheme)
	}
}

// dataMapSlice renders a DataMap as a dense object-ID-ordered slice (the
// deterministic wire form; Go map iteration order must never leak into
// result bytes).
func dataMapSlice(dm mcpart.DataMap) []int {
	if dm == nil {
		return nil
	}
	ids := make([]int, 0, len(dm))
	for id := range dm {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = dm[id]
	}
	return out
}

// RequestError marks a failure as the request body's fault (unknown
// preset, missing source, bad scheme name): HTTP 400 code "bad_request".
type RequestError struct {
	Err error
}

func (e *RequestError) Error() string { return e.Err.Error() }
func (e *RequestError) Unwrap() error { return e.Err }

// InjectedError is the typed error the fault-injection hooks raise; the
// error taxonomy maps it to HTTP 500 code "injected" (unless graceful
// degradation absorbed it first).
type InjectedError struct {
	Stage string
}

func (e *InjectedError) Error() string { return "injected fault at stage " + e.Stage }

// classify maps an error from the pipeline onto the wire taxonomy: an HTTP
// status and a machine-readable code. The order matters — cancellation
// outranks everything (a canceled request often wraps its cause), then the
// typed domain errors, then the catch-all internal class.
func classify(err error) (status int, code string) {
	var (
		be *interp.BudgetError
		ie *InjectedError
		ve *check.Error
		pe *parallel.PanicError
		me *mcpart.InternalError
		re *RequestError
	)
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return 504, "deadline"
	case errors.Is(err, context.Canceled):
		return 504, "canceled"
	case errors.As(err, &re):
		return 400, "bad_request"
	case errors.As(err, &be):
		if be.Resource == "deadline" {
			return 504, "deadline"
		}
		return 422, "budget_exceeded"
	case errors.As(err, &ie):
		return 500, "injected"
	case errors.As(err, &ve):
		return 500, "validation_failed"
	case errors.As(err, &pe), errors.As(err, &me):
		return 500, "internal"
	default:
		// Anything else the pipeline raises on the way in is the input's
		// fault: parse/type errors, unknown functions, bad specs.
		return 400, "bad_program"
	}
}
