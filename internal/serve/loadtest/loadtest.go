// Package loadtest drives gdpd with mixed concurrent traffic and verifies
// the daemon's core robustness claim: under concurrency, injected faults,
// shed load, and tight per-request deadlines, no request ever receives a
// wrong successful result. Every 200 is compared byte-for-byte against a
// serial oracle pass over the same request population (the deterministic
// `result` object only — telemetry is explicitly nondeterministic), every
// non-200 must carry a typed error code, and the report records latency
// percentiles plus shed/degrade counts per concurrency level.
package loadtest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mcpart/internal/serve"
)

// Options configures a run.
type Options struct {
	// URL is the daemon's base URL (required). The server must run with
	// fault injection enabled (serve.Config.AllowInject) or every injected
	// case fails as bad_request.
	URL string
	// Levels are the concurrency levels to sweep (non-empty required; e.g.
	// 1, 4, 16).
	Levels []int
	// Requests is the total request count per level (default 96).
	Requests int
	// Seed makes the request mix reproducible.
	Seed int64
	// FaultPct is the percentage of requests carrying an injected fault or
	// a deliberately hopeless deadline (default 25).
	FaultPct int
	// Pacing is each worker's think time between requests (0: none). With
	// pacing, offered load is ~level/Pacing requests per second regardless
	// of machine speed, which makes admission-control behavior comparable
	// across runners.
	Pacing time.Duration
	// Client overrides the HTTP client (default: http.DefaultClient with a
	// 2-minute timeout guard).
	Client *http.Client
}

// LevelReport summarizes one concurrency level.
type LevelReport struct {
	Concurrency int `json:"concurrency"`
	Requests    int `json:"requests"`
	// OK counts clean 200s, Degraded the 200s that carried a degradation
	// marker (both verified byte-for-byte against the oracle).
	OK       int `json:"ok"`
	Degraded int `json:"degraded"`
	// Shed counts typed admission refusals (429 rate_limited, 503
	// overloaded/draining) — the daemon saying "no" crisply.
	Shed int `json:"shed"`
	// TypedErrors counts every other typed failure by wire code
	// (injected, deadline, canceled, budget_exceeded, ...).
	TypedErrors map[string]int `json:"typed_errors"`
	// Mismatches counts 200 responses whose result bytes differ from the
	// serial oracle — cross-request contamination. Must be zero.
	Mismatches int `json:"mismatches"`
	// Untyped counts failures outside the taxonomy (transport errors,
	// non-200 without an error code). Must be zero.
	Untyped int `json:"untyped"`
	// Latency percentiles over successful (200) requests.
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
}

// Report is the whole run, serialized into BENCH_serve.json by
// `gdpd -loadtest`.
type Report struct {
	Seed     int64         `json:"seed"`
	FaultPct int           `json:"fault_pct"`
	Cases    int           `json:"cases"`
	Levels   []LevelReport `json:"levels"`
}

// testCase is one distinct request shape; key indexes the oracle.
type testCase struct {
	endpoint string
	req      serve.APIRequest
	key      string
}

// benches/schemes are the mixed-traffic population. Sweep and best run on
// fir only — the exhaustive surfaces are the expensive tail of the mix,
// one benchmark is enough to keep them honest under concurrency.
var benches = []string{"fir", "fsed", "viterbi"}
var schemes = []string{"unified", "gdp", "profilemax", "naive"}

func casePool() []testCase {
	var pool []testCase
	for _, b := range benches {
		pool = append(pool, testCase{
			endpoint: "/v1/compile",
			req:      serve.APIRequest{Bench: b},
			key:      "compile|" + b,
		})
		for _, s := range schemes {
			pool = append(pool, testCase{
				endpoint: "/v1/partition",
				req:      serve.APIRequest{Bench: b, Scheme: s},
				key:      partitionKey(b, s),
			})
		}
	}
	pool = append(pool,
		testCase{endpoint: "/v1/sweep", req: serve.APIRequest{Bench: "fir"}, key: "sweep|fir"},
		testCase{endpoint: "/v1/best", req: serve.APIRequest{Bench: "fir"}, key: "best|fir"},
	)
	return pool
}

func partitionKey(bench, scheme string) string { return "partition|" + bench + "|" + scheme }

// Run executes the harness: one serial oracle pass, then each concurrency
// level. The returned error is non-nil if any level saw a mismatch or an
// untyped failure — the conditions the robustness contract forbids.
func Run(opts Options) (*Report, error) {
	if opts.URL == "" {
		return nil, fmt.Errorf("loadtest: URL is required")
	}
	if len(opts.Levels) == 0 {
		return nil, fmt.Errorf("loadtest: at least one concurrency level is required")
	}
	requests := opts.Requests
	if requests <= 0 {
		requests = 96
	}
	faultPct := opts.FaultPct
	if faultPct <= 0 {
		faultPct = 25
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Minute}
	}

	pool := casePool()

	// Serial oracle pass: every distinct case once, no faults, recording
	// the deterministic result bytes.
	oracle := make(map[string]json.RawMessage, len(pool))
	for _, tc := range pool {
		env, _, err := send(client, opts.URL, tc.endpoint, tc.req)
		if err != nil {
			return nil, fmt.Errorf("loadtest: oracle %s: %w", tc.key, err)
		}
		if !env.OK || env.Degraded != nil {
			return nil, fmt.Errorf("loadtest: oracle %s failed: %+v", tc.key, env.Error)
		}
		oracle[tc.key] = env.Result
	}

	report := &Report{Seed: opts.Seed, FaultPct: faultPct, Cases: len(pool)}
	for _, level := range opts.Levels {
		lr, err := runLevel(client, opts.URL, pool, oracle, level, requests, opts.Seed, faultPct, opts.Pacing)
		if err != nil {
			return report, err
		}
		report.Levels = append(report.Levels, *lr)
	}
	for _, lr := range report.Levels {
		if lr.Mismatches > 0 || lr.Untyped > 0 {
			return report, fmt.Errorf("loadtest: level %d: %d result mismatches, %d untyped failures",
				lr.Concurrency, lr.Mismatches, lr.Untyped)
		}
	}
	return report, nil
}

// faultKind is the per-request fault plan.
type faultKind int

const (
	faultNone    faultKind = iota
	faultDegrade           // eval-stage fault + fallback: expect honest degradation
	faultServe             // serve-stage fault: expect typed 500 injected
	faultTimeout           // 1 ms deadline: expect 504 (or a legitimately fast 200)
)

// plannedRequest is one deterministic slot in a level's schedule.
type plannedRequest struct {
	tc    testCase
	fault faultKind
	stage string // serve stage for faultServe
}

// schedule builds a level's request population deterministically from the
// seed; workers consume it in arbitrary interleaving, which is the point —
// the *population* is reproducible, the *timing* is the stress.
func schedule(pool []testCase, level, requests int, seed int64, faultPct int) []plannedRequest {
	rng := rand.New(rand.NewSource(seed + int64(level)*7919))
	serveStages := []string{"compile", "respond", "admit"}
	plan := make([]plannedRequest, requests)
	for i := range plan {
		tc := pool[rng.Intn(len(pool))]
		p := plannedRequest{tc: tc}
		if rng.Intn(100) < faultPct {
			switch rng.Intn(3) {
			case 0:
				if tc.endpoint == "/v1/partition" {
					p.fault = faultDegrade
					p.tc.req.Fallback = true
					p.tc.req.Inject = &serve.InjectSpec{Stage: "partition", Scheme: tc.req.Scheme}
				}
			case 1:
				p.fault = faultServe
				p.stage = serveStages[rng.Intn(len(serveStages))]
				p.tc.req.Inject = &serve.InjectSpec{Stage: p.stage}
			case 2:
				p.fault = faultTimeout
				p.tc.req.TimeoutMS = 1
			}
		}
		plan[i] = p
	}
	return plan
}

func runLevel(client *http.Client, url string, pool []testCase, oracle map[string]json.RawMessage,
	level, requests int, seed int64, faultPct int, pacing time.Duration) (*LevelReport, error) {

	plan := schedule(pool, level, requests, seed, faultPct)
	lr := &LevelReport{Concurrency: level, Requests: len(plan), TypedErrors: map[string]int{}}

	var mu sync.Mutex
	var latencies []time.Duration
	var next int64 = -1

	var wg sync.WaitGroup
	for w := 0; w < level; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			first := true
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(plan) {
					return
				}
				if pacing > 0 && !first {
					time.Sleep(pacing)
				}
				first = false
				p := plan[i]
				env, elapsed, err := send(client, url, p.tc.endpoint, p.tc.req)
				mu.Lock()
				classifyResponse(lr, &latencies, oracle, p, env, elapsed, err)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	lr.P50MS, lr.P95MS, lr.P99MS = percentiles(latencies)
	return lr, nil
}

// classifyResponse scores one response against the robustness contract.
// Caller holds the level mutex.
func classifyResponse(lr *LevelReport, latencies *[]time.Duration,
	oracle map[string]json.RawMessage, p plannedRequest, env *envelope, elapsed time.Duration, err error) {

	if err != nil {
		lr.Untyped++
		return
	}
	switch {
	case env.status == 200 && env.Degraded == nil:
		*latencies = append(*latencies, elapsed)
		if want, ok := oracle[p.tc.key]; !ok || !bytes.Equal(env.Result, want) {
			lr.Mismatches++
			return
		}
		lr.OK++
	case env.status == 200 && env.Degraded != nil:
		// An honest degradation: the result must be byte-identical to the
		// fallback scheme's own oracle entry for the same benchmark.
		*latencies = append(*latencies, elapsed)
		var pr struct {
			Scheme string `json:"scheme"`
		}
		if json.Unmarshal(env.Result, &pr) != nil {
			lr.Mismatches++
			return
		}
		key := partitionKey(p.tc.req.Bench, strings.ToLower(pr.Scheme))
		if want, ok := oracle[key]; !ok || !bytes.Equal(env.Result, want) {
			lr.Mismatches++
			return
		}
		lr.Degraded++
	case env.Error != nil && (env.Error.Code == "rate_limited" || env.Error.Code == "overloaded" || env.Error.Code == "draining"):
		lr.Shed++
	case env.Error != nil:
		lr.TypedErrors[env.Error.Code]++
	default:
		lr.Untyped++
	}
}

// envelope is serve.APIResponse plus the transport status.
type envelope struct {
	serve.APIResponse
	status int
}

func send(client *http.Client, url, endpoint string, req serve.APIRequest) (*envelope, time.Duration, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	resp, err := client.Post(url+endpoint, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	env := &envelope{status: resp.StatusCode}
	if err := json.NewDecoder(resp.Body).Decode(&env.APIResponse); err != nil {
		return nil, 0, fmt.Errorf("%s: decode: %w", endpoint, err)
	}
	return env, time.Since(start), nil
}

// percentiles reduces success latencies to p50/p95/p99 in milliseconds.
func percentiles(ds []time.Duration) (p50, p95, p99 float64) {
	if len(ds) == 0 {
		return 0, 0, 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	at := func(q float64) float64 {
		i := int(q * float64(len(ds)-1))
		return float64(ds[i].Microseconds()) / 1e3
	}
	return at(0.50), at(0.95), at(0.99)
}
