package loadtest

import (
	"net/http/httptest"
	"testing"

	"mcpart"
	"mcpart/internal/serve"
)

// TestLoadHarness is the tentpole acceptance test at smoke scale: mixed
// traffic at several concurrency levels against a daemon with fault
// injection enabled and a deliberately small admission envelope, verified
// request-by-request against the serial oracle. Zero mismatches and zero
// untyped failures or the run errors.
func TestLoadHarness(t *testing.T) {
	if testing.Short() {
		t.Skip("load harness skipped in -short")
	}
	session := mcpart.NewSession(mcpart.SessionOptions{})
	defer session.Close()
	srv := serve.New(serve.Config{
		Session:       session,
		AllowInject:   true,
		MaxConcurrent: 4,
		QueueDepth:    8,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	report, err := Run(Options{
		URL:      ts.URL,
		Levels:   []int{1, 4, 16},
		Requests: 48,
		Seed:     1,
		FaultPct: 30,
	})
	if err != nil {
		t.Fatalf("load harness: %v (report %+v)", err, report)
	}
	if len(report.Levels) != 3 {
		t.Fatalf("levels: %+v", report.Levels)
	}
	for _, lr := range report.Levels {
		if lr.Mismatches != 0 || lr.Untyped != 0 {
			t.Fatalf("level %d: %d mismatches, %d untyped", lr.Concurrency, lr.Mismatches, lr.Untyped)
		}
		if lr.OK == 0 {
			t.Fatalf("level %d: no successful requests (%+v)", lr.Concurrency, lr)
		}
		total := lr.OK + lr.Degraded + lr.Shed + lr.Untyped + lr.Mismatches
		for _, n := range lr.TypedErrors {
			total += n
		}
		if total != lr.Requests {
			t.Fatalf("level %d: accounting leak: %d classified of %d (%+v)",
				lr.Concurrency, total, lr.Requests, lr)
		}
	}
	// The seeded mix at 30%% faults must actually exercise the fault
	// machinery somewhere in the sweep.
	var degraded, typed int
	for _, lr := range report.Levels {
		degraded += lr.Degraded
		for _, n := range lr.TypedErrors {
			typed += n
		}
	}
	if degraded == 0 {
		t.Error("no degraded responses across the sweep; fault plan inert")
	}
	if typed == 0 {
		t.Error("no typed errors across the sweep; fault plan inert")
	}
}

// TestScheduleDeterministic pins that the request population for a level
// is a pure function of (seed, level) — reruns replay the same mix.
func TestScheduleDeterministic(t *testing.T) {
	pool := casePool()
	a := schedule(pool, 8, 64, 42, 25)
	b := schedule(pool, 8, 64, 42, 25)
	if len(a) != 64 {
		t.Fatalf("schedule length %d", len(a))
	}
	for i := range a {
		if a[i].tc.key != b[i].tc.key || a[i].fault != b[i].fault || a[i].stage != b[i].stage {
			t.Fatalf("slot %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := schedule(pool, 8, 64, 43, 25)
	same := true
	for i := range a {
		if a[i].tc.key != c[i].tc.key || a[i].fault != c[i].fault {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced an identical schedule")
	}
}
