package plot

import (
	"encoding/xml"
	"strings"
	"testing"
)

func wellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed XML: %v\n%s", err, svg)
		}
	}
}

func TestBarChart(t *testing.T) {
	svg := BarChart("Figure 8a", "% of unified", []string{"rawcaudio", "fir & co"},
		[]Series{
			{Name: "GDP", Values: []float64{98.7, 99.0}},
			{Name: "ProfileMax", Values: []float64{98.7, 92.4}},
		}, 110, 100)
	wellFormed(t, svg)
	for _, want := range []string{"Figure 8a", "GDP", "ProfileMax", "rawcaudio",
		"fir &amp; co", "<rect", "stroke-dasharray"} {
		if !strings.Contains(svg, want) {
			t.Errorf("bar chart missing %q", want)
		}
	}
}

func TestBarChartAutoScaleAndMissingValues(t *testing.T) {
	svg := BarChart("t", "y", []string{"a", "b", "c"},
		[]Series{{Name: "s", Values: []float64{1}}}, 0, 0)
	wellFormed(t, svg)
}

func TestScatter(t *testing.T) {
	svg := Scatter("Figure 9 (rawcaudio)", "imbalance", "perf vs worst", []Point{
		{X: 0.0, Y: 1.07, Shade: 0.0, Mark: "GDP"},
		{X: 1.0, Y: 1.08, Shade: 1.0},
		{X: 0.5, Y: 1.00, Shade: 0.5, Mark: "PMax"},
	})
	wellFormed(t, svg)
	for _, want := range []string{"Figure 9", "imbalance", "GDP", "PMax", "<circle"} {
		if !strings.Contains(svg, want) {
			t.Errorf("scatter missing %q", want)
		}
	}
}

func TestScatterEmpty(t *testing.T) {
	wellFormed(t, Scatter("empty", "x", "y", nil))
}
