// Package plot renders the evaluation's figures as standalone SVG files
// using only the standard library: grouped bar charts for the performance
// figures (2, 7, 8, 10) and a shaded scatter for the exhaustive search
// (Figure 9). The output is deliberately simple — axes, ticks, labels,
// legend — and deterministic.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one bar group member (e.g. "GDP") with one value per label.
type Series struct {
	Name   string
	Values []float64
}

// palette holds fill colors for up to four series.
var palette = []string{"#4878a8", "#e49444", "#59a14f", "#b0b0b0"}

const (
	width   = 900
	height  = 420
	marginL = 70
	marginR = 20
	marginT = 40
	marginB = 110
)

func header(sb *strings.Builder, title string) {
	fmt.Fprintf(sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n", width, height)
	fmt.Fprintf(sb, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(sb, `<text x="%d" y="24" font-size="16" text-anchor="middle">%s</text>`+"\n", width/2, esc(title))
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// BarChart renders grouped bars: one group per label, one bar per series.
// yMax of 0 auto-scales; yLine, when nonzero, draws a reference line
// (e.g. 100% of unified).
func BarChart(title, yLabel string, labels []string, series []Series, yMax, yLine float64) string {
	var sb strings.Builder
	header(&sb, title)
	plotW := width - marginL - marginR
	plotH := height - marginT - marginB

	if yMax <= 0 {
		for _, s := range series {
			for _, v := range s.Values {
				if v > yMax {
					yMax = v
				}
			}
		}
		yMax *= 1.1
	}
	if yMax <= 0 {
		yMax = 1
	}
	y := func(v float64) float64 {
		return float64(marginT) + float64(plotH)*(1-v/yMax)
	}

	// Axes and ticks.
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT, marginL, marginT+plotH)
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	for t := 0; t <= 5; t++ {
		v := yMax * float64(t) / 5
		fmt.Fprintf(&sb, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, y(v), marginL+plotW, y(v))
		fmt.Fprintf(&sb, `<text x="%d" y="%.1f" font-size="11" text-anchor="end">%.0f</text>`+"\n",
			marginL-6, y(v)+4, v)
	}
	fmt.Fprintf(&sb, `<text x="16" y="%d" font-size="12" transform="rotate(-90 16 %d)" text-anchor="middle">%s</text>`+"\n",
		marginT+plotH/2, marginT+plotH/2, esc(yLabel))

	// Bars.
	groupW := float64(plotW) / float64(len(labels))
	barW := groupW * 0.8 / float64(len(series))
	for gi, label := range labels {
		gx := float64(marginL) + groupW*float64(gi) + groupW*0.1
		for si, s := range series {
			v := 0.0
			if gi < len(s.Values) {
				v = s.Values[gi]
			}
			bx := gx + barW*float64(si)
			fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
				bx, y(v), barW, float64(marginT+plotH)-y(v), palette[si%len(palette)])
		}
		lx := gx + groupW*0.4
		ly := marginT + plotH + 12
		fmt.Fprintf(&sb, `<text x="%.1f" y="%d" font-size="10" text-anchor="end" transform="rotate(-45 %.1f %d)">%s</text>`+"\n",
			lx, ly, lx, ly, esc(label))
	}
	if yLine > 0 && yLine <= yMax {
		fmt.Fprintf(&sb, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#c33" stroke-dasharray="5,4"/>`+"\n",
			marginL, y(yLine), marginL+plotW, y(yLine))
	}
	// Legend.
	lx := marginL + 10
	for si, s := range series {
		fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="12" height="12" fill="%s"/>`+"\n",
			lx, marginT-14, palette[si%len(palette)])
		fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="12">%s</text>`+"\n",
			lx+16, marginT-4, esc(s.Name))
		lx += 24 + 9*len(s.Name)
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

// Point is one scatter point: X (balance), Y (performance), Shade in
// [0,1] (darker = more imbalanced, like the paper's Figure 9), and an
// optional marker label.
type Point struct {
	X, Y  float64
	Shade float64
	Mark  string
}

// Scatter renders Figure 9: performance vs. data balance with shading.
func Scatter(title, xLabel, yLabel string, pts []Point) string {
	var sb strings.Builder
	header(&sb, title)
	plotW := width - marginL - marginR
	plotH := height - marginT - marginB

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range pts {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	if len(pts) == 0 || minX == maxX {
		minX, maxX = 0, 1
	}
	if len(pts) == 0 || minY == maxY {
		minY, maxY = 0, 1
	}
	padX := (maxX - minX) * 0.05
	padY := (maxY - minY) * 0.05
	minX, maxX = minX-padX, maxX+padX
	minY, maxY = minY-padY, maxY+padY

	xp := func(v float64) float64 {
		return float64(marginL) + float64(plotW)*(v-minX)/(maxX-minX)
	}
	yp := func(v float64) float64 {
		return float64(marginT) + float64(plotH)*(1-(v-minY)/(maxY-minY))
	}
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT, marginL, marginT+plotH)
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	for t := 0; t <= 5; t++ {
		vx := minX + (maxX-minX)*float64(t)/5
		vy := minY + (maxY-minY)*float64(t)/5
		fmt.Fprintf(&sb, `<text x="%.1f" y="%d" font-size="11" text-anchor="middle">%.2f</text>`+"\n",
			xp(vx), marginT+plotH+16, vx)
		fmt.Fprintf(&sb, `<text x="%d" y="%.1f" font-size="11" text-anchor="end">%.2f</text>`+"\n",
			marginL-6, yp(vy)+4, vy)
	}
	fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="12" text-anchor="middle">%s</text>`+"\n",
		marginL+plotW/2, marginT+plotH+40, esc(xLabel))
	fmt.Fprintf(&sb, `<text x="16" y="%d" font-size="12" transform="rotate(-90 16 %d)" text-anchor="middle">%s</text>`+"\n",
		marginT+plotH/2, marginT+plotH/2, esc(yLabel))

	for _, p := range pts {
		g := int(230 * (1 - p.Shade))
		fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="4" fill="rgb(%d,%d,%d)" stroke="#666"/>`+"\n",
			xp(p.X), yp(p.Y), g, g, g)
	}
	// Marks drawn last so they stay visible.
	for _, p := range pts {
		if p.Mark == "" {
			continue
		}
		fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="7" fill="none" stroke="#c33" stroke-width="2"/>`+"\n",
			xp(p.X), yp(p.Y))
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" font-size="11" fill="#c33">%s</text>`+"\n",
			xp(p.X)+9, yp(p.Y)-6, esc(p.Mark))
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}
