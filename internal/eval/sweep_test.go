package eval

import (
	"reflect"
	"testing"

	"mcpart/internal/bench"
	"mcpart/internal/machine"
)

// TestDeltaSweepMatchesFull is the delta engine's acceptance property: on
// every benchmark in the suite, across move-latency presets and worker
// counts, the Gray-code delta sweep returns an ExhaustiveResult
// reflect.DeepEqual to the full per-mask engine's (Options.NoDelta). The
// delta run goes first on a shared Compiled, so the full engine is served
// from the same memo entries — any disagreement is therefore in the sweep
// machinery itself (table indexing, Gray stepping, chunk seeding,
// mirroring), not in per-function values.
func TestDeltaSweepMatchesFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite exhaustive comparison is slow")
	}
	for _, b := range bench.All() {
		c := prepBench(t, b.Name)
		for _, lat := range []int{1, 5, 10} {
			cfg := machine.Paper2Cluster(lat)
			var first *ExhaustiveResult
			for _, j := range []int{1, 8} {
				delta, err := Exhaustive(c, cfg, Options{Workers: j}, 16)
				if err != nil {
					t.Fatalf("%s lat%d j%d delta: %v", b.Name, lat, j, err)
				}
				full, err := Exhaustive(c, cfg, Options{Workers: j, NoDelta: true}, 16)
				if err != nil {
					t.Fatalf("%s lat%d j%d full: %v", b.Name, lat, j, err)
				}
				if !reflect.DeepEqual(delta, full) {
					t.Fatalf("%s lat%d j%d: delta sweep differs from full engine", b.Name, lat, j)
				}
				if first == nil {
					first = delta
				} else if !reflect.DeepEqual(first, delta) {
					t.Fatalf("%s lat%d: results differ across worker counts", b.Name, lat)
				}
			}
		}
	}
}

// TestDeltaSweepMatchesFullNoMemo repeats the comparison with the memo
// cache disabled on a representative benchmark, so shared cache entries
// cannot paper over a divergence between the two pipelines' computations.
func TestDeltaSweepMatchesFullNoMemo(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive search is slow")
	}
	c := prepBench(t, "fir")
	cfg := machine.Paper2Cluster(5)
	delta, err := Exhaustive(c, cfg, Options{NoMemo: true}, 14)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Exhaustive(c, cfg, Options{NoMemo: true, NoDelta: true}, 14)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(delta, full) {
		t.Fatal("NoMemo delta sweep differs from full engine")
	}
}

// TestDeltaSweepAsymmetricMachine pins the uncanonicalized Gray enumeration
// (no mirroring) against the full engine on a machine that fails the
// symmetry predicate.
func TestDeltaSweepAsymmetricMachine(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive search is slow")
	}
	c := prepBench(t, "fir")
	cfg := machine.Heterogeneous2(5)
	delta, err := Exhaustive(c, cfg, Options{}, 14)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Exhaustive(c, cfg, Options{NoDelta: true}, 14)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(delta, full) {
		t.Fatal("asymmetric delta sweep differs from full engine")
	}
}
