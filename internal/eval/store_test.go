package eval

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mcpart/internal/bench"
	"mcpart/internal/interp"
	"mcpart/internal/machine"
	"mcpart/internal/rhop"
	"mcpart/internal/store"
)

// prepCached is prepBench with a cache directory attached.
func prepCached(t *testing.T, name, dir string) *Compiled {
	t.Helper()
	b, err := bench.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	c, err := PrepareOpts(nil, b.Name, b.Source, Options{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if c.Ret != b.Want {
		t.Fatalf("%s: checksum %d, want %d", name, c.Ret, b.Want)
	}
	return c
}

// flatResult is detFields with pointer map keys replaced by function
// names, so results from two independent Prepare calls (distinct *ir.Func
// pointers for identical IR) compare with reflect.DeepEqual.
func flatResult(r *Result) map[string]any {
	assign := map[string][]int{}
	for f, a := range r.Assign {
		assign[f.Name] = a
	}
	locks := map[string]rhop.Locks{}
	for f, l := range r.Locks {
		locks[f.Name] = l
	}
	return map[string]any{
		"scheme":  r.Scheme,
		"cycles":  r.Cycles,
		"moves":   r.Moves,
		"datamap": r.DataMap,
		"assign":  assign,
		"locks":   locks,
		"groups":  r.Groups,
		"runs":    r.DetailedRuns,
	}
}

func flatAll(br *BenchResult) []map[string]any {
	return []map[string]any{
		flatResult(br.Unified), flatResult(br.GDP), flatResult(br.PMax), flatResult(br.Naive),
	}
}

// restart simulates a process restart for dir: flush write-behind buffers,
// close the shared handle, and forget it, so the next open pays the real
// index rebuild.
func restart(t *testing.T, dir string) {
	t.Helper()
	if err := store.DropShared(dir); err != nil {
		t.Fatal(err)
	}
}

// TestStoreColdWarmEquivalence pins the tentpole contract end to end at
// the eval layer: a no-cache run, a cold disk-cache run, and a warm run in
// a fresh "process" (new Compiled, reopened store) return DeepEqual
// deterministic fields — and the warm run is genuinely served from disk
// (store hits, memo promotions, no profiling execution).
func TestStoreColdWarmEquivalence(t *testing.T) {
	dir := t.TempDir()
	cfg := machine.Paper2Cluster(5)

	ref, err := RunAllSchemes(prepBench(t, "fir"), cfg, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	cold, err := RunAllSchemes(prepCached(t, "fir", dir), cfg, Options{Workers: 1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	restart(t, dir)

	warmC := prepCached(t, "fir", dir)
	warm, err := RunAllSchemes(warmC, cfg, Options{Workers: 1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(flatAll(ref), flatAll(cold)) {
		t.Error("cold disk-cache results differ from no-cache reference")
	}
	if !reflect.DeepEqual(flatAll(ref), flatAll(warm)) {
		t.Error("warm disk-cache results differ from no-cache reference")
	}

	st := warmC.StoreStats()
	if st.Hits == 0 {
		t.Errorf("warm run had no store hits: %+v", st)
	}
	if ms := warmC.MemoStats(); ms.Promotions == 0 {
		t.Errorf("warm run promoted nothing from the disk tier: %+v", ms)
	}
}

// TestStoreProfileCached pins the Prepare fast path: the second Prepare of
// the same source against a warm store serves the profile from disk —
// identical checksum, block frequencies, and per-op access counts.
func TestStoreProfileCached(t *testing.T) {
	dir := t.TempDir()
	c1 := prepCached(t, "fir", dir)
	restart(t, dir)

	pre, _ := store.SharedStats(dir)
	c2 := prepCached(t, "fir", dir)
	post, ok := store.SharedStats(dir)
	if !ok || post.Hits <= pre.Hits {
		t.Fatalf("warm Prepare did not hit the store: %+v -> %+v", pre, post)
	}
	if c1.Prof.Steps != c2.Prof.Steps || c1.Ret != c2.Ret {
		t.Fatalf("cached profile differs: steps %d/%d ret %d/%d",
			c1.Prof.Steps, c2.Prof.Steps, c1.Ret, c2.Ret)
	}
	if !reflect.DeepEqual(c1.Prof.ObjAccess, c2.Prof.ObjAccess) {
		t.Error("cached ObjAccess differs")
	}
	if !reflect.DeepEqual(c1.Prof.ObjBytes, c2.Prof.ObjBytes) {
		t.Error("cached ObjBytes differs")
	}
}

// TestStoreBudgetErrorReproducedWarm pins the budget-determinism rule: a
// profile cached under a generous budget must not mask the BudgetError a
// cold run under a tight budget produces.
func TestStoreBudgetErrorReproducedWarm(t *testing.T) {
	dir := t.TempDir()
	prepCached(t, "fir", dir) // warm the cache with the default budget
	restart(t, dir)

	b, err := bench.Get("fir")
	if err != nil {
		t.Fatal(err)
	}
	_, err = PrepareOpts(nil, b.Name, b.Source, Options{CacheDir: dir, MaxSteps: 10})
	var be *interp.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("warm tight-budget Prepare err = %v, want *interp.BudgetError", err)
	}
}

// TestStoreCorruptionEquivalence pins graceful degradation: flipping a
// byte in the middle of the artifact log must change nothing but wall
// time — the damaged records degrade to recomputes and results stay
// DeepEqual with the no-cache reference.
func TestStoreCorruptionEquivalence(t *testing.T) {
	dir := t.TempDir()
	cfg := machine.Paper2Cluster(5)
	ref, err := RunAllSchemes(prepBench(t, "fir"), cfg, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunAllSchemes(prepCached(t, "fir", dir), cfg, Options{Workers: 1, CacheDir: dir}); err != nil {
		t.Fatal(err)
	}
	restart(t, dir)

	path := filepath.Join(dir, store.LogName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	c := prepCached(t, "fir", dir)
	got, err := RunAllSchemes(c, cfg, Options{Workers: 1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(flatAll(ref), flatAll(got)) {
		t.Error("corrupted-cache results differ from no-cache reference")
	}
}

// TestModuleHash pins that the content hash tracks the IR: identical
// sources agree, different sources differ.
func TestModuleHash(t *testing.T) {
	fir := prepBench(t, "fir")
	fir2 := prepBench(t, "fir")
	if ModuleHash(fir.Mod) != ModuleHash(fir2.Mod) {
		t.Error("identical compiles hash differently")
	}
	raw := prepBench(t, "rawcaudio")
	if ModuleHash(fir.Mod) == ModuleHash(raw.Mod) {
		t.Error("distinct modules collide")
	}
}

// TestValueCodecRoundtrips pins each artifact codec: encode∘decode is the
// identity and foreign bytes are rejected (never misread as another type).
func TestValueCodecRoundtrips(t *testing.T) {
	l := rhop.Locks{3: 1, 7: 0, 12: 1}
	lb, err := lockCodec{}.Encode(l)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := (lockCodec{}).Decode(lb); err != nil || !reflect.DeepEqual(got, l) {
		t.Fatalf("locks roundtrip = (%v, %v)", got, err)
	}

	asg := []int{0, 1, 1, 0, 3}
	pb, err := partCodec{}.Encode(asg)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := (partCodec{}).Decode(pb); err != nil || !reflect.DeepEqual(got, asg) {
		t.Fatalf("part roundtrip = (%v, %v)", got, err)
	}

	pair := [2]int64{123456, -7}
	sb, err := schedCodec{}.Encode(pair)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := (schedCodec{}).Decode(sb); err != nil || got.([2]int64) != pair {
		t.Fatalf("sched roundtrip = (%v, %v)", got, err)
	}

	// Cross-type and garbage bytes must all fail decode.
	bad := [][]byte{lb, {0xFF, 0x01}, nil, {byte('S')}}
	for _, b := range bad {
		if _, err := (partCodec{}).Decode(b); err == nil {
			t.Errorf("part decode accepted foreign bytes %v", b)
		}
	}
	if _, err := (lockCodec{}).Decode(append(append([]byte(nil), lb...), 0x00)); err == nil {
		t.Error("locks decode accepted trailing garbage")
	}
}

// TestProfileCodecRoundtrip pins the module-relative Profile encoding on a
// real benchmark profile.
func TestProfileCodecRoundtrip(t *testing.T) {
	c := prepBench(t, "fir")
	b := encodeProfile(c.Mod, c.Prof, c.Ret)
	p, ret, err := decodeProfile(c.Mod, b)
	if err != nil {
		t.Fatal(err)
	}
	if ret != c.Ret || p.Steps != c.Prof.Steps {
		t.Fatalf("ret/steps = %d/%d, want %d/%d", ret, p.Steps, c.Ret, c.Prof.Steps)
	}
	// Same module, so pointer-keyed maps compare directly — except that the
	// encoder drops zero-frequency blocks.
	for blk, n := range c.Prof.BlockFreq {
		if n != 0 && p.BlockFreq[blk] != n {
			t.Fatalf("block %v freq %d, want %d", blk, p.BlockFreq[blk], n)
		}
	}
	if !reflect.DeepEqual(p.OpObj, c.Prof.OpObj) {
		t.Error("OpObj did not roundtrip")
	}
	if !reflect.DeepEqual(p.ObjBytes, c.Prof.ObjBytes) || !reflect.DeepEqual(p.ObjAccess, c.Prof.ObjAccess) {
		t.Error("object maps did not roundtrip")
	}
	// A flipped byte must fail decode, not misread.
	b[len(b)/2] ^= 0xFF
	if _, _, err := decodeProfile(c.Mod, b); err == nil {
		t.Skip("flip landed in a spot the varint stream tolerates") // rare; shape checks cover most offsets
	}
}
