package eval

import (
	"context"
	"fmt"
	"sort"

	"mcpart/internal/defaults"
	"mcpart/internal/machine"
	"mcpart/internal/obs"
)

// This file implements the branch-and-bound best-mapping search behind
// BestMapping.
//
// The Gray-code sweep (sweep.go) makes enumerating all 2^n mappings cheap
// per point, but the point count itself is still exponential. When only the
// optimum is wanted, the same per-function cost tables support an exact
// search that never materializes the point set: program cycles are the sum
// of per-function table entries, so for any partial object assignment the
// sum of each function's minimum over its undecided table bits is an
// admissible lower bound — no completion of the prefix can cost less,
// because the functions' minima are taken independently. A depth-first
// search over object-assignment prefixes prunes every subtree whose bound
// already meets the best complete mapping found, which is what lifts the
// practical object cap from DefaultMaxObjects to DefaultBestMaxObjects.
//
// The bound is maintained incrementally, mirroring the sweep's delta
// discipline: assigning one object only re-indexes the tables of the
// functions touching it, so a DFS step costs O(touching functions), not
// O(functions). Each function's minima come from a ladder of min-tables
// built once after phase 1 — level j holds, for every value of the
// function's first j decided bits (in global search order), the minimum
// cost over the remaining bits:
//
//	lvl[t]   = the function's full cost table (repacked in search order)
//	lvl[j]   = min(lvl[j+1][v], lvl[j+1][v | 1<<j])
//
// On cluster-symmetric machines object 0 is pinned to cluster 0 and
// searched first, exactly matching the sweep's canonical-mask convention
// (phase 1 leaves object-0=1 signatures unbuilt, and pinning guarantees
// the ladder never takes minima across that hole).

// BestResult is the outcome of a branch-and-bound best-mapping search.
type BestResult struct {
	// Mask is an optimal data-object mapping, encoded positionally in
	// base k (digit i = cluster of object i; a bitmask at k=2); ties
	// resolve to the first optimum the search reaches, which is
	// deterministic for a given program and machine.
	Mask uint64
	// Cycles is the dynamic cycle count under Mask — equal to
	// ExhaustiveResult.Best whenever the full sweep is feasible.
	Cycles int64
	// Moves is the intercluster move count under Mask.
	Moves int64
	// NodesVisited and NodesPruned count DFS nodes expanded and subtrees
	// cut by the lower bound (also published as bb_nodes_visited /
	// bb_nodes_pruned counters).
	NodesVisited int64
	NodesPruned  int64
}

// bbTableBudget caps the total min-table ladder size (entries across all
// functions and levels). The ladder for a function touching t objects has
// about k^(t+1)/(k-1) entries, so the cap really bounds per-function
// touched-object counts; programs under DefaultBestMaxObjects objects only
// approach it when single functions touch most of the objects — exactly
// the case where phase 1 (k^t pipeline runs for that function) is
// infeasible anyway.
const bbTableBudget = 1 << 25

// BestMapping finds a cycle-optimal data-object mapping for the machine's
// k clusters without enumerating the k^n mapping space. maxObjects guards
// the search like Exhaustive's cap (non-positive selects
// defaults.DefaultBestMaxObjects); the result's Cycles always equals the
// minimum the exhaustive sweep would report.
func BestMapping(c *Compiled, cfg *machine.Config, opts Options, maxObjects int) (*BestResult, error) {
	return BestMappingCtx(context.Background(), c, cfg, opts, maxObjects)
}

// BestMappingCtx is BestMapping under a context: cancellation stops phase 1
// between signatures and the DFS between nodes.
func BestMappingCtx(ctx context.Context, c *Compiled, cfg *machine.Config, opts Options, maxObjects int) (*BestResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx = obs.With(ctx, opts.Observer)
	opts.ctx = ctx
	opts.Observer = opts.Observer.Named("best").Named(c.Name)
	k := cfg.NumClusters()
	registerSweepCounters(opts.Observer)
	n := len(c.Mod.Objects)
	if maxObjects <= 0 {
		maxObjects = defaults.DefaultBestMaxObjects
	}
	if n > maxObjects {
		return nil, fmt.Errorf("eval: %s has %d objects; best-mapping search capped at %d", c.Name, n, maxObjects)
	}
	rad, err := newRadix(k, n)
	if err != nil {
		return nil, err
	}
	// A single function can touch every object, so the k^n full-table size
	// must itself fit the ladder budget before phase 1 builds anything.
	// At k=2 the n <= maxObjects cap is strictly tighter, so this check
	// only bites on k>2 machines.
	if rad.pow[n] > bbTableBudget {
		return nil, fmt.Errorf("eval: %s has %d mapping points on %d clusters; best-mapping search capped at %d", c.Name, rad.pow[n], k, int64(bbTableBudget))
	}
	canon := k == 2 && cfg.SymmetricClusters()

	// Phase 1: the same per-function cost tables the sweep builds, through
	// the same memo keys.
	opts2, done := beginRun(c, SchemeFixed, opts)
	res := &Result{Scheme: SchemeFixed}
	tables, err := buildCostTables(ctx, c, cfg, opts2, rad, canon, n, res)
	if err != nil {
		err = sweepErr(c, err)
		done(nil, err)
		return nil, err
	}
	done(res, nil)

	var budget int64
	for ti := range tables {
		for j := 0; j <= len(tables[ti].objs); j++ {
			budget += int64(rad.count(j))
		}
	}
	if budget > bbTableBudget {
		return nil, fmt.Errorf("eval: %s min-table ladder needs %d entries (budget %d); reduce touched-object fan-in or use the exhaustive sweep", c.Name, budget, bbTableBudget)
	}

	// Global search order: object 0 first when canonical (it is pinned to
	// cluster 0), then descending impact — the summed cost spread of the
	// tables touching the object — so high-leverage decisions happen high
	// in the tree and the bound tightens early.
	impact := make([]int64, n)
	for ti := range tables {
		t := &tables[ti]
		if len(t.objs) == 0 {
			continue
		}
		lo, hi := t.minMax(canon)
		for _, o := range t.objs {
			impact[o] += hi - lo
		}
	}
	order := make([]int, 0, n)
	for o := 0; o < n; o++ {
		if !canon || o != 0 {
			order = append(order, o)
		}
	}
	sort.SliceStable(order, func(i, j int) bool { return impact[order[i]] > impact[order[j]] })
	if canon && n > 0 {
		order = append([]int{0}, order...)
	}
	depthOf := make([]int, n)
	for d, o := range order {
		depthOf[o] = d
	}

	// Build each function's min-table ladder in search order.
	ladders := make([]*bbLadder, len(tables))
	for ti := range tables {
		ladders[ti] = newBBLadder(&tables[ti], depthOf, canon, rad)
	}
	objRefs := make([][]int, n)
	for ti := range tables {
		for _, o := range tables[ti].objs {
			objRefs[o] = append(objRefs[o], ti)
		}
	}

	search := &bbSearch{
		order:   order,
		objRefs: objRefs,
		ladders: ladders,
		canon:   canon,
		rad:     rad,
		ctx:     ctx,
		best:    int64(1)<<62 - 1,
	}
	search.childAt = make([][]int, len(order))
	search.boundAt = make([][]int64, len(order))
	for d := range order {
		search.childAt[d] = make([]int, k)
		search.boundAt[d] = make([]int64, k)
	}
	// Root bound: every function's global minimum.
	for _, l := range ladders {
		search.bound += l.lvl[0][0]
	}
	if err := search.dfs(0); err != nil {
		return nil, err
	}

	out := &BestResult{
		Mask:         search.bestMask,
		Cycles:       search.best,
		NodesVisited: search.visited,
		NodesPruned:  search.pruned,
	}
	for ti := range tables {
		t := &tables[ti]
		sig := 0
		for bi, o := range t.objs {
			sig += rad.digit(out.Mask, o) * int(rad.pow[bi])
		}
		out.Moves += t.cost[sig].Moves
	}
	opts.Observer.Counter("bb_nodes_visited").Add(search.visited)
	opts.Observer.Counter("bb_nodes_pruned").Add(search.pruned)
	return out, nil
}

// minMax scans a table's reachable entries for its cost spread.
func (t *costTable) minMax(canon bool) (lo, hi int64) {
	fixed0 := canon && len(t.objs) > 0 && t.objs[0] == 0
	first := true
	for sig := range t.cost {
		if fixed0 && sig%t.k != 0 {
			continue
		}
		cyc := t.cost[sig].Cycles
		if first {
			lo, hi = cyc, cyc
			first = false
			continue
		}
		if cyc < lo {
			lo = cyc
		}
		if cyc > hi {
			hi = cyc
		}
	}
	return lo, hi
}

// bbLadder is one function's min-table ladder. Level j is indexed by the
// values (base k) of the function's first j decided digits (in global
// search order) and holds the minimum cycles over all completions of the
// rest.
type bbLadder struct {
	lvl [][]int64
	// depth and prefix are the DFS's cursor into the ladder: how many of
	// the function's digits the current partial assignment has decided,
	// and their packed values.
	depth  int
	prefix int
}

func newBBLadder(t *costTable, depthOf []int, canon bool, rad *radix) *bbLadder {
	tb := len(t.objs)
	// Local digit order: the function's objects sorted by global search
	// depth, so the DFS always extends the prefix at the current depth.
	perm := make([]int, tb)
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool { return depthOf[t.objs[perm[a]]] < depthOf[t.objs[perm[b]]] })

	l := &bbLadder{lvl: make([][]int64, tb+1)}
	top := make([]int64, rad.count(tb))
	fixed0 := canon && tb > 0 && t.objs[0] == 0
	for v := range top {
		sig := 0
		for j, p := range perm {
			sig += rad.digit(uint64(v), j) * int(rad.pow[p])
		}
		if fixed0 && sig%rad.k != 0 {
			// Unreachable under canonical pinning (phase 1 left it
			// unbuilt). Object 0 is searched first, so no minimum below
			// ever spans this entry; poison it defensively.
			top[v] = int64(1)<<62 - 1
			continue
		}
		top[v] = t.cost[sig].Cycles
	}
	l.lvl[tb] = top
	for j := tb - 1; j >= 0; j-- {
		cur := make([]int64, rad.count(j))
		next := l.lvl[j+1]
		for v := range cur {
			best := next[v]
			for c := 1; c < rad.k; c++ {
				if x := next[v+c*int(rad.pow[j])]; x < best {
					best = x
				}
			}
			cur[v] = best
		}
		l.lvl[j] = cur
	}
	return l
}

// bbSearch is the DFS state: the incremental bound, the incumbent, and the
// per-ladder cursors.
type bbSearch struct {
	order   []int
	objRefs [][]int
	ladders []*bbLadder
	canon   bool
	rad     *radix
	ctx     context.Context

	bound    int64 // admissible lower bound for the current prefix
	mask     uint64
	best     int64
	bestMask uint64
	visited  int64
	pruned   int64

	// childAt/boundAt are per-depth scratch rows for child probing (k
	// entries each), allocated once so the DFS itself never allocates.
	childAt [][]int
	boundAt [][]int64
}

// assign extends the prefix with object obj = v and returns the bound
// delta (always >= 0: deciding a digit can only raise each function's
// minimum).
func (s *bbSearch) assign(obj, v int) int64 {
	var delta int64
	for _, ti := range s.objRefs[obj] {
		l := s.ladders[ti]
		old := l.lvl[l.depth][l.prefix]
		l.prefix += v * int(s.rad.pow[l.depth])
		l.depth++
		delta += l.lvl[l.depth][l.prefix] - old
	}
	s.bound += delta
	s.mask += uint64(v) * s.rad.pow[obj]
	return delta
}

// unassign reverts the matching assign.
func (s *bbSearch) unassign(obj, v int, delta int64) {
	for _, ti := range s.objRefs[obj] {
		l := s.ladders[ti]
		l.depth--
		l.prefix -= v * int(s.rad.pow[l.depth])
	}
	s.bound -= delta
	s.mask -= uint64(v) * s.rad.pow[obj]
}

func (s *bbSearch) dfs(depth int) error {
	if err := s.ctx.Err(); err != nil {
		return err
	}
	s.visited++
	if depth == len(s.order) {
		// Complete assignment: the bound is the exact total.
		if s.bound < s.best {
			s.best = s.bound
			s.bestMask = s.mask
		}
		return nil
	}
	obj := s.order[depth]
	// Object 0 is pinned on symmetric 2-cluster machines (canonical masks).
	if s.canon && obj == 0 {
		delta := s.assign(obj, 0)
		err := s.dfs(depth + 1)
		s.unassign(obj, 0, delta)
		return err
	}
	// Probe every child and descend best-first (ties to the lower
	// cluster, keeping the search deterministic): a near-optimal incumbent
	// early makes the bound bite everywhere else.
	k := s.rad.k
	children := s.childAt[depth]
	bounds := s.boundAt[depth]
	for v := 0; v < k; v++ {
		d := s.assign(obj, v)
		children[v] = v
		bounds[v] = s.bound
		s.unassign(obj, v, d)
	}
	// Stable insertion sort by bound: ties keep the lower cluster first,
	// which at k=2 reproduces the historical {0,1}-unless-strictly-better
	// probe order exactly.
	for a := 1; a < k; a++ {
		for b := a; b > 0 && bounds[children[b]] < bounds[children[b-1]]; b-- {
			children[b], children[b-1] = children[b-1], children[b]
		}
	}
	for _, v := range children {
		delta := s.assign(obj, v)
		if s.bound >= s.best {
			s.pruned++
			s.unassign(obj, v, delta)
			continue
		}
		err := s.dfs(depth + 1)
		s.unassign(obj, v, delta)
		if err != nil {
			return err
		}
	}
	return nil
}
