package eval

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"mcpart/internal/machine"
	"mcpart/internal/obs"
	"mcpart/internal/parallel"
)

// BenchResult holds all four schemes' results for one benchmark on one
// machine configuration.
type BenchResult struct {
	Name    string
	Unified *Result
	GDP     *Result
	PMax    *Result
	Naive   *Result
}

// schemeRunners lists the Table 1 schemes in their canonical order. The
// matrix runners index work items against this slice so results land in
// fixed slots no matter which worker finishes first.
var schemeRunners = []struct {
	scheme Scheme
	run    func(*Compiled, *machine.Config, Options) (*Result, error)
	store  func(*BenchResult, *Result)
}{
	{SchemeUnified, RunUnified, func(br *BenchResult, r *Result) { br.Unified = r }},
	{SchemeGDP, RunGDP, func(br *BenchResult, r *Result) { br.GDP = r }},
	{SchemeProfileMax, RunProfileMax, func(br *BenchResult, r *Result) { br.PMax = r }},
	{SchemeNaive, RunNaive, func(br *BenchResult, r *Result) { br.Naive = r }},
}

// RunScheme dispatches one Table 1 scheme by name.
func RunScheme(c *Compiled, cfg *machine.Config, s Scheme, opts Options) (*Result, error) {
	for _, sr := range schemeRunners {
		if sr.scheme == s {
			return sr.run(c, cfg, opts)
		}
	}
	return nil, fmt.Errorf("eval: unknown scheme %q", s)
}

// RunSchemeCtx is RunScheme with a cancellation context: the run aborts
// between pipeline steps once ctx is done, and any interpreter work
// respects the deadline.
func RunSchemeCtx(ctx context.Context, c *Compiled, cfg *machine.Config, s Scheme, opts Options) (*Result, error) {
	opts.ctx = obs.With(ctx, opts.Observer)
	return RunScheme(c, cfg, s, opts)
}

// RunSchemeFallbackCtx is RunSchemeCtx with the matrix runners' graceful
// degradation applied to the single cell: under Options.Fallback a failing
// or invalid scheme degrades along the GDP→ProfileMax→Naive chain with the
// substitution recorded in Result.Degraded, and panics inside the pipeline
// surface as *parallel.PanicError instead of crashing. This is the entry
// point for request-at-a-time callers (the gdpd daemon) that want matrix
// semantics without a matrix.
func RunSchemeFallbackCtx(ctx context.Context, c *Compiled, cfg *machine.Config, s Scheme, opts Options) (*Result, error) {
	opts.ctx = obs.With(ctx, opts.Observer)
	return runCell(c, cfg, s, opts)
}

// CellError attributes a matrix or exhaustive-search failure to the exact
// work cell — (benchmark, scheme) and, for the Figure 9 sweep, the data
// mapping mask — so a failure deep in a parallel fan-out stays debuggable.
type CellError struct {
	Bench  string
	Scheme Scheme
	// Mask is the exhaustive data-mapping mask; meaningful only when
	// HasMask is set.
	Mask    uint64
	HasMask bool
	Err     error
}

func (e *CellError) Error() string {
	if e.HasMask {
		return fmt.Sprintf("%s %s mask %#x: %v", e.Bench, strings.ToLower(string(e.Scheme)), e.Mask, e.Err)
	}
	return fmt.Sprintf("%s %s: %v", e.Bench, strings.ToLower(string(e.Scheme)), e.Err)
}

func (e *CellError) Unwrap() error { return e.Err }

// fallbackOf is the graceful degradation chain of Options.Fallback:
// GDP falls back to Profile Max, Profile Max to Naïve. Naïve and Unified
// have no fallback — they are the floor.
var fallbackOf = map[Scheme]Scheme{
	SchemeGDP:        SchemeProfileMax,
	SchemeProfileMax: SchemeNaive,
}

// attemptScheme runs one scheme with panic containment: a panic inside the
// partitioners or the scheduler surfaces as a *parallel.PanicError labeled
// with the scheme, so a fallback chain (or the pool) can keep going.
func attemptScheme(c *Compiled, cfg *machine.Config, s Scheme, opts Options) (r *Result, err error) {
	defer func() {
		if pe := parallel.Recovered(string(s), -1, recover()); pe != nil {
			r, err = nil, pe
		}
	}()
	return RunScheme(c, cfg, s, opts)
}

// runCell evaluates one (benchmark, scheme) matrix cell. Under
// Options.Fallback a failing or invalid scheme degrades along fallbackOf,
// recording the original scheme and triggering error in Result.Degraded;
// cancellation is never treated as a scheme failure.
func runCell(c *Compiled, cfg *machine.Config, s Scheme, opts Options) (*Result, error) {
	r, err := attemptScheme(c, cfg, s, opts)
	if err == nil || !opts.Fallback {
		return r, err
	}
	cause := err
	for fb, ok := fallbackOf[s]; ok; fb, ok = fallbackOf[fb] {
		if cerr := opts.ctxErr(); cerr != nil {
			return nil, cause
		}
		if r, ferr := attemptScheme(c, cfg, fb, opts); ferr == nil {
			r.Degraded = &Degradation{From: s, Err: cause}
			opts.Observer.Counter("eval_degradations").Add(1)
			return r, nil
		}
	}
	return nil, cause
}

// RunAllSchemes evaluates the four Table 1 schemes on one prepared
// benchmark, fanning the (independent) schemes across opts.Workers.
func RunAllSchemes(c *Compiled, cfg *machine.Config, opts Options) (*BenchResult, error) {
	return RunAllSchemesCtx(context.Background(), c, cfg, opts)
}

// RunAllSchemesCtx is RunAllSchemes with a cancellation context.
func RunAllSchemesCtx(ctx context.Context, c *Compiled, cfg *machine.Config, opts Options) (*BenchResult, error) {
	brs, err := RunMatrixCtx(ctx, []*Compiled{c}, cfg, opts)
	if err != nil {
		return nil, err
	}
	return brs[0], nil
}

// RunMatrix evaluates the full (benchmark × scheme) matrix: every Table 1
// scheme on every prepared benchmark. The cells are independent, so all
// 4·len(cs) of them fan across opts.Workers; each cell builds its own
// partitioner and scheduler state, and the results are stitched back by
// (benchmark, scheme) index, identical to the serial nested loop.
func RunMatrix(cs []*Compiled, cfg *machine.Config, opts Options) ([]*BenchResult, error) {
	return RunMatrixCtx(context.Background(), cs, cfg, opts)
}

// RunMatrixCtx is RunMatrix with a cancellation context: once ctx is done
// no new cells start, in-flight cells abort between pipeline steps, and
// the partial results are discarded (the error of the lowest-indexed cell
// — usually ctx.Err() — is returned, deterministically).
func RunMatrixCtx(ctx context.Context, cs []*Compiled, cfg *machine.Config, opts Options) ([]*BenchResult, error) {
	ctx = obs.With(ctx, opts.Observer)
	opts.ctx = ctx
	mo := opts.Observer.Named("matrix")
	// Register the degradation counter up front so a clean sweep reports
	// an explicit eval_degradations 0 instead of omitting the metric.
	opts.Observer.Counter("eval_degradations")
	brs := make([]*BenchResult, len(cs))
	for i, c := range cs {
		brs[i] = &BenchResult{Name: c.Name}
	}
	ns := len(schemeRunners)
	results, err := parallel.MapStage(ctx, "matrix", len(cs)*ns, opts.Workers,
		func(_ context.Context, i int) (*Result, error) {
			c, sr := cs[i/ns], schemeRunners[i%ns]
			copts := opts
			copts.Observer = mo.Named(c.Name)
			copts.Observer.Counter("eval_cells").Add(1)
			r, err := runCell(c, cfg, sr.scheme, copts)
			if err != nil {
				return nil, &CellError{Bench: c.Name, Scheme: sr.scheme, Err: err}
			}
			return r, nil
		})
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		schemeRunners[i%ns].store(brs[i/ns], r)
	}
	return brs, nil
}

// BenchSpec names one benchmark source for PrepareAll.
type BenchSpec struct {
	Name string
	Src  string
}

// PrepareAll compiles, analyzes and profiles every benchmark, fanning the
// (independent) front-end pipelines across workers (the usual sentinel:
// <= 0 means runtime.GOMAXPROCS(0)). Results come back in spec order.
func PrepareAll(specs []BenchSpec, workers int) ([]*Compiled, error) {
	return PrepareAllCtx(context.Background(), specs, workers)
}

// PrepareAllCtx is PrepareAll with a cancellation context; a ctx deadline
// also bounds each benchmark's profiling run.
func PrepareAllCtx(ctx context.Context, specs []BenchSpec, workers int) ([]*Compiled, error) {
	return PrepareAllOpts(ctx, specs, workers, Options{})
}

// PrepareAllOpts is PrepareAllCtx with explicit profiling knobs (MaxSteps
// and the LegacyInterp engine switch).
func PrepareAllOpts(ctx context.Context, specs []BenchSpec, workers int, opts Options) ([]*Compiled, error) {
	return parallel.MapStage(ctx, "prepare", len(specs), workers,
		func(ctx context.Context, i int) (*Compiled, error) {
			return PrepareOpts(ctx, specs[i].Name, specs[i].Src, opts)
		})
}

// GeoMean returns the geometric mean of xs (which must be positive).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// FormatTable1 renders the scheme summary of Table 1.
func FormatTable1() string {
	var b strings.Builder
	w := func(cols ...string) {
		fmt.Fprintf(&b, "%-14s | %-34s | %-34s | %s\n", cols[0], cols[1], cols[2], cols[3])
	}
	w("Algorithm", "Object Partitioner", "Object Assignment", "Computation Partitioner")
	b.WriteString(strings.Repeat("-", 110) + "\n")
	w("GDP", "Global Data Partitioning", "graph partition of program DFG", "RHOP (object-cognizant)")
	w("Profile Max", "RHOP (unified-memory pre-pass)", "greedy, dynamic frequency order", "RHOP (object-cognizant)")
	w("Naive", "none (post-computation placement)", "max-access cluster, moves inserted", "RHOP (unified assumption)")
	w("Unified Memory", "n/a (single multiported memory)", "n/a", "RHOP")
	return b.String()
}

// FormatPerfFigure renders a Figure 7/8-style table: per benchmark the GDP
// and Profile Max performance relative to unified memory, plus the suite
// averages and the Naïve average, for the given move latency label.
func FormatPerfFigure(title string, results []*BenchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-12s %10s %12s %10s\n", "benchmark", "GDP", "ProfileMax", "Naive")
	b.WriteString(strings.Repeat("-", 48) + "\n")
	var gs, ps, ns []float64
	for _, r := range results {
		g := RelativePerf(r.Unified, r.GDP)
		p := RelativePerf(r.Unified, r.PMax)
		n := RelativePerf(r.Unified, r.Naive)
		gs, ps, ns = append(gs, g), append(ps, p), append(ns, n)
		fmt.Fprintf(&b, "%-12s %9.1f%% %11.1f%% %9.1f%%\n", r.Name, 100*g, 100*p, 100*n)
	}
	b.WriteString(strings.Repeat("-", 48) + "\n")
	fmt.Fprintf(&b, "%-12s %9.1f%% %11.1f%% %9.1f%%\n", "average",
		100*GeoMean(gs), 100*GeoMean(ps), 100*GeoMean(ns))
	return b.String()
}

// FormatFigure2 renders the Figure 2 table: percent cycle increase of the
// Naïve placement over unified memory at several move latencies. results
// maps latency -> per-benchmark results (same benchmark order).
func FormatFigure2(latencies []int, results map[int][]*BenchResult) string {
	var b strings.Builder
	b.WriteString("Figure 2: cycle increase of naive data placement vs unified memory\n")
	fmt.Fprintf(&b, "%-12s", "benchmark")
	for _, lat := range latencies {
		fmt.Fprintf(&b, " %9s", fmt.Sprintf("lat=%d", lat))
	}
	b.WriteString("\n" + strings.Repeat("-", 12+10*len(latencies)) + "\n")
	if len(latencies) == 0 {
		return b.String()
	}
	names := results[latencies[0]]
	for i := range names {
		fmt.Fprintf(&b, "%-12s", names[i].Name)
		for _, lat := range latencies {
			r := results[lat][i]
			fmt.Fprintf(&b, " %8.1f%%", CycleIncreasePct(r.Unified, r.Naive))
		}
		b.WriteString("\n")
	}
	// Averages.
	fmt.Fprintf(&b, "%-12s", "average")
	for _, lat := range latencies {
		var sum float64
		for _, r := range results[lat] {
			sum += CycleIncreasePct(r.Unified, r.Naive)
		}
		fmt.Fprintf(&b, " %8.1f%%", sum/float64(len(results[lat])))
	}
	b.WriteString("\n")
	return b.String()
}

// FormatFigure10 renders the dynamic intercluster move increase table.
func FormatFigure10(results []*BenchResult) string {
	var b strings.Builder
	b.WriteString("Figure 10: increase in dynamic intercluster moves vs unified (5-cycle latency)\n")
	fmt.Fprintf(&b, "%-12s %10s %12s\n", "benchmark", "GDP", "ProfileMax")
	b.WriteString(strings.Repeat("-", 38) + "\n")
	for _, r := range results {
		fmt.Fprintf(&b, "%-12s %9.1f%% %11.1f%%\n", r.Name,
			MoveIncreasePct(r.Unified, r.GDP), MoveIncreasePct(r.Unified, r.PMax))
	}
	return b.String()
}

// FormatFigure9 renders the exhaustive search as a text scatter: one row
// per mapping, sorted by performance, with balance shading and scheme
// markers.
func FormatFigure9(name string, ex *ExhaustiveResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9 (%s): exhaustive data mappings (%d points)\n", name, len(ex.Points))
	fmt.Fprintf(&b, "best %d cycles, worst %d cycles (%.1f%% spread)\n",
		ex.Best, ex.Worst, 100*float64(ex.Worst-ex.Best)/float64(ex.Worst))
	pts := append([]MappingPoint(nil), ex.Points...)
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].PerfVsWorst != pts[j].PerfVsWorst {
			return pts[i].PerfVsWorst > pts[j].PerfVsWorst
		}
		return pts[i].Mask < pts[j].Mask
	})
	fmt.Fprintf(&b, "%-10s %10s %10s  %s\n", "mask", "perf", "imbalance", "marks")
	for _, p := range pts {
		marks := ""
		if p.Mask == ex.GDPMask {
			marks += " <GDP>"
		}
		if p.Mask == ex.PMaxMask {
			marks += " <PMax>"
		}
		shade := strings.Repeat("#", 1+int(p.Imbalance*9))
		fmt.Fprintf(&b, "%010b %9.3fx %9.2f  %-10s%s\n", p.Mask, p.PerfVsWorst, p.Imbalance, shade, marks)
	}
	return b.String()
}

// FormatCompileTime renders the §4.5 comparison: detailed-partitioner runs
// and wall time per scheme.
func FormatCompileTime(results []*BenchResult) string {
	var b strings.Builder
	b.WriteString("Section 4.5: detailed computation-partitioner cost\n")
	fmt.Fprintf(&b, "%-12s %14s %14s %14s %14s\n", "benchmark",
		"GDP runs/ms", "PMax runs/ms", "Naive runs/ms", "Unified runs/ms")
	b.WriteString(strings.Repeat("-", 74) + "\n")
	cell := func(r *Result) string {
		return fmt.Sprintf("%d/%.1f", r.DetailedRuns, float64(r.PartitionTime.Microseconds())/1000)
	}
	for _, r := range results {
		fmt.Fprintf(&b, "%-12s %14s %14s %14s %14s\n", r.Name,
			cell(r.GDP), cell(r.PMax), cell(r.Naive), cell(r.Unified))
	}
	return b.String()
}
