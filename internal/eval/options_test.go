package eval

import (
	"runtime"
	"strings"
	"testing"

	"mcpart/internal/machine"
	"mcpart/internal/parallel"
	"mcpart/internal/progen"
)

// TestOptionDefaults pins the documented defaults behind the repository's
// option convention (see internal/defaults): a zero or negative knob
// selects the default, any positive value wins. Workers follows the same
// sentinel through parallel.Workers.
func TestOptionDefaults(t *testing.T) {
	var zero Options
	if got := zero.pmaxTol(); got != 0.10 {
		t.Errorf("zero ProfileMaxTol -> %v, want 0.10", got)
	}
	if got := (Options{ProfileMaxTol: -1}).pmaxTol(); got != 0.10 {
		t.Errorf("negative ProfileMaxTol -> %v, want 0.10", got)
	}
	if got := (Options{ProfileMaxTol: 0.25}).pmaxTol(); got != 0.25 {
		t.Errorf("set ProfileMaxTol -> %v, want 0.25", got)
	}
	if got := zero.maxSteps(); got != 10_000_000 {
		t.Errorf("zero MaxSteps -> %d, want 10_000_000", got)
	}
	if got := (Options{MaxSteps: -5}).maxSteps(); got != 10_000_000 {
		t.Errorf("negative MaxSteps -> %d, want 10_000_000", got)
	}
	if got := (Options{MaxSteps: 500}).maxSteps(); got != 500 {
		t.Errorf("set MaxSteps -> %d, want 500", got)
	}
	if got := parallel.Workers(zero.Workers); got != runtime.GOMAXPROCS(0) {
		t.Errorf("zero Workers -> %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := parallel.Workers(3); got != 3 {
		t.Errorf("Workers 3 -> %d, want 3", got)
	}
}

// TestMaxObjectsDefaults pins the maxObjects<=0 routing through
// internal/defaults: the exhaustive sweep falls back to DefaultMaxObjects
// (14) and the branch-and-bound search to DefaultBestMaxObjects (24).
// Both checks use generated programs whose object counts sit above each
// cap, so the guard fires before any search work happens.
func TestMaxObjectsDefaults(t *testing.T) {
	cfg := machine.Paper2Cluster(5)

	// 19 objects: over the sweep's default cap, under the search's.
	src := progen.Generate(2, progen.Options{MaxGlobals: 18})
	c, err := Prepare("progen19", src)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(c.Mod.Objects); n != 19 {
		t.Fatalf("generated program has %d objects, want 19", n)
	}
	_, err = Exhaustive(c, cfg, Options{}, 0)
	if err == nil || !strings.Contains(err.Error(), "capped at 14") {
		t.Errorf("Exhaustive default cap: got %v, want capped-at-14 error", err)
	}

	// 30 objects: over the search's default cap too.
	src = progen.Generate(3, progen.Options{MaxGlobals: 30})
	c, err = Prepare("progen30", src)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(c.Mod.Objects); n != 30 {
		t.Fatalf("generated program has %d objects, want 30", n)
	}
	if _, err := BestMapping(c, cfg, Options{}, 0); err == nil || !strings.Contains(err.Error(), "capped at 24") {
		t.Errorf("BestMapping default cap: got %v, want capped-at-24 error", err)
	}

	// Explicit caps override the defaults in both directions.
	if _, err := Exhaustive(c, cfg, Options{}, 29); err == nil {
		t.Error("Exhaustive accepted an explicit cap below the object count")
	}
	if _, err := BestMapping(c, cfg, Options{}, 29); err == nil {
		t.Error("BestMapping accepted an explicit cap below the object count")
	}
}
