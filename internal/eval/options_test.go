package eval

import (
	"runtime"
	"testing"

	"mcpart/internal/parallel"
)

// TestOptionDefaults pins the documented defaults behind the repository's
// option convention (see internal/defaults): a zero or negative knob
// selects the default, any positive value wins. Workers follows the same
// sentinel through parallel.Workers.
func TestOptionDefaults(t *testing.T) {
	var zero Options
	if got := zero.pmaxTol(); got != 0.10 {
		t.Errorf("zero ProfileMaxTol -> %v, want 0.10", got)
	}
	if got := (Options{ProfileMaxTol: -1}).pmaxTol(); got != 0.10 {
		t.Errorf("negative ProfileMaxTol -> %v, want 0.10", got)
	}
	if got := (Options{ProfileMaxTol: 0.25}).pmaxTol(); got != 0.25 {
		t.Errorf("set ProfileMaxTol -> %v, want 0.25", got)
	}
	if got := zero.maxSteps(); got != 10_000_000 {
		t.Errorf("zero MaxSteps -> %d, want 10_000_000", got)
	}
	if got := (Options{MaxSteps: -5}).maxSteps(); got != 10_000_000 {
		t.Errorf("negative MaxSteps -> %d, want 10_000_000", got)
	}
	if got := (Options{MaxSteps: 500}).maxSteps(); got != 500 {
		t.Errorf("set MaxSteps -> %d, want 500", got)
	}
	if got := parallel.Workers(zero.Workers); got != runtime.GOMAXPROCS(0) {
		t.Errorf("zero Workers -> %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := parallel.Workers(3); got != 3 {
		t.Errorf("Workers 3 -> %d, want 3", got)
	}
}
