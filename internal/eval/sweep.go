package eval

import (
	"context"
	"errors"
	"time"

	"mcpart/internal/gdp"
	"mcpart/internal/machine"
	"mcpart/internal/memo"
	"mcpart/internal/parallel"
	"mcpart/internal/rhop"
	"mcpart/internal/sched"

	"mcpart/internal/ir"
)

// This file implements the Gray-code delta sweep behind Exhaustive.
//
// ProgramCycles is exactly the sum of per-function FuncCycles (pinned in
// the sched tests), and a function's locks — hence its partition and cycle
// cost — depend only on the data map projected onto its touched-object set.
// So instead of evaluating 2^n masks through the full per-mask pipeline,
// the sweep (1) tabulates each function's cost for each of its at most 2^t
// reachable lock signatures, then (2) enumerates the masks in reflected
// Gray-code order, where consecutive masks flip exactly one object: only
// the functions touching the flipped object change table index, and the
// program total moves by an exact integer delta. The point values are
// byte-identical to the per-mask engine's — both are the same sums of the
// same memoized per-function results — which TestDeltaSweepMatchesFull
// pins across benchmarks, latencies and worker counts.
//
// Phase 1 computes per-signature results through the same memo keys the
// per-mask engine uses ("locks", "part", "sched"), so the in-memory cache
// and the persistent artifact store stay fully shared between the two
// paths; partition misses run through a rhop.FuncPartitioner, which reuses
// function-shaped state and caches per-region results across signatures.
//
// Phase 2 parallelism splits the Gray sequence into contiguous chunks, one
// delta-state per worker, each seeded in O(n + #functions) at its chunk
// start; points land in a shared slice at disjoint mask indices and are
// stitched back in mask order, so every worker count produces identical
// results.

// costTable is one function's cost for every reachable projection of the
// data map onto its touched objects. Digit i (base k, the cluster count)
// of a signature index is the home cluster of objs[i] — a bitmask at k=2.
// On cluster-symmetric 2-cluster machines the sweep only enumerates
// canonical (object 0 on cluster 0) masks, so signatures homing object 0
// elsewhere are unreachable and stay zero.
type costTable struct {
	f    *ir.Func
	objs []int
	k    int
	cost []sched.Cost
}

// objRef locates one function's table digit for an object.
type objRef struct {
	ti  int // index into tables
	bit int // digit position within the table signature
}

// tableStats carries one function's table plus its memo telemetry out of
// the parallel build.
type tableStats struct {
	table     costTable
	partHits  int
	schedHits int
}

// chunkStats aggregates one Gray-chunk's telemetry: delta-advanced masks,
// per-function table updates, and the summed cycle/move values of the
// enumerated points (the same totals the per-mask engine folds into its
// observability registry one run at a time).
type chunkStats struct {
	delta  int64
	funcs  int64
	cycles int64
	moves  int64
}

// sweepErr mirrors the per-mask engine's error wrapping: pipeline failures
// surface as CellErrors naming the benchmark and the Fixed scheme (without
// a mask — a table entry serves many masks).
func sweepErr(c *Compiled, err error) error {
	var ce *CellError
	if errors.As(err, &ce) {
		return err
	}
	return &CellError{Bench: c.Name, Scheme: SchemeFixed, Err: err}
}

// buildCostTables runs phase 1: one cost table per function, built through
// the standard memoized per-function pipeline (locks → partition →
// schedule cost), fanned across workers function-by-function.
func buildCostTables(ctx context.Context, c *Compiled, cfg *machine.Config,
	opts Options, rad *radix, canon bool, n int, res *Result) ([]costTable, error) {

	useMemo := opts.useMemo(c)
	ropts := opts.rhopOpts()
	mkey := cfg.CacheKey()
	okey := ropts.CacheKey()
	items, err := parallel.MapStage(ctx, "sweep_tables", len(c.Mod.Funcs), opts.Workers,
		func(_ context.Context, fi int) (tableStats, error) {
			f := c.Mod.Funcs[fi]
			var objs []int
			if useMemo {
				objs = c.touched[f]
			} else {
				objs = rhop.TouchedObjects(f)
			}
			ts := tableStats{table: costTable{f: f, objs: objs, k: rad.k, cost: make([]sched.Cost, rad.count(len(objs)))}}
			// Canonical masks pin object 0 to cluster 0, so signatures
			// placing it elsewhere can never be asked for.
			fixed0 := canon && len(objs) > 0 && objs[0] == 0
			var fp *rhop.FuncPartitioner
			var sc *sched.Scratch
			var lc *sched.LoopCtx
			var bc *sched.BlockCache
			dm := make(gdp.DataMap, n)
			for sig := range ts.table.cost {
				if fixed0 && sig%rad.k != 0 {
					continue
				}
				if err := opts.ctxErr(); err != nil {
					return ts, err
				}
				for i, o := range objs {
					dm[o] = rad.digit(uint64(sig), i)
				}
				var locks rhop.Locks
				if useMemo {
					key := lockSigKey(memo.NewKey("locks").Str(f.Name), c, f, dm).String()
					v, _, _ := c.memo.DoCodec(key, lockCodec{}, func() (any, error) {
						return gdp.ComputeLocksFunc(f, dm, c.Prof), nil
					})
					locks = v.(rhop.Locks)
				} else {
					locks = gdp.ComputeLocksFunc(f, dm, c.Prof)
				}
				partition := func() (any, error) {
					if fp == nil {
						fp = rhop.NewFuncPartitioner(f, c.Prof, cfg, ropts)
					}
					return fp.Partition(locks)
				}
				var asg []int
				if useMemo {
					v, hit, err := c.memo.DoCodec(partitionKey(c, f, dm, locks, mkey, okey), partCodec{}, partition)
					if err != nil {
						return ts, err
					}
					if hit {
						ts.partHits++
					}
					asg = v.([]int)
				} else {
					v, err := partition()
					if err != nil {
						return ts, err
					}
					asg = v.([]int)
				}
				cost := func() (any, error) {
					if sc == nil {
						sc = sched.NewScratch()
						sc.SetObserver(opts.Observer)
						lc = sched.NewLoopCtx(f)
						bc = sched.NewBlockCache(f)
					}
					cyc, mv := sc.FuncCyclesCached(f, asg, lc, cfg, c.Prof, bc)
					return [2]int64{cyc, mv}, nil
				}
				var pair [2]int64
				if useMemo {
					v, hit, _ := c.memo.DoCodec(memo.NewKey("sched").Str(f.Name).Str(mkey).Ints(asg).String(), schedCodec{}, cost)
					if hit {
						ts.schedHits++
					}
					pair = v.([2]int64)
				} else {
					v, _ := cost()
					pair = v.([2]int64)
				}
				ts.table.cost[sig] = sched.Cost{Cycles: pair[0], Moves: pair[1]}
			}
			return ts, nil
		})
	if err != nil {
		return nil, err
	}
	tables := make([]costTable, len(items))
	for i, ts := range items {
		tables[i] = ts.table
		res.MemoPartitionHits += ts.partHits
		res.MemoScheduleHits += ts.schedHits
	}
	return tables, nil
}

// sweepPoints runs the delta sweep end to end and returns the full point
// slice (mirrored odd masks included on symmetric machines), identical to
// what the per-mask engine's evalMask fan-out produces. outer is the
// ExhaustiveCtx-level Options; one SchemeFixed observability scope wraps
// the whole sweep, folding the same summed eval_cycles/eval_moves and
// logical DetailedRuns accounting the per-mask engine reports one run at a
// time.
func sweepPoints(ctx context.Context, c *Compiled, cfg *machine.Config, outer Options,
	rad *radix, bytes []int64, totalBytes int64, canon bool, n int) (points []MappingPoint, err error) {

	opts, done := beginRun(c, SchemeFixed, outer)
	res := &Result{Scheme: SchemeFixed}
	defer func() {
		if err != nil {
			err = sweepErr(c, err)
			done(nil, err)
			return
		}
		done(res, nil)
	}()

	start := time.Now()
	tables, err := buildCostTables(ctx, c, cfg, opts, rad, canon, n, res)
	if err != nil {
		return nil, err
	}
	res.PartitionTime = time.Since(start)

	objFuncs := make([][]objRef, n)
	for ti := range tables {
		for bit, o := range tables[ti].objs {
			objFuncs[o] = append(objFuncs[o], objRef{ti: ti, bit: bit})
		}
	}

	// Gray sequence geometry: on symmetric 2-cluster machines enumerate
	// the 2^(n-1) canonical (even) masks — index i maps to gray(i) shifted
	// over the pinned object-0 bit, and step i advances object tz(i)+1 —
	// then mirror the odd complements. Every other machine enumerates all
	// k^n masks through the modular base-k Gray sequence, where step i
	// advances the digit at the count of i's trailing zero base-k digits
	// by +1 mod k.
	seqLen := rad.count(n)
	shift := uint(0)
	if canon {
		seqLen = 1 << uint(n-1)
		shift = 1
	}
	maskAt := func(i uint64) uint64 {
		if canon {
			return rad.grayAt(i, n-1) << 1
		}
		return rad.grayAt(i, n)
	}

	points = make([]MappingPoint, rad.count(n))
	chunks := parallel.Workers(opts.Workers)
	if chunks > seqLen {
		chunks = seqLen
	}
	chunkLen := (seqLen + chunks - 1) / chunks
	stats, err := parallel.MapStage(ctx, "sweep", chunks, opts.Workers,
		func(_ context.Context, ci int) (chunkStats, error) {
			var st chunkStats
			lo, hi := ci*chunkLen, (ci+1)*chunkLen
			if hi > seqLen {
				hi = seqLen
			}
			if lo >= hi {
				return st, nil
			}
			// Seed the delta state at the chunk's first mask.
			cur := maskAt(uint64(lo))
			curDigit := make([]int, n)
			clusterBytes := make([]int64, rad.k)
			sigIdx := make([]int, len(tables))
			var cycles, moves int64
			for ti := range tables {
				sig := 0
				for bi, o := range tables[ti].objs {
					sig += rad.digit(cur, o) * int(rad.pow[bi])
				}
				sigIdx[ti] = sig
				cycles += tables[ti].cost[sig].Cycles
				moves += tables[ti].cost[sig].Moves
			}
			for j := 0; j < n; j++ {
				curDigit[j] = rad.digit(cur, j)
				clusterBytes[curDigit[j]] += bytes[j]
			}
			emit := func() {
				points[cur] = MappingPoint{Mask: cur, Cycles: cycles, Imbalance: imbalanceOf(clusterBytes, totalBytes)}
				st.cycles += cycles
				st.moves += moves
			}
			emit()
			for i := uint64(lo) + 1; i < uint64(hi); i++ {
				obj := rad.grayStep(i) + int(shift)
				old := curDigit[obj]
				nw := old + 1
				if nw == rad.k {
					nw = 0
				}
				curDigit[obj] = nw
				if nw == 0 {
					cur -= uint64(rad.k-1) * rad.pow[obj]
				} else {
					cur += rad.pow[obj]
				}
				clusterBytes[old] -= bytes[obj]
				clusterBytes[nw] += bytes[obj]
				for _, ref := range objFuncs[obj] {
					oldSig := sigIdx[ref.ti]
					var nwSig int
					if nw == 0 {
						nwSig = oldSig - (rad.k-1)*int(rad.pow[ref.bit])
					} else {
						nwSig = oldSig + int(rad.pow[ref.bit])
					}
					cycles += tables[ref.ti].cost[nwSig].Cycles - tables[ref.ti].cost[oldSig].Cycles
					moves += tables[ref.ti].cost[nwSig].Moves - tables[ref.ti].cost[oldSig].Moves
					sigIdx[ref.ti] = nwSig
					st.funcs++
				}
				st.delta++
				emit()
			}
			return st, nil
		})
	if err != nil {
		return nil, err
	}
	if canon {
		full := uint64(1)<<uint(n) - 1
		for m := uint64(1); m < uint64(len(points)); m += 2 {
			src := points[^m&full]
			points[m] = MappingPoint{Mask: m, Cycles: src.Cycles, Imbalance: src.Imbalance}
		}
	}

	var delta, funcs int64
	for _, st := range stats {
		delta += st.delta
		funcs += st.funcs
		res.Cycles += st.cycles
		res.Moves += st.moves
	}
	// Logical accounting matches §4.5: every enumerated mask is one
	// detailed-partitioner run, however much of it the tables served.
	res.DetailedRuns = seqLen
	outer.Observer.Counter("eval_masks").Add(int64(seqLen))
	outer.Observer.Counter("sweep_masks_delta").Add(delta)
	outer.Observer.Counter("sweep_funcs_recomputed").Add(funcs)
	return points, nil
}
