package eval

import (
	"reflect"
	"testing"

	"mcpart/internal/machine"
)

// TestExhaustiveComplementSymmetry is the property test for the symmetry
// predicate: on the cluster-symmetric paper machine every mask and its
// bitwise complement describe the same placement up to a cluster swap, and
// canonicalization makes their cycle counts (and imbalance) exactly equal
// — not merely close, as the partitioner's lower-cluster tie-breaks would
// otherwise leave them.
func TestExhaustiveComplementSymmetry(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive search is slow")
	}
	c := prepBench(t, "rawcaudio")
	cfg := machine.Paper2Cluster(5)
	if !cfg.SymmetricClusters() {
		t.Fatal("paper preset must be symmetric")
	}
	ex, err := Exhaustive(c, cfg, Options{}, 14)
	if err != nil {
		t.Fatal(err)
	}
	n := len(c.Mod.Objects)
	full := uint64(1)<<uint(n) - 1
	for _, p := range ex.Points {
		q := ex.Find(full &^ p.Mask)
		if q == nil {
			t.Fatalf("complement of %b missing", p.Mask)
		}
		if p.Cycles != q.Cycles {
			t.Errorf("cycles(%b) = %d but cycles(^) = %d; complements must be exactly equal",
				p.Mask, p.Cycles, q.Cycles)
		}
		if p.Imbalance != q.Imbalance {
			t.Errorf("imbalance(%b) = %v but complement has %v", p.Mask, p.Imbalance, q.Imbalance)
		}
	}
}

// TestExhaustivePrunedMatchesFullSweep pins that the half-space sweep and
// the full enumeration produce identical ExhaustiveResult point sets —
// the pruning satellite's acceptance property. NoMemo rules out the cache
// accidentally papering over a pruning bug.
func TestExhaustivePrunedMatchesFullSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive search is slow")
	}
	c := prepBench(t, "rawcaudio")
	cfg := machine.Paper2Cluster(5)
	pruned, err := Exhaustive(c, cfg, Options{}, 14)
	if err != nil {
		t.Fatal(err)
	}
	fullSweep, err := Exhaustive(c, cfg, Options{NoSymPrune: true, NoMemo: true}, 14)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pruned, fullSweep) {
		t.Fatal("pruned sweep differs from full enumeration")
	}
	// The mask-order invariant Find relies on must hold in both modes.
	for i, p := range pruned.Points {
		if p.Mask != uint64(i) {
			t.Fatalf("Points[%d].Mask = %d; mask-order invariant broken", i, p.Mask)
		}
	}
}

// TestExhaustiveAsymmetricKeepsFullSweep pins that machines failing the
// symmetry predicate are swept without canonicalization: complements are
// genuinely different placements there (swapping clusters is not a
// relabeling), and the sweep must keep them independent.
func TestExhaustiveAsymmetricKeepsFullSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive search is slow")
	}
	c := prepBench(t, "fir")
	cfg := machine.Heterogeneous2(5)
	if cfg.SymmetricClusters() {
		t.Fatal("Heterogeneous2 must not be symmetric")
	}
	ex, err := Exhaustive(c, cfg, Options{}, 14)
	if err != nil {
		t.Fatal(err)
	}
	n := len(c.Mod.Objects)
	if len(ex.Points) != 1<<uint(n) {
		t.Fatalf("got %d points, want full 2^%d", len(ex.Points), n)
	}
	// NoSymPrune is a no-op on an asymmetric machine.
	again, err := Exhaustive(c, cfg, Options{NoSymPrune: true}, 14)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ex, again) {
		t.Fatal("asymmetric sweep changed under NoSymPrune")
	}
	// On this machine the big cluster genuinely beats the small one for
	// at least one mapping pair, which canonicalization would have hidden.
	diff := false
	full := uint64(1)<<uint(n) - 1
	for _, p := range ex.Points {
		if q := ex.Find(full &^ p.Mask); q != nil && q.Cycles != p.Cycles {
			diff = true
			break
		}
	}
	if !diff {
		t.Log("note: all complement pairs equal on the asymmetric machine (allowed, but unexpected)")
	}
}

// TestFindMaskIndexed pins the satellite rewrite of Find: O(1) for
// mask-ordered results, linear fallback for hand-assembled ones, nil for
// out-of-range masks.
func TestFindMaskIndexed(t *testing.T) {
	ordered := &ExhaustiveResult{Points: []MappingPoint{
		{Mask: 0, Cycles: 10}, {Mask: 1, Cycles: 11}, {Mask: 2, Cycles: 12}, {Mask: 3, Cycles: 13},
	}}
	for m := uint64(0); m < 4; m++ {
		p := ordered.Find(m)
		if p == nil || p.Mask != m {
			t.Fatalf("Find(%d) = %v", m, p)
		}
		if p != &ordered.Points[m] {
			t.Fatalf("Find(%d) must return a pointer into Points", m)
		}
	}
	if ordered.Find(4) != nil {
		t.Error("Find past the end must return nil")
	}
	// Hand-assembled, unordered points still resolve via the fallback.
	scattered := &ExhaustiveResult{Points: []MappingPoint{
		{Mask: 5, Cycles: 50}, {Mask: 2, Cycles: 20},
	}}
	if p := scattered.Find(2); p == nil || p.Cycles != 20 {
		t.Errorf("fallback Find(2) = %v", p)
	}
	if p := scattered.Find(5); p == nil || p.Cycles != 50 {
		t.Errorf("fallback Find(5) = %v", p)
	}
	if scattered.Find(3) != nil {
		t.Error("missing mask must return nil")
	}
}
