package eval

import (
	"context"
	"fmt"

	"mcpart/internal/defaults"
	"mcpart/internal/gdp"
	"mcpart/internal/machine"
	"mcpart/internal/obs"
	"mcpart/internal/parallel"
)

// registerSweepCounters pre-registers the sweep and branch-and-bound
// counters so a clean -metrics run reports explicit zeros instead of
// silently omitting paths that never fired (e.g. bb_* without -best, or
// sweep_* under -nodelta).
func registerSweepCounters(o *obs.Observer) {
	o.Counter("sweep_masks_delta").Add(0)
	o.Counter("sweep_funcs_recomputed").Add(0)
	o.Counter("bb_nodes_visited").Add(0)
	o.Counter("bb_nodes_pruned").Add(0)
}

// MappingPoint is one point of the Figure 9 scatter: a complete data-object
// mapping, its achieved cycles, and its data-size balance.
type MappingPoint struct {
	// Mask encodes the mapping positionally in base k (the cluster count):
	// digit i gives the cluster of object i. On 2-cluster machines this is
	// the familiar bitmask; on k>2 machines read digits with repeated
	// division by k.
	Mask uint64
	// Cycles is the dynamic cycle count under this mapping.
	Cycles int64
	// Imbalance is (max cluster bytes - min cluster bytes) / total in
	// [0,1]; 0 = perfectly balanced (the paper shades imbalanced points
	// darker). On 2-cluster machines this equals |bytes0-bytes1| / total.
	Imbalance float64
	// PerfVsWorst is cycles(worst mapping) / cycles(this), >= 1.
	PerfVsWorst float64
}

// ExhaustiveResult is the full Figure 9 dataset for one benchmark.
type ExhaustiveResult struct {
	Points []MappingPoint
	// GDPMask / PMaxMask are the masks the two schemes chose, for marking
	// on the plot.
	GDPMask  uint64
	PMaxMask uint64
	// Worst and Best cycles over all mappings.
	Worst, Best int64
}

// Exhaustive enumerates every data-object mapping onto the machine's k
// clusters (k^objects of them), evaluates each through the locked second
// pass, and returns the scatter along with the mappings GDP and Profile
// Max picked. The mapping-point count must be at most 2^maxObjects (guard
// against blowup); at k=2 that is the familiar object-count cap.
//
// The masks are fanned across opts.Workers goroutines; every worker owns
// its own DataMap and (through RunWithDataMap) its own scheduler and
// partitioner scratch state, and the points are stitched back in mask
// order, so the result is byte-identical to the serial evaluation.
// Points[i].Mask == i always holds (Find exploits this).
//
// On cluster-symmetric 2-cluster machines (machine.Config.SymmetricClusters)
// a mask and its bitwise complement describe the same placement up to a
// cluster relabeling, so each mask is evaluated through its canonical
// representative — the member of the {mask, ^mask} pair with object 0 on
// cluster 0. Canonicalization makes cycles(mask) == cycles(^mask) hold
// exactly (the partitioner's lower-cluster tie-breaks would otherwise
// skew complements slightly) and lets the sweep evaluate only the 2^(n-1)
// canonical masks and mirror the rest; Options.NoSymPrune forces the full
// enumeration but keeps canonicalization, so both modes return identical
// points. Asymmetric machines — and every machine with more than two
// clusters, where the relabeling orbit is the full k! group and mirroring
// is no longer a cheap complement — always sweep every mask
// uncanonicalized.
func Exhaustive(c *Compiled, cfg *machine.Config, opts Options, maxObjects int) (*ExhaustiveResult, error) {
	return ExhaustiveCtx(context.Background(), c, cfg, opts, maxObjects)
}

// ExhaustiveCtx is Exhaustive under a context: cancellation stops the mask
// sweep between items and propagates ctx's error.
func ExhaustiveCtx(ctx context.Context, c *Compiled, cfg *machine.Config, opts Options, maxObjects int) (*ExhaustiveResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx = obs.With(ctx, opts.Observer)
	opts.ctx = ctx
	opts.Observer = opts.Observer.Named("exhaustive").Named(c.Name)
	k := cfg.NumClusters()
	registerSweepCounters(opts.Observer)
	n := len(c.Mod.Objects)
	if maxObjects <= 0 {
		maxObjects = defaults.DefaultMaxObjects
	}
	if n > maxObjects {
		return nil, fmt.Errorf("eval: %s has %d objects; exhaustive search capped at %d", c.Name, n, maxObjects)
	}
	rad, err := newRadix(k, n)
	if err != nil {
		return nil, err
	}
	if maxObjects < 63 && rad.pow[n] > uint64(1)<<uint(maxObjects) {
		return nil, fmt.Errorf("eval: %s has %d mapping points on %d clusters; exhaustive search capped at %d points", c.Name, rad.pow[n], k, uint64(1)<<uint(maxObjects))
	}
	pointCount := rad.count(n)
	var totalBytes int64
	bytes := make([]int64, n)
	for i := range bytes {
		bytes[i] = objectBytes(c, i)
		totalBytes += bytes[i]
	}
	canon := k == 2 && cfg.SymmetricClusters()
	full := uint64(1)<<uint(n) - 1
	evalMask := func(mask uint64) (MappingPoint, error) {
		sp := opts.Observer.Span(fmt.Sprintf("mask%04x", mask))
		defer sp.End()
		opts.Observer.Counter("eval_masks").Add(1)
		emask := mask
		if canon && emask&1 == 1 {
			emask = ^emask & full // cluster-swap to the canonical representative
		}
		dm := make(gdp.DataMap, n)
		clusterBytes := make([]int64, k)
		for j := 0; j < n; j++ {
			dm[j] = rad.digit(emask, j)
			clusterBytes[dm[j]] += bytes[j]
		}
		mopts := opts
		mopts.Observer = sp.Observer()
		r, err := RunWithDataMap(c, cfg, dm, mopts)
		if err != nil {
			return MappingPoint{}, &CellError{Bench: c.Name, Scheme: SchemeFixed, Mask: mask, HasMask: true, Err: err}
		}
		// The byte imbalance (max-min)/total is invariant under cluster
		// relabeling, so computing it from emask equals computing it from
		// mask.
		return MappingPoint{Mask: mask, Cycles: r.Cycles, Imbalance: imbalanceOf(clusterBytes, totalBytes)}, nil
	}

	res := &ExhaustiveResult{}
	if !opts.NoDelta && opts.Inject == nil && !opts.Validate && n > 0 {
		// Gray-code delta sweep (see sweep.go): byte-identical points at a
		// fraction of the per-mask cost. Fault injection and per-point
		// validation need the full per-mask pipeline, so they fall through.
		points, err := sweepPoints(ctx, c, cfg, opts, rad, bytes, totalBytes, canon, n)
		if err != nil {
			return nil, err
		}
		res.Points = points
	} else if canon && !opts.NoSymPrune && n > 0 {
		// Evaluate only the canonical (even) half; mirror each point onto
		// its odd complement. Mirrored values are exactly what evaluating
		// the odd mask would have produced, since evalMask canonicalizes.
		evens, err := parallel.MapStage(ctx, "exhaustive", 1<<uint(n-1), opts.Workers,
			func(_ context.Context, i int) (MappingPoint, error) {
				return evalMask(uint64(i) << 1)
			})
		if err != nil {
			return nil, err
		}
		points := make([]MappingPoint, 1<<uint(n))
		for _, p := range evens {
			points[p.Mask] = p
		}
		for m := uint64(1); m < uint64(len(points)); m += 2 {
			src := points[^m&full]
			points[m] = MappingPoint{Mask: m, Cycles: src.Cycles, Imbalance: src.Imbalance}
		}
		res.Points = points
	} else {
		points, err := parallel.MapStage(ctx, "exhaustive", pointCount, opts.Workers,
			func(_ context.Context, i int) (MappingPoint, error) {
				return evalMask(uint64(i))
			})
		if err != nil {
			return nil, err
		}
		res.Points = points
	}
	res.Worst, res.Best = res.Points[0].Cycles, res.Points[0].Cycles
	for _, p := range res.Points {
		if p.Cycles > res.Worst {
			res.Worst = p.Cycles
		}
		if p.Cycles < res.Best {
			res.Best = p.Cycles
		}
	}
	for i := range res.Points {
		res.Points[i].PerfVsWorst = float64(res.Worst) / float64(res.Points[i].Cycles)
	}
	// Mark the schemes' choices (independent of the scatter and of each
	// other, so they can share the pool too).
	var gdpRes, pmaxRes *Result
	err = parallel.Do(ctx, opts.Workers,
		func(context.Context) error {
			r, err := RunGDP(c, cfg, opts)
			if err != nil {
				err = &CellError{Bench: c.Name, Scheme: SchemeGDP, Err: err}
			}
			gdpRes = r
			return err
		},
		func(context.Context) error {
			r, err := RunProfileMax(c, cfg, opts)
			if err != nil {
				err = &CellError{Bench: c.Name, Scheme: SchemeProfileMax, Err: err}
			}
			pmaxRes = r
			return err
		})
	if err != nil {
		return nil, err
	}
	res.GDPMask = maskOf(gdpRes.DataMap, rad)
	res.PMaxMask = maskOf(pmaxRes.DataMap, rad)
	return res, nil
}

// maskOf packs a data map into its base-k positional mask.
func maskOf(dm gdp.DataMap, rad *radix) uint64 {
	var mask uint64
	for i, cl := range dm {
		mask += uint64(cl) * rad.pow[i]
	}
	return mask
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// Find returns the point with the given mask, or nil. Exhaustive stores
// points in mask order (Points[i].Mask == i), so the lookup is O(1); a
// linear scan remains as a fallback for hand-assembled results that break
// the invariant.
func (r *ExhaustiveResult) Find(mask uint64) *MappingPoint {
	if mask < uint64(len(r.Points)) && r.Points[mask].Mask == mask {
		return &r.Points[mask]
	}
	for i := range r.Points {
		if r.Points[i].Mask == mask {
			return &r.Points[i]
		}
	}
	return nil
}
