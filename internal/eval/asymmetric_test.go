package eval

import (
	"testing"

	"mcpart/internal/gdp"
	"mcpart/internal/machine"
	"mcpart/internal/partition"
)

func TestMemFractions(t *testing.T) {
	cfg := machine.Paper2Cluster(5)
	if cfg.MemFractions() != nil {
		t.Error("unspecified capacities should give nil fractions")
	}
	asym, err := machine.WithMemCapacities(cfg, 3*8192, 8192)
	if err != nil {
		t.Fatal(err)
	}
	fr := asym.MemFractions()
	if len(fr) != 2 || fr[0] != 0.75 || fr[1] != 0.25 {
		t.Fatalf("fractions = %v, want [0.75 0.25]", fr)
	}
	if _, err := machine.WithMemCapacities(cfg, 1); err == nil {
		t.Error("accepted wrong capacity count")
	}
	if _, err := machine.WithMemCapacities(cfg, 8192, 0); err == nil {
		t.Error("accepted zero capacity")
	}
}

func TestWeightedBisection(t *testing.T) {
	// 16 unit-weight nodes in a ring; target a 3:1 split.
	g := partition.NewGraph(16, 1)
	for i := 0; i < 16; i++ {
		g.W[i][0] = 1
		g.Connect(i, (i+1)%16, 1)
	}
	part, err := partition.Bisect(g, partition.Options{
		Tol:       []float64{0.10},
		Fractions: []float64{0.75, 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	pw := partition.PartWeights(g, part, 2)
	// Part 0 should end up near 12, part 1 near 4 (within tolerance).
	if pw[0][0] < 10 || pw[0][0] > 14 {
		t.Errorf("weighted split = %v, want ~12/4", pw)
	}
}

func TestAsymmetricMemoryGDP(t *testing.T) {
	// rawcaudio has two 9.6 KiB heap buffers plus ~900 B of tables. On a
	// machine whose cluster 0 memory is 4x cluster 1's, GDP should load
	// cluster 0 with much more than half of the bytes.
	c := prepBench(t, "rawcaudio")
	base := machine.Paper2Cluster(5)
	asym, err := machine.WithMemCapacities(base, 4*16384, 16384)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunGDP(c, asym, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bytes := gdp.MemBytesPerCluster(c.Mod, r.DataMap, c.Prof, 2)
	total := bytes[0] + bytes[1]
	if bytes[0]*10 < total*6 { // expect >= 60% on the big memory
		t.Errorf("asymmetric GDP put only %d of %d bytes on the big cluster", bytes[0], total)
	}
	// Symmetric machine stays balanced for contrast.
	rs, err := RunGDP(c, base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sb := gdp.MemBytesPerCluster(c.Mod, rs.DataMap, c.Prof, 2)
	if sb[0]*10 > total*7 {
		t.Errorf("symmetric GDP unexpectedly imbalanced: %v", sb)
	}
}

func TestAsymmetricMemoryProfileMax(t *testing.T) {
	c := prepBench(t, "rawcaudio")
	asym, err := machine.WithMemCapacities(machine.Paper2Cluster(5), 4*16384, 16384)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunProfileMax(c, asym, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// ProfileMax places by access preference; the capacity fractions act
	// as caps. The invariant is that the small memory is not overfilled
	// beyond its share (plus tolerance): 25% of ~20.5 KiB ≈ 5.1 KiB,
	// with one group allowed to straddle the threshold.
	bytes := gdp.MemBytesPerCluster(c.Mod, r.DataMap, c.Prof, 2)
	total := bytes[0] + bytes[1]
	smallLimit := int64(float64(total)*0.25*1.1) + 9600 // + one buffer straddle
	if bytes[1] > smallLimit {
		t.Errorf("asymmetric ProfileMax overfilled the small memory: %v (limit %d)", bytes, smallLimit)
	}
	if bytes[0] < bytes[1] {
		t.Errorf("asymmetric ProfileMax favored the small memory: %v", bytes)
	}
}

func TestBadFractionCount(t *testing.T) {
	c := prepBench(t, "halftone")
	_, err := gdp.PartitionData(c.Mod, c.Prof, 2, gdp.Options{MemFractions: []float64{1}})
	if err == nil {
		t.Error("accepted wrong fraction count")
	}
}
