package eval

import (
	"reflect"
	"testing"

	"mcpart/internal/bench"
	"mcpart/internal/machine"
)

// Worker counts the determinism tests compare: the serial reference and a
// heavily oversubscribed pool (more workers than this machine has cores),
// so completion order genuinely scrambles.
const parallelProbe = 8

// TestExhaustiveDeterminismAcrossWorkers pins the tentpole guarantee: the
// exhaustive mapping search returns a byte-identical result no matter how
// many workers evaluate the masks.
func TestExhaustiveDeterminismAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive search is slow")
	}
	c := prepBench(t, "rawcaudio")
	cfg := machine.Paper2Cluster(5)
	serial, err := Exhaustive(c, cfg, Options{Workers: 1}, 14)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Exhaustive(c, cfg, Options{Workers: parallelProbe}, 14)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("exhaustive search differs between -j 1 and -j %d", parallelProbe)
	}
}

// detFields projects out every deterministic field of a Result; the wall
// time in PartitionTime is the one field allowed to differ across worker
// counts.
func detFields(r *Result) map[string]interface{} {
	return map[string]interface{}{
		"scheme":  r.Scheme,
		"cycles":  r.Cycles,
		"moves":   r.Moves,
		"datamap": r.DataMap,
		"assign":  r.Assign,
		"locks":   r.Locks,
		"runs":    r.DetailedRuns,
	}
}

// TestMatrixDeterminismAcrossWorkers runs the full four-scheme matrix over
// two benchmarks at -j 1 and -j 8 and requires deep equality of every
// deterministic result field.
func TestMatrixDeterminismAcrossWorkers(t *testing.T) {
	cs := []*Compiled{prepBench(t, "rawcaudio"), prepBench(t, "halftone")}
	cfg := machine.Paper2Cluster(5)
	serial, err := RunMatrix(cs, cfg, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunMatrix(cs, cfg, Options{Workers: parallelProbe})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(par) {
		t.Fatalf("result count differs: %d vs %d", len(serial), len(par))
	}
	for i := range serial {
		s, p := serial[i], par[i]
		if s.Name != p.Name {
			t.Fatalf("benchmark order differs at %d: %s vs %s", i, s.Name, p.Name)
		}
		pairs := []struct {
			scheme   string
			ser, par *Result
		}{
			{"unified", s.Unified, p.Unified},
			{"gdp", s.GDP, p.GDP},
			{"pmax", s.PMax, p.PMax},
			{"naive", s.Naive, p.Naive},
		}
		for _, q := range pairs {
			if !reflect.DeepEqual(detFields(q.ser), detFields(q.par)) {
				t.Errorf("%s %s differs between -j 1 and -j %d",
					s.Name, q.scheme, parallelProbe)
			}
		}
	}
}

// TestRunAllSchemesMatchesMatrix pins that the single-benchmark wrapper is
// just row 0 of the matrix.
func TestRunAllSchemesMatchesMatrix(t *testing.T) {
	c := prepBench(t, "rawcaudio")
	cfg := machine.Paper2Cluster(5)
	one, err := RunAllSchemes(c, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	matrix, err := RunMatrix([]*Compiled{c}, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(detFields(one.GDP), detFields(matrix[0].GDP)) {
		t.Error("RunAllSchemes GDP result differs from RunMatrix")
	}
}

// TestPrepareAllMatchesPrepare pins that the concurrent front end produces
// the same compiled artifacts as serial Prepare calls (checksums and
// module shapes included).
func TestPrepareAllMatchesPrepare(t *testing.T) {
	names := []string{"rawcaudio", "halftone"}
	var specs []BenchSpec
	for _, name := range names {
		b, err := bench.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, BenchSpec{Name: b.Name, Src: b.Source})
	}
	cs, err := PrepareAll(specs, parallelProbe)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cs {
		want := prepBench(t, names[i]) // serial reference, validates checksum
		if c.Name != want.Name || c.Ret != want.Ret {
			t.Errorf("%s: parallel Prepare checksum %d, serial %d", c.Name, c.Ret, want.Ret)
		}
		if len(c.Mod.Funcs) != len(want.Mod.Funcs) || len(c.Mod.Objects) != len(want.Mod.Objects) {
			t.Errorf("%s: module shape differs between parallel and serial Prepare", c.Name)
		}
	}
}
