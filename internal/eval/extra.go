package eval

import (
	"sort"

	"mcpart/internal/gdp"
	"mcpart/internal/machine"
)

// Additional object-placement baselines from the literature the paper
// builds on (Terechko et al., CASES'03, studied round-robin and
// affinity-style placements of global values for clustered VLIWs). These
// are not part of the paper's Table 1 but make useful extra comparison
// points; both feed the same locked second pass as GDP.

// RunRoundRobin places objects on clusters round-robin in declaration
// order — the simplest balanced placement, completely blind to access
// patterns.
func RunRoundRobin(c *Compiled, cfg *machine.Config, opts Options) (*Result, error) {
	k := cfg.NumClusters()
	dm := make(gdp.DataMap, len(c.Mod.Objects))
	for i := range dm {
		dm[i] = i % k
	}
	res, err := RunWithDataMap(c, cfg, dm, opts)
	if err != nil {
		return nil, err
	}
	res.Scheme = "RoundRobin"
	return res, nil
}

// RunAffinity greedily clusters objects by access affinity: objects are
// taken in descending dynamic access order and placed on the cluster whose
// already-placed objects share the most accessing operations with them,
// subject to the same byte-balance threshold as Profile Max. Unlike GDP it
// never sees the computation graph, only object-object co-access counts.
func RunAffinity(c *Compiled, cfg *machine.Config, opts Options) (*Result, error) {
	k := cfg.NumClusters()
	n := len(c.Mod.Objects)
	// affinity[a][b] = dynamic accesses by functions that touch both.
	affinity := make([][]int64, n)
	for i := range affinity {
		affinity[i] = make([]int64, n)
	}
	for _, f := range c.Mod.Funcs {
		touched := map[int]int64{}
		for _, b := range f.Blocks {
			for _, op := range b.Ops {
				for objID, cnt := range c.Prof.OpObj[op] {
					touched[objID] += cnt
				}
			}
		}
		ids := make([]int, 0, len(touched))
		for id := range touched {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, a := range ids {
			for _, b := range ids {
				if a != b {
					affinity[a][b] += min64(touched[a], touched[b])
				}
			}
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if c.Prof.ObjAccess[a] != c.Prof.ObjAccess[b] {
			return c.Prof.ObjAccess[a] > c.Prof.ObjAccess[b]
		}
		return a < b
	})
	var totalBytes int64
	for id := 0; id < n; id++ {
		totalBytes += objectBytes(c, id)
	}
	limit := int64(float64(totalBytes) / float64(k) * (1 + opts.pmaxTol()))
	loaded := make([]int64, k)
	placed := make([]bool, n)
	dm := make(gdp.DataMap, n)
	for _, id := range order {
		best, bestScore := 0, int64(-1)
		for cl := 0; cl < k; cl++ {
			var score int64
			for other := 0; other < n; other++ {
				if placed[other] && dm[other] == cl {
					score += affinity[id][other]
				}
			}
			over := loaded[cl]+objectBytes(c, id) > limit
			if over {
				score -= 1 << 40 // strongly prefer clusters with room
			}
			if score > bestScore || (score == bestScore && loaded[cl] < loaded[best]) {
				best, bestScore = cl, score
			}
		}
		dm[id] = best
		placed[id] = true
		loaded[best] += objectBytes(c, id)
	}
	res, err := RunWithDataMap(c, cfg, dm, opts)
	if err != nil {
		return nil, err
	}
	res.Scheme = "Affinity"
	return res, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
