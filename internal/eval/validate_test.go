package eval

import (
	"errors"
	"sync"
	"testing"

	"mcpart/internal/bench"
	"mcpart/internal/check"
	"mcpart/internal/machine"
)

// allCompiled prepares every bundled benchmark once per test binary; the
// validation matrix reuses them across machine presets.
var allCompiled = sync.OnceValues(func() ([]*Compiled, error) {
	var specs []BenchSpec
	for _, b := range bench.All() {
		specs = append(specs, BenchSpec{Name: b.Name, Src: b.Source})
	}
	return PrepareAll(specs, 0)
})

// TestValidateMatrix runs the independent validator over every benchmark x
// scheme x machine preset: the whole pipeline must produce results the
// first-principles re-derivation agrees with. In -short mode the benchmark
// list is trimmed; the presets are not (they are the cheap axis).
func TestValidateMatrix(t *testing.T) {
	cs, err := allCompiled()
	if err != nil {
		t.Fatal(err)
	}
	if testing.Short() {
		cs = cs[:4]
	}
	capped, err := machine.WithMemCapacities(machine.Paper2Cluster(5), 1<<16, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	presets := []*machine.Config{
		machine.Paper2Cluster(5),
		machine.FourCluster(5),
		machine.RingFour(5),
		machine.Heterogeneous2(5),
		capped,
	}
	for _, cfg := range presets {
		brs, err := RunMatrix(cs, cfg, Options{Validate: true})
		if err != nil {
			var ce *check.Error
			if errors.As(err, &ce) {
				t.Fatalf("%s: validator rejected a pipeline result:\n%v", cfg.Name, ce)
			}
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		for _, br := range brs {
			for _, r := range []*Result{br.Unified, br.GDP, br.PMax, br.Naive} {
				if r == nil || r.Cycles <= 0 {
					t.Errorf("%s %s: missing or empty result", cfg.Name, br.Name)
				}
				if r != nil && r.Degraded != nil {
					t.Errorf("%s %s %s: unexpected degradation: %v",
						cfg.Name, br.Name, r.Scheme, r.Degraded.Err)
				}
			}
		}
	}
}

// TestValidateExhaustive validates every mapping of the Figure 9 sweep on a
// small benchmark: the locked second pass must hold the invariants for
// arbitrary (even terrible) data maps, not just scheme-chosen ones.
func TestValidateExhaustive(t *testing.T) {
	c := prepBench(t, "fir")
	ex, err := Exhaustive(c, machine.Paper2Cluster(5), Options{Validate: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Points) == 0 {
		t.Fatal("no points")
	}
}
