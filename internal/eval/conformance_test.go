package eval

import (
	"reflect"
	"testing"

	"mcpart/internal/bench"
	"mcpart/internal/machine"
)

// prepSuite compiles the whole benchmark suite once per test.
func prepSuite(t *testing.T) []*Compiled {
	t.Helper()
	var specs []BenchSpec
	for _, b := range bench.All() {
		specs = append(specs, BenchSpec{Name: b.Name, Src: b.Source})
	}
	cs, err := PrepareAll(specs, parallelProbe)
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

// diffMatrices requires two four-scheme matrices to agree on every
// deterministic result field, benchmark by benchmark.
func diffMatrices(t *testing.T, label string, want, got []*BenchResult) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: result count %d vs %d", label, len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Name != g.Name {
			t.Fatalf("%s: benchmark order differs at %d: %s vs %s", label, i, w.Name, g.Name)
		}
		for _, q := range []struct {
			scheme   string
			ser, par *Result
		}{
			{"unified", w.Unified, g.Unified},
			{"gdp", w.GDP, g.GDP},
			{"pmax", w.PMax, g.PMax},
			{"naive", w.Naive, g.Naive},
		} {
			if !reflect.DeepEqual(detFields(q.ser), detFields(q.par)) {
				t.Errorf("%s: %s %s diverges between topology spellings",
					label, w.Name, q.scheme)
			}
		}
	}
}

// conformance runs the full four-scheme suite on a structural topology and
// on its explicit-matrix expansion, at -j1 and -j8, and requires the four
// runs to be identical in every deterministic field. This is the
// differential contract of machine.AsMatrix: the matrix is the same
// machine spelled through a different MoveLat code path, so every
// consumer — gdp's partition graph, rhop's cost estimator, the scheduler's
// per-pair move charging, the validator — must be unable to tell them
// apart.
func conformance(t *testing.T, cs []*Compiled, structural *machine.Config) {
	t.Helper()
	asMatrix := machine.AsMatrix(structural)
	ref, err := RunMatrix(cs, structural, Options{Workers: 1})
	if err != nil {
		t.Fatalf("%s -j1: %v", structural.Name, err)
	}
	for _, probe := range []struct {
		label   string
		cfg     *machine.Config
		workers int
	}{
		{structural.Name + " -j8", structural, parallelProbe},
		{asMatrix.Name + " -j1", asMatrix, 1},
		{asMatrix.Name + " -j8", asMatrix, parallelProbe},
	} {
		got, err := RunMatrix(cs, probe.cfg, Options{Workers: probe.workers})
		if err != nil {
			t.Fatalf("%s: %v", probe.label, err)
		}
		diffMatrices(t, probe.label, ref, got)
	}
}

// TestBusAsMatrixConformance: the paper's bus at each of its three
// latency presets vs the uniform explicit matrix, whole suite, both
// worker counts.
func TestBusAsMatrixConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite differential is slow")
	}
	cs := prepSuite(t)
	for _, lat := range []int{1, 5, 10} {
		conformance(t, cs, machine.Paper2Cluster(lat))
	}
}

// TestRingAsMatrixConformance: the nearest-neighbor ring (non-uniform
// pairwise costs, so the matrix expansion actually has distinct entries)
// vs its expansion, whole suite, both worker counts.
func TestRingAsMatrixConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite differential is slow")
	}
	cs := prepSuite(t)
	for _, lat := range []int{1, 5, 10} {
		conformance(t, cs, machine.RingFour(lat))
	}
	conformance(t, cs, machine.Ring8(5))
}

// TestMeshAsMatrixConformance extends the differential to the mesh
// presets at the paper's middle latency.
func TestMeshAsMatrixConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite differential is slow")
	}
	cs := prepSuite(t)
	conformance(t, cs, machine.Mesh4(5))
	conformance(t, cs, machine.Mesh8(5))
}

// TestFigure9AsMatrixByteIdentical pins the exhaustive sweep: the rendered
// Figure 9 output (every mapping point, cycles, imbalance, scheme marks)
// must be byte-identical between the structural bus and its matrix
// spelling on every exhaustive-eligible benchmark — and likewise for a
// 4-cluster ring sweep on a small benchmark where 4^n fits the point cap.
func TestFigure9AsMatrixByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive search is slow")
	}
	for _, b := range bench.All() {
		if !b.Exhaustive {
			continue
		}
		c := prepBench(t, b.Name)
		for _, lat := range []int{1, 5, 10} {
			bus := machine.Paper2Cluster(lat)
			ref, err := Exhaustive(c, bus, Options{}, 14)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Exhaustive(c, machine.AsMatrix(bus), Options{Workers: parallelProbe}, 14)
			if err != nil {
				t.Fatal(err)
			}
			if FormatFigure9(b.Name, ref) != FormatFigure9(b.Name, got) {
				t.Errorf("%s lat %d: Figure 9 output differs between bus and matrix spellings", b.Name, lat)
			}
		}
	}
	// A topology with genuinely non-uniform pairwise costs: ring4 on the
	// smallest benchmark (4^n must fit the 2^14 point cap).
	c := prepBench(t, "halftone")
	ring := machine.RingFour(5)
	ref, err := Exhaustive(c, ring, Options{}, 14)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Exhaustive(c, machine.AsMatrix(ring), Options{Workers: parallelProbe}, 14)
	if err != nil {
		t.Fatal(err)
	}
	if FormatFigure9("halftone", ref) != FormatFigure9("halftone", got) {
		t.Error("ring4 Figure 9 output differs between structural and matrix spellings")
	}
}

// TestValidatorConformanceAcrossSpellings runs the independent schedule
// validator over the whole suite on both spellings of the ring: the
// validator re-derives per-hop move costs itself, so a green verdict on
// the structural topology must stay green on the matrix expansion (and
// the results must still be identical).
func TestValidatorConformanceAcrossSpellings(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite validation is slow")
	}
	cs := prepSuite(t)
	ring := machine.RingFour(5)
	ref, err := RunMatrix(cs, ring, Options{Workers: parallelProbe, Validate: true})
	if err != nil {
		t.Fatalf("validator rejected the structural ring: %v", err)
	}
	got, err := RunMatrix(cs, machine.AsMatrix(ring), Options{Workers: parallelProbe, Validate: true})
	if err != nil {
		t.Fatalf("validator rejected the ring-as-matrix: %v", err)
	}
	diffMatrices(t, "validated ring spellings", ref, got)
}
