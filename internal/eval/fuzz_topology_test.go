package eval

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"mcpart/internal/machine"
	"mcpart/internal/progen"
)

// fuzzMachine derives a valid random machine from the fuzz inputs: cluster
// count in {1,2,4,8} (the recursive bisection partitioner needs a power of
// two), one of the four topologies (random symmetric latency matrices for
// TopologyMatrix, a random column count for the mesh), a base latency in
// [1,10], random bandwidth within the physical cap, and — on odd memByte —
// asymmetric per-cluster scratchpad capacities. The derivation is total:
// every input maps to a config that machine.Validate accepts, which the
// harness asserts before using it.
func fuzzMachine(seed int64, machineByte, latByte, memByte uint8) *machine.Config {
	rng := rand.New(rand.NewSource(seed ^ int64(machineByte)<<8 ^ int64(latByte)<<16 ^ int64(memByte)<<24))
	k := []int{1, 2, 4, 8}[int(machineByte)%4]
	lat := 1 + int(latByte)%10
	tmpl := machine.FourCluster(lat).Clusters[0]
	cfg := &machine.Config{
		Name:          fmt.Sprintf("fuzz-%dc-lat%d", k, lat),
		Clusters:      make([]machine.Cluster, k),
		MoveLatency:   lat,
		MoveBandwidth: 1 + rng.Intn(2), // <= 2 <= TotalUnits(FUInt) for every k
	}
	for i := range cfg.Clusters {
		cfg.Clusters[i] = tmpl
	}
	switch (int(machineByte) / 4) % 4 {
	case 1:
		if k >= 2 {
			cfg.Topology = machine.TopologyRing
		}
	case 2:
		cfg.Topology = machine.TopologyMesh
		cfg.MeshCols = 1 + rng.Intn(k)
	case 3:
		cfg.Topology = machine.TopologyMatrix
		m := make([][]int, k)
		for a := range m {
			m[a] = make([]int, k)
		}
		for a := 0; a < k; a++ {
			for b := a + 1; b < k; b++ {
				l := lat * (1 + rng.Intn(4))
				m[a][b], m[b][a] = l, l
			}
		}
		cfg.LatencyMatrix = m
	}
	if memByte%2 == 1 && k > 1 {
		const unit = 64 << 10
		for i := range cfg.Clusters {
			cfg.Clusters[i].MemBytes = int64(1+rng.Intn(4)) * unit
		}
	}
	return cfg
}

// FuzzTopology property-tests the topology-generalized pipeline: progen
// programs × random valid machines. Oracles, in order: the derived config
// passes machine.Validate; all four schemes run with the independent
// validator green (the validator re-derives per-pair move costs itself,
// so this differentially checks the scheduler's topology charging); the
// base-k Gray-code delta sweep equals the full per-mask engine point for
// point; and branch and bound lands exactly on the sweep's optimum.
// Programs whose k^n mapping space is too large for the differential
// enumeration skip the sweep oracles but keep the validator one.
func FuzzTopology(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(4), uint8(0))      // 1-cluster bus
	f.Add(int64(7), uint8(1), uint8(0), uint8(1))      // 2-cluster bus, asymmetric memory
	f.Add(int64(42), uint8(6), uint8(4), uint8(0))     // 4-cluster ring
	f.Add(int64(1337), uint8(10), uint8(9), uint8(1))  // 4-cluster mesh, asymmetric memory
	f.Add(int64(99991), uint8(15), uint8(2), uint8(0)) // 8-cluster random matrix
	f.Add(int64(2), uint8(14), uint8(4), uint8(1))     // 4-cluster random matrix, asymmetric memory
	f.Fuzz(func(t *testing.T, seed int64, machineByte, latByte, memByte uint8) {
		cfg := fuzzMachine(seed, machineByte, latByte, memByte)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("fuzzMachine built an invalid config: %v", err)
		}
		k := cfg.NumClusters()
		src := progen.Generate(seed, progen.Options{MaxGlobals: 7})
		c, err := Prepare("fuzz", src)
		if err != nil {
			t.Fatalf("seed %d: pipeline rejected a progen program: %v\n%s", seed, err, src)
		}
		br, err := RunAllSchemes(c, cfg, Options{Validate: true, Workers: 1})
		if err != nil {
			t.Fatalf("seed %d machine %s: validated scheme run failed: %v\n%s", seed, cfg.Name, err, src)
		}
		for _, r := range []*Result{br.Unified, br.GDP, br.PMax, br.Naive} {
			if r.Cycles <= 0 {
				t.Fatalf("seed %d machine %s: %s produced %d cycles", seed, cfg.Name, r.Scheme, r.Cycles)
			}
		}
		// Differential sweep oracles only where k^n stays enumerable.
		n := len(c.Mod.Objects)
		points := 1
		for i := 0; i < n; i++ {
			points *= k
			if points > 1<<10 {
				t.Skipf("seed %d: %d^%d mapping points, too large for differential enumeration", seed, k, n)
			}
		}
		delta, err := Exhaustive(c, cfg, Options{Workers: 2}, 10)
		if err != nil {
			t.Fatalf("seed %d machine %s: delta sweep failed: %v\n%s", seed, cfg.Name, err, src)
		}
		full, err := Exhaustive(c, cfg, Options{Workers: 2, NoDelta: true}, 10)
		if err != nil {
			t.Fatalf("seed %d machine %s: full engine failed: %v\n%s", seed, cfg.Name, err, src)
		}
		if !reflect.DeepEqual(delta, full) {
			t.Fatalf("seed %d machine %s: delta sweep differs from full engine\n%s", seed, cfg.Name, src)
		}
		best, err := BestMapping(c, cfg, Options{}, 10)
		if err != nil {
			t.Fatalf("seed %d machine %s: best-mapping search failed: %v\n%s", seed, cfg.Name, err, src)
		}
		if best.Cycles != delta.Best {
			t.Fatalf("seed %d machine %s: branch and bound found %d cycles, sweep best is %d\n%s",
				seed, cfg.Name, best.Cycles, delta.Best, src)
		}
		if p := delta.Find(best.Mask); p == nil || p.Cycles != best.Cycles {
			t.Fatalf("seed %d machine %s: mask %#x does not achieve the reported optimum\n%s",
				seed, cfg.Name, best.Mask, src)
		}
	})
}
