package eval

import (
	"testing"

	"mcpart/internal/machine"
	"mcpart/internal/progen"
)

// FuzzPipeline property-tests the whole pipeline on generated programs:
// progen's output is valid and terminating by construction, so every stage
// must succeed, the optimizer and unroller must preserve the interpreter
// checksum (the end-to-end oracle), and every scheme's result must satisfy
// the independent validator.
func FuzzPipeline(f *testing.F) {
	for _, seed := range []int64{1, 7, 42, 1337, 99991} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		src := progen.Generate(seed, progen.Options{})
		plain, err := PrepareFull("fuzz", src, 1, false)
		if err != nil {
			t.Fatalf("seed %d: unoptimized pipeline rejected a progen program: %v\n%s", seed, err, src)
		}
		full, err := PrepareFull("fuzz", src, DefaultUnroll, true)
		if err != nil {
			t.Fatalf("seed %d: optimized pipeline rejected a progen program: %v\n%s", seed, err, src)
		}
		if plain.Ret != full.Ret {
			t.Fatalf("seed %d: optimizer/unroller changed the checksum: %d -> %d\n%s",
				seed, plain.Ret, full.Ret, src)
		}
		br, err := RunAllSchemes(full, machine.Paper2Cluster(5), Options{Validate: true, Workers: 1})
		if err != nil {
			t.Fatalf("seed %d: scheme evaluation failed validation: %v\n%s", seed, err, src)
		}
		for _, r := range []*Result{br.Unified, br.GDP, br.PMax, br.Naive} {
			if r.Cycles <= 0 {
				t.Fatalf("seed %d: %s produced %d cycles", seed, r.Scheme, r.Cycles)
			}
		}
	})
}
