package eval

import (
	"reflect"
	"testing"

	"mcpart/internal/machine"
	"mcpart/internal/progen"
)

// FuzzPipeline property-tests the whole pipeline on generated programs:
// progen's output is valid and terminating by construction, so every stage
// must succeed, the optimizer and unroller must preserve the interpreter
// checksum (the end-to-end oracle), and every scheme's result must satisfy
// the independent validator.
func FuzzPipeline(f *testing.F) {
	for _, seed := range []int64{1, 7, 42, 1337, 99991} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		src := progen.Generate(seed, progen.Options{})
		plain, err := PrepareFull("fuzz", src, 1, false)
		if err != nil {
			t.Fatalf("seed %d: unoptimized pipeline rejected a progen program: %v\n%s", seed, err, src)
		}
		full, err := PrepareFull("fuzz", src, DefaultUnroll, true)
		if err != nil {
			t.Fatalf("seed %d: optimized pipeline rejected a progen program: %v\n%s", seed, err, src)
		}
		if plain.Ret != full.Ret {
			t.Fatalf("seed %d: optimizer/unroller changed the checksum: %d -> %d\n%s",
				seed, plain.Ret, full.Ret, src)
		}
		br, err := RunAllSchemes(full, machine.Paper2Cluster(5), Options{Validate: true, Workers: 1})
		if err != nil {
			t.Fatalf("seed %d: scheme evaluation failed validation: %v\n%s", seed, err, src)
		}
		for _, r := range []*Result{br.Unified, br.GDP, br.PMax, br.Naive} {
			if r.Cycles <= 0 {
				t.Fatalf("seed %d: %s produced %d cycles", seed, r.Scheme, r.Cycles)
			}
		}
	})
}

// FuzzSweep differentially fuzzes the Gray-code delta sweep against the
// full per-mask engine on generated programs: for every seed both engines
// must return reflect.DeepEqual ExhaustiveResults, and the branch-and-bound
// search must land exactly on the sweep's optimum. Object counts are kept
// small so each seed's 2^n comparison stays fast; programs the generator
// grows past the cap are skipped rather than failed.
func FuzzSweep(f *testing.F) {
	for _, seed := range []int64{1, 2, 7, 42, 1337} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		src := progen.Generate(seed, progen.Options{MaxGlobals: 7})
		c, err := Prepare("fuzz", src)
		if err != nil {
			t.Fatalf("seed %d: pipeline rejected a progen program: %v\n%s", seed, err, src)
		}
		if len(c.Mod.Objects) > 10 {
			t.Skipf("seed %d: %d objects, too large for differential enumeration", seed, len(c.Mod.Objects))
		}
		cfg := machine.Paper2Cluster(5)
		delta, err := Exhaustive(c, cfg, Options{Workers: 2}, 10)
		if err != nil {
			t.Fatalf("seed %d: delta sweep failed: %v\n%s", seed, err, src)
		}
		full, err := Exhaustive(c, cfg, Options{Workers: 2, NoDelta: true}, 10)
		if err != nil {
			t.Fatalf("seed %d: full engine failed: %v\n%s", seed, err, src)
		}
		if !reflect.DeepEqual(delta, full) {
			t.Fatalf("seed %d: delta sweep differs from full engine\n%s", seed, src)
		}
		best, err := BestMapping(c, cfg, Options{}, 10)
		if err != nil {
			t.Fatalf("seed %d: best-mapping search failed: %v\n%s", seed, err, src)
		}
		if best.Cycles != delta.Best {
			t.Fatalf("seed %d: branch and bound found %d cycles, sweep best is %d\n%s",
				seed, best.Cycles, delta.Best, src)
		}
		if p := delta.Find(best.Mask); p == nil || p.Cycles != best.Cycles {
			t.Fatalf("seed %d: mask %#x does not achieve the reported optimum\n%s", seed, best.Mask, src)
		}
	})
}
