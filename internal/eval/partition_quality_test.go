package eval

import (
	"testing"

	"mcpart/internal/bench"
	"mcpart/internal/gdp"
	"mcpart/internal/machine"
)

// TestFastPartitionNoWorseOnWorkloads is the acceptance gate for the fast
// partitioner on the paper's own workloads (not just synthetic graphs):
// for every bundled benchmark and both machine shapes, the object
// partition the fast path produces is lexicographically no worse than the
// legacy path's by (balance violation, cut weight). Violation is measured
// the same way the partitioner's constraint is stated: bytes placed on a
// cluster beyond total*fraction*(1+MemTol).
func TestFastPartitionNoWorseOnWorkloads(t *testing.T) {
	cfgs := []*machine.Config{machine.Paper2Cluster(5), machine.FourCluster(5)}
	for _, b := range bench.All() {
		c, err := Prepare(b.Name, b.Source)
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range cfgs {
			k := cfg.NumClusters()
			score := func(legacy bool) (int64, int64) {
				opts := gdp.Options{
					MemFractions:    cfg.MemFractions(),
					LegacyPartition: legacy,
					Workers:         1,
				}
				dp, err := gdp.PartitionData(c.Mod, c.Prof, k, opts)
				if err != nil {
					t.Fatalf("%s k=%d legacy=%v: %v", b.Name, k, legacy, err)
				}
				bytes := gdp.MemBytesPerCluster(c.Mod, dp.DataMap, c.Prof, k)
				var total int64
				for _, v := range bytes {
					total += v
				}
				frac := func(p int) float64 {
					if fr := cfg.MemFractions(); len(fr) == k {
						return fr[p]
					}
					return 1 / float64(k)
				}
				var viol int64
				for p := 0; p < k; p++ {
					limit := int64(float64(total) * frac(p) * 1.10) // default MemTol 0.10
					if over := bytes[p] - limit; over > 0 {
						viol += over
					}
				}
				return viol, dp.CutWeight
			}
			lv, lc := score(true)
			fv, fc := score(false)
			if fv > lv || (fv == lv && fc > lc) {
				t.Errorf("%s k=%d: fast (viol=%d cut=%d) worse than legacy (viol=%d cut=%d)",
					b.Name, k, fv, fc, lv, lc)
			} else {
				t.Logf("%s k=%d: fast (viol=%d cut=%d) vs legacy (viol=%d cut=%d)",
					b.Name, k, fv, fc, lv, lc)
			}
		}
	}
}
