package eval

import (
	"reflect"
	"testing"

	"mcpart/internal/machine"
)

// kwayMachines are the k>2, mostly asymmetric machines the generalized
// sweep must get right: uniform 4-cluster bus (canonicalization disabled
// but costs uniform), ring and mesh (non-uniform structural distances),
// NUMA (explicit matrix + asymmetric memories), and the mesh spelled as a
// matrix.
func kwayMachines() []*machine.Config {
	return []*machine.Config{
		machine.FourCluster(5),
		machine.RingFour(5),
		machine.Mesh4(5),
		machine.NUMA4(5),
		machine.AsMatrix(machine.Mesh4(5)),
	}
}

// TestDeltaSweepMatchesFullKWay is the base-k Gray-code engine's
// acceptance property: on 4-cluster machines of every topology the delta
// sweep must return an ExhaustiveResult reflect.DeepEqual to the full
// per-mask engine's, at both worker counts.
func TestDeltaSweepMatchesFullKWay(t *testing.T) {
	if testing.Short() {
		t.Skip("k-way exhaustive comparison is slow")
	}
	c := prepBench(t, "halftone")
	for _, cfg := range kwayMachines() {
		var first *ExhaustiveResult
		for _, j := range []int{1, parallelProbe} {
			delta, err := Exhaustive(c, cfg, Options{Workers: j}, 14)
			if err != nil {
				t.Fatalf("%s j%d delta: %v", cfg.Name, j, err)
			}
			full, err := Exhaustive(c, cfg, Options{Workers: j, NoDelta: true}, 14)
			if err != nil {
				t.Fatalf("%s j%d full: %v", cfg.Name, j, err)
			}
			if !reflect.DeepEqual(delta, full) {
				t.Fatalf("%s j%d: delta sweep differs from full engine", cfg.Name, j)
			}
			if first == nil {
				first = delta
			} else if !reflect.DeepEqual(first, delta) {
				t.Fatalf("%s: results differ across worker counts", cfg.Name)
			}
		}
	}
}

// TestBestMappingKWayOptimal pins branch and bound on k>2 asymmetric
// machines: the search must return the exhaustive sweep's exact optimum,
// achieved by its own mask.
func TestBestMappingKWayOptimal(t *testing.T) {
	if testing.Short() {
		t.Skip("k-way exhaustive verification is slow")
	}
	c := prepBench(t, "halftone")
	for _, cfg := range kwayMachines() {
		ex, err := Exhaustive(c, cfg, Options{}, 14)
		if err != nil {
			t.Fatalf("%s exhaustive: %v", cfg.Name, err)
		}
		best, err := BestMapping(c, cfg, Options{}, 14)
		if err != nil {
			t.Fatalf("%s best: %v", cfg.Name, err)
		}
		if best.Cycles != ex.Best {
			t.Fatalf("%s: BestMapping cycles %d, exhaustive best %d", cfg.Name, best.Cycles, ex.Best)
		}
		p := ex.Find(best.Mask)
		if p == nil || p.Cycles != best.Cycles {
			t.Fatalf("%s: mask %#x does not achieve the reported optimum", cfg.Name, best.Mask)
		}
		if best.NodesVisited <= 0 {
			t.Fatalf("%s: no DFS nodes reported", cfg.Name)
		}
	}
}

// TestKWayValidatorGreen runs the full scheme suite with the independent
// validator enabled on every k-way topology preset — the validator
// re-derives per-pair move costs on its own, so this pins the scheduler's
// topology-aware charging against a second implementation.
func TestKWayValidatorGreen(t *testing.T) {
	if testing.Short() {
		t.Skip("validated k-way matrix is slow")
	}
	cs := []*Compiled{prepBench(t, "halftone"), prepBench(t, "fir")}
	for _, cfg := range []*machine.Config{
		machine.Mesh4(5), machine.Mesh8(5), machine.Ring8(5), machine.NUMA4(5), machine.EightCluster(5),
	} {
		if _, err := RunMatrix(cs, cfg, Options{Workers: parallelProbe, Validate: true}); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

// TestKWayMoveCycleMonotonicity: stretching a topology's distances can
// never reduce the GDP cycle count on the same benchmark — mesh8 at
// latency 10 must not beat mesh8 at latency 5, and a ring (diameter 4)
// must not beat the uniform bus at the same base latency on the identical
// cluster count.
func TestKWayMoveCycleMonotonicity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-machine comparison is slow")
	}
	c := prepBench(t, "fir")
	cheap, err := RunGDP(c, machine.Mesh8(5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	dear, err := RunGDP(c, machine.Mesh8(10), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dear.Cycles < cheap.Cycles {
		t.Errorf("mesh8 lat10 (%d cycles) beats lat5 (%d)", dear.Cycles, cheap.Cycles)
	}
	bus, err := RunGDP(c, machine.EightCluster(5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ring, err := RunGDP(c, machine.Ring8(5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ring.Cycles < bus.Cycles {
		t.Errorf("ring8 (%d cycles) beats the uniform bus (%d) at equal base latency", ring.Cycles, bus.Cycles)
	}
}
