package eval

import (
	"reflect"
	"testing"

	"mcpart/internal/machine"
)

// TestMemoEquivalenceAllSchemes pins the tentpole determinism contract:
// every scheme returns reflect.DeepEqual-identical deterministic fields
// with the memoization cache enabled (default) and disabled (NoMemo) —
// including a warm cache, where prior runs of other schemes have filled
// shared entries.
func TestMemoEquivalenceAllSchemes(t *testing.T) {
	c := prepBench(t, "rawcaudio")
	for _, cfg := range []*machine.Config{machine.Paper2Cluster(5), machine.Heterogeneous2(5)} {
		memoed, err := RunAllSchemes(c, cfg, Options{})
		if err != nil {
			t.Fatal(err)
		}
		plain, err := RunAllSchemes(c, cfg, Options{NoMemo: true})
		if err != nil {
			t.Fatal(err)
		}
		pairs := []struct {
			scheme   string
			mem, raw *Result
		}{
			{"unified", memoed.Unified, plain.Unified},
			{"gdp", memoed.GDP, plain.GDP},
			{"pmax", memoed.PMax, plain.PMax},
			{"naive", memoed.Naive, plain.Naive},
		}
		for _, p := range pairs {
			if !reflect.DeepEqual(detFields(p.mem), detFields(p.raw)) {
				t.Errorf("%s %s: memoized result differs from cache-off run", cfg.Name, p.scheme)
			}
		}
	}
}

// TestMemoHitsAccounting pins the §4.5 accounting split: DetailedRuns
// counts logical partitioner runs regardless of caching, while the
// unlocked first pass shared by Unified, ProfileMax and Naïve hits the
// cache after its first computation.
func TestMemoHitsAccounting(t *testing.T) {
	c := prepBench(t, "fir") // fresh Compiled: cold cache
	cfg := machine.Paper2Cluster(5)
	opts := Options{Workers: 1}
	nf := len(c.Mod.Funcs)

	uni, err := RunUnified(c, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if uni.DetailedRuns != 1 || uni.MemoPartitionHits != 0 {
		t.Errorf("cold Unified: runs=%d hits=%d, want 1 logical run with 0 hits",
			uni.DetailedRuns, uni.MemoPartitionHits)
	}
	pm, err := RunProfileMax(c, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if pm.DetailedRuns != 2 {
		t.Errorf("ProfileMax logical runs = %d, want 2 (§4.5)", pm.DetailedRuns)
	}
	if pm.MemoPartitionHits < nf {
		t.Errorf("ProfileMax partition hits = %d, want >= %d (unlocked pass cached by Unified)",
			pm.MemoPartitionHits, nf)
	}
	nv, err := RunNaive(c, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if nv.DetailedRuns != 1 {
		t.Errorf("Naive logical runs = %d, want 1", nv.DetailedRuns)
	}
	if nv.MemoPartitionHits != nf {
		t.Errorf("Naive partition hits = %d, want %d (its only pass is the cached unlocked one)",
			nv.MemoPartitionHits, nf)
	}
	// A second Unified run is now fully cached, partition and schedule.
	uni2, err := RunUnified(c, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if uni2.MemoPartitionHits != nf || uni2.MemoScheduleHits != nf {
		t.Errorf("warm Unified hits = %d/%d, want %d/%d",
			uni2.MemoPartitionHits, uni2.MemoScheduleHits, nf, nf)
	}
	if uni2.Cycles != uni.Cycles || uni2.Moves != uni.Moves {
		t.Errorf("warm Unified cycles/moves (%d,%d) differ from cold (%d,%d)",
			uni2.Cycles, uni2.Moves, uni.Cycles, uni.Moves)
	}

	st := c.MemoStats()
	if st.Hits == 0 || st.Misses == 0 || st.Entries == 0 {
		t.Errorf("cache stats look dead: %+v", st)
	}
	// NoMemo runs must bypass the cache entirely.
	if _, err := RunUnified(c, cfg, Options{Workers: 1, NoMemo: true}); err != nil {
		t.Fatal(err)
	}
	if after := c.MemoStats(); after != st {
		t.Errorf("NoMemo run touched the cache: %+v -> %+v", st, after)
	}
}

// TestMemoCacheIsNotCorruptedByNaive pins the copy-on-hit contract:
// RunNaive mutates its assignment in place after the unlocked pass, so a
// subsequent Unified run served from the cache must still see the
// pristine unlocked partition.
func TestMemoCacheIsNotCorruptedByNaive(t *testing.T) {
	c := prepBench(t, "fir")
	cfg := machine.Paper2Cluster(5)
	opts := Options{Workers: 1}
	before, err := RunUnified(c, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunNaive(c, cfg, opts); err != nil {
		t.Fatal(err)
	}
	after, err := RunUnified(c, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(detFields(before), detFields(after)) {
		t.Error("Naive's in-place re-homing leaked into the cached unlocked partition")
	}
}

// TestHandBuiltCompiledHasNoCache pins the nil-cache passthrough: a
// Compiled built without Prepare evaluates correctly with no memoization.
func TestHandBuiltCompiledHasNoCache(t *testing.T) {
	p := prepBench(t, "fir")
	bare := &Compiled{Name: p.Name, Mod: p.Mod, Prof: p.Prof, Ret: p.Ret}
	cfg := machine.Paper2Cluster(5)
	r, err := RunUnified(bare, cfg, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.MemoPartitionHits != 0 || r.MemoScheduleHits != 0 {
		t.Error("nil cache must never report hits")
	}
	if s := bare.MemoStats(); s.Hits != 0 && s.Misses != 0 {
		t.Errorf("nil cache stats = %+v, want zero", s)
	}
	want, err := RunUnified(p, cfg, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles != want.Cycles || r.Moves != want.Moves {
		t.Errorf("bare Compiled cycles (%d,%d) differ from prepared (%d,%d)",
			r.Cycles, r.Moves, want.Cycles, want.Moves)
	}
}
