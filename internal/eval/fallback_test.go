package eval

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"mcpart/internal/machine"
	"mcpart/internal/parallel"
)

// injectOn returns an Options.Inject hook failing exactly the given
// (scheme, stage) cells.
func injectOn(cells ...[2]string) func(Scheme, string) error {
	return func(s Scheme, stage string) error {
		for _, c := range cells {
			if string(s) == c[0] && stage == c[1] {
				return fmt.Errorf("injected %s/%s failure", c[0], c[1])
			}
		}
		return nil
	}
}

func TestFallbackGDPToProfileMax(t *testing.T) {
	c := prepBench(t, "rawcaudio")
	cfg := machine.Paper2Cluster(5)
	br, err := RunAllSchemes(c, cfg, Options{
		Fallback: true,
		Inject:   injectOn([2]string{"GDP", "data"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if br.GDP.Degraded == nil {
		t.Fatal("GDP cell did not degrade")
	}
	if br.GDP.Degraded.From != SchemeGDP {
		t.Errorf("Degraded.From = %s", br.GDP.Degraded.From)
	}
	if !strings.Contains(br.GDP.Degraded.Err.Error(), "injected GDP/data failure") {
		t.Errorf("Degraded.Err = %v", br.GDP.Degraded.Err)
	}
	if br.GDP.Scheme != SchemeProfileMax {
		t.Errorf("fallback scheme = %s, want ProfileMax", br.GDP.Scheme)
	}
	// The substitute's numbers are the real Profile Max numbers.
	if br.GDP.Cycles != br.PMax.Cycles {
		t.Errorf("degraded cycles %d != ProfileMax cycles %d", br.GDP.Cycles, br.PMax.Cycles)
	}
	for _, r := range []*Result{br.Unified, br.PMax, br.Naive} {
		if r.Degraded != nil {
			t.Errorf("%s degraded unexpectedly", r.Scheme)
		}
	}
}

func TestFallbackChainsToNaive(t *testing.T) {
	c := prepBench(t, "rawcaudio")
	cfg := machine.Paper2Cluster(5)
	br, err := RunAllSchemes(c, cfg, Options{
		Fallback: true,
		Inject: injectOn(
			[2]string{"GDP", "data"},
			[2]string{"ProfileMax", "partition"},
		),
	})
	if err != nil {
		t.Fatal(err)
	}
	if br.GDP.Degraded == nil || br.GDP.Scheme != SchemeNaive {
		t.Fatalf("GDP cell = %s (degraded %v), want chained fallback to Naive",
			br.GDP.Scheme, br.GDP.Degraded)
	}
	// The original cause is kept through the chain, not the intermediate's.
	if !strings.Contains(br.GDP.Degraded.Err.Error(), "GDP/data") {
		t.Errorf("Degraded.Err = %v, want the GDP failure", br.GDP.Degraded.Err)
	}
	// The ProfileMax cell itself degrades to Naive too.
	if br.PMax.Degraded == nil || br.PMax.Scheme != SchemeNaive {
		t.Errorf("PMax cell = %s (degraded %v)", br.PMax.Scheme, br.PMax.Degraded)
	}
}

// TestFallbackOnValidationFailure: a result the independent validator
// rejects counts as a scheme failure and triggers degradation.
func TestFallbackOnValidationFailure(t *testing.T) {
	c := prepBench(t, "rawcaudio")
	cfg := machine.Paper2Cluster(5)
	br, err := RunAllSchemes(c, cfg, Options{
		Validate: true,
		Fallback: true,
		Inject:   injectOn([2]string{"GDP", "validate"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if br.GDP.Degraded == nil || br.GDP.Scheme != SchemeProfileMax {
		t.Fatalf("GDP cell = %s (degraded %v), want validation-triggered fallback",
			br.GDP.Scheme, br.GDP.Degraded)
	}
}

func TestNoFallbackAttributesCell(t *testing.T) {
	c := prepBench(t, "rawcaudio")
	cfg := machine.Paper2Cluster(5)
	_, err := RunAllSchemes(c, cfg, Options{
		Inject: injectOn([2]string{"GDP", "data"}),
	})
	if err == nil {
		t.Fatal("want error without Fallback")
	}
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("error = %T %v, want *CellError", err, err)
	}
	if ce.Bench != "rawcaudio" || ce.Scheme != SchemeGDP || ce.HasMask {
		t.Errorf("CellError = %+v", ce)
	}
	if got := ce.Error(); !strings.Contains(got, "rawcaudio gdp:") {
		t.Errorf("CellError.Error() = %q", got)
	}
}

// panicOn is an Inject hook that panics instead of failing, exercising
// containment rather than error plumbing.
func panicOn(scheme Scheme, stage string) func(Scheme, string) error {
	return func(s Scheme, st string) error {
		if s == scheme && st == stage {
			panic(fmt.Sprintf("synthetic %s/%s panic", scheme, stage))
		}
		return nil
	}
}

func TestPanicContainedIntoFallback(t *testing.T) {
	c := prepBench(t, "rawcaudio")
	cfg := machine.Paper2Cluster(5)
	br, err := RunAllSchemes(c, cfg, Options{
		Fallback: true,
		Inject:   panicOn(SchemeGDP, "partition"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if br.GDP.Degraded == nil || br.GDP.Scheme != SchemeProfileMax {
		t.Fatalf("GDP cell = %s (degraded %v), want panic-triggered fallback",
			br.GDP.Scheme, br.GDP.Degraded)
	}
	var pe *parallel.PanicError
	if !errors.As(br.GDP.Degraded.Err, &pe) {
		t.Fatalf("Degraded.Err = %v, want *parallel.PanicError", br.GDP.Degraded.Err)
	}
	if pe.Stage != "GDP" {
		t.Errorf("PanicError.Stage = %q", pe.Stage)
	}
}

func TestPanicContainedWithoutFallback(t *testing.T) {
	c := prepBench(t, "rawcaudio")
	cfg := machine.Paper2Cluster(5)
	_, err := RunAllSchemes(c, cfg, Options{
		Inject: panicOn(SchemeGDP, "sched"),
	})
	if err == nil {
		t.Fatal("want error")
	}
	var pe *parallel.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error = %v, want to unwrap to *parallel.PanicError", err)
	}
	var ce *CellError
	if !errors.As(err, &ce) || ce.Scheme != SchemeGDP {
		t.Fatalf("error = %v, want GDP cell attribution", err)
	}
	if len(pe.Stack) == 0 {
		t.Error("panic stack not captured")
	}
}

// TestFallbackExhaustedReturnsCause: when every scheme in the chain fails,
// the caller gets the original scheme's error, not the last fallback's.
func TestFallbackExhaustedReturnsCause(t *testing.T) {
	c := prepBench(t, "rawcaudio")
	cfg := machine.Paper2Cluster(5)
	_, err := RunAllSchemes(c, cfg, Options{
		Fallback: true,
		Inject: injectOn(
			[2]string{"GDP", "data"},
			[2]string{"ProfileMax", "partition"},
			[2]string{"Naive", "partition"},
		),
	})
	if err == nil {
		t.Fatal("want error when the whole chain fails")
	}
	if !strings.Contains(err.Error(), "GDP/data") {
		t.Errorf("error = %v, want the original GDP cause", err)
	}
}

func TestMatrixCancellation(t *testing.T) {
	c := prepBench(t, "rawcaudio")
	cfg := machine.Paper2Cluster(5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	brs, err := RunMatrixCtx(ctx, []*Compiled{c}, cfg, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if brs != nil {
		t.Error("partial results returned after cancellation")
	}
}

// TestCancellationNeverDegrades: a canceled run must not be mistaken for a
// scheme failure and silently handed to a fallback scheme.
func TestCancellationNeverDegrades(t *testing.T) {
	c := prepBench(t, "rawcaudio")
	cfg := machine.Paper2Cluster(5)
	ctx, cancel := context.WithCancel(context.Background())
	opts := Options{Fallback: true}
	// Cancel from inside the first pipeline stage: the cell is mid-flight,
	// exactly when a naive fallback loop would retry.
	opts.Inject = func(s Scheme, stage string) error {
		if s == SchemeGDP && stage == "data" {
			cancel()
			return fmt.Errorf("failing after cancel")
		}
		return nil
	}
	_, err := RunSchemeCtx(ctx, c, cfg, SchemeGDP, opts)
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "failing after cancel") {
		t.Errorf("error = %v, want original cause (no fallback result)", err)
	}
}

func TestExhaustiveCancellation(t *testing.T) {
	c := prepBench(t, "fir")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ExhaustiveCtx(ctx, c, machine.Paper2Cluster(5), Options{}, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
}

func TestPrepareCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := PrepareAllCtx(ctx, []BenchSpec{{Name: "x", Src: "func main() int { return 0; }"}}, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
}

// TestExhaustiveCellAttribution: a failure deep in the mask sweep names the
// benchmark and the exact mask.
func TestExhaustiveCellAttribution(t *testing.T) {
	c := prepBench(t, "fir")
	opts := Options{}
	opts.Inject = func(s Scheme, stage string) error {
		if s == SchemeFixed && stage == "sched" {
			return fmt.Errorf("injected sweep failure")
		}
		return nil
	}
	_, err := Exhaustive(c, machine.Paper2Cluster(5), opts, 0)
	if err == nil {
		t.Fatal("want error")
	}
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("error = %T %v, want *CellError", err, err)
	}
	if !ce.HasMask || ce.Scheme != SchemeFixed || ce.Bench != "fir" {
		t.Errorf("CellError = %+v", ce)
	}
	if !strings.Contains(ce.Error(), "mask") {
		t.Errorf("CellError.Error() = %q", ce.Error())
	}
}
