package eval

import (
	"testing"

	"mcpart/internal/bench"
	"mcpart/internal/machine"
	"mcpart/internal/progen"
)

// TestBestMappingOptimal is the branch-and-bound acceptance property: on
// every benchmark in the suite the search returns a mask whose cycle count
// equals the exhaustive sweep's Best, and the mask's own point confirms it
// (the optimum is achieved, not just matched numerically).
func TestBestMappingOptimal(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive verification is slow")
	}
	for _, b := range bench.All() {
		c := prepBench(t, b.Name)
		for _, lat := range []int{1, 5} {
			cfg := machine.Paper2Cluster(lat)
			ex, err := Exhaustive(c, cfg, Options{}, 16)
			if err != nil {
				t.Fatalf("%s lat%d exhaustive: %v", b.Name, lat, err)
			}
			best, err := BestMapping(c, cfg, Options{}, 0)
			if err != nil {
				t.Fatalf("%s lat%d best: %v", b.Name, lat, err)
			}
			if best.Cycles != ex.Best {
				t.Fatalf("%s lat%d: BestMapping cycles %d, exhaustive best %d",
					b.Name, lat, best.Cycles, ex.Best)
			}
			p := ex.Find(best.Mask)
			if p == nil || p.Cycles != best.Cycles {
				t.Fatalf("%s lat%d: mask %#x does not achieve the reported optimum", b.Name, lat, best.Mask)
			}
			if best.NodesVisited <= 0 {
				t.Fatalf("%s lat%d: no DFS nodes reported", b.Name, lat)
			}
		}
	}
}

// TestBestMappingAsymmetric covers the unpinned search (no canonical
// object-0 branch cut) on a machine that fails the symmetry predicate.
func TestBestMappingAsymmetric(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive verification is slow")
	}
	c := prepBench(t, "fir")
	cfg := machine.Heterogeneous2(5)
	ex, err := Exhaustive(c, cfg, Options{}, 14)
	if err != nil {
		t.Fatal(err)
	}
	best, err := BestMapping(c, cfg, Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if best.Cycles != ex.Best {
		t.Fatalf("BestMapping cycles %d, exhaustive best %d", best.Cycles, ex.Best)
	}
	if p := ex.Find(best.Mask); p == nil || p.Cycles != best.Cycles {
		t.Fatalf("mask %#x does not achieve the reported optimum", best.Mask)
	}
}

// TestBestMappingGenerated cross-checks the search against the sweep on
// generated programs whose object counts sit at the sweep's practical edge,
// then runs an instance past the sweep cap to pin that the search still
// completes and prunes.
func TestBestMappingGenerated(t *testing.T) {
	if testing.Short() {
		t.Skip("generated-program verification is slow")
	}
	cfg := machine.Paper2Cluster(5)
	for _, seed := range []int64{1, 7} {
		src := progen.Generate(seed, progen.Options{MaxGlobals: 9})
		c, err := Prepare("progen", src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ex, err := Exhaustive(c, cfg, Options{}, 10)
		if err != nil {
			t.Fatalf("seed %d exhaustive: %v", seed, err)
		}
		best, err := BestMapping(c, cfg, Options{}, 0)
		if err != nil {
			t.Fatalf("seed %d best: %v", seed, err)
		}
		if best.Cycles != ex.Best {
			t.Fatalf("seed %d: BestMapping cycles %d, exhaustive best %d", seed, best.Cycles, ex.Best)
		}
	}
}

// TestBestMappingCap pins the object-count guard.
func TestBestMappingCap(t *testing.T) {
	c := prepBench(t, "fir")
	cfg := machine.Paper2Cluster(5)
	if _, err := BestMapping(c, cfg, Options{}, 1); err == nil {
		t.Fatal("expected object-cap error")
	}
}
