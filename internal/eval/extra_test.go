package eval

import (
	"testing"

	"mcpart/internal/machine"
)

func TestRoundRobinBaseline(t *testing.T) {
	c := prepBench(t, "halftone")
	cfg := machine.Paper2Cluster(5)
	r, err := RunRoundRobin(c, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles <= 0 {
		t.Fatal("no cycles")
	}
	// Round-robin alternates clusters by object ID.
	for i, cl := range r.DataMap {
		if cl != i%2 {
			t.Fatalf("object %d on cluster %d, want %d", i, cl, i%2)
		}
	}
}

func TestAffinityBaseline(t *testing.T) {
	c := prepBench(t, "rawcaudio")
	cfg := machine.Paper2Cluster(5)
	r, err := RunAffinity(c, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.DataMap.Validate(c.Mod, 2); err != nil {
		t.Fatal(err)
	}
	// Affinity respects the byte-balance threshold like ProfileMax: the
	// two big sample buffers must not share a cluster.
	var pcm, code int = -1, -1
	for _, o := range c.Mod.Objects {
		switch o.Name {
		case "malloc@main:0":
			pcm = o.ID
		case "malloc@main:1":
			code = o.ID
		}
	}
	if pcm >= 0 && code >= 0 && r.DataMap[pcm] == r.DataMap[code] {
		t.Errorf("affinity colocated both 9.6KB buffers: %v", r.DataMap)
	}
}

func TestExtraBaselinesNoWorseThanAbsurd(t *testing.T) {
	// Sanity ordering on one benchmark: the informed schemes should not
	// lose to blind round-robin by a large margin.
	c := prepBench(t, "fir")
	cfg := machine.Paper2Cluster(5)
	g, err := RunGDP(c, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := RunRoundRobin(c, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if float64(g.Cycles) > 1.2*float64(rr.Cycles) {
		t.Errorf("GDP (%d) much worse than round-robin (%d)", g.Cycles, rr.Cycles)
	}
}
