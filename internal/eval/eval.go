// Package eval implements the paper's experimental methodology (§4): the
// four object/computation partitioning schemes of Table 1 — GDP, Profile
// Max, Naïve, and Unified memory — plus the metrics behind every figure:
// relative performance (Figures 7 and 8), cycle increase of data-incognizant
// partitioning (Figure 2), dynamic intercluster move counts (Figure 10),
// the exhaustive data-mapping search (Figure 9), and detailed-partitioner
// run counts and times (§4.5).
package eval

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"mcpart/internal/bytecode"
	"mcpart/internal/check"
	"mcpart/internal/defaults"
	"mcpart/internal/gdp"
	"mcpart/internal/interp"
	"mcpart/internal/ir"
	"mcpart/internal/machine"
	"mcpart/internal/mclang"
	"mcpart/internal/memo"
	"mcpart/internal/obs"
	"mcpart/internal/opt"
	"mcpart/internal/pointsto"
	"mcpart/internal/rhop"
	"mcpart/internal/sched"
	"mcpart/internal/store"
)

// Scheme names a partitioning strategy from Table 1.
type Scheme string

// The schemes of Table 1.
const (
	SchemeUnified    Scheme = "Unified"
	SchemeGDP        Scheme = "GDP"
	SchemeProfileMax Scheme = "ProfileMax"
	SchemeNaive      Scheme = "Naive"
	// SchemeFixed is a caller-supplied data mapping (RunWithDataMap); it
	// appears in CellError attribution for exhaustive-search masks, never
	// in the scheme matrix.
	SchemeFixed Scheme = "Fixed"
)

// Compiled is a benchmark after front end, points-to analysis and
// profiling — the common input to every scheme.
type Compiled struct {
	Name string
	Mod  *ir.Module
	Prof *interp.Profile
	Ret  int64 // main's checksum, for validation

	// memo caches per-function partition, lock, and schedule results
	// across scheme runs (see internal/memo and DESIGN.md §7). The module
	// and profile are immutable after Prepare, so results keyed by the
	// remaining inputs — the function's projected lock signature, the
	// machine, and the partitioner options — are valid for the lifetime
	// of the Compiled. nil (hand-built Compiled values) disables caching.
	memo *memo.Cache
	// store is the persistent artifact tier layered under memo when a run
	// names a cache directory (Options.CacheDir); storeOnce makes the
	// attachment first-wins. See store.go and DESIGN.md §12.
	store     *store.Store
	storeOnce sync.Once
	// touched[f] is the sorted union of object IDs in the MayAccess sets
	// of f's memory operations: the only objects whose data-map homes can
	// influence f's locks, and therefore its partition. A function
	// touching t of the module's n objects has at most 2^t distinct lock
	// signatures, which is what collapses the 2^n exhaustive search.
	touched map[*ir.Func][]int
}

// EnableMemo attaches a fresh memoization cache (Prepare does this
// automatically; the method exists for hand-built Compiled values in
// tests).
func (c *Compiled) EnableMemo() {
	c.memo = memo.New(0)
	c.touched = make(map[*ir.Func][]int, len(c.Mod.Funcs))
	for _, f := range c.Mod.Funcs {
		c.touched[f] = rhop.TouchedObjects(f)
	}
}

// MemoStats snapshots the memoization cache counters (zero when caching is
// disabled). Hit counts depend on evaluation order and are therefore not
// deterministic across worker counts; cached values always are.
func (c *Compiled) MemoStats() memo.Stats { return c.memo.Stats() }

// ShrinkMemo evicts least-recently-used memoization entries until at most n
// remain (a no-op when caching is disabled). It is the memory-pressure
// release valve for long-lived Compiled values: results are unaffected —
// evicted entries recompute (or reload from the disk tier) on next use.
func (c *Compiled) ShrinkMemo(n int) { c.memo.Shrink(n) }

// SetMemoCapacity rebounds the memoization cache (non-positive selects the
// default capacity), evicting immediately if the cache is over the new
// bound.
func (c *Compiled) SetMemoCapacity(n int) { c.memo.SetCapacity(n) }

// DefaultUnroll is the loop unrolling factor Prepare applies, matching the
// aggressive unrolling of the paper's VLIW toolchain (it creates the
// cross-iteration ILP that makes a clustered machine worth filling).
const DefaultUnroll = 4

// Prepare compiles src with the default unroll factor, runs points-to
// analysis, and profiles one execution.
func Prepare(name, src string) (*Compiled, error) {
	return PrepareUnrolled(name, src, DefaultUnroll)
}

// PrepareUnrolled is Prepare with an explicit unroll factor (1 disables).
func PrepareUnrolled(name, src string, unroll int) (*Compiled, error) {
	return PrepareFull(name, src, unroll, true)
}

// PrepareCtx is Prepare with a cancellation context: compilation is skipped
// if ctx is already done, and a ctx deadline bounds the profiling
// run's wall clock.
func PrepareCtx(ctx context.Context, name, src string) (*Compiled, error) {
	return PrepareFullCtx(ctx, name, src, DefaultUnroll, true)
}

// PrepareOpts is PrepareCtx with explicit profiling knobs (MaxSteps, the
// LegacyInterp engine switch, and the CacheDir/CacheMaxBytes disk-cache
// knobs — a cached profile replaces the profiling execution; other
// Options fields are ignored here).
func PrepareOpts(ctx context.Context, name, src string, opts Options) (*Compiled, error) {
	return PrepareFullOpts(ctx, name, src, DefaultUnroll, true, opts)
}

// PrepareFull exposes every front-end knob: the unroll factor and whether
// the classical optimizer (fold/copy-prop/CSE/DCE) runs before analysis.
func PrepareFull(name, src string, unroll int, optimize bool) (*Compiled, error) {
	return PrepareFullCtx(context.Background(), name, src, unroll, optimize)
}

// PrepareFullCtx is PrepareFull under a context.
func PrepareFullCtx(ctx context.Context, name, src string, unroll int, optimize bool) (*Compiled, error) {
	return PrepareFullOpts(ctx, name, src, unroll, optimize, Options{})
}

// PrepareFullOpts is the full Prepare implementation: front end, points-to
// analysis, and one profiling execution. The profiler is the bytecode VM
// (internal/bytecode) unless opts.LegacyInterp selects the tree-walking
// interpreter; both produce identical checksums and Profiles, and both
// charge the same step/byte/deadline budgets.
func PrepareFullOpts(ctx context.Context, name, src string, unroll int, optimize bool, opts Options) (*Compiled, error) {
	iopts := interp.Options{MaxSteps: opts.maxSteps(), MaxBytes: opts.MaxBytes}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("eval: %s: %w", name, err)
		}
		if dl, ok := ctx.Deadline(); ok {
			iopts.Deadline = dl
		}
	}
	o := obs.From(ctx).Named("prepare")
	psp := o.Span(name)
	po := psp.Observer()
	sp := po.Span("parse")
	mod, err := mclang.CompileUnrolled(src, name, unroll)
	sp.End()
	if err != nil {
		psp.End()
		return nil, fmt.Errorf("eval: %s: %w", name, err)
	}
	if optimize {
		opt.Optimize(mod)
	}
	sp = po.Span("pointsto")
	pointsto.Analyze(mod)
	sp.End()
	// Persistent profile cache: a stored run for this exact module whose
	// step count fits the current budget replaces the execution entirely
	// (the interpreter is deterministic, so the stored Profile and checksum
	// are the ones this run would produce). See store.go.
	var pstore *store.Store
	var pprefix string
	// A byte budget disables the cached-profile shortcut: stored profiles
	// record steps but not peak heap, so serving one could mask the byte
	// BudgetError a cold run would raise (determinism across cache states).
	if opts.CacheDir != "" && opts.MaxBytes <= 0 {
		if st, serr := store.OpenShared(opts.CacheDir, store.Options{MaxBytes: opts.CacheMaxBytes}); serr == nil {
			st.SetObserver(po)
			pstore, pprefix = st, keyPrefix(ModuleHash(mod))
			if prof, ret, ok := cachedProfile(st, pprefix, mod, iopts.MaxSteps); ok {
				psp.End()
				o.Counter("prepare_programs").Add(1)
				c := &Compiled{Name: name, Mod: mod, Prof: prof, Ret: ret}
				c.EnableMemo()
				_ = c.attachStore(opts.CacheDir, opts.CacheMaxBytes, po)
				return c, nil
			}
		}
	}
	sp = po.Span("profile")
	var v interp.Value
	var prof *interp.Profile
	if opts.LegacyInterp {
		in := interp.New(mod, iopts)
		v, err = in.RunMain()
		prof = in.Profile()
		// The tree walker executes one op per dispatch by definition, so
		// its counters mirror the VM's exactly.
		po.Counter("interp_steps").Add(prof.Steps)
		po.Counter("interp_dispatches").Add(prof.Steps)
		po.Counter("interp_alloc_bytes").Add(in.AllocBytes())
	} else {
		var prog *bytecode.Program
		prog, err = bytecode.Compile(mod)
		if err != nil {
			sp.End()
			psp.End()
			return nil, fmt.Errorf("eval: %s: %w", name, err)
		}
		vm := bytecode.NewVM(prog, iopts)
		vm.SetObserver(po)
		v, err = vm.RunMain()
		prof = vm.Profile()
	}
	sp.End()
	psp.End()
	o.Counter("prepare_programs").Add(1)
	if err != nil {
		return nil, fmt.Errorf("eval: %s: profile run: %w", name, err)
	}
	c := &Compiled{Name: name, Mod: mod, Prof: prof, Ret: v.I}
	c.EnableMemo()
	if pstore != nil {
		putProfile(pstore, pprefix, mod, prof, v.I)
		_ = c.attachStore(opts.CacheDir, opts.CacheMaxBytes, po)
	}
	return c, nil
}

// Result is one scheme's outcome on one benchmark and machine.
type Result struct {
	Scheme  Scheme
	Cycles  int64
	Moves   int64
	DataMap gdp.DataMap        // nil for Unified
	Assign  map[*ir.Func][]int // final computation partition
	Locks   map[*ir.Func]rhop.Locks

	// Groups are the data partitioner's indivisible must-alias object
	// merge groups (GDP only; nil elsewhere). The validator's capacity
	// bound allows one unit of slack per cluster, because a merged group
	// has to live somewhere whole.
	Groups [][]int

	// DetailedRuns counts invocations of the detailed computation
	// partitioner (§4.5: ProfileMax needs two, GDP and Naïve one each).
	// The count is of logical runs — a run that is served entirely from
	// the memoization cache still counts, preserving the paper's
	// accounting; the hit counters below record the caching separately.
	DetailedRuns int
	// PartitionTime is the wall time spent in those invocations.
	PartitionTime time.Duration

	// Degraded is non-nil when a matrix runner substituted a fallback
	// scheme for the requested one (Options.Fallback): Scheme then names
	// the scheme that actually produced these numbers and Degraded records
	// which scheme was asked for and why it failed.
	Degraded *Degradation

	// MemoPartitionHits and MemoScheduleHits count the per-function
	// partition and schedule-cost computations served from the
	// memoization cache during this scheme run. Like PartitionTime they
	// are performance telemetry, not results: under a parallel worker
	// pool the counts vary with evaluation order, so determinism
	// comparisons must exclude them (see detFields in the tests).
	MemoPartitionHits int
	MemoScheduleHits  int

	// Metrics is the snapshot of this run's scoped metric registry —
	// every counter the pipeline recorded while producing this result
	// (eval_cycles, fm_moves, sched_bus_busy_cycles, ...). Nil unless
	// Options.Observer was set. Like the memo hit counters it is
	// telemetry: memo-dependent values vary with evaluation order.
	Metrics obs.Snapshot
}

// Options bundles the per-scheme knobs.
type Options struct {
	GDP  gdp.Options
	RHOP rhop.Options
	// ProfileMaxTol is the memory balance threshold of the Profile Max
	// greedy assignment (default 0.10, matching GDP's).
	ProfileMaxTol float64
	// MaxSteps bounds the profiling run in Prepare (the usual sentinel:
	// non-positive means the default of 10 million steps). Programs that
	// exceed it fail Prepare with a typed *interp.BudgetError.
	MaxSteps int64
	// MaxBytes bounds the heap the profiling run may allocate (global
	// storage plus every malloc); exceeding it fails Prepare with a typed
	// *interp.BudgetError. Non-positive means no byte budget. A per-request
	// byte budget is the daemon's containment against allocation bombs.
	MaxBytes int64
	// LegacyInterp routes Prepare's profiling run through the tree-walking
	// interpreter instead of the bytecode VM (ablation and differential
	// debugging; see -legacyinterp). Checksum and Profile are identical
	// either way — the VM is differentially tested against the tree walker
	// — so only wall time changes.
	LegacyInterp bool
	// Workers bounds the evaluation worker pool used by Exhaustive,
	// RunAllSchemes and RunMatrix. Zero or negative selects
	// runtime.GOMAXPROCS(0) — the repository-wide sentinel convention
	// (see parallel.Workers). Results are identical for every worker
	// count; only wall time changes.
	Workers int
	// CacheDir names a directory holding the persistent artifact store
	// (internal/store): partition, lock, schedule, and profile results keyed
	// by content hashes survive process restarts there. Empty (the default)
	// disables the disk tier. The cache changes wall time and telemetry
	// counters only — results are byte-identical across {no cache, cold
	// cache, warm cache, corrupt cache}.
	CacheDir string
	// CacheMaxBytes bounds the artifact log's size; once full, new writes
	// are shed (reads keep working). Non-positive selects
	// store.DefaultMaxBytes.
	CacheMaxBytes int64
	// NoMemo disables the per-Compiled memoization cache for this run
	// (ablation / benchmarking). Results are identical either way; only
	// wall time and the MemoHits counters change.
	NoMemo bool
	// NoDelta makes Exhaustive evaluate every mask through the full
	// per-mask pipeline (RunWithDataMap per point) instead of the
	// Gray-code delta sweep. Point values are byte-identical either way —
	// both paths sum the same memoized per-function results — so this is
	// the A/B keep for differential tests and the sweep benchmarks.
	NoDelta bool
	// NoSymPrune makes Exhaustive evaluate every mask instead of half the
	// space on cluster-symmetric machines. Point values are identical
	// either way: symmetric machines canonicalize each mask to its
	// even-complement representative before evaluation in both modes.
	NoSymPrune bool
	// LegacyPartition routes every graph bisection (GDP's object graph and
	// RHOP's op graphs) through the legacy partitioner path instead of the
	// CSR + gain-bucket FM fast path (ablation; see -legacypartition).
	LegacyPartition bool
	// Validate runs the independent schedule-level validator
	// (internal/check) over every scheme result before it is returned; an
	// invalid result becomes an error (and, under Fallback, triggers the
	// degradation chain). The validator re-derives homes, §3.4 locks, FU
	// and bus occupancy, ready times, and the cycle accounting from first
	// principles.
	Validate bool
	// Fallback enables graceful scheme degradation in the matrix runners:
	// a GDP cell that fails or validates invalid falls back to ProfileMax,
	// then Naive (ProfileMax falls back to Naive), recording the
	// substitution in Result.Degraded instead of failing the whole matrix.
	Fallback bool
	// Observer receives the run's observability stream: hierarchical
	// spans for every pipeline phase and a typed metric registry (see
	// internal/obs and DESIGN.md §10). Each scheme run records into a
	// scoped child registry whose snapshot lands in Result.Metrics; the
	// totals are then folded back into this observer's registry twice —
	// once unlabeled and once labeled `bench="...",scheme="..."`. Nil
	// disables observability at zero cost on the hot paths.
	Observer *obs.Observer
	// Inject, when non-nil, is consulted at the start of each pipeline
	// stage — "data" (GDP's object partitioning), "partition", "sched",
	// "validate" — with the scheme under evaluation; a non-nil return
	// aborts that stage with the returned error. Fault injection for the
	// degradation and containment tests.
	Inject func(scheme Scheme, stage string) error
	// ctx carries the run's cancellation context; it is attached by the
	// *Ctx entry points (RunSchemeCtx, RunMatrixCtx, ExhaustiveCtx) and
	// checked between per-function pipeline steps.
	ctx context.Context
}

// Degradation records that a result was produced by a fallback scheme
// after the requested one failed or was invalid.
type Degradation struct {
	// From is the scheme originally requested.
	From Scheme
	// Err is the failure that triggered the fallback (possibly a
	// *parallel.PanicError or a *check.Error).
	Err error
}

// inject consults the fault-injection hook for a pipeline stage.
func (o Options) inject(s Scheme, stage string) error {
	if o.Inject == nil {
		return nil
	}
	return o.Inject(s, stage)
}

// ctxErr reports the attached context's cancellation state (nil when no
// context was attached).
func (o Options) ctxErr() error {
	if o.ctx == nil {
		return nil
	}
	return o.ctx.Err()
}

// validateResult runs the independent validator over a finished scheme
// result when Options.Validate is set. Capacity is enforced only for GDP:
// it is the one scheme that promises balanced homes (Profile Max's
// threshold rule deliberately overflows, Naïve ignores balance).
func (o Options) validateResult(c *Compiled, cfg *machine.Config, res *Result) error {
	if !o.Validate {
		return nil
	}
	if err := o.inject(res.Scheme, "validate"); err != nil {
		return fmt.Errorf("validate: %w", err)
	}
	sp := o.Observer.Span("validate")
	defer sp.End()
	o.Observer.Counter("eval_validations").Add(1)
	err := check.Validate(c.Mod, c.Prof, cfg, check.Result{
		Scheme:        string(res.Scheme),
		DataMap:       res.DataMap,
		Assign:        res.Assign,
		Locks:         res.Locks,
		Cycles:        res.Cycles,
		Moves:         res.Moves,
		Groups:        res.Groups,
		CheckCapacity: res.Scheme == SchemeGDP,
	}, check.Options{})
	if err != nil {
		var ce *check.Error
		if errors.As(err, &ce) {
			o.Observer.Counter("eval_validation_violations").Add(int64(len(ce.Violations)))
		}
	}
	return err
}

func (o Options) pmaxTol() float64 { return defaults.Float(o.ProfileMaxTol, 0.10) }

func (o Options) maxSteps() int64 { return defaults.Int64(o.MaxSteps, 10_000_000) }

// rhopOpts returns o.RHOP with the run-wide partitioner knobs applied:
// LegacyPartition is sticky (either level can set it) and the evaluation
// worker budget doubles as the partitioner's multi-start fan-out unless
// RHOP names its own.
func (o Options) rhopOpts() rhop.Options {
	r := o.RHOP
	r.LegacyPartition = r.LegacyPartition || o.LegacyPartition
	if r.Workers == 0 {
		r.Workers = o.Workers
	}
	if r.Obs == nil {
		r.Obs = o.Observer
	}
	return r
}

// gdpOpts applies the same run-wide knobs to o.GDP.
func (o Options) gdpOpts() gdp.Options {
	g := o.GDP
	g.LegacyPartition = g.LegacyPartition || o.LegacyPartition
	if g.Workers == 0 {
		g.Workers = o.Workers
	}
	if g.Obs == nil {
		g.Obs = o.Observer
	}
	return g
}

// noopDone is beginRun's completion callback when no observer is attached;
// a shared instance keeps the unobserved path allocation-free.
var noopDone = func(*Result, error) {}

// beginRun opens one scheme run's observability scope: a span named after
// the scheme (attributed with the benchmark), and a scoped child registry
// that collects only this run's metrics. The returned Options carry the
// scoped observer so every downstream layer (gdp, rhop, sched, validate)
// records into it; the returned done callback — which the RunX functions
// defer — stamps the headline counters, snapshots the scoped registry into
// Result.Metrics, and folds the totals back into the parent registry both
// unlabeled and labeled `bench="...",scheme="..."`. With a nil observer
// everything here is a no-op.
func beginRun(c *Compiled, s Scheme, opts Options) (Options, func(*Result, error)) {
	parent := opts.Observer
	if opts.useMemo(c) && opts.CacheDir != "" {
		// A failed open degrades to memory-only caching: a broken cache
		// directory must never break an evaluation. The CLI tools open the
		// store up front to surface such errors to the user.
		_ = c.attachStore(opts.CacheDir, opts.CacheMaxBytes, parent)
	}
	if parent == nil {
		return opts, noopDone
	}
	// The memoization cache is shared across every run over this Compiled,
	// so its counters belong to the parent (global) registry, not the
	// scoped per-run one.
	if opts.useMemo(c) {
		c.memo.SetObserver(parent)
	}
	sp := parent.Span(string(s), "bench", c.Name)
	o := parent.Scoped().Named(string(s))
	opts.Observer = o
	done := func(r *Result, err error) {
		if err != nil {
			sp.SetAttr("error", "true")
		}
		if r != nil {
			reg := o.Registry()
			reg.Counter("eval_cycles").Add(r.Cycles)
			reg.Counter("eval_moves").Add(r.Moves)
			reg.Counter("eval_detailed_runs").Add(int64(r.DetailedRuns))
			reg.Counter("memo_partition_hits").Add(int64(r.MemoPartitionHits))
			reg.Counter("memo_schedule_hits").Add(int64(r.MemoScheduleHits))
			snap := reg.Snapshot()
			r.Metrics = snap
			parent.Registry().Import(snap, "")
			parent.Registry().Import(snap, `bench="`+c.Name+`",scheme="`+string(r.Scheme)+`"`)
		}
		sp.End()
	}
	return opts, done
}

// useMemo reports whether this run should consult c's memoization cache.
func (o Options) useMemo(c *Compiled) bool { return !o.NoMemo && c.memo != nil }

// lockSigKey appends f's projected lock signature under dm: the home
// cluster of each object f's memory operations may touch, in sorted object
// order. Two data maps agreeing on this projection produce identical locks
// for f — and therefore identical partitions — no matter how they map the
// module's other objects.
func lockSigKey(k *memo.Key, c *Compiled, f *ir.Func, dm gdp.DataMap) *memo.Key {
	return k.Proj(dm, c.touched[f])
}

// computeLocks is gdp.ComputeLocks with per-function lock-signature
// caching. Every caller gets private copies of the lock maps (schemes and
// callers may hold them in Results while other runs share the cache).
func computeLocks(c *Compiled, dm gdp.DataMap, opts Options) map[*ir.Func]rhop.Locks {
	if !opts.useMemo(c) {
		return gdp.ComputeLocks(c.Mod, dm, c.Prof)
	}
	out := make(map[*ir.Func]rhop.Locks, len(c.Mod.Funcs))
	var full map[*ir.Func]rhop.Locks
	for _, f := range c.Mod.Funcs {
		key := lockSigKey(memo.NewKey("locks").Str(f.Name), c, f, dm).String()
		v, _, _ := c.memo.DoCodec(key, lockCodec{}, func() (any, error) {
			if full == nil {
				full = gdp.ComputeLocks(c.Mod, dm, c.Prof)
			}
			return full[f], nil
		})
		master := v.(rhop.Locks)
		cp := make(rhop.Locks, len(master))
		for id, cl := range master {
			cp[id] = cl
		}
		out[f] = cp
	}
	return out
}

// partitionKey identifies one per-function detailed-partitioner result:
// the function, its lock configuration (by projected data-map signature
// when one is available, by explicit lock pairs otherwise, "U" for
// unlocked), the machine, and the partitioner options.
func partitionKey(c *Compiled, f *ir.Func, dm gdp.DataMap, locks rhop.Locks, mkey, okey string) string {
	k := memo.NewKey("part").Str(f.Name).Str(mkey).Str(okey)
	switch {
	case dm != nil:
		lockSigKey(k.Str("D"), c, f, dm)
	case locks == nil:
		k.Str("U")
	default:
		// Hand-supplied locks with no data map: canonical sorted pairs.
		ids := make([]int, 0, len(locks))
		for id := range locks {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		pairs := make([]int, 0, 2*len(ids))
		for _, id := range ids {
			pairs = append(pairs, id, locks[id])
		}
		k.Str("L").Ints(pairs)
	}
	return k.String()
}

// partitionModule runs the detailed partitioner over the module with
// per-function memoization. It keeps the §4.5 accounting semantics: every
// call counts as one logical DetailedRun and its wall time (however small
// a cache hit makes it) accrues to PartitionTime, while per-function cache
// hits are recorded separately in res.MemoPartitionHits. Returned
// assignment slices are private copies — RunNaive mutates its assignment
// in place, so cached masters must never be aliased.
func partitionModule(c *Compiled, cfg *machine.Config, dm gdp.DataMap,
	locks map[*ir.Func]rhop.Locks, ropts rhop.Options, opts Options, res *Result) (map[*ir.Func][]int, error) {

	if err := opts.inject(res.Scheme, "partition"); err != nil {
		return nil, fmt.Errorf("partition: %w", err)
	}
	if err := opts.ctxErr(); err != nil {
		return nil, err
	}
	sp := opts.Observer.Span("partition")
	defer sp.End()
	start := time.Now()
	defer func() {
		res.PartitionTime += time.Since(start)
		res.DetailedRuns++
	}()
	if !opts.useMemo(c) {
		return rhop.PartitionModule(c.Mod, c.Prof, cfg, locks, ropts)
	}
	mkey := cfg.CacheKey()
	okey := ropts.CacheKey()
	out := make(map[*ir.Func][]int, len(c.Mod.Funcs))
	for _, f := range c.Mod.Funcs {
		if err := opts.ctxErr(); err != nil {
			return nil, err
		}
		var l rhop.Locks
		if locks != nil {
			l = locks[f]
		}
		key := partitionKey(c, f, dm, l, mkey, okey)
		v, hit, err := c.memo.DoCodec(key, partCodec{}, func() (any, error) {
			return rhop.PartitionFunc(f, c.Prof, cfg, l, ropts)
		})
		if err != nil {
			return nil, err
		}
		if hit {
			res.MemoPartitionHits++
		}
		out[f] = append([]int(nil), v.([]int)...)
	}
	return out, nil
}

// programCycles is sched.ProgramCycles with per-function schedule-cost
// caching keyed by (function, machine, assignment). ProgramCycles is
// exactly the sum of sched FuncCycles over functions (pinned in the sched
// tests), which makes the per-function decomposition lossless.
func programCycles(c *Compiled, cfg *machine.Config, asg map[*ir.Func][]int,
	opts Options, res *Result) (cycles, moves int64, err error) {

	if err := opts.inject(res.Scheme, "sched"); err != nil {
		return 0, 0, fmt.Errorf("schedule: %w", err)
	}
	if err := opts.ctxErr(); err != nil {
		return 0, 0, err
	}
	sp := opts.Observer.Span("sched")
	defer sp.End()
	if !opts.useMemo(c) {
		// ProgramCycles is exactly this per-function loop (pinned in the
		// sched tests); running it through an owned Scratch lets the
		// observer's sched counters attach.
		sc := sched.NewScratch()
		sc.SetObserver(opts.Observer)
		for _, f := range c.Mod.Funcs {
			cyc, mv := sc.FuncCycles(f, asg[f], cfg, c.Prof)
			cycles += cyc
			moves += mv
		}
		return cycles, moves, nil
	}
	mkey := cfg.CacheKey()
	var sc *sched.Scratch
	for _, f := range c.Mod.Funcs {
		key := memo.NewKey("sched").Str(f.Name).Str(mkey).Ints(asg[f]).String()
		v, hit, _ := c.memo.DoCodec(key, schedCodec{}, func() (any, error) {
			if sc == nil {
				sc = sched.NewScratch()
				sc.SetObserver(opts.Observer)
			}
			cyc, mv := sc.FuncCycles(f, asg[f], cfg, c.Prof)
			return [2]int64{cyc, mv}, nil
		})
		if hit {
			res.MemoScheduleHits++
		}
		pair := v.([2]int64)
		cycles += pair[0]
		moves += pair[1]
	}
	return cycles, moves, nil
}

// finish completes a scheme run: record the assignment, recompute the
// profile-weighted cycle counts through the (possibly memoized) scheduler,
// and validate the result when Options.Validate is set.
func finish(c *Compiled, cfg *machine.Config, res *Result, asg map[*ir.Func][]int, opts Options) (*Result, error) {
	res.Assign = asg
	var err error
	res.Cycles, res.Moves, err = programCycles(c, cfg, asg, opts, res)
	if err != nil {
		return nil, err
	}
	if err := opts.validateResult(c, cfg, res); err != nil {
		return nil, err
	}
	return res, nil
}

// RunUnified evaluates the unified-memory upper bound: plain RHOP with no
// object homes; every cluster reaches the single multiported memory at the
// uniform load latency.
func RunUnified(c *Compiled, cfg *machine.Config, opts Options) (r *Result, err error) {
	opts, done := beginRun(c, SchemeUnified, opts)
	defer func() { done(r, err) }()
	res := &Result{Scheme: SchemeUnified}
	asg, err := partitionModule(c, cfg, nil, nil, opts.rhopOpts(), opts, res)
	if err != nil {
		return nil, err
	}
	return finish(c, cfg, res, asg, opts)
}

// RunGDP evaluates the paper's Global Data Partitioning: first pass
// partitions data objects over the program-level graph, second pass runs
// RHOP with memory operations locked to their object's home cluster.
func RunGDP(c *Compiled, cfg *machine.Config, opts Options) (r *Result, err error) {
	opts, done := beginRun(c, SchemeGDP, opts)
	defer func() { done(r, err) }()
	res := &Result{Scheme: SchemeGDP}
	if err := opts.inject(SchemeGDP, "data"); err != nil {
		return nil, fmt.Errorf("data partition: %w", err)
	}
	gopts := opts.gdpOpts()
	if gopts.MemFractions == nil {
		gopts.MemFractions = cfg.MemFractions()
	}
	dsp := opts.Observer.Span("data")
	dp, err := gdp.PartitionDataOn(c.Mod, c.Prof, cfg, gopts)
	dsp.End()
	if err != nil {
		return nil, err
	}
	res.DataMap = dp.DataMap
	res.Groups = dp.Groups
	res.Locks = computeLocks(c, dp.DataMap, opts)
	asg, err := partitionModule(c, cfg, dp.DataMap, res.Locks, opts.rhopOpts(), opts, res)
	if err != nil {
		return nil, err
	}
	return finish(c, cfg, res, asg, opts)
}

// RunWithDataMap evaluates an externally chosen object mapping (used by the
// Figure 9 exhaustive search): lock memory ops to dm's homes and run the
// second pass.
func RunWithDataMap(c *Compiled, cfg *machine.Config, dm gdp.DataMap, opts Options) (r *Result, err error) {
	opts, done := beginRun(c, SchemeFixed, opts)
	defer func() { done(r, err) }()
	res := &Result{Scheme: SchemeFixed, DataMap: dm}
	res.Locks = computeLocks(c, dm, opts)
	asg, err := partitionModule(c, cfg, dm, res.Locks, opts.rhopOpts(), opts, res)
	if err != nil {
		return nil, err
	}
	return finish(c, cfg, res, asg, opts)
}

// RunProfileMax evaluates the Profile Max baseline: run RHOP assuming a
// unified memory, record where each merged object group's accesses landed,
// greedily assign groups to their majority cluster in descending dynamic
// frequency order under a memory balance threshold, then re-run RHOP with
// the resulting locks (two detailed-partitioner runs, §4.5).
func RunProfileMax(c *Compiled, cfg *machine.Config, opts Options) (r *Result, err error) {
	opts, done := beginRun(c, SchemeProfileMax, opts)
	defer func() { done(r, err) }()
	res := &Result{Scheme: SchemeProfileMax}
	k := cfg.NumClusters()
	firstAsg, err := partitionModule(c, cfg, nil, nil, opts.rhopOpts(), opts, res)
	if err != nil {
		return nil, err
	}
	groups := gdp.MergeObjects(c.Mod)
	groupOf := map[int]int{}
	for gi, g := range groups {
		for _, objID := range g {
			groupOf[objID] = gi
		}
	}
	// Dynamic access frequency of each group per cluster under the
	// unified partition.
	freq := make([][]int64, len(groups))
	for i := range freq {
		freq[i] = make([]int64, k)
	}
	for _, f := range c.Mod.Funcs {
		asg := firstAsg[f]
		for _, b := range f.Blocks {
			for _, op := range b.Ops {
				counts, ok := c.Prof.OpObj[op]
				if !ok {
					continue
				}
				for objID, n := range counts {
					freq[groupOf[objID]][asg[op.ID]] += n
				}
			}
		}
	}
	// Greedy assignment in descending total frequency.
	type gf struct {
		gi    int
		total int64
	}
	order := make([]gf, len(groups))
	for gi := range groups {
		var t int64
		for _, n := range freq[gi] {
			t += n
		}
		order[gi] = gf{gi, t}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].total != order[j].total {
			return order[i].total > order[j].total
		}
		return order[i].gi < order[j].gi
	})
	var totalBytes int64
	groupBytes := make([]int64, len(groups))
	for gi, g := range groups {
		for _, objID := range g {
			b := objectBytes(c, objID)
			groupBytes[gi] += b
			totalBytes += b
		}
	}
	fractions := cfg.MemFractions()
	limits := make([]int64, k)
	for cl := 0; cl < k; cl++ {
		frac := 1 / float64(k)
		if fractions != nil {
			frac = fractions[cl]
		}
		limits[cl] = int64(float64(totalBytes) * frac * (1 + opts.pmaxTol()))
	}
	loaded := make([]int64, k)
	dm := make(gdp.DataMap, len(c.Mod.Objects))
	for _, o := range order {
		// Preferred cluster: the one with the most dynamic accesses
		// (ties to lower load, then lower index).
		prefs := make([]int, k)
		for i := range prefs {
			prefs[i] = i
		}
		sort.Slice(prefs, func(i, j int) bool {
			a, b := prefs[i], prefs[j]
			if freq[o.gi][a] != freq[o.gi][b] {
				return freq[o.gi][a] > freq[o.gi][b]
			}
			if loaded[a] != loaded[b] {
				return loaded[a] < loaded[b]
			}
			return a < b
		})
		// The paper's threshold rule: when the preferred memory is full,
		// the object is *forced* onto another cluster (the least loaded),
		// even if that one is over threshold too.
		chosen := prefs[0]
		if loaded[chosen]+groupBytes[o.gi] > limits[chosen] {
			forced := -1
			for _, p := range prefs[1:] {
				if forced == -1 || loaded[p] < loaded[forced] {
					forced = p
				}
			}
			if forced >= 0 {
				chosen = forced
			}
		}
		loaded[chosen] += groupBytes[o.gi]
		for _, objID := range groups[o.gi] {
			dm[objID] = chosen
		}
	}
	res.DataMap = dm
	res.Locks = computeLocks(c, dm, opts)
	asg, err := partitionModule(c, cfg, dm, res.Locks, opts.rhopOpts(), opts, res)
	if err != nil {
		return nil, err
	}
	return finish(c, cfg, res, asg, opts)
}

// RunNaive evaluates the Naïve postpass of §2/Figure 2: partition assuming
// unified memory, then pin each data object to the cluster where it was
// accessed most often, re-home every memory operation accordingly (the
// scheduler inserts the data transfer moves), and reschedule without
// repartitioning. Memory balance is deliberately ignored.
func RunNaive(c *Compiled, cfg *machine.Config, opts Options) (r *Result, err error) {
	opts, done := beginRun(c, SchemeNaive, opts)
	defer func() { done(r, err) }()
	res := &Result{Scheme: SchemeNaive}
	k := cfg.NumClusters()
	asg, err := partitionModule(c, cfg, nil, nil, opts.rhopOpts(), opts, res)
	if err != nil {
		return nil, err
	}
	// Per-object access frequency per cluster under the unified partition.
	freq := make(map[int][]int64, len(c.Mod.Objects))
	for _, o := range c.Mod.Objects {
		freq[o.ID] = make([]int64, k)
	}
	for _, f := range c.Mod.Funcs {
		fa := asg[f]
		for _, b := range f.Blocks {
			for _, op := range b.Ops {
				for objID, n := range c.Prof.OpObj[op] {
					freq[objID][fa[op.ID]] += n
				}
			}
		}
	}
	dm := make(gdp.DataMap, len(c.Mod.Objects))
	for _, o := range c.Mod.Objects {
		best := 0
		for cl := 1; cl < k; cl++ {
			if freq[o.ID][cl] > freq[o.ID][best] {
				best = cl
			}
		}
		dm[o.ID] = best
	}
	res.DataMap = dm
	// Re-home memory operations onto their object's cluster; everything
	// else stays put and the scheduler pays the transfers. asg is this
	// call's private copy (partitionModule never returns cached masters),
	// so the in-place mutation cannot corrupt the memo cache.
	locks := computeLocks(c, dm, opts)
	res.Locks = locks
	for _, f := range c.Mod.Funcs {
		fa := asg[f]
		for id, cl := range locks[f] {
			fa[id] = cl
		}
	}
	return finish(c, cfg, res, asg, opts)
}

func objectBytes(c *Compiled, objID int) int64 {
	if b, ok := c.Prof.ObjBytes[objID]; ok && b > 0 {
		return b
	}
	return c.Mod.Objects[objID].Size
}

// RelativePerf is a figure-7/8 bar: scheme performance relative to the
// unified memory model (1.0 = matches unified; higher is better).
func RelativePerf(unified, scheme *Result) float64 {
	if scheme.Cycles == 0 {
		return 0
	}
	return float64(unified.Cycles) / float64(scheme.Cycles)
}

// CycleIncreasePct is the figure-2 metric: percent extra cycles over the
// unified model.
func CycleIncreasePct(unified, scheme *Result) float64 {
	return 100 * (float64(scheme.Cycles) - float64(unified.Cycles)) / float64(unified.Cycles)
}

// MoveIncreasePct is the figure-10 metric: percent extra dynamic
// intercluster moves over the unified model.
func MoveIncreasePct(unified, scheme *Result) float64 {
	if unified.Moves == 0 {
		if scheme.Moves == 0 {
			return 0
		}
		return 100
	}
	return 100 * (float64(scheme.Moves) - float64(unified.Moves)) / float64(unified.Moves)
}
