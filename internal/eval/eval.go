// Package eval implements the paper's experimental methodology (§4): the
// four object/computation partitioning schemes of Table 1 — GDP, Profile
// Max, Naïve, and Unified memory — plus the metrics behind every figure:
// relative performance (Figures 7 and 8), cycle increase of data-incognizant
// partitioning (Figure 2), dynamic intercluster move counts (Figure 10),
// the exhaustive data-mapping search (Figure 9), and detailed-partitioner
// run counts and times (§4.5).
package eval

import (
	"fmt"
	"sort"
	"time"

	"mcpart/internal/defaults"
	"mcpart/internal/gdp"
	"mcpart/internal/interp"
	"mcpart/internal/ir"
	"mcpart/internal/machine"
	"mcpart/internal/mclang"
	"mcpart/internal/opt"
	"mcpart/internal/pointsto"
	"mcpart/internal/rhop"
	"mcpart/internal/sched"
)

// Scheme names a partitioning strategy from Table 1.
type Scheme string

// The schemes of Table 1.
const (
	SchemeUnified    Scheme = "Unified"
	SchemeGDP        Scheme = "GDP"
	SchemeProfileMax Scheme = "ProfileMax"
	SchemeNaive      Scheme = "Naive"
)

// Compiled is a benchmark after front end, points-to analysis and
// profiling — the common input to every scheme.
type Compiled struct {
	Name string
	Mod  *ir.Module
	Prof *interp.Profile
	Ret  int64 // main's checksum, for validation
}

// DefaultUnroll is the loop unrolling factor Prepare applies, matching the
// aggressive unrolling of the paper's VLIW toolchain (it creates the
// cross-iteration ILP that makes a clustered machine worth filling).
const DefaultUnroll = 4

// Prepare compiles src with the default unroll factor, runs points-to
// analysis, and profiles one execution.
func Prepare(name, src string) (*Compiled, error) {
	return PrepareUnrolled(name, src, DefaultUnroll)
}

// PrepareUnrolled is Prepare with an explicit unroll factor (1 disables).
func PrepareUnrolled(name, src string, unroll int) (*Compiled, error) {
	return PrepareFull(name, src, unroll, true)
}

// PrepareFull exposes every front-end knob: the unroll factor and whether
// the classical optimizer (fold/copy-prop/CSE/DCE) runs before analysis.
func PrepareFull(name, src string, unroll int, optimize bool) (*Compiled, error) {
	mod, err := mclang.CompileUnrolled(src, name, unroll)
	if err != nil {
		return nil, fmt.Errorf("eval: %s: %w", name, err)
	}
	if optimize {
		opt.Optimize(mod)
	}
	pointsto.Analyze(mod)
	in := interp.New(mod, interp.Options{MaxSteps: 10_000_000})
	v, err := in.RunMain()
	if err != nil {
		return nil, fmt.Errorf("eval: %s: profile run: %w", name, err)
	}
	return &Compiled{Name: name, Mod: mod, Prof: in.Profile(), Ret: v.I}, nil
}

// Result is one scheme's outcome on one benchmark and machine.
type Result struct {
	Scheme  Scheme
	Cycles  int64
	Moves   int64
	DataMap gdp.DataMap        // nil for Unified
	Assign  map[*ir.Func][]int // final computation partition
	Locks   map[*ir.Func]rhop.Locks

	// DetailedRuns counts invocations of the detailed computation
	// partitioner (§4.5: ProfileMax needs two, GDP and Naïve one each).
	DetailedRuns int
	// PartitionTime is the wall time spent in those invocations.
	PartitionTime time.Duration
}

// Options bundles the per-scheme knobs.
type Options struct {
	GDP  gdp.Options
	RHOP rhop.Options
	// ProfileMaxTol is the memory balance threshold of the Profile Max
	// greedy assignment (default 0.10, matching GDP's).
	ProfileMaxTol float64
	// Workers bounds the evaluation worker pool used by Exhaustive,
	// RunAllSchemes and RunMatrix. Zero or negative selects
	// runtime.GOMAXPROCS(0) — the repository-wide sentinel convention
	// (see parallel.Workers). Results are identical for every worker
	// count; only wall time changes.
	Workers int
}

func (o Options) pmaxTol() float64 { return defaults.Float(o.ProfileMaxTol, 0.10) }

func runRHOP(c *Compiled, cfg *machine.Config, locks map[*ir.Func]rhop.Locks,
	opts rhop.Options, res *Result) (map[*ir.Func][]int, error) {

	start := time.Now()
	asg, err := rhop.PartitionModule(c.Mod, c.Prof, cfg, locks, opts)
	res.PartitionTime += time.Since(start)
	res.DetailedRuns++
	return asg, err
}

// RunUnified evaluates the unified-memory upper bound: plain RHOP with no
// object homes; every cluster reaches the single multiported memory at the
// uniform load latency.
func RunUnified(c *Compiled, cfg *machine.Config, opts Options) (*Result, error) {
	res := &Result{Scheme: SchemeUnified}
	asg, err := runRHOP(c, cfg, nil, opts.RHOP, res)
	if err != nil {
		return nil, err
	}
	res.Assign = asg
	res.Cycles, res.Moves = sched.ProgramCycles(c.Mod, asg, cfg, c.Prof)
	return res, nil
}

// RunGDP evaluates the paper's Global Data Partitioning: first pass
// partitions data objects over the program-level graph, second pass runs
// RHOP with memory operations locked to their object's home cluster.
func RunGDP(c *Compiled, cfg *machine.Config, opts Options) (*Result, error) {
	res := &Result{Scheme: SchemeGDP}
	gopts := opts.GDP
	if gopts.MemFractions == nil {
		gopts.MemFractions = cfg.MemFractions()
	}
	dp, err := gdp.PartitionData(c.Mod, c.Prof, cfg.NumClusters(), gopts)
	if err != nil {
		return nil, err
	}
	res.DataMap = dp.DataMap
	res.Locks = gdp.ComputeLocks(c.Mod, dp.DataMap, c.Prof)
	asg, err := runRHOP(c, cfg, res.Locks, opts.RHOP, res)
	if err != nil {
		return nil, err
	}
	res.Assign = asg
	res.Cycles, res.Moves = sched.ProgramCycles(c.Mod, asg, cfg, c.Prof)
	return res, nil
}

// RunWithDataMap evaluates an externally chosen object mapping (used by the
// Figure 9 exhaustive search): lock memory ops to dm's homes and run the
// second pass.
func RunWithDataMap(c *Compiled, cfg *machine.Config, dm gdp.DataMap, opts Options) (*Result, error) {
	res := &Result{Scheme: "Fixed", DataMap: dm}
	res.Locks = gdp.ComputeLocks(c.Mod, dm, c.Prof)
	asg, err := runRHOP(c, cfg, res.Locks, opts.RHOP, res)
	if err != nil {
		return nil, err
	}
	res.Assign = asg
	res.Cycles, res.Moves = sched.ProgramCycles(c.Mod, asg, cfg, c.Prof)
	return res, nil
}

// RunProfileMax evaluates the Profile Max baseline: run RHOP assuming a
// unified memory, record where each merged object group's accesses landed,
// greedily assign groups to their majority cluster in descending dynamic
// frequency order under a memory balance threshold, then re-run RHOP with
// the resulting locks (two detailed-partitioner runs, §4.5).
func RunProfileMax(c *Compiled, cfg *machine.Config, opts Options) (*Result, error) {
	res := &Result{Scheme: SchemeProfileMax}
	k := cfg.NumClusters()
	firstAsg, err := runRHOP(c, cfg, nil, opts.RHOP, res)
	if err != nil {
		return nil, err
	}
	groups := gdp.MergeObjects(c.Mod)
	groupOf := map[int]int{}
	for gi, g := range groups {
		for _, objID := range g {
			groupOf[objID] = gi
		}
	}
	// Dynamic access frequency of each group per cluster under the
	// unified partition.
	freq := make([][]int64, len(groups))
	for i := range freq {
		freq[i] = make([]int64, k)
	}
	for _, f := range c.Mod.Funcs {
		asg := firstAsg[f]
		for _, b := range f.Blocks {
			for _, op := range b.Ops {
				counts, ok := c.Prof.OpObj[op]
				if !ok {
					continue
				}
				for objID, n := range counts {
					freq[groupOf[objID]][asg[op.ID]] += n
				}
			}
		}
	}
	// Greedy assignment in descending total frequency.
	type gf struct {
		gi    int
		total int64
	}
	order := make([]gf, len(groups))
	for gi := range groups {
		var t int64
		for _, n := range freq[gi] {
			t += n
		}
		order[gi] = gf{gi, t}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].total != order[j].total {
			return order[i].total > order[j].total
		}
		return order[i].gi < order[j].gi
	})
	var totalBytes int64
	groupBytes := make([]int64, len(groups))
	for gi, g := range groups {
		for _, objID := range g {
			b := objectBytes(c, objID)
			groupBytes[gi] += b
			totalBytes += b
		}
	}
	fractions := cfg.MemFractions()
	limits := make([]int64, k)
	for cl := 0; cl < k; cl++ {
		frac := 1 / float64(k)
		if fractions != nil {
			frac = fractions[cl]
		}
		limits[cl] = int64(float64(totalBytes) * frac * (1 + opts.pmaxTol()))
	}
	loaded := make([]int64, k)
	dm := make(gdp.DataMap, len(c.Mod.Objects))
	for _, o := range order {
		// Preferred cluster: the one with the most dynamic accesses
		// (ties to lower load, then lower index).
		prefs := make([]int, k)
		for i := range prefs {
			prefs[i] = i
		}
		sort.Slice(prefs, func(i, j int) bool {
			a, b := prefs[i], prefs[j]
			if freq[o.gi][a] != freq[o.gi][b] {
				return freq[o.gi][a] > freq[o.gi][b]
			}
			if loaded[a] != loaded[b] {
				return loaded[a] < loaded[b]
			}
			return a < b
		})
		// The paper's threshold rule: when the preferred memory is full,
		// the object is *forced* onto another cluster (the least loaded),
		// even if that one is over threshold too.
		chosen := prefs[0]
		if loaded[chosen]+groupBytes[o.gi] > limits[chosen] {
			forced := -1
			for _, p := range prefs[1:] {
				if forced == -1 || loaded[p] < loaded[forced] {
					forced = p
				}
			}
			if forced >= 0 {
				chosen = forced
			}
		}
		loaded[chosen] += groupBytes[o.gi]
		for _, objID := range groups[o.gi] {
			dm[objID] = chosen
		}
	}
	res.DataMap = dm
	res.Locks = gdp.ComputeLocks(c.Mod, dm, c.Prof)
	asg, err := runRHOP(c, cfg, res.Locks, opts.RHOP, res)
	if err != nil {
		return nil, err
	}
	res.Assign = asg
	res.Cycles, res.Moves = sched.ProgramCycles(c.Mod, asg, cfg, c.Prof)
	return res, nil
}

// RunNaive evaluates the Naïve postpass of §2/Figure 2: partition assuming
// unified memory, then pin each data object to the cluster where it was
// accessed most often, re-home every memory operation accordingly (the
// scheduler inserts the data transfer moves), and reschedule without
// repartitioning. Memory balance is deliberately ignored.
func RunNaive(c *Compiled, cfg *machine.Config, opts Options) (*Result, error) {
	res := &Result{Scheme: SchemeNaive}
	k := cfg.NumClusters()
	asg, err := runRHOP(c, cfg, nil, opts.RHOP, res)
	if err != nil {
		return nil, err
	}
	// Per-object access frequency per cluster under the unified partition.
	freq := make(map[int][]int64, len(c.Mod.Objects))
	for _, o := range c.Mod.Objects {
		freq[o.ID] = make([]int64, k)
	}
	for _, f := range c.Mod.Funcs {
		fa := asg[f]
		for _, b := range f.Blocks {
			for _, op := range b.Ops {
				for objID, n := range c.Prof.OpObj[op] {
					freq[objID][fa[op.ID]] += n
				}
			}
		}
	}
	dm := make(gdp.DataMap, len(c.Mod.Objects))
	for _, o := range c.Mod.Objects {
		best := 0
		for cl := 1; cl < k; cl++ {
			if freq[o.ID][cl] > freq[o.ID][best] {
				best = cl
			}
		}
		dm[o.ID] = best
	}
	res.DataMap = dm
	// Re-home memory operations onto their object's cluster; everything
	// else stays put and the scheduler pays the transfers.
	locks := gdp.ComputeLocks(c.Mod, dm, c.Prof)
	res.Locks = locks
	for _, f := range c.Mod.Funcs {
		fa := asg[f]
		for id, cl := range locks[f] {
			fa[id] = cl
		}
	}
	res.Assign = asg
	res.Cycles, res.Moves = sched.ProgramCycles(c.Mod, asg, cfg, c.Prof)
	return res, nil
}

func objectBytes(c *Compiled, objID int) int64 {
	if b, ok := c.Prof.ObjBytes[objID]; ok && b > 0 {
		return b
	}
	return c.Mod.Objects[objID].Size
}

// RelativePerf is a figure-7/8 bar: scheme performance relative to the
// unified memory model (1.0 = matches unified; higher is better).
func RelativePerf(unified, scheme *Result) float64 {
	if scheme.Cycles == 0 {
		return 0
	}
	return float64(unified.Cycles) / float64(scheme.Cycles)
}

// CycleIncreasePct is the figure-2 metric: percent extra cycles over the
// unified model.
func CycleIncreasePct(unified, scheme *Result) float64 {
	return 100 * (float64(scheme.Cycles) - float64(unified.Cycles)) / float64(unified.Cycles)
}

// MoveIncreasePct is the figure-10 metric: percent extra dynamic
// intercluster moves over the unified model.
func MoveIncreasePct(unified, scheme *Result) float64 {
	if unified.Moves == 0 {
		if scheme.Moves == 0 {
			return 0
		}
		return 100
	}
	return 100 * (float64(scheme.Moves) - float64(unified.Moves)) / float64(unified.Moves)
}
