// store.go connects the per-Compiled memoization cache to the persistent
// artifact store (internal/store, DESIGN.md §12). Every disk record is
// content-addressed: its key bytes are "mcs<version>|<module hash>|<memo
// key>", where the module hash covers the canonical textual rendering of
// the IR after the front end and the memo key already embeds the machine's
// CacheKey, the partitioner options' CacheKey, and the lock signature. Two
// runs build the same key only when every input that can influence the
// value is identical, so serving the record is always safe; anything else
// — a codec change (version bump), a different module, flipped bits on
// disk — misses and degrades to a recompute.
package eval

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"

	"mcpart/internal/interp"
	"mcpart/internal/ir"
	"mcpart/internal/obs"
	"mcpart/internal/rhop"
	"mcpart/internal/store"
)

// codecVersion is the generation of the value encodings below. It is baked
// into every disk key, so bumping it orphans (rather than misreads) old
// records.
const codecVersion = 1

// ModuleHash returns the content hash identifying a module in disk-cache
// keys: SHA-256 over the module's stable textual rendering (ir.Print),
// which covers functions, blocks, op IDs, objects, and MayAccess sets —
// everything the partitioning pipeline reads.
func ModuleHash(m *ir.Module) string {
	h := sha256.Sum256([]byte(ir.Print(m)))
	return hex.EncodeToString(h[:])
}

// keyPrefix builds the disk-key prefix for one module.
func keyPrefix(modHash string) string {
	return fmt.Sprintf("mcs%d|%s|", codecVersion, modHash)
}

// storeTier adapts a *store.Store to memo.Tier, prefixing every memo key
// with the module hash so one shared store serves many Compiled values.
type storeTier struct {
	s      *store.Store
	prefix string
}

func (t *storeTier) Get(key string) ([]byte, bool) { return t.s.Get([]byte(t.prefix + key)) }
func (t *storeTier) Put(key string, val []byte)    { t.s.Put([]byte(t.prefix+key), val) }
func (t *storeTier) MarkCorrupt(key string)        { t.s.MarkCorrupt([]byte(t.prefix + key)) }

// attachStore opens (or joins) the shared artifact store under dir and
// layers it beneath c's memoization cache. Open failures degrade to
// memory-only caching — a broken cache directory must never break an
// evaluation — and the error is reported so callers that want to surface
// it (the CLI tools) can. Safe to call repeatedly; the first call wins.
func (c *Compiled) attachStore(dir string, maxBytes int64, o *obs.Observer) error {
	if c.memo == nil || dir == "" {
		return nil
	}
	var err error
	c.storeOnce.Do(func() {
		var st *store.Store
		st, err = store.OpenShared(dir, store.Options{MaxBytes: maxBytes})
		if err != nil {
			return
		}
		c.store = st
		c.memo.SetTier(&storeTier{s: st, prefix: keyPrefix(ModuleHash(c.Mod))})
	})
	if c.store != nil && o != nil {
		c.store.SetObserver(o)
	}
	return err
}

// StoreStats snapshots the disk tier's counters (zero value when no store
// is attached). The counters are shared by every Compiled using the same
// cache directory.
func (c *Compiled) StoreStats() store.Stats { return c.store.Stats() }

// Value encodings. Each starts with a one-byte tag; a record whose tag or
// shape does not match degrades to a decode error, which the memo layer
// turns into MarkCorrupt + recompute.
const (
	tagLocks byte = 'L'
	tagPart  byte = 'P'
	tagSched byte = 'S'
	tagProf  byte = 'F'
)

// decodeErr is the shared shape-mismatch error.
func decodeErr(tag byte) error { return fmt.Errorf("eval: artifact decode: bad %q record", tag) }

// varint cursor over an encoded record body.
type reader struct {
	b   []byte
	bad bool
}

func (r *reader) int() int64 {
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.bad = true
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *reader) uint() uint64 {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.bad = true
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *reader) done() bool { return !r.bad && len(r.b) == 0 }

// maxCount bounds decoded element counts so a corrupt length cannot drive
// a huge allocation before the shape check fails.
const maxCount = 1 << 24

func (r *reader) count() int {
	n := r.uint()
	if n > maxCount {
		r.bad = true
		return 0
	}
	return int(n)
}

// lockCodec round-trips rhop.Locks (object ID → home cluster).
type lockCodec struct{}

func (lockCodec) Encode(v any) ([]byte, error) {
	l, ok := v.(rhop.Locks)
	if !ok {
		return nil, fmt.Errorf("eval: artifact encode: %T is not rhop.Locks", v)
	}
	ids := make([]int, 0, len(l))
	for id := range l {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	b := []byte{tagLocks}
	b = binary.AppendUvarint(b, uint64(len(ids)))
	for _, id := range ids {
		b = binary.AppendVarint(b, int64(id))
		b = binary.AppendVarint(b, int64(l[id]))
	}
	return b, nil
}

func (lockCodec) Decode(b []byte) (any, error) {
	if len(b) == 0 || b[0] != tagLocks {
		return nil, decodeErr(tagLocks)
	}
	r := &reader{b: b[1:]}
	n := r.count()
	l := make(rhop.Locks, n)
	for i := 0; i < n; i++ {
		id, cl := r.int(), r.int()
		l[int(id)] = int(cl)
	}
	if !r.done() {
		return nil, decodeErr(tagLocks)
	}
	return l, nil
}

// partCodec round-trips a per-function op assignment ([]int, dense by op
// ID).
type partCodec struct{}

func (partCodec) Encode(v any) ([]byte, error) {
	asg, ok := v.([]int)
	if !ok {
		return nil, fmt.Errorf("eval: artifact encode: %T is not []int", v)
	}
	b := []byte{tagPart}
	b = binary.AppendUvarint(b, uint64(len(asg)))
	for _, cl := range asg {
		b = binary.AppendVarint(b, int64(cl))
	}
	return b, nil
}

func (partCodec) Decode(b []byte) (any, error) {
	if len(b) == 0 || b[0] != tagPart {
		return nil, decodeErr(tagPart)
	}
	r := &reader{b: b[1:]}
	n := r.count()
	asg := make([]int, n)
	for i := range asg {
		asg[i] = int(r.int())
	}
	if !r.done() {
		return nil, decodeErr(tagPart)
	}
	return asg, nil
}

// schedCodec round-trips a (cycles, moves) pair.
type schedCodec struct{}

func (schedCodec) Encode(v any) ([]byte, error) {
	pair, ok := v.([2]int64)
	if !ok {
		return nil, fmt.Errorf("eval: artifact encode: %T is not [2]int64", v)
	}
	b := []byte{tagSched}
	b = binary.AppendVarint(b, pair[0])
	b = binary.AppendVarint(b, pair[1])
	return b, nil
}

func (schedCodec) Decode(b []byte) (any, error) {
	if len(b) == 0 || b[0] != tagSched {
		return nil, decodeErr(tagSched)
	}
	r := &reader{b: b[1:]}
	pair := [2]int64{r.int(), r.int()}
	if !r.done() {
		return nil, decodeErr(tagSched)
	}
	return pair, nil
}

// Profile serialization is module-relative: pointers into the IR (blocks,
// ops) become (function index, block index) and (function index, op ID)
// pairs, valid for any process that compiled the same source the same way
// — which the module hash in the disk key guarantees.

// encodeProfile serializes a profiling run: the checksum main returned
// plus the full interp.Profile.
func encodeProfile(m *ir.Module, p *interp.Profile, ret int64) []byte {
	b := []byte{tagProf}
	b = binary.AppendVarint(b, ret)
	b = binary.AppendVarint(b, p.Steps)
	b = binary.AppendUvarint(b, uint64(len(m.Funcs)))
	for _, f := range m.Funcs {
		b = binary.AppendUvarint(b, uint64(len(f.Blocks)))
		for _, blk := range f.Blocks {
			b = binary.AppendVarint(b, p.BlockFreq[blk])
		}
		// Memory ops with recorded accesses, by ascending op ID.
		var ops []*ir.Op
		for _, blk := range f.Blocks {
			for _, op := range blk.Ops {
				if len(p.OpObj[op]) > 0 {
					ops = append(ops, op)
				}
			}
		}
		sort.Slice(ops, func(i, j int) bool { return ops[i].ID < ops[j].ID })
		b = binary.AppendUvarint(b, uint64(len(ops)))
		for _, op := range ops {
			counts := p.OpObj[op]
			objs := make([]int, 0, len(counts))
			for id := range counts {
				objs = append(objs, id)
			}
			sort.Ints(objs)
			b = binary.AppendVarint(b, int64(op.ID))
			b = binary.AppendUvarint(b, uint64(len(objs)))
			for _, id := range objs {
				b = binary.AppendVarint(b, int64(id))
				b = binary.AppendVarint(b, counts[id])
			}
		}
	}
	b = appendIntMap(b, p.ObjBytes)
	b = appendIntMap(b, p.ObjAccess)
	return b
}

func appendIntMap(b []byte, m map[int]int64) []byte {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	b = binary.AppendUvarint(b, uint64(len(ids)))
	for _, id := range ids {
		b = binary.AppendVarint(b, int64(id))
		b = binary.AppendVarint(b, m[id])
	}
	return b
}

func (r *reader) intMap() map[int]int64 {
	n := r.count()
	m := make(map[int]int64, n)
	for i := 0; i < n; i++ {
		id, v := r.int(), r.int()
		m[int(id)] = v
	}
	return m
}

// decodeProfile reconstructs a Profile against m. Any structural mismatch
// (function/block/op counts, unknown op IDs) is a decode error.
func decodeProfile(m *ir.Module, b []byte) (*interp.Profile, int64, error) {
	if len(b) == 0 || b[0] != tagProf {
		return nil, 0, decodeErr(tagProf)
	}
	r := &reader{b: b[1:]}
	ret := r.int()
	p := interp.NewProfile()
	p.Steps = r.int()
	if nf := r.count(); nf != len(m.Funcs) {
		return nil, 0, decodeErr(tagProf)
	}
	for _, f := range m.Funcs {
		if nb := r.count(); nb != len(f.Blocks) {
			return nil, 0, decodeErr(tagProf)
		}
		for _, blk := range f.Blocks {
			if freq := r.int(); freq != 0 {
				p.BlockFreq[blk] = freq
			}
		}
		byID := f.OpsByID()
		nops := r.count()
		for i := 0; i < nops; i++ {
			opID := int(r.int())
			nobj := r.count()
			if r.bad || opID < 0 || opID >= len(byID) || byID[opID] == nil {
				return nil, 0, decodeErr(tagProf)
			}
			counts := make(map[int]int64, nobj)
			for j := 0; j < nobj; j++ {
				id, cnt := r.int(), r.int()
				counts[int(id)] = cnt
			}
			p.OpObj[byID[opID]] = counts
		}
	}
	p.ObjBytes = r.intMap()
	p.ObjAccess = r.intMap()
	if !r.done() {
		return nil, 0, decodeErr(tagProf)
	}
	return p, ret, nil
}

// cachedProfile looks up a stored profiling run for mod. It only serves a
// record whose recorded step count fits the caller's current budget:
// a run that would exceed maxSteps cold must fail the same way warm, so a
// larger-budget record never masks a BudgetError (determinism across
// cache states).
func cachedProfile(st *store.Store, prefix string, mod *ir.Module, maxSteps int64) (*interp.Profile, int64, bool) {
	b, ok := st.Get([]byte(prefix + "prof"))
	if !ok {
		return nil, 0, false
	}
	p, ret, err := decodeProfile(mod, b)
	if err != nil || p.Steps > maxSteps {
		if err != nil {
			st.MarkCorrupt([]byte(prefix + "prof"))
		}
		return nil, 0, false
	}
	return p, ret, true
}

// putProfile stores a completed profiling run.
func putProfile(st *store.Store, prefix string, mod *ir.Module, p *interp.Profile, ret int64) {
	st.Put([]byte(prefix+"prof"), encodeProfile(mod, p, ret))
}
