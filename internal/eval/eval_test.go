package eval

import (
	"strings"
	"testing"

	"mcpart/internal/bench"
	"mcpart/internal/gdp"
	"mcpart/internal/machine"
)

func prepBench(t *testing.T, name string) *Compiled {
	t.Helper()
	b, err := bench.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Prepare(b.Name, b.Source)
	if err != nil {
		t.Fatal(err)
	}
	// Unrolling must preserve the pinned checksum.
	if c.Ret != b.Want {
		t.Fatalf("%s: unrolled checksum %d, want %d", name, c.Ret, b.Want)
	}
	return c
}

func TestAllSchemesProduceValidResults(t *testing.T) {
	c := prepBench(t, "rawcaudio")
	cfg := machine.Paper2Cluster(5)
	br, err := RunAllSchemes(c, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*Result{br.Unified, br.GDP, br.PMax, br.Naive} {
		if r.Cycles <= 0 {
			t.Errorf("%s: cycles = %d", r.Scheme, r.Cycles)
		}
		if r.Moves < 0 {
			t.Errorf("%s: moves = %d", r.Scheme, r.Moves)
		}
		for f, asg := range r.Assign {
			if len(asg) != f.NOps {
				t.Errorf("%s: %s assignment incomplete", r.Scheme, f.Name)
			}
		}
	}
	if br.Unified.DataMap != nil {
		t.Error("unified scheme should have no data map")
	}
	if err := br.GDP.DataMap.Validate(c.Mod, 2); err != nil {
		t.Errorf("GDP data map: %v", err)
	}
	if err := br.PMax.DataMap.Validate(c.Mod, 2); err != nil {
		t.Errorf("PMax data map: %v", err)
	}
	if err := br.Naive.DataMap.Validate(c.Mod, 2); err != nil {
		t.Errorf("Naive data map: %v", err)
	}
}

func TestLockedSchemesRespectDataMaps(t *testing.T) {
	c := prepBench(t, "fir")
	cfg := machine.Paper2Cluster(5)
	for _, run := range []func(*Compiled, *machine.Config, Options) (*Result, error){
		RunGDP, RunProfileMax,
	} {
		r, err := run(c, cfg, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Every memory op accessing a single object must be assigned to
		// that object's home cluster.
		for _, f := range c.Mod.Funcs {
			asg := r.Assign[f]
			for _, blk := range f.Blocks {
				for _, op := range blk.Ops {
					if !op.Opcode.IsMem() || len(op.MayAccess) != 1 {
						continue
					}
					want := r.DataMap[op.MayAccess[0]]
					if asg[op.ID] != want {
						t.Errorf("%s: %s op %d on cluster %d, object home %d",
							r.Scheme, f.Name, op.ID, asg[op.ID], want)
					}
				}
			}
		}
	}
}

func TestDetailedRunCounts(t *testing.T) {
	// §4.5: ProfileMax runs the detailed partitioner twice; GDP, Naïve and
	// Unified once.
	c := prepBench(t, "halftone")
	cfg := machine.Paper2Cluster(5)
	br, err := RunAllSchemes(c, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if br.GDP.DetailedRuns != 1 || br.Naive.DetailedRuns != 1 || br.Unified.DetailedRuns != 1 {
		t.Errorf("runs: gdp=%d naive=%d unified=%d, want 1 each",
			br.GDP.DetailedRuns, br.Naive.DetailedRuns, br.Unified.DetailedRuns)
	}
	if br.PMax.DetailedRuns != 2 {
		t.Errorf("ProfileMax runs = %d, want 2", br.PMax.DetailedRuns)
	}
}

func TestProfileMaxBalancesMemory(t *testing.T) {
	c := prepBench(t, "rawcaudio") // two big heap buffers force a split
	cfg := machine.Paper2Cluster(5)
	r, err := RunProfileMax(c, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bytes := gdp.MemBytesPerCluster(c.Mod, r.DataMap, c.Prof, 2)
	total := bytes[0] + bytes[1]
	if bytes[0] > total*3/4 || bytes[1] > total*3/4 {
		t.Errorf("ProfileMax left memory badly imbalanced: %v", bytes)
	}
}

func TestNaiveIgnoresBalance(t *testing.T) {
	// viterbi's traceback dominates the bytes; Naive places by access
	// majority only, so heavy imbalance is allowed (and expected when the
	// unified partition colocated everything).
	c := prepBench(t, "viterbi")
	cfg := machine.Paper2Cluster(5)
	if _, err := RunNaive(c, cfg, Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestRelativeMetrics(t *testing.T) {
	u := &Result{Cycles: 1000, Moves: 100}
	s := &Result{Cycles: 1250, Moves: 150}
	if got := RelativePerf(u, s); got != 0.8 {
		t.Errorf("RelativePerf = %v, want 0.8", got)
	}
	if got := CycleIncreasePct(u, s); got != 25 {
		t.Errorf("CycleIncreasePct = %v, want 25", got)
	}
	if got := MoveIncreasePct(u, s); got != 50 {
		t.Errorf("MoveIncreasePct = %v, want 50", got)
	}
	zero := &Result{Cycles: 1000, Moves: 0}
	if got := MoveIncreasePct(zero, s); got != 100 {
		t.Errorf("MoveIncreasePct from zero = %v, want 100", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{4, 1}); got < 1.99 || got > 2.01 {
		t.Errorf("GeoMean(4,1) = %v, want 2", got)
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) should be 0")
	}
}

func TestPaperShapeLat5(t *testing.T) {
	// The headline result (Figures 7/8): at a 5-cycle move latency the
	// partitioned-memory schemes stay near the unified bound, GDP ahead of
	// Profile Max ahead of Naïve on suite average, and everything within a
	// plausible band.
	if testing.Short() {
		t.Skip("full suite evaluation")
	}
	cfg := machine.Paper2Cluster(5)
	var gs, ps, ns []float64
	for _, b := range bench.All() {
		c, err := Prepare(b.Name, b.Source)
		if err != nil {
			t.Fatal(err)
		}
		br, err := RunAllSchemes(c, cfg, Options{})
		if err != nil {
			t.Fatal(err)
		}
		gs = append(gs, RelativePerf(br.Unified, br.GDP))
		ps = append(ps, RelativePerf(br.Unified, br.PMax))
		ns = append(ns, RelativePerf(br.Unified, br.Naive))
	}
	g, p, n := GeoMean(gs), GeoMean(ps), GeoMean(ns)
	t.Logf("lat5 means: gdp=%.3f pmax=%.3f naive=%.3f", g, p, n)
	if g < 0.90 {
		t.Errorf("GDP mean %.3f, want >= 0.90 (paper: 0.956)", g)
	}
	if g <= p-0.005 {
		t.Errorf("GDP (%.3f) should be at or above ProfileMax (%.3f) on average", g, p)
	}
	if p <= n {
		t.Errorf("ProfileMax (%.3f) should beat Naive (%.3f) on average", p, n)
	}
}

func TestFormatters(t *testing.T) {
	c := prepBench(t, "halftone")
	cfg := machine.Paper2Cluster(5)
	br, err := RunAllSchemes(c, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	results := []*BenchResult{br}
	if s := FormatTable1(); !strings.Contains(s, "Profile Max") {
		t.Error("Table 1 missing Profile Max row")
	}
	if s := FormatPerfFigure("Figure 8a", results); !strings.Contains(s, "halftone") {
		t.Error("perf figure missing benchmark row")
	}
	if s := FormatFigure10(results); !strings.Contains(s, "halftone") {
		t.Error("figure 10 missing benchmark row")
	}
	if s := FormatCompileTime(results); !strings.Contains(s, "2/") {
		t.Error("compile time table should show ProfileMax's 2 runs")
	}
	f2 := FormatFigure2([]int{5}, map[int][]*BenchResult{5: results})
	if !strings.Contains(f2, "lat=5") {
		t.Error("figure 2 missing latency column")
	}
}
