package eval

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"mcpart/internal/bench"
	"mcpart/internal/interp"
)

// TestPrepareEngineEquivalence pins that the profiling engine switch is
// invisible in Prepare's output: the bytecode VM (default) and the
// tree-walking interpreter (LegacyInterp) produce the same checksum and a
// DeepEqual-identical Profile through the public entry point.
func TestPrepareEngineEquivalence(t *testing.T) {
	bm, err := bench.Get("fir")
	if err != nil {
		t.Fatal(err)
	}
	vm, err := PrepareOpts(context.Background(), bm.Name, bm.Source, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := PrepareOpts(context.Background(), bm.Name, bm.Source, Options{LegacyInterp: true})
	if err != nil {
		t.Fatal(err)
	}
	if vm.Ret != tree.Ret {
		t.Fatalf("checksum mismatch: vm %d, tree %d", vm.Ret, tree.Ret)
	}
	if vm.Ret != bm.Want {
		t.Fatalf("checksum %d, want %d", vm.Ret, bm.Want)
	}
	if !reflect.DeepEqual(normProfile(vm.Prof), normProfile(tree.Prof)) {
		t.Fatal("profiles diverge between engines")
	}
}

// normProfile projects a Profile onto engine-independent keys (function
// names plus dense block/op/object IDs instead of pointers): the two
// Prepare calls compile separate modules, so pointer-keyed maps can never
// be compared directly.
func normProfile(p *interp.Profile) map[string]int64 {
	out := map[string]int64{"steps": p.Steps}
	for b, n := range p.BlockFreq {
		out[fmt.Sprintf("bf/%s/b%d", b.Func.Name, b.ID)] = n
	}
	for op, m := range p.OpObj {
		for objID, n := range m {
			out[fmt.Sprintf("op/%s/%d/%d", op.Block.Func.Name, op.ID, objID)] = n
		}
	}
	for objID, n := range p.ObjBytes {
		out[fmt.Sprintf("bytes/%d", objID)] = n
	}
	for objID, n := range p.ObjAccess {
		out[fmt.Sprintf("acc/%d", objID)] = n
	}
	return out
}

// TestPrepareMaxStepsHonored pins that Options.MaxSteps reaches the
// profiler on both engines: a cap far below the benchmark's step count
// must fail Prepare with a typed step-budget error.
func TestPrepareMaxStepsHonored(t *testing.T) {
	bm, err := bench.Get("fir")
	if err != nil {
		t.Fatal(err)
	}
	for _, legacy := range []bool{false, true} {
		_, err := PrepareOpts(context.Background(), bm.Name, bm.Source,
			Options{MaxSteps: 100, LegacyInterp: legacy})
		var be *interp.BudgetError
		if !errors.As(err, &be) || be.Resource != "step" {
			t.Errorf("legacy=%v: want step BudgetError, got %v", legacy, err)
		}
	}
}

// TestPrepareMaxBytesHonored pins that Options.MaxBytes reaches the
// profiler on both engines: a heap cap below the benchmark's footprint must
// fail Prepare with a typed byte-budget error, and a generous cap must not
// change the result.
func TestPrepareMaxBytesHonored(t *testing.T) {
	bm, err := bench.Get("fir")
	if err != nil {
		t.Fatal(err)
	}
	for _, legacy := range []bool{false, true} {
		_, err := PrepareOpts(context.Background(), bm.Name, bm.Source,
			Options{MaxBytes: 8, LegacyInterp: legacy})
		var be *interp.BudgetError
		if !errors.As(err, &be) || be.Resource != "byte" {
			t.Errorf("legacy=%v: want byte BudgetError, got %v", legacy, err)
		}
	}
	c, err := PrepareOpts(context.Background(), bm.Name, bm.Source, Options{MaxBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if c.Ret != bm.Want {
		t.Fatalf("checksum under generous byte budget %d, want %d", c.Ret, bm.Want)
	}
}
