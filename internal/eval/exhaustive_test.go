package eval

import (
	"testing"

	"mcpart/internal/machine"
)

func TestExhaustiveRawcaudio(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive search is slow")
	}
	c := prepBench(t, "rawcaudio")
	cfg := machine.Paper2Cluster(5)
	ex, err := Exhaustive(c, cfg, Options{}, 14)
	if err != nil {
		t.Fatal(err)
	}
	n := len(c.Mod.Objects)
	if len(ex.Points) != 1<<uint(n) {
		t.Fatalf("got %d points, want 2^%d", len(ex.Points), n)
	}
	if ex.Best > ex.Worst {
		t.Fatalf("best %d > worst %d", ex.Best, ex.Worst)
	}
	if ex.Best == ex.Worst {
		t.Error("no spread at all across mappings; data placement should matter")
	}
	// The scheme-chosen mappings must be actual points.
	gp := ex.Find(ex.GDPMask)
	pp := ex.Find(ex.PMaxMask)
	if gp == nil || pp == nil {
		t.Fatal("scheme masks not found among points")
	}
	// Figure 9's observation: GDP picks a point well above the worst and
	// reasonably balanced.
	if gp.PerfVsWorst < 1.0 {
		t.Errorf("GDP point performance %v below worst", gp.PerfVsWorst)
	}
	// Complementary masks are near-identical on a homogeneous machine;
	// only deterministic tie-breaks (which prefer lower cluster indices)
	// may differ, so allow a 1% skew.
	full := uint64(1)<<uint(n) - 1
	for _, p := range ex.Points[:8] {
		q := ex.Find(full &^ p.Mask)
		if q == nil {
			t.Fatal("complement missing")
		}
		diff := q.Cycles - p.Cycles
		if diff < 0 {
			diff = -diff
		}
		if diff*100 > p.Cycles {
			t.Errorf("mask %b: %d cycles but complement has %d", p.Mask, p.Cycles, q.Cycles)
		}
	}
	// PerfVsWorst normalization.
	for _, p := range ex.Points {
		if p.PerfVsWorst < 1.0-1e-9 {
			t.Errorf("point %b has perf %v < 1", p.Mask, p.PerfVsWorst)
		}
		if p.Imbalance < 0 || p.Imbalance > 1 {
			t.Errorf("point %b imbalance %v out of range", p.Mask, p.Imbalance)
		}
	}
}

func TestExhaustiveRejectsBigPrograms(t *testing.T) {
	c := prepBench(t, "mpeg2dec") // 7 objects, fine; cap at 3 to force error
	if _, err := Exhaustive(c, machine.Paper2Cluster(5), Options{}, 3); err == nil {
		t.Error("accepted program above the object cap")
	}
}

// TestExhaustiveFourCluster pins the k-way generalization: on a 4-cluster
// machine the sweep enumerates all k^n base-k masks, keeps the
// Points[i].Mask == i invariant, and the scheme masks decode to in-range
// homes.
func TestExhaustiveFourCluster(t *testing.T) {
	c := prepBench(t, "halftone")
	cfg := machine.FourCluster(5)
	n := len(c.Mod.Objects)
	ex, err := Exhaustive(c, cfg, Options{}, 14)
	if err != nil {
		t.Fatal(err)
	}
	rad, err := newRadix(4, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Points) != rad.count(n) {
		t.Fatalf("got %d points, want 4^%d = %d", len(ex.Points), n, rad.count(n))
	}
	for i, p := range ex.Points {
		if p.Mask != uint64(i) {
			t.Fatalf("point %d carries mask %d", i, p.Mask)
		}
		if p.Cycles <= 0 {
			t.Fatalf("mask %d: nonpositive cycles %d", i, p.Cycles)
		}
		if p.Imbalance < 0 || p.Imbalance > 1 {
			t.Fatalf("mask %d: imbalance %v out of range", i, p.Imbalance)
		}
	}
	for _, mask := range []uint64{ex.GDPMask, ex.PMaxMask} {
		if ex.Find(mask) == nil {
			t.Fatalf("scheme mask %d not among points", mask)
		}
		for j := 0; j < n; j++ {
			if d := rad.digit(mask, j); d < 0 || d >= 4 {
				t.Fatalf("scheme mask %d: object %d decodes to cluster %d", mask, j, d)
			}
		}
	}
	if ex.Best > ex.Worst {
		t.Fatalf("best %d > worst %d", ex.Best, ex.Worst)
	}
}

// TestExhaustiveRejectsPointBlowup: the point cap is on k^n, so a program
// fine at k=2 can exceed it at k=8.
func TestExhaustiveRejectsPointBlowup(t *testing.T) {
	c := prepBench(t, "mpeg2dec") // 7 objects: 2^7 fine, 8^7 = 2^21 > 2^14
	if _, err := Exhaustive(c, machine.EightCluster(5), Options{}, 14); err == nil {
		t.Error("accepted 8^7-point sweep under a 2^14-point cap")
	}
}
