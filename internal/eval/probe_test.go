package eval

import (
	"testing"

	"mcpart/internal/bench"
	"mcpart/internal/machine"
)

// TestProbe prints the headline numbers for a few benchmarks at each
// latency; run with -v to inspect. It asserts only sanity (all schemes
// produce positive cycle counts).
func TestProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("probe is informational")
	}
	for _, name := range []string{"rawcaudio", "rawdaudio", "fir", "mpeg2dec", "fsed"} {
		b, err := bench.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Prepare(b.Name, b.Source)
		if err != nil {
			t.Fatal(err)
		}
		for _, lat := range []int{1, 5, 10} {
			cfg := machine.Paper2Cluster(lat)
			br, err := RunAllSchemes(c, cfg, Options{})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%-10s lat=%2d unified=%8d gdp=%8d(%.1f%%) pmax=%8d(%.1f%%) naive=%8d(%.1f%%) moves u/g/p/n=%d/%d/%d/%d",
				name, lat, br.Unified.Cycles,
				br.GDP.Cycles, 100*RelativePerf(br.Unified, br.GDP),
				br.PMax.Cycles, 100*RelativePerf(br.Unified, br.PMax),
				br.Naive.Cycles, 100*RelativePerf(br.Unified, br.Naive),
				br.Unified.Moves, br.GDP.Moves, br.PMax.Moves, br.Naive.Moves)
			if br.Unified.Cycles <= 0 || br.GDP.Cycles <= 0 {
				t.Fatal("nonpositive cycles")
			}
		}
	}
}
