package eval

import (
	"fmt"
	"math/bits"
)

// radix is the base-k positional encoding of data-object mappings that
// generalizes the 2-cluster bitmask: digit i (base k) of a mask is the home
// cluster of object i. At k=2 every operation below degenerates exactly to
// the bit arithmetic the sweep has always used — digit extraction is bit
// extraction, the modular Gray code is the reflected binary Gray code
// i^(i>>1), and the changed-digit index is TrailingZeros64 — so 2-cluster
// masks, points, and golden outputs are unchanged to the byte.
type radix struct {
	k   int
	pow []uint64 // pow[i] = k^i; len n+1, guaranteed overflow-free
}

// newRadix builds the power table for n digits of base k, rejecting
// mapping spaces that do not fit a uint64 mask.
func newRadix(k, n int) (*radix, error) {
	if k < 1 {
		return nil, fmt.Errorf("eval: radix %d < 1", k)
	}
	r := &radix{k: k, pow: make([]uint64, n+1)}
	r.pow[0] = 1
	for i := 1; i <= n; i++ {
		hi, lo := bits.Mul64(r.pow[i-1], uint64(k))
		if hi != 0 {
			return nil, fmt.Errorf("eval: %d objects on %d clusters exceed 64-bit mapping masks", n, k)
		}
		r.pow[i] = lo
	}
	return r, nil
}

// count returns k^n as an int (the mapping-point count for n objects);
// callers must have sized n so this fits.
func (r *radix) count(n int) int { return int(r.pow[n]) }

// digit extracts digit i of mask.
func (r *radix) digit(mask uint64, i int) int {
	return int(mask / r.pow[i] % uint64(r.k))
}

// grayAt returns the i-th mask of the modular base-k reflected Gray
// sequence over n digits: successive masks differ in exactly one digit,
// and that digit steps by +1 mod k. At k=2 this is i ^ (i>>1).
func (r *radix) grayAt(i uint64, n int) uint64 {
	if r.k == 2 {
		return i ^ (i >> 1)
	}
	var mask uint64
	k := uint64(r.k)
	for j := 0; j < n; j++ {
		uj := i / r.pow[j] % k
		uj1 := i / r.pow[j+1] % k
		mask += (uj - uj1 + k) % k * r.pow[j]
	}
	return mask
}

// imbalanceOf is the byte-balance metric of a mapping: (max cluster bytes
// - min cluster bytes) / total, in [0,1]. At k=2 this is |b0-b1|/total,
// the paper's Figure 9 shading metric, computed with the identical float
// division.
func imbalanceOf(clusterBytes []int64, totalBytes int64) float64 {
	if totalBytes == 0 {
		return 0
	}
	lo, hi := clusterBytes[0], clusterBytes[0]
	for _, b := range clusterBytes[1:] {
		if b < lo {
			lo = b
		}
		if b > hi {
			hi = b
		}
	}
	return float64(hi-lo) / float64(totalBytes)
}

// grayStep returns the digit position that changes between Gray masks i-1
// and i (i >= 1): the count of trailing zero digits of i in base k. The
// changed digit always advances by +1 mod k.
func (r *radix) grayStep(i uint64) int {
	if r.k == 2 {
		return bits.TrailingZeros64(i)
	}
	t := 0
	for v := i; v%uint64(r.k) == 0; v /= uint64(r.k) {
		t++
	}
	return t
}
