package obs

import (
	"bytes"
	"context"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var o *Observer
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Registry
	var tr *Trace
	var sp *Span

	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter not zero")
	}
	g.Set(3)
	g.Add(2)
	if g.Value() != 0 {
		t.Fatal("nil gauge not zero")
	}
	h.Observe(7)
	if got := r.Counter("x"); got != nil {
		t.Fatal("nil registry returned non-nil counter")
	}
	if got := r.Gauge("x"); got != nil {
		t.Fatal("nil registry returned non-nil gauge")
	}
	if got := r.Histogram("x"); got != nil {
		t.Fatal("nil registry returned non-nil histogram")
	}
	if s := r.Snapshot(); s != nil {
		t.Fatal("nil registry snapshot not nil")
	}
	r.Import(Snapshot{{Name: "x", Kind: KindCounter, Value: 1}}, "")

	if o.Named("a") != nil || o.Scoped() != nil || o.Span("s") != nil {
		t.Fatal("nil observer derivations not nil")
	}
	if o.Counter("x") != nil || o.Gauge("x") != nil || o.Histogram("x") != nil {
		t.Fatal("nil observer metrics not nil")
	}
	if o.Registry() != nil || o.TraceSink() != nil || o.Path() != "" {
		t.Fatal("nil observer accessors not zero")
	}

	sp.End()
	sp.SetAttr("k", "v")
	if sp.Path() != "" || sp.Observer() != nil {
		t.Fatal("nil span accessors not zero")
	}

	tr.record(Event{Span: "x"})
	if tr.Len() != 0 {
		t.Fatal("nil trace recorded")
	}
	if err := tr.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestNilObserverZeroAlloc(t *testing.T) {
	var o *Observer
	var c *Counter
	var h *Histogram
	allocs := testing.AllocsPerRun(100, func() {
		c.Add(1)
		h.Observe(2)
		o.Span("x").End()
		sp := o.Span("y")
		sp.SetAttr("a", "b")
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("nil observer allocated %.1f allocs/op, want 0", allocs)
	}
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	c.Add(2)
	r.Counter("hits").Add(3)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sizes", 1, 10, 100)
	for _, v := range []int64{0, 1, 5, 10, 50, 1000} {
		h.Observe(v)
	}
	s := r.Snapshot()
	m, ok := s.Get("sizes")
	if !ok || m.Kind != KindHistogram {
		t.Fatalf("missing histogram: %+v", m)
	}
	if m.Count != 6 || m.Sum != 1066 {
		t.Fatalf("count=%d sum=%d, want 6/1066", m.Count, m.Sum)
	}
	want := []Bucket{{1, 2}, {10, 2}, {100, 1}, {math.MaxInt64, 1}}
	if len(m.Buckets) != len(want) {
		t.Fatalf("buckets = %+v", m.Buckets)
	}
	for i, b := range want {
		if m.Buckets[i] != b {
			t.Fatalf("bucket[%d] = %+v, want %+v", i, m.Buckets[i], b)
		}
	}
	// Bounds apply only at creation.
	if r.Histogram("sizes", 5) != h {
		t.Fatal("histogram re-registration returned a different histogram")
	}
	// Default bounds kick in when none given.
	d := r.Histogram("defaulted")
	d.Observe(3)
	md, _ := r.Snapshot().Get("defaulted")
	if len(md.Buckets) != len(DefaultBounds)+1 {
		t.Fatalf("default bounds: %d buckets, want %d", len(md.Buckets), len(DefaultBounds)+1)
	}
}

func TestSnapshotSortedGetValue(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz").Add(1)
	r.Gauge("aa").Set(2)
	r.Histogram("mm").Observe(9)
	s := r.Snapshot()
	if len(s) != 3 || s[0].Name != "aa" || s[1].Name != "mm" || s[2].Name != "zz" {
		t.Fatalf("snapshot order: %+v", s)
	}
	if s.Value("zz") != 1 || s.Value("aa") != 2 {
		t.Fatal("Value on counter/gauge wrong")
	}
	if s.Value("mm") != 1 {
		t.Fatal("Value on histogram should be its count")
	}
	if s.Value("absent") != 0 {
		t.Fatal("Value on absent metric should be 0")
	}
	if _, ok := s.Get("absent"); ok {
		t.Fatal("Get on absent metric should report !ok")
	}
}

func TestImportLabels(t *testing.T) {
	run := NewRegistry()
	run.Counter("memo_hits").Add(4)
	run.Gauge("depth").Set(2)
	run.Histogram("levels", 1, 4).Observe(3)
	snap := run.Snapshot()

	parent := NewRegistry()
	parent.Import(snap, "")
	parent.Import(snap, `bench="fir"`)
	parent.Import(snap, `bench="fir"`)

	s := parent.Snapshot()
	if s.Value("memo_hits") != 4 {
		t.Fatalf("unlabeled total = %d", s.Value("memo_hits"))
	}
	if s.Value(`memo_hits{bench="fir"}`) != 8 {
		t.Fatalf("labeled total = %d", s.Value(`memo_hits{bench="fir"}`))
	}
	if s.Value(`depth{bench="fir"}`) != 4 {
		t.Fatalf("labeled gauge = %d", s.Value(`depth{bench="fir"}`))
	}
	m, ok := s.Get(`levels{bench="fir"}`)
	if !ok || m.Count != 2 || m.Sum != 6 {
		t.Fatalf("labeled histogram: %+v", m)
	}
	if len(m.Buckets) != 3 || m.Buckets[1] != (Bucket{4, 2}) {
		t.Fatalf("labeled histogram buckets: %+v", m.Buckets)
	}

	// Labels merge into an existing label set.
	if got := withLabels(`x{a="1"}`, `b="2"`); got != `x{a="1",b="2"}` {
		t.Fatalf("withLabels merge = %q", got)
	}
	if got := withLabels("x", ""); got != "x" {
		t.Fatalf("withLabels empty = %q", got)
	}
}

func TestObserverNamedScopedSpan(t *testing.T) {
	tr := NewTrace()
	o := New(NewRegistry(), tr, FixedClock(42))
	m := o.Named("matrix").Named("fir")
	if m.Path() != "matrix/fir" {
		t.Fatalf("path = %q", m.Path())
	}
	sp := m.Span("sched", "scheme", "GDP")
	child := sp.Observer().Span("inner")
	child.End()
	sp.SetAttr("extra", "1")
	sp.End()

	sc := m.Scoped()
	if sc.Registry() == o.Registry() {
		t.Fatal("Scoped should fork the registry")
	}
	if sc.Path() != "matrix/fir" || sc.TraceSink() != tr {
		t.Fatal("Scoped should keep prefix and trace")
	}
	sc.Counter("only_scoped").Add(1)
	if o.Registry().Snapshot().Value("only_scoped") != 0 {
		t.Fatal("scoped metric leaked into parent")
	}

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"span":"matrix/fir/sched","start":42,"end":42,"attrs":{"extra":"1","scheme":"GDP"}}
{"span":"matrix/fir/sched/inner","start":42,"end":42}
`
	if buf.String() != want {
		t.Fatalf("trace:\n%s\nwant:\n%s", buf.String(), want)
	}
	if tr.Len() != 2 {
		t.Fatalf("trace len = %d", tr.Len())
	}
}

func TestTraceDeterministicUnderConcurrency(t *testing.T) {
	render := func() string {
		tr := NewTrace()
		o := New(nil, tr, FixedClock(0))
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for j := 0; j < 20; j++ {
					o.Named("w").Span("s", "i", string(rune('a'+i)), "j", string(rune('a'+j))).End()
				}
			}(i)
		}
		wg.Wait()
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatal("concurrent trace output not deterministic")
	}
	if strings.Count(a, "\n") != 160 {
		t.Fatalf("trace lines = %d, want 160", strings.Count(a, "\n"))
	}
}

func TestClocks(t *testing.T) {
	if FixedClock(7)() != 7 {
		t.Fatal("FixedClock")
	}
	w := WallClock()
	now := time.Now().UnixNano()
	v := w()
	if v < now-int64(time.Minute) || v > now+int64(time.Minute) {
		t.Fatalf("WallClock = %d, far from now %d", v, now)
	}
	// New defaults a nil clock to FixedClock(0).
	o := New(nil, NewTrace(), nil)
	sp := o.Span("x")
	sp.End()
	var buf bytes.Buffer
	o.TraceSink().WriteJSONL(&buf)
	if !strings.Contains(buf.String(), `"start":0,"end":0`) {
		t.Fatalf("default clock not fixed at 0: %s", buf.String())
	}
}

func TestContextCarrier(t *testing.T) {
	if From(context.Background()) != nil {
		t.Fatal("empty context should yield nil observer")
	}
	if From(nil) != nil {
		t.Fatal("nil context should yield nil observer")
	}
	ctx := With(context.Background(), nil)
	if From(ctx) != nil {
		t.Fatal("attaching nil observer should be a no-op")
	}
	o := New(NewRegistry(), nil, nil)
	ctx = With(ctx, o)
	if From(ctx) != o {
		t.Fatal("observer lost in context")
	}
	// Re-attaching nil must not clobber the existing observer.
	if From(With(ctx, nil)) != o {
		t.Fatal("nil attach clobbered observer")
	}
}

func TestWriteSummary(t *testing.T) {
	var empty bytes.Buffer
	if err := WriteSummary(&empty, nil); err != nil {
		t.Fatal(err)
	}
	if empty.String() != "metrics: none recorded\n" {
		t.Fatalf("empty summary = %q", empty.String())
	}

	r := NewRegistry()
	r.Counter("hits").Add(12)
	r.Gauge("depth").Set(3)
	h := r.Histogram("levels", 1, 4)
	h.Observe(2)
	h.Observe(3)
	var buf bytes.Buffer
	if err := WriteSummary(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := "metrics:\n" +
		"  depth   gauge      3\n" +
		"  hits    counter    12\n" +
		"  levels  histogram  n=2 sum=5 avg=2.50\n"
	if buf.String() != want {
		t.Fatalf("summary:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(12)
	r.Counter(`hits{bench="fir"}`).Add(5)
	r.Gauge("depth").Set(3)
	h := r.Histogram("levels", 1, 4)
	h.Observe(2)
	h.Observe(3)
	h.Observe(99)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE depth gauge\n" +
		"depth 3\n" +
		"# TYPE hits counter\n" +
		"hits 12\n" +
		`hits{bench="fir"} 5` + "\n" +
		"# TYPE levels histogram\n" +
		`levels_bucket{le="1"} 0` + "\n" +
		`levels_bucket{le="4"} 2` + "\n" +
		`levels_bucket{le="+Inf"} 3` + "\n" +
		"levels_sum 104\n" +
		"levels_count 3\n"
	if buf.String() != want {
		t.Fatalf("prom:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestWritePrometheusLabeledHistogram(t *testing.T) {
	r := NewRegistry()
	run := NewRegistry()
	run.Histogram("levels", 1, 4).Observe(3)
	r.Import(run.Snapshot(), `bench="fir"`)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE levels histogram\n" +
		`levels_bucket{bench="fir",le="1"} 0` + "\n" +
		`levels_bucket{bench="fir",le="4"} 1` + "\n" +
		`levels_bucket{bench="fir",le="+Inf"} 1` + "\n" +
		`levels_sum{bench="fir"} 3` + "\n" +
		`levels_count{bench="fir"} 1` + "\n"
	if buf.String() != want {
		t.Fatalf("prom:\n%s\nwant:\n%s", buf.String(), want)
	}
}
