package obs

// Span is one timed region of the pipeline, identified by a
// slash-separated path (e.g. "matrix/fir/GDP/sched"). Spans are
// created by Observer.Span and record a single trace event when End is
// called. A nil *Span ignores every method, so callers never guard.
type Span struct {
	o     *Observer
	path  string
	start int64
	attrs map[string]string
}

// Path returns the span's full slash-separated path.
func (s *Span) Path() string {
	if s == nil {
		return ""
	}
	return s.path
}

// SetAttr attaches (or overwrites) one key/value attribute on the
// span's eventual trace event.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]string, 1)
	}
	s.attrs[k] = v
}

// Observer returns a derived observer whose span prefix is this span's
// path, so child spans and Named segments nest under it.
func (s *Span) Observer() *Observer {
	if s == nil {
		return nil
	}
	d := *s.o
	d.prefix = s.path
	return &d
}

// End closes the span, recording its trace event. Calling End on a nil
// span, or on a span whose observer has no trace sink, is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.o.trace.record(Event{Span: s.path, Start: s.start, End: s.o.clock(), Attrs: s.attrs})
}
