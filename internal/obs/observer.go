package obs

import "context"

// Observer bundles a metric registry, an optional trace sink, and a
// clock behind one nil-safe handle that the pipeline threads through
// its Options structs. A nil *Observer is fully inert: every method is
// a no-op or returns nil, and the nil metrics it hands out are
// themselves no-ops, so instrumented code never branches on "is
// observability on" except to skip whole flush blocks.
//
// Derived observers share the registry, trace and clock of their
// parent; only the span-path prefix differs. Metric names are global
// (never prefixed) — per-benchmark attribution happens via
// Registry.Import with labels, not via name mangling.
type Observer struct {
	reg    *Registry
	trace  *Trace
	clock  Clock
	prefix string
}

// New returns an observer over the given registry, trace sink and
// clock. Any of the three may be nil/zero; a nil clock defaults to
// FixedClock(0) so traces stay deterministic unless real time is
// explicitly requested.
func New(reg *Registry, trace *Trace, clock Clock) *Observer {
	if clock == nil {
		clock = FixedClock(0)
	}
	return &Observer{reg: reg, trace: trace, clock: clock}
}

// Registry returns the observer's metric registry (nil for a nil
// observer).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// TraceSink returns the observer's trace sink (nil for a nil observer
// or when tracing is off).
func (o *Observer) TraceSink() *Trace {
	if o == nil {
		return nil
	}
	return o.trace
}

// Path returns the accumulated span-path prefix ("" at the root).
func (o *Observer) Path() string {
	if o == nil {
		return ""
	}
	return o.prefix
}

// Named returns a derived observer whose span paths are nested one
// level deeper under seg. The registry, trace and clock are shared.
func (o *Observer) Named(seg string) *Observer {
	if o == nil {
		return nil
	}
	d := *o
	if d.prefix == "" {
		d.prefix = seg
	} else {
		d.prefix = d.prefix + "/" + seg
	}
	return &d
}

// Scoped returns a derived observer with a fresh, empty registry and
// the same trace, clock and prefix. The evaluation engine uses this to
// collect one run's metrics in isolation (exposed as Result.Metrics)
// before folding them into the parent registry with Import.
func (o *Observer) Scoped() *Observer {
	if o == nil {
		return nil
	}
	d := *o
	d.reg = NewRegistry()
	return &d
}

// Counter returns the named counter from the observer's registry.
func (o *Observer) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.reg.Counter(name)
}

// Gauge returns the named gauge from the observer's registry.
func (o *Observer) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	return o.reg.Gauge(name)
}

// Histogram returns the named histogram from the observer's registry.
func (o *Observer) Histogram(name string, bounds ...int64) *Histogram {
	if o == nil {
		return nil
	}
	return o.reg.Histogram(name, bounds...)
}

// Span starts a span named name under the observer's prefix. attrs are
// alternating key/value pairs attached to the span's trace event. The
// span records nothing until End is called.
func (o *Observer) Span(name string, attrs ...string) *Span {
	if o == nil {
		return nil
	}
	path := name
	if o.prefix != "" {
		path = o.prefix + "/" + name
	}
	s := &Span{o: o, path: path, start: o.clock()}
	if len(attrs) > 1 {
		s.attrs = make(map[string]string, len(attrs)/2)
		for i := 0; i+1 < len(attrs); i += 2 {
			s.attrs[attrs[i]] = attrs[i+1]
		}
	}
	return s
}

// ctxKey keys the observer in a context.Context.
type ctxKey struct{}

// With returns a context carrying o. A nil observer leaves ctx
// untouched, so From keeps returning whatever was there before.
func With(ctx context.Context, o *Observer) context.Context {
	if o == nil {
		return ctx
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, ctxKey{}, o)
}

// From extracts the observer from ctx, or nil when none is attached.
// The nil result is itself a valid (inert) observer.
func From(ctx context.Context) *Observer {
	if ctx == nil {
		return nil
	}
	o, _ := ctx.Value(ctxKey{}).(*Observer)
	return o
}
