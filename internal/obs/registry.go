// Package obs is the deterministic observability layer for the mcpart
// pipeline: hierarchical spans over every phase (parse → pointsto →
// data-partition → RHOP → sched → validate), a typed counter / gauge /
// histogram registry, and pluggable sinks (human-readable summary,
// JSON-lines trace, Prometheus-style text exposition).
//
// Everything is nil-safe: every method on a nil *Observer, *Span,
// *Counter, *Gauge, *Histogram, *Registry or *Trace is a no-op, so the
// pipeline threads a single optional pointer through its Options
// structs and pays nothing when observability is off. Hot loops keep
// their own local tallies and flush once per call, so a nil observer
// adds zero allocations to the sched and rhop inner loops (pinned by
// the zero-overhead guard tests in those packages).
//
// Determinism: metric values recorded by the pipeline are counts
// derived from the computation itself (cycles, moves, memo outcomes),
// never wall-clock durations, and trace timestamps come from an
// injectable Clock. With a FixedClock the JSON-lines trace is
// byte-identical across runs and across -j worker counts (the Trace
// sink sorts its lines on Flush, so scheduling order cannot leak into
// the output).
package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind discriminates the metric types in a Snapshot.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the lower-case kind name used by the sinks.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Counter is a monotonically increasing metric. Safe for concurrent
// use; a nil Counter ignores Add and reads as zero.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a set-to-current-value metric. Safe for concurrent use; a
// nil Gauge ignores writes and reads as zero.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultBounds are the histogram bucket upper bounds used when a
// histogram is registered without explicit bounds: powers of four,
// which cover both small structural counts (region sizes, coarsening
// levels) and large cycle-scale values in a dozen buckets.
var DefaultBounds = []int64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}

// Histogram counts observations into fixed buckets. Bounds are
// ascending upper bounds (v <= bound falls in that bucket); values
// above the last bound land in an implicit overflow bucket. Safe for
// concurrent use; a nil Histogram ignores Observe.
type Histogram struct {
	mu     sync.Mutex
	bounds []int64
	counts []int64 // len(bounds)+1; last is overflow
	sum    int64
	n      int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// Bucket is one histogram bucket in a Snapshot. Le is the inclusive
// upper bound (the overflow bucket has Le == math.MaxInt64); N is the
// non-cumulative count of observations in the bucket.
type Bucket struct {
	Le int64
	N  int64
}

// Metric is one registered metric captured by Snapshot. Value holds
// counter/gauge values; Count, Sum and Buckets hold histogram state.
type Metric struct {
	Name    string
	Kind    Kind
	Value   int64
	Count   int64
	Sum     int64
	Buckets []Bucket
}

// Snapshot is a point-in-time capture of a Registry, sorted by metric
// name so every sink emits in a deterministic order.
type Snapshot []Metric

// Get returns the metric with the given name, if present.
func (s Snapshot) Get(name string) (Metric, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i].Name >= name })
	if i < len(s) && s[i].Name == name {
		return s[i], true
	}
	return Metric{}, false
}

// Value returns the counter/gauge value (or histogram count) of the
// named metric, or zero if it is not present.
func (s Snapshot) Value(name string) int64 {
	m, ok := s.Get(name)
	if !ok {
		return 0
	}
	if m.Kind == KindHistogram {
		return m.Count
	}
	return m.Value
}

// Registry holds named metrics. Metrics are created on first use and
// live for the registry's lifetime. Safe for concurrent use; a nil
// *Registry hands out nil metrics, which are themselves no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	r.mu.Unlock()
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	r.mu.Unlock()
	return g
}

// Histogram returns the named histogram, creating it on first use.
// Bounds apply only at creation (DefaultBounds when empty); later
// calls return the existing histogram regardless of bounds.
func (r *Registry) Histogram(name string, bounds ...int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		if len(bounds) == 0 {
			bounds = DefaultBounds
		}
		b := make([]int64, len(bounds))
		copy(b, bounds)
		h = &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
		r.hists[name] = h
	}
	r.mu.Unlock()
	return h
}

// Snapshot captures every registered metric, sorted by name.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	s := make(Snapshot, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		s = append(s, Metric{Name: name, Kind: KindCounter, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s = append(s, Metric{Name: name, Kind: KindGauge, Value: g.Value()})
	}
	for name, h := range r.hists {
		h.mu.Lock()
		m := Metric{Name: name, Kind: KindHistogram, Count: h.n, Sum: h.sum}
		m.Buckets = make([]Bucket, len(h.counts))
		for i, n := range h.counts {
			le := int64(math.MaxInt64)
			if i < len(h.bounds) {
				le = h.bounds[i]
			}
			m.Buckets[i] = Bucket{Le: le, N: n}
		}
		h.mu.Unlock()
		s = append(s, m)
	}
	r.mu.Unlock()
	sort.Slice(s, func(i, j int) bool { return s[i].Name < s[j].Name })
	return s
}

// withLabels appends a formatted label set (e.g. `bench="fir"`) to a
// metric name, merging with any labels already present.
func withLabels(name, labels string) string {
	if labels == "" {
		return name
	}
	if strings.HasSuffix(name, "}") {
		return name[:len(name)-1] + "," + labels + "}"
	}
	return name + "{" + labels + "}"
}

// Import folds a snapshot into the registry, adding counter, gauge and
// histogram values into metrics of the same name. When labels is
// non-empty (formatted as `key="value"[,key="value"...]`) it is
// appended to each imported name, so a per-run snapshot can be merged
// once unlabeled (totals) and once labeled per benchmark.
func (r *Registry) Import(s Snapshot, labels string) {
	if r == nil {
		return
	}
	for _, m := range s {
		name := withLabels(m.Name, labels)
		switch m.Kind {
		case KindCounter:
			r.Counter(name).Add(m.Value)
		case KindGauge:
			r.Gauge(name).Add(m.Value)
		case KindHistogram:
			bounds := make([]int64, 0, len(m.Buckets))
			for _, b := range m.Buckets[:max(0, len(m.Buckets)-1)] {
				bounds = append(bounds, b.Le)
			}
			h := r.Histogram(name, bounds...)
			if h == nil {
				continue
			}
			h.mu.Lock()
			for i, b := range m.Buckets {
				if i < len(h.counts) {
					h.counts[i] += b.N
				}
			}
			h.sum += m.Sum
			h.n += m.Count
			h.mu.Unlock()
		}
	}
}
