package obs

import "time"

// Clock supplies trace timestamps as int64 ticks. The pipeline never
// interprets the values beyond writing them into trace events, so any
// monotonic-ish source works. Tests and the cmd tools use FixedClock
// so traces are byte-identical across runs and -j worker counts.
type Clock func() int64

// FixedClock returns a Clock that always reads v. This is the
// determinism anchor: with a fixed clock, every span starts and ends
// at the same instant, so the sorted JSON-lines trace depends only on
// which spans ran, not on when or on which goroutine.
func FixedClock(v int64) Clock { return func() int64 { return v } }

// WallClock returns a Clock reading real time in nanoseconds since the
// Unix epoch. Traces taken with it are not reproducible byte-for-byte;
// use it only for interactive latency investigation.
func WallClock() Clock { return func() int64 { return time.Now().UnixNano() } }
