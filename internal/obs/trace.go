package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// Event is one completed span as it appears in the JSON-lines trace.
// Attrs marshal with sorted keys (encoding/json sorts map keys), so an
// event's line depends only on its content.
type Event struct {
	Span  string            `json:"span"`
	Start int64             `json:"start"`
	End   int64             `json:"end"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Trace accumulates span events for the JSON-lines sink. Events are
// rendered to their final line at record time and sorted at write
// time, so the emitted file is independent of goroutine scheduling —
// with a FixedClock, byte-identical across runs and -j levels. Safe
// for concurrent use; a nil *Trace ignores everything.
type Trace struct {
	mu    sync.Mutex
	lines []string
}

// NewTrace returns an empty trace sink.
func NewTrace() *Trace { return &Trace{} }

// record renders e to its JSON line and appends it.
func (t *Trace) record(e Event) {
	if t == nil {
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	t.mu.Lock()
	t.lines = append(t.lines, string(b))
	t.mu.Unlock()
}

// Len returns the number of recorded events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.lines)
}

// WriteJSONL writes every recorded event, one JSON object per line,
// sorted lexically by rendered line.
func (t *Trace) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	lines := append([]string(nil), t.lines...)
	t.mu.Unlock()
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := io.WriteString(w, l+"\n"); err != nil {
			return err
		}
	}
	return nil
}
