package obs

import (
	"fmt"
	"io"
	"os"
)

// ToolSinks is the command-line wiring shared by the cmd tools' -trace,
// -metrics, and -prom flags: it lazily assembles one deterministic
// observer (fixed clock, so trace files are byte-identical across runs
// and -j levels) and flushes its sinks when the tool finishes. The zero
// value with no paths set is inert: Observer returns nil and Flush does
// nothing, so an unobserved tool run pays nothing.
type ToolSinks struct {
	// TracePath receives the span trace as sorted JSON lines ("" = off).
	TracePath string
	// Summary selects the human-readable metric summary on the tool's
	// standard output.
	Summary bool
	// PromPath receives the metrics in Prometheus text exposition format
	// ("" = off).
	PromPath string

	o  *Observer
	tr *Trace
}

// enabled reports whether any sink was requested.
func (t *ToolSinks) enabled() bool {
	return t.TracePath != "" || t.Summary || t.PromPath != ""
}

// Observer returns the tool's observer, building it on first use; nil
// when no sink was requested, which downstream layers treat as
// observability-off.
func (t *ToolSinks) Observer() *Observer {
	if !t.enabled() {
		return nil
	}
	if t.o == nil {
		if t.TracePath != "" {
			t.tr = NewTrace()
		}
		t.o = New(NewRegistry(), t.tr, FixedClock(0))
	}
	return t.o
}

// Flush writes every requested sink: the summary to w, the trace and
// Prometheus files to their paths. Call it after the tool's normal
// output (and on failure too — a partial trace is exactly what a failed
// run should leave behind).
func (t *ToolSinks) Flush(w io.Writer) error {
	if t.o == nil {
		return nil
	}
	var snap Snapshot
	if t.Summary || t.PromPath != "" {
		snap = t.o.Registry().Snapshot()
	}
	if t.Summary {
		if err := WriteSummary(w, snap); err != nil {
			return err
		}
	}
	if t.PromPath != "" {
		if err := writeFile(t.PromPath, func(f io.Writer) error {
			return WritePrometheus(f, snap)
		}); err != nil {
			return err
		}
	}
	if t.TracePath != "" {
		if err := writeFile(t.TracePath, t.tr.WriteJSONL); err != nil {
			return err
		}
	}
	return nil
}

func writeFile(path string, render func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	werr := render(f)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("obs: write %s: %w", path, werr)
	}
	if cerr != nil {
		return fmt.Errorf("obs: %w", cerr)
	}
	return nil
}
