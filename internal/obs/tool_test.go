package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestToolSinksInert pins the zero-value contract: with no sink
// requested the Observer is nil (downstream layers read that as
// observability-off) and Flush writes nothing.
func TestToolSinksInert(t *testing.T) {
	ts := &ToolSinks{}
	if o := ts.Observer(); o != nil {
		t.Fatalf("inert ToolSinks produced an observer: %v", o)
	}
	var sb strings.Builder
	if err := ts.Flush(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Fatalf("inert Flush wrote %q", sb.String())
	}
}

// TestToolSinksAllSinks exercises the full fan-out: summary to the
// writer, Prometheus text and the sorted trace to files, all from one
// lazily built observer with the deterministic fixed clock.
func TestToolSinksAllSinks(t *testing.T) {
	dir := t.TempDir()
	ts := &ToolSinks{
		TracePath: filepath.Join(dir, "run.trace"),
		Summary:   true,
		PromPath:  filepath.Join(dir, "run.prom"),
	}
	o := ts.Observer()
	if o == nil {
		t.Fatal("enabled ToolSinks returned nil observer")
	}
	if again := ts.Observer(); again != o {
		t.Fatal("Observer must be built once and reused")
	}
	o.Counter("tool_events").Add(3)
	sp := o.Span("phase", "bench", "x")
	sp.End()
	o.Span("phase2").End()

	var sb strings.Builder
	if err := ts.Flush(&sb); err != nil {
		t.Fatal(err)
	}
	if out := sb.String(); !strings.Contains(out, "tool_events") || !strings.Contains(out, "counter") {
		t.Errorf("summary missing counter:\n%s", out)
	}
	prom, err := os.ReadFile(ts.PromPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(prom), "# TYPE tool_events counter") {
		t.Errorf("prometheus output missing type line:\n%s", prom)
	}
	trace, err := os.ReadFile(ts.TracePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(trace)), "\n")
	if len(lines) != 2 {
		t.Fatalf("trace has %d lines, want 2:\n%s", len(lines), trace)
	}
	// WriteJSONL sorts, so "phase" (with its attr) precedes "phase2".
	if !strings.Contains(lines[0], `"phase"`) || !strings.Contains(lines[0], `"bench":"x"`) {
		t.Errorf("first trace line wrong: %s", lines[0])
	}
}

// TestToolSinksSummaryOnly covers the branch where metrics are
// requested but no files are: Flush must touch no paths.
func TestToolSinksSummaryOnly(t *testing.T) {
	ts := &ToolSinks{Summary: true}
	ts.Observer().Counter("n").Add(1)
	var sb strings.Builder
	if err := ts.Flush(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "n") {
		t.Errorf("summary missing metric:\n%s", sb.String())
	}
}

// TestToolSinksTraceOnly covers the trace-without-metrics branch: the
// summary writer stays untouched and no snapshot is taken.
func TestToolSinksTraceOnly(t *testing.T) {
	dir := t.TempDir()
	ts := &ToolSinks{TracePath: filepath.Join(dir, "t.trace")}
	ts.Observer().Span("only").End()
	var sb strings.Builder
	if err := ts.Flush(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Errorf("trace-only Flush wrote a summary: %q", sb.String())
	}
	if data, err := os.ReadFile(ts.TracePath); err != nil || !strings.Contains(string(data), "only") {
		t.Errorf("trace file wrong (%v):\n%s", err, data)
	}
}

// TestNilHandlePaths sweeps the remaining nil-safety branches: every
// accessor on a nil observer or span must be inert, and With must leave
// a context untouched when given a nil observer.
func TestNilHandlePaths(t *testing.T) {
	var o *Observer
	if o.Gauge("g") != nil || o.Histogram("h", 1, 2) != nil {
		t.Error("nil observer must hand out nil metrics")
	}
	real := New(NewRegistry(), nil, nil)
	if real.Gauge("g") == nil || real.Histogram("h", 1, 2) == nil {
		t.Error("real observer must hand out real metrics")
	}
	if ctx := With(nil, nil); ctx != nil {
		t.Error("With(nil, nil) must stay nil (observer absent)")
	}
	if From(With(nil, real)) != real {
		t.Error("With(nil, o) must build a carrier context")
	}
	var sp *Span
	sp.SetAttr("k", "v") // must not panic
	if sp.Path() != "" {
		t.Error("nil span path must be empty")
	}
	s := real.Span("x")
	s.SetAttr("k", "v")
	s.SetAttr("k", "w")
	if s.Path() != "x" || s.attrs["k"] != "w" {
		t.Errorf("span path/attrs wrong: %q %v", s.Path(), s.attrs)
	}
	if got := Kind(99).String(); got != "unknown" {
		t.Errorf("Kind(99) = %q", got)
	}
}

// TestToolSinksWriteErrors pins that unwritable sink paths surface as
// errors instead of vanishing with the process.
func TestToolSinksWriteErrors(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no", "such", "dir", "out")
	for _, ts := range []*ToolSinks{
		{PromPath: bad},
		{TracePath: bad},
	} {
		ts.Observer().Counter("n").Add(1)
		if err := ts.Flush(nil); err == nil {
			t.Errorf("Flush(%+v) with unwritable path succeeded", ts)
		}
	}
}
