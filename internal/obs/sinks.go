package obs

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// splitName separates an embedded label set from a metric name:
// `memo_hits{bench="fir"}` → ("memo_hits", `bench="fir"`).
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// WriteSummary writes a human-readable, deterministically ordered
// rendering of the snapshot: one line per metric, counters and gauges
// with their value, histograms with count, sum and mean.
func WriteSummary(w io.Writer, s Snapshot) error {
	if len(s) == 0 {
		_, err := fmt.Fprintln(w, "metrics: none recorded")
		return err
	}
	width := 0
	for _, m := range s {
		if len(m.Name) > width {
			width = len(m.Name)
		}
	}
	if _, err := fmt.Fprintln(w, "metrics:"); err != nil {
		return err
	}
	for _, m := range s {
		var err error
		switch m.Kind {
		case KindHistogram:
			avg := 0.0
			if m.Count > 0 {
				avg = float64(m.Sum) / float64(m.Count)
			}
			_, err = fmt.Fprintf(w, "  %-*s  histogram  n=%d sum=%d avg=%.2f\n",
				width, m.Name, m.Count, m.Sum, avg)
		default:
			_, err = fmt.Fprintf(w, "  %-*s  %-9s  %d\n", width, m.Name, m.Kind, m.Value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// WritePrometheus writes the snapshot in the Prometheus text
// exposition format. Labels embedded in metric names (as produced by
// Registry.Import) are re-expanded into proper label sets; histogram
// buckets are emitted cumulatively with the conventional le label and
// +Inf overflow bucket.
func WritePrometheus(w io.Writer, s Snapshot) error {
	typed := make(map[string]bool)
	for _, m := range s {
		base, labels := splitName(m.Name)
		if !typed[base] {
			typed[base] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, m.Kind); err != nil {
				return err
			}
		}
		switch m.Kind {
		case KindHistogram:
			cum := int64(0)
			for _, b := range m.Buckets {
				cum += b.N
				le := "+Inf"
				if b.Le != math.MaxInt64 {
					le = fmt.Sprintf("%d", b.Le)
				}
				ls := fmt.Sprintf("le=%q", le)
				if labels != "" {
					ls = labels + "," + ls
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", base, ls, cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", base, curly(labels), m.Sum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", base, curly(labels), m.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", base, curly(labels), m.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

// curly wraps a non-empty label string in braces.
func curly(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}
