// Package cfg provides control-flow and data-flow analyses over the IR:
// reverse-postorder numbering, dominators, natural-loop detection, liveness,
// reaching definitions at the def-use level, and the region formation used
// by the region-based computation partitioner (regions are innermost loop
// bodies, with remaining blocks as singleton regions).
package cfg

import (
	"sort"

	"mcpart/internal/ir"
)

// RPO returns the function's blocks in reverse postorder from the entry.
// Unreachable blocks are appended after the reachable ones in ID order so
// every block appears exactly once.
func RPO(f *ir.Func) []*ir.Block {
	seen := make([]bool, len(f.Blocks))
	var post []*ir.Block
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		seen[b.ID] = true
		for _, s := range b.Succs {
			if !seen[s.ID] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(f.Entry())
	out := make([]*ir.Block, 0, len(f.Blocks))
	for i := len(post) - 1; i >= 0; i-- {
		out = append(out, post[i])
	}
	for _, b := range f.Blocks {
		if !seen[b.ID] {
			out = append(out, b)
		}
	}
	return out
}

// Dominators computes the immediate dominator of every reachable block using
// the Cooper–Harvey–Kennedy iterative algorithm. idom[entry] = entry;
// unreachable blocks map to nil.
func Dominators(f *ir.Func) map[*ir.Block]*ir.Block {
	rpo := RPO(f)
	index := make(map[*ir.Block]int, len(rpo))
	for i, b := range rpo {
		index[b] = i
	}
	idom := make(map[*ir.Block]*ir.Block, len(rpo))
	entry := f.Entry()
	idom[entry] = entry

	intersect := func(a, b *ir.Block) *ir.Block {
		for a != b {
			for index[a] > index[b] {
				a = idom[a]
			}
			for index[b] > index[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == entry {
				continue
			}
			var newIdom *ir.Block
			for _, p := range b.Preds {
				if idom[p] == nil {
					continue // pred not yet processed or unreachable
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != nil && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether a dominates b under the idom tree.
func Dominates(idom map[*ir.Block]*ir.Block, a, b *ir.Block) bool {
	for {
		if b == a {
			return true
		}
		next := idom[b]
		if next == nil || next == b {
			return a == b || a == next
		}
		b = next
	}
}

// Loop is a natural loop: a header block and the set of blocks in its body
// (including the header).
type Loop struct {
	Header *ir.Block
	Blocks map[*ir.Block]bool
	Depth  int   // nesting depth, 1 = outermost
	Parent *Loop // enclosing loop, nil for outermost
}

// Loops finds all natural loops via back edges (edge t->h where h dominates
// t), merging loops that share a header. Returned in order of increasing
// header block ID. Depth and Parent are filled by containment analysis.
func Loops(f *ir.Func) []*Loop {
	idom := Dominators(f)
	byHeader := make(map[*ir.Block]*Loop)
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			if idom[b] != nil && Dominates(idom, s, b) {
				l := byHeader[s]
				if l == nil {
					l = &Loop{Header: s, Blocks: map[*ir.Block]bool{s: true}}
					byHeader[s] = l
				}
				// Walk backwards from the latch collecting the body.
				stack := []*ir.Block{b}
				for len(stack) > 0 {
					x := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					if l.Blocks[x] {
						continue
					}
					l.Blocks[x] = true
					stack = append(stack, x.Preds...)
				}
			}
		}
	}
	loops := make([]*Loop, 0, len(byHeader))
	for _, l := range byHeader {
		loops = append(loops, l)
	}
	sort.Slice(loops, func(i, j int) bool { return loops[i].Header.ID < loops[j].Header.ID })

	// Containment: loop A contains B if A's body includes B's header and
	// A != B. Parent = smallest containing loop.
	for _, b := range loops {
		var parent *Loop
		for _, a := range loops {
			if a == b || !a.Blocks[b.Header] {
				continue
			}
			if parent == nil || len(a.Blocks) < len(parent.Blocks) {
				parent = a
			}
		}
		b.Parent = parent
	}
	for _, l := range loops {
		d := 1
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		l.Depth = d
	}
	return loops
}

// LoopDepths returns, per block ID, the nesting depth of the innermost loop
// containing the block (0 when outside all loops).
func LoopDepths(f *ir.Func) []int {
	depths := make([]int, len(f.Blocks))
	for _, l := range Loops(f) {
		for b := range l.Blocks {
			if l.Depth > depths[b.ID] {
				depths[b.ID] = l.Depth
			}
		}
	}
	return depths
}
