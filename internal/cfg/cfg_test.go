package cfg

import (
	"testing"

	"mcpart/internal/ir"
)

// buildLoop constructs:
//
//	b0: i=0; br b1
//	b1: c = i<n; brcond c, b2, b3
//	b2: i = i+1; br b1
//	b3: ret i
func buildLoop(t testing.TB) *ir.Func {
	m := ir.NewModule("loop")
	bd := ir.NewBuilder(m, "f", 1)
	head := bd.NewBlock()
	body := bd.NewBlock()
	exit := bd.NewBlock()
	i := bd.Emit(ir.OpMov, ir.ConstInt(0))
	bd.Br(head)
	bd.SetBlock(head)
	c := bd.Emit(ir.OpCmpLT, ir.Reg(i), ir.Reg(0))
	bd.BrCond(ir.Reg(c), body, exit)
	bd.SetBlock(body)
	i2 := bd.Emit(ir.OpAdd, ir.Reg(i), ir.ConstInt(1))
	bd.EmitVoid(ir.OpStore, ir.Reg(i2), ir.Reg(i2)) // dummy to vary op mix
	bd.Br(head)
	bd.SetBlock(exit)
	bd.Ret(ir.Reg(i))
	// Note: non-SSA reuse of i is emulated by treating i and i2 as the same
	// conceptually; for analysis tests the distinction doesn't matter.
	if err := ir.Verify(m); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return m.Func("f")
}

func TestRPOStartsAtEntryAndCoversAll(t *testing.T) {
	f := buildLoop(t)
	rpo := RPO(f)
	if len(rpo) != len(f.Blocks) {
		t.Fatalf("RPO has %d blocks, want %d", len(rpo), len(f.Blocks))
	}
	if rpo[0] != f.Entry() {
		t.Fatalf("RPO[0] = b%d, want entry", rpo[0].ID)
	}
	seen := map[int]bool{}
	for _, b := range rpo {
		if seen[b.ID] {
			t.Fatalf("block b%d appears twice", b.ID)
		}
		seen[b.ID] = true
	}
}

func TestDominators(t *testing.T) {
	f := buildLoop(t)
	idom := Dominators(f)
	b := f.Blocks
	if idom[b[0]] != b[0] {
		t.Errorf("idom(entry) = %v", idom[b[0]])
	}
	if idom[b[1]] != b[0] {
		t.Errorf("idom(b1) = %v, want b0", idom[b[1]])
	}
	if idom[b[2]] != b[1] {
		t.Errorf("idom(b2) = %v, want b1", idom[b[2]])
	}
	if idom[b[3]] != b[1] {
		t.Errorf("idom(b3) = %v, want b1", idom[b[3]])
	}
	if !Dominates(idom, b[0], b[3]) || !Dominates(idom, b[1], b[2]) {
		t.Error("Dominates gave wrong answers")
	}
	if Dominates(idom, b[2], b[3]) {
		t.Error("b2 should not dominate b3")
	}
}

func TestLoops(t *testing.T) {
	f := buildLoop(t)
	loops := Loops(f)
	if len(loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(loops))
	}
	l := loops[0]
	if l.Header != f.Blocks[1] {
		t.Errorf("loop header = b%d, want b1", l.Header.ID)
	}
	if !l.Blocks[f.Blocks[1]] || !l.Blocks[f.Blocks[2]] {
		t.Errorf("loop body missing blocks: %v", l.Blocks)
	}
	if l.Blocks[f.Blocks[0]] || l.Blocks[f.Blocks[3]] {
		t.Errorf("loop body includes non-loop blocks")
	}
	if l.Depth != 1 || l.Parent != nil {
		t.Errorf("Depth=%d Parent=%v, want 1,nil", l.Depth, l.Parent)
	}
}

func TestNestedLoops(t *testing.T) {
	// b0 -> b1(outer head) -> b2(inner head) -> b3(inner body) -> b2 ;
	// b2 -> b4 -> b1 ; b1 -> b5 ret
	m := ir.NewModule("nest")
	bd := ir.NewBuilder(m, "f", 1)
	b1 := bd.NewBlock()
	b2 := bd.NewBlock()
	b3 := bd.NewBlock()
	b4 := bd.NewBlock()
	b5 := bd.NewBlock()
	bd.Br(b1)
	bd.SetBlock(b1)
	c1 := bd.Emit(ir.OpCmpLT, ir.Reg(0), ir.ConstInt(10))
	bd.BrCond(ir.Reg(c1), b2, b5)
	bd.SetBlock(b2)
	c2 := bd.Emit(ir.OpCmpLT, ir.Reg(0), ir.ConstInt(5))
	bd.BrCond(ir.Reg(c2), b3, b4)
	bd.SetBlock(b3)
	bd.Br(b2)
	bd.SetBlock(b4)
	bd.Br(b1)
	bd.SetBlock(b5)
	bd.Ret()
	if err := ir.Verify(m); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	f := m.Func("f")
	loops := Loops(f)
	if len(loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(loops))
	}
	outer, inner := loops[0], loops[1]
	if outer.Header != b1 || inner.Header != b2 {
		t.Fatalf("headers: %v %v", outer.Header, inner.Header)
	}
	if inner.Parent != outer || inner.Depth != 2 || outer.Depth != 1 {
		t.Errorf("nesting wrong: inner.Parent=%v depths %d/%d",
			inner.Parent, inner.Depth, outer.Depth)
	}
	depths := LoopDepths(f)
	want := []int{0, 1, 2, 2, 1, 0}
	for i, d := range want {
		if depths[i] != d {
			t.Errorf("depth(b%d) = %d, want %d", i, depths[i], d)
		}
	}
}

func TestLiveness(t *testing.T) {
	f := buildLoop(t)
	lv := ComputeLiveness(f)
	// v1 (i) is defined in b0, used in b1 (cmp) and b3 (ret): live-in at b1, b3.
	if !lv.In[1][1] {
		t.Error("v1 should be live-in at loop header")
	}
	if !lv.In[3][1] {
		t.Error("v1 should be live-in at exit block")
	}
	// v2 (cond) is local to b1: not live-in anywhere but consumed in b1.
	if lv.In[1][2] {
		t.Error("v2 should not be live-in at its defining block")
	}
	// Param v0 is live-in at entry (used in b1's cmp).
	if !lv.In[0][0] {
		t.Error("param v0 should be live-in at entry")
	}
}

func TestDefUse(t *testing.T) {
	f := buildLoop(t)
	du := ComputeDefUse(f)
	ops := f.OpsByID()
	// Find the add op; its result v3 feeds the store twice in the same block.
	var add *ir.Op
	for _, op := range ops {
		if op.Opcode == ir.OpAdd {
			add = op
		}
	}
	if add == nil {
		t.Fatal("no add op")
	}
	uses := du.UsesOf[add.ID]
	if len(uses) != 1 {
		t.Fatalf("add has %d distinct users, want 1 (the store)", len(uses))
	}
	store := ops[uses[0]]
	if store.Opcode != ir.OpStore {
		t.Fatalf("user of add is %s, want store", store.Opcode)
	}
	// The store's first arg def set should be exactly the add.
	defs := du.DefsOf[store.ID][0]
	if len(defs) != 1 || defs[0] != add.ID {
		t.Fatalf("DefsOf(store)[0] = %v, want [%d]", defs, add.ID)
	}
}

func TestFormRegions(t *testing.T) {
	f := buildLoop(t)
	regions := FormRegions(f)
	if len(regions) != 3 {
		t.Fatalf("got %d regions, want 3 (pre, loop, exit)", len(regions))
	}
	// The loop region must contain exactly b1 and b2.
	var loopR *Region
	for _, r := range regions {
		if len(r.Blocks) == 2 {
			loopR = r
		}
	}
	if loopR == nil {
		t.Fatal("no 2-block loop region")
	}
	if loopR.Blocks[0].ID != 1 || loopR.Blocks[1].ID != 2 {
		t.Fatalf("loop region blocks = %v", loopR.Blocks)
	}
	// Every block in exactly one region.
	count := map[int]int{}
	for _, r := range regions {
		for _, b := range r.Blocks {
			count[b.ID]++
		}
	}
	for id, c := range count {
		if c != 1 {
			t.Errorf("block b%d in %d regions", id, c)
		}
	}
	if len(count) != len(f.Blocks) {
		t.Errorf("regions cover %d blocks, want %d", len(count), len(f.Blocks))
	}
}
