package cfg

import (
	"sort"

	"mcpart/internal/ir"
)

// Liveness holds per-block live-in and live-out virtual register sets.
type Liveness struct {
	In  []map[ir.VReg]bool // indexed by block ID
	Out []map[ir.VReg]bool
}

// ComputeLiveness runs the classic backwards iterative live-variable
// analysis over a function.
func ComputeLiveness(f *ir.Func) *Liveness {
	n := len(f.Blocks)
	use := make([]map[ir.VReg]bool, n)
	def := make([]map[ir.VReg]bool, n)
	for _, b := range f.Blocks {
		u, d := map[ir.VReg]bool{}, map[ir.VReg]bool{}
		for _, op := range b.Ops {
			for _, a := range op.Args {
				if a.IsReg() && !d[a.Reg] {
					u[a.Reg] = true
				}
			}
			if op.Dst != ir.NoReg {
				d[op.Dst] = true
			}
		}
		use[b.ID], def[b.ID] = u, d
	}
	lv := &Liveness{
		In:  make([]map[ir.VReg]bool, n),
		Out: make([]map[ir.VReg]bool, n),
	}
	for i := 0; i < n; i++ {
		lv.In[i] = map[ir.VReg]bool{}
		lv.Out[i] = map[ir.VReg]bool{}
	}
	for changed := true; changed; {
		changed = false
		// Iterate blocks in reverse ID order for faster convergence.
		for i := n - 1; i >= 0; i-- {
			b := f.Blocks[i]
			out := lv.Out[b.ID]
			for _, s := range b.Succs {
				for r := range lv.In[s.ID] {
					if !out[r] {
						out[r] = true
						changed = true
					}
				}
			}
			in := lv.In[b.ID]
			for r := range use[b.ID] {
				if !in[r] {
					in[r] = true
					changed = true
				}
			}
			for r := range out {
				if !def[b.ID][r] && !in[r] {
					in[r] = true
					changed = true
				}
			}
		}
	}
	return lv
}

// DefUse records, for each op, the ops that consume each value it defines,
// and for each op, the defs that may reach each of its register uses.
type DefUse struct {
	// UsesOf[opID] lists ops (by ID) that use the value defined by opID.
	UsesOf [][]int
	// DefsOf[opID] lists op IDs whose definitions may reach opID's uses,
	// one inner slice per register argument position.
	DefsOf [][][]int
	// DefsOfReg[r] lists all op IDs defining register r.
	DefsOfReg map[ir.VReg][]int
}

// ComputeDefUse builds def-use chains with block-level precision: within a
// block, the nearest preceding definition reaches a use; across blocks, any
// definition of the register whose block can reach the use block (per
// liveness) is considered reaching. This is conservative but exact enough
// for graph construction, where an edge means "these two ops may need to
// communicate a value".
func ComputeDefUse(f *ir.Func) *DefUse {
	lv := ComputeLiveness(f)
	du := &DefUse{
		UsesOf:    make([][]int, f.NOps),
		DefsOf:    make([][][]int, f.NOps),
		DefsOfReg: map[ir.VReg][]int{},
	}
	for _, b := range f.Blocks {
		for _, op := range b.Ops {
			if op.Dst != ir.NoReg {
				du.DefsOfReg[op.Dst] = append(du.DefsOfReg[op.Dst], op.ID)
			}
		}
	}
	// Per-block walk tracking the latest local def of each register.
	for _, b := range f.Blocks {
		local := map[ir.VReg]int{} // reg -> defining op ID within this block
		for _, op := range b.Ops {
			du.DefsOf[op.ID] = make([][]int, len(op.Args))
			for i, a := range op.Args {
				if !a.IsReg() {
					continue
				}
				if d, ok := local[a.Reg]; ok {
					du.DefsOf[op.ID][i] = []int{d}
					du.UsesOf[d] = append(du.UsesOf[d], op.ID)
					continue
				}
				// Upwards-exposed use: all defs of the register in blocks
				// where it is live-out reaching this block. Conservative:
				// every def of the register counts if the reg is live-in
				// here. Parameters (no defs) yield an empty set.
				if lv.In[b.ID][a.Reg] || int(a.Reg) < f.NParams {
					defs := du.DefsOfReg[a.Reg]
					du.DefsOf[op.ID][i] = append([]int(nil), defs...)
					for _, d := range defs {
						du.UsesOf[d] = append(du.UsesOf[d], op.ID)
					}
				}
			}
			if op.Dst != ir.NoReg {
				local[op.Dst] = op.ID
			}
		}
	}
	// Deduplicate and sort the use lists.
	for i := range du.UsesOf {
		du.UsesOf[i] = dedupInts(du.UsesOf[i])
	}
	return du
}

func dedupInts(xs []int) []int {
	if len(xs) < 2 {
		return xs
	}
	sort.Ints(xs)
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// Region is a unit of computation partitioning: a set of basic blocks that
// the operation partitioner considers together. Following RHOP, regions are
// the bodies of innermost loops (where most execution time concentrates);
// blocks outside any loop form singleton regions.
type Region struct {
	ID     int
	Func   *ir.Func
	Blocks []*ir.Block // in block-ID order
}

// FormRegions partitions a function's blocks into regions. Each block
// belongs to exactly one region: the innermost loop containing it, or a
// singleton. Regions are returned in order of their first block ID.
func FormRegions(f *ir.Func) []*Region {
	loops := Loops(f)
	// innermost[b] = innermost loop containing block b.
	innermost := make([]*Loop, len(f.Blocks))
	for _, l := range loops {
		for b := range l.Blocks {
			cur := innermost[b.ID]
			if cur == nil || l.Depth > cur.Depth {
				innermost[b.ID] = l
			}
		}
	}
	regionOf := map[*Loop]*Region{}
	var regions []*Region
	for _, b := range f.Blocks {
		l := innermost[b.ID]
		if l == nil {
			regions = append(regions, &Region{Func: f, Blocks: []*ir.Block{b}})
			continue
		}
		r := regionOf[l]
		if r == nil {
			r = &Region{Func: f}
			regionOf[l] = r
			regions = append(regions, r)
		}
		r.Blocks = append(r.Blocks, b)
	}
	sort.Slice(regions, func(i, j int) bool {
		return regions[i].Blocks[0].ID < regions[j].Blocks[0].ID
	})
	for i, r := range regions {
		r.ID = i
		sort.Slice(r.Blocks, func(a, b int) bool { return r.Blocks[a].ID < r.Blocks[b].ID })
	}
	return regions
}
