package cfg

import (
	"testing"

	"mcpart/internal/ir"
	"mcpart/internal/mclang"
	"mcpart/internal/progen"
)

// bruteDominates reports whether block a dominates block b by exhaustive
// path checking: b is unreachable from entry when every path is forced to
// avoid a... equivalently, with a removed, b must be unreachable (for
// a != b and b reachable).
func bruteDominates(f *ir.Func, a, b *ir.Block) bool {
	if a == b {
		return true
	}
	seen := map[*ir.Block]bool{a: true} // treat a as a wall
	stack := []*ir.Block{f.Entry()}
	if f.Entry() == a {
		return true // entry dominates everything reachable
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[x] {
			continue
		}
		seen[x] = true
		if x == b {
			return false // reached b without passing a
		}
		stack = append(stack, x.Succs...)
	}
	return true
}

func reachable(f *ir.Func) map[*ir.Block]bool {
	seen := map[*ir.Block]bool{}
	stack := []*ir.Block{f.Entry()}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[x] {
			continue
		}
		seen[x] = true
		stack = append(stack, x.Succs...)
	}
	return seen
}

// TestDominatorsAgainstBruteForce validates the iterative dominator
// computation against path-based brute force on the CFGs of randomly
// generated programs.
func TestDominatorsAgainstBruteForce(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		src := progen.Generate(seed, progen.Options{})
		mod, err := mclang.Compile(src, "gen")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, f := range mod.Funcs {
			idom := Dominators(f)
			reach := reachable(f)
			for _, a := range f.Blocks {
				for _, b := range f.Blocks {
					if !reach[a] || !reach[b] {
						continue
					}
					got := Dominates(idom, a, b)
					want := bruteDominates(f, a, b)
					if got != want {
						t.Fatalf("seed %d %s: Dominates(b%d, b%d) = %v, brute force %v",
							seed, f.Name, a.ID, b.ID, got, want)
					}
				}
			}
		}
	}
}

// TestLoopsAgainstBackEdges validates that every detected loop's body is
// exactly the set of blocks that can reach a back edge source without
// leaving through the header.
func TestLoopBodiesClosed(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		src := progen.Generate(seed, progen.Options{})
		mod, err := mclang.Compile(src, "gen")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, f := range mod.Funcs {
			for _, l := range Loops(f) {
				// The header is in the body; every body block can reach the
				// header without leaving the loop (natural-loop property:
				// body = header + blocks that reach a latch within the loop).
				if !l.Blocks[l.Header] {
					t.Fatalf("seed %d: header not in its own loop", seed)
				}
				for b := range l.Blocks {
					if b == l.Header {
						continue
					}
					// Every predecessor chain inside the loop must reach the
					// header: check that b has at least one in-loop pred.
					ok := false
					for _, p := range b.Preds {
						if l.Blocks[p] {
							ok = true
						}
					}
					if !ok {
						t.Fatalf("seed %d %s: loop block b%d has no in-loop pred",
							seed, f.Name, b.ID)
					}
				}
			}
		}
	}
}

// TestRegionsPartitionBlocks checks the region invariant on generated
// programs: every block in exactly one region.
func TestRegionsPartitionBlocksGenerated(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		src := progen.Generate(seed, progen.Options{})
		mod, err := mclang.Compile(src, "gen")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, f := range mod.Funcs {
			count := map[int]int{}
			for _, r := range FormRegions(f) {
				for _, b := range r.Blocks {
					count[b.ID]++
				}
			}
			if len(count) != len(f.Blocks) {
				t.Fatalf("seed %d %s: regions cover %d of %d blocks",
					seed, f.Name, len(count), len(f.Blocks))
			}
			for id, c := range count {
				if c != 1 {
					t.Fatalf("seed %d %s: block b%d in %d regions", seed, f.Name, id, c)
				}
			}
		}
	}
}
