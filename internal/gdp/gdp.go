// Package gdp implements the paper's primary contribution: Global Data
// Partitioning (§3). It builds a program-level data-flow graph of the whole
// application, coarsens it with access-pattern merges (objects reachable
// from one memory operation merge together; memory operations sharing an
// object merge together, §3.3.1), and partitions the coarsened graph with
// the multilevel multi-constraint partitioner, balancing data bytes across
// cluster memories while minimizing cut data-flow edges (§3.3.2). The
// resulting object-to-cluster map is handed to the second pass (rhop) as
// memory-operation locks (§3.4).
package gdp

import (
	"fmt"
	"sort"

	"mcpart/internal/cfg"
	"mcpart/internal/defaults"
	"mcpart/internal/interp"
	"mcpart/internal/ir"
	"mcpart/internal/machine"
	"mcpart/internal/obs"
	"mcpart/internal/partition"
	"mcpart/internal/rhop"
)

// DataMap assigns each data object (by ID) a home cluster.
type DataMap []int

// Options tunes the data partitioner.
type Options struct {
	// MemTol is the imbalance tolerance on data bytes per cluster
	// (default 0.10; the paper's §4.3 notes this knob trades balance for
	// performance).
	MemTol float64
	// MemFractions gives each cluster's target share of total data bytes
	// (nil = equal shares) — the paper's parameterized balance for
	// asymmetric cluster memories (§3.3.2). Length must equal the cluster
	// count when set.
	MemFractions []float64
	// BalanceOps adds a second balance constraint on computation weight
	// (ablation; the paper balances only data bytes — §3.3.2 — and lets
	// the second pass balance operations, and adding this constraint
	// forces serial programs to split and drags their data apart).
	BalanceOps bool
	// OpTol is the computation-weight tolerance when BalanceOps is set
	// (default 0.60).
	OpTol float64
	// NoMerge disables access-pattern merging (ablation).
	NoMerge bool
	// NoSinkWeighting disables the down-weighting of dataflow edges whose
	// consumer is a store (ablation). Store inputs are latency-tolerant
	// sinks — feeding a store on a remote cluster only costs bus
	// bandwidth, while a remote load result stalls its consumers — so by
	// default those edges weigh 1/4 as much in the program-level graph.
	NoSinkWeighting bool
	// SlackMerge additionally merges single-consumer dependence chains
	// before partitioning — approximating the "merge dependent operations
	// with low slack" variant the paper evaluated and rejected (§3.3.1).
	SlackMerge bool
	// LegacyPartition routes the object-graph bisection through the legacy
	// partitioner path instead of the CSR + gain-bucket FM fast path
	// (ablation).
	LegacyPartition bool
	// Workers bounds the fast partitioner's multi-start fan-out; 0 means
	// runtime.GOMAXPROCS(0). Results are identical for every value.
	Workers int
	// Obs, when non-nil, records the data-partitioning metrics
	// (gdp_partitions, gdp_groups, gdp_cut_weight) and is threaded into
	// the graph partitioner for its fm_* metrics. Nil costs nothing.
	Obs *obs.Observer
}

func (o Options) memTol() float64 { return defaults.Float(o.MemTol, 0.10) }
func (o Options) opTol() float64  { return defaults.Float(o.OpTol, 0.60) }

// Result is the outcome of global data partitioning.
type Result struct {
	DataMap DataMap
	// Groups lists the access-pattern-merged object groups (each a sorted
	// slice of object IDs); every object appears in exactly one group.
	Groups [][]int
	// GroupBytes is the total profiled byte size per group.
	GroupBytes []int64
	// CutWeight is the data-flow edge weight cut by the chosen partition.
	CutWeight int64
}

// unionFind is a standard disjoint-set structure over dense int keys.
type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
}

// opKey gives each op a dense program-wide index after the objects.
type opIndexer struct {
	base   map[*ir.Func]int
	nTotal int
}

func indexOps(m *ir.Module, nObjects int) *opIndexer {
	oi := &opIndexer{base: make(map[*ir.Func]int, len(m.Funcs))}
	next := nObjects
	for _, f := range m.Funcs {
		oi.base[f] = next
		next += f.NOps
	}
	oi.nTotal = next
	return oi
}

func (oi *opIndexer) of(f *ir.Func, opID int) int { return oi.base[f] + opID }

// MergeObjects runs access-pattern merging alone and returns the object
// groups (used by the Profile Max baseline, which groups objects the same
// way but assigns them greedily).
func MergeObjects(m *ir.Module) [][]int {
	uf, _ := buildMerge(m, Options{})
	return objectGroups(m, uf)
}

// buildMerge creates the union-find over objects+ops and applies the
// access-pattern merges (unless disabled).
func buildMerge(m *ir.Module, opts Options) (*unionFind, *opIndexer) {
	oi := indexOps(m, len(m.Objects))
	uf := newUnionFind(oi.nTotal)
	if opts.NoMerge {
		return uf, oi
	}
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, op := range b.Ops {
				if !op.Opcode.IsMem() || len(op.MayAccess) == 0 {
					continue
				}
				node := oi.of(f, op.ID)
				for _, objID := range op.MayAccess {
					uf.union(node, objID)
				}
			}
		}
	}
	return uf, oi
}

func objectGroups(m *ir.Module, uf *unionFind) [][]int {
	byRoot := map[int][]int{}
	for _, o := range m.Objects {
		r := uf.find(o.ID)
		byRoot[r] = append(byRoot[r], o.ID)
	}
	roots := make([]int, 0, len(byRoot))
	for r := range byRoot {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	groups := make([][]int, 0, len(roots))
	for _, r := range roots {
		g := byRoot[r]
		sort.Ints(g)
		groups = append(groups, g)
	}
	return groups
}

// PartitionData performs the first pass of Global Data Partitioning:
// assign every data object a home cluster on a k-cluster machine.
func PartitionData(m *ir.Module, prof *interp.Profile, k int, opts Options) (*Result, error) {
	return partitionData(m, prof, k, opts, nil)
}

// PartitionDataOn is PartitionData for a concrete machine: the cluster
// count, the per-cluster memory-share targets (when opts.MemFractions is
// nil), and — on machines with non-uniform intercluster latencies — a
// topology-aware mapping of partition parts onto physical clusters come
// from mcfg. The graph partitioner minimizes cut data-flow weight treating
// every cluster pair as equidistant; on a mesh or NUMA machine, *which*
// cluster each part lands on then decides how many cycles every cut edge
// costs, so the label assignment is optimized here as a second step.
func PartitionDataOn(m *ir.Module, prof *interp.Profile, mcfg *machine.Config, opts Options) (*Result, error) {
	if opts.MemFractions == nil {
		opts.MemFractions = mcfg.MemFractions()
	}
	return partitionData(m, prof, mcfg.NumClusters(), opts, mcfg)
}

func partitionData(m *ir.Module, prof *interp.Profile, k int, opts Options, mcfg *machine.Config) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("gdp: need at least 1 cluster, got %d", k)
	}
	uf, oi := buildMerge(m, opts)

	if opts.SlackMerge {
		mergeDependenceChains(m, uf, oi)
	}

	// Map union-find roots to dense graph nodes.
	nodeOf := map[int]int{}
	nodeID := func(entity int) int {
		r := uf.find(entity)
		if n, ok := nodeOf[r]; ok {
			return n
		}
		n := len(nodeOf)
		nodeOf[r] = n
		return n
	}
	// Touch all entities in deterministic order so node numbering is
	// stable: objects first, then ops function by function.
	for _, o := range m.Objects {
		nodeID(o.ID)
	}
	for _, f := range m.Funcs {
		for id := 0; id < f.NOps; id++ {
			nodeID(oi.of(f, id))
		}
	}

	dims := 1
	if opts.BalanceOps {
		dims = 2
	}
	g := partition.NewGraph(len(nodeOf), dims)
	// Weights: dim 0 = data bytes; dim 1 (ablation only) = computation.
	for _, o := range m.Objects {
		n := nodeID(o.ID)
		g.W[n][0] += objBytes(o, prof)
	}
	if opts.BalanceOps {
		for _, f := range m.Funcs {
			for _, b := range f.Blocks {
				freq := blockFreq(prof, b)
				for _, op := range b.Ops {
					g.W[nodeID(oi.of(f, op.ID))][1] += scaleFreq(freq)
				}
			}
		}
	}
	// Edges: data-flow def-use within functions, plus call linkage.
	for _, f := range m.Funcs {
		du := cfg.ComputeDefUse(f)
		ops := f.OpsByID()
		for _, op := range ops {
			u := nodeID(oi.of(f, op.ID))
			w := scaleFreq(blockFreq(prof, op.Block))
			if op.Opcode == ir.OpStore && !opts.NoSinkWeighting {
				// Store operands are latency-tolerant sinks.
				w = (w + 3) / 4
			}
			for argI := range op.Args {
				for _, defID := range du.DefsOf[op.ID][argI] {
					we := w
					if ops[defID].Opcode == ir.OpLoad && !opts.NoSinkWeighting {
						// A cut here makes a remote load feed this op:
						// the full move latency lands on a value path.
						we *= 2
					}
					g.Connect(nodeID(oi.of(f, defID)), u, we)
				}
			}
			if op.Opcode == ir.OpCall {
				callee := m.Func(op.Callee)
				linkCall(g, nodeID, oi, op, f, callee, w)
			}
		}
	}

	tols := []float64{opts.memTol()}
	if opts.BalanceOps {
		tols = append(tols, opts.opTol())
	}
	if opts.MemFractions != nil && len(opts.MemFractions) != k {
		return nil, fmt.Errorf("gdp: %d memory fractions for %d clusters", len(opts.MemFractions), k)
	}
	part, err := partition.KWay(g, k, partition.Options{
		Tol:       tols,
		Fractions: opts.MemFractions,
		Legacy:    opts.LegacyPartition,
		Workers:   opts.Workers,
		Obs:       opts.Obs,
	})
	if err != nil {
		return nil, err
	}
	if k == 1 {
		part = make([]int, g.Len())
	}
	if mcfg != nil {
		part = remapToTopology(g, part, mcfg, opts.MemFractions)
	}

	res := &Result{
		DataMap:   make(DataMap, len(m.Objects)),
		CutWeight: partition.CutWeight(g, part),
	}
	for _, o := range m.Objects {
		res.DataMap[o.ID] = part[nodeID(o.ID)]
	}
	res.Groups = objectGroups(m, uf)
	res.GroupBytes = make([]int64, len(res.Groups))
	for gi, grp := range res.Groups {
		for _, objID := range grp {
			res.GroupBytes[gi] += objBytes(m.Objects[objID], prof)
		}
	}
	if opts.Obs != nil {
		opts.Obs.Counter("gdp_partitions").Add(1)
		opts.Obs.Counter("gdp_groups").Add(int64(len(res.Groups)))
		opts.Obs.Counter("gdp_cut_weight").Add(res.CutWeight)
	}
	return res, nil
}

// remapToTopology relabels the k parts of a finished partition onto the
// machine's k clusters to minimize the latency-weighted cut cost
// Σ_{p<q} W[p][q] · MoveLat(π(p), π(q)), where W is the cut data-flow
// weight between parts. Only memory-share-preserving permutations are
// considered (part p was balanced to cluster p's byte target, so it may
// only move to a cluster with the same target). The permutations are
// enumerated in lexicographic order with strict improvement, so on
// uniform-latency machines (every pair equidistant — bus, or any machine
// expressed as a uniform matrix) the identity labeling always wins and the
// result is bit-identical to the plain PartitionData path.
func remapToTopology(g *partition.Graph, part []int, mcfg *machine.Config, fractions []float64) []int {
	k := mcfg.NumClusters()
	if k < 2 || k > 8 { // k! search; no preset exceeds 8 clusters
		return part
	}
	lat := mcfg.LatencyTable()
	uniform := true
	for a := 0; a < k && uniform; a++ {
		for b := a + 1; b < k; b++ {
			if lat[a][b] != lat[0][1] {
				uniform = false
				break
			}
		}
	}
	if uniform {
		return part
	}
	// Cut weight between each unordered part pair.
	w := make([][]int64, k)
	for p := range w {
		w[p] = make([]int64, k)
	}
	for u := range g.Adj {
		for _, e := range g.Adj[u] {
			if u < e.To && part[u] != part[e.To] {
				w[part[u]][part[e.To]] += e.W
				w[part[e.To]][part[u]] += e.W
			}
		}
	}
	perm := make([]int, k) // part -> cluster
	best := make([]int, k)
	used := make([]bool, k)
	var bestCost int64 = -1
	var dfs func(p int, cost int64)
	dfs = func(p int, cost int64) {
		if bestCost >= 0 && cost >= bestCost {
			return // partial cost only grows; prune
		}
		if p == k {
			bestCost = cost
			copy(best, perm)
			return
		}
		for c := 0; c < k; c++ {
			if used[c] {
				continue
			}
			if fractions != nil && fractions[p] != fractions[c] {
				continue
			}
			add := int64(0)
			for q := 0; q < p; q++ {
				add += w[p][q] * int64(lat[c][perm[q]])
			}
			used[c] = true
			perm[p] = c
			dfs(p+1, cost+add)
			used[c] = false
		}
	}
	dfs(0, 0)
	if bestCost < 0 {
		return part // no fraction-preserving permutation: keep identity
	}
	out := make([]int, len(part))
	for u, p := range part {
		out[u] = best[p]
	}
	return out
}

// linkCall adds affinity edges between a call op and the callee's
// parameter-consuming and returning ops, so cross-function value flow is
// visible in the program-level graph.
func linkCall(g *partition.Graph, nodeID func(int) int, oi *opIndexer,
	call *ir.Op, caller, callee *ir.Func, w int64) {

	u := nodeID(oi.of(caller, call.ID))
	for _, b := range callee.Blocks {
		for _, op := range b.Ops {
			touches := false
			for _, a := range op.Args {
				if a.IsReg() && int(a.Reg) < callee.NParams {
					touches = true
				}
			}
			if op.Opcode == ir.OpRet && len(op.Args) == 1 {
				touches = true
			}
			if touches {
				g.Connect(u, nodeID(oi.of(callee, op.ID)), w)
			}
		}
	}
}

// mergeDependenceChains unions each op with its consumer when it is the
// consumer's only in-block producer and has a single use — a cheap stand-in
// for the low-slack dependence merging the paper evaluated (§3.3.1).
func mergeDependenceChains(m *ir.Module, uf *unionFind, oi *opIndexer) {
	for _, f := range m.Funcs {
		du := cfg.ComputeDefUse(f)
		ops := f.OpsByID()
		for _, op := range ops {
			if op.Dst == ir.NoReg {
				continue
			}
			uses := du.UsesOf[op.ID]
			if len(uses) != 1 {
				continue
			}
			use := ops[uses[0]]
			if use.Block == op.Block {
				uf.union(oi.of(f, op.ID), oi.of(f, use.ID))
			}
		}
	}
}

func objBytes(o *ir.Object, prof *interp.Profile) int64 {
	if prof != nil {
		if b, ok := prof.ObjBytes[o.ID]; ok && b > 0 {
			return b
		}
	}
	return o.Size
}

func blockFreq(prof *interp.Profile, b *ir.Block) int64 {
	if prof == nil {
		return 1
	}
	if fq := prof.Freq(b); fq > 0 {
		return fq
	}
	return 1
}

func scaleFreq(freq int64) int64 {
	// Linear in execution frequency (capped): the program-level graph's
	// edge cut should track real dynamic communication volume.
	if freq < 1 {
		return 1
	}
	if freq > 1<<20 {
		return 1 << 20
	}
	return freq
}

// ComputeLocks derives the second-pass memory-operation locks from a data
// map: every load/store/malloc is locked to the home cluster of the data it
// may access. When an operation can reach objects homed on different
// clusters (possible only when merging was disabled), the lock is the
// profile-weighted majority home.
func ComputeLocks(m *ir.Module, dm DataMap, prof *interp.Profile) map[*ir.Func]rhop.Locks {
	out := make(map[*ir.Func]rhop.Locks, len(m.Funcs))
	for _, f := range m.Funcs {
		out[f] = ComputeLocksFunc(f, dm, prof)
	}
	return out
}

// ComputeLocksFunc is ComputeLocks restricted to one function: the locks of
// f depend only on dm's homes for the objects f's memory ops may access, so
// a mapping sweep can recompute exactly the functions a data-map change
// touches.
func ComputeLocksFunc(f *ir.Func, dm DataMap, prof *interp.Profile) rhop.Locks {
	locks := rhop.Locks{}
	for _, b := range f.Blocks {
		for _, op := range b.Ops {
			if !op.Opcode.IsMem() || len(op.MayAccess) == 0 {
				continue
			}
			locks[op.ID] = homeFor(op, dm, prof)
		}
	}
	return locks
}

func homeFor(op *ir.Op, dm DataMap, prof *interp.Profile) int {
	votes := map[int]int64{}
	for _, objID := range op.MayAccess {
		w := int64(1)
		if prof != nil {
			if counts, ok := prof.OpObj[op]; ok {
				if c := counts[objID]; c > 0 {
					w = c
				}
			}
		}
		votes[dm[objID]] += w
	}
	best, bestV := 0, int64(-1)
	clusters := make([]int, 0, len(votes))
	for c := range votes {
		clusters = append(clusters, c)
	}
	sort.Ints(clusters)
	for _, c := range clusters {
		if votes[c] > bestV {
			best, bestV = c, votes[c]
		}
	}
	return best
}

// MemBytesPerCluster sums profiled object bytes per cluster under dm.
func MemBytesPerCluster(m *ir.Module, dm DataMap, prof *interp.Profile, k int) []int64 {
	out := make([]int64, k)
	for _, o := range m.Objects {
		out[dm[o.ID]] += objBytes(o, prof)
	}
	return out
}

// Validate checks a data map covers every object with a cluster in [0,k).
func (dm DataMap) Validate(m *ir.Module, k int) error {
	if len(dm) != len(m.Objects) {
		return fmt.Errorf("gdp: data map covers %d objects, module has %d", len(dm), len(m.Objects))
	}
	for id, c := range dm {
		if c < 0 || c >= k {
			return fmt.Errorf("gdp: object %d mapped to cluster %d of %d", id, c, k)
		}
	}
	return nil
}
