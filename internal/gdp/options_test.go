package gdp

import "testing"

// TestOptionDefaults pins the documented defaults behind the repository's
// option convention (see internal/defaults): a zero or negative knob
// selects the default, any positive value wins.
func TestOptionDefaults(t *testing.T) {
	var zero Options
	if got := zero.memTol(); got != 0.10 {
		t.Errorf("zero MemTol -> %v, want 0.10", got)
	}
	if got := zero.opTol(); got != 0.60 {
		t.Errorf("zero OpTol -> %v, want 0.60", got)
	}
	neg := Options{MemTol: -1, OpTol: -1}
	if neg.memTol() != 0.10 || neg.opTol() != 0.60 {
		t.Error("negative knobs must select the defaults")
	}
	set := Options{MemTol: 0.3, OpTol: 0.9}
	if set.memTol() != 0.3 || set.opTol() != 0.9 {
		t.Error("positive knobs must win over the defaults")
	}
}
