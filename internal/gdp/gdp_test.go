package gdp

import (
	"testing"

	"mcpart/internal/interp"
	"mcpart/internal/ir"
	"mcpart/internal/mclang"
	"mcpart/internal/pointsto"
)

func prep(t *testing.T, src string) (*ir.Module, *interp.Profile) {
	t.Helper()
	mod, err := mclang.Compile(src, "t")
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	pointsto.Analyze(mod)
	in := interp.New(mod, interp.Options{})
	if _, err := in.RunMain(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return mod, in.Profile()
}

func objID(m *ir.Module, name string) int {
	for _, o := range m.Objects {
		if o.Name == name {
			return o.ID
		}
	}
	return -1
}

func groupOf(groups [][]int, objID int) int {
	for gi, g := range groups {
		for _, id := range g {
			if id == objID {
				return gi
			}
		}
	}
	return -1
}

const fig4Src = `
global int value1;
global int value2;
func main() int {
    int *x;
    int *foo;
    int s = 0;
    int i;
    x = malloc(64);
    for (i = 0; i < 50; i = i + 1) {
        value1 = value1 + i;
        value2 = value2 + 2 * i;
        if (value2 > 40) { foo = x; } else { foo = &value1; }
        s = s + foo[0];
    }
    return s;
}`

func TestAccessPatternMergingFigure4(t *testing.T) {
	// The multi-object load through foo must merge value1 with the heap
	// site; value2 stays separate.
	mod, _ := prep(t, fig4Src)
	groups := MergeObjects(mod)
	v1 := objID(mod, "value1")
	v2 := objID(mod, "value2")
	heap := objID(mod, "malloc@main:0")
	if groupOf(groups, v1) != groupOf(groups, heap) {
		t.Errorf("value1 and heap site not merged: %v", groups)
	}
	if groupOf(groups, v2) == groupOf(groups, v1) {
		t.Errorf("value2 wrongly merged with value1: %v", groups)
	}
}

func TestMergedObjectsShareCluster(t *testing.T) {
	mod, prof := prep(t, fig4Src)
	res, err := PartitionData(mod, prof, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v1 := objID(mod, "value1")
	heap := objID(mod, "malloc@main:0")
	if res.DataMap[v1] != res.DataMap[heap] {
		t.Errorf("merged objects on different clusters: %v", res.DataMap)
	}
	if err := res.DataMap.Validate(mod, 2); err != nil {
		t.Error(err)
	}
}

const balancedSrc = `
global int a[100];
global int b[100];
global int c[100];
global int d[100];
func main() int {
    int i;
    int s = 0;
    for (i = 0; i < 100; i = i + 1) {
        a[i] = i;
        b[i] = 2 * i;
        c[i] = 3 * i;
        d[i] = 4 * i;
        s = s + a[i] + b[i] + c[i] + d[i];
    }
    return s;
}`

func TestDataBytesBalanced(t *testing.T) {
	mod, prof := prep(t, balancedSrc)
	res, err := PartitionData(mod, prof, 2, Options{MemTol: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	bytes := MemBytesPerCluster(mod, res.DataMap, prof, 2)
	total := bytes[0] + bytes[1]
	if total != 4*100*8 {
		t.Fatalf("total bytes = %d", total)
	}
	limit := int64(float64(total) / 2 * 1.25) // small slack over tolerance
	if bytes[0] > limit || bytes[1] > limit {
		t.Errorf("memory imbalanced: %v", bytes)
	}
}

func TestLocksFollowDataMap(t *testing.T) {
	mod, prof := prep(t, balancedSrc)
	res, err := PartitionData(mod, prof, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	locks := ComputeLocks(mod, res.DataMap, prof)
	n := 0
	for f, fl := range locks {
		for opID, c := range fl {
			op := f.OpsByID()[opID]
			if !op.Opcode.IsMem() {
				t.Fatalf("lock on non-memory op %s", op)
			}
			// Single-object accesses must be locked exactly to their
			// object's home.
			if len(op.MayAccess) == 1 && c != res.DataMap[op.MayAccess[0]] {
				t.Errorf("op %s locked to %d, object home %d",
					op, c, res.DataMap[op.MayAccess[0]])
			}
			n++
		}
	}
	if n == 0 {
		t.Error("no locks produced")
	}
}

func TestNoMergeAblation(t *testing.T) {
	mod, prof := prep(t, fig4Src)
	res, err := PartitionData(mod, prof, 2, Options{NoMerge: true})
	if err != nil {
		t.Fatal(err)
	}
	// Without merging every object is its own group.
	if len(res.Groups) != len(mod.Objects) {
		t.Errorf("NoMerge produced %d groups for %d objects",
			len(res.Groups), len(mod.Objects))
	}
	// Locks must still be well-defined (majority vote).
	locks := ComputeLocks(mod, res.DataMap, prof)
	for f, fl := range locks {
		for opID, c := range fl {
			if c < 0 || c >= 2 {
				t.Errorf("%s op %d locked out of range: %d", f.Name, opID, c)
			}
		}
	}
}

func TestSlackMergeAblationRuns(t *testing.T) {
	mod, prof := prep(t, fig4Src)
	if _, err := PartitionData(mod, prof, 2, Options{SlackMerge: true}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleClusterDegenerate(t *testing.T) {
	mod, prof := prep(t, fig4Src)
	res, err := PartitionData(mod, prof, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.DataMap {
		if c != 0 {
			t.Fatalf("k=1 produced cluster %d", c)
		}
	}
}

func TestFourClusters(t *testing.T) {
	mod, prof := prep(t, balancedSrc)
	res, err := PartitionData(mod, prof, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.DataMap.Validate(mod, 4); err != nil {
		t.Error(err)
	}
	// Four equal arrays on four clusters should spread out.
	used := map[int]bool{}
	for _, c := range res.DataMap {
		used[c] = true
	}
	if len(used) < 3 {
		t.Errorf("4-way data partition used only %d clusters: %v", len(used), res.DataMap)
	}
}

func TestEveryObjectInExactlyOneGroup(t *testing.T) {
	mod, prof := prep(t, fig4Src)
	res, err := PartitionData(mod, prof, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for _, g := range res.Groups {
		for _, id := range g {
			seen[id]++
		}
	}
	if len(seen) != len(mod.Objects) {
		t.Fatalf("groups cover %d objects, want %d", len(seen), len(mod.Objects))
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("object %d in %d groups", id, n)
		}
	}
}

func TestGroupBytesMatchProfiledSizes(t *testing.T) {
	mod, prof := prep(t, fig4Src)
	res, err := PartitionData(mod, prof, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, b := range res.GroupBytes {
		sum += b
	}
	var want int64
	for _, o := range mod.Objects {
		want += objBytes(o, prof)
	}
	if sum != want {
		t.Errorf("group bytes sum %d, want %d", sum, want)
	}
	// The heap site's 64 malloc'd bytes must be counted.
	heap := objID(mod, "malloc@main:0")
	gi := groupOf(res.Groups, heap)
	if res.GroupBytes[gi] < 64 {
		t.Errorf("heap group bytes = %d, want >= 64", res.GroupBytes[gi])
	}
}
