package gdp

import (
	"reflect"
	"testing"

	"mcpart/internal/machine"
	"mcpart/internal/partition"
)

// TestPartitionDataOnUniformMatchesPlain pins the conformance guarantee:
// on uniform-latency machines (bus, or a uniform explicit matrix) the
// machine-aware entry point is bit-identical to the plain k-way path —
// the topology remap must recognize uniformity and keep the identity
// labeling.
func TestPartitionDataOnUniformMatchesPlain(t *testing.T) {
	mod, prof := prep(t, balancedSrc)
	plain, err := PartitionData(mod, prof, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []*machine.Config{
		machine.FourCluster(5),
		machine.AsMatrix(machine.FourCluster(5)),
	} {
		on, err := PartitionDataOn(mod, prof, cfg, Options{})
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if !reflect.DeepEqual(plain.DataMap, on.DataMap) {
			t.Errorf("%s: PartitionDataOn %v != PartitionData %v", cfg.Name, on.DataMap, plain.DataMap)
		}
		if plain.CutWeight != on.CutWeight {
			t.Errorf("%s: cut weight %d != %d", cfg.Name, on.CutWeight, plain.CutWeight)
		}
	}
}

// remapGraph builds a k-node graph with one node per part and the given
// inter-part edge weights, so remapToTopology's W matrix equals exactly
// the weights passed in.
func remapGraph(t *testing.T, k int, edges []struct {
	u, v int
	w    int64
}) (*partition.Graph, []int) {
	t.Helper()
	g := partition.NewGraph(k, 1)
	for _, e := range edges {
		g.Connect(e.u, e.v, e.w)
	}
	part := make([]int, k)
	for i := range part {
		part[i] = i
	}
	return g, part
}

// TestRemapToTopologyMovesHeavyPairAdjacent: with one dominant
// communicating part pair sitting on opposite corners of a ring under the
// identity labeling, the remap must relabel them onto adjacent clusters.
func TestRemapToTopologyMovesHeavyPairAdjacent(t *testing.T) {
	ring := machine.RingFour(5)
	// Parts 0 and 2 exchange 100 units; under identity they sit 2 hops
	// apart (10 cycles); any adjacent pair costs 5.
	g, part := remapGraph(t, 4, []struct {
		u, v int
		w    int64
	}{{0, 2, 100}, {0, 1, 1}})
	out := remapToTopology(g, part, ring, nil)
	if got := ring.MoveLat(out[0], out[2]); got != 5 {
		t.Errorf("heavy pair landed %d cycles apart, want adjacent (5): labeling %v", got, out)
	}
	// All four labels must still be a permutation.
	seen := map[int]bool{}
	for _, c := range out {
		if c < 0 || c >= 4 || seen[c] {
			t.Fatalf("labeling %v is not a permutation", out)
		}
		seen[c] = true
	}
}

// TestRemapToTopologyUniformIsIdentity: on the bus the remap must return
// the partition unchanged (not merely an equal-cost relabeling — the
// identity itself, to keep uniform machines byte-identical to the plain
// path).
func TestRemapToTopologyUniformIsIdentity(t *testing.T) {
	g, part := remapGraph(t, 4, []struct {
		u, v int
		w    int64
	}{{0, 2, 100}, {1, 3, 50}})
	for _, cfg := range []*machine.Config{
		machine.FourCluster(5),
		machine.AsMatrix(machine.FourCluster(5)),
	} {
		out := remapToTopology(g, part, cfg, nil)
		if !reflect.DeepEqual(out, []int{0, 1, 2, 3}) {
			t.Errorf("%s: uniform machine relabeled to %v", cfg.Name, out)
		}
	}
}

// TestRemapToTopologyRespectsFractions: a part balanced to a big-memory
// cluster's target may only be relabeled onto a cluster with the same
// target, even when ignoring that would be cheaper.
func TestRemapToTopologyRespectsFractions(t *testing.T) {
	numa := machine.NUMA4(5)
	fractions := numa.MemFractions() // [0.375 0.375 0.125 0.125]
	// Parts 0 (big memory) and 2 (small memory) communicate heavily.
	// Unconstrained, the remap would co-locate them inside one node; the
	// fraction guard only allows {0,1} and {2,3} to trade places.
	g, part := remapGraph(t, 4, []struct {
		u, v int
		w    int64
	}{{0, 2, 100}})
	out := remapToTopology(g, part, numa, fractions)
	for p := 0; p < 4; p++ {
		if fractions[p] != fractions[out[p]] {
			t.Fatalf("part %d (share %v) relabeled to cluster %d (share %v): %v",
				p, fractions[p], out[p], fractions[out[p]], out)
		}
	}
	// The heavy pair is condemned to cross nodes (20 cycles) whatever the
	// legal labeling; the remap must not have pretended otherwise.
	if got := numa.MoveLat(out[0], out[2]); got != 20 {
		t.Errorf("heavy pair at %d cycles; every fraction-preserving labeling gives 20", got)
	}
}

// TestPartitionDataOnNUMA4 drives the machine-aware entry point end to
// end: memory fractions default from the machine's capacities, the
// partition respects them, and the data map is valid.
func TestPartitionDataOnNUMA4(t *testing.T) {
	mod, prof := prep(t, balancedSrc)
	numa := machine.NUMA4(5)
	res, err := PartitionDataOn(mod, prof, numa, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.DataMap.Validate(mod, 4); err != nil {
		t.Fatal(err)
	}
	bytes := MemBytesPerCluster(mod, res.DataMap, prof, 4)
	node0 := bytes[0] + bytes[1]
	node1 := bytes[2] + bytes[3]
	if node0 < node1 {
		t.Errorf("big-memory node holds %d bytes, small node %d; capacities are 3:1", node0, node1)
	}
}
