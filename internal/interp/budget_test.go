package interp

import (
	"errors"
	"strings"
	"testing"
	"time"

	"mcpart/internal/mclang"
)

func TestDeadlineBudget(t *testing.T) {
	mod, err := mclang.Compile(`func main() int { while (1) { } return 0; }`, "t")
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(mod, Options{Deadline: time.Now().Add(-time.Second)}).RunMain()
	var be *BudgetError
	if !errors.As(err, &be) || be.Resource != "deadline" {
		t.Fatalf("error = %v, want deadline BudgetError", err)
	}
	if !strings.Contains(err.Error(), "deadline exceeded in main") {
		t.Fatalf("message = %q", err)
	}
}

func TestDeadlineFarFutureHarmless(t *testing.T) {
	mod, err := mclang.Compile(`func main() int { int s; int i; s = 0; i = 0; while (i < 100) { s = s + i; i = i + 1; } return s; }`, "t")
	if err != nil {
		t.Fatal(err)
	}
	v, err := New(mod, Options{Deadline: time.Now().Add(time.Hour)}).RunMain()
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 4950 {
		t.Fatalf("checksum = %d, want 4950", v.I)
	}
}

func TestByteBudget(t *testing.T) {
	src := `func main() int {
		int i;
		i = 0;
		while (i < 1000) {
			int *p;
			p = malloc(1024);
			*p = i;
			i = i + 1;
		}
		return i;
	}`
	mod, err := mclang.Compile(src, "t")
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(mod, Options{MaxBytes: 64 * 1024}).RunMain()
	var be *BudgetError
	if !errors.As(err, &be) || be.Resource != "byte" {
		t.Fatalf("error = %v, want byte BudgetError", err)
	}
	if !strings.Contains(err.Error(), "byte budget of 65536 exceeded") {
		t.Fatalf("message = %q", err)
	}
	// The same program under a roomy budget runs to completion.
	if v, err := New(mod, Options{MaxBytes: 16 << 20}).RunMain(); err != nil || v.I != 1000 {
		t.Fatalf("roomy budget: v=%v err=%v", v, err)
	}
}

// TestStepBudgetTyped pins the step-budget error to the BudgetError type
// while keeping the historical message shape.
func TestStepBudgetTyped(t *testing.T) {
	mod, err := mclang.Compile(`func main() int { while (1) { } return 0; }`, "t")
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(mod, Options{MaxSteps: 1000}).RunMain()
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("error = %v, want *BudgetError", err)
	}
	if be.Resource != "step" || be.Limit != 1000 || be.Fn != "main" {
		t.Fatalf("BudgetError = %+v", be)
	}
	if got := err.Error(); got != "interp: step budget of 1000 exceeded in main" {
		t.Fatalf("message = %q", got)
	}
}
