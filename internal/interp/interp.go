// Package interp executes IR modules. It serves two roles in the pipeline:
// it is the profiler that supplies the data partitioner with dynamic block
// frequencies, per-operation object access counts, and heap allocation
// sizes; and it is the correctness oracle the test suite uses to validate
// the front end and the points-to analysis.
package interp

import (
	"fmt"
	"time"

	"mcpart/internal/ir"
)

// ValKind discriminates runtime values.
type ValKind int

// Runtime value kinds.
const (
	ValInt ValKind = iota
	ValFloat
	ValPtr
)

// Value is a runtime value: an integer, a float, or a pointer into an
// object instance (byte offset).
type Value struct {
	Kind ValKind
	I    int64
	F    float64
	Inst *Instance
	Off  int64
}

// IntVal makes an integer value.
func IntVal(i int64) Value { return Value{Kind: ValInt, I: i} }

// FloatVal makes a float value.
func FloatVal(f float64) Value { return Value{Kind: ValFloat, F: f} }

func (v Value) String() string {
	switch v.Kind {
	case ValInt:
		return fmt.Sprintf("%d", v.I)
	case ValFloat:
		return fmt.Sprintf("%g", v.F)
	case ValPtr:
		if v.Inst == nil {
			return "nil"
		}
		return fmt.Sprintf("&%s+%d", v.Inst.Obj.Name, v.Off)
	}
	return "?"
}

// Instance is one runtime allocation of a data object: the unique storage
// of a global, or one dynamic allocation of a heap site.
type Instance struct {
	Obj   *ir.Object
	ID    int64 // unique across the run
	Words []Value
}

// Profile aggregates the dynamic observations the partitioners consume.
type Profile struct {
	// BlockFreq counts executions of each basic block.
	BlockFreq map[*ir.Block]int64
	// OpObj counts, per memory op, dynamic accesses per object ID.
	OpObj map[*ir.Op]map[int]int64
	// ObjBytes records data size per object ID: static size for globals,
	// cumulative allocated bytes for heap sites.
	ObjBytes map[int]int64
	// ObjAccess counts total dynamic accesses per object ID.
	ObjAccess map[int]int64
	// Steps is the total number of operations executed.
	Steps int64
}

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{
		BlockFreq: map[*ir.Block]int64{},
		OpObj:     map[*ir.Op]map[int]int64{},
		ObjBytes:  map[int]int64{},
		ObjAccess: map[int]int64{},
	}
}

func (p *Profile) countAccess(op *ir.Op, objID int) {
	m := p.OpObj[op]
	if m == nil {
		m = map[int]int64{}
		p.OpObj[op] = m
	}
	m[objID]++
	p.ObjAccess[objID]++
}

// Freq returns the execution count of block b.
func (p *Profile) Freq(b *ir.Block) int64 { return p.BlockFreq[b] }

// BudgetError reports an exceeded execution budget: the step budget, the
// heap-byte budget, or the wall-clock deadline. Budgets turn runaway
// programs (fuzz inputs, adversarial benchmarks) into clean errors.
type BudgetError struct {
	// Resource is "step", "byte", or "deadline".
	Resource string
	// Limit is the configured budget (steps or bytes; zero for deadline).
	Limit int64
	// Fn names the function that was executing when the budget ran out.
	Fn string
}

func (e *BudgetError) Error() string {
	if e.Resource == "deadline" {
		return fmt.Sprintf("interp: deadline exceeded in %s", e.Fn)
	}
	return fmt.Sprintf("interp: %s budget of %d exceeded in %s", e.Resource, e.Limit, e.Fn)
}

// deadlineStride is how many steps run between wall-clock checks: frequent
// enough to stop promptly, rare enough that time.Now stays off the hot
// path.
const deadlineStride = 1 << 16

// Options configures a run.
type Options struct {
	// MaxSteps bounds execution; 0 means the default of 50 million.
	MaxSteps int64
	// Deadline aborts execution once the wall clock passes it (checked
	// every deadlineStride steps); the zero time means no deadline.
	Deadline time.Time
	// MaxBytes bounds the total data bytes the program may hold: global
	// storage plus every malloc. 0 means no byte budget.
	MaxBytes int64
	// TraceMem, when non-nil, is invoked on every executed load and store
	// with the accessed object ID, a unique instance number (globals get
	// one instance; every malloc creates a fresh one), and the byte
	// offset. Used by the cache-simulation extension.
	TraceMem func(objID int, inst int64, off int64, isStore bool)
}

// Interp executes one module.
type Interp struct {
	mod        *ir.Module
	globals    []*Instance // indexed by object ID (nil for heap sites)
	prof       *Profile
	maxSteps   int64
	deadline   time.Time
	maxBytes   int64
	allocBytes int64
	trace      func(objID int, inst int64, off int64, isStore bool)
	nextInst   int64
	depth      int
}

// maxCallDepth bounds recursion so runaway programs fail cleanly instead
// of exhausting the host stack.
const maxCallDepth = 10000

// New prepares an interpreter for module m, allocating and initializing
// global storage.
func New(m *ir.Module, opts Options) *Interp {
	in := &Interp{
		mod:      m,
		globals:  make([]*Instance, len(m.Objects)),
		prof:     NewProfile(),
		maxSteps: opts.MaxSteps,
		deadline: opts.Deadline,
		maxBytes: opts.MaxBytes,
		trace:    opts.TraceMem,
	}
	if in.maxSteps == 0 {
		in.maxSteps = 50_000_000
	}
	for _, o := range m.Objects {
		if o.Kind != ir.ObjGlobal {
			continue
		}
		inst := &Instance{Obj: o, ID: in.nextInst, Words: make([]Value, o.Words())}
		in.nextInst++
		for i := range inst.Words {
			if o.IsFloat {
				inst.Words[i] = FloatVal(0)
			} else {
				inst.Words[i] = IntVal(0)
			}
		}
		if o.IsFloat {
			for i, f := range o.FloatInit {
				inst.Words[i] = FloatVal(f)
			}
		} else {
			for i, v := range o.Init {
				inst.Words[i] = IntVal(v)
			}
		}
		in.globals[o.ID] = inst
		in.prof.ObjBytes[o.ID] = o.Size
		in.allocBytes += o.Size
	}
	return in
}

// Profile returns the observations accumulated so far.
func (in *Interp) Profile() *Profile { return in.prof }

// AllocBytes returns the total data bytes held: global storage plus every
// malloc. It is the quantity the MaxBytes budget is charged against.
func (in *Interp) AllocBytes() int64 { return in.allocBytes }

// Run executes the named function with the given arguments and returns its
// result (zero int for void functions).
func (in *Interp) Run(fn string, args ...Value) (Value, error) {
	f := in.mod.Func(fn)
	if f == nil {
		return Value{}, fmt.Errorf("interp: no function %q", fn)
	}
	return in.call(f, args)
}

// RunMain executes main().
func (in *Interp) RunMain() (Value, error) { return in.Run("main") }

func (in *Interp) call(f *ir.Func, args []Value) (Value, error) {
	if len(args) != f.NParams {
		return Value{}, fmt.Errorf("interp: %s expects %d args, got %d",
			f.Name, f.NParams, len(args))
	}
	in.depth++
	defer func() { in.depth-- }()
	if in.depth > maxCallDepth {
		return Value{}, fmt.Errorf("interp: call depth exceeds %d in %s", maxCallDepth, f.Name)
	}
	regs := make([]Value, f.NRegs)
	copy(regs, args)
	b := f.Entry()
	for {
		in.prof.BlockFreq[b]++
		for _, op := range b.Ops {
			in.prof.Steps++
			if in.prof.Steps > in.maxSteps {
				return Value{}, &BudgetError{Resource: "step", Limit: in.maxSteps, Fn: f.Name}
			}
			if !in.deadline.IsZero() && in.prof.Steps%deadlineStride == 0 &&
				time.Now().After(in.deadline) {
				return Value{}, &BudgetError{Resource: "deadline", Fn: f.Name}
			}
			switch op.Opcode {
			case ir.OpBr:
				b = b.Succs[0]
			case ir.OpBrCond:
				c, err := in.operand(regs, op.Args[0])
				if err != nil {
					return Value{}, in.wrap(f, op, err)
				}
				if c.Kind != ValInt {
					return Value{}, in.wrap(f, op, fmt.Errorf("brcond on non-int %s", c))
				}
				if c.I != 0 {
					b = b.Succs[0]
				} else {
					b = b.Succs[1]
				}
			case ir.OpRet:
				if len(op.Args) == 0 {
					return IntVal(0), nil
				}
				v, err := in.operand(regs, op.Args[0])
				if err != nil {
					return Value{}, in.wrap(f, op, err)
				}
				return v, nil
			case ir.OpCall:
				callee := in.mod.Func(op.Callee)
				vals := make([]Value, len(op.Args))
				for i, a := range op.Args {
					v, err := in.operand(regs, a)
					if err != nil {
						return Value{}, in.wrap(f, op, err)
					}
					vals[i] = v
				}
				r, err := in.call(callee, vals)
				if err != nil {
					return Value{}, err
				}
				if op.Dst != ir.NoReg {
					regs[op.Dst] = r
				}
			default:
				if err := in.exec(regs, op); err != nil {
					return Value{}, in.wrap(f, op, err)
				}
			}
			if op.Opcode.IsTerminator() && op.Opcode != ir.OpRet {
				break // proceed to new block
			}
		}
	}
}

func (in *Interp) wrap(f *ir.Func, op *ir.Op, err error) error {
	return fmt.Errorf("interp: in %s b%d: %s: %w", f.Name, op.Block.ID, op, err)
}

func (in *Interp) operand(regs []Value, a ir.Operand) (Value, error) {
	switch a.Kind {
	case ir.OperReg:
		return regs[a.Reg], nil
	case ir.OperInt:
		return IntVal(a.Int), nil
	case ir.OperFloat:
		return FloatVal(a.Float), nil
	}
	return Value{}, fmt.Errorf("bad operand")
}

func (in *Interp) exec(regs []Value, op *ir.Op) error {
	args := make([]Value, len(op.Args))
	for i, a := range op.Args {
		v, err := in.operand(regs, a)
		if err != nil {
			return err
		}
		args[i] = v
	}
	v, err := in.eval(op, args)
	if err != nil {
		return err
	}
	if op.Dst != ir.NoReg {
		regs[op.Dst] = v
	}
	return nil
}

func (in *Interp) eval(op *ir.Op, a []Value) (Value, error) {
	switch op.Opcode {
	case ir.OpMov:
		return a[0], nil
	case ir.OpAddr:
		return Value{Kind: ValPtr, Inst: in.globals[op.Obj.ID]}, nil
	case ir.OpMalloc:
		if a[0].Kind != ValInt || a[0].I < 0 {
			return Value{}, fmt.Errorf("malloc of bad size %s", a[0])
		}
		in.allocBytes += a[0].I
		if in.maxBytes > 0 && in.allocBytes > in.maxBytes {
			return Value{}, &BudgetError{Resource: "byte", Limit: in.maxBytes, Fn: op.Block.Func.Name}
		}
		words := (a[0].I + 7) / 8
		inst := &Instance{Obj: op.MallocSite, ID: in.nextInst, Words: make([]Value, words)}
		in.nextInst++
		for i := range inst.Words {
			inst.Words[i] = IntVal(0)
		}
		in.prof.ObjBytes[op.MallocSite.ID] += a[0].I
		in.prof.countAccess(op, op.MallocSite.ID)
		return Value{Kind: ValPtr, Inst: inst}, nil
	case ir.OpLoad:
		w, err := in.deref(a[0])
		if err != nil {
			return Value{}, err
		}
		in.prof.countAccess(op, a[0].Inst.Obj.ID)
		if in.trace != nil {
			in.trace(a[0].Inst.Obj.ID, a[0].Inst.ID, a[0].Off, false)
		}
		return *w, nil
	case ir.OpStore:
		w, err := in.deref(a[0])
		if err != nil {
			return Value{}, err
		}
		in.prof.countAccess(op, a[0].Inst.Obj.ID)
		if in.trace != nil {
			in.trace(a[0].Inst.Obj.ID, a[0].Inst.ID, a[0].Off, true)
		}
		*w = a[1]
		return Value{}, nil
	case ir.OpAdd:
		// Pointer arithmetic: ptr + int in either order.
		if a[0].Kind == ValPtr && a[1].Kind == ValInt {
			return Value{Kind: ValPtr, Inst: a[0].Inst, Off: a[0].Off + a[1].I}, nil
		}
		if a[1].Kind == ValPtr && a[0].Kind == ValInt {
			return Value{Kind: ValPtr, Inst: a[1].Inst, Off: a[1].Off + a[0].I}, nil
		}
	case ir.OpSub:
		if a[0].Kind == ValPtr && a[1].Kind == ValInt {
			return Value{Kind: ValPtr, Inst: a[0].Inst, Off: a[0].Off - a[1].I}, nil
		}
		if a[0].Kind == ValPtr && a[1].Kind == ValPtr {
			if a[0].Inst != a[1].Inst {
				return Value{}, fmt.Errorf("subtraction of pointers into different objects")
			}
			return IntVal(a[0].Off - a[1].Off), nil
		}
	case ir.OpCmpEQ, ir.OpCmpNE:
		if a[0].Kind == ValPtr || a[1].Kind == ValPtr {
			eq := a[0].Kind == ValPtr && a[1].Kind == ValPtr &&
				a[0].Inst == a[1].Inst && a[0].Off == a[1].Off
			if op.Opcode == ir.OpCmpNE {
				eq = !eq
			}
			return boolVal(eq), nil
		}
	}
	// Pure integer ops.
	switch op.Opcode {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem, ir.OpAnd, ir.OpOr,
		ir.OpXor, ir.OpShl, ir.OpShr,
		ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE:
		x, err := wantInt(a[0])
		if err != nil {
			return Value{}, err
		}
		y, err := wantInt(a[1])
		if err != nil {
			return Value{}, err
		}
		return intBinary(op.Opcode, x, y)
	case ir.OpNeg:
		x, err := wantInt(a[0])
		if err != nil {
			return Value{}, err
		}
		return IntVal(-x), nil
	case ir.OpNot:
		x, err := wantInt(a[0])
		if err != nil {
			return Value{}, err
		}
		return IntVal(^x), nil
	case ir.OpIToF:
		x, err := wantInt(a[0])
		if err != nil {
			return Value{}, err
		}
		return FloatVal(float64(x)), nil
	}
	// Float ops.
	switch op.Opcode {
	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv,
		ir.OpFCmpEQ, ir.OpFCmpNE, ir.OpFCmpLT, ir.OpFCmpLE, ir.OpFCmpGT, ir.OpFCmpGE:
		x, err := wantFloat(a[0])
		if err != nil {
			return Value{}, err
		}
		y, err := wantFloat(a[1])
		if err != nil {
			return Value{}, err
		}
		return floatBinary(op.Opcode, x, y)
	case ir.OpFNeg:
		x, err := wantFloat(a[0])
		if err != nil {
			return Value{}, err
		}
		return FloatVal(-x), nil
	case ir.OpFToI:
		x, err := wantFloat(a[0])
		if err != nil {
			return Value{}, err
		}
		return IntVal(int64(x)), nil
	}
	return Value{}, fmt.Errorf("unhandled opcode %s", op.Opcode)
}

func (in *Interp) deref(p Value) (*Value, error) {
	if p.Kind != ValPtr || p.Inst == nil {
		return nil, fmt.Errorf("dereference of non-pointer %s", p)
	}
	if p.Off%8 != 0 {
		return nil, fmt.Errorf("unaligned access at %s", p)
	}
	idx := p.Off / 8
	if idx < 0 || idx >= int64(len(p.Inst.Words)) {
		return nil, fmt.Errorf("out-of-bounds access at %s (object has %d words)",
			p, len(p.Inst.Words))
	}
	return &p.Inst.Words[idx], nil
}

func wantInt(v Value) (int64, error) {
	if v.Kind != ValInt {
		return 0, fmt.Errorf("expected int, got %s", v)
	}
	return v.I, nil
}

func wantFloat(v Value) (float64, error) {
	if v.Kind != ValFloat {
		return 0, fmt.Errorf("expected float, got %s", v)
	}
	return v.F, nil
}

func boolVal(b bool) Value {
	if b {
		return IntVal(1)
	}
	return IntVal(0)
}

func intBinary(opc ir.Opcode, x, y int64) (Value, error) {
	switch opc {
	case ir.OpAdd:
		return IntVal(x + y), nil
	case ir.OpSub:
		return IntVal(x - y), nil
	case ir.OpMul:
		return IntVal(x * y), nil
	case ir.OpDiv:
		if y == 0 {
			return Value{}, fmt.Errorf("division by zero")
		}
		return IntVal(x / y), nil
	case ir.OpRem:
		if y == 0 {
			return Value{}, fmt.Errorf("remainder by zero")
		}
		return IntVal(x % y), nil
	case ir.OpAnd:
		return IntVal(x & y), nil
	case ir.OpOr:
		return IntVal(x | y), nil
	case ir.OpXor:
		return IntVal(x ^ y), nil
	case ir.OpShl:
		return IntVal(x << (uint64(y) & 63)), nil
	case ir.OpShr:
		return IntVal(x >> (uint64(y) & 63)), nil
	case ir.OpCmpEQ:
		return boolVal(x == y), nil
	case ir.OpCmpNE:
		return boolVal(x != y), nil
	case ir.OpCmpLT:
		return boolVal(x < y), nil
	case ir.OpCmpLE:
		return boolVal(x <= y), nil
	case ir.OpCmpGT:
		return boolVal(x > y), nil
	case ir.OpCmpGE:
		return boolVal(x >= y), nil
	}
	return Value{}, fmt.Errorf("bad int opcode %s", opc)
}

func floatBinary(opc ir.Opcode, x, y float64) (Value, error) {
	switch opc {
	case ir.OpFAdd:
		return FloatVal(x + y), nil
	case ir.OpFSub:
		return FloatVal(x - y), nil
	case ir.OpFMul:
		return FloatVal(x * y), nil
	case ir.OpFDiv:
		return FloatVal(x / y), nil
	case ir.OpFCmpEQ:
		return boolVal(x == y), nil
	case ir.OpFCmpNE:
		return boolVal(x != y), nil
	case ir.OpFCmpLT:
		return boolVal(x < y), nil
	case ir.OpFCmpLE:
		return boolVal(x <= y), nil
	case ir.OpFCmpGT:
		return boolVal(x > y), nil
	case ir.OpFCmpGE:
		return boolVal(x >= y), nil
	}
	return Value{}, fmt.Errorf("bad float opcode %s", opc)
}
