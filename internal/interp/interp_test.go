package interp

import (
	"strings"
	"testing"
	"testing/quick"

	"mcpart/internal/ir"
	"mcpart/internal/mclang"
)

func run(t *testing.T, src string) (Value, *Profile) {
	t.Helper()
	mod, err := mclang.Compile(src, "t")
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	in := New(mod, Options{})
	v, err := in.RunMain()
	if err != nil {
		t.Fatalf("RunMain: %v", err)
	}
	return v, in.Profile()
}

func wantI(t *testing.T, v Value, want int64) {
	t.Helper()
	if v.Kind != ValInt || v.I != want {
		t.Fatalf("result = %s, want %d", v, want)
	}
}

func TestArithmetic(t *testing.T) {
	v, _ := run(t, `func main() int { return (3 + 4) * 2 - 10 / 3 - 7 % 4; }`)
	wantI(t, v, 14-3-3)
}

func TestBitOps(t *testing.T) {
	v, _ := run(t, `func main() int { return (12 & 10) | (1 << 4) ^ (256 >> 4); }`)
	wantI(t, v, (12&10)|(1<<4)^(256>>4))
}

func TestUnary(t *testing.T) {
	v, _ := run(t, `func main() int { return -5 + !0 + !7; }`)
	wantI(t, v, -4)
}

func TestComparisonsAndShortCircuit(t *testing.T) {
	v, _ := run(t, `
func boom() int { return 1 / 0; }
func main() int {
    int a = 3;
    if (a > 5 && boom() == 1) { return 1; }
    if (a < 5 || boom() == 1) { return 2; }
    return 3;
}`)
	wantI(t, v, 2)
}

func TestLoopsAndGlobals(t *testing.T) {
	v, prof := run(t, `
global int tab[5] = {1, 2, 3, 4, 5};
global int sum;
func main() int {
    int i;
    for (i = 0; i < 5; i = i + 1) { sum = sum + tab[i]; }
    return sum;
}`)
	wantI(t, v, 15)
	if prof.ObjBytes[0] != 40 {
		t.Errorf("tab bytes = %d, want 40", prof.ObjBytes[0])
	}
	// tab loaded 5 times, sum loaded 5 + stored 5 + final load.
	if prof.ObjAccess[0] != 5 {
		t.Errorf("tab accesses = %d, want 5", prof.ObjAccess[0])
	}
	if prof.ObjAccess[1] != 11 {
		t.Errorf("sum accesses = %d, want 11", prof.ObjAccess[1])
	}
}

func TestWhileBreakContinue(t *testing.T) {
	v, _ := run(t, `
func main() int {
    int i = 0;
    int s = 0;
    while (1) {
        i = i + 1;
        if (i > 10) { break; }
        if (i % 2 == 0) { continue; }
        s = s + i;
    }
    return s;
}`)
	wantI(t, v, 1+3+5+7+9)
}

func TestFloats(t *testing.T) {
	v, _ := run(t, `
global float acc;
func main() int {
    float x = 1.5;
    float y = 2.5;
    acc = x * y + 1.0;
    if (acc >= 4.7 && acc <= 4.8) { return (int)(acc * 10.0); }
    return -1;
}`)
	wantI(t, v, 47)
}

func TestCastRoundTrip(t *testing.T) {
	v, _ := run(t, `func main() int { return (int)((float)41 + 1.0); }`)
	wantI(t, v, 42)
}

func TestMallocAndPointers(t *testing.T) {
	v, prof := run(t, `
func fill(int *p, int n) {
    int i;
    for (i = 0; i < n; i = i + 1) { p[i] = i * i; }
}
func main() int {
    int *a;
    a = malloc(80);
    fill(a, 10);
    return a[9] + *a;
}`)
	wantI(t, v, 81)
	// Heap site recorded 80 bytes.
	var heapBytes int64
	for id, b := range prof.ObjBytes {
		if id >= 0 && b == 80 {
			heapBytes = b
		}
	}
	if heapBytes != 80 {
		t.Errorf("heap bytes = %v", prof.ObjBytes)
	}
}

func TestPointerSwitchFigure4(t *testing.T) {
	// The paper's Figure 4 shape: a pointer conditionally refers to heap or
	// global data and is accessed afterwards.
	v, _ := run(t, `
global int value1;
global int value2;
func main() int {
    int *x;
    int *foo;
    x = malloc(16);
    x[0] = 7;
    value1 = 3;
    value2 = 4;
    if (value2 > 3) { foo = x; } else { foo = &value1; }
    return foo[0] + value2;
}`)
	wantI(t, v, 11)
}

func TestRecursion(t *testing.T) {
	v, _ := run(t, `
func fib(int n) int {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
func main() int { return fib(12); }`)
	wantI(t, v, 144)
}

func TestGlobalScalarInit(t *testing.T) {
	v, _ := run(t, `
global int seed = 12345;
func main() int { return seed; }`)
	wantI(t, v, 12345)
}

func TestBlockFreqProfile(t *testing.T) {
	mod, err := mclang.Compile(`
func main() int {
    int i;
    int s = 0;
    for (i = 0; i < 100; i = i + 1) { s = s + i; }
    return s;
}`, "t")
	if err != nil {
		t.Fatal(err)
	}
	in := New(mod, Options{})
	if _, err := in.RunMain(); err != nil {
		t.Fatal(err)
	}
	prof := in.Profile()
	f := mod.Func("main")
	// The loop body must have run exactly 100 times; cond 101.
	var got100, got101 bool
	for _, b := range f.Blocks {
		switch prof.Freq(b) {
		case 100:
			got100 = true
		case 101:
			got101 = true
		}
	}
	if !got100 || !got101 {
		freqs := map[int]int64{}
		for _, b := range f.Blocks {
			freqs[b.ID] = prof.Freq(b)
		}
		t.Errorf("block frequencies missing 100/101: %v", freqs)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{`func main() int { return 1 / 0; }`, "division by zero"},
		{`func main() int { return 1 % 0; }`, "remainder"},
		{`global int g[2]; func main() int { return g[5]; }`, "out-of-bounds"},
		{`func main() int { int *p; p = malloc(8); return p[-1]; }`, "out-of-bounds"},
		{`func main() int { int a = 1; int *p; p = (int*)malloc(16) + a; *p = 1; return *p; }`, ""},
	}
	for _, c := range cases {
		mod, err := mclang.Compile(c.src, "t")
		if err != nil {
			t.Fatalf("Compile(%q): %v", c.src, err)
		}
		_, err = New(mod, Options{}).RunMain()
		if c.want == "" {
			if err != nil {
				t.Errorf("%q: unexpected error %v", c.src, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error = %v, want %q", c.src, err, c.want)
		}
	}
}

func TestStepBudget(t *testing.T) {
	mod, err := mclang.Compile(`func main() int { while (1) { } return 0; }`, "t")
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(mod, Options{MaxSteps: 1000}).RunMain()
	if err == nil || !strings.Contains(err.Error(), "step budget") {
		t.Fatalf("error = %v, want step budget", err)
	}
}

func TestUnalignedAccess(t *testing.T) {
	m := ir.NewModule("u")
	g := m.AddObject(&ir.Object{Name: "g", Kind: ir.ObjGlobal, Size: 16})
	bd := ir.NewBuilder(m, "main", 0)
	a := bd.Addr(g)
	a2 := bd.Emit(ir.OpAdd, ir.Reg(a), ir.ConstInt(3))
	v := bd.Load(ir.Reg(a2))
	bd.Ret(ir.Reg(v))
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	_, err := New(m, Options{}).RunMain()
	if err == nil || !strings.Contains(err.Error(), "unaligned") {
		t.Fatalf("error = %v, want unaligned", err)
	}
}

// Property: interpreting an arithmetic expression agrees with Go semantics.
func TestArithAgreesWithGoQuick(t *testing.T) {
	mod, err := mclang.Compile(`
func f(int a, int b) int {
    int d = b;
    if (d == 0) { d = 1; }
    return (a + b) * 3 - a / d + (a & b) + (a ^ 5);
}
func main() int { return f(1, 2); }`, "t")
	if err != nil {
		t.Fatal(err)
	}
	check := func(a, b int32) bool {
		in := New(mod, Options{})
		got, err := in.Run("f", IntVal(int64(a)), IntVal(int64(b)))
		if err != nil {
			return false
		}
		ai, bi := int64(a), int64(b)
		d := bi
		if d == 0 {
			d = 1
		}
		want := (ai+bi)*3 - ai/d + (ai & bi) + (ai ^ 5)
		return got.Kind == ValInt && got.I == want
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// Property: pointer arithmetic and loads/stores behave like a Go slice.
func TestMemoryAgreesWithGoQuick(t *testing.T) {
	mod, err := mclang.Compile(`
global int buf[32];
func set(int i, int v) { buf[i % 32] = v; }
func get(int i) int { return buf[i % 32]; }
func main() int { return 0; }`, "t")
	if err != nil {
		t.Fatal(err)
	}
	in := New(mod, Options{})
	ref := make([]int64, 32)
	check := func(i uint16, v int64) bool {
		idx := int64(i) % 32
		if _, err := in.Run("set", IntVal(int64(i)), IntVal(v)); err != nil {
			return false
		}
		ref[idx] = v
		got, err := in.Run("get", IntVal(int64(i)))
		return err == nil && got.I == ref[idx]
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestFloatComparisonsAndConversions(t *testing.T) {
	v, _ := run(t, `
func main() int {
    float a = 2.5;
    float b = -1.25;
    int s = 0;
    if (a > b) { s = s + 1; }
    if (a >= 2.5) { s = s + 2; }
    if (b < 0.0) { s = s + 4; }
    if (b <= -1.25) { s = s + 8; }
    if (a == 2.5) { s = s + 16; }
    if (a != b) { s = s + 32; }
    float c = -b;
    s = s + (int)(c * 4.0);
    s = s + (int)((float)3 / 2.0 * 2.0);
    return s;
}`)
	wantI(t, v, 1+2+4+8+16+32+5+3)
}

func TestValueStrings(t *testing.T) {
	if got := IntVal(-3).String(); got != "-3" {
		t.Errorf("IntVal = %q", got)
	}
	if got := FloatVal(2.5).String(); got != "2.5" {
		t.Errorf("FloatVal = %q", got)
	}
	if got := (Value{Kind: ValPtr}).String(); got != "nil" {
		t.Errorf("nil ptr = %q", got)
	}
	inst := &Instance{Obj: &ir.Object{Name: "g"}}
	if got := (Value{Kind: ValPtr, Inst: inst, Off: 16}).String(); got != "&g+16" {
		t.Errorf("ptr = %q", got)
	}
}

func TestTypeMismatchErrors(t *testing.T) {
	// Hand-built IR that feeds a float into an int op and vice versa.
	m := ir.NewModule("bad")
	bd := ir.NewBuilder(m, "main", 0)
	f := bd.Emit(ir.OpMov, ir.ConstFloat(1.5))
	bd.Emit(ir.OpAdd, ir.Reg(f), ir.ConstInt(1))
	bd.Ret()
	if _, err := New(m, Options{}).RunMain(); err == nil ||
		!strings.Contains(err.Error(), "expected int") {
		t.Errorf("int op on float: %v", err)
	}
	m2 := ir.NewModule("bad2")
	bd2 := ir.NewBuilder(m2, "main", 0)
	i := bd2.Emit(ir.OpMov, ir.ConstInt(2))
	bd2.Emit(ir.OpFMul, ir.Reg(i), ir.ConstFloat(1.5))
	bd2.Ret()
	if _, err := New(m2, Options{}).RunMain(); err == nil ||
		!strings.Contains(err.Error(), "expected float") {
		t.Errorf("float op on int: %v", err)
	}
}

func TestCallDepthGuard(t *testing.T) {
	mod, err := mclang.Compile(`
func rec(int n) int { return rec(n + 1); }
func main() int { return rec(0); }`, "t")
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(mod, Options{}).RunMain()
	if err == nil || !strings.Contains(err.Error(), "call depth") {
		t.Fatalf("unbounded recursion not caught: %v", err)
	}
}
