// Package pointsto implements the interprocedural points-to analysis the
// data partitioner depends on (the paper's §3.2 "prepartitioning analyses",
// standing in for the summary-based analysis of Nystrom et al.).
//
// The analysis is a flow-insensitive, context-insensitive Andersen-style
// inclusion analysis over the module's virtual registers and data objects.
// Each global variable and each static malloc call site is one abstract
// object. The result annotates every load, store, and malloc operation with
// the set of object IDs it may access (ir.Op.MayAccess).
//
// Pointer values flow only through mov, add, sub, load, store, call, and
// return; the interpreter enforces this invariant dynamically, so the
// analysis is sound for any program that executes without a type error.
package pointsto

import (
	"sort"

	"mcpart/internal/ir"
)

// BitSet is a fixed-capacity bit set over object IDs.
type BitSet []uint64

// NewBitSet returns an empty set with capacity for n elements.
func NewBitSet(n int) BitSet { return make(BitSet, (n+63)/64) }

// Has reports whether i is in the set.
func (s BitSet) Has(i int) bool { return s[i/64]&(1<<uint(i%64)) != 0 }

// Add inserts i, reporting whether the set changed.
func (s BitSet) Add(i int) bool {
	w, b := i/64, uint(i%64)
	if s[w]&(1<<b) != 0 {
		return false
	}
	s[w] |= 1 << b
	return true
}

// UnionWith adds all of t into s, reporting whether s changed.
func (s BitSet) UnionWith(t BitSet) bool {
	changed := false
	for i := range s {
		if n := s[i] | t[i]; n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

// Elems returns the members in ascending order.
func (s BitSet) Elems() []int {
	var out []int
	for w, bits := range s {
		for bits != 0 {
			b := bits & (-bits)
			i := 0
			for b>>uint(i) != 1 {
				i++
			}
			out = append(out, w*64+i)
			bits &^= b
		}
	}
	return out
}

// Len returns the number of members.
func (s BitSet) Len() int {
	n := 0
	for _, w := range s {
		for w != 0 {
			w &= w - 1
			n++
		}
	}
	return n
}

// Result is the outcome of the analysis.
type Result struct {
	// Regs[f][r] is the set of objects register r of function f may point
	// into.
	Regs map[*ir.Func][]BitSet
	// Contents[o] is the set of objects that pointers stored inside object
	// o may point into.
	Contents []BitSet
	// Returns[f] is the set of objects function f's return value may point
	// into.
	Returns map[*ir.Func]BitSet
}

// Analyze runs the analysis on m and annotates every memory operation's
// MayAccess field (sorted object IDs). It returns the full result for
// clients that need register-level information.
func Analyze(m *ir.Module) *Result {
	n := len(m.Objects)
	res := &Result{
		Regs:     make(map[*ir.Func][]BitSet, len(m.Funcs)),
		Contents: make([]BitSet, n),
		Returns:  make(map[*ir.Func]BitSet, len(m.Funcs)),
	}
	for i := range res.Contents {
		res.Contents[i] = NewBitSet(n)
	}
	for _, f := range m.Funcs {
		regs := make([]BitSet, f.NRegs)
		for i := range regs {
			regs[i] = NewBitSet(n)
		}
		res.Regs[f] = regs
		res.Returns[f] = NewBitSet(n)
	}

	// Iterate all constraints to a fixpoint. Program sizes here are small
	// (thousands of ops), so a simple whole-program sweep converges fast.
	for changed := true; changed; {
		changed = false
		for _, f := range m.Funcs {
			regs := res.Regs[f]
			for _, b := range f.Blocks {
				for _, op := range b.Ops {
					if sweepOp(m, res, regs, op) {
						changed = true
					}
				}
			}
		}
	}

	// Annotate memory ops.
	for _, f := range m.Funcs {
		regs := res.Regs[f]
		for _, b := range f.Blocks {
			for _, op := range b.Ops {
				switch op.Opcode {
				case ir.OpLoad, ir.OpStore:
					op.MayAccess = pointees(regs, op.Args[0])
				case ir.OpMalloc:
					op.MayAccess = []int{op.MallocSite.ID}
				}
			}
		}
	}
	return res
}

func pointees(regs []BitSet, a ir.Operand) []int {
	if a.Kind != ir.OperReg {
		return nil
	}
	out := regs[a.Reg].Elems()
	sort.Ints(out)
	return out
}

func sweepOp(m *ir.Module, res *Result, regs []BitSet, op *ir.Op) bool {
	changed := false
	switch op.Opcode {
	case ir.OpAddr:
		changed = regs[op.Dst].Add(op.Obj.ID)
	case ir.OpMalloc:
		changed = regs[op.Dst].Add(op.MallocSite.ID)
	case ir.OpMov, ir.OpAdd, ir.OpSub:
		for _, a := range op.Args {
			if a.IsReg() && regs[op.Dst].UnionWith(regs[a.Reg]) {
				changed = true
			}
		}
	case ir.OpLoad:
		if op.Args[0].IsReg() {
			for _, o := range regs[op.Args[0].Reg].Elems() {
				if regs[op.Dst].UnionWith(res.Contents[o]) {
					changed = true
				}
			}
		}
	case ir.OpStore:
		if op.Args[0].IsReg() && op.Args[1].IsReg() {
			for _, o := range regs[op.Args[0].Reg].Elems() {
				if res.Contents[o].UnionWith(regs[op.Args[1].Reg]) {
					changed = true
				}
			}
		}
	case ir.OpCall:
		callee := m.Func(op.Callee)
		calleeRegs := res.Regs[callee]
		for i, a := range op.Args {
			if a.IsReg() && calleeRegs[i].UnionWith(regs[a.Reg]) {
				changed = true
			}
		}
		if op.Dst != ir.NoReg && regs[op.Dst].UnionWith(res.Returns[callee]) {
			changed = true
		}
	case ir.OpRet:
		if len(op.Args) == 1 && op.Args[0].IsReg() {
			if res.Returns[op.Block.Func].UnionWith(regs[op.Args[0].Reg]) {
				changed = true
			}
		}
	}
	return changed
}
