package pointsto

import (
	"testing"
	"testing/quick"

	"mcpart/internal/interp"
	"mcpart/internal/ir"
	"mcpart/internal/mclang"
)

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	mod, err := mclang.Compile(src, "t")
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return mod
}

func objByName(m *ir.Module, name string) *ir.Object {
	for _, o := range m.Objects {
		if o.Name == name {
			return o
		}
	}
	return nil
}

// accessSets returns, for each memory op, its MayAccess set keyed by a
// stable description.
func loadStoreOps(m *ir.Module) []*ir.Op {
	var ops []*ir.Op
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, op := range b.Ops {
				if op.Opcode == ir.OpLoad || op.Opcode == ir.OpStore {
					ops = append(ops, op)
				}
			}
		}
	}
	return ops
}

func TestDirectGlobalAccess(t *testing.T) {
	m := compile(t, `
global int a[4];
global int b[4];
func main() int { a[1] = 5; return b[2]; }`)
	Analyze(m)
	aID := objByName(m, "a").ID
	bID := objByName(m, "b").ID
	for _, op := range loadStoreOps(m) {
		if op.Opcode == ir.OpStore {
			if len(op.MayAccess) != 1 || op.MayAccess[0] != aID {
				t.Errorf("store MayAccess = %v, want [%d]", op.MayAccess, aID)
			}
		} else {
			if len(op.MayAccess) != 1 || op.MayAccess[0] != bID {
				t.Errorf("load MayAccess = %v, want [%d]", op.MayAccess, bID)
			}
		}
	}
}

func TestConditionalPointerFigure4(t *testing.T) {
	// The paper's Figure 4: foo may point to heap x or global value1, so the
	// final access must report both; accesses to value2 stay exact.
	m := compile(t, `
global int value1;
global int value2;
func main() int {
    int *x;
    int *foo;
    x = malloc(16);
    value2 = 2;
    if (value2 > 1) { foo = x; } else { foo = &value1; }
    return foo[0] + value2;
}`)
	Analyze(m)
	v1 := objByName(m, "value1").ID
	v2 := objByName(m, "value2").ID
	heap := objByName(m, "malloc@main:0").ID
	var fooLoad *ir.Op
	for _, op := range loadStoreOps(m) {
		if op.Opcode == ir.OpLoad && len(op.MayAccess) > 1 {
			fooLoad = op
		}
	}
	if fooLoad == nil {
		t.Fatal("no multi-object load found")
	}
	want := map[int]bool{v1: true, heap: true}
	if len(fooLoad.MayAccess) != 2 || !want[fooLoad.MayAccess[0]] || !want[fooLoad.MayAccess[1]] {
		t.Errorf("foo load MayAccess = %v, want {%d,%d}", fooLoad.MayAccess, v1, heap)
	}
	for _, op := range loadStoreOps(m) {
		if op == fooLoad {
			continue
		}
		for _, id := range op.MayAccess {
			if id == v2 && len(op.MayAccess) != 1 {
				t.Errorf("value2 access not exact: %v", op.MayAccess)
			}
		}
	}
}

func TestInterproceduralFlow(t *testing.T) {
	m := compile(t, `
global int g[8];
func write(int *p, int v) { p[0] = v; }
func main() int { write(g, 9); return g[0]; }`)
	Analyze(m)
	gID := objByName(m, "g").ID
	var store *ir.Op
	for _, op := range loadStoreOps(m) {
		if op.Opcode == ir.OpStore {
			store = op
		}
	}
	if store == nil {
		t.Fatal("no store")
	}
	if len(store.MayAccess) != 1 || store.MayAccess[0] != gID {
		t.Errorf("store in callee MayAccess = %v, want [%d]", store.MayAccess, gID)
	}
}

func TestReturnValueFlow(t *testing.T) {
	m := compile(t, `
func alloc() int* { return malloc(32); }
func main() int {
    int *p;
    p = alloc();
    p[0] = 1;
    return p[0];
}`)
	Analyze(m)
	heap := objByName(m, "malloc@alloc:0").ID
	for _, op := range loadStoreOps(m) {
		if len(op.MayAccess) != 1 || op.MayAccess[0] != heap {
			t.Errorf("op %s MayAccess = %v, want [%d]", op, op.MayAccess, heap)
		}
	}
}

func TestPointerStoredInMemory(t *testing.T) {
	// A pointer saved into a global "box" and loaded back must carry its
	// pointees through Contents.
	m := compile(t, `
global int box;
global int target[4];
func main() int {
    int *p;
    int *q;
    p = &target[0];
    box = (int)0;
    *(&box) = p[0];
    q = target;
    q[1] = 5;
    return q[1];
}`)
	Analyze(m)
	tgt := objByName(m, "target").ID
	found := false
	for _, op := range loadStoreOps(m) {
		for _, id := range op.MayAccess {
			if id == tgt {
				found = true
			}
		}
	}
	if !found {
		t.Error("no access to target found")
	}
}

func TestBitSetOps(t *testing.T) {
	s := NewBitSet(200)
	if s.Has(0) || s.Has(199) {
		t.Fatal("new set not empty")
	}
	if !s.Add(3) || s.Add(3) {
		t.Fatal("Add change-reporting wrong")
	}
	s.Add(64)
	s.Add(199)
	if got := s.Elems(); len(got) != 3 || got[0] != 3 || got[1] != 64 || got[2] != 199 {
		t.Fatalf("Elems = %v", got)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	u := NewBitSet(200)
	u.Add(5)
	if !u.UnionWith(s) {
		t.Fatal("UnionWith reported no change")
	}
	if u.Len() != 4 || !u.Has(3) || !u.Has(5) {
		t.Fatalf("union wrong: %v", u.Elems())
	}
	if u.UnionWith(s) {
		t.Fatal("idempotent union reported change")
	}
}

func TestBitSetQuick(t *testing.T) {
	// Property: Elems returns exactly the added elements, sorted.
	if err := quick.Check(func(raw []uint16) bool {
		s := NewBitSet(65536)
		ref := map[int]bool{}
		for _, r := range raw {
			s.Add(int(r))
			ref[int(r)] = true
		}
		got := s.Elems()
		if len(got) != len(ref) {
			return false
		}
		for i, e := range got {
			if !ref[e] {
				return false
			}
			if i > 0 && got[i-1] >= e {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

// Soundness property: every object the interpreter actually touches at a
// memory op is in that op's MayAccess set.
func TestSoundnessAgainstInterpreter(t *testing.T) {
	srcs := []string{
		`
global int a[8];
global int b[8];
func pick(int c) int* { if (c > 0) { return a; } return b; }
func main() int {
    int i;
    int s = 0;
    for (i = 0; i < 8; i = i + 1) {
        int *p;
        p = pick(i % 2);
        p[i % 8] = i;
        s = s + p[i % 8];
    }
    return s;
}`,
		`
global int t1[4];
func main() int {
    int *h;
    int *p;
    h = malloc(32);
    if (t1[0] == 0) { p = h; } else { p = t1; }
    p[2] = 7;
    return p[2] + h[1];
}`,
		`
func id(int *p) int* { return p; }
func main() int {
    int *a;
    int *b;
    a = malloc(16);
    b = id(a);
    b[0] = 3;
    return b[0];
}`,
	}
	for i, src := range srcs {
		mod, err := mclang.Compile(src, "t")
		if err != nil {
			t.Fatalf("src %d: %v", i, err)
		}
		Analyze(mod)
		in := interp.New(mod, interp.Options{})
		if _, err := in.RunMain(); err != nil {
			t.Fatalf("src %d run: %v", i, err)
		}
		prof := in.Profile()
		for op, objs := range prof.OpObj {
			if !op.Opcode.IsMem() {
				continue
			}
			may := map[int]bool{}
			for _, id := range op.MayAccess {
				may[id] = true
			}
			for objID := range objs {
				if !may[objID] {
					t.Errorf("src %d: op %s touched object %d not in MayAccess %v",
						i, op, objID, op.MayAccess)
				}
			}
		}
	}
}
