package memo

import (
	"fmt"
	"testing"

	"mcpart/internal/obs"
)

// fill inserts keys k0..k<n-1> via Do, oldest first.
func fill(t *testing.T, c *Cache, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, _, err := c.Do(key, func() (any, error) { return i, nil }); err != nil {
			t.Fatalf("Do(%s): %v", key, err)
		}
	}
}

// keys reports which of k0..k<n-1> are resident.
func resident(c *Cache, n int) []string {
	var out []string
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%d", i)
		c.mu.Lock()
		_, ok := c.entries[key]
		c.mu.Unlock()
		if ok {
			out = append(out, key)
		}
	}
	return out
}

// TestShrinkEvictionOrder pins the deterministic eviction order of Shrink:
// least-recently-used entries go first, and a Get refreshes recency exactly
// like insert-time eviction would see it.
func TestShrinkEvictionOrder(t *testing.T) {
	c := New(100)
	fill(t, c, 6) // recency (most..least): k5 k4 k3 k2 k1 k0

	// Touch k0 and k2: recency becomes k2 k0 k5 k4 k3 k1.
	for _, k := range []string{"k0", "k2"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("Get(%s) missed", k)
		}
	}

	c.Shrink(3)
	got := resident(c, 6)
	want := []string{"k0", "k2", "k5"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("survivors after Shrink(3) = %v, want %v", got, want)
	}
	s := c.Stats()
	if s.Evictions != 3 || s.Entries != 3 {
		t.Fatalf("Stats after Shrink = %+v, want 3 evictions, 3 entries", s)
	}

	// Shrink to the same size is a no-op; Shrink(-1) drops everything.
	c.Shrink(3)
	if s := c.Stats(); s.Evictions != 3 {
		t.Fatalf("no-op Shrink evicted: %+v", s)
	}
	c.Shrink(-1)
	if s := c.Stats(); s.Entries != 0 || s.Evictions != 6 {
		t.Fatalf("Shrink(-1) = %+v, want 0 entries, 6 evictions", s)
	}
}

// TestSetCapacity pins that SetCapacity evicts down to the new bound
// immediately, keeps the bound for later inserts, and that a non-positive
// capacity selects the default.
func TestSetCapacity(t *testing.T) {
	c := New(100)
	fill(t, c, 8)
	c.SetCapacity(2)
	if got := c.Capacity(); got != 2 {
		t.Fatalf("Capacity = %d, want 2", got)
	}
	got := resident(c, 8)
	want := []string{"k6", "k7"} // the two most recent survive
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("survivors after SetCapacity(2) = %v, want %v", got, want)
	}

	// The new bound applies to later inserts: adding one entry evicts the
	// oldest survivor.
	if _, _, err := c.Do("k8", func() (any, error) { return 8, nil }); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Entries != 2 || s.Evictions != 7 {
		t.Fatalf("after insert at cap 2: %+v, want 2 entries, 7 evictions", s)
	}

	c.SetCapacity(0)
	if got := c.Capacity(); got != DefaultCapacity {
		t.Fatalf("SetCapacity(0) → Capacity %d, want DefaultCapacity %d", got, DefaultCapacity)
	}

	// Nil-cache safety (the repository-wide nil-receiver contract).
	var nilc *Cache
	nilc.Shrink(1)
	nilc.SetCapacity(1)
	if nilc.Capacity() != 0 {
		t.Fatal("nil cache Capacity != 0")
	}
}

// TestShrinkObserverMirror pins that forced evictions are mirrored into the
// observer registry's memo_evictions counter, exactly like insert-time
// evictions.
func TestShrinkObserverMirror(t *testing.T) {
	c := New(100)
	reg := obs.NewRegistry()
	c.SetObserver(obs.New(reg, nil, nil))
	fill(t, c, 5)
	c.Shrink(1)
	if got := reg.Snapshot().Value("memo_evictions"); got != 4 {
		t.Fatalf("memo_evictions mirror = %d, want 4", got)
	}
	c.SetCapacity(0) // no eviction: bound grows
	if got := reg.Snapshot().Value("memo_evictions"); got != 4 {
		t.Fatalf("memo_evictions after growing SetCapacity = %d, want 4", got)
	}
}
