package memo

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"mcpart/internal/obs"
)

// fakeTier is an in-memory Tier with failure injection and call counting.
type fakeTier struct {
	mu      sync.Mutex
	m       map[string][]byte
	gets    int
	puts    int
	corrupt int
}

func newFakeTier() *fakeTier { return &fakeTier{m: map[string][]byte{}} }

func (t *fakeTier) Get(key string) ([]byte, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.gets++
	b, ok := t.m[key]
	return b, ok
}

func (t *fakeTier) Put(key string, val []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.puts++
	t.m[key] = val
}

func (t *fakeTier) MarkCorrupt(key string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.corrupt++
	delete(t.m, key)
}

// intCodec encodes an int as a tagged decimal string; the tag check makes
// Decode reject foreign bytes.
type intCodec struct{}

func (intCodec) Encode(v any) ([]byte, error) { return []byte(fmt.Sprintf("i%d", v.(int))), nil }
func (intCodec) Decode(b []byte) (any, error) {
	var n int
	if len(b) == 0 || b[0] != 'i' {
		return nil, errors.New("bad tag")
	}
	if _, err := fmt.Sscanf(string(b[1:]), "%d", &n); err != nil {
		return nil, err
	}
	return n, nil
}

// TestTierWriteBehindAndPromotion pins the full two-tier cycle: a miss
// computes and writes behind to the tier; after the first tier forgets
// (fresh Cache), the same key promotes from the tier without recomputing.
func TestTierWriteBehindAndPromotion(t *testing.T) {
	tier := newFakeTier()
	c1 := New(8)
	c1.SetTier(tier)
	calls := 0
	v, hit, err := c1.DoCodec("k", intCodec{}, func() (any, error) { calls++; return 42, nil })
	if err != nil || hit || v.(int) != 42 || calls != 1 {
		t.Fatalf("cold DoCodec = (%v, %v, %v), calls %d", v, hit, err, calls)
	}
	if tier.puts != 1 {
		t.Fatalf("tier puts = %d, want 1 (write-behind)", tier.puts)
	}
	if s := c1.Stats(); s.Promotions != 0 || s.Misses != 1 {
		t.Fatalf("cold stats = %+v", s)
	}

	// A fresh cache over the same tier: warm restart.
	c2 := New(8)
	c2.SetTier(tier)
	v, hit, err = c2.DoCodec("k", intCodec{}, func() (any, error) { calls++; return -1, nil })
	if err != nil || !hit || v.(int) != 42 {
		t.Fatalf("warm DoCodec = (%v, %v, %v), want (42, true, nil)", v, hit, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1 (promotion must not recompute)", calls)
	}
	s := c2.Stats()
	if s.Hits != 1 || s.Promotions != 1 || s.Misses != 0 {
		t.Fatalf("warm stats = %+v, want 1 hit / 1 promotion / 0 misses", s)
	}

	// Promoted value now lives in the first tier: the next call hits
	// without touching the tier again.
	gets := tier.gets
	if _, hit, _ := c2.DoCodec("k", intCodec{}, func() (any, error) { calls++; return -1, nil }); !hit {
		t.Fatal("promoted entry must hit in tier 1")
	}
	if tier.gets != gets {
		t.Fatal("tier consulted for a tier-1 hit")
	}
	if s := c2.Stats(); s.Promotions != 1 {
		t.Fatalf("promotions grew on a tier-1 hit: %+v", s)
	}
}

// TestTierCorruptValueFallsBack pins the corruption contract: bytes the
// codec rejects degrade to a recompute, mark the tier entry corrupt, and
// the recompute heals it.
func TestTierCorruptValueFallsBack(t *testing.T) {
	tier := newFakeTier()
	tier.m["k"] = []byte("garbage")
	c := New(8)
	c.SetTier(tier)
	calls := 0
	v, hit, err := c.DoCodec("k", intCodec{}, func() (any, error) { calls++; return 7, nil })
	if err != nil || hit || v.(int) != 7 || calls != 1 {
		t.Fatalf("corrupt-tier DoCodec = (%v, %v, %v), calls %d", v, hit, err, calls)
	}
	if tier.corrupt != 1 {
		t.Fatalf("MarkCorrupt calls = %d, want 1", tier.corrupt)
	}
	if string(tier.m["k"]) != "i7" {
		t.Fatalf("tier entry not healed: %q", tier.m["k"])
	}
	if s := c.Stats(); s.Promotions != 0 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestTierSingleflightPromotion pins that concurrent callers of one key
// share a single tier read: the flight owner promotes, everyone else
// waits, and the tier sees exactly one Get.
func TestTierSingleflightPromotion(t *testing.T) {
	tier := newFakeTier()
	tier.m["k"] = []byte("i99")
	c := New(8)
	c.SetTier(tier)
	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, hit, err := c.DoCodec("k", intCodec{}, func() (any, error) {
				t.Error("compute must not run when the tier holds the value")
				return nil, nil
			})
			if err != nil || !hit || v.(int) != 99 {
				t.Errorf("DoCodec = (%v, %v, %v)", v, hit, err)
			}
		}()
	}
	wg.Wait()
	if tier.gets != 1 {
		t.Fatalf("tier gets = %d, want 1 (singleflight-consistent promotion)", tier.gets)
	}
	s := c.Stats()
	if s.Promotions != 1 || s.Hits != n || s.Misses != 0 {
		t.Fatalf("stats = %+v, want 1 promotion / %d hits / 0 misses", s, n)
	}
}

// TestDoWithoutCodecSkipsTier pins that plain Do never touches the tier
// (values without a codec cannot round-trip).
func TestDoWithoutCodecSkipsTier(t *testing.T) {
	tier := newFakeTier()
	tier.m["k"] = []byte("i1")
	c := New(8)
	c.SetTier(tier)
	v, hit, err := c.Do("k", func() (any, error) { return 2, nil })
	if err != nil || hit || v.(int) != 2 {
		t.Fatalf("Do = (%v, %v, %v)", v, hit, err)
	}
	if tier.gets != 0 || tier.puts != 0 {
		t.Fatalf("tier touched by codec-less Do: gets %d puts %d", tier.gets, tier.puts)
	}
}

// TestTierErrorsNotWritten pins that failed computations never reach the
// tier.
func TestTierErrorsNotWritten(t *testing.T) {
	tier := newFakeTier()
	c := New(8)
	c.SetTier(tier)
	boom := errors.New("boom")
	if _, _, err := c.DoCodec("k", intCodec{}, func() (any, error) { return nil, boom }); err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	if tier.puts != 0 {
		t.Fatal("error value written to tier")
	}
}

// TestPromotionObserverMirror pins the memo_promotions counter.
func TestPromotionObserverMirror(t *testing.T) {
	tier := newFakeTier()
	tier.m["k"] = []byte("i5")
	c := New(8)
	c.SetTier(tier)
	o := obs.New(obs.NewRegistry(), nil, nil)
	c.SetObserver(o)
	if _, hit, _ := c.DoCodec("k", intCodec{}, func() (any, error) { return nil, nil }); !hit {
		t.Fatal("want promotion hit")
	}
	snap := o.Registry().Snapshot()
	if got := snap.Value("memo_promotions"); got != 1 {
		t.Fatalf("memo_promotions = %d, want 1", got)
	}
	if got := snap.Value("memo_hits"); got != 1 {
		t.Fatalf("memo_hits = %d, want 1", got)
	}
}

// TestNilCacheDoCodec pins nil-cache passthrough for the codec variant.
func TestNilCacheDoCodec(t *testing.T) {
	var c *Cache
	c.SetTier(newFakeTier())
	v, hit, err := c.DoCodec("k", intCodec{}, func() (any, error) { return 3, nil })
	if err != nil || hit || v.(int) != 3 {
		t.Fatalf("nil DoCodec = (%v, %v, %v)", v, hit, err)
	}
}
